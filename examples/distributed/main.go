// Distributed sharded clustering with durable, mergeable sketches — the
// paper's composable-coreset property as an operational flow.
//
// A fleet of ingest shards (think: one kcenterd per data centre) each
// consumes its slice of a large point stream with a fixed working-memory
// budget, then snapshots its state into a compact binary sketch. A
// coordinator merges the sketches — without ever seeing a raw point — and
// extracts the final k centers from the merged summary. The example checks
// the result against (a) a single in-memory stream over the whole input and
// (b) the sequential Gonzalez baseline, asserting the paper's quality bound.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	kcenter "coresetclustering"
)

const (
	shards = 4
	k      = 12
	budget = 16 * k // coreset budget per shard (mu = 16)
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Customer locations: 30 towns of varying size spread over a region.
	const towns = 30
	var customers kcenter.Dataset
	for t := 0; t < towns; t++ {
		center := kcenter.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		population := 100 + rng.Intn(700)
		for i := 0; i < population; i++ {
			customers = append(customers, kcenter.Point{
				center[0] + rng.NormFloat64()*5,
				center[1] + rng.NormFloat64()*5,
			})
		}
	}
	rng.Shuffle(len(customers), func(i, j int) { customers[i], customers[j] = customers[j], customers[i] })
	fmt.Printf("customers: %d, shards: %d, depots to place: %d, per-shard budget: %d points\n\n",
		len(customers), shards, k, budget)

	// ---- Phase 1: independent shard processes -----------------------------
	// Each shard consumes every shards-th point (a hash-partitioned feed) and
	// retains at most `budget` weighted points, then snapshots its state.
	sketches := make([][]byte, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			stream, err := kcenter.NewStreamingKCenter(k, budget)
			if err != nil {
				log.Fatal(err)
			}
			for i := s; i < len(customers); i += shards {
				if err := stream.Observe(customers[i]); err != nil {
					log.Fatal(err)
				}
			}
			snap, err := stream.Snapshot()
			if err != nil {
				log.Fatal(err)
			}
			sketches[s] = snap
			fmt.Printf("shard %d: observed %6d points, retained %3d, sketch %5d bytes\n",
				s, stream.Observed(), stream.WorkingMemory(), len(snap))
		}(s)
	}
	wg.Wait()

	// ---- Phase 2: the coordinator merges the sketches ---------------------
	// MergeSketches needs only the byte strings: in a real deployment they
	// arrive over the network (see cmd/kcenterd's POST /merge).
	merged, err := kcenter.MergeSketches(sketches...)
	if err != nil {
		log.Fatal(err)
	}
	info, err := kcenter.InspectSketch(merged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged sketch: %d bytes, %d weighted points summarising %d observations\n",
		len(merged), info.CoresetSize, info.Observed)
	if info.Observed != int64(len(customers)) {
		log.Fatalf("merged sketch lost points: observed %d, want %d", info.Observed, len(customers))
	}

	// ---- Phase 3: extract and compare -------------------------------------
	global, err := kcenter.RestoreStreamingKCenter(merged)
	if err != nil {
		log.Fatal(err)
	}
	centers, err := global.Centers()
	if err != nil {
		log.Fatal(err)
	}
	shardedRadius := mustRadius(customers, centers)

	// Baseline 1: one stream over the whole input with the same budget.
	single, err := kcenter.NewStreamingKCenter(k, budget)
	if err != nil {
		log.Fatal(err)
	}
	if err := single.ObserveAll(customers); err != nil {
		log.Fatal(err)
	}
	singleCenters, err := single.Centers()
	if err != nil {
		log.Fatal(err)
	}
	singleRadius := mustRadius(customers, singleCenters)

	// Baseline 2: the sequential Gonzalez 2-approximation on the full data.
	seq, err := kcenter.Gonzalez(customers, k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmax delivery distance (k-center radius):")
	fmt.Printf("  sharded  (4 shards -> snapshot -> merge -> extract): %8.2f\n", shardedRadius)
	fmt.Printf("  single stream (same budget, no sharding):            %8.2f\n", singleRadius)
	fmt.Printf("  sequential Gonzalez (full data in memory):           %8.2f\n", seq.Radius)

	// The paper's composability guarantee: the sharded pipeline stays within
	// (2+eps) of the sequential baseline. eps = 1 generously absorbs the
	// budget slack at mu = 16.
	if bound := (2 + 1.0) * seq.Radius; shardedRadius > bound {
		log.Fatalf("sharded radius %.2f exceeds the (2+eps) bound %.2f", shardedRadius, bound)
	}
	if shardedRadius > 3*singleRadius {
		log.Fatalf("sharded radius %.2f is far off the single-stream radius %.2f", shardedRadius, singleRadius)
	}
	fmt.Println("\nOK: sharded result within (2+eps) of the sequential baseline —")
	fmt.Println("the merged sketches are as good a summary as one machine's stream.")
}

// mustRadius evaluates the k-center objective with the library's public
// helper, aborting the demo on the (impossible here) option error.
func mustRadius(points, centers kcenter.Dataset) float64 {
	r, err := kcenter.Radius(points, centers)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
