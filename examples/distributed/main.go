// Distributed facility placement: choose k depot locations for a delivery
// network from a large set of customer coordinates, tolerating a number of
// unserviceable addresses (data-entry errors), and show how the coreset
// multiplier trades memory for solution quality — the space-accuracy
// trade-off at the heart of the paper.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	kcenter "coresetclustering"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Customer locations: 30 towns of varying size spread over a region,
	// plus a handful of bogus addresses far outside it.
	const towns = 30
	var customers kcenter.Dataset
	for t := 0; t < towns; t++ {
		center := kcenter.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		population := 100 + rng.Intn(700)
		for i := 0; i < population; i++ {
			customers = append(customers, kcenter.Point{
				center[0] + rng.NormFloat64()*5,
				center[1] + rng.NormFloat64()*5,
			})
		}
	}
	const bogus = 15
	for i := 0; i < bogus; i++ {
		customers = append(customers, kcenter.Point{1e6 + rng.Float64()*1e4, -1e6})
	}
	rng.Shuffle(len(customers), func(i, j int) { customers[i], customers[j] = customers[j], customers[i] })

	const depots = 12
	fmt.Printf("customers: %d, depots to place: %d, bogus addresses tolerated: %d\n",
		len(customers), depots, bogus)

	dim, err := kcenter.EstimateDoublingDimension(customers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated doubling dimension of the data: %.1f\n\n", dim)

	// Sweep the coreset multiplier: larger coresets mean a better-informed
	// final placement at the cost of more memory per worker and a more
	// expensive second round. mu = 1 corresponds to the earlier state of the
	// art (Malkomes et al.); on easy low-dimensional inputs like this one
	// even small coresets already do well — the gap widens on noisy,
	// high-dimensional, or adversarially ordered data (see Figure 4 of the
	// paper and cmd/experiments -figure 4).
	fmt.Println("mu   max delivery distance   coreset union   wall time")
	for _, mu := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := kcenter.ClusterWithOutliers(customers, depots, bogus,
			kcenter.WithCoresetMultiplier(mu),
			kcenter.WithRandomizedPartitioning(99),
			kcenter.WithPartitions(8),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d   %21.1f   %13d   %9v\n",
			mu, res.Radius, res.Stats.CoresetUnionSize, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\n(the max delivery distance excludes the bogus addresses; towns have a ~5-unit radius,")
	fmt.Println(" so a distance of a few hundred units means several towns share one depot)")
}
