// Sliding trends: track the topics of the LAST HOUR of a drifting stream,
// the workload insertion-only streaming summaries provably get wrong.
//
// An insertion-only coreset never forgets: once the morning's topics have
// been observed they hold on to centers forever, so by the afternoon the
// summary spends most of its k centers on conversations nobody is having any
// more. The sliding-window clusterer keeps per-bucket coresets, evicts whole
// buckets as they age out of the window, and answers queries over (a tight
// superset of) just the recent points — so its centers follow the drift.
//
// The program streams three "shifts" of topics through both summaries and
// compares, after each shift, how well the two center sets cover the most
// recent window of posts.
//
// Run with:
//
//	go run ./examples/slidingtrends
package main

import (
	"fmt"
	"log"
	"math/rand"

	kcenter "coresetclustering"
)

const (
	dim    = 9
	k      = 3      // trend centers to report
	window = 4_000  // "the last hour": posts the summary should reflect
	shift  = 12_000 // posts per topic shift
)

// post returns a synthetic embedding near one of the topic anchors; each
// topic lives along its own axis.
func post(rng *rand.Rand, topic int) kcenter.Point {
	p := make(kcenter.Point, dim)
	for d := range p {
		p[d] = rng.NormFloat64() * 0.3
	}
	p[topic%dim] += 10
	return p
}

func main() {
	rng := rand.New(rand.NewSource(7))
	budget := 16 * k

	windowed, err := kcenter.NewWindowedKCenter(k, budget, kcenter.WithWindowSize(window))
	if err != nil {
		log.Fatal(err)
	}
	insertion, err := kcenter.NewStreamingKCenter(k, budget)
	if err != nil {
		log.Fatal(err)
	}

	// Three shifts: topics {0,1,2}, then {3,4,5}, then {6,7,8}. Each shift
	// the conversation moves on completely.
	for phase := 0; phase < 3; phase++ {
		recent := make(kcenter.Dataset, 0, window)
		for i := 0; i < shift; i++ {
			p := post(rng, 3*phase+rng.Intn(3))
			if err := windowed.Observe(p); err != nil {
				log.Fatal(err)
			}
			if err := insertion.Observe(p); err != nil {
				log.Fatal(err)
			}
			if len(recent) == window {
				recent = recent[1:]
			}
			recent = append(recent, p)
		}

		wCenters, err := windowed.Centers()
		if err != nil {
			log.Fatal(err)
		}
		iCenters, err := insertion.Centers()
		if err != nil {
			log.Fatal(err)
		}
		// How well does each summary cover what people are posting NOW?
		wRadius, err := kcenter.Radius(recent, wCenters)
		if err != nil {
			log.Fatal(err)
		}
		iRadius, err := kcenter.Radius(recent, iCenters)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shift %d (topics %d-%d), %d posts seen:\n",
			phase+1, 3*phase, 3*phase+2, windowed.Observed())
		fmt.Printf("  radius over the last %d posts: windowed %.2f | insertion-only %.2f\n",
			window, wRadius, iRadius)
		fmt.Printf("  windowed working memory: %d points in %d buckets (lifetime %d posts)\n",
			windowed.WorkingMemory(), windowed.LiveBuckets(), windowed.Observed())
	}

	// The windowed summary survives process restarts, too: snapshot, restore,
	// and the restored stream answers bit-identically.
	blob, err := windowed.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	restored, err := kcenter.RestoreWindowedKCenter(blob)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := windowed.Centers()
	b, _ := restored.Centers()
	same := len(a) == len(b)
	for i := 0; same && i < len(a); i++ {
		same = a[i].Equal(b[i])
	}
	fmt.Printf("\nsnapshot: %d bytes; restored stream answers bit-identically: %v\n", len(blob), same)
}
