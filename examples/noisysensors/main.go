// Noisy sensors: cluster telemetry readings that contain corrupted
// measurements, using k-center with outliers so the glitches do not distort
// the cluster radii.
//
// A fleet of sensors reports (temperature, humidity, vibration) tuples.
// Sensors operate in three regimes, but a handful of readings are corrupted
// by transmission errors and take absurd values. Plain k-center would burn
// a center (or blow up the radius) on the corrupted readings; the outlier
// variant ignores them.
//
// Run with:
//
//	go run ./examples/noisysensors
package main

import (
	"fmt"
	"log"
	"math/rand"

	kcenter "coresetclustering"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Three operating regimes (idle, nominal, high-load).
	regimes := []kcenter.Point{
		{20, 40, 0.1}, // idle:     cool, moderate humidity, little vibration
		{45, 35, 1.5}, // nominal:  warm, vibrating
		{80, 20, 4.0}, // high load: hot, dry, strong vibration
	}
	var readings kcenter.Dataset
	for _, r := range regimes {
		for i := 0; i < 400; i++ {
			readings = append(readings, kcenter.Point{
				r[0] + rng.NormFloat64()*2,
				r[1] + rng.NormFloat64()*3,
				r[2] + rng.NormFloat64()*0.2,
			})
		}
	}
	// A few corrupted readings: impossible temperatures and vibrations.
	const corrupted = 8
	for i := 0; i < corrupted; i++ {
		readings = append(readings, kcenter.Point{
			5000 + rng.Float64()*1000,
			-300 + rng.Float64()*10,
			900 + rng.Float64()*100,
		})
	}
	rng.Shuffle(len(readings), func(i, j int) { readings[i], readings[j] = readings[j], readings[i] })

	// Plain k-center: the corrupted readings dominate the radius.
	plain, err := kcenter.Cluster(readings, 3)
	if err != nil {
		log.Fatal(err)
	}

	// k-center with z outliers: allow up to `corrupted` readings to be
	// disregarded. Randomized partitioning keeps the corrupted readings from
	// concentrating in one partition.
	robust, err := kcenter.ClusterWithOutliers(readings, 3, corrupted,
		kcenter.WithCoresetMultiplier(4),
		kcenter.WithRandomizedPartitioning(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("readings: %d (of which %d corrupted)\n", len(readings), corrupted)
	fmt.Printf("plain k-center radius:        %8.2f   <- inflated by the corrupted readings\n", plain.Radius)
	fmt.Printf("k-center with outliers radius:%8.2f   <- the real regime spread\n", robust.Radius)
	fmt.Println("regime centers found (temperature, humidity, vibration):")
	for i, c := range robust.Centers {
		fmt.Printf("  regime %d: (%.1f, %.1f, %.2f)\n", i, c[0], c[1], c[2])
	}
	fmt.Printf("readings flagged as outliers: %d\n", len(robust.Outliers))
}
