// Streaming trends: maintain a k-center summary of an unbounded stream of
// embedding vectors (e.g. social-media posts mapped to a topic space) using a
// fixed working-memory budget, the scenario that motivates the paper's
// 1-pass streaming algorithms.
//
// The stream drifts over time: new topics appear while the summary is
// running. The streaming clusterer keeps a weighted coreset of bounded size
// and can produce up-to-date centers at any moment.
//
// Run with:
//
//	go run ./examples/streamingtrends
package main

import (
	"fmt"
	"log"
	"math/rand"

	kcenter "coresetclustering"
)

// topic returns a synthetic "embedding" near one of the topic anchors.
func topic(rng *rand.Rand, anchor int) kcenter.Point {
	p := make(kcenter.Point, 10)
	for d := range p {
		p[d] = rng.NormFloat64() * 0.3
	}
	p[anchor%len(p)] += 10 // each topic lives along its own axis
	return p
}

func main() {
	rng := rand.New(rand.NewSource(3))
	const (
		k      = 6
		noisy  = 50 // sporadic junk posts (spam) to tolerate
		budget = 8 * (k + noisy)
	)

	// The outlier-aware streaming clusterer: at most `budget` points are ever
	// retained, regardless of how long the stream runs.
	summary, err := kcenter.NewStreamingOutliers(k, noisy, budget)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: three topics are trending.
	for i := 0; i < 30000; i++ {
		if err := summary.Observe(topic(rng, rng.Intn(3))); err != nil {
			log.Fatal(err)
		}
	}
	// Occasional spam: points nowhere near any topic.
	for i := 0; i < noisy/2; i++ {
		spam := make(kcenter.Point, 10)
		for d := range spam {
			spam[d] = 500 + rng.Float64()*100
		}
		if err := summary.Observe(spam); err != nil {
			log.Fatal(err)
		}
	}
	centers, err := summary.Centers()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d posts: %d trend centers, working memory %d points (budget %d)\n",
		summary.Observed(), len(centers), summary.WorkingMemory(), budget)

	// Phase 2: three new topics emerge; the summary adapts without replaying
	// the stream.
	for i := 0; i < 30000; i++ {
		if err := summary.Observe(topic(rng, 3+rng.Intn(3))); err != nil {
			log.Fatal(err)
		}
	}
	centers, err = summary.Centers()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d posts: %d trend centers, working memory %d points (budget %d)\n",
		summary.Observed(), len(centers), summary.WorkingMemory(), budget)

	fmt.Println("current trend centers (dominant axis per topic):")
	for i, c := range centers {
		best, bestVal := 0, c[0]
		for d, v := range c {
			if v > bestVal {
				best, bestVal = d, v
			}
		}
		fmt.Printf("  trend %d: axis %d (coordinate %.1f)\n", i, best, bestVal)
	}
}
