// Quickstart: cluster a small synthetic dataset with the coreset-based
// k-center algorithm and print the resulting centers and radius.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	kcenter "coresetclustering"
)

func main() {
	// Build a toy dataset: four Gaussian blobs in the plane.
	rng := rand.New(rand.NewSource(1))
	blobCenters := []kcenter.Point{{0, 0}, {50, 0}, {0, 50}, {50, 50}}
	var points kcenter.Dataset
	for _, c := range blobCenters {
		for i := 0; i < 500; i++ {
			points = append(points, kcenter.Point{
				c[0] + rng.NormFloat64(),
				c[1] + rng.NormFloat64(),
			})
		}
	}

	// Cluster with k = 4. The library partitions the data, builds a coreset
	// per partition on parallel goroutines, and solves k-center on the union
	// of the coresets — the 2-round algorithm of the paper.
	res, err := kcenter.Cluster(points, 4, kcenter.WithCoresetMultiplier(4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clustered %d points into %d clusters\n", len(points), len(res.Centers))
	fmt.Printf("radius: %.3f (blob standard deviation is 1.0)\n", res.Radius)
	for i, c := range res.Centers {
		fmt.Printf("center %d: (%.1f, %.1f)\n", i, c[0], c[1])
	}
	fmt.Printf("coreset union: %d points, partitions: %d\n",
		res.Stats.CoresetUnionSize, res.Stats.Partitions)

	// Each input point is assigned to its closest center.
	sizes := make([]int, len(res.Centers))
	for _, ci := range res.Assignment {
		sizes[ci]++
	}
	fmt.Println("cluster sizes:", sizes)
}
