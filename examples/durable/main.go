// Durable streams: what -persist-dir buys a kcenterd deployment, shown as a
// library walkthrough of the internal/persist engine — journal every ingest
// to a write-ahead log, compact the stream into a snapshot now and then,
// crash without warning, and recover EXACTLY the pre-crash state.
//
// The program simulates the daemon's write path by hand:
//
//  1. A streaming k-center summary ingests batches; each acknowledged batch
//     is first appended to the stream's WAL (fsynced), then applied.
//  2. Midway, the stream state is compacted: Snapshot() -> snapshot file,
//     WAL reset. More batches follow, and the last append is torn in half
//     as a power loss would leave it.
//  3. "Crash": the in-memory summary is dropped on the floor.
//  4. Recovery: newest valid snapshot + replay of the journal tail, torn
//     record truncated. The recovered summary's re-snapshot is then proved
//     BYTE-IDENTICAL to one taken the instant before the crash — the same
//     determinism contract the daemon's kill-and-recover test enforces over
//     HTTP.
//
// Run with:
//
//	go run ./examples/durable
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	kcenter "coresetclustering"
	"coresetclustering/internal/persist"
)

const (
	k      = 4
	budget = 48
	dim    = 5
	nBatch = 12 // batches before the crash
	perB   = 50 // points per batch
)

func randomBatch(rng *rand.Rand) kcenter.Dataset {
	out := make(kcenter.Dataset, perB)
	for i := range out {
		p := make(kcenter.Point, dim)
		anchor := float64(rng.Intn(k)) * 50
		for d := range p {
			p[d] = anchor + rng.NormFloat64()
		}
		out[i] = p
	}
	return out
}

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "durable-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- The daemon's write path, by hand -------------------------------
	store, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways})
	if err != nil {
		log.Fatal(err)
	}
	wal, err := store.Create("sensors", persist.Meta{K: k, Budget: budget, Space: "euclidean"})
	if err != nil {
		log.Fatal(err)
	}
	stream, err := kcenter.NewStreamingKCenter(k, budget)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < nBatch; i++ {
		b := randomBatch(rng)
		// Journal first, apply second: an acknowledged batch is durable.
		if err := wal.AppendBatch(b, nil); err != nil {
			log.Fatal(err)
		}
		if err := stream.ObserveAll(b); err != nil {
			log.Fatal(err)
		}
		if i == nBatch/2 {
			// Snapshot compaction: the sketch codec already serializes the
			// complete stream state, so the journal can be folded away.
			snap, err := stream.Snapshot()
			if err != nil {
				log.Fatal(err)
			}
			if err := wal.Compact(snap); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("compacted after batch %d: snapshot %d bytes, journal reset\n", i+1, len(snap))
		}
	}
	preCrash, err := stream.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	st := wal.Stats()
	fmt.Printf("pre-crash: %d points observed, journal holds %d records (%d bytes)\n",
		stream.Observed(), st.WALRecords, st.WALBytes)

	// ---- Crash ----------------------------------------------------------
	// Drop the in-memory summary, and leave a torn record at the journal
	// tail: the first bytes of a batch whose write the crash interrupted
	// before it was ever acknowledged. Recovery must truncate it, not fail.
	stream = nil
	store.Close()
	walPath := filepath.Join(dir, encodedStreamDir(dir), "wal")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	torn := []byte{0x00, 0x00, 0x01, 0x40, 0xde, 0xad, 0xbe} // frame header cut short
	if _, err := f.Write(torn); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("crash: in-memory state gone, %d torn bytes of an unacknowledged append left at the journal tail\n", len(torn))

	// ---- Recovery -------------------------------------------------------
	store2, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways})
	if err != nil {
		log.Fatal(err)
	}
	defer store2.Close()
	recovered, err := store2.Recover()
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range recovered {
		if rec.Err != nil {
			log.Fatal(rec.Err)
		}
		revived, err := kcenter.RestoreStreamingKCenter(rec.Snapshot)
		if err != nil {
			log.Fatal(err)
		}
		var replayed int64
		for _, r := range rec.Tail {
			if r.Op != persist.OpBatch {
				continue
			}
			if err := revived.ObserveAll(r.Points); err != nil {
				log.Fatal(err)
			}
			replayed += int64(len(r.Points))
		}
		fmt.Printf("recovered %q: snapshot(seq=%d) + %d replayed records (%d points), torn tail: %v\n",
			rec.Name, rec.Stats.SnapshotSeq, rec.Stats.RecordsReplayed, replayed, rec.Stats.TornTail)

		// The torn record was never acknowledged; every acknowledged batch
		// is back. The recovered state must therefore re-snapshot
		// byte-identically to the state captured just before the crash.
		reSnap, err := revived.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		if bytes.Equal(reSnap, preCrash) {
			fmt.Printf("re-snapshot is byte-identical to the pre-crash state (%d bytes)\n", len(reSnap))
		} else {
			log.Fatalf("re-snapshot differs from the pre-crash state (%d vs %d bytes)", len(reSnap), len(preCrash))
		}
		centers, err := revived.Centers()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("the recovered stream is live: %d centers over %d observed points\n",
			len(centers), revived.Observed())
	}
	fmt.Println("kcenterd does all of this per stream with -persist-dir; see the Durability section of the README")
}

// encodedStreamDir finds the single stream directory under the store root
// (its name is the base64 of the stream name — an implementation detail we
// only peek at here to tear the journal).
func encodedStreamDir(root string) string {
	entries, err := os.ReadDir(root)
	if err != nil || len(entries) != 1 {
		log.Fatalf("expected exactly one stream directory: %v", err)
	}
	return entries[0].Name()
}
