package kcenter

import (
	"errors"
	"fmt"

	"coresetclustering/internal/sketch"
	"coresetclustering/internal/window"
)

// Window errors, re-exported from the window subsystem so callers can branch
// on them with errors.Is.
var (
	// ErrWindowEmpty: every bucket has been evicted (or nothing observed);
	// there are no live points to answer a query over.
	ErrWindowEmpty = window.ErrEmptyWindow
	// ErrTimestampOrder: a point or Advance call carried a timestamp smaller
	// than an already observed one. Timestamps must be non-decreasing — the
	// window never reads a clock, so observed time is its only notion of
	// "now".
	ErrTimestampOrder = window.ErrTimestampOrder
	// ErrNegativeTimestamp: timestamps are non-negative ticks in
	// caller-defined units.
	ErrNegativeTimestamp = window.ErrNegativeTimestamp
)

// WindowedKCenter is a sliding-window k-center clusterer: it summarises only
// the most recent part of the stream — the last WithWindowSize points, the
// last WithWindowDuration time units, or both — instead of the entire prefix.
//
// Internally the stream is decomposed into a ring of timestamped buckets,
// each holding an independent doubling coreset of at most budget points;
// buckets coalesce exponential-histogram style (so the ring holds
// O(log window) buckets and working memory stays O(budget * log window)),
// whole buckets are evicted as they age out, and Centers merges the live
// buckets under the original budget before extracting k centers. The live
// summary always covers at least the requested window and overshoots it by at
// most the span of the oldest live bucket.
//
// The determinism contract extends to windows: eviction and coalescing are
// driven only by observed counts and explicitly supplied timestamps (never a
// clock), so results are bit-identical across worker counts and across a
// Snapshot -> Restore round-trip.
type WindowedKCenter struct {
	inner *window.KCenterStream
}

// NewWindowedKCenter creates a sliding-window k-center clusterer with the
// given per-bucket coreset budget (in points, at least k). At least one of
// WithWindowSize and WithWindowDuration must be supplied.
func NewWindowedKCenter(k, budget int, opts ...Option) (*WindowedKCenter, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.windowSize == 0 && o.windowDuration == 0 {
		return nil, errors.New("kcenter: a windowed stream needs WithWindowSize or WithWindowDuration")
	}
	inner, err := window.NewKCenterStream(o.space, k, budget, window.Config{
		MaxCount: o.windowSize,
		MaxAge:   o.windowDuration,
	})
	if err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	inner.SetWorkers(o.workers)
	return &WindowedKCenter{inner: inner}, nil
}

// Observe consumes the next point of the stream. The point inherits the
// newest observed timestamp (0 before the first ObserveAt), which is exactly
// right for purely count-based windows; duration windows should use
// ObserveAt.
func (s *WindowedKCenter) Observe(p Point) error {
	return s.inner.Observe(p, s.inner.Window().Now())
}

// ObserveAt consumes the next point with an explicit timestamp (non-negative,
// non-decreasing across calls, in caller-defined units — the same units as
// WithWindowDuration).
func (s *WindowedKCenter) ObserveAt(p Point, ts int64) error { return s.inner.Observe(p, ts) }

// ObserveAll consumes a batch of points in order, all at the newest observed
// timestamp.
func (s *WindowedKCenter) ObserveAll(points Dataset) error {
	for _, p := range points {
		if err := s.Observe(p); err != nil {
			return err
		}
	}
	return nil
}

// Advance moves the window's notion of "now" forward to ts without observing
// a point, evicting buckets that age out of a duration window.
func (s *WindowedKCenter) Advance(ts int64) error { return s.inner.Advance(ts) }

// Clone returns a copy-on-write copy of the clusterer: a point-in-time
// snapshot that answers Centers and Snapshot — and can even keep observing —
// independently of the original. Sealed window buckets are immutable and
// shared, so a clone costs O(log window) pointer copies plus one small open
// bucket; see (*StreamingKCenter).Clone for the query-view pattern it serves.
func (s *WindowedKCenter) Clone() *WindowedKCenter {
	return &WindowedKCenter{inner: s.inner.Clone()}
}

// Centers returns k centers summarising the live window. ErrWindowEmpty means
// everything has been evicted. Observation may continue afterwards.
func (s *WindowedKCenter) Centers() (Dataset, error) { return s.inner.Result() }

// Observed reports how many points have been consumed over the stream's
// lifetime, evicted ones included.
func (s *WindowedKCenter) Observed() int64 { return s.inner.Window().Observed() }

// LivePoints reports how many stream points the live window currently
// summarises.
func (s *WindowedKCenter) LivePoints() int64 { return s.inner.Window().LivePoints() }

// LiveBuckets reports the number of live buckets (O(log window)).
func (s *WindowedKCenter) LiveBuckets() int { return s.inner.Window().LiveBuckets() }

// EvictedBuckets reports the lifetime count of buckets evicted from the
// window; EvictedPoints the stream points those buckets summarised.
func (s *WindowedKCenter) EvictedBuckets() int64 { return s.inner.Window().EvictedBuckets() }

// EvictedPoints reports the lifetime count of stream points inside evicted
// buckets.
func (s *WindowedKCenter) EvictedPoints() int64 { return s.inner.Window().EvictedPoints() }

// LiveRange returns the contiguous observation-order range [start, end) of
// the points the live window summarises; start == end means the window is
// empty.
func (s *WindowedKCenter) LiveRange() (start, end int64) { return s.inner.Window().LiveRange() }

// LastTimestamp returns the newest observed (or advanced-to) timestamp.
func (s *WindowedKCenter) LastTimestamp() int64 { return s.inner.Window().Now() }

// WorkingMemory reports the number of points currently retained,
// O(budget * log window).
func (s *WindowedKCenter) WorkingMemory() int { return s.inner.Window().WorkingMemory() }

// Snapshot serializes the complete window state — stream parameters, window
// geometry, bucket boundaries and each bucket's coreset — into a compact,
// self-describing binary sketch (magic KCWN), with the same strict-validation
// and determinism guarantees as the insertion-only sketches. Restore with
// RestoreWindowedKCenter.
func (s *WindowedKCenter) Snapshot() ([]byte, error) {
	ws, err := s.inner.Sketch()
	if err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	return sketch.EncodeWindow(ws)
}

// RestoreWindowedKCenter reconstructs a sliding-window clusterer from a
// sketch produced by (*WindowedKCenter).Snapshot. All parameters (including
// the window bounds) come from the sketch itself; options may tune runtime
// behaviour (WithWorkers). The restored stream is fully live and answers
// Centers bit-identically to the stream it was captured from.
func RestoreWindowedKCenter(data []byte, opts ...Option) (*WindowedKCenter, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	ws, err := sketch.DecodeWindow(data)
	if err != nil {
		return nil, err
	}
	inner, err := window.RestoreKCenterStream(ws)
	if err != nil {
		return nil, err
	}
	inner.SetWorkers(o.workers)
	return &WindowedKCenter{inner: inner}, nil
}

// WindowedOutliers is the sliding-window clusterer for the k-center problem
// with z outliers: the same bucketed window decomposition as WindowedKCenter,
// with the weighted outlier-aware radius search run on the merged live
// coreset at query time.
type WindowedOutliers struct {
	inner *window.OutliersStream
}

// NewWindowedOutliers creates a sliding-window clusterer for k centers and z
// outliers with the given per-bucket coreset budget (in points, at least
// k+z). At least one of WithWindowSize and WithWindowDuration must be
// supplied.
func NewWindowedOutliers(k, z, budget int, opts ...Option) (*WindowedOutliers, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.windowSize == 0 && o.windowDuration == 0 {
		return nil, errors.New("kcenter: a windowed stream needs WithWindowSize or WithWindowDuration")
	}
	inner, err := window.NewOutliersStream(o.space, k, z, budget, 0.25, window.Config{
		MaxCount: o.windowSize,
		MaxAge:   o.windowDuration,
	})
	if err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	inner.SetWorkers(o.workers)
	return &WindowedOutliers{inner: inner}, nil
}

// Observe consumes the next point of the stream at the newest observed
// timestamp; duration windows should use ObserveAt.
func (s *WindowedOutliers) Observe(p Point) error {
	return s.inner.Observe(p, s.inner.Window().Now())
}

// ObserveAt consumes the next point with an explicit timestamp.
func (s *WindowedOutliers) ObserveAt(p Point, ts int64) error { return s.inner.Observe(p, ts) }

// ObserveAll consumes a batch of points in order, all at the newest observed
// timestamp.
func (s *WindowedOutliers) ObserveAll(points Dataset) error {
	for _, p := range points {
		if err := s.Observe(p); err != nil {
			return err
		}
	}
	return nil
}

// Advance moves the window's notion of "now" forward to ts without observing
// a point, evicting buckets that age out of a duration window.
func (s *WindowedOutliers) Advance(ts int64) error { return s.inner.Advance(ts) }

// Clone returns a copy-on-write copy of the clusterer, with the same
// semantics as (*WindowedKCenter).Clone.
func (s *WindowedOutliers) Clone() *WindowedOutliers {
	return &WindowedOutliers{inner: s.inner.Clone()}
}

// Centers returns at most k centers summarising the live window; up to z of
// the live points may be left uncovered (the outliers).
func (s *WindowedOutliers) Centers() (Dataset, error) {
	res, err := s.inner.Result()
	if err != nil {
		return nil, err
	}
	return res.Centers, nil
}

// Observed reports how many points have been consumed over the stream's
// lifetime, evicted ones included.
func (s *WindowedOutliers) Observed() int64 { return s.inner.Window().Observed() }

// LivePoints reports how many stream points the live window currently
// summarises.
func (s *WindowedOutliers) LivePoints() int64 { return s.inner.Window().LivePoints() }

// LiveBuckets reports the number of live buckets (O(log window)).
func (s *WindowedOutliers) LiveBuckets() int { return s.inner.Window().LiveBuckets() }

// EvictedBuckets reports the lifetime count of buckets evicted from the
// window; EvictedPoints the stream points those buckets summarised.
func (s *WindowedOutliers) EvictedBuckets() int64 { return s.inner.Window().EvictedBuckets() }

// EvictedPoints reports the lifetime count of stream points inside evicted
// buckets.
func (s *WindowedOutliers) EvictedPoints() int64 { return s.inner.Window().EvictedPoints() }

// LiveRange returns the contiguous observation-order range [start, end) of
// the points the live window summarises.
func (s *WindowedOutliers) LiveRange() (start, end int64) { return s.inner.Window().LiveRange() }

// LastTimestamp returns the newest observed (or advanced-to) timestamp.
func (s *WindowedOutliers) LastTimestamp() int64 { return s.inner.Window().Now() }

// WorkingMemory reports the number of points currently retained,
// O(budget * log window).
func (s *WindowedOutliers) WorkingMemory() int { return s.inner.Window().WorkingMemory() }

// Snapshot serializes the complete window state with the same semantics as
// (*WindowedKCenter).Snapshot.
func (s *WindowedOutliers) Snapshot() ([]byte, error) {
	ws, err := s.inner.Sketch()
	if err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	return sketch.EncodeWindow(ws)
}

// RestoreWindowedOutliers reconstructs a sliding-window outlier clusterer
// from a sketch produced by (*WindowedOutliers).Snapshot, with the same
// semantics as RestoreWindowedKCenter.
func RestoreWindowedOutliers(data []byte, opts ...Option) (*WindowedOutliers, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	ws, err := sketch.DecodeWindow(data)
	if err != nil {
		return nil, err
	}
	inner, err := window.RestoreOutliersStream(ws)
	if err != nil {
		return nil, err
	}
	inner.SetWorkers(o.workers)
	return &WindowedOutliers{inner: inner}, nil
}
