package selection

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelect(t *testing.T) {
	values := []float64{5, 1, 4, 2, 3}
	for k, want := range []float64{1, 2, 3, 4, 5} {
		got, err := Select(values, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Select(k=%d) = %v, want %v", k, got, want)
		}
	}
	if _, err := Select(nil, 0); err == nil {
		t.Error("empty slice accepted")
	}
	if _, err := Select(values, -1); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := Select(values, 5); err == nil {
		t.Error("rank >= n accepted")
	}
	// The input must not be modified.
	if values[0] != 5 {
		t.Error("Select modified its input")
	}
}

func TestSelectMatchesSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		values := make([]float64, n)
		for i := range values {
			// Include duplicates on purpose.
			values[i] = float64(rng.Intn(20)) + rng.Float64()*0.001
		}
		k := rng.Intn(n)
		got, err := Select(values, k)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		return got == sorted[k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMunroPatersonBasic(t *testing.T) {
	values := []float64{9, 3, 7, 1, 5}
	for k, want := range []float64{1, 3, 5, 7, 9} {
		res, err := MunroPaterson(FromSlice(values), int64(k), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			t.Errorf("rank %d = %v, want %v", k, res.Value, want)
		}
		if res.Count != 5 || res.Passes < 1 {
			t.Errorf("bookkeeping wrong: %+v", res)
		}
	}
}

func TestMunroPatersonErrors(t *testing.T) {
	if _, err := MunroPaterson(nil, 0, 0); err == nil {
		t.Error("nil stream accepted")
	}
	if _, err := MunroPaterson(FromSlice(nil), 0, 0); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := MunroPaterson(FromSlice([]float64{1, 2}), 5, 0); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := MunroPaterson(FromSlice([]float64{1, 2}), -1, 0); err == nil {
		t.Error("negative rank accepted")
	}
}

func TestMunroPatersonConstantStream(t *testing.T) {
	res, err := MunroPaterson(FromSlice([]float64{4, 4, 4, 4}), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 {
		t.Errorf("value = %v, want 4", res.Value)
	}
	if res.Passes != 1 {
		t.Errorf("constant stream should resolve in one pass, took %d", res.Passes)
	}
}

func TestMunroPatersonMatchesSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		values := make([]float64, n)
		for i := range values {
			switch rng.Intn(3) {
			case 0:
				values[i] = float64(rng.Intn(10)) // heavy duplicates
			case 1:
				values[i] = rng.NormFloat64() * 1000
			default:
				values[i] = rng.Float64()
			}
		}
		k := rng.Intn(n)
		res, err := MunroPaterson(FromSlice(values), int64(k), 0)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		return res.Value == sorted[k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMunroPatersonPassBudget(t *testing.T) {
	// Values spread over many orders of magnitude still resolve, but a
	// ridiculous pass budget of 1 fails cleanly.
	values := []float64{1e-300, 1, 1e300}
	if _, err := MunroPaterson(FromSlice(values), 1, 1); err == nil {
		t.Error("expected pass-budget error")
	}
	res, err := MunroPaterson(FromSlice(values), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 {
		t.Errorf("value = %v, want 1", res.Value)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median(FromSlice([]float64{5, 1, 3}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	got, err = Median(FromSlice([]float64{4, 1, 3, 2}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("lower median = %v, want 2", got)
	}
	if _, err := Median(FromSlice(nil), 0); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Median(nil, 0); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestQuantileSketch(t *testing.T) {
	if _, err := NewQuantileSketch(0, nil); err == nil {
		t.Error("capacity 0 accepted")
	}
	q, err := NewQuantileSketch(256, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Quantile(0.5); err == nil {
		t.Error("quantile of empty sketch accepted")
	}
	// Feed 100k uniform values; the median estimate should be near 0.5.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		q.Add(rng.Float64())
	}
	if q.Seen() != 100000 {
		t.Errorf("Seen = %d, want 100000", q.Seen())
	}
	med, err := q.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-0.5) > 0.1 {
		t.Errorf("median estimate = %v, want near 0.5", med)
	}
	lo, err := q.Quantile(0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := q.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Errorf("quantile(0)=%v not below quantile(1)=%v", lo, hi)
	}
	if _, err := q.Quantile(-0.1); err == nil {
		t.Error("negative quantile accepted")
	}
	if _, err := q.Quantile(1.1); err == nil {
		t.Error("quantile > 1 accepted")
	}
}

func TestQuantileSketchSmallStream(t *testing.T) {
	q, err := NewQuantileSketch(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{3, 1, 2} {
		q.Add(v)
	}
	med, err := q.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med != 2 {
		t.Errorf("median of tiny stream = %v, want 2", med)
	}
}

func TestFromSliceEarlyStop(t *testing.T) {
	var seen int
	err := FromSlice([]float64{1, 2, 3, 4})(func(v float64) bool {
		seen++
		return seen < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Errorf("early stop honoured %d values, want 2", seen)
	}
}
