// Package selection implements order-statistic selection over streams of
// float64 values.
//
// The paper's second round performs a binary search over the O(|T|^2)
// pairwise distances of the coreset union without materialising them: "the
// value of r at each iteration of the binary search can be determined in
// space linear in T by the median-finding Streaming algorithm in
// [Munro-Paterson 1980]". This package provides that substrate:
//
//   - Exact multi-pass selection (MunroPaterson) that finds the element of a
//     given rank using a bounded buffer and repeated passes over a re-playable
//     stream, in the spirit of Munro and Paterson's classic algorithm: each
//     pass narrows a (low, high) value interval around the target rank, so
//     the number of passes is logarithmic in the number of distinct candidate
//     values inside the interval.
//   - A single-pass bounded-memory approximate quantile sketch
//     (QuantileSketch) based on reservoir sampling, used when an approximate
//     pivot is sufficient.
//   - Select, an in-memory quickselect for the common case where the values
//     fit in memory.
package selection

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrEmptyStream is returned when a selection is requested over an empty
// stream.
var ErrEmptyStream = errors.New("selection: empty stream")

// ErrRankOutOfRange is returned when the requested rank is not in [0, n).
var ErrRankOutOfRange = errors.New("selection: rank out of range")

// Stream produces the sequence of values; it must yield the same multiset on
// every call (the algorithm takes multiple passes). The callback returns
// false to stop iteration early.
type Stream func(yield func(float64) bool) error

// FromSlice adapts an in-memory slice to a (re-playable) Stream.
func FromSlice(values []float64) Stream {
	return func(yield func(float64) bool) error {
		for _, v := range values {
			if !yield(v) {
				return nil
			}
		}
		return nil
	}
}

// Select returns the value of rank k (0-based, ascending) of the in-memory
// slice using an iterative quickselect; the input slice is not modified.
func Select(values []float64, k int) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmptyStream
	}
	if k < 0 || k >= len(values) {
		return 0, fmt.Errorf("%w: k=%d, n=%d", ErrRankOutOfRange, k, len(values))
	}
	return SelectInPlace(append([]float64(nil), values...), k)
}

// SelectInPlace is Select without the defensive copy: the slice is reordered.
// It is the form the metric engine's outlier-aware radius kernel uses on its
// own scratch distance vector, where the copy would be pure overhead. The
// returned value is the exact order statistic, independent of the pivot
// sequence.
func SelectInPlace(buf []float64, k int) (float64, error) {
	if len(buf) == 0 {
		return 0, ErrEmptyStream
	}
	if k < 0 || k >= len(buf) {
		return 0, fmt.Errorf("%w: k=%d, n=%d", ErrRankOutOfRange, k, len(buf))
	}
	lo, hi := 0, len(buf)-1
	rng := rand.New(rand.NewSource(int64(len(buf))*2654435761 + int64(k)))
	for lo < hi {
		p := buf[lo+rng.Intn(hi-lo+1)]
		i, j := lo, hi
		for i <= j {
			for buf[i] < p {
				i++
			}
			for buf[j] > p {
				j--
			}
			if i <= j {
				buf[i], buf[j] = buf[j], buf[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return buf[k], nil
		}
	}
	return buf[k], nil
}

// MunroPatersonResult reports the outcome of a multi-pass selection.
type MunroPatersonResult struct {
	// Value is the element of the requested rank.
	Value float64
	// Passes is the number of passes taken over the stream.
	Passes int
	// Count is the total number of elements observed per pass.
	Count int64
}

// MunroPaterson finds the element of rank k (0-based, ascending) of the
// stream using multiple passes and O(1) working memory per pass (plus the
// candidate interval bookkeeping). Each pass counts how many elements fall
// below the current interval and collects the interval's extreme values,
// halving the candidate value range until the rank is pinned down.
//
// maxPasses bounds the number of passes (0 means a generous default of 128);
// exceeding it returns an error, which cannot happen for streams of
// fewer than 2^maxPasses distinct values.
func MunroPaterson(stream Stream, k int64, maxPasses int) (*MunroPatersonResult, error) {
	if stream == nil {
		return nil, errors.New("selection: nil stream")
	}
	if maxPasses <= 0 {
		maxPasses = 128
	}

	// Pass 0: count elements and find global min/max.
	var count int64
	lo, hi := math.Inf(1), math.Inf(-1)
	err := stream(func(v float64) bool {
		count++
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, ErrEmptyStream
	}
	if k < 0 || k >= count {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrRankOutOfRange, k, count)
	}
	res := &MunroPatersonResult{Passes: 1, Count: count}
	if lo == hi {
		res.Value = lo
		return res, nil
	}

	// Invariant: the element of rank k lies in [lo, hi]. Each pass splits
	// the interval at its midpoint, counts the elements in the lower half,
	// and keeps the half containing rank k. The pass also records the
	// largest value <= mid and the smallest value > mid, so when a half
	// contains a single distinct value the search terminates exactly.
	for pass := 0; pass < maxPasses; pass++ {
		mid := lo + (hi-lo)/2
		var below int64 // elements with value <= mid and >= lo... counted globally below lo too
		var belowLo int64
		maxLE := math.Inf(-1) // largest value in [lo, mid]
		minGT := math.Inf(1)  // smallest value in (mid, hi]
		err := stream(func(v float64) bool {
			if v < lo {
				belowLo++
				return true
			}
			if v > hi {
				return true
			}
			if v <= mid {
				below++
				if v > maxLE {
					maxLE = v
				}
			} else if v < minGT {
				minGT = v
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		res.Passes++
		if k < belowLo+below {
			// Target is in [lo, maxLE].
			hi = maxLE
			if lo == hi || below == 1 {
				res.Value = maxLE
				return res, nil
			}
		} else {
			// Target is in [minGT, hi].
			lo = minGT
			if lo == hi {
				res.Value = lo
				return res, nil
			}
		}
		if lo == hi {
			res.Value = lo
			return res, nil
		}
	}
	return nil, fmt.Errorf("selection: rank not isolated within %d passes (pathological value distribution)", maxPasses)
}

// Median returns the lower median of the stream using MunroPaterson.
func Median(stream Stream, maxPasses int) (float64, error) {
	// First pass to count (MunroPaterson will count again; the cost is one
	// extra pass, which keeps the interface simple).
	var count int64
	if stream == nil {
		return 0, errors.New("selection: nil stream")
	}
	if err := stream(func(float64) bool { count++; return true }); err != nil {
		return 0, err
	}
	if count == 0 {
		return 0, ErrEmptyStream
	}
	res, err := MunroPaterson(stream, (count-1)/2, maxPasses)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// QuantileSketch is a single-pass, bounded-memory approximate quantile
// estimator based on uniform reservoir sampling. It is used where an
// approximate pivot suffices (for example to seed a radius search) and in
// tests as a cross-check of the exact algorithms.
type QuantileSketch struct {
	capacity int
	rng      *rand.Rand
	sample   []float64
	seen     int64
}

// NewQuantileSketch creates a sketch retaining at most capacity values.
// A nil rng uses a fixed seed for reproducibility.
func NewQuantileSketch(capacity int, rng *rand.Rand) (*QuantileSketch, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("selection: capacity must be positive, got %d", capacity)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(0x5e1ec7))
	}
	return &QuantileSketch{capacity: capacity, rng: rng}, nil
}

// Add observes one value.
func (q *QuantileSketch) Add(v float64) {
	q.seen++
	if len(q.sample) < q.capacity {
		q.sample = append(q.sample, v)
		return
	}
	// Reservoir sampling: replace a random element with probability cap/seen.
	if j := q.rng.Int63n(q.seen); j < int64(q.capacity) {
		q.sample[j] = v
	}
}

// Seen returns the number of values observed.
func (q *QuantileSketch) Seen() int64 { return q.seen }

// Quantile returns an estimate of the given quantile in [0, 1].
func (q *QuantileSketch) Quantile(p float64) (float64, error) {
	if len(q.sample) == 0 {
		return 0, ErrEmptyStream
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("selection: quantile %v out of [0,1]", p)
	}
	sorted := append([]float64(nil), q.sample...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx], nil
}
