package dataset

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"coresetclustering/internal/metric"
)

func TestGenerateFamilies(t *testing.T) {
	for _, name := range Names() {
		t.Run(string(name), func(t *testing.T) {
			ds, err := Generate(name, 500, 42)
			if err != nil {
				t.Fatal(err)
			}
			if len(ds) != 500 {
				t.Fatalf("generated %d points, want 500", len(ds))
			}
			if ds.Dim() != name.Dim() {
				t.Errorf("dimension = %d, want %d", ds.Dim(), name.Dim())
			}
			if err := ds.Validate(); err != nil {
				t.Errorf("generated dataset invalid: %v", err)
			}
			if name.DefaultK() <= 0 {
				t.Errorf("DefaultK = %d, want positive", name.DefaultK())
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Higgs, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Higgs, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("generation not deterministic at point %d", i)
		}
	}
	c, err := Generate(Higgs, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Higgs, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Generate(Name("nope"), 10, 1); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestWikiLikeIsRoughlyNormalised(t *testing.T) {
	ds, err := Generate(Wiki, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ds {
		n := p.Norm()
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("point %d norm = %v, want 1", i, n)
		}
	}
}

func TestClustered(t *testing.T) {
	ds, err := Clustered(300, 5, 3, 50, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 300 || ds.Dim() != 3 {
		t.Fatalf("unexpected shape: n=%d dim=%d", len(ds), ds.Dim())
	}
	if _, err := Clustered(0, 5, 3, 50, 1, 11); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Clustered(10, 0, 3, 50, 1, 11); err == nil {
		t.Error("clusters=0 accepted")
	}
	if _, err := Clustered(10, 2, 0, 50, 1, 11); err == nil {
		t.Error("dim=0 accepted")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	ds, err := Generate(Power, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	sh := Shuffle(ds, 9)
	if len(sh) != len(ds) {
		t.Fatalf("shuffle changed the size")
	}
	// Same multiset: compare sorted fingerprints.
	fp := func(d metric.Dataset) map[string]int {
		m := map[string]int{}
		for _, p := range d {
			m[p.String()]++
		}
		return m
	}
	a, b := fp(ds), fp(sh)
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("shuffle is not a permutation (key %s)", k)
		}
	}
}

func TestInjectOutliers(t *testing.T) {
	ds, err := Generate(Higgs, 400, 13)
	if err != nil {
		t.Fatal(err)
	}
	z := 20
	res, err := InjectOutliers(ds, z, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(ds)+z {
		t.Fatalf("augmented size = %d, want %d", len(res.Points), len(ds)+z)
	}
	if len(res.OutlierIndices) != z {
		t.Fatalf("outlier indices = %d, want %d", len(res.OutlierIndices), z)
	}
	// Every injected point is at distance >= 99*rMEB from every original
	// point (paper's guarantee).
	r := res.MEBRadius
	if r <= 0 {
		t.Fatal("MEB radius not recorded")
	}
	for _, oi := range res.OutlierIndices {
		o := res.Points[oi]
		for i := 0; i < len(ds); i++ {
			if metric.Euclidean(o, res.Points[i]) < 99*r*0.99 { // tiny slack for the approximate MEB
				t.Fatalf("outlier %d too close to original point %d", oi, i)
			}
		}
	}
	// Injected points are mutually at distance >= 10*rMEB.
	for i := 0; i < z; i++ {
		for j := i + 1; j < z; j++ {
			a := res.Points[res.OutlierIndices[i]]
			b := res.Points[res.OutlierIndices[j]]
			if metric.Euclidean(a, b) < 10*r*0.99 {
				t.Fatalf("outliers %d and %d closer than 10*rMEB", i, j)
			}
		}
	}
}

func TestInjectOutliersEdgeCases(t *testing.T) {
	if _, err := InjectOutliers(nil, 5, 1); err == nil {
		t.Error("empty dataset accepted")
	}
	ds := metric.Dataset{{0, 0}, {1, 1}}
	if _, err := InjectOutliers(ds, -1, 1); err == nil {
		t.Error("negative z accepted")
	}
	res, err := InjectOutliers(ds, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || len(res.OutlierIndices) != 0 {
		t.Errorf("z=0 injection changed the dataset")
	}
	// Degenerate dataset where all points coincide still works.
	same := metric.Dataset{{5, 5}, {5, 5}, {5, 5}}
	res, err = InjectOutliers(same, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Errorf("coincident-point injection size = %d, want 6", len(res.Points))
	}
}

func TestInflate(t *testing.T) {
	ds, err := Generate(Power, 150, 19)
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := Inflate(ds, 4, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(inflated) != 600 {
		t.Fatalf("inflated size = %d, want 600", len(inflated))
	}
	// The original points are preserved as a prefix.
	for i := range ds {
		if !inflated[i].Equal(ds[i]) {
			t.Fatalf("inflation did not preserve original point %d", i)
		}
	}
	// The synthetic points stay within a reasonable envelope of the original
	// bounding box (10% noise of the range per coordinate).
	lo, hi, err := ds.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	for i := len(ds); i < len(inflated); i++ {
		for d := 0; d < ds.Dim(); d++ {
			span := hi[d] - lo[d]
			if inflated[i][d] < lo[d]-span || inflated[i][d] > hi[d]+span {
				t.Fatalf("inflated point %d coordinate %d (%v) far outside the envelope", i, d, inflated[i][d])
			}
		}
	}
}

func TestInflateEdgeCases(t *testing.T) {
	if _, err := Inflate(nil, 2, 1); err == nil {
		t.Error("empty dataset accepted")
	}
	ds := metric.Dataset{{1, 2}}
	if _, err := Inflate(ds, 0, 1); err == nil {
		t.Error("factor=0 accepted")
	}
	same, err := Inflate(ds, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 1 || !same[0].Equal(ds[0]) {
		t.Error("factor=1 should return a copy of the input")
	}
	same[0][0] = 99
	if ds[0][0] == 99 {
		t.Error("factor=1 result shares storage with the input")
	}
}

func TestSample(t *testing.T) {
	ds, err := Generate(Higgs, 100, 29)
	if err != nil {
		t.Fatal(err)
	}
	s := Sample(ds, 10, 31)
	if len(s) != 10 {
		t.Fatalf("sample size = %d, want 10", len(s))
	}
	all := Sample(ds, 1000, 31)
	if len(all) != 100 {
		t.Fatalf("oversized sample = %d, want 100", len(all))
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		ds, err := Generate(Power, 30, seed)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ds); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(back) != len(ds) {
			return false
		}
		for i := range ds {
			if !ds[i].Equal(back[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Errorf("CSV round trip failed: %v", err)
	}
}

func TestReadCSVEdgeCases(t *testing.T) {
	if _, err := ReadCSV(nil); err == nil {
		t.Error("nil reader accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Error("non-numeric field accepted")
	}
	ds, err := ReadCSV(strings.NewReader("# comment\n\n1, 2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || !ds[0].Equal(metric.Point{1, 2}) {
		t.Errorf("parsed dataset = %v", ds)
	}
	if err := WriteCSV(nil, ds); err == nil {
		t.Error("nil writer accepted")
	}
}

func TestCSVFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "points.csv")
	ds := metric.Dataset{{1, 2}, {3, 4.5}}
	if err := SaveCSVFile(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || !back[1].Equal(metric.Point{3, 4.5}) {
		t.Errorf("loaded dataset = %v", back)
	}
	if _, err := LoadCSVFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
	if err := SaveCSVFile(filepath.Join(dir, "nodir", "x.csv"), ds); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestLoadFileAutoDetectsLayout(t *testing.T) {
	dir := t.TempDir()
	ds, err := Generate(Higgs, 64, 7)
	if err != nil {
		t.Fatal(err)
	}

	csvPath := filepath.Join(dir, "p.csv")
	if err := SaveCSVFile(csvPath, ds); err != nil {
		t.Fatal(err)
	}
	flatPath := filepath.Join(dir, "p.kcfl")
	if err := SaveFlatFile(flatPath, ds); err != nil {
		t.Fatal(err)
	}

	fromCSV, err := LoadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	fromFlat, err := LoadFile(flatPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV) != len(ds) || len(fromFlat) != len(ds) {
		t.Fatalf("sizes differ: csv %d flat %d want %d", len(fromCSV), len(fromFlat), len(ds))
	}
	for i := range ds {
		if !fromFlat[i].Equal(ds[i]) {
			t.Fatalf("flat point %d differs from the original", i)
		}
		if !fromCSV[i].Equal(fromFlat[i]) {
			// CSV stores full float64 precision ('g', -1), so the two loads
			// must agree exactly.
			t.Fatalf("point %d differs between CSV and flat loads", i)
		}
	}

	if _, err := LoadFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}

	// A corrupt flat file must surface the codec's typed error.
	bad := filepath.Join(dir, "bad.kcfl")
	if err := os.WriteFile(bad, []byte("KCFL1234"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); !errors.Is(err, metric.ErrFlatCorrupt) && !errors.Is(err, metric.ErrFlatUnsupportedVersion) {
		t.Errorf("corrupt flat file error = %v, want a flat codec error", err)
	}
}
