package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"coresetclustering/internal/meb"
	"coresetclustering/internal/metric"
)

// InjectionResult describes the outcome of InjectOutliers.
type InjectionResult struct {
	// Points is the augmented dataset: the original points followed by the
	// injected outliers.
	Points metric.Dataset
	// OutlierIndices are the indices of the injected points within Points.
	OutlierIndices []int
	// MEBRadius and MEBCenter describe the approximate minimum enclosing ball
	// of the original dataset used to place the outliers.
	MEBRadius float64
	MEBCenter metric.Point
}

// InjectOutliers reproduces the paper's outlier-injection procedure
// (Section 5.2): compute the (approximate) minimum enclosing ball of the
// dataset, then add z points at distance 100*r_MEB from its center in random
// directions, rejecting directions that would place two injected points
// within 10*r_MEB of each other. Every injected point is therefore at
// distance at least 99*r_MEB from every original point, making it a true
// outlier.
func InjectOutliers(ds metric.Dataset, z int, seed int64) (*InjectionResult, error) {
	if len(ds) == 0 {
		return nil, errors.New("dataset: cannot inject outliers into an empty dataset")
	}
	if z < 0 {
		return nil, fmt.Errorf("dataset: negative outlier count %d", z)
	}
	ball, err := meb.Approximate(ds, 0.05, 200)
	if err != nil {
		return nil, fmt.Errorf("dataset: MEB computation failed: %w", err)
	}
	radius := ball.Radius
	if radius == 0 {
		// Degenerate dataset (all points coincide): use a unit ball so the
		// injected points are still far away.
		radius = 1
	}
	rng := rand.New(rand.NewSource(seed))
	dim := ds.Dim()

	out := &InjectionResult{
		Points:    ds.Clone(),
		MEBRadius: ball.Radius,
		MEBCenter: ball.Center,
	}
	placed := make(metric.Dataset, 0, z)
	const maxAttempts = 10000
	for len(placed) < z {
		attempts := 0
		for {
			attempts++
			if attempts > maxAttempts {
				return nil, fmt.Errorf("dataset: could not place %d mutually distant outliers in dimension %d", z, dim)
			}
			dir := randomDirection(rng, dim)
			cand := make(metric.Point, dim)
			for d := 0; d < dim; d++ {
				cand[d] = ball.Center[d] + 100*radius*dir[d]
			}
			if tooClose(cand, placed, 10*radius) {
				continue
			}
			placed = append(placed, cand)
			break
		}
	}
	for _, p := range placed {
		out.OutlierIndices = append(out.OutlierIndices, len(out.Points))
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// randomDirection returns a uniformly random unit vector in the given
// dimension.
func randomDirection(rng *rand.Rand, dim int) metric.Point {
	for {
		v := make(metric.Point, dim)
		var norm float64
		for d := 0; d < dim; d++ {
			v[d] = rng.NormFloat64()
			norm += v[d] * v[d]
		}
		if norm == 0 {
			continue
		}
		norm = math.Sqrt(norm)
		for d := 0; d < dim; d++ {
			v[d] /= norm
		}
		return v
	}
}

// tooClose reports whether cand is within minDist of any already-placed point.
func tooClose(cand metric.Point, placed metric.Dataset, minDist float64) bool {
	for _, p := range placed {
		if metric.Euclidean(cand, p) < minDist {
			return true
		}
	}
	return false
}

// Inflate reproduces the paper's SMOTE-like dataset inflation (Section 5.3):
// it grows the dataset to factor times its original size by repeatedly
// sampling a random original point and perturbing each coordinate with
// Gaussian noise whose standard deviation is 10% of that coordinate's range
// over the original dataset. The original points are retained as a prefix of
// the result, so the inflated dataset keeps the same clustered structure.
func Inflate(ds metric.Dataset, factor int, seed int64) (metric.Dataset, error) {
	if len(ds) == 0 {
		return nil, errors.New("dataset: cannot inflate an empty dataset")
	}
	if factor < 1 {
		return nil, fmt.Errorf("dataset: inflation factor must be at least 1, got %d", factor)
	}
	if factor == 1 {
		return ds.Clone(), nil
	}
	lo, hi, err := ds.BoundingBox()
	if err != nil {
		return nil, err
	}
	dim := ds.Dim()
	sigma := make([]float64, dim)
	for d := 0; d < dim; d++ {
		sigma[d] = 0.1 * (hi[d] - lo[d])
	}
	rng := rand.New(rand.NewSource(seed))
	target := len(ds) * factor
	out := make(metric.Dataset, 0, target)
	out = append(out, ds.Clone()...)
	for len(out) < target {
		src := ds[rng.Intn(len(ds))]
		p := make(metric.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = src[d] + rng.NormFloat64()*sigma[d]
		}
		out = append(out, p)
	}
	return out, nil
}

// Sample returns n points drawn uniformly at random without replacement
// (Figure 8 uses 10,000-point samples to keep the quadratic baseline
// feasible). If n >= len(ds) a shuffled copy of the whole dataset is
// returned.
func Sample(ds metric.Dataset, n int, seed int64) metric.Dataset {
	shuffled := Shuffle(ds, seed)
	if n >= len(shuffled) || n < 0 {
		return shuffled
	}
	return shuffled[:n]
}
