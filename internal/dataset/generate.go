// Package dataset provides the data substrate of the experiments: synthetic
// generators that stand in for the paper's Higgs, Power and Wiki datasets,
// the outlier-injection procedure of Section 5.2, the SMOTE-like inflation of
// Section 5.3, and CSV persistence for the command-line tools.
//
// The real datasets are not redistributable within this repository, so the
// generators reproduce the properties that matter to the algorithms: the
// dimensionality, a clustered structure with unbalanced cluster masses, and
// (for the Wiki surrogate) high dimensionality with weak separation. DESIGN.md
// documents the substitution rationale.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"coresetclustering/internal/metric"
)

// Name identifies one of the built-in synthetic dataset families.
type Name string

// The three dataset families of the paper's experiments.
const (
	// Higgs mimics the 7 derived attributes of the UCI HIGGS dataset:
	// moderately separated clusters with heavy-tailed per-feature scales.
	Higgs Name = "higgs"
	// Power mimics the 7 numeric attributes of the UCI household power
	// consumption dataset: strongly correlated coordinates (regime clusters
	// along a few directions).
	Power Name = "power"
	// Wiki mimics 50-dimensional word2vec embeddings of Wikipedia: many
	// weakly separated clusters on (roughly) a sphere, i.e. a hard,
	// high-doubling-dimension input.
	Wiki Name = "wiki"
)

// Dim returns the dimensionality of the dataset family.
func (n Name) Dim() int {
	switch n {
	case Wiki:
		return 50
	default:
		return 7
	}
}

// DefaultK returns the number of centers the paper uses for this family in
// the k-center experiments (Figure 2).
func (n Name) DefaultK() int {
	switch n {
	case Higgs:
		return 50
	case Power:
		return 100
	case Wiki:
		return 60
	default:
		return 50
	}
}

// Names lists the built-in families in the order the paper presents them.
func Names() []Name { return []Name{Higgs, Power, Wiki} }

// Generate produces n points of the named synthetic family using the given
// seed. Generation is deterministic in (name, n, seed).
func Generate(name Name, n int, seed int64) (metric.Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: n must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case Higgs:
		return generateHiggsLike(rng, n), nil
	case Power:
		return generatePowerLike(rng, n), nil
	case Wiki:
		return generateWikiLike(rng, n), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset family %q", name)
	}
}

// generateHiggsLike produces a 7-dimensional Gaussian mixture with
// heavy-tailed cluster masses (a few large clusters, a long tail of small
// ones) and per-dimension scales spanning an order of magnitude, similar to
// derived physics features.
func generateHiggsLike(rng *rand.Rand, n int) metric.Dataset {
	const dim = 7
	const clusters = 60
	centers := make(metric.Dataset, clusters)
	scales := make([]float64, dim)
	for d := 0; d < dim; d++ {
		scales[d] = math.Pow(10, rng.Float64()) // in [1, 10)
	}
	for c := range centers {
		p := make(metric.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = rng.NormFloat64() * 5 * scales[d]
		}
		centers[c] = p
	}
	// Heavy-tailed cluster masses: probability proportional to 1/(rank+1).
	weights := make([]float64, clusters)
	total := 0.0
	for c := range weights {
		weights[c] = 1 / float64(c+1)
		total += weights[c]
	}
	ds := make(metric.Dataset, n)
	for i := range ds {
		c := sampleWeighted(rng, weights, total)
		p := make(metric.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = centers[c][d] + rng.NormFloat64()*scales[d]
		}
		ds[i] = p
	}
	return ds
}

// generatePowerLike produces a 7-dimensional mixture whose clusters lie along
// a few shared directions with strong coordinate correlation, mimicking
// operating regimes of household power measurements.
func generatePowerLike(rng *rand.Rand, n int) metric.Dataset {
	const dim = 7
	const regimes = 24
	// A handful of shared directions inducing correlations.
	dirs := make([]metric.Point, 3)
	for i := range dirs {
		v := make(metric.Point, dim)
		for d := 0; d < dim; d++ {
			v[d] = rng.NormFloat64()
		}
		dirs[i] = v
	}
	centers := make(metric.Dataset, regimes)
	for c := range centers {
		p := make(metric.Point, dim)
		for i, dir := range dirs {
			coef := rng.NormFloat64() * float64(10*(i+1))
			for d := 0; d < dim; d++ {
				p[d] += coef * dir[d]
			}
		}
		centers[c] = p
	}
	ds := make(metric.Dataset, n)
	for i := range ds {
		c := rng.Intn(regimes)
		p := make(metric.Point, dim)
		// Noise is also correlated along the shared directions plus a small
		// isotropic term.
		coefs := []float64{rng.NormFloat64(), rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.25}
		for d := 0; d < dim; d++ {
			p[d] = centers[c][d] + rng.NormFloat64()*0.2
			for j, dir := range dirs {
				p[d] += coefs[j] * dir[d]
			}
		}
		ds[i] = p
	}
	return ds
}

// generateWikiLike produces 50-dimensional points resembling word2vec
// embeddings: many weakly separated clusters, with every vector normalised to
// (approximately) unit norm, so that no small coreset captures the geometry
// well — the paper's hard, high-dimensional stress case.
func generateWikiLike(rng *rand.Rand, n int) metric.Dataset {
	const dim = 50
	const topics = 200
	centers := make(metric.Dataset, topics)
	for c := range centers {
		p := make(metric.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = rng.NormFloat64()
		}
		normalize(p)
		centers[c] = p
	}
	ds := make(metric.Dataset, n)
	for i := range ds {
		c := rng.Intn(topics)
		p := make(metric.Point, dim)
		for d := 0; d < dim; d++ {
			// Weak separation: the within-topic spread is comparable to the
			// between-topic distance.
			p[d] = centers[c][d] + rng.NormFloat64()*0.6
		}
		normalize(p)
		ds[i] = p
	}
	return ds
}

func normalize(p metric.Point) {
	var s float64
	for _, c := range p {
		s += c * c
	}
	if s == 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range p {
		p[i] *= inv
	}
}

// sampleWeighted draws an index proportionally to the given weights.
func sampleWeighted(rng *rand.Rand, weights []float64, total float64) int {
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Clustered generates a generic Gaussian-mixture dataset with the given
// number of clusters, dimension, separation between adjacent cluster centers
// and within-cluster spread. It backs the examples and several tests.
func Clustered(n, clusters, dim int, separation, spread float64, seed int64) (metric.Dataset, error) {
	if n <= 0 || clusters <= 0 || dim <= 0 {
		return nil, errors.New("dataset: n, clusters and dim must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make(metric.Dataset, clusters)
	for c := range centers {
		p := make(metric.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = rng.NormFloat64() * separation
		}
		centers[c] = p
	}
	ds := make(metric.Dataset, n)
	for i := range ds {
		c := rng.Intn(clusters)
		p := make(metric.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = centers[c][d] + rng.NormFloat64()*spread
		}
		ds[i] = p
	}
	return ds, nil
}

// Shuffle returns a copy of the dataset in uniformly random order (the
// streaming experiments shuffle the input before streaming it).
func Shuffle(ds metric.Dataset, seed int64) metric.Dataset {
	out := make(metric.Dataset, len(ds))
	copy(out, ds)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
