package dataset

import (
	"errors"
	"fmt"
	"io"
	"os"

	"coresetclustering/internal/metric"
)

// This file teaches the dataset loader the binary flat-buffer layout
// (metric.Flat, magic "KCFL"): a contiguous float64 buffer that loads without
// per-point allocations and hands the algorithms cache-friendly memory.
// Text (CSV) parsing is unchanged and remains the fallback.

// SaveFlatFile writes the dataset to path in the binary flat-buffer format.
func SaveFlatFile(path string, ds metric.Dataset) error {
	f, err := metric.FlatFromDataset(ds)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return metric.SaveFlatFile(path, f)
}

// LoadFlatFile reads a dataset from a binary flat-buffer file. The returned
// dataset's points are views into one contiguous buffer.
func LoadFlatFile(path string) (metric.Dataset, error) {
	f, err := metric.LoadFlatFile(path)
	if err != nil {
		return nil, err
	}
	ds := f.Dataset()
	if len(ds) == 0 {
		return nil, errors.New("dataset: flat file holds no points")
	}
	return ds, nil
}

// LoadFile reads a dataset from path, auto-detecting the format: files
// starting with the flat-buffer magic load as metric.Flat (contiguous
// storage, no text parsing); anything else falls back to the CSV reader
// unchanged.
func LoadFile(path string) (metric.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	var magic [4]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if n == len(magic) && string(magic[:]) == metric.FlatMagic {
		flat, err := metric.ReadFlat(f)
		if err != nil {
			return nil, err
		}
		ds := flat.Dataset()
		if len(ds) == 0 {
			return nil, errors.New("dataset: flat file holds no points")
		}
		return ds, nil
	}
	return ReadCSV(f)
}
