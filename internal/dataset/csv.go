package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"coresetclustering/internal/metric"
)

// ReadCSV parses a dataset from CSV-like input: one point per line,
// comma-separated floating-point coordinates. Blank lines and lines starting
// with '#' are skipped. Every point must have the same dimensionality.
func ReadCSV(r io.Reader) (metric.Dataset, error) {
	if r == nil {
		return nil, errors.New("dataset: nil reader")
	}
	var ds metric.Dataset
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		p := make(metric.Point, 0, len(fields))
		for _, f := range fields {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
			}
			p = append(p, v)
		}
		if len(p) == 0 {
			continue
		}
		if len(ds) > 0 && len(p) != ds.Dim() {
			return nil, fmt.Errorf("dataset: line %d has %d coordinates, want %d", lineNo, len(p), ds.Dim())
		}
		ds = append(ds, p)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(ds) == 0 {
		return nil, errors.New("dataset: no points found in CSV input")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteCSV writes the dataset as CSV: one point per line, comma-separated
// coordinates with full float64 precision.
func WriteCSV(w io.Writer, ds metric.Dataset) error {
	if w == nil {
		return errors.New("dataset: nil writer")
	}
	bw := bufio.NewWriter(w)
	for _, p := range ds {
		for i, c := range p {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(c, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadCSVFile reads a dataset from a CSV file on disk.
func LoadCSVFile(path string) (metric.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(f)
}

// SaveCSVFile writes a dataset to a CSV file on disk, creating or truncating
// it.
func SaveCSVFile(path string, ds metric.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := WriteCSV(f, ds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
