package gmm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"coresetclustering/internal/metric"
)

func parallelTestDataset(n, dim int, seed int64) metric.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := make(metric.Dataset, n)
	for i := range ds {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		ds[i] = p
	}
	// Duplicate some points so the farthest scan hits genuine ties and the
	// lowest-index tie-break is exercised.
	for i := 5; i+50 < n; i += 50 {
		ds[i+13] = ds[i].Clone()
	}
	return ds
}

func requireSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Radius != want.Radius {
		t.Fatalf("%s: radius = %v, want %v", label, got.Radius, want.Radius)
	}
	if got.RadiusAtK != want.RadiusAtK {
		t.Fatalf("%s: radiusAtK = %v, want %v", label, got.RadiusAtK, want.RadiusAtK)
	}
	if len(got.CenterIndices) != len(want.CenterIndices) {
		t.Fatalf("%s: %d centers, want %d", label, len(got.CenterIndices), len(want.CenterIndices))
	}
	for i := range want.CenterIndices {
		if got.CenterIndices[i] != want.CenterIndices[i] {
			t.Fatalf("%s: center %d = index %d, want %d", label, i, got.CenterIndices[i], want.CenterIndices[i])
		}
	}
	for i := range want.Assignment {
		if got.Assignment[i] != want.Assignment[i] {
			t.Fatalf("%s: assignment[%d] = %d, want %d", label, i, got.Assignment[i], want.Assignment[i])
		}
	}
}

// TestRunnerDeterminismAcrossWorkers is the determinism golden for the GMM
// family: for sizes straddling the engine's sequential cutoff, every Runner
// entry point must produce bit-identical centers, radii and assignments at
// workers = 1 and workers = 8 (and at the auto setting).
func TestRunnerDeterminismAcrossWorkers(t *testing.T) {
	for _, n := range []int{40, 1000, 9000} {
		ds := parallelTestDataset(n, 3, int64(n)*7)
		k := 12
		seq := Runner{Dist: metric.Euclidean, Workers: 1}
		for _, w := range []int{0, 2, 8} {
			par := Runner{Dist: metric.Euclidean, Workers: w}

			want, err := seq.Run(ds, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.Run(ds, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "Run", want, got)

			want, err = seq.RunIncremental(ds, k, 0.25, 4*k, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err = par.RunIncremental(ds, k, 0.25, 4*k, 0)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "RunIncremental", want, got)

			want, err = seq.RunToSize(ds, 3*k, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err = par.RunToSize(ds, 3*k, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "RunToSize", want, got)

			want, err = seq.RunToRadius(ds, want.Radius/2, 6*k, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err = par.RunToRadius(ds, want.Radius/2, 6*k, 0)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "RunToRadius", want, got)

			wantHist, err := seq.RadiusHistory(ds, 2*k, 0)
			if err != nil {
				t.Fatal(err)
			}
			gotHist, err := par.RadiusHistory(ds, 2*k, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantHist {
				if gotHist[i] != wantHist[i] {
					t.Fatalf("RadiusHistory[%d] = %v, want %v (n=%d w=%d)", i, gotHist[i], wantHist[i], n, w)
				}
			}
		}
	}
}

// TestRunnerDistanceBudgetAcrossWorkers checks that parallelism changes only
// the schedule, never the work: a k-center run performs exactly k*n distance
// evaluations (one initialisation pass plus k-1 update passes) whatever the
// worker count.
func TestRunnerDistanceBudgetAcrossWorkers(t *testing.T) {
	n, k := 9000, 7
	ds := parallelTestDataset(n, 2, 11)
	for _, w := range []int{1, 8} {
		c := metric.NewCounter(metric.Euclidean)
		if _, err := (Runner{Dist: c.Distance, Workers: w}).Run(ds, k, 0); err != nil {
			t.Fatal(err)
		}
		if got, want := c.Calls(), int64(k*n); got != want {
			t.Fatalf("workers=%d: %d distance calls, want exactly %d", w, got, want)
		}
	}

	// The native Space path must stay on the same budget: the nearest-center
	// cache is min-merged against the single new center per round via
	// UpdateNearest (one pass of n evaluations per selected center), never
	// rebuilt by a full rescan against all selected centers — a rescanning
	// implementation would need n*k*(k+1)/2 evaluations instead of k*n.
	for _, w := range []int{1, 8} {
		cs := metric.NewCountingSpace(metric.EuclideanSpace)
		if _, err := (Runner{Space: cs, Workers: w}).Run(ds, k, 0); err != nil {
			t.Fatal(err)
		}
		if got, want := cs.Evaluations(), int64(k*n); got != want {
			t.Fatalf("space path, workers=%d: %d evaluations, want exactly %d", w, got, want)
		}
	}
}

// TestRunnerConcurrentRuns exercises concurrent GMM runs sharing nothing but
// the input dataset (which the algorithm treats as immutable); run under
// -race this guards against the engine leaking state between runs.
func TestRunnerConcurrentRuns(t *testing.T) {
	ds := parallelTestDataset(9000, 2, 23)
	k := 6
	want, err := Runner{Dist: metric.Euclidean, Workers: 1}.Run(ds, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, err := Runner{Dist: metric.Euclidean, Workers: 4}.Run(ds, k, 0)
			if err != nil {
				errs[g] = err
				return
			}
			for i := range want.CenterIndices {
				if got.CenterIndices[i] != want.CenterIndices[i] {
					errs[g] = fmt.Errorf("center %d = index %d, want %d", i, got.CenterIndices[i], want.CenterIndices[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: concurrent run diverged or failed: %v", g, err)
		}
	}
}
