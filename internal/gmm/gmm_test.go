package gmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"coresetclustering/internal/metric"
)

func randomDataset(rng *rand.Rand, n, dim int, scale float64) metric.Dataset {
	ds := make(metric.Dataset, n)
	for i := range ds {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = (rng.Float64()*2 - 1) * scale
		}
		ds[i] = p
	}
	return ds
}

// clusteredDataset produces k well-separated Gaussian blobs.
func clusteredDataset(rng *rand.Rand, k, perCluster, dim int, separation, spread float64) metric.Dataset {
	var ds metric.Dataset
	for c := 0; c < k; c++ {
		center := make(metric.Point, dim)
		for j := range center {
			center[j] = float64(c) * separation
		}
		for i := 0; i < perCluster; i++ {
			p := make(metric.Point, dim)
			for j := range p {
				p[j] = center[j] + rng.NormFloat64()*spread
			}
			ds = append(ds, p)
		}
	}
	return ds
}

func TestRunErrors(t *testing.T) {
	ds := metric.Dataset{{0}, {1}}
	if _, err := Run(metric.Euclidean, nil, 1, 0); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Run(metric.Euclidean, ds, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(metric.Euclidean, ds, 1, 5); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if _, err := RunIncremental(metric.Euclidean, nil, 1, 0.5, 0, 0); err == nil {
		t.Error("incremental: empty input accepted")
	}
	if _, err := RunIncremental(metric.Euclidean, ds, 0, 0.5, 0, 0); err == nil {
		t.Error("incremental: k=0 accepted")
	}
	if _, err := RunIncremental(metric.Euclidean, ds, 1, -1, 0, 0); err == nil {
		t.Error("incremental: negative fraction accepted")
	}
	if _, err := RunIncremental(metric.Euclidean, ds, 1, 0.5, 0, 9); err == nil {
		t.Error("incremental: out-of-range seed accepted")
	}
	if _, err := RunToSize(metric.Euclidean, nil, 3, 1, 0); err == nil {
		t.Error("RunToSize: empty input accepted")
	}
	if _, err := RunToSize(metric.Euclidean, ds, 0, 1, 0); err == nil {
		t.Error("RunToSize: size 0 accepted")
	}
	if _, err := RunToSize(metric.Euclidean, ds, 1, 1, 7); err == nil {
		t.Error("RunToSize: out-of-range seed accepted")
	}
	if _, err := RunToRadius(metric.Euclidean, nil, 1, 0, 0); err == nil {
		t.Error("RunToRadius: empty input accepted")
	}
	if _, err := RunToRadius(metric.Euclidean, ds, -1, 0, 0); err == nil {
		t.Error("RunToRadius: negative radius accepted")
	}
	if _, err := RunToRadius(metric.Euclidean, ds, 1, 0, 9); err == nil {
		t.Error("RunToRadius: out-of-range seed accepted")
	}
	if _, err := RadiusHistory(metric.Euclidean, nil, 0, 0); err == nil {
		t.Error("RadiusHistory: empty input accepted")
	}
	if _, err := RadiusHistory(metric.Euclidean, ds, 0, 9); err == nil {
		t.Error("RadiusHistory: out-of-range seed accepted")
	}
}

func TestRunBasic(t *testing.T) {
	ds := metric.Dataset{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}}
	res, err := Run(metric.Euclidean, ds, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 4 {
		t.Fatalf("got %d centers, want 4", len(res.Centers))
	}
	// Radius must match a direct recomputation.
	want := metric.Radius(metric.Euclidean, ds, res.Centers)
	if math.Abs(res.Radius-want) > 1e-12 {
		t.Errorf("Radius = %v, recomputed %v", res.Radius, want)
	}
	// Assignment must be consistent with the closest center.
	for i, p := range ds {
		_, idx := metric.DistanceToSet(metric.Euclidean, p, res.Centers)
		if d1 := metric.Euclidean(p, res.Centers[res.Assignment[i]]); math.Abs(d1-metric.Euclidean(p, res.Centers[idx])) > 1e-12 {
			t.Errorf("assignment for point %d not closest", i)
		}
	}
}

func TestRunKLargerThanN(t *testing.T) {
	ds := metric.Dataset{{0}, {1}, {2}}
	res, err := Run(metric.Euclidean, ds, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("got %d centers, want 3", len(res.Centers))
	}
	if res.Radius != 0 {
		t.Errorf("radius = %v, want 0 when every point is a center", res.Radius)
	}
}

func TestRunDuplicatePoints(t *testing.T) {
	ds := metric.Dataset{{1, 1}, {1, 1}, {1, 1}, {5, 5}}
	res, err := Run(metric.Euclidean, ds, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("got %d centers, want 3 even with duplicates", len(res.Centers))
	}
	if res.Radius != 0 {
		t.Errorf("radius = %v, want 0 (two distinct locations, three centers)", res.Radius)
	}
}

func TestTwoApproximationProperty(t *testing.T) {
	// GMM radius <= 2 * optimal radius, checked against brute force on small
	// random instances.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8)
		k := 1 + rng.Intn(3)
		ds := randomDataset(rng, n, 2, 50)
		res, err := Run(metric.Euclidean, ds, k, 0)
		if err != nil {
			return false
		}
		opt, err := BruteForceOptimalRadius(metric.Euclidean, ds, k)
		if err != nil {
			return false
		}
		return res.Radius <= 2*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Errorf("2-approximation violated: %v", err)
	}
}

func TestLemma1SubsetProperty(t *testing.T) {
	// Lemma 1: running GMM on a subset X of S still yields r_T(X) <= 2 r*_k(S).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		k := 1 + rng.Intn(3)
		ds := randomDataset(rng, n, 2, 50)
		// Random subset of at least k points.
		subsetSize := k + rng.Intn(n-k+1)
		perm := rng.Perm(n)[:subsetSize]
		sub := make(metric.Dataset, 0, subsetSize)
		for _, i := range perm {
			sub = append(sub, ds[i])
		}
		res, err := Run(metric.Euclidean, sub, k, 0)
		if err != nil {
			return false
		}
		opt, err := BruteForceOptimalRadius(metric.Euclidean, ds, k)
		if err != nil {
			return false
		}
		return res.Radius <= 2*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("Lemma 1 violated: %v", err)
	}
}

func TestRadiusHistoryNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := randomDataset(rng, 60, 3, 10)
	hist, err := RadiusHistory(metric.Euclidean, ds, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != len(ds) {
		t.Fatalf("history length = %d, want %d", len(hist), len(ds))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i] > hist[i-1]+1e-12 {
			t.Fatalf("radius increased at step %d: %v -> %v", i, hist[i-1], hist[i])
		}
	}
	if hist[len(hist)-1] != 0 {
		t.Errorf("final radius = %v, want 0 when all points are centers", hist[len(hist)-1])
	}
}

func TestRunIncrementalStoppingRule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := clusteredDataset(rng, 4, 50, 3, 100, 1)
	k := 4
	eps := 0.5
	res, err := RunIncremental(metric.Euclidean, ds, k, eps/2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) < k {
		t.Fatalf("selected %d centers, want >= %d", len(res.Centers), k)
	}
	// The stopping rule: final radius <= (eps/2) * radius after k centers.
	if res.Radius > (eps/2)*res.RadiusAtK+1e-12 {
		t.Errorf("stopping rule violated: radius %v > %v", res.Radius, (eps/2)*res.RadiusAtK)
	}
}

func TestRunIncrementalMaxCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := randomDataset(rng, 100, 3, 10)
	res, err := RunIncremental(metric.Euclidean, ds, 5, 0.0001, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) > 20 {
		t.Errorf("maxCenters not respected: %d centers", len(res.Centers))
	}
}

func TestRunIncrementalZeroFractionStopsAtExhaustion(t *testing.T) {
	ds := metric.Dataset{{0}, {1}, {2}, {3}}
	res, err := RunIncremental(metric.Euclidean, ds, 2, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// stopFraction 0 forces selecting every point (radius 0).
	if res.Radius != 0 {
		t.Errorf("radius = %v, want 0", res.Radius)
	}
	if len(res.Centers) != len(ds) {
		t.Errorf("centers = %d, want %d", len(res.Centers), len(ds))
	}
}

func TestRunToSize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := randomDataset(rng, 200, 3, 10)
	res, err := RunToSize(metric.Euclidean, ds, 40, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 40 {
		t.Fatalf("centers = %d, want 40", len(res.Centers))
	}
	// RadiusAtK records the radius after the first 10 centers and must be at
	// least the final radius.
	if res.RadiusAtK < res.Radius-1e-12 {
		t.Errorf("RadiusAtK (%v) < final radius (%v)", res.RadiusAtK, res.Radius)
	}
	// Requesting more centers than points caps at n.
	res2, err := RunToSize(metric.Euclidean, ds[:5], 50, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Centers) != 5 {
		t.Errorf("centers = %d, want 5", len(res2.Centers))
	}
	// refCenters <= 0 defaults to targetSize.
	if _, err := RunToSize(metric.Euclidean, ds, 10, 0, 0); err != nil {
		t.Errorf("refCenters=0 should default: %v", err)
	}
}

func TestRunToRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := clusteredDataset(rng, 3, 30, 2, 50, 0.5)
	res, err := RunToRadius(metric.Euclidean, ds, 2.0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius > 2.0 {
		t.Errorf("radius = %v, want <= 2", res.Radius)
	}
	// With maxCenters too small to reach the target the cap wins.
	res2, err := RunToRadius(metric.Euclidean, ds, 0.000001, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Centers) > 5 {
		t.Errorf("maxCenters not respected: %d", len(res2.Centers))
	}
}

func TestCentersAreInputPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := randomDataset(rng, 50, 4, 20)
	res, err := Run(metric.Euclidean, ds, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CenterIndices) != len(res.Centers) {
		t.Fatalf("indices/centers length mismatch")
	}
	seen := map[int]bool{}
	for i, ci := range res.CenterIndices {
		if ci < 0 || ci >= len(ds) {
			t.Fatalf("center index %d out of range", ci)
		}
		if seen[ci] {
			t.Fatalf("duplicate center index %d", ci)
		}
		seen[ci] = true
		if !res.Centers[i].Equal(ds[ci]) {
			t.Fatalf("center %d does not match dataset point %d", i, ci)
		}
	}
}

func TestBruteForceOptimalRadius(t *testing.T) {
	ds := metric.Dataset{{0}, {1}, {10}, {11}}
	opt, err := BruteForceOptimalRadius(metric.Euclidean, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Errorf("optimal radius = %v, want 1", opt)
	}
	if got, _ := BruteForceOptimalRadius(metric.Euclidean, ds, 4); got != 0 {
		t.Errorf("k=n optimal radius = %v, want 0", got)
	}
	if _, err := BruteForceOptimalRadius(metric.Euclidean, nil, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := BruteForceOptimalRadius(metric.Euclidean, ds, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestBruteForceOptimalRadiusWithOutliers(t *testing.T) {
	// Two tight clusters plus one far outlier: with z=1 the outlier is free.
	ds := metric.Dataset{{0}, {1}, {10}, {11}, {1000}}
	opt, err := BruteForceOptimalRadiusWithOutliers(metric.Euclidean, ds, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Errorf("optimal radius with outlier = %v, want 1", opt)
	}
	noOut, err := BruteForceOptimalRadiusWithOutliers(metric.Euclidean, ds, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if noOut <= opt {
		t.Errorf("radius without outlier budget (%v) should exceed with budget (%v)", noOut, opt)
	}
	if got, _ := BruteForceOptimalRadiusWithOutliers(metric.Euclidean, ds, 3, 2); got != 0 {
		t.Errorf("k+z>=n radius = %v, want 0", got)
	}
	if _, err := BruteForceOptimalRadiusWithOutliers(metric.Euclidean, nil, 1, 0); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := BruteForceOptimalRadiusWithOutliers(metric.Euclidean, ds, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// Negative z behaves as zero.
	a, _ := BruteForceOptimalRadiusWithOutliers(metric.Euclidean, ds, 2, -3)
	if a != noOut {
		t.Errorf("negative z radius = %v, want %v", a, noOut)
	}
}

func TestRunSeedIndependenceOfGuarantee(t *testing.T) {
	// The 2-approximation holds for any seed.
	rng := rand.New(rand.NewSource(9))
	ds := randomDataset(rng, 12, 2, 30)
	k := 3
	opt, err := BruteForceOptimalRadius(metric.Euclidean, ds, k)
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < len(ds); seed++ {
		res, err := Run(metric.Euclidean, ds, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Radius > 2*opt+1e-9 {
			t.Errorf("seed %d: radius %v > 2*opt %v", seed, res.Radius, 2*opt)
		}
	}
}

func TestRadiusHistoryMaxCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds := randomDataset(rng, 30, 2, 10)
	hist, err := RadiusHistory(metric.Euclidean, ds, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 7 {
		t.Errorf("history length = %d, want 7", len(hist))
	}
}
