// Package gmm implements Gonzalez' greedy farthest-point algorithm (GMM) for
// the k-center problem, both in its classic fixed-k form and in the
// incremental form the paper uses to grow composable coresets: keep selecting
// centers beyond k until the residual radius drops below a target fraction of
// the k-center radius.
//
// GMM is a 2-approximation for k-center (Gonzalez, 1985) and, crucially for
// the coreset constructions, Lemma 1 of the paper shows that when run on a
// subset X of S it still guarantees r_T(X) <= 2 * r*_k(S).
package gmm

import (
	"errors"
	"fmt"
	"math"

	"coresetclustering/internal/metric"
)

// ErrEmptyInput is returned when the input dataset is empty.
var ErrEmptyInput = errors.New("gmm: empty input dataset")

// ErrInvalidK is returned when k is not positive.
var ErrInvalidK = errors.New("gmm: k must be positive")

// Result describes the outcome of a GMM run.
type Result struct {
	// Centers are the selected centers, in selection order (the first center
	// is the seed, each subsequent one is the point farthest from the
	// previously selected set).
	Centers metric.Dataset
	// CenterIndices are the indices of the centers within the input dataset,
	// in the same order as Centers.
	CenterIndices []int
	// Radius is the radius of the input with respect to Centers, i.e.
	// max_s d(s, Centers).
	Radius float64
	// RadiusAtK is the radius after the first k centers were selected. For a
	// plain Run it equals Radius; for incremental runs it is the reference
	// value the stopping rule compares against.
	RadiusAtK float64
	// Assignment maps every input point to the index (into Centers) of its
	// closest center.
	Assignment []int
}

// Runner bundles the metric space with the parallelism degree of the
// distance engine. Every per-iteration O(n) pass of the greedy (the farthest
// scan and the nearest-center cache update) is chunked across Workers
// goroutines and runs on the space's batched UpdateNearest kernel in the
// surrogate domain; results are bit-identical to the sequential path for any
// worker count (see the determinism contract in internal/metric/parallel.go).
type Runner struct {
	// Dist is the metric. When Space is nil it is upgraded to its native
	// Space (built-in functions) or wrapped in the identity-surrogate
	// adapter (custom functions); nil defaults to Euclidean.
	Dist metric.Distance
	// Space, when non-nil, overrides Dist as the metric space: the batched
	// kernels and the comparison-domain surrogate of the space drive every
	// inner loop.
	Space metric.Space
	// Workers is the parallelism degree: <= 0 selects one worker per CPU,
	// 1 forces the sequential path.
	Workers int
}

// space resolves the runner's metric space.
func (r Runner) space() metric.Space {
	if r.Space != nil {
		return r.Space
	}
	return metric.SpaceFor(r.Dist)
}

// Run executes the classic GMM algorithm selecting exactly k centers
// (or len(points) centers if k >= len(points)). The first center is
// points[seedIndex]; pass 0 for the conventional deterministic choice.
//
// Run (like every package-level wrapper here) uses the auto-parallel
// distance engine — one worker per CPU, with a sequential fallback for
// small inputs. This is a deliberate default: results are bit-identical to
// the sequential path, so only wall-clock time changes. Use a Runner with
// Workers: 1 to pin the sequential schedule (e.g. for baseline timings).
func Run(dist metric.Distance, points metric.Dataset, k int, seedIndex int) (*Result, error) {
	return Runner{Dist: dist}.Run(points, k, seedIndex)
}

// Run is the Runner form of the package-level Run.
func (r Runner) Run(points metric.Dataset, k int, seedIndex int) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrEmptyInput
	}
	if k <= 0 {
		return nil, ErrInvalidK
	}
	if k > len(points) {
		k = len(points)
	}
	if seedIndex < 0 || seedIndex >= len(points) {
		return nil, fmt.Errorf("gmm: seed index %d out of range [0,%d)", seedIndex, len(points))
	}
	st := newState(r, points, seedIndex)
	for st.size() < k {
		if !st.addFarthest() {
			break
		}
	}
	return st.result(k), nil
}

// RunIncremental executes GMM incrementally: it always selects at least
// minCenters centers and keeps adding centers until the residual radius is at
// most stopFraction times the radius attained after the first minCenters
// centers (the paper's stopping rule with stopFraction = eps/2), or until the
// dataset is exhausted, or until maxCenters centers have been selected
// (maxCenters <= 0 means unbounded).
//
// This is the first-round computation of the MapReduce coreset construction:
// minCenters = k (or k+z), stopFraction = eps/2.
func RunIncremental(dist metric.Distance, points metric.Dataset, minCenters int, stopFraction float64, maxCenters int, seedIndex int) (*Result, error) {
	return Runner{Dist: dist}.RunIncremental(points, minCenters, stopFraction, maxCenters, seedIndex)
}

// RunIncremental is the Runner form of the package-level RunIncremental.
func (r Runner) RunIncremental(points metric.Dataset, minCenters int, stopFraction float64, maxCenters int, seedIndex int) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrEmptyInput
	}
	if minCenters <= 0 {
		return nil, ErrInvalidK
	}
	if stopFraction < 0 {
		return nil, fmt.Errorf("gmm: negative stop fraction %v", stopFraction)
	}
	if seedIndex < 0 || seedIndex >= len(points) {
		return nil, fmt.Errorf("gmm: seed index %d out of range [0,%d)", seedIndex, len(points))
	}
	if minCenters > len(points) {
		minCenters = len(points)
	}
	st := newState(r, points, seedIndex)
	for st.size() < minCenters {
		if !st.addFarthest() {
			break
		}
	}
	radiusAtMin := st.currentRadius()
	target := stopFraction * radiusAtMin
	for st.currentRadius() > target {
		if maxCenters > 0 && st.size() >= maxCenters {
			break
		}
		if !st.addFarthest() {
			break
		}
	}
	res := st.result(minCenters)
	res.RadiusAtK = radiusAtMin
	return res, nil
}

// RunToSize executes GMM until exactly targetSize centers have been selected
// (or the dataset is exhausted), recording the radius attained after the first
// refCenters centers. This mirrors how the paper's experiments size coresets
// directly (tau = mu*k or mu*(k+z)) instead of going through the precision
// parameter eps.
func RunToSize(dist metric.Distance, points metric.Dataset, targetSize, refCenters, seedIndex int) (*Result, error) {
	return Runner{Dist: dist}.RunToSize(points, targetSize, refCenters, seedIndex)
}

// RunToSize is the Runner form of the package-level RunToSize.
func (r Runner) RunToSize(points metric.Dataset, targetSize, refCenters, seedIndex int) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrEmptyInput
	}
	if targetSize <= 0 {
		return nil, ErrInvalidK
	}
	if refCenters <= 0 {
		refCenters = targetSize
	}
	if seedIndex < 0 || seedIndex >= len(points) {
		return nil, fmt.Errorf("gmm: seed index %d out of range [0,%d)", seedIndex, len(points))
	}
	if targetSize > len(points) {
		targetSize = len(points)
	}
	if refCenters > len(points) {
		refCenters = len(points)
	}
	st := newState(r, points, seedIndex)
	radiusAtRef := math.NaN()
	for st.size() < targetSize {
		if st.size() == refCenters && math.IsNaN(radiusAtRef) {
			radiusAtRef = st.currentRadius()
		}
		if !st.addFarthest() {
			break
		}
	}
	if math.IsNaN(radiusAtRef) {
		radiusAtRef = st.currentRadius()
	}
	res := st.result(refCenters)
	res.RadiusAtK = radiusAtRef
	return res, nil
}

// RunToRadius executes GMM until the residual radius is at most targetRadius
// (or the dataset is exhausted, or maxCenters centers are selected when
// maxCenters > 0). It supports the "grow until a target radius is achieved"
// usage mentioned in Section 2 of the paper.
func RunToRadius(dist metric.Distance, points metric.Dataset, targetRadius float64, maxCenters, seedIndex int) (*Result, error) {
	return Runner{Dist: dist}.RunToRadius(points, targetRadius, maxCenters, seedIndex)
}

// RunToRadius is the Runner form of the package-level RunToRadius.
func (r Runner) RunToRadius(points metric.Dataset, targetRadius float64, maxCenters, seedIndex int) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrEmptyInput
	}
	if targetRadius < 0 {
		return nil, fmt.Errorf("gmm: negative target radius %v", targetRadius)
	}
	if seedIndex < 0 || seedIndex >= len(points) {
		return nil, fmt.Errorf("gmm: seed index %d out of range [0,%d)", seedIndex, len(points))
	}
	st := newState(r, points, seedIndex)
	for st.currentRadius() > targetRadius {
		if maxCenters > 0 && st.size() >= maxCenters {
			break
		}
		if !st.addFarthest() {
			break
		}
	}
	return st.result(st.size()), nil
}

// state maintains, for every input point, the SURROGATE distance to the
// closest center selected so far, allowing each new center to be added in
// O(n) distance evaluations (the standard O(k*n) implementation of GMM) —
// the cache is only ever min-merged against the single new center per round
// via the space's batched UpdateNearest kernel, never rebuilt by a full
// rescan. The two O(n) passes per iteration (farthest scan, cache update)
// run on the parallel distance engine; per-point cache entries are only ever
// written by the worker owning that point's chunk, so the caches stay
// coherent without locks, and all reductions follow the engine's
// deterministic ordering. Radii are converted out of the surrogate domain
// once per selection round (one FromSurrogate per reported radius, never one
// per evaluation).
type state struct {
	sp      metric.Space
	eng     metric.Engine
	points  metric.Dataset
	centers []int     // indices into points, in selection order
	minDist []float64 // minDist[i] = surrogate d(points[i], current centers)
	closest []int     // closest[i] = index into centers of the closest center
	radii   []float64 // radii[j] = TRUE radius after j+1 centers were selected
}

func newState(r Runner, points metric.Dataset, seedIndex int) *state {
	st := &state{
		sp:      r.space(),
		eng:     metric.NewEngine(r.Workers),
		points:  points,
		minDist: make([]float64, len(points)),
		closest: make([]int, len(points)),
	}
	for i := range st.minDist {
		st.minDist[i] = math.Inf(1) // "no center yet"
	}
	seed := points[seedIndex]
	st.radii = append(st.radii, st.updateCaches(seed, 0))
	st.centers = append(st.centers, seedIndex)
	return st
}

// updateCaches min-merges the caches against a newly selected center c (with
// index newIdx into centers) and returns the new TRUE radius
// FromSurrogate(max_i minDist[i]). The pass is chunked across the engine's
// workers; each chunk's partial max is reduced in chunk order, which yields
// the exact same float as the sequential scan (max is associative and
// commutative, and FromSurrogate is monotone).
func (st *state) updateCaches(c metric.Point, newIdx int) float64 {
	n := len(st.points)
	var m float64
	if st.eng.Sequential(n) {
		m = st.sp.UpdateNearest(st.minDist, st.closest, c, newIdx, st.points)
	} else {
		nc := st.eng.NumChunks(n)
		maxes := make([]float64, nc)
		st.eng.ForEachChunk(n, func(chunk, lo, hi int) {
			maxes[chunk] = st.sp.UpdateNearest(st.minDist[lo:hi], st.closest[lo:hi], c, newIdx, st.points[lo:hi])
		})
		m = math.Inf(-1)
		for _, v := range maxes {
			if v > m {
				m = v
			}
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return st.sp.FromSurrogate(m)
}

func (st *state) size() int { return len(st.centers) }

func (st *state) currentRadius() float64 { return st.radii[len(st.radii)-1] }

// addFarthest selects the point farthest from the current center set as the
// next center and updates the cached distances. It returns false when every
// point is already a center (radius 0 with all points covered exactly), in
// which case no new center is added.
func (st *state) addFarthest() bool {
	if len(st.centers) >= len(st.points) {
		return false
	}
	// Find the farthest point (parallel argmax over the surrogate caches;
	// ties resolve to the lowest index, as in a sequential left-to-right
	// scan).
	far, farDist := st.eng.ArgMax(st.minDist)
	if far < 0 {
		return false
	}
	if st.sp.FromSurrogate(farDist) == 0 {
		// Every remaining point coincides with an existing center; adding
		// duplicates would not decrease the radius. Still allow growth so
		// callers asking for exactly k centers get k of them.
		far = st.firstNonCenter()
		if far < 0 {
			return false
		}
	}
	newIdx := len(st.centers)
	st.centers = append(st.centers, far)
	st.radii = append(st.radii, st.updateCaches(st.points[far], newIdx))
	return true
}

// firstNonCenter returns the index of the first point that is not already a
// center, or -1 if all points are centers.
func (st *state) firstNonCenter() int {
	isCenter := make(map[int]bool, len(st.centers))
	for _, c := range st.centers {
		isCenter[c] = true
	}
	for i := range st.points {
		if !isCenter[i] {
			return i
		}
	}
	return -1
}

// result snapshots the state into a Result. refCenters selects which entry of
// the radius history populates RadiusAtK.
func (st *state) result(refCenters int) *Result {
	centers := make(metric.Dataset, len(st.centers))
	indices := make([]int, len(st.centers))
	for i, ci := range st.centers {
		centers[i] = st.points[ci]
		indices[i] = ci
	}
	assignment := make([]int, len(st.points))
	copy(assignment, st.closest)
	radiusAtK := st.currentRadius()
	if refCenters >= 1 && refCenters <= len(st.radii) {
		radiusAtK = st.radii[refCenters-1]
	}
	return &Result{
		Centers:       centers,
		CenterIndices: indices,
		Radius:        st.currentRadius(),
		RadiusAtK:     radiusAtK,
		Assignment:    assignment,
	}
}

// RadiusHistory exposes, for testing and diagnostics, the sequence of radii
// attained after each center selection of a full GMM run on the dataset (up to
// maxCenters centers, or all points if maxCenters <= 0). The sequence is
// non-increasing.
func RadiusHistory(dist metric.Distance, points metric.Dataset, maxCenters, seedIndex int) ([]float64, error) {
	return Runner{Dist: dist}.RadiusHistory(points, maxCenters, seedIndex)
}

// RadiusHistory is the Runner form of the package-level RadiusHistory.
func (r Runner) RadiusHistory(points metric.Dataset, maxCenters, seedIndex int) ([]float64, error) {
	if len(points) == 0 {
		return nil, ErrEmptyInput
	}
	if seedIndex < 0 || seedIndex >= len(points) {
		return nil, fmt.Errorf("gmm: seed index %d out of range [0,%d)", seedIndex, len(points))
	}
	if maxCenters <= 0 || maxCenters > len(points) {
		maxCenters = len(points)
	}
	st := newState(r, points, seedIndex)
	for st.size() < maxCenters {
		if !st.addFarthest() {
			break
		}
	}
	out := make([]float64, len(st.radii))
	copy(out, st.radii)
	return out, nil
}

// BruteForceOptimalRadius computes the exact optimal k-center radius of a
// small dataset by exhaustive search over all k-subsets of candidate centers.
// It is exponential in k and intended exclusively for tests that validate the
// approximation guarantees on tiny instances.
func BruteForceOptimalRadius(dist metric.Distance, points metric.Dataset, k int) (float64, error) {
	n := len(points)
	if n == 0 {
		return 0, ErrEmptyInput
	}
	if k <= 0 {
		return 0, ErrInvalidK
	}
	if k >= n {
		return 0, nil
	}
	best := math.Inf(1)
	idx := make([]int, k)
	var rec func(start, pos int)
	rec = func(start, pos int) {
		if pos == k {
			centers := make(metric.Dataset, k)
			for i, ci := range idx {
				centers[i] = points[ci]
			}
			if r := metric.Radius(dist, points, centers); r < best {
				best = r
			}
			return
		}
		for i := start; i < n; i++ {
			idx[pos] = i
			rec(i+1, pos+1)
		}
	}
	rec(0, 0)
	return best, nil
}

// BruteForceOptimalRadiusWithOutliers computes the exact optimal radius of the
// k-center problem with z outliers on a small dataset by exhaustive search
// over all k-subsets of centers, discarding the z farthest points for each
// candidate set. Exponential in k; tests only.
func BruteForceOptimalRadiusWithOutliers(dist metric.Distance, points metric.Dataset, k, z int) (float64, error) {
	n := len(points)
	if n == 0 {
		return 0, ErrEmptyInput
	}
	if k <= 0 {
		return 0, ErrInvalidK
	}
	if z < 0 {
		z = 0
	}
	if k+z >= n {
		return 0, nil
	}
	best := math.Inf(1)
	idx := make([]int, k)
	var rec func(start, pos int)
	rec = func(start, pos int) {
		if pos == k {
			centers := make(metric.Dataset, k)
			for i, ci := range idx {
				centers[i] = points[ci]
			}
			if r := metric.RadiusExcluding(dist, points, centers, z); r < best {
				best = r
			}
			return
		}
		for i := start; i < n; i++ {
			idx[pos] = i
			rec(i+1, pos+1)
		}
	}
	rec(0, 0)
	return best, nil
}
