package experiments

import (
	"fmt"

	"coresetclustering/internal/core"
	"coresetclustering/internal/dataset"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/outliers"
	"coresetclustering/internal/stats"
)

// Figure8Config parameterises the sequential comparison of Figure 8: on a
// small sample of each dataset (the paper uses 10,000 points so the quadratic
// baseline stays feasible), compare the running time and clustering radius of
//
//   - CharikarEtAl: the original sequential algorithm for k-center with
//     outliers;
//   - MalkomesEtAl: our sequential coreset algorithm with mu = 1;
//   - Ours(mu): the sequential coreset algorithm with mu = 2, 4, 8.
type Figure8Config struct {
	Datasets []dataset.Name
	// SampleN is the sample size per dataset.
	SampleN int
	K       int
	Z       int
	// Mus are the coreset multipliers beyond the MalkomesEtAl baseline
	// (paper: 2, 4, 8).
	Mus    []int
	EpsHat float64
	Runs   int
	Seed   int64
}

// DefaultFigure8Config returns the laptop-scale defaults.
func DefaultFigure8Config() Figure8Config {
	return Figure8Config{
		SampleN: 1200,
		K:       10,
		Z:       30,
		Mus:     []int{2, 4, 8},
		EpsHat:  0.25,
		Runs:    defaultRuns,
		Seed:    7,
	}
}

// Figure8Row is one bar of Figure 8.
type Figure8Row struct {
	Dataset   dataset.Name
	Algorithm string // "CharikarEtAl", "MalkomesEtAl", "Ours(mu=2)", ...
	Time      stats.Summary
	Radius    stats.Summary
}

// Figure8Result holds the comparison.
type Figure8Result struct {
	Rows []Figure8Row
}

// Table renders the result.
func (r *Figure8Result) Table() *stats.Table {
	t := stats.NewTable("Figure 8: sequential algorithms on dataset samples (time and radius)",
		"dataset", "algorithm", "time(s)", "radius")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Algorithm, row.Time, row.Radius)
	}
	return t
}

// RunFigure8 executes the Figure 8 comparison.
func RunFigure8(cfg Figure8Config) (*Figure8Result, error) {
	if cfg.SampleN <= 0 || cfg.K <= 0 || cfg.Z < 0 {
		return nil, fmt.Errorf("experiments: invalid Figure 8 config %+v", cfg)
	}
	cfg.Runs = clampRuns(cfg.Runs)

	names := cfg.Datasets
	if len(names) == 0 {
		names = dataset.Names()
	}

	type algo struct {
		name string
		run  func(pts metric.Dataset) (metric.Dataset, error)
	}
	algos := []algo{
		{
			name: "CharikarEtAl",
			run: func(pts metric.Dataset) (metric.Dataset, error) {
				res, err := outliers.CharikarEtAl(metric.Euclidean, pts, cfg.K, cfg.Z)
				if err != nil {
					return nil, err
				}
				return res.Centers, nil
			},
		},
		{
			name: "MalkomesEtAl",
			run: func(pts metric.Dataset) (metric.Dataset, error) {
				res, err := core.SequentialKCenterOutliers(pts, cfg.K, cfg.Z, cfg.K+cfg.Z, cfg.EpsHat, nil)
				if err != nil {
					return nil, err
				}
				return res.Centers, nil
			},
		},
	}
	for _, mu := range cfg.Mus {
		mu := mu
		algos = append(algos, algo{
			name: fmt.Sprintf("Ours(mu=%d)", mu),
			run: func(pts metric.Dataset) (metric.Dataset, error) {
				res, err := core.SequentialKCenterOutliers(pts, cfg.K, cfg.Z, mu*(cfg.K+cfg.Z), cfg.EpsHat, nil)
				if err != nil {
					return nil, err
				}
				return res.Centers, nil
			},
		})
	}

	out := &Figure8Result{}
	for di, name := range names {
		full, err := dataset.Generate(name, cfg.SampleN*2, cfg.Seed+int64(di)*307)
		if err != nil {
			return nil, err
		}
		sample := dataset.Sample(full, cfg.SampleN, cfg.Seed+int64(di))
		inj, err := dataset.InjectOutliers(sample, cfg.Z, cfg.Seed+int64(di)*11)
		if err != nil {
			return nil, err
		}
		for _, a := range algos {
			var seconds, radii []float64
			for run := 0; run < cfg.Runs; run++ {
				shuffled := dataset.Shuffle(inj.Points, cfg.Seed+int64(run)*13)
				var centers metric.Dataset
				elapsed, err := timeIt(func() error {
					var err error
					centers, err = a.run(shuffled)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: figure 8 %s on %s: %w", a.name, name, err)
				}
				seconds = append(seconds, elapsed.Seconds())
				radii = append(radii, metric.NewEngine(1).RadiusExcluding(metric.EuclideanSpace, shuffled, centers, cfg.Z))
			}
			ts, err := stats.Summarize(seconds)
			if err != nil {
				return nil, err
			}
			rs, err := stats.Summarize(radii)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, Figure8Row{Dataset: name, Algorithm: a.name, Time: ts, Radius: rs})
		}
	}
	return out, nil
}
