package experiments

import (
	"strings"
	"testing"

	"coresetclustering/internal/dataset"
)

// tiny returns a fast, single-dataset variant of each default config so the
// integration tests stay quick; the full-scale sweeps run from
// cmd/experiments and the benchmarks.
func tinyDatasets() []dataset.Name { return []dataset.Name{dataset.Higgs} }

func TestBuildWorkloads(t *testing.T) {
	ws, err := buildWorkloads(nil, 200, func(n dataset.Name) int { return 5 }, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("workloads = %d, want 3 (all families)", len(ws))
	}
	for _, w := range ws {
		if len(w.Points) != 200 || w.K != 5 || w.Z != 0 {
			t.Errorf("workload %s malformed: n=%d k=%d z=%d", w.Name, len(w.Points), w.K, w.Z)
		}
	}
	ws, err = buildWorkloads(tinyDatasets(), 150, func(n dataset.Name) int { return 4 }, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || len(ws[0].Points) != 160 || len(ws[0].OutlierIndices) != 10 {
		t.Errorf("outlier workload malformed: %+v", ws[0])
	}
	if _, err := buildWorkloads(tinyDatasets(), 0, func(n dataset.Name) int { return 4 }, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestRatioTracker(t *testing.T) {
	rt := newRatioTracker()
	rt.observe("a", 4)
	rt.observe("a", 2)
	rt.observe("b", 10)
	if got := rt.ratio("a", 4); got != 2 {
		t.Errorf("ratio = %v, want 2", got)
	}
	if got := rt.ratio("b", 10); got != 1 {
		t.Errorf("ratio = %v, want 1", got)
	}
}

func TestClampRuns(t *testing.T) {
	if got := clampRuns(0); got != defaultRuns {
		t.Errorf("clampRuns(0) = %d, want %d", got, defaultRuns)
	}
	if got := clampRuns(7); got != 7 {
		t.Errorf("clampRuns(7) = %d, want 7", got)
	}
}

func TestRunFigure2(t *testing.T) {
	cfg := Figure2Config{
		Datasets: tinyDatasets(),
		N:        600,
		K:        8,
		Ells:     []int{2, 4},
		Mus:      []int{1, 4},
		Runs:     2,
		Seed:     1,
	}
	res, err := RunFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	// Every ratio is at least 1 by definition of the protocol.
	for _, row := range res.Rows {
		if row.Ratio.Mean < 1-1e-9 {
			t.Errorf("%s ell=%d mu=%d ratio %v < 1", row.Dataset, row.Ell, row.Mu, row.Ratio.Mean)
		}
	}
	// The headline claim: for fixed ell, mu=4 is not worse than mu=1 (allow a
	// small tolerance for run-to-run noise).
	byKey := map[[2]int]float64{}
	for _, row := range res.Rows {
		byKey[[2]int{row.Ell, row.Mu}] = row.Ratio.Mean
	}
	for _, ell := range cfg.Ells {
		if byKey[[2]int{ell, 4}] > byKey[[2]int{ell, 1}]*1.15 {
			t.Errorf("ell=%d: mu=4 ratio (%v) worse than mu=1 (%v)", ell, byKey[[2]int{ell, 4}], byKey[[2]int{ell, 1}])
		}
	}
	if !strings.Contains(res.Table().String(), "Figure 2") {
		t.Error("table rendering broken")
	}
	if _, err := RunFigure2(Figure2Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunFigure3(t *testing.T) {
	cfg := Figure3Config{
		Datasets:    tinyDatasets(),
		N:           800,
		K:           8,
		Multipliers: []int{1, 4},
		Runs:        2,
		Seed:        2,
	}
	res, err := RunFigure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two algorithms x two multipliers x one dataset.
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Ratio.Mean < 1-1e-9 {
			t.Errorf("%s %s ratio %v < 1", row.Dataset, row.Algorithm, row.Ratio.Mean)
		}
		if row.Throughput.Mean <= 0 {
			t.Errorf("%s %s throughput not positive", row.Dataset, row.Algorithm)
		}
		if row.Space <= 0 {
			t.Errorf("%s %s space not recorded", row.Dataset, row.Algorithm)
		}
	}
	if !strings.Contains(res.Table().String(), "Figure 3") {
		t.Error("table rendering broken")
	}
	if _, err := RunFigure3(Figure3Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunFigure4(t *testing.T) {
	cfg := Figure4Config{
		Datasets: tinyDatasets(),
		N:        500,
		K:        4,
		Z:        10,
		Ell:      4,
		Mus:      []int{1, 4},
		EpsHat:   0.25,
		Runs:     2,
		Seed:     3,
	}
	res, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two variants x two multipliers x one dataset.
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	var detMu1, detMu4 float64
	for _, row := range res.Rows {
		if row.Ratio.Mean < 1-1e-9 {
			t.Errorf("%s %s mu=%d ratio %v < 1", row.Dataset, row.Variant, row.Mu, row.Ratio.Mean)
		}
		if row.Time.Mean < 0 {
			t.Errorf("negative time for %s %s", row.Dataset, row.Variant)
		}
		if row.Variant == "deterministic" && row.Mu == 1 {
			detMu1 = row.Ratio.Mean
		}
		if row.Variant == "deterministic" && row.Mu == 4 {
			detMu4 = row.Ratio.Mean
		}
	}
	// The Figure 4 shape: with adversarial partitioning the deterministic
	// algorithm improves (or at least does not get worse) as mu grows.
	if detMu4 > detMu1*1.15 {
		t.Errorf("deterministic mu=4 ratio (%v) worse than mu=1 (%v)", detMu4, detMu1)
	}
	if !strings.Contains(res.Table().String(), "Figure 4") {
		t.Error("table rendering broken")
	}
	if _, err := RunFigure4(Figure4Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunFigure5(t *testing.T) {
	cfg := Figure5Config{
		Datasets:    tinyDatasets(),
		N:           600,
		K:           4,
		Z:           10,
		Multipliers: []int{1, 2},
		EpsHat:      0.25,
		Runs:        2,
		Seed:        4,
	}
	res, err := RunFigure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	spaceByAlgo := map[string]int{}
	for _, row := range res.Rows {
		if row.Ratio.Mean < 1-1e-9 {
			t.Errorf("%s %s ratio %v < 1", row.Dataset, row.Algorithm, row.Ratio.Mean)
		}
		if row.Throughput.Mean <= 0 {
			t.Errorf("%s %s throughput not positive", row.Dataset, row.Algorithm)
		}
		if row.Multiplier == 2 {
			spaceByAlgo[row.Algorithm] = row.Space
		}
	}
	// The Figure 5 shape: the coreset algorithm uses less memory than the
	// baseline at the same multiplier.
	if spaceByAlgo["CoresetOutliers"] >= spaceByAlgo["BaseOutliers"] {
		t.Errorf("CoresetOutliers space (%d) not below BaseOutliers space (%d)",
			spaceByAlgo["CoresetOutliers"], spaceByAlgo["BaseOutliers"])
	}
	if !strings.Contains(res.Table().String(), "Figure 5") {
		t.Error("table rendering broken")
	}
	if _, err := RunFigure5(Figure5Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunFigure6(t *testing.T) {
	cfg := Figure6Config{
		Datasets: tinyDatasets(),
		BaseN:    400,
		Factors:  []int{1, 2},
		K:        4,
		Z:        8,
		Ell:      4,
		Mu:       2,
		EpsHat:   0.25,
		Runs:     2,
		Seed:     5,
	}
	res, err := RunFigure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[1].N <= res.Rows[0].N {
		t.Errorf("inflation did not grow the dataset: %d vs %d", res.Rows[1].N, res.Rows[0].N)
	}
	for _, row := range res.Rows {
		if row.TotalTime.Mean <= 0 {
			t.Errorf("non-positive total time for factor %d", row.Factor)
		}
	}
	if !strings.Contains(res.Table().String(), "Figure 6") {
		t.Error("table rendering broken")
	}
	if _, err := RunFigure6(Figure6Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunFigure7(t *testing.T) {
	cfg := Figure7Config{
		Datasets: tinyDatasets(),
		N:        2000,
		K:        4,
		Z:        8,
		Ells:     []int{1, 4},
		EpsHat:   0.25,
		Runs:     2,
		Seed:     6,
	}
	res, err := RunFigure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	// tau shrinks as ell grows (fixed union size).
	if res.Rows[1].Tau > res.Rows[0].Tau {
		t.Errorf("tau did not shrink with ell: %d -> %d", res.Rows[0].Tau, res.Rows[1].Tau)
	}
	if !strings.Contains(res.Table().String(), "Figure 7") {
		t.Error("table rendering broken")
	}
	if _, err := RunFigure7(Figure7Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunFigure8(t *testing.T) {
	cfg := Figure8Config{
		Datasets: tinyDatasets(),
		SampleN:  300,
		K:        4,
		Z:        8,
		Mus:      []int{2, 4},
		EpsHat:   0.25,
		Runs:     2,
		Seed:     7,
	}
	res, err := RunFigure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// CharikarEtAl + MalkomesEtAl + 2 coreset multipliers = 4 rows.
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	times := map[string]float64{}
	radii := map[string]float64{}
	for _, row := range res.Rows {
		if row.Time.Mean <= 0 {
			t.Errorf("%s time not positive", row.Algorithm)
		}
		times[row.Algorithm] = row.Time.Mean
		radii[row.Algorithm] = row.Radius.Mean
	}
	// Figure 8 shape: the coreset-based algorithms are faster than the
	// quadratic baseline, and the mu>=2 variants do not lose much quality.
	if times["Ours(mu=2)"] >= times["CharikarEtAl"] {
		t.Errorf("Ours(mu=2) time (%v) not below CharikarEtAl (%v)", times["Ours(mu=2)"], times["CharikarEtAl"])
	}
	if radii["Ours(mu=4)"] > 3*radii["CharikarEtAl"]+1e-9 {
		t.Errorf("Ours(mu=4) radius (%v) far worse than CharikarEtAl (%v)", radii["Ours(mu=4)"], radii["CharikarEtAl"])
	}
	if !strings.Contains(res.Table().String(), "Figure 8") {
		t.Error("table rendering broken")
	}
	if _, err := RunFigure8(Figure8Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDefaultConfigsAreValidShapes(t *testing.T) {
	// The defaults must at least pass their own validation (we do not run
	// them here; they power cmd/experiments and the benchmarks).
	if cfg := DefaultFigure2Config(); cfg.N <= 0 || len(cfg.Mus) == 0 || len(cfg.Ells) == 0 {
		t.Error("bad Figure 2 defaults")
	}
	if cfg := DefaultFigure3Config(); cfg.N <= 0 || len(cfg.Multipliers) == 0 {
		t.Error("bad Figure 3 defaults")
	}
	if cfg := DefaultFigure4Config(); cfg.N <= 0 || cfg.K <= 0 || len(cfg.Mus) == 0 {
		t.Error("bad Figure 4 defaults")
	}
	if cfg := DefaultFigure5Config(); cfg.N <= 0 || cfg.K <= 0 || len(cfg.Multipliers) == 0 {
		t.Error("bad Figure 5 defaults")
	}
	if cfg := DefaultFigure6Config(); cfg.BaseN <= 0 || len(cfg.Factors) == 0 {
		t.Error("bad Figure 6 defaults")
	}
	if cfg := DefaultFigure7Config(); cfg.N <= 0 || len(cfg.Ells) == 0 {
		t.Error("bad Figure 7 defaults")
	}
	if cfg := DefaultFigure8Config(); cfg.SampleN <= 0 || len(cfg.Mus) == 0 {
		t.Error("bad Figure 8 defaults")
	}
}
