package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"coresetclustering/internal/core"
	"coresetclustering/internal/dataset"
	"coresetclustering/internal/mapreduce"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/stats"
	"coresetclustering/internal/streaming"
)

// Figure4Config parameterises the MapReduce k-center-with-outliers comparison
// of Figure 4: deterministic versus randomized coresets under adversarial
// outlier placement, reporting ratio and running time per coreset multiplier.
type Figure4Config struct {
	Datasets []dataset.Name
	// N is the number of non-outlier points per dataset.
	N int
	// K and Z are the clustering parameters (paper: k=20, z=200; the
	// laptop-scale default shrinks z together with n).
	K int
	Z int
	// Ell is the parallelism (paper: 16).
	Ell int
	// Mus are the coreset multipliers (paper: 1, 2, 4, 8); mu = 1
	// deterministic is the MalkomesEtAl baseline.
	Mus []int
	// EpsHat is the OutliersCluster slack parameter.
	EpsHat float64
	Runs   int
	Seed   int64
	// Workers is the distance-engine parallelism of every clustering run
	// (<= 0 selects one worker per CPU, 1 forces the sequential path).
	Workers int
}

// DefaultFigure4Config returns the laptop-scale defaults.
func DefaultFigure4Config() Figure4Config {
	return Figure4Config{
		N:      3000,
		K:      10,
		Z:      30,
		Ell:    8,
		Mus:    []int{1, 2, 4, 8},
		EpsHat: 0.25,
		Runs:   defaultRuns,
		Seed:   3,
	}
}

// Figure4Row is one bar of Figure 4 (one variant at one multiplier).
type Figure4Row struct {
	Dataset     dataset.Name
	Variant     string // "deterministic" or "randomized"
	Mu          int
	CoresetSize int // per-partition coreset size tau
	Ratio       stats.Summary
	Time        stats.Summary // seconds
}

// Figure4Result holds the full sweep.
type Figure4Result struct {
	Rows []Figure4Row
}

// Table renders the result.
func (r *Figure4Result) Table() *stats.Table {
	t := stats.NewTable("Figure 4: MapReduce k-center with outliers, deterministic vs randomized (adversarial partitioning)",
		"dataset", "variant", "mu", "tau", "ratio", "time(s)")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Variant, row.Mu, row.CoresetSize, row.Ratio, row.Time)
	}
	return t
}

// RunFigure4 executes the Figure 4 sweep. The input is partitioned
// adversarially: all injected outliers land in the same partition, the
// placement the paper uses to stress the deterministic algorithm.
func RunFigure4(cfg Figure4Config) (*Figure4Result, error) {
	if cfg.N <= 0 || cfg.K <= 0 || cfg.Z < 0 || cfg.Ell <= 0 || len(cfg.Mus) == 0 {
		return nil, fmt.Errorf("experiments: invalid Figure 4 config %+v", cfg)
	}
	cfg.Runs = clampRuns(cfg.Runs)
	workloads, err := buildWorkloads(cfg.Datasets, cfg.N, func(dataset.Name) int { return cfg.K }, cfg.Z, cfg.Seed)
	if err != nil {
		return nil, err
	}

	type cell struct {
		w       Workload
		variant string
		mu      int
		tau     int
		radii   []float64
		seconds []float64
	}
	var cells []*cell
	tracker := newRatioTracker()

	for wi := range workloads {
		w := workloads[wi]
		for _, mu := range cfg.Mus {
			detTau := mu * (cfg.K + cfg.Z)
			randTau := mu * (cfg.K + 6*cfg.Z/cfg.Ell)
			det := &cell{w: w, variant: "deterministic", mu: mu, tau: detTau}
			rnd := &cell{w: w, variant: "randomized", mu: mu, tau: randTau}
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed + int64(run)*97 + int64(mu)

				// Deterministic variant with adversarial placement of the
				// outliers (all in one partition).
				var detRes *core.OutliersResult
				elapsed, err := timeIt(func() error {
					var err error
					detRes, err = core.KCenterOutliers(w.Points, core.OutliersConfig{
						K: cfg.K, Z: cfg.Z, Ell: cfg.Ell,
						CoresetSize: detTau,
						EpsHat:      cfg.EpsHat,
						Partitioner: mapreduce.AdversarialPartitioner{Targeted: w.OutlierIndices},
						Workers:     cfg.Workers,
					})
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: figure 4 deterministic %s mu=%d: %w", w.Name, mu, err)
				}
				det.radii = append(det.radii, detRes.Radius)
				det.seconds = append(det.seconds, elapsed.Seconds())
				tracker.observe(string(w.Name), detRes.Radius)

				// Randomized variant (random partitioning defeats the
				// adversarial placement).
				var rndRes *core.OutliersResult
				elapsed, err = timeIt(func() error {
					var err error
					rndRes, err = core.KCenterOutliers(w.Points, core.OutliersConfig{
						K: cfg.K, Z: cfg.Z, Ell: cfg.Ell,
						CoresetSize: randTau,
						EpsHat:      cfg.EpsHat,
						Randomized:  true,
						Rand:        rand.New(rand.NewSource(seed)),
						Workers:     cfg.Workers,
					})
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: figure 4 randomized %s mu=%d: %w", w.Name, mu, err)
				}
				rnd.radii = append(rnd.radii, rndRes.Radius)
				rnd.seconds = append(rnd.seconds, elapsed.Seconds())
				tracker.observe(string(w.Name), rndRes.Radius)
			}
			cells = append(cells, det, rnd)
		}
	}

	out := &Figure4Result{}
	for _, c := range cells {
		ratios := make([]float64, len(c.radii))
		for i, r := range c.radii {
			ratios[i] = tracker.ratio(string(c.w.Name), r)
		}
		ratio, err := stats.Summarize(ratios)
		if err != nil {
			return nil, err
		}
		secs, err := stats.Summarize(c.seconds)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure4Row{
			Dataset: c.w.Name, Variant: c.variant, Mu: c.mu, CoresetSize: c.tau,
			Ratio: ratio, Time: secs,
		})
	}
	return out, nil
}

// Figure5Config parameterises the streaming k-center-with-outliers comparison
// of Figure 5: CoresetOutliers (space mu*(k+z)) versus BaseOutliers (space
// roughly m*k*z), reporting ratio and throughput as functions of space.
type Figure5Config struct {
	Datasets []dataset.Name
	// N is the number of non-outlier points per dataset.
	N int
	K int
	Z int
	// Multipliers are the space multipliers for both algorithms (mu and m);
	// paper: 1, 2, 4, 8, 16.
	Multipliers []int
	// EpsHat is the OutliersCluster slack of the coreset algorithm.
	EpsHat float64
	Runs   int
	Seed   int64
}

// DefaultFigure5Config returns the laptop-scale defaults.
func DefaultFigure5Config() Figure5Config {
	return Figure5Config{
		N:           4000,
		K:           10,
		Z:           30,
		Multipliers: []int{1, 2, 4, 8},
		EpsHat:      0.25,
		Runs:        defaultRuns,
		Seed:        4,
	}
}

// Figure5Row is one point of one series of Figure 5.
type Figure5Row struct {
	Dataset    dataset.Name
	Algorithm  string // "CoresetOutliers" or "BaseOutliers"
	Multiplier int
	Space      int // peak working memory in points
	Ratio      stats.Summary
	Throughput stats.Summary
}

// Figure5Result holds both series for every dataset.
type Figure5Result struct {
	Rows []Figure5Row
}

// Table renders the result.
func (r *Figure5Result) Table() *stats.Table {
	t := stats.NewTable("Figure 5: streaming k-center with outliers, ratio and throughput vs space",
		"dataset", "algorithm", "multiplier", "space", "ratio", "pts/s")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Algorithm, row.Multiplier, row.Space, row.Ratio, row.Throughput)
	}
	return t
}

// RunFigure5 executes the Figure 5 sweep.
func RunFigure5(cfg Figure5Config) (*Figure5Result, error) {
	if cfg.N <= 0 || cfg.K <= 0 || cfg.Z < 0 || len(cfg.Multipliers) == 0 {
		return nil, fmt.Errorf("experiments: invalid Figure 5 config %+v", cfg)
	}
	cfg.Runs = clampRuns(cfg.Runs)
	workloads, err := buildWorkloads(cfg.Datasets, cfg.N, func(dataset.Name) int { return cfg.K }, cfg.Z, cfg.Seed)
	if err != nil {
		return nil, err
	}

	type cell struct {
		w          Workload
		algorithm  string
		multiplier int
		spaces     []float64
		radii      []float64
		throughput []float64
	}
	var cells []*cell
	tracker := newRatioTracker()

	for wi := range workloads {
		w := workloads[wi]
		for _, mult := range cfg.Multipliers {
			coresetCell := &cell{w: w, algorithm: "CoresetOutliers", multiplier: mult}
			baseCell := &cell{w: w, algorithm: "BaseOutliers", multiplier: mult}
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed + int64(run)*211 + int64(mult)
				shuffled := dataset.Shuffle(w.Points, seed)

				// CoresetOutliers.
				co, err := streaming.NewCoresetOutliers(nil, cfg.K, cfg.Z, mult*(cfg.K+cfg.Z), cfg.EpsHat)
				if err != nil {
					return nil, err
				}
				var elapsed time.Duration
				elapsed, err = timeIt(func() error {
					_, err := streaming.Drain(streaming.NewSliceSource(shuffled), co)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: figure 5 CoresetOutliers %s mu=%d: %w", w.Name, mult, err)
				}
				cres, err := co.Result()
				if err != nil {
					return nil, err
				}
				radius := metric.NewEngine(1).RadiusExcluding(metric.EuclideanSpace, shuffled, cres.Centers, cfg.Z)
				coresetCell.radii = append(coresetCell.radii, radius)
				coresetCell.throughput = append(coresetCell.throughput, stats.Throughput(int64(len(shuffled)), elapsed))
				coresetCell.spaces = append(coresetCell.spaces, float64(co.WorkingMemory()))
				tracker.observe(string(w.Name), radius)

				// BaseOutliers.
				bo, err := streaming.NewBaseOutliers(nil, cfg.K, cfg.Z, mult)
				if err != nil {
					return nil, err
				}
				elapsed, err = timeIt(func() error {
					_, err := streaming.Drain(streaming.NewSliceSource(shuffled), bo)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: figure 5 BaseOutliers %s m=%d: %w", w.Name, mult, err)
				}
				centers, err := bo.Result()
				if err != nil {
					return nil, err
				}
				radius = metric.NewEngine(1).RadiusExcluding(metric.EuclideanSpace, shuffled, centers, cfg.Z)
				baseCell.radii = append(baseCell.radii, radius)
				baseCell.throughput = append(baseCell.throughput, stats.Throughput(int64(len(shuffled)), elapsed))
				baseCell.spaces = append(baseCell.spaces, float64(bo.WorkingMemory()))
				tracker.observe(string(w.Name), radius)
			}
			cells = append(cells, coresetCell, baseCell)
		}
	}

	out := &Figure5Result{}
	for _, c := range cells {
		ratios := make([]float64, len(c.radii))
		for i, r := range c.radii {
			ratios[i] = tracker.ratio(string(c.w.Name), r)
		}
		ratio, err := stats.Summarize(ratios)
		if err != nil {
			return nil, err
		}
		tput, err := stats.Summarize(c.throughput)
		if err != nil {
			return nil, err
		}
		space, err := stats.Summarize(c.spaces)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure5Row{
			Dataset: c.w.Name, Algorithm: c.algorithm, Multiplier: c.multiplier,
			Space: int(space.Mean), Ratio: ratio, Throughput: tput,
		})
	}
	return out, nil
}
