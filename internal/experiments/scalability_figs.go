package experiments

import (
	"fmt"
	"math/rand"

	"coresetclustering/internal/core"
	"coresetclustering/internal/dataset"
	"coresetclustering/internal/stats"
)

// Figure6Config parameterises the input-size scalability experiment of
// Figure 6: the randomized MapReduce algorithm for k-center with outliers is
// run on SMOTE-like inflated instances of each dataset and the running time
// is reported per inflation factor (the paper uses factors 1, 25, 50, 100 on
// datasets of up to 1.2 billion points; the laptop-scale defaults shrink
// both).
type Figure6Config struct {
	Datasets []dataset.Name
	// BaseN is the size of the factor-1 instance.
	BaseN int
	// Factors are the multiplicative inflation factors.
	Factors []int
	K       int
	Z       int
	Ell     int
	// Mu is the coreset multiplier (paper: 8); tau = Mu*(K + 6*Z/Ell).
	Mu     int
	EpsHat float64
	Runs   int
	Seed   int64
	// Workers is the distance-engine parallelism of every clustering run
	// (<= 0 selects one worker per CPU, 1 forces the sequential path).
	// The default configuration pins 1 so the reported per-size running
	// times reflect the algorithmic work, not engine-level parallelism.
	Workers int
}

// DefaultFigure6Config returns the laptop-scale defaults.
func DefaultFigure6Config() Figure6Config {
	return Figure6Config{
		BaseN:   20000,
		Factors: []int{1, 2, 4, 8},
		K:       10,
		Z:       30,
		Ell:     8,
		Mu:      4,
		EpsHat:  0.25,
		Runs:    defaultRuns,
		Seed:    5,
		Workers: 1,
	}
}

// Figure6Row is one point of Figure 6.
type Figure6Row struct {
	Dataset dataset.Name
	Factor  int
	N       int
	// CoresetTime is the (size-dependent) first-round time; SolveTime is the
	// (size-independent) second-round time; TotalTime is their sum plus
	// partitioning overhead. All in seconds.
	CoresetTime stats.Summary
	SolveTime   stats.Summary
	TotalTime   stats.Summary
}

// Figure6Result holds the sweep.
type Figure6Result struct {
	Rows []Figure6Row
}

// Table renders the result.
func (r *Figure6Result) Table() *stats.Table {
	t := stats.NewTable("Figure 6: scalability with input size (randomized MapReduce, k-center with outliers)",
		"dataset", "factor", "n", "coreset(s)", "solve(s)", "total(s)")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Factor, row.N, row.CoresetTime, row.SolveTime, row.TotalTime)
	}
	return t
}

// RunFigure6 executes the Figure 6 sweep.
func RunFigure6(cfg Figure6Config) (*Figure6Result, error) {
	if cfg.BaseN <= 0 || len(cfg.Factors) == 0 || cfg.K <= 0 || cfg.Z < 0 || cfg.Ell <= 0 || cfg.Mu <= 0 {
		return nil, fmt.Errorf("experiments: invalid Figure 6 config %+v", cfg)
	}
	cfg.Runs = clampRuns(cfg.Runs)
	tau := cfg.Mu * (cfg.K + 6*cfg.Z/cfg.Ell)

	names := cfg.Datasets
	if len(names) == 0 {
		names = dataset.Names()
	}
	out := &Figure6Result{}
	for di, name := range names {
		base, err := dataset.Generate(name, cfg.BaseN, cfg.Seed+int64(di)*1009)
		if err != nil {
			return nil, err
		}
		for _, factor := range cfg.Factors {
			inflated, err := dataset.Inflate(base, factor, cfg.Seed+int64(factor))
			if err != nil {
				return nil, err
			}
			inj, err := dataset.InjectOutliers(inflated, cfg.Z, cfg.Seed+int64(factor)*7)
			if err != nil {
				return nil, err
			}
			var coresetSecs, solveSecs, totalSecs []float64
			for run := 0; run < cfg.Runs; run++ {
				res, err := core.KCenterOutliers(inj.Points, core.OutliersConfig{
					K: cfg.K, Z: cfg.Z, Ell: cfg.Ell,
					CoresetSize: tau,
					EpsHat:      cfg.EpsHat,
					Randomized:  true,
					Rand:        rand.New(rand.NewSource(cfg.Seed + int64(run))),
					Workers:     cfg.Workers,
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: figure 6 %s x%d: %w", name, factor, err)
				}
				coresetSecs = append(coresetSecs, res.CoresetTime.Seconds())
				solveSecs = append(solveSecs, res.SolveTime.Seconds())
				totalSecs = append(totalSecs, res.CoresetTime.Seconds()+res.SolveTime.Seconds())
			}
			cs, err := stats.Summarize(coresetSecs)
			if err != nil {
				return nil, err
			}
			ss, err := stats.Summarize(solveSecs)
			if err != nil {
				return nil, err
			}
			ts, err := stats.Summarize(totalSecs)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, Figure6Row{
				Dataset: name, Factor: factor, N: len(inj.Points),
				CoresetTime: cs, SolveTime: ss, TotalTime: ts,
			})
		}
	}
	return out, nil
}

// Figure7Config parameterises the processor-scalability experiment of
// Figure 7: the randomized MapReduce algorithm is run with parallelism ell =
// 1, 2, 4, ... while keeping the size of the union of the coresets fixed
// (tau_ell = UnionSize / ell), and the time is split into the coreset phase
// and the OutliersCluster phase.
type Figure7Config struct {
	Datasets []dataset.Name
	N        int
	K        int
	Z        int
	// Ells are the parallelism values (paper: 1, 2, 4, 8, 16).
	Ells []int
	// UnionSize is the fixed size of the union of the coresets (paper:
	// 8*(16k + 6z)). Zero derives it as Mu*(MaxEll*K + 6*Z) with Mu = 4.
	UnionSize int
	EpsHat    float64
	Runs      int
	Seed      int64
	// Workers is the distance-engine parallelism of every clustering run
	// (<= 0 selects one worker per CPU, 1 forces the sequential path).
	// The default configuration pins 1: Figure 7 measures time versus the
	// number of partitions ell, and an auto-parallel engine would hand the
	// small-ell runs the CPUs the large-ell runs get from partitioning,
	// flattening the curve the figure exists to show.
	Workers int
}

// DefaultFigure7Config returns the laptop-scale defaults.
func DefaultFigure7Config() Figure7Config {
	return Figure7Config{
		N:       40000,
		K:       10,
		Z:       30,
		Ells:    []int{1, 2, 4, 8},
		EpsHat:  0.25,
		Runs:    defaultRuns,
		Seed:    6,
		Workers: 1,
	}
}

// Figure7Row is one point of Figure 7.
type Figure7Row struct {
	Dataset dataset.Name
	Ell     int
	Tau     int
	// CoresetTime shrinks superlinearly with Ell (work per processor is
	// proportional to tau_ell * |S|/ell); SolveTime is constant because the
	// union size is fixed.
	CoresetTime stats.Summary
	SolveTime   stats.Summary
}

// Figure7Result holds the sweep.
type Figure7Result struct {
	Rows []Figure7Row
}

// Table renders the result.
func (r *Figure7Result) Table() *stats.Table {
	t := stats.NewTable("Figure 7: scalability with number of processors (fixed coreset-union size)",
		"dataset", "ell", "tau", "coreset(s)", "solve(s)")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Ell, row.Tau, row.CoresetTime, row.SolveTime)
	}
	return t
}

// RunFigure7 executes the Figure 7 sweep.
func RunFigure7(cfg Figure7Config) (*Figure7Result, error) {
	if cfg.N <= 0 || cfg.K <= 0 || cfg.Z < 0 || len(cfg.Ells) == 0 {
		return nil, fmt.Errorf("experiments: invalid Figure 7 config %+v", cfg)
	}
	cfg.Runs = clampRuns(cfg.Runs)
	unionSize := cfg.UnionSize
	if unionSize <= 0 {
		maxEll := 0
		for _, ell := range cfg.Ells {
			if ell > maxEll {
				maxEll = ell
			}
		}
		unionSize = 4 * (maxEll*cfg.K + 6*cfg.Z)
	}
	workloads, err := buildWorkloads(cfg.Datasets, cfg.N, func(dataset.Name) int { return cfg.K }, cfg.Z, cfg.Seed)
	if err != nil {
		return nil, err
	}

	out := &Figure7Result{}
	for wi := range workloads {
		w := workloads[wi]
		for _, ell := range cfg.Ells {
			tau := unionSize / ell
			if tau < cfg.K+cfg.Z {
				tau = cfg.K + cfg.Z
			}
			var coresetSecs, solveSecs []float64
			for run := 0; run < cfg.Runs; run++ {
				res, err := core.KCenterOutliers(w.Points, core.OutliersConfig{
					K: cfg.K, Z: cfg.Z, Ell: ell,
					CoresetSize: tau,
					EpsHat:      cfg.EpsHat,
					Randomized:  true,
					Rand:        rand.New(rand.NewSource(cfg.Seed + int64(run*31+ell))),
					Parallelism: ell,
					Workers:     cfg.Workers,
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: figure 7 %s ell=%d: %w", w.Name, ell, err)
				}
				coresetSecs = append(coresetSecs, res.CoresetTime.Seconds())
				solveSecs = append(solveSecs, res.SolveTime.Seconds())
			}
			cs, err := stats.Summarize(coresetSecs)
			if err != nil {
				return nil, err
			}
			ss, err := stats.Summarize(solveSecs)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, Figure7Row{Dataset: w.Name, Ell: ell, Tau: tau, CoresetTime: cs, SolveTime: ss})
		}
	}
	return out, nil
}
