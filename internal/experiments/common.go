// Package experiments reproduces the evaluation section of the paper
// (Figures 2 through 8). Each figure has a Config with laptop-scale defaults,
// a Run function that executes the corresponding parameter sweep, and a result
// type that renders the same rows/series the paper plots.
//
// Sizes default to a small fraction of the original experiments (which used
// up to 1.2 billion points on a 16-node Spark cluster); every size and
// parameter is configurable so the sweeps can be scaled up on bigger hardware.
// The quantity reported as "ratio" follows the paper's protocol: the radius of
// the returned clustering divided by the best radius ever found for the same
// dataset and parameter configuration within the run.
package experiments

import (
	"fmt"
	"time"

	"coresetclustering/internal/dataset"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/stats"
)

// Workload bundles a named dataset instance (with optional injected outliers)
// used by a figure run.
type Workload struct {
	// Name identifies the dataset family.
	Name dataset.Name
	// Points is the dataset, outliers included (when Z > 0 they occupy the
	// trailing positions and their indices are listed in OutlierIndices).
	Points metric.Dataset
	// K is the number of centers used for this dataset.
	K int
	// Z is the number of injected outliers (0 for the k-center experiments).
	Z int
	// OutlierIndices are the indices of the injected outliers within Points.
	OutlierIndices []int
}

// buildWorkloads generates one workload per requested dataset family.
func buildWorkloads(names []dataset.Name, n int, k func(dataset.Name) int, z int, seed int64) ([]Workload, error) {
	if len(names) == 0 {
		names = dataset.Names()
	}
	out := make([]Workload, 0, len(names))
	for i, name := range names {
		pts, err := dataset.Generate(name, n, seed+int64(i)*1001)
		if err != nil {
			return nil, fmt.Errorf("experiments: generating %s: %w", name, err)
		}
		w := Workload{Name: name, Points: pts, K: k(name), Z: z}
		if z > 0 {
			inj, err := dataset.InjectOutliers(pts, z, seed+int64(i)*2003)
			if err != nil {
				return nil, fmt.Errorf("experiments: injecting outliers into %s: %w", name, err)
			}
			w.Points = inj.Points
			w.OutlierIndices = inj.OutlierIndices
		}
		out = append(out, w)
	}
	return out, nil
}

// ratioTracker implements the paper's empirical approximation-ratio protocol:
// radii are registered per group key (dataset name), and ratios are computed
// against the smallest radius seen in the group.
type ratioTracker struct {
	best map[string]float64
}

func newRatioTracker() *ratioTracker {
	return &ratioTracker{best: make(map[string]float64)}
}

// observe registers a radius for the group.
func (rt *ratioTracker) observe(group string, radius float64) {
	if cur, ok := rt.best[group]; !ok || radius < cur {
		rt.best[group] = radius
	}
}

// ratio returns radius divided by the best radius of the group.
func (rt *ratioTracker) ratio(group string, radius float64) float64 {
	return stats.Ratio(radius, rt.best[group])
}

// timeIt measures the wall-clock duration of fn.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// defaultRuns is the default number of repetitions per configuration. The
// paper averages over at least 10 runs; the laptop-scale default keeps the
// sweeps fast while still producing confidence intervals.
const defaultRuns = 3

// clampRuns normalises a run count.
func clampRuns(r int) int {
	if r <= 0 {
		return defaultRuns
	}
	return r
}
