package experiments

import (
	"fmt"

	"coresetclustering/internal/core"
	"coresetclustering/internal/dataset"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/stats"
	"coresetclustering/internal/streaming"
)

// Figure2Config parameterises the MapReduce k-center sweep of Figure 2:
// approximation ratio as a function of the coreset multiplier mu and the
// parallelism ell.
type Figure2Config struct {
	// Datasets selects the dataset families (default: all three).
	Datasets []dataset.Name
	// N is the number of points per dataset.
	N int
	// K overrides the per-dataset number of centers (0 = the paper's
	// defaults: Higgs 50, Power 100, Wiki 60).
	K int
	// Ells are the parallelism values (paper: 2, 4, 8, 16).
	Ells []int
	// Mus are the coreset multipliers (paper: 1, 2, 4, 8); mu = 1 is the
	// MalkomesEtAl baseline.
	Mus []int
	// Runs is the number of repetitions per configuration.
	Runs int
	// Seed drives dataset generation and shuffling.
	Seed int64
	// Workers is the distance-engine parallelism of every clustering run
	// (<= 0 selects one worker per CPU, 1 forces the sequential path).
	// Radii are bit-identical for any value.
	Workers int
}

// DefaultFigure2Config returns the laptop-scale defaults.
func DefaultFigure2Config() Figure2Config {
	return Figure2Config{
		N:    8000,
		Ells: []int{2, 4, 8, 16},
		Mus:  []int{1, 2, 4, 8},
		Runs: defaultRuns,
		Seed: 1,
	}
}

// Figure2Row is one bar of Figure 2.
type Figure2Row struct {
	Dataset dataset.Name
	K       int
	Ell     int
	Mu      int
	Radius  stats.Summary
	Ratio   stats.Summary
}

// Figure2Result holds the full sweep.
type Figure2Result struct {
	Rows []Figure2Row
}

// Table renders the result in the paper's layout.
func (r *Figure2Result) Table() *stats.Table {
	t := stats.NewTable("Figure 2: MapReduce k-center, ratio vs coreset size (mu) and parallelism (ell)",
		"dataset", "k", "ell", "mu", "ratio", "radius")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.K, row.Ell, row.Mu, row.Ratio, row.Radius)
	}
	return t
}

// RunFigure2 executes the Figure 2 sweep.
func RunFigure2(cfg Figure2Config) (*Figure2Result, error) {
	if cfg.N <= 0 || len(cfg.Ells) == 0 || len(cfg.Mus) == 0 {
		return nil, fmt.Errorf("experiments: invalid Figure 2 config %+v", cfg)
	}
	cfg.Runs = clampRuns(cfg.Runs)
	kOf := func(name dataset.Name) int {
		if cfg.K > 0 {
			return cfg.K
		}
		return name.DefaultK()
	}
	workloads, err := buildWorkloads(cfg.Datasets, cfg.N, kOf, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}

	type cell struct {
		w       Workload
		ell, mu int
		radii   []float64
	}
	var cells []*cell
	tracker := newRatioTracker()
	for wi := range workloads {
		w := workloads[wi]
		for _, ell := range cfg.Ells {
			for _, mu := range cfg.Mus {
				c := &cell{w: w, ell: ell, mu: mu}
				for run := 0; run < cfg.Runs; run++ {
					shuffled := dataset.Shuffle(w.Points, cfg.Seed+int64(run)*17+int64(ell*31+mu))
					res, err := core.KCenter(shuffled, core.KCenterConfig{
						K:           w.K,
						Ell:         ell,
						CoresetSize: mu * w.K,
						Workers:     cfg.Workers,
					})
					if err != nil {
						return nil, fmt.Errorf("experiments: figure 2 %s ell=%d mu=%d: %w", w.Name, ell, mu, err)
					}
					c.radii = append(c.radii, res.Radius)
					tracker.observe(string(w.Name), res.Radius)
				}
				cells = append(cells, c)
			}
		}
	}

	out := &Figure2Result{}
	for _, c := range cells {
		radius, err := stats.Summarize(c.radii)
		if err != nil {
			return nil, err
		}
		ratios := make([]float64, len(c.radii))
		for i, r := range c.radii {
			ratios[i] = tracker.ratio(string(c.w.Name), r)
		}
		ratio, err := stats.Summarize(ratios)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure2Row{
			Dataset: c.w.Name, K: c.w.K, Ell: c.ell, Mu: c.mu,
			Radius: radius, Ratio: ratio,
		})
	}
	return out, nil
}

// Figure3Config parameterises the streaming k-center comparison of Figure 3:
// CoresetStream (space mu*k) versus BaseStream (space m*k), reporting
// approximation ratio and throughput as functions of space.
type Figure3Config struct {
	Datasets []dataset.Name
	// N is the number of points per dataset.
	N int
	// K overrides the per-dataset number of centers (0 = paper defaults).
	K int
	// Multipliers are the space multipliers used for BOTH algorithms
	// (mu for CoresetStream, m for BaseStream); paper: 1, 2, 4, 8, 16.
	Multipliers []int
	Runs        int
	Seed        int64
}

// DefaultFigure3Config returns the laptop-scale defaults.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{
		N:           8000,
		Multipliers: []int{1, 2, 4, 8, 16},
		Runs:        defaultRuns,
		Seed:        2,
	}
}

// Figure3Row is one point of one series of Figure 3.
type Figure3Row struct {
	Dataset    dataset.Name
	Algorithm  string // "CoresetStream" or "BaseStream"
	Multiplier int
	Space      int // points of working memory
	Ratio      stats.Summary
	Throughput stats.Summary // points per second
}

// Figure3Result holds both series for every dataset.
type Figure3Result struct {
	Rows []Figure3Row
}

// Table renders the result.
func (r *Figure3Result) Table() *stats.Table {
	t := stats.NewTable("Figure 3: streaming k-center, ratio and throughput vs space",
		"dataset", "algorithm", "multiplier", "space", "ratio", "pts/s")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Algorithm, row.Multiplier, row.Space, row.Ratio, row.Throughput)
	}
	return t
}

// RunFigure3 executes the Figure 3 sweep.
func RunFigure3(cfg Figure3Config) (*Figure3Result, error) {
	if cfg.N <= 0 || len(cfg.Multipliers) == 0 {
		return nil, fmt.Errorf("experiments: invalid Figure 3 config %+v", cfg)
	}
	cfg.Runs = clampRuns(cfg.Runs)
	kOf := func(name dataset.Name) int {
		if cfg.K > 0 {
			return cfg.K
		}
		return name.DefaultK()
	}
	workloads, err := buildWorkloads(cfg.Datasets, cfg.N, kOf, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}

	type cell struct {
		w          Workload
		algorithm  string
		multiplier int
		space      int
		radii      []float64
		throughput []float64
	}
	var cells []*cell
	tracker := newRatioTracker()

	runStream := func(w Workload, seed int64, build func() (streaming.Processor, func() (metric.Dataset, error), int)) (radius, tput float64, space int, err error) {
		shuffled := dataset.Shuffle(w.Points, seed)
		proc, result, space := build()
		elapsed, err := timeIt(func() error {
			_, err := streaming.Drain(streaming.NewSliceSource(shuffled), proc)
			return err
		})
		if err != nil {
			return 0, 0, 0, err
		}
		centers, err := result()
		if err != nil {
			return 0, 0, 0, err
		}
		radius = metric.NewEngine(1).Radius(metric.EuclideanSpace, shuffled, centers)
		tput = stats.Throughput(int64(len(shuffled)), elapsed)
		return radius, tput, space, nil
	}

	for wi := range workloads {
		w := workloads[wi]
		for _, mult := range cfg.Multipliers {
			coresetCell := &cell{w: w, algorithm: "CoresetStream", multiplier: mult, space: mult * w.K}
			baseCell := &cell{w: w, algorithm: "BaseStream", multiplier: mult, space: mult * w.K}
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed + int64(run)*101 + int64(mult)

				radius, tput, _, err := runStream(w, seed, func() (streaming.Processor, func() (metric.Dataset, error), int) {
					cs, err := streaming.NewCoresetStream(nil, w.K, mult*w.K)
					if err != nil {
						panic(err) // configuration is validated above; mult >= 1 implies tau >= k
					}
					return cs, cs.Result, mult * w.K
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: figure 3 CoresetStream %s mult=%d: %w", w.Name, mult, err)
				}
				coresetCell.radii = append(coresetCell.radii, radius)
				coresetCell.throughput = append(coresetCell.throughput, tput)
				tracker.observe(string(w.Name), radius)

				radius, tput, _, err = runStream(w, seed+1, func() (streaming.Processor, func() (metric.Dataset, error), int) {
					bs, err := streaming.NewBaseStream(nil, w.K, mult)
					if err != nil {
						panic(err)
					}
					return bs, bs.Result, mult * w.K
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: figure 3 BaseStream %s m=%d: %w", w.Name, mult, err)
				}
				baseCell.radii = append(baseCell.radii, radius)
				baseCell.throughput = append(baseCell.throughput, tput)
				tracker.observe(string(w.Name), radius)
			}
			cells = append(cells, coresetCell, baseCell)
		}
	}

	out := &Figure3Result{}
	for _, c := range cells {
		ratios := make([]float64, len(c.radii))
		for i, r := range c.radii {
			ratios[i] = tracker.ratio(string(c.w.Name), r)
		}
		ratio, err := stats.Summarize(ratios)
		if err != nil {
			return nil, err
		}
		tput, err := stats.Summarize(c.throughput)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure3Row{
			Dataset: c.w.Name, Algorithm: c.algorithm, Multiplier: c.multiplier,
			Space: c.space, Ratio: ratio, Throughput: tput,
		})
	}
	return out, nil
}
