package mapreduce

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"coresetclustering/internal/metric"
)

// ExecStats records the resource usage of a per-partition parallel round, in
// the units the paper's analysis uses: points held in local memory.
type ExecStats struct {
	// LocalMemoryPeak is the largest number of points processed by any single
	// worker (|S|/ell in the first round, |T| in the second).
	LocalMemoryPeak int
	// AggregateMemory is the total number of points across all workers.
	AggregateMemory int
	// Elapsed is the wall-clock time of the round.
	Elapsed time.Duration
	// Workers is the number of goroutines that executed the round.
	Workers int
}

// ExecConfig controls how per-partition work is scheduled.
type ExecConfig struct {
	// Parallelism is the maximum number of partitions processed concurrently.
	// Zero means "as many as there are CPUs". The Figure 7 experiment varies
	// this to measure scalability with the number of processors.
	Parallelism int
	// Workers is the total distance-engine parallelism budget of the round:
	// the reducers divide it among the partitions running concurrently (see
	// PerPartitionWorkers). <= 0 means one worker per CPU.
	Workers int
}

func (c ExecConfig) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.NumCPU()
}

// PerPartitionWorkers returns the distance-engine parallelism each of the
// round's reducers should use so that the concurrently running partitions
// share cfg.Workers evenly without oversubscribing: floor(total/concurrent),
// never below 1. parts is the number of partitions of the round; fewer
// partitions than the configured parallelism leave more workers to each.
func (c ExecConfig) PerPartitionWorkers(parts int) int {
	total := c.Workers
	if total <= 0 {
		// Match the distance engine's definition of "one worker per CPU"
		// (GOMAXPROCS, which respects cgroup-style quotas, not NumCPU).
		total = runtime.GOMAXPROCS(0)
	}
	concurrent := c.parallelism()
	if parts > 0 && parts < concurrent {
		concurrent = parts
	}
	if concurrent < 1 {
		concurrent = 1
	}
	per := total / concurrent
	if per < 1 {
		per = 1
	}
	return per
}

// MapPartitions applies fn to every partition concurrently (bounded by the
// configured parallelism) and collects the per-partition results in order.
// It models the first round of the paper's algorithms, where reducer i
// receives partition S_i and computes its coreset T_i. Empty partitions are
// passed through to fn, which may handle them (typically by returning a zero
// result); an error from any partition aborts the round.
func MapPartitions[T any](cfg ExecConfig, parts []metric.Dataset, fn func(i int, part metric.Dataset) (T, error)) ([]T, ExecStats, error) {
	stats := ExecStats{Workers: cfg.parallelism()}
	if fn == nil {
		return nil, stats, errors.New("mapreduce: nil partition function")
	}
	start := time.Now()
	for _, p := range parts {
		stats.AggregateMemory += len(p)
		if len(p) > stats.LocalMemoryPeak {
			stats.LocalMemoryPeak = len(p)
		}
	}

	results := make([]T, len(parts))
	errs := make([]error, len(parts))
	sem := make(chan struct{}, cfg.parallelism())
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := fn(i, parts[i])
			if err != nil {
				errs[i] = fmt.Errorf("mapreduce: partition %d: %w", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	return results, stats, nil
}
