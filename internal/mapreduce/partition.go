package mapreduce

import (
	"errors"
	"fmt"
	"math/rand"

	"coresetclustering/internal/metric"
)

// Partitioner splits a dataset into ell parts, the first-round distribution of
// the 2-round algorithms. Implementations must return exactly ell parts whose
// concatenation is a permutation of the input; empty parts are allowed when
// ell exceeds the input size.
type Partitioner interface {
	// Partition splits points into ell parts.
	Partition(points metric.Dataset, ell int) ([]metric.Dataset, error)
	// Name identifies the partitioner in experiment reports.
	Name() string
}

// ErrInvalidPartitions is returned when ell is not positive.
var ErrInvalidPartitions = errors.New("mapreduce: number of partitions must be positive")

// UniformPartitioner assigns points to parts in contiguous equally-sized
// blocks (the deterministic "split into ell subsets of equal size" of the
// paper's deterministic algorithms).
type UniformPartitioner struct{}

// Name implements Partitioner.
func (UniformPartitioner) Name() string { return "uniform" }

// Partition implements Partitioner.
func (UniformPartitioner) Partition(points metric.Dataset, ell int) ([]metric.Dataset, error) {
	if ell <= 0 {
		return nil, ErrInvalidPartitions
	}
	parts := make([]metric.Dataset, ell)
	ranges := splitIndexes(len(points), ell)
	for i, r := range ranges {
		parts[i] = points[r[0]:r[1]]
	}
	return parts, nil
}

// RandomPartitioner assigns each point to a part chosen uniformly and
// independently at random — the first round of the randomized algorithm of
// Section 3.2.1. A nil Rand uses a fixed seed so runs are reproducible unless
// the caller opts into true randomness.
type RandomPartitioner struct {
	Rand *rand.Rand
}

// Name implements Partitioner.
func (RandomPartitioner) Name() string { return "random" }

// Partition implements Partitioner.
func (rp RandomPartitioner) Partition(points metric.Dataset, ell int) ([]metric.Dataset, error) {
	if ell <= 0 {
		return nil, ErrInvalidPartitions
	}
	rng := rp.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(0x5eed))
	}
	parts := make([]metric.Dataset, ell)
	for _, p := range points {
		i := rng.Intn(ell)
		parts[i] = append(parts[i], p)
	}
	return parts, nil
}

// AdversarialPartitioner places a designated set of point indices (the
// injected outliers of the experiments) all in the first part and spreads the
// remaining points round-robin over all parts. This is the adversarial
// placement used by Figure 4 to stress the deterministic algorithm.
type AdversarialPartitioner struct {
	// Targeted holds the indices (into the input dataset) forced into part 0.
	Targeted []int
}

// Name implements Partitioner.
func (AdversarialPartitioner) Name() string { return "adversarial" }

// Partition implements Partitioner.
func (ap AdversarialPartitioner) Partition(points metric.Dataset, ell int) ([]metric.Dataset, error) {
	if ell <= 0 {
		return nil, ErrInvalidPartitions
	}
	targeted := make(map[int]bool, len(ap.Targeted))
	for _, i := range ap.Targeted {
		if i < 0 || i >= len(points) {
			return nil, fmt.Errorf("mapreduce: targeted index %d out of range [0,%d)", i, len(points))
		}
		targeted[i] = true
	}
	parts := make([]metric.Dataset, ell)
	next := 0
	for i, p := range points {
		if targeted[i] {
			parts[0] = append(parts[0], p)
			continue
		}
		parts[next%ell] = append(parts[next%ell], p)
		next++
	}
	return parts, nil
}

// CheckPartition verifies that parts is a valid partition of a dataset of the
// given size: the part sizes sum to n. It is a cheap sanity check used by
// tests and by the algorithm drivers in debug paths.
func CheckPartition(parts []metric.Dataset, n int) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != n {
		return fmt.Errorf("mapreduce: partition sizes sum to %d, want %d", total, n)
	}
	return nil
}
