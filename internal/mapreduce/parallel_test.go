package mapreduce

import (
	"runtime"
	"testing"
)

// TestPerPartitionWorkers checks the worker-budget split of the first round.
func TestPerPartitionWorkers(t *testing.T) {
	tests := []struct {
		name        string
		cfg         ExecConfig
		parts, want int
	}{
		{"even split", ExecConfig{Parallelism: 4, Workers: 8}, 8, 2},
		{"floor", ExecConfig{Parallelism: 3, Workers: 8}, 8, 2},
		{"never below one", ExecConfig{Parallelism: 16, Workers: 2}, 32, 1},
		{"fewer parts than parallelism", ExecConfig{Parallelism: 8, Workers: 8}, 2, 4},
		{"single partition gets everything", ExecConfig{Parallelism: 8, Workers: 8}, 1, 8},
		{"sequential budget", ExecConfig{Parallelism: 4, Workers: 1}, 4, 1},
	}
	for _, tc := range tests {
		if got := tc.cfg.PerPartitionWorkers(tc.parts); got != tc.want {
			t.Errorf("%s: PerPartitionWorkers(%d) = %d, want %d", tc.name, tc.parts, got, tc.want)
		}
	}
	// Auto budget: Workers <= 0 defaults to the engine's CPU count.
	auto := ExecConfig{Parallelism: 1}.PerPartitionWorkers(1)
	if auto != runtime.GOMAXPROCS(0) {
		t.Errorf("auto budget = %d, want %d", auto, runtime.GOMAXPROCS(0))
	}
}
