package mapreduce

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"coresetclustering/internal/metric"
)

func randomDataset(rng *rand.Rand, n, dim int) metric.Dataset {
	ds := make(metric.Dataset, n)
	for i := range ds {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		ds[i] = p
	}
	return ds
}

func TestSplitIndexes(t *testing.T) {
	tests := []struct {
		n, parts int
		want     int // number of ranges
	}{
		{10, 3, 3},
		{10, 10, 10},
		{3, 10, 3},
		{0, 4, 0},
		{5, 0, 1},
		{7, -2, 1},
	}
	for _, tt := range tests {
		got := splitIndexes(tt.n, tt.parts)
		if len(got) != tt.want {
			t.Errorf("splitIndexes(%d,%d) ranges = %d, want %d", tt.n, tt.parts, len(got), tt.want)
		}
		// Ranges must cover [0,n) contiguously.
		covered := 0
		prev := 0
		for _, r := range got {
			if r[0] != prev {
				t.Errorf("splitIndexes(%d,%d) gap at %d", tt.n, tt.parts, r[0])
			}
			covered += r[1] - r[0]
			prev = r[1]
		}
		if covered != tt.n {
			t.Errorf("splitIndexes(%d,%d) covers %d, want %d", tt.n, tt.parts, covered, tt.n)
		}
	}
}

func TestRoundWordCount(t *testing.T) {
	// Classic word count: validates mapping, shuffling by key, reducing and
	// stats accounting.
	docs := []Pair[int, string]{
		{Key: 1, Value: "a b a"},
		{Key: 2, Value: "b c"},
		{Key: 3, Value: "a"},
	}
	mapper := func(p Pair[int, string]) ([]Pair[string, int], error) {
		var out []Pair[string, int]
		for _, w := range strings.Fields(p.Value) {
			out = append(out, Pair[string, int]{Key: w, Value: 1})
		}
		return out, nil
	}
	reducer := func(key string, values []int) ([]Pair[string, int], error) {
		sum := 0
		for _, v := range values {
			sum += v
		}
		return []Pair[string, int]{{Key: key, Value: sum}}, nil
	}
	out, stats, err := Round(Config{Workers: 2}, docs, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, p := range out {
		counts[p.Key] = p.Value
	}
	if counts["a"] != 3 || counts["b"] != 2 || counts["c"] != 1 {
		t.Errorf("word counts = %v", counts)
	}
	if stats.InputPairs != 3 || stats.ShuffledPairs != 6 || stats.ReducerCount != 3 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.LocalMemory != 3 {
		t.Errorf("LocalMemory = %d, want 3 (key 'a')", stats.LocalMemory)
	}
	if stats.AggregateMemory != 6 {
		t.Errorf("AggregateMemory = %d, want 6", stats.AggregateMemory)
	}
	if stats.OutputPairs != 3 {
		t.Errorf("OutputPairs = %d, want 3", stats.OutputPairs)
	}
}

func TestRoundErrors(t *testing.T) {
	input := []Pair[int, int]{{Key: 1, Value: 1}}
	id := func(p Pair[int, int]) ([]Pair[int, int], error) { return []Pair[int, int]{p}, nil }
	sum := func(k int, vs []int) ([]Pair[int, int], error) { return nil, nil }
	if _, _, err := Round[int, int, int, int, int, int](Config{}, input, nil, sum); err == nil {
		t.Error("nil mapper accepted")
	}
	if _, _, err := Round[int, int, int, int, int, int](Config{}, input, id, nil); err == nil {
		t.Error("nil reducer accepted")
	}
	failMap := func(p Pair[int, int]) ([]Pair[int, int], error) { return nil, errors.New("boom") }
	if _, _, err := Round(Config{}, input, failMap, sum); err == nil {
		t.Error("mapper error not propagated")
	}
	failRed := func(k int, vs []int) ([]Pair[int, int], error) { return nil, errors.New("boom") }
	if _, _, err := Round(Config{}, input, id, failRed); err == nil {
		t.Error("reducer error not propagated")
	}
}

func TestRoundEmptyInput(t *testing.T) {
	id := func(p Pair[int, int]) ([]Pair[int, int], error) { return []Pair[int, int]{p}, nil }
	count := func(k int, vs []int) ([]Pair[int, int], error) {
		return []Pair[int, int]{{Key: k, Value: len(vs)}}, nil
	}
	out, stats, err := Round(Config{}, nil, id, count)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || stats.InputPairs != 0 {
		t.Errorf("empty input produced output %v, stats %+v", out, stats)
	}
}

func TestUniformPartitioner(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := randomDataset(rng, 103, 2)
	parts, err := UniformPartitioner{}.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d parts, want 4", len(parts))
	}
	if err := CheckPartition(parts, len(ds)); err != nil {
		t.Error(err)
	}
	// Sizes differ by at most one.
	minSize, maxSize := len(parts[0]), len(parts[0])
	for _, p := range parts {
		if len(p) < minSize {
			minSize = len(p)
		}
		if len(p) > maxSize {
			maxSize = len(p)
		}
	}
	if maxSize-minSize > 1 {
		t.Errorf("unbalanced uniform partition: min %d max %d", minSize, maxSize)
	}
	if _, err := (UniformPartitioner{}).Partition(ds, 0); err == nil {
		t.Error("ell=0 accepted")
	}
	if got := (UniformPartitioner{}).Name(); got != "uniform" {
		t.Errorf("Name = %q", got)
	}
}

func TestUniformPartitionerMorePartsThanPoints(t *testing.T) {
	ds := metric.Dataset{{1}, {2}}
	parts, err := UniformPartitioner{}.Partition(ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 5 {
		t.Fatalf("got %d parts, want 5", len(parts))
	}
	if err := CheckPartition(parts, 2); err != nil {
		t.Error(err)
	}
}

func TestRandomPartitionerProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		ell := 1 + rng.Intn(8)
		ds := randomDataset(rng, n, 2)
		parts, err := RandomPartitioner{Rand: rng}.Partition(ds, ell)
		if err != nil {
			return false
		}
		if len(parts) != ell {
			return false
		}
		return CheckPartition(parts, n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	if _, err := (RandomPartitioner{}).Partition(metric.Dataset{{1}}, -1); err == nil {
		t.Error("negative ell accepted")
	}
	if got := (RandomPartitioner{}).Name(); got != "random" {
		t.Errorf("Name = %q", got)
	}
}

func TestRandomPartitionerNilRandIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := randomDataset(rng, 50, 2)
	a, err := RandomPartitioner{}.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomPartitioner{}.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("nil-Rand partitioning not deterministic: part %d sizes %d vs %d", i, len(a[i]), len(b[i]))
		}
	}
}

func TestAdversarialPartitioner(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := randomDataset(rng, 40, 2)
	targeted := []int{35, 36, 37, 38, 39}
	ap := AdversarialPartitioner{Targeted: targeted}
	parts, err := ap.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPartition(parts, len(ds)); err != nil {
		t.Error(err)
	}
	// All targeted points are in part 0.
	if len(parts[0]) < len(targeted) {
		t.Errorf("part 0 has %d points, want at least %d", len(parts[0]), len(targeted))
	}
	for _, ti := range targeted {
		found := false
		for _, p := range parts[0] {
			if p.Equal(ds[ti]) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("targeted point %d not in part 0", ti)
		}
	}
	if _, err := (AdversarialPartitioner{Targeted: []int{99}}).Partition(ds, 2); err == nil {
		t.Error("out-of-range targeted index accepted")
	}
	if _, err := ap.Partition(ds, 0); err == nil {
		t.Error("ell=0 accepted")
	}
	if got := ap.Name(); got != "adversarial" {
		t.Errorf("Name = %q", got)
	}
}

func TestCheckPartition(t *testing.T) {
	parts := []metric.Dataset{{{1}}, {{2}, {3}}}
	if err := CheckPartition(parts, 3); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	if err := CheckPartition(parts, 4); err == nil {
		t.Error("invalid partition accepted")
	}
}

func TestMapPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := randomDataset(rng, 120, 2)
	parts, err := UniformPartitioner{}.Partition(ds, 6)
	if err != nil {
		t.Fatal(err)
	}
	sizes, stats, err := MapPartitions(ExecConfig{Parallelism: 3}, parts, func(i int, part metric.Dataset) (int, error) {
		return len(part), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 120 {
		t.Errorf("total mapped points = %d, want 120", total)
	}
	if stats.LocalMemoryPeak != 20 {
		t.Errorf("LocalMemoryPeak = %d, want 20", stats.LocalMemoryPeak)
	}
	if stats.AggregateMemory != 120 {
		t.Errorf("AggregateMemory = %d, want 120", stats.AggregateMemory)
	}
	if stats.Workers != 3 {
		t.Errorf("Workers = %d, want 3", stats.Workers)
	}
}

func TestMapPartitionsErrors(t *testing.T) {
	parts := []metric.Dataset{{{1}}, {{2}}}
	if _, _, err := MapPartitions[int](ExecConfig{}, parts, nil); err == nil {
		t.Error("nil function accepted")
	}
	_, _, err := MapPartitions(ExecConfig{}, parts, func(i int, part metric.Dataset) (int, error) {
		if i == 1 {
			return 0, errors.New("boom")
		}
		return len(part), nil
	})
	if err == nil {
		t.Error("partition error not propagated")
	}
}

func TestMapPartitionsResultsInOrder(t *testing.T) {
	parts := make([]metric.Dataset, 10)
	for i := range parts {
		parts[i] = metric.Dataset{{float64(i)}}
	}
	idx, _, err := MapPartitions(ExecConfig{Parallelism: 4}, parts, func(i int, part metric.Dataset) (int, error) {
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range idx {
		if v != i {
			t.Errorf("result %d = %d, want in-order", i, v)
		}
	}
}

func TestMapPartitionsDefaultParallelism(t *testing.T) {
	parts := []metric.Dataset{{{1}}, {{2}}}
	_, stats, err := MapPartitions(ExecConfig{}, parts, func(i int, part metric.Dataset) (int, error) {
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers <= 0 {
		t.Errorf("default workers = %d, want > 0", stats.Workers)
	}
}
