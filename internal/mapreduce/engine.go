// Package mapreduce provides an in-process MapReduce/MPC simulator: the
// substrate on which the paper's 2-round algorithms run in this repository
// (standing in for the 16-node Spark cluster of the original experiments).
//
// It has two layers:
//
//   - a faithful, generic key-value engine (Engine) that executes rounds of
//     map and reduce functions over key-value pairs, shuffling by key and
//     running reducers on parallel goroutines, with local- and aggregate-
//     memory accounting in the spirit of the MR(ML, MA) model;
//   - higher-level helpers (Partitioner, RunRound) used directly by the
//     clustering algorithms, which are "reducer-heavy" algorithms whose map
//     phase is a trivial constant-space key assignment.
package mapreduce

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Pair is a key-value pair processed by the engine.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Mapper transforms one input pair into zero or more output pairs.
type Mapper[K1 comparable, V1 any, K2 comparable, V2 any] func(Pair[K1, V1]) ([]Pair[K2, V2], error)

// Reducer transforms the group of values sharing one key into zero or more
// output pairs.
type Reducer[K comparable, V any, K2 comparable, V2 any] func(key K, values []V) ([]Pair[K2, V2], error)

// RoundStats records the resource usage of one engine round, mirroring the
// parameters of the MapReduce model used in the paper: ML (local memory, the
// largest number of values any single reducer receives) and MA (aggregate
// memory, the total number of values across all reducers).
type RoundStats struct {
	// InputPairs is the number of pairs entering the round.
	InputPairs int
	// ShuffledPairs is the number of pairs produced by the map phase.
	ShuffledPairs int
	// OutputPairs is the number of pairs produced by the reduce phase.
	OutputPairs int
	// ReducerCount is the number of distinct keys (reducer instances).
	ReducerCount int
	// LocalMemory is the maximum number of values received by one reducer.
	LocalMemory int
	// AggregateMemory is the total number of values across reducers.
	AggregateMemory int
}

// Config controls engine execution.
type Config struct {
	// Workers is the number of goroutines used for the map and reduce phases.
	// Zero means runtime.NumCPU().
	Workers int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// Round executes one MapReduce round: the mapper is applied to every input
// pair, the intermediate pairs are grouped by key, and the reducer is applied
// to every group. The reducers for distinct keys run on parallel goroutines,
// bounded by cfg.Workers.
func Round[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	cfg Config,
	input []Pair[K1, V1],
	mapper Mapper[K1, V1, K2, V2],
	reducer Reducer[K2, V2, K3, V3],
) ([]Pair[K3, V3], RoundStats, error) {
	stats := RoundStats{InputPairs: len(input)}
	if mapper == nil || reducer == nil {
		return nil, stats, errors.New("mapreduce: nil mapper or reducer")
	}

	// Map phase (parallel over input chunks).
	workers := cfg.workers()
	type mapOut[K comparable, V any] struct {
		pairs []Pair[K, V]
		err   error
	}
	chunks := splitIndexes(len(input), workers)
	results := make([]mapOut[K2, V2], len(chunks))
	var wg sync.WaitGroup
	for ci, ch := range chunks {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			var out []Pair[K2, V2]
			for i := lo; i < hi; i++ {
				pairs, err := mapper(input[i])
				if err != nil {
					results[ci] = mapOut[K2, V2]{err: fmt.Errorf("mapreduce: map of pair %d: %w", i, err)}
					return
				}
				out = append(out, pairs...)
			}
			results[ci] = mapOut[K2, V2]{pairs: out}
		}(ci, ch[0], ch[1])
	}
	wg.Wait()
	var shuffled []Pair[K2, V2]
	for _, r := range results {
		if r.err != nil {
			return nil, stats, r.err
		}
		shuffled = append(shuffled, r.pairs...)
	}
	stats.ShuffledPairs = len(shuffled)

	// Shuffle: group by key.
	groups := make(map[K2][]V2)
	for _, p := range shuffled {
		groups[p.Key] = append(groups[p.Key], p.Value)
	}
	stats.ReducerCount = len(groups)
	for _, vs := range groups {
		stats.AggregateMemory += len(vs)
		if len(vs) > stats.LocalMemory {
			stats.LocalMemory = len(vs)
		}
	}

	// Reduce phase (parallel over keys, bounded by workers).
	keys := make([]K2, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	// Sort keys when they are ordered for deterministic output order; for
	// unordered key types fall back to map order. We sort via formatted
	// strings to stay generic and deterministic.
	sort.Slice(keys, func(i, j int) bool {
		return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
	})

	type redOut[K comparable, V any] struct {
		pairs []Pair[K, V]
		err   error
	}
	redResults := make([]redOut[K3, V3], len(keys))
	sem := make(chan struct{}, workers)
	var rwg sync.WaitGroup
	for i, k := range keys {
		rwg.Add(1)
		sem <- struct{}{}
		go func(i int, k K2) {
			defer rwg.Done()
			defer func() { <-sem }()
			pairs, err := reducer(k, groups[k])
			if err != nil {
				redResults[i] = redOut[K3, V3]{err: fmt.Errorf("mapreduce: reduce of key %v: %w", k, err)}
				return
			}
			redResults[i] = redOut[K3, V3]{pairs: pairs}
		}(i, k)
	}
	rwg.Wait()

	var out []Pair[K3, V3]
	for _, r := range redResults {
		if r.err != nil {
			return nil, stats, r.err
		}
		out = append(out, r.pairs...)
	}
	stats.OutputPairs = len(out)
	return out, stats, nil
}

// splitIndexes divides [0,n) into at most parts contiguous half-open ranges of
// near-equal length. Empty ranges are omitted.
func splitIndexes(n, parts int) [][2]int {
	if n <= 0 {
		return nil
	}
	if parts <= 0 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	base := n / parts
	rem := n % parts
	start := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}
