// Package outliers implements the sequential machinery for the k-center
// problem with z outliers used by the paper:
//
//   - OutliersCluster (Algorithm 1): the weighted variant of the Charikar et
//     al. (2001) greedy, parameterised by a candidate radius r and a slack
//     parameter epsHat;
//   - the radius search that drives it (binary search over candidate radii
//     combined with a geometric grid of step 1+delta, delta =
//     epsHat/(3+4*epsHat));
//   - CharikarEtAl: the original unweighted 3-approximation baseline,
//     recovered as OutliersCluster with epsHat = 0 and unit weights, searched
//     over all pairwise distances (the Figure 8 baseline).
package outliers

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"coresetclustering/internal/metric"
)

// ErrEmptyInput is returned when the input set is empty.
var ErrEmptyInput = errors.New("outliers: empty input set")

// ErrInvalidParam is returned for non-positive k or negative z/epsHat.
var ErrInvalidParam = errors.New("outliers: invalid parameter")

// ClusterResult is the outcome of one OutliersCluster invocation at a fixed
// candidate radius.
type ClusterResult struct {
	// Centers are the selected centers (at most k of them).
	Centers metric.Dataset
	// CenterIndices are the indices of the centers within the input set.
	CenterIndices []int
	// Uncovered holds the indices (into the input set) of the points left
	// uncovered, i.e. at distance greater than (3+4*epsHat)*r from every
	// selected center.
	Uncovered []int
	// UncoveredWeight is the total weight of the uncovered points.
	UncoveredWeight int64
}

// Cluster runs OutliersCluster(T, k, r, epsHat) exactly as in Algorithm 1 of
// the paper. In each iteration it selects, among all points of T, the point x
// whose ball of radius (1+2*epsHat)*r contains the largest aggregate weight of
// still-uncovered points, then marks as covered every uncovered point within
// distance (3+4*epsHat)*r of x. It stops after k centers or when everything is
// covered.
func Cluster(dist metric.Distance, set metric.WeightedSet, k int, r, epsHat float64) (*ClusterResult, error) {
	if err := validateClusterParams(set, k, r, epsHat); err != nil {
		return nil, err
	}
	return clusterPairwise(metric.NewEngine(1), pairwiseFromSpace(metric.SpaceFor(dist), set), set, k, r, epsHat), nil
}

// validateClusterParams checks the shared preconditions of Cluster and Solve.
func validateClusterParams(set metric.WeightedSet, k int, r, epsHat float64) error {
	if len(set) == 0 {
		return ErrEmptyInput
	}
	if k <= 0 {
		return fmt.Errorf("%w: k = %d", ErrInvalidParam, k)
	}
	if r < 0 {
		return fmt.Errorf("%w: negative radius %v", ErrInvalidParam, r)
	}
	if epsHat < 0 {
		return fmt.Errorf("%w: negative epsHat %v", ErrInvalidParam, epsHat)
	}
	return nil
}

// pairwise abstracts how pairwise distances between set elements are obtained:
// either recomputed on demand or read from a precomputed matrix. The radius
// search evaluates OutliersCluster many times over the same set, so caching
// the matrix removes the dominant cost for moderate coreset sizes. Values
// are always in the TRUE distance domain: the covering thresholds of
// Algorithm 1 are true radii, and keeping the matrix in the true domain
// means the conversion out of the space's surrogate is paid once per pair at
// build time, never during the search.
type pairwise func(i, j int) float64

// pairwiseFromSpace evaluates the space's true distance on demand.
func pairwiseFromSpace(sp metric.Space, set metric.WeightedSet) pairwise {
	return func(i, j int) float64 { return sp.Distance(set[i].P, set[j].P) }
}

// maxCachedMatrixSize bounds the number of points for which Solve materialises
// the full pairwise-distance matrix (memory is 8*n^2 bytes; 4096 points is
// 128 MiB).
const maxCachedMatrixSize = 4096

// pairwiseMatrix precomputes the full distance matrix of the set. The worker
// owning row i runs one batched DistancesTo over the points after i, converts
// the row out of the surrogate domain in place, and writes both mirror
// cells, so every cell has exactly one writer (no race) and the number of
// distance evaluations, n*(n-1)/2, is the same for any worker count. To
// balance the triangular workload, the chunked index v covers the row pair
// (v, n-1-v): the two rows together always hold n-1 pairs.
func pairwiseMatrix(eng metric.Engine, sp metric.Space, set metric.WeightedSet) pairwise {
	n := len(set)
	pts := set.Points()
	m := make([]float64, n*n)
	fillRow := func(i int) {
		row := m[i*n+i+1 : (i+1)*n]
		sp.DistancesTo(row, pts[i], pts[i+1:])
		for j, s := range row {
			d := sp.FromSurrogate(s)
			row[j] = d
			m[(i+1+j)*n+i] = d
		}
	}
	if eng.Sequential(n * (n - 1) / 2) {
		for i := 0; i < n; i++ {
			fillRow(i)
		}
	} else {
		eng.ForEachChunkCost((n+1)/2, n, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				fillRow(v)
				if mirror := n - 1 - v; mirror != v {
					fillRow(mirror)
				}
			}
		})
	}
	return func(i, j int) float64 { return m[i*n+j] }
}

// clusterPairwise is the core of Algorithm 1, parameterised by the pairwise
// distance accessor. The per-iteration scan for the heaviest ball is chunked
// across the engine's workers: each candidate's ball weight is an exact
// int64 sum over the (read-only during the scan) uncovered set, and the
// per-chunk maxima are reduced in chunk order with strict comparisons, so
// the selected center is identical to the sequential left-to-right scan.
func clusterPairwise(eng metric.Engine, pd pairwise, set metric.WeightedSet, k int, r, epsHat float64) *ClusterResult {
	n := len(set)
	ballRadius := (1 + 2*epsHat) * r
	coverRadius := (3 + 4*epsHat) * r
	uncovered := make([]bool, n)
	for i := range uncovered {
		uncovered[i] = true
	}
	uncoveredCount := n

	ballWeight := func(t int) int64 {
		var w int64
		for v := 0; v < n; v++ {
			if uncovered[v] && pd(t, v) <= ballRadius {
				w += set[v].W
			}
		}
		return w
	}

	res := &ClusterResult{}
	for len(res.CenterIndices) < k && uncoveredCount > 0 {
		// Pick the point (covered or not) whose (1+2eps)r-ball has maximum
		// aggregate uncovered weight.
		bestIdx, bestWeight := -1, int64(-1)
		if eng.Sequential(n * n) {
			for t := 0; t < n; t++ {
				if w := ballWeight(t); w > bestWeight {
					bestWeight = w
					bestIdx = t
				}
			}
		} else {
			nc := eng.NumChunksCost(n, n)
			idxs := make([]int, nc)
			weights := make([]int64, nc)
			eng.ForEachChunkCost(n, n, func(chunk, lo, hi int) {
				ci, cw := -1, int64(-1)
				for t := lo; t < hi; t++ {
					if w := ballWeight(t); w > cw {
						cw = w
						ci = t
					}
				}
				idxs[chunk], weights[chunk] = ci, cw
			})
			for c := 0; c < nc; c++ {
				if weights[c] > bestWeight {
					bestWeight = weights[c]
					bestIdx = idxs[c]
				}
			}
		}
		if bestIdx < 0 {
			break
		}
		res.CenterIndices = append(res.CenterIndices, bestIdx)
		res.Centers = append(res.Centers, set[bestIdx].P)
		// Remove from the uncovered set everything within (3+4eps)r of the
		// new center.
		for v := 0; v < n; v++ {
			if uncovered[v] && pd(bestIdx, v) <= coverRadius {
				uncovered[v] = false
				uncoveredCount--
			}
		}
	}
	for i, u := range uncovered {
		if u {
			res.Uncovered = append(res.Uncovered, i)
			res.UncoveredWeight += set[i].W
		}
	}
	return res
}

// Delta returns the multiplicative radius-search tolerance used by the paper,
// delta = epsHat / (3 + 4*epsHat). For epsHat = 0 it returns 0 (exact search).
func Delta(epsHat float64) float64 {
	if epsHat <= 0 {
		return 0
	}
	return epsHat / (3 + 4*epsHat)
}

// SolveResult is the outcome of a full radius search plus final clustering.
type SolveResult struct {
	// Centers are the final (at most k) centers.
	Centers metric.Dataset
	// CenterIndices are the indices of the centers within the input set.
	CenterIndices []int
	// Radius is the candidate radius the search settled on (r~min in the
	// paper's notation).
	Radius float64
	// UncoveredWeight is the aggregate weight left uncovered at that radius;
	// it is at most z by construction.
	UncoveredWeight int64
	// Evaluations is the number of OutliersCluster invocations performed by
	// the search; reported for the radius-search ablation.
	Evaluations int
}

// SearchStrategy selects how the radius search enumerates candidate radii.
type SearchStrategy int

const (
	// SearchBinaryGeometric is the paper's strategy: a binary search over the
	// sorted pairwise distances of the input, refined by a geometric search of
	// step (1+delta) between the last infeasible and first feasible distance.
	SearchBinaryGeometric SearchStrategy = iota
	// SearchExhaustive evaluates every candidate pairwise distance in
	// increasing order and stops at the first feasible one. It is exact but
	// needs O(|T|^2) clusterings in the worst case; used by the
	// CharikarEtAl-style baseline and by the radius-search ablation.
	SearchExhaustive
)

// Solve finds (an estimate of) the minimum radius r such that
// OutliersCluster(set, k, r, epsHat) leaves uncovered weight at most z, and
// returns the clustering computed at that radius. The search follows the
// given strategy; SearchBinaryGeometric reproduces the paper's second-round
// procedure.
// Unlike the gmm package (whose wrappers default to the auto-parallel
// engine), Solve pins workers to 1: it backs the CharikarEtAl sequential
// baselines, whose reported running times must reflect a truly sequential
// schedule. Parallel callers use SolveWithWorkers explicitly.
func Solve(dist metric.Distance, set metric.WeightedSet, k int, z int64, epsHat float64, strategy SearchStrategy) (*SolveResult, error) {
	return SolveWithWorkers(dist, set, k, z, epsHat, strategy, 1)
}

// SolveWithWorkers is Solve with the distance engine's parallelism degree
// made explicit. The scalar distance function is upgraded to its native
// Space when it is a built-in (batched matrix build, surrogate-domain row
// kernels), or wrapped in the identity-surrogate adapter otherwise.
func SolveWithWorkers(dist metric.Distance, set metric.WeightedSet, k int, z int64, epsHat float64, strategy SearchStrategy, workers int) (*SolveResult, error) {
	return SolveIn(metric.SpaceFor(dist), set, k, z, epsHat, strategy, workers)
}

// SolveIn is the Space form of Solve: the pairwise-matrix build and the
// per-center heaviest-ball scans of every OutliersCluster evaluation are
// chunked across workers goroutines (<= 0 selects one per CPU, 1 — the Solve
// default — keeps the fully sequential path). The result is bit-identical
// for any worker count.
func SolveIn(sp metric.Space, set metric.WeightedSet, k int, z int64, epsHat float64, strategy SearchStrategy, workers int) (*SolveResult, error) {
	if err := validateClusterParams(set, k, 0, epsHat); err != nil {
		return nil, err
	}
	if z < 0 {
		return nil, fmt.Errorf("%w: z = %d", ErrInvalidParam, z)
	}
	if sp == nil {
		sp = metric.EuclideanSpace
	}
	eng := metric.NewEngine(workers)

	// The search evaluates OutliersCluster many times on the same set, so for
	// moderate sizes precompute the pairwise distance matrix once.
	pd := pairwiseFromSpace(sp, set)
	if len(set) <= maxCachedMatrixSize {
		pd = pairwiseMatrix(eng, sp, set)
	}

	evals := 0
	feasible := func(r float64) (*ClusterResult, bool) {
		res := clusterPairwise(eng, pd, set, k, r, epsHat)
		evals++
		return res, res.UncoveredWeight <= z
	}

	// Degenerate cases: k >= |T| means radius 0 covers everything (every
	// point can be its own center), and likewise if the total weight beyond
	// the k heaviest points is at most z.
	if res, ok := feasible(0); ok {
		return &SolveResult{
			Centers:         res.Centers,
			CenterIndices:   res.CenterIndices,
			Radius:          0,
			UncoveredWeight: res.UncoveredWeight,
			Evaluations:     evals,
		}, nil
	}

	candidates := candidateRadii(sp, set.Points())
	if len(candidates) == 0 {
		// All points coincide: radius 0 was already feasible above unless the
		// weight budget is impossible, in which case we just report radius 0.
		res := clusterPairwise(eng, pd, set, k, 0, epsHat)
		return &SolveResult{
			Centers:         res.Centers,
			CenterIndices:   res.CenterIndices,
			Radius:          0,
			UncoveredWeight: res.UncoveredWeight,
			Evaluations:     evals,
		}, nil
	}

	var chosen float64
	var chosenRes *ClusterResult

	switch strategy {
	case SearchExhaustive:
		for _, r := range candidates {
			if res, ok := feasible(r); ok {
				chosen, chosenRes = r, res
				break
			}
		}
	default: // SearchBinaryGeometric
		// Binary search over the sorted candidate distances for the smallest
		// feasible one. The greedy is not strictly monotone in r, but as in
		// the paper the search treats it as such; the final result is always
		// validated by an explicit clustering at the chosen radius.
		lo, hi := 0, len(candidates)-1
		firstFeasible := -1
		for lo <= hi {
			mid := (lo + hi) / 2
			if _, ok := feasible(candidates[mid]); ok {
				firstFeasible = mid
				hi = mid - 1
			} else {
				lo = mid + 1
			}
		}
		if firstFeasible < 0 {
			firstFeasible = len(candidates) - 1
		}
		rHi := candidates[firstFeasible]
		rLo := 0.0
		if firstFeasible > 0 {
			rLo = candidates[firstFeasible-1]
		}
		chosen = rHi
		// Geometric refinement with step (1+delta) between rLo and rHi: walk
		// up from rLo multiplying by (1+delta) and keep the first feasible
		// value. This reproduces the (1+delta) multiplicative tolerance of
		// the paper without materialising every distance.
		if delta := Delta(epsHat); delta > 0 && rLo > 0 && rHi > rLo*(1+delta) {
			for r := rLo * (1 + delta); r < rHi; r *= 1 + delta {
				if _, ok := feasible(r); ok {
					chosen = r
					break
				}
			}
		}
		res, ok := feasible(chosen)
		if !ok {
			// Extremely defensive: fall back to the largest candidate, which
			// always covers everything (every point is within the diameter of
			// any center).
			chosen = candidates[len(candidates)-1]
			res, _ = feasible(chosen)
		}
		chosenRes = res
	}

	if chosenRes == nil {
		// No candidate was feasible (can only happen if z is smaller than the
		// weight that k centers can ever leave uncovered at the diameter,
		// which cannot occur: at the maximum pairwise distance a single
		// center covers everything). Guard anyway.
		chosen = candidates[len(candidates)-1]
		chosenRes = clusterPairwise(eng, pd, set, k, chosen, epsHat)
	}

	return &SolveResult{
		Centers:         chosenRes.Centers,
		CenterIndices:   chosenRes.CenterIndices,
		Radius:          chosen,
		UncoveredWeight: chosenRes.UncoveredWeight,
		Evaluations:     evals,
	}, nil
}

// candidateRadii returns the sorted distinct positive pairwise distances of
// the points. These are the candidate radii of the search: the behaviour of
// OutliersCluster changes only when r crosses a value at which some pairwise
// distance enters or leaves one of the two balls, and searching the pairwise
// distances themselves is the protocol of the original Charikar et al.
// algorithm that the paper builds on. Rows are computed with the space's
// batched kernel; the values are true distances.
func candidateRadii(sp metric.Space, points metric.Dataset) []float64 {
	ds := metric.PairwiseDistancesIn(sp, points)
	if len(ds) == 0 {
		return nil
	}
	sort.Float64s(ds)
	out := ds[:0]
	prev := math.Inf(-1)
	for _, d := range ds {
		if d > 0 && d != prev {
			out = append(out, d)
			prev = d
		}
	}
	return out
}

// CharikarEtAl runs the original sequential 3-approximation algorithm for the
// k-center problem with z outliers on an unweighted point set: unit weights,
// epsHat = 0, and an exhaustive search over all pairwise distances (smallest
// feasible first). This is the CHARIKARETAL baseline of Figure 8; its running
// time is O(k |S|^2 log|S|)-ish and it is only meant for datasets of at most a
// few tens of thousands of points.
func CharikarEtAl(dist metric.Distance, points metric.Dataset, k, z int) (*SolveResult, error) {
	if z < 0 {
		return nil, fmt.Errorf("%w: z = %d", ErrInvalidParam, z)
	}
	set := metric.Unweighted(points)
	return Solve(dist, set, k, int64(z), 0, SearchBinaryGeometric)
}

// CharikarEtAlExhaustive is CharikarEtAl with the exhaustive (linear-scan)
// radius search. It is the most faithful rendition of the original algorithm
// and the slowest; the radius-search ablation benchmark compares the two.
func CharikarEtAlExhaustive(dist metric.Distance, points metric.Dataset, k, z int) (*SolveResult, error) {
	if z < 0 {
		return nil, fmt.Errorf("%w: z = %d", ErrInvalidParam, z)
	}
	set := metric.Unweighted(points)
	return Solve(dist, set, k, int64(z), 0, SearchExhaustive)
}
