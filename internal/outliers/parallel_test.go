package outliers

import (
	"math/rand"
	"testing"

	"coresetclustering/internal/metric"
)

func parallelTestSet(n, dim int, seed int64) metric.WeightedSet {
	rng := rand.New(rand.NewSource(seed))
	out := make(metric.WeightedSet, n)
	for i := range out {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		out[i] = metric.WeightedPoint{P: p, W: 1 + int64(rng.Intn(5))}
	}
	return out
}

// TestSolveDeterminismAcrossWorkers: the radius search (parallel pairwise
// matrix + parallel covering scans) must settle on bit-identical centers,
// radius and uncovered weight for any worker count, under both search
// strategies.
func TestSolveDeterminismAcrossWorkers(t *testing.T) {
	// The binary + geometric search runs at a size that engages the engine's
	// chunking; the exhaustive scan is quadratic in both set size and
	// candidate count, so it uses a small instance (still a determinism
	// check, just without multi-chunk parallelism).
	sets := map[SearchStrategy]metric.WeightedSet{
		SearchBinaryGeometric: parallelTestSet(700, 3, 5),
		SearchExhaustive:      parallelTestSet(120, 3, 5),
	}
	for strategy, set := range sets {
		want, err := SolveWithWorkers(metric.Euclidean, set, 8, 25, 0.25, strategy, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{0, 2, 8} {
			got, err := SolveWithWorkers(metric.Euclidean, set, 8, 25, 0.25, strategy, w)
			if err != nil {
				t.Fatal(err)
			}
			if got.Radius != want.Radius {
				t.Fatalf("strategy=%d w=%d: radius = %v, want %v", strategy, w, got.Radius, want.Radius)
			}
			if got.UncoveredWeight != want.UncoveredWeight {
				t.Fatalf("strategy=%d w=%d: uncovered = %d, want %d", strategy, w, got.UncoveredWeight, want.UncoveredWeight)
			}
			if got.Evaluations != want.Evaluations {
				t.Fatalf("strategy=%d w=%d: evaluations = %d, want %d", strategy, w, got.Evaluations, want.Evaluations)
			}
			if len(got.CenterIndices) != len(want.CenterIndices) {
				t.Fatalf("strategy=%d w=%d: %d centers, want %d", strategy, w, len(got.CenterIndices), len(want.CenterIndices))
			}
			for i := range want.CenterIndices {
				if got.CenterIndices[i] != want.CenterIndices[i] {
					t.Fatalf("strategy=%d w=%d: center %d = %d, want %d",
						strategy, w, i, got.CenterIndices[i], want.CenterIndices[i])
				}
			}
		}
	}
}

// TestSolveDistanceBudgetAcrossWorkers: the cached pairwise matrix must cost
// exactly n*(n-1)/2 distance evaluations regardless of the worker count (the
// half-matrix contract of pairwiseMatrix).
func TestSolveDistanceBudgetAcrossWorkers(t *testing.T) {
	set := parallelTestSet(600, 2, 9)
	n := int64(len(set))
	for _, w := range []int{1, 8} {
		c := metric.NewCounter(metric.Euclidean)
		if _, err := SolveWithWorkers(c.Distance, set, 5, 10, 0, SearchBinaryGeometric, w); err != nil {
			t.Fatal(err)
		}
		// candidateRadii evaluates all pairs once more on top of the matrix.
		want := n * (n - 1)
		if got := c.Calls(); got != want {
			t.Fatalf("workers=%d: %d distance calls, want exactly %d", w, got, want)
		}
	}
}
