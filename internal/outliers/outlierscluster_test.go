package outliers

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coresetclustering/internal/gmm"
	"coresetclustering/internal/metric"
)

func randomDataset(rng *rand.Rand, n, dim int, scale float64) metric.Dataset {
	ds := make(metric.Dataset, n)
	for i := range ds {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = (rng.Float64()*2 - 1) * scale
		}
		ds[i] = p
	}
	return ds
}

// datasetWithOutliers builds k tight clusters plus nOut far-away points.
func datasetWithOutliers(rng *rand.Rand, k, perCluster, nOut, dim int) (metric.Dataset, int) {
	var ds metric.Dataset
	for c := 0; c < k; c++ {
		center := make(metric.Point, dim)
		for j := range center {
			center[j] = float64(c * 100)
		}
		for i := 0; i < perCluster; i++ {
			p := make(metric.Point, dim)
			for j := range p {
				p[j] = center[j] + rng.NormFloat64()
			}
			ds = append(ds, p)
		}
	}
	for o := 0; o < nOut; o++ {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = 1e6 + float64(o*1e4) + rng.Float64()
		}
		ds = append(ds, p)
	}
	return ds, nOut
}

func TestClusterErrors(t *testing.T) {
	set := metric.Unweighted(metric.Dataset{{0}, {1}})
	if _, err := Cluster(metric.Euclidean, nil, 1, 1, 0); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Cluster(metric.Euclidean, set, 0, 1, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Cluster(metric.Euclidean, set, 1, -1, 0); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := Cluster(metric.Euclidean, set, 1, 1, -0.5); err == nil {
		t.Error("negative epsHat accepted")
	}
}

func TestSolveErrors(t *testing.T) {
	set := metric.Unweighted(metric.Dataset{{0}, {1}})
	if _, err := Solve(metric.Euclidean, nil, 1, 0, 0, SearchBinaryGeometric); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Solve(metric.Euclidean, set, 0, 0, 0, SearchBinaryGeometric); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Solve(metric.Euclidean, set, 1, -1, 0, SearchBinaryGeometric); err == nil {
		t.Error("negative z accepted")
	}
	if _, err := Solve(metric.Euclidean, set, 1, 0, -1, SearchBinaryGeometric); err == nil {
		t.Error("negative epsHat accepted")
	}
	if _, err := CharikarEtAl(metric.Euclidean, metric.Dataset{{0}}, 1, -1); err == nil {
		t.Error("CharikarEtAl negative z accepted")
	}
	if _, err := CharikarEtAlExhaustive(metric.Euclidean, metric.Dataset{{0}}, 1, -1); err == nil {
		t.Error("CharikarEtAlExhaustive negative z accepted")
	}
}

func TestClusterCoversEverythingWithLargeRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := randomDataset(rng, 40, 2, 10)
	set := metric.Unweighted(ds)
	diam := metric.Diameter(metric.Euclidean, ds)
	res, err := Cluster(metric.Euclidean, set, 1, diam, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.UncoveredWeight != 0 {
		t.Errorf("uncovered weight = %d, want 0 at diameter radius", res.UncoveredWeight)
	}
	if len(res.Centers) != 1 {
		t.Errorf("centers = %d, want 1", len(res.Centers))
	}
}

func TestClusterRespectsK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := randomDataset(rng, 50, 2, 100)
	set := metric.Unweighted(ds)
	res, err := Cluster(metric.Euclidean, set, 3, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) > 3 {
		t.Errorf("selected %d centers, want <= 3", len(res.Centers))
	}
}

func TestClusterUncoveredDefinition(t *testing.T) {
	// Every uncovered point must be at distance > (3+4eps)*r from every
	// center, and every covered point within that distance of some center.
	rng := rand.New(rand.NewSource(3))
	ds := randomDataset(rng, 60, 3, 20)
	set := metric.Unweighted(ds)
	r := 5.0
	epsHat := 0.25
	res, err := Cluster(metric.Euclidean, set, 4, r, epsHat)
	if err != nil {
		t.Fatal(err)
	}
	cover := (3 + 4*epsHat) * r
	uncovered := map[int]bool{}
	for _, u := range res.Uncovered {
		uncovered[u] = true
	}
	for i, wp := range set {
		d, _ := metric.DistanceToSet(metric.Euclidean, wp.P, res.Centers)
		if uncovered[i] && d <= cover {
			t.Errorf("point %d marked uncovered but within cover radius (d=%v)", i, d)
		}
		if !uncovered[i] && d > cover+1e-12 {
			t.Errorf("point %d marked covered but outside cover radius (d=%v)", i, d)
		}
	}
}

func TestClusterGreedyPicksHeaviestBall(t *testing.T) {
	// Three locations; the middle one has the largest weight, so with k=1 and
	// a radius that only covers one location per ball, the greedy must pick
	// the heaviest.
	set := metric.WeightedSet{
		{P: metric.Point{0}, W: 5},
		{P: metric.Point{100}, W: 50},
		{P: metric.Point{200}, W: 7},
	}
	res, err := Cluster(metric.Euclidean, set, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CenterIndices) != 1 || res.CenterIndices[0] != 1 {
		t.Fatalf("greedy picked %v, want the heaviest point (index 1)", res.CenterIndices)
	}
	if res.UncoveredWeight != 12 {
		t.Errorf("uncovered weight = %d, want 12", res.UncoveredWeight)
	}
}

func TestLemma5CoverageProperty(t *testing.T) {
	// Lemma 5: for r >= r*_{k,z}(S), OutliersCluster on a weighted coreset
	// leaves uncovered weight at most z. We verify the statement directly on
	// the full (unit-weight) input where the proxy function is the identity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		k := 1 + rng.Intn(2)
		z := rng.Intn(3)
		ds := randomDataset(rng, n, 2, 50)
		opt, err := gmm.BruteForceOptimalRadiusWithOutliers(metric.Euclidean, ds, k, z)
		if err != nil {
			return false
		}
		set := metric.Unweighted(ds)
		for _, epsHat := range []float64{0, 0.1, 0.5} {
			res, err := Cluster(metric.Euclidean, set, k, opt, epsHat)
			if err != nil {
				return false
			}
			if res.UncoveredWeight > int64(z) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("Lemma 5 violated: %v", err)
	}
}

func TestSolveThreeApproximation(t *testing.T) {
	// The radius of the returned clustering (computed on the real points,
	// excluding z outliers) must be within (3+eps) of the optimum, checked by
	// brute force on small instances.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(7)
		k := 1 + rng.Intn(2)
		z := rng.Intn(3)
		ds := randomDataset(rng, n, 2, 50)
		opt, err := gmm.BruteForceOptimalRadiusWithOutliers(metric.Euclidean, ds, k, z)
		if err != nil {
			return false
		}
		res, err := CharikarEtAl(metric.Euclidean, ds, k, z)
		if err != nil {
			return false
		}
		got := metric.RadiusExcluding(metric.Euclidean, ds, res.Centers, z)
		// CharikarEtAl guarantees 3*opt.
		return got <= 3*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("3-approximation violated: %v", err)
	}
}

func TestSolveWithObviousOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, nOut := datasetWithOutliers(rng, 3, 20, 4, 2)
	res, err := CharikarEtAl(metric.Euclidean, ds, 3, nOut)
	if err != nil {
		t.Fatal(err)
	}
	// The clustering radius excluding the outliers should be small (clusters
	// have stddev 1, so a radius around a few units), certainly well below
	// the distance to the planted outliers.
	r := metric.RadiusExcluding(metric.Euclidean, ds, res.Centers, nOut)
	if r > 50 {
		t.Errorf("radius excluding outliers = %v, want small (clusters are tight)", r)
	}
	if res.UncoveredWeight > int64(nOut) {
		t.Errorf("uncovered weight = %d, want <= %d", res.UncoveredWeight, nOut)
	}
}

func TestSolveStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := randomDataset(rng, 30, 2, 20)
	set := metric.Unweighted(ds)
	k, z := 3, int64(2)
	exh, err := Solve(metric.Euclidean, set, k, z, 0, SearchExhaustive)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := Solve(metric.Euclidean, set, k, z, 0, SearchBinaryGeometric)
	if err != nil {
		t.Fatal(err)
	}
	if exh.UncoveredWeight > z || bin.UncoveredWeight > z {
		t.Fatalf("a strategy left too much uncovered: exh=%d bin=%d", exh.UncoveredWeight, bin.UncoveredWeight)
	}
	// The binary-search radius can differ from the exhaustive one when the
	// feasibility predicate is not perfectly monotone, but both must be
	// feasible, and the exhaustive radius is never larger.
	if exh.Radius > bin.Radius+1e-9 {
		t.Errorf("exhaustive radius %v > binary radius %v", exh.Radius, bin.Radius)
	}
	if exh.Evaluations <= 0 || bin.Evaluations <= 0 {
		t.Error("evaluations not recorded")
	}
}

func TestSolveDegenerateCases(t *testing.T) {
	// k >= |T|: radius 0 is feasible.
	set := metric.Unweighted(metric.Dataset{{0, 0}, {5, 5}})
	res, err := Solve(metric.Euclidean, set, 2, 0, 0.1, SearchBinaryGeometric)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius != 0 {
		t.Errorf("radius = %v, want 0 when k >= |T|", res.Radius)
	}
	// All points coincide.
	same := metric.Unweighted(metric.Dataset{{1, 1}, {1, 1}, {1, 1}})
	res, err = Solve(metric.Euclidean, same, 1, 0, 0.1, SearchBinaryGeometric)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius != 0 || res.UncoveredWeight != 0 {
		t.Errorf("coincident points: radius=%v uncovered=%d, want 0/0", res.Radius, res.UncoveredWeight)
	}
	// z larger than total weight.
	res, err = Solve(metric.Euclidean, set, 1, 100, 0, SearchBinaryGeometric)
	if err != nil {
		t.Fatal(err)
	}
	if res.UncoveredWeight > 100 {
		t.Errorf("uncovered weight = %d exceeds z", res.UncoveredWeight)
	}
}

func TestSolveWeightedVsUnweightedConsistency(t *testing.T) {
	// A weighted set where each point has weight w must behave like the
	// unweighted set with w copies, for the purposes of the uncovered-weight
	// budget.
	rng := rand.New(rand.NewSource(8))
	base := randomDataset(rng, 15, 2, 10)
	weighted := make(metric.WeightedSet, len(base))
	var expanded metric.Dataset
	for i, p := range base {
		w := int64(1 + rng.Intn(4))
		weighted[i] = metric.WeightedPoint{P: p, W: w}
		for c := int64(0); c < w; c++ {
			expanded = append(expanded, p)
		}
	}
	k, z := 2, int64(3)
	wres, err := Solve(metric.Euclidean, weighted, k, z, 0, SearchExhaustive)
	if err != nil {
		t.Fatal(err)
	}
	ures, err := Solve(metric.Euclidean, metric.Unweighted(expanded), k, z, 0, SearchExhaustive)
	if err != nil {
		t.Fatal(err)
	}
	if wres.UncoveredWeight > z || ures.UncoveredWeight > z {
		t.Fatalf("infeasible solutions: %d / %d", wres.UncoveredWeight, ures.UncoveredWeight)
	}
	// The candidate radii sets are identical (duplicated points add no new
	// distances), so the chosen radii must agree.
	if wres.Radius != ures.Radius {
		t.Errorf("weighted radius %v != expanded radius %v", wres.Radius, ures.Radius)
	}
}

func TestDelta(t *testing.T) {
	if got := Delta(0); got != 0 {
		t.Errorf("Delta(0) = %v, want 0", got)
	}
	if got := Delta(-1); got != 0 {
		t.Errorf("Delta(-1) = %v, want 0", got)
	}
	got := Delta(0.5)
	want := 0.5 / (3 + 4*0.5)
	if got != want {
		t.Errorf("Delta(0.5) = %v, want %v", got, want)
	}
}

func TestCandidateRadii(t *testing.T) {
	ds := metric.Dataset{{0}, {1}, {1}, {3}}
	got := candidateRadii(metric.EuclideanSpace, ds)
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("candidateRadii = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidateRadii = %v, want %v", got, want)
		}
	}
	if got := candidateRadii(metric.EuclideanSpace, metric.Dataset{{5}}); got != nil {
		t.Errorf("singleton candidates = %v, want nil", got)
	}
}
