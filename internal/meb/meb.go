// Package meb computes approximate minimum enclosing balls (MEB) of point
// sets in Euclidean space using the Badoiu–Clarkson core-set iteration.
//
// The paper's experiments use the MEB of each dataset to inject artificial
// outliers: z points are added at distance 100*r_MEB from the MEB center in
// random directions, guaranteeing that every injected point is at distance at
// least 99*r_MEB from every original point.
package meb

import (
	"errors"
	"math"

	"coresetclustering/internal/metric"
)

// Result is an approximate minimum enclosing ball.
type Result struct {
	// Center is the ball center (generally not an input point).
	Center metric.Point
	// Radius is the maximum distance from Center to any input point, i.e. an
	// upper bound on the optimal MEB radius within the approximation factor.
	Radius float64
	// Iterations is the number of Badoiu–Clarkson iterations performed.
	Iterations int
}

// Approximate computes a (1+eps)-approximate minimum enclosing ball of the
// dataset with the Badoiu–Clarkson iteration: start from an arbitrary point
// and repeatedly move the candidate center a shrinking step towards the
// current farthest point. The number of iterations is ceil(1/eps^2),
// capped at maxIterations when positive.
func Approximate(points metric.Dataset, eps float64, maxIterations int) (*Result, error) {
	if len(points) == 0 {
		return nil, errors.New("meb: empty dataset")
	}
	if err := points.Validate(); err != nil {
		return nil, err
	}
	if eps <= 0 {
		eps = 0.1
	}
	iters := int(math.Ceil(1 / (eps * eps)))
	if maxIterations > 0 && iters > maxIterations {
		iters = maxIterations
	}
	if iters < 1 {
		iters = 1
	}

	center := points[0].Clone()
	for i := 1; i <= iters; i++ {
		// Farthest point from the current center.
		farIdx, farDist := 0, -1.0
		for j, p := range points {
			if d := metric.Euclidean(center, p); d > farDist {
				farDist = d
				farIdx = j
			}
		}
		if farDist == 0 {
			return &Result{Center: center, Radius: 0, Iterations: i}, nil
		}
		// Move the center 1/(i+1) of the way towards the farthest point.
		step := 1 / float64(i+1)
		far := points[farIdx]
		for c := range center {
			center[c] += step * (far[c] - center[c])
		}
	}
	radius := 0.0
	for _, p := range points {
		if d := metric.Euclidean(center, p); d > radius {
			radius = d
		}
	}
	return &Result{Center: center, Radius: radius, Iterations: iters}, nil
}

// Exact2D is not provided: the experiments only need an approximate ball, and
// keeping a single code path avoids divergence between dimensions.

// Contains reports whether the ball contains the point, within a small
// absolute tolerance for floating-point error.
func (r *Result) Contains(p metric.Point) bool {
	return metric.Euclidean(r.Center, p) <= r.Radius+1e-9
}
