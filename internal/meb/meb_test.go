package meb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"coresetclustering/internal/metric"
)

func TestApproximateErrors(t *testing.T) {
	if _, err := Approximate(nil, 0.1, 0); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Approximate(metric.Dataset{{math.NaN()}}, 0.1, 0); err == nil {
		t.Error("NaN dataset accepted")
	}
}

func TestApproximateSinglePoint(t *testing.T) {
	res, err := Approximate(metric.Dataset{{3, 4}}, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius != 0 {
		t.Errorf("radius = %v, want 0", res.Radius)
	}
	if !res.Contains(metric.Point{3, 4}) {
		t.Error("ball does not contain its only point")
	}
}

func TestApproximateCoincidentPoints(t *testing.T) {
	res, err := Approximate(metric.Dataset{{1, 1}, {1, 1}, {1, 1}}, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius != 0 {
		t.Errorf("radius = %v, want 0", res.Radius)
	}
}

func TestApproximateKnownConfiguration(t *testing.T) {
	// Two antipodal points: the MEB has radius half their distance; the
	// approximation should be within ~20% with eps=0.05.
	ds := metric.Dataset{{-1, 0}, {1, 0}}
	res, err := Approximate(ds, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius < 1-1e-9 {
		t.Errorf("radius = %v, want >= 1 (must enclose both points)", res.Radius)
	}
	if res.Radius > 1.3 {
		t.Errorf("radius = %v, want close to 1", res.Radius)
	}
}

func TestApproximateEnclosureProperty(t *testing.T) {
	// The ball must always contain every input point, for any eps.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		dim := 1 + rng.Intn(5)
		ds := make(metric.Dataset, n)
		for i := range ds {
			p := make(metric.Point, dim)
			for j := range p {
				p[j] = rng.NormFloat64() * 10
			}
			ds[i] = p
		}
		res, err := Approximate(ds, 0.1, 0)
		if err != nil {
			return false
		}
		for _, p := range ds {
			if !res.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("enclosure violated: %v", err)
	}
}

func TestApproximateQualityProperty(t *testing.T) {
	// The approximate radius must be within a small factor of a simple lower
	// bound: half the diameter.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		ds := make(metric.Dataset, n)
		for i := range ds {
			ds[i] = metric.Point{rng.NormFloat64() * 5, rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		}
		res, err := Approximate(ds, 0.05, 0)
		if err != nil {
			return false
		}
		lower := metric.Diameter(metric.Euclidean, ds) / 2
		// Optimal radius is between lower and 2*lower (it is at most the
		// diameter); a (1+eps) approximation stays below ~1.3*diameter here.
		return res.Radius <= 2.6*lower+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("quality bound violated: %v", err)
	}
}

func TestApproximateMaxIterationsCap(t *testing.T) {
	ds := metric.Dataset{{0, 0}, {1, 0}, {0, 1}, {5, 5}}
	res, err := Approximate(ds, 0.001, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 7 {
		t.Errorf("iterations = %d, want capped at 7", res.Iterations)
	}
	// Non-positive eps defaults rather than dividing by zero.
	if _, err := Approximate(ds, 0, 5); err != nil {
		t.Errorf("eps=0 should default: %v", err)
	}
}
