package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"coresetclustering/internal/coreset"
	"coresetclustering/internal/mapreduce"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/outliers"
)

// OutliersConfig configures the 2-round MapReduce algorithm for the k-center
// problem with z outliers (Section 3.2 of the paper), in both its
// deterministic and randomized-partitioning variants.
type OutliersConfig struct {
	// K is the number of centers, Z the outlier budget.
	K int
	Z int
	// Ell is the number of partitions.
	Ell int
	// EpsHat is the precision parameter. It drives the coreset stopping rule
	// when CoresetSize is zero, and it is always the slack parameter of the
	// weighted OutliersCluster run in the second round (epsHat = 0 means the
	// exact radii of the original Charikar et al. algorithm).
	EpsHat float64
	// CoresetSize, when positive, fixes the per-partition coreset size
	// directly (the experiments use mu*(K+Z) deterministically and
	// mu*(K+6*Z/Ell) for the randomized variant). When zero, the eps-driven
	// stopping rule with reference K+Z (or K+Z') centers is used and EpsHat
	// must be positive.
	CoresetSize int
	// Randomized selects the randomized variant of Section 3.2.1: points are
	// partitioned uniformly at random and the per-partition reference center
	// count becomes K + Z' with Z' = 6*(Z/Ell + log2|S|).
	Randomized bool
	// Rand seeds the random partitioner of the randomized variant; nil uses a
	// fixed seed. Ignored when Randomized is false or Partitioner is set.
	Rand *rand.Rand
	// Distance is the metric; nil defaults to Euclidean.
	Distance metric.Distance
	// Space, when non-nil, overrides Distance as the metric space driving
	// every distance-dominated pass (batched kernels + comparison-domain
	// surrogate). When nil, Distance is upgraded to its native space
	// (built-ins) or wrapped in the identity-surrogate adapter.
	Space metric.Space
	// Partitioner overrides the default partitioner (uniform for the
	// deterministic variant, random for the randomized one). The Figure 4
	// experiment uses an adversarial partitioner here.
	Partitioner mapreduce.Partitioner
	// Parallelism bounds the number of partitions processed concurrently;
	// zero means one goroutine per available CPU.
	Parallelism int
	// Workers is the parallelism degree of the distance engine used inside
	// every distance-dominated pass (per-partition GMM, final radius over the
	// full input): <= 0 selects one worker per CPU, 1 forces the sequential
	// path. Results are bit-identical for any value. In the first round the
	// budget is divided among the concurrently running partitions.
	Workers int
	// MaxCoresetSize caps the eps-driven per-partition coreset size
	// (0 = unbounded); ignored by the fixed-size rule.
	MaxCoresetSize int
	// SearchStrategy selects the radius-search strategy of the second round;
	// the zero value is the paper's binary + geometric search.
	SearchStrategy outliers.SearchStrategy
}

func (c *OutliersConfig) normalize(n int) error {
	if n == 0 {
		return ErrEmptyInput
	}
	if c.K <= 0 || c.K >= n {
		return fmt.Errorf("%w: k=%d, |S|=%d", ErrInvalidK, c.K, n)
	}
	if c.Z < 0 || c.K+c.Z >= n {
		return fmt.Errorf("%w: k=%d z=%d |S|=%d", ErrInvalidZ, c.K, c.Z, n)
	}
	if c.Ell <= 0 {
		return ErrInvalidEll
	}
	if c.EpsHat < 0 {
		return fmt.Errorf("%w: negative epsHat %v", ErrInvalidSpec, c.EpsHat)
	}
	if c.CoresetSize < 0 {
		return fmt.Errorf("%w: negative coreset size %d", ErrInvalidSpec, c.CoresetSize)
	}
	if c.CoresetSize == 0 && c.EpsHat == 0 {
		return fmt.Errorf("%w: need CoresetSize > 0 or EpsHat > 0", ErrInvalidSpec)
	}
	if c.Space == nil {
		c.Space = metric.SpaceFor(c.Distance)
	}
	if c.Distance == nil {
		c.Distance = c.Space.Dist()
	}
	if c.Partitioner == nil {
		if c.Randomized {
			c.Partitioner = mapreduce.RandomPartitioner{Rand: c.Rand}
		} else {
			c.Partitioner = mapreduce.UniformPartitioner{}
		}
	}
	return nil
}

// randomizedOutlierBound returns z' = 6*(z/ell + log2 n), the high-probability
// per-partition outlier bound of Lemma 7.
func randomizedOutlierBound(z, ell, n int) int {
	if ell <= 0 {
		ell = 1
	}
	zp := 6 * (float64(z)/float64(ell) + math.Log2(float64(n)))
	return int(math.Ceil(zp))
}

// OutliersResult is the outcome of the 2-round MapReduce algorithm for
// k-center with z outliers.
type OutliersResult struct {
	// Centers are the (at most K) centers returned by the second round.
	Centers metric.Dataset
	// Radius is the outlier-aware radius over the full input: the maximum
	// distance to the centers after discarding the Z farthest points.
	Radius float64
	// SearchRadius is the candidate radius the second-round search settled
	// on (r~min in the paper).
	SearchRadius float64
	// UncoveredWeight is the aggregate coreset weight left uncovered at the
	// chosen radius (at most Z by construction).
	UncoveredWeight int64
	// CoresetUnionSize is |T|, the size of the union of the weighted
	// coresets gathered by the second round.
	CoresetUnionSize int
	// ReferenceCenters is the per-partition reference center count used by
	// the coreset construction: K+Z deterministically, K+Z' randomized.
	ReferenceCenters int
	// LocalMemoryPeak is the largest number of points held by one reducer.
	LocalMemoryPeak int
	// CoresetTime and SolveTime are the durations of the two rounds; Figure 7
	// reports them separately.
	CoresetTime time.Duration
	SolveTime   time.Duration
	// RadiusEvaluations counts the OutliersCluster invocations of the search.
	RadiusEvaluations int
	// PartitionSizes and CoresetSizes record |S_i| and |T_i| per partition.
	PartitionSizes []int
	CoresetSizes   []int
}

// KCenterOutliers runs the 2-round MapReduce algorithm for the k-center
// problem with z outliers. Round 1 builds a weighted composable coreset on
// every partition (incremental GMM with reference K+Z centers, or K+Z' for
// the randomized variant); round 2 gathers the weighted union and runs the
// radius search over OutliersCluster to extract the final centers.
func KCenterOutliers(points metric.Dataset, cfg OutliersConfig) (*OutliersResult, error) {
	if err := cfg.normalize(len(points)); err != nil {
		return nil, err
	}

	parts, err := cfg.Partitioner.Partition(points, cfg.Ell)
	if err != nil {
		return nil, fmt.Errorf("core: partitioning failed: %w", err)
	}

	refCenters := cfg.K + cfg.Z
	if cfg.Randomized {
		refCenters = cfg.K + randomizedOutlierBound(cfg.Z, cfg.Ell, len(points))
	}

	exec := mapreduce.ExecConfig{Parallelism: cfg.Parallelism, Workers: cfg.Workers}
	spec := coreset.Spec{
		Eps:        cfg.EpsHat,
		Size:       cfg.CoresetSize,
		RefCenters: refCenters,
		MaxSize:    cfg.MaxCoresetSize,
		Workers:    exec.PerPartitionWorkers(len(parts)),
		Space:      cfg.Space,
	}
	if cfg.CoresetSize > 0 {
		// Fixed-size rule: Spec requires exactly one of Eps/Size.
		spec.Eps = 0
	}

	// Round 1: per-partition weighted coresets.
	start := time.Now()
	coresets, execStats, err := mapreduce.MapPartitions(
		exec,
		parts,
		func(i int, part metric.Dataset) (*coreset.Coreset, error) {
			if len(part) == 0 {
				return nil, nil
			}
			return coreset.Build(cfg.Distance, part, spec)
		},
	)
	if err != nil {
		return nil, err
	}
	coresetTime := time.Since(start)

	union := coreset.Union(coresets...)
	if len(union) == 0 {
		return nil, errors.New("core: empty coreset union")
	}

	// Round 2: radius search over the weighted union.
	start = time.Now()
	solved, err := outliers.SolveIn(cfg.Space, union, cfg.K, int64(cfg.Z), cfg.EpsHat, cfg.SearchStrategy, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: second-round solve failed: %w", err)
	}
	solveTime := time.Since(start)

	res := &OutliersResult{
		Centers:           solved.Centers,
		Radius:            metric.NewEngine(cfg.Workers).RadiusExcluding(cfg.Space, points, solved.Centers, cfg.Z),
		SearchRadius:      solved.Radius,
		UncoveredWeight:   solved.UncoveredWeight,
		CoresetUnionSize:  len(union),
		ReferenceCenters:  refCenters,
		LocalMemoryPeak:   maxInt(execStats.LocalMemoryPeak, len(union)),
		CoresetTime:       coresetTime,
		SolveTime:         solveTime,
		RadiusEvaluations: solved.Evaluations,
		PartitionSizes:    make([]int, len(parts)),
		CoresetSizes:      make([]int, len(coresets)),
	}
	for i, p := range parts {
		res.PartitionSizes[i] = len(p)
	}
	for i, c := range coresets {
		if c != nil {
			res.CoresetSizes[i] = c.Size()
		}
	}
	return res, nil
}

// SequentialKCenterOutliers is the ell = 1 instantiation of KCenterOutliers:
// the paper's "improved sequential algorithm", which builds a single coreset
// of the whole input and then runs the radius search on it. Its running time
// is O(|S||T| + k|T|^2 log|T|), a large improvement over the
// O(k|S|^2 log|S|) CharikarEtAl baseline for |T| << |S|.
func SequentialKCenterOutliers(points metric.Dataset, k, z, coresetSize int, epsHat float64, dist metric.Distance) (*OutliersResult, error) {
	return KCenterOutliers(points, OutliersConfig{
		K:           k,
		Z:           z,
		Ell:         1,
		EpsHat:      epsHat,
		CoresetSize: coresetSize,
		Distance:    dist,
		Parallelism: 1,
		Workers:     1,
	})
}
