package core

import (
	"math/rand"
	"testing"

	"coresetclustering/internal/metric"
)

func parallelTestDataset(n, dim int, seed int64) metric.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := make(metric.Dataset, n)
	for i := range ds {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		ds[i] = p
	}
	return ds
}

func sameCenters(t *testing.T, label string, want, got metric.Dataset) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d centers, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: center %d differs: %v vs %v", label, i, got[i], want[i])
		}
	}
}

// TestKCenterDeterminismAcrossWorkers: the 2-round MapReduce k-center
// algorithm must return bit-identical centers and radius for Workers 1 and 8
// (with Parallelism pinned so the partition schedule is the only variable).
func TestKCenterDeterminismAcrossWorkers(t *testing.T) {
	ds := parallelTestDataset(10000, 3, 42)
	base := KCenterConfig{K: 10, Ell: 4, CoresetSize: 40}
	seqCfg, parCfg := base, base
	seqCfg.Workers = 1
	parCfg.Workers = 8
	want, err := KCenter(ds, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := KCenter(ds, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	sameCenters(t, "KCenter", want.Centers, got.Centers)
	if got.Radius != want.Radius {
		t.Fatalf("KCenter radius = %v, want %v", got.Radius, want.Radius)
	}

	wantEng, err := KCenterViaEngine(ds, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	gotEng, err := KCenterViaEngine(ds, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	sameCenters(t, "KCenterViaEngine", wantEng.Centers, gotEng.Centers)
	if gotEng.Radius != wantEng.Radius {
		t.Fatalf("KCenterViaEngine radius = %v, want %v", gotEng.Radius, wantEng.Radius)
	}
}

// TestKCenterOutliersDeterminismAcrossWorkers: same contract for the outlier
// algorithm, whose second round exercises the parallel covering loop and the
// parallel pairwise matrix.
func TestKCenterOutliersDeterminismAcrossWorkers(t *testing.T) {
	ds := parallelTestDataset(9000, 3, 7)
	base := OutliersConfig{K: 6, Z: 15, Ell: 4, CoresetSize: 2 * (6 + 15), EpsHat: 0.25}
	seqCfg, parCfg := base, base
	seqCfg.Workers = 1
	parCfg.Workers = 8
	want, err := KCenterOutliers(ds, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := KCenterOutliers(ds, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	sameCenters(t, "KCenterOutliers", want.Centers, got.Centers)
	if got.Radius != want.Radius {
		t.Fatalf("radius = %v, want %v", got.Radius, want.Radius)
	}
	if got.SearchRadius != want.SearchRadius {
		t.Fatalf("search radius = %v, want %v", got.SearchRadius, want.SearchRadius)
	}
	if got.UncoveredWeight != want.UncoveredWeight {
		t.Fatalf("uncovered weight = %d, want %d", got.UncoveredWeight, want.UncoveredWeight)
	}
}

// TestKCenterRaceSmoke is a bounded-size run with auto workers, meant for
// `go test -race`: it exercises partition-level and distance-level
// parallelism nested inside each other.
func TestKCenterRaceSmoke(t *testing.T) {
	ds := parallelTestDataset(9000, 2, 3)
	if _, err := KCenter(ds, KCenterConfig{K: 8, Ell: 4, CoresetSize: 32, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := KCenterOutliers(ds, OutliersConfig{K: 5, Z: 10, Ell: 4, CoresetSize: 30, EpsHat: 0.25, Workers: 4}); err != nil {
		t.Fatal(err)
	}
}
