package core

import (
	"math/rand"
	"testing"
)

func TestKCenterViaEngineMatchesDriver(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	k := 4
	ds := clusteredDataset(rng, k, 80, 3, 100, 1)
	cfg := KCenterConfig{K: k, Ell: 4, CoresetSize: 4 * k}

	engine, err := KCenterViaEngine(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	driver, err := KCenter(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(engine.Centers) != k {
		t.Fatalf("engine centers = %d, want %d", len(engine.Centers), k)
	}
	// Both formulations implement the same algorithm; on well-separated blobs
	// both must land in the "one center per blob" regime.
	if engine.Radius > 10 || driver.Radius > 10 {
		t.Errorf("radii too large: engine %v, driver %v", engine.Radius, driver.Radius)
	}
	if engine.CoresetUnionSize != driver.CoresetUnionSize {
		t.Errorf("coreset union sizes differ: engine %d, driver %d",
			engine.CoresetUnionSize, driver.CoresetUnionSize)
	}
	if engine.LocalMemoryPeak <= 0 {
		t.Error("engine local memory not recorded")
	}
}

func TestKCenterViaEngineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ds := randomDataset(rng, 30, 2, 10)
	if _, err := KCenterViaEngine(nil, KCenterConfig{K: 2, Ell: 2, CoresetSize: 4}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := KCenterViaEngine(ds, KCenterConfig{K: 0, Ell: 2, CoresetSize: 4}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KCenterViaEngine(ds, KCenterConfig{K: 2, Ell: 2}); err == nil {
		t.Error("missing coreset rule accepted")
	}
}

func TestKCenterViaEngineEpsRule(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ds := clusteredDataset(rng, 3, 40, 2, 50, 0.5)
	res, err := KCenterViaEngine(ds, KCenterConfig{K: 3, Ell: 3, Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("centers = %d, want 3", len(res.Centers))
	}
	if res.Radius > 10 {
		t.Errorf("radius = %v, want small", res.Radius)
	}
}
