package core

import (
	"errors"
	"fmt"
	"time"

	"coresetclustering/internal/coreset"
	"coresetclustering/internal/gmm"
	"coresetclustering/internal/mapreduce"
	"coresetclustering/internal/metric"
)

// Common configuration errors.
var (
	ErrEmptyInput   = errors.New("core: empty input dataset")
	ErrInvalidK     = errors.New("core: k must be positive and smaller than |S|")
	ErrInvalidEll   = errors.New("core: number of partitions ell must be positive")
	ErrInvalidSpec  = errors.New("core: exactly one of Eps and CoresetSize must be positive")
	ErrInvalidZ     = errors.New("core: z must be non-negative and k+z must be smaller than |S|")
	ErrNilDistance  = errors.New("core: nil distance function")
	ErrNilPartition = errors.New("core: nil partitioner")
)

// KCenterConfig configures the 2-round MapReduce algorithm for the k-center
// problem (Section 3.1 of the paper).
type KCenterConfig struct {
	// K is the number of centers.
	K int
	// Ell is the number of partitions (the parallelism of the first round).
	Ell int
	// Eps is the precision parameter of the coreset stopping rule. Exactly
	// one of Eps and CoresetSize must be positive.
	Eps float64
	// CoresetSize is the per-partition coreset size tau (the experiments use
	// tau = mu*K). Exactly one of Eps and CoresetSize must be positive.
	CoresetSize int
	// Distance is the metric; nil defaults to Euclidean.
	Distance metric.Distance
	// Space, when non-nil, overrides Distance as the metric space driving
	// every distance-dominated pass (batched kernels + comparison-domain
	// surrogate). When nil, Distance is upgraded to its native space
	// (built-ins) or wrapped in the identity-surrogate adapter.
	Space metric.Space
	// Partitioner splits the input in the first round; nil defaults to
	// UniformPartitioner (the paper's equal-size split).
	Partitioner mapreduce.Partitioner
	// Parallelism bounds the number of partitions processed concurrently;
	// zero means one goroutine per available CPU.
	Parallelism int
	// Workers is the parallelism degree of the distance engine used inside
	// every distance-dominated pass (per-partition GMM, final GMM, radius
	// over the full input): <= 0 selects one worker per CPU, 1 forces the
	// sequential path. Results are bit-identical for any value. In the first
	// round the budget is divided among the concurrently running partitions.
	Workers int
	// MaxCoresetSize caps the eps-driven coreset size per partition
	// (0 = unbounded); ignored by the fixed-size rule.
	MaxCoresetSize int
}

func (c *KCenterConfig) normalize(n int) error {
	if n == 0 {
		return ErrEmptyInput
	}
	if c.K <= 0 || c.K >= n {
		return fmt.Errorf("%w: k=%d, |S|=%d", ErrInvalidK, c.K, n)
	}
	if c.Ell <= 0 {
		return ErrInvalidEll
	}
	if (c.Eps > 0) == (c.CoresetSize > 0) {
		return fmt.Errorf("%w: eps=%v coresetSize=%d", ErrInvalidSpec, c.Eps, c.CoresetSize)
	}
	if c.Eps < 0 || c.CoresetSize < 0 {
		return fmt.Errorf("%w: eps=%v coresetSize=%d", ErrInvalidSpec, c.Eps, c.CoresetSize)
	}
	if c.Space == nil {
		c.Space = metric.SpaceFor(c.Distance)
	}
	if c.Distance == nil {
		c.Distance = c.Space.Dist()
	}
	if c.Partitioner == nil {
		c.Partitioner = mapreduce.UniformPartitioner{}
	}
	return nil
}

// KCenterResult is the outcome of the 2-round MapReduce k-center algorithm.
type KCenterResult struct {
	// Centers are the K centers returned by the second round.
	Centers metric.Dataset
	// Radius is r_T(S) computed over the full input (the clustering radius).
	Radius float64
	// CoresetUnionSize is |T|, the number of points gathered by the second
	// round's reducer.
	CoresetUnionSize int
	// LocalMemoryPeak is the largest number of points held by a single
	// reducer across the two rounds (max of |S|/ell and |T|).
	LocalMemoryPeak int
	// CoresetTime and FinalTime are the wall-clock durations of the first
	// round (coreset construction) and of the second round (GMM on the
	// union).
	CoresetTime time.Duration
	FinalTime   time.Duration
	// PartitionSizes records |S_i| for each partition.
	PartitionSizes []int
	// CoresetSizes records |T_i| for each partition.
	CoresetSizes []int
}

// KCenter runs the deterministic 2-round MapReduce algorithm for the k-center
// problem: round 1 builds a composable coreset on every partition with
// incremental GMM; round 2 gathers the union of the coresets and runs GMM on
// it to select the final K centers.
func KCenter(points metric.Dataset, cfg KCenterConfig) (*KCenterResult, error) {
	if err := cfg.normalize(len(points)); err != nil {
		return nil, err
	}

	parts, err := cfg.Partitioner.Partition(points, cfg.Ell)
	if err != nil {
		return nil, fmt.Errorf("core: partitioning failed: %w", err)
	}

	// Round 1: per-partition coresets, each using an even share of the
	// distance-engine worker budget.
	exec := mapreduce.ExecConfig{Parallelism: cfg.Parallelism, Workers: cfg.Workers}
	spec := coreset.Spec{
		Eps:        cfg.Eps,
		Size:       cfg.CoresetSize,
		RefCenters: cfg.K,
		MaxSize:    cfg.MaxCoresetSize,
		Workers:    exec.PerPartitionWorkers(len(parts)),
		Space:      cfg.Space,
	}
	start := time.Now()
	coresets, execStats, err := mapreduce.MapPartitions(
		exec,
		parts,
		func(i int, part metric.Dataset) (*coreset.Coreset, error) {
			if len(part) == 0 {
				return nil, nil
			}
			return coreset.Build(cfg.Distance, part, spec)
		},
	)
	if err != nil {
		return nil, err
	}
	coresetTime := time.Since(start)

	union := coreset.UnionPoints(coresets...)
	if len(union) == 0 {
		return nil, errors.New("core: empty coreset union")
	}

	// Round 2: GMM on the union of the coresets.
	start = time.Now()
	final, err := gmm.Runner{Space: cfg.Space, Workers: cfg.Workers}.Run(union, cfg.K, 0)
	if err != nil {
		return nil, fmt.Errorf("core: final GMM failed: %w", err)
	}
	finalTime := time.Since(start)

	res := &KCenterResult{
		Centers:          final.Centers,
		Radius:           metric.NewEngine(cfg.Workers).Radius(cfg.Space, points, final.Centers),
		CoresetUnionSize: len(union),
		LocalMemoryPeak:  maxInt(execStats.LocalMemoryPeak, len(union)),
		CoresetTime:      coresetTime,
		FinalTime:        finalTime,
		PartitionSizes:   make([]int, len(parts)),
		CoresetSizes:     make([]int, len(coresets)),
	}
	for i, p := range parts {
		res.PartitionSizes[i] = len(p)
	}
	for i, c := range coresets {
		if c != nil {
			res.CoresetSizes[i] = c.Size()
		}
	}
	return res, nil
}

// SequentialKCenter is the ell = 1 instantiation of KCenter: a purely
// sequential coreset-accelerated k-center algorithm. It is exposed separately
// for clarity; semantically it is KCenter with Ell = 1.
func SequentialKCenter(points metric.Dataset, k int, coresetSize int, dist metric.Distance) (*KCenterResult, error) {
	return KCenter(points, KCenterConfig{
		K:           k,
		Ell:         1,
		CoresetSize: coresetSize,
		Distance:    dist,
		Parallelism: 1,
		Workers:     1,
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
