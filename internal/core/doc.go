// Package core implements the paper's primary contribution: coreset-based
// 2-round MapReduce algorithms for the k-center problem with and without
// outliers, the randomized space-efficient variant, and the improved
// sequential algorithm obtained by running the MapReduce strategy with a
// single partition (ell = 1).
//
// The algorithms are assembled from the substrates in sibling packages:
// internal/gmm (incremental Gonzalez), internal/coreset (composable coreset
// construction), internal/outliers (weighted OutliersCluster and its radius
// search), and internal/mapreduce (the partition/parallel-round simulator that
// stands in for a Spark cluster).
//
// Approximation guarantees (Theorems 1 and 2 of the paper, for datasets of
// doubling dimension D):
//
//	k-center:              2 + eps, local memory O(sqrt(|S| k) (4/eps)^D)
//	k-center, z outliers:  3 + eps, local memory O(sqrt(|S|(k+z)) (24/eps)^D)
//	randomized variant:    3 + eps w.h.p., local memory
//	                       O((sqrt(|S|(k+log|S|)) + z) (24/eps)^D)
//
// The MapReduce algorithms are oblivious to D: it appears only in the
// analysis, never as an input.
package core
