package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coresetclustering/internal/gmm"
	"coresetclustering/internal/mapreduce"
	"coresetclustering/internal/metric"
)

func randomDataset(rng *rand.Rand, n, dim int, scale float64) metric.Dataset {
	ds := make(metric.Dataset, n)
	for i := range ds {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = (rng.Float64()*2 - 1) * scale
		}
		ds[i] = p
	}
	return ds
}

// clusteredDataset produces k well-separated Gaussian blobs.
func clusteredDataset(rng *rand.Rand, k, perCluster, dim int, separation, spread float64) metric.Dataset {
	var ds metric.Dataset
	for c := 0; c < k; c++ {
		center := make(metric.Point, dim)
		for j := range center {
			center[j] = float64(c) * separation
		}
		for i := 0; i < perCluster; i++ {
			p := make(metric.Point, dim)
			for j := range p {
				p[j] = center[j] + rng.NormFloat64()*spread
			}
			ds = append(ds, p)
		}
	}
	return ds
}

// withOutliers appends far-away points to the dataset and returns the indices
// of the appended points.
func withOutliers(ds metric.Dataset, nOut int) (metric.Dataset, []int) {
	dim := ds.Dim()
	out := ds.Clone()
	idx := make([]int, 0, nOut)
	for o := 0; o < nOut; o++ {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = 1e6 + float64(o)*1e4
		}
		idx = append(idx, len(out))
		out = append(out, p)
	}
	return out, idx
}

func TestKCenterConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := randomDataset(rng, 50, 2, 10)
	cases := []struct {
		name string
		cfg  KCenterConfig
		pts  metric.Dataset
	}{
		{"empty", KCenterConfig{K: 2, Ell: 2, CoresetSize: 4}, nil},
		{"k zero", KCenterConfig{K: 0, Ell: 2, CoresetSize: 4}, ds},
		{"k too large", KCenterConfig{K: 50, Ell: 2, CoresetSize: 4}, ds},
		{"ell zero", KCenterConfig{K: 2, Ell: 0, CoresetSize: 4}, ds},
		{"neither eps nor size", KCenterConfig{K: 2, Ell: 2}, ds},
		{"both eps and size", KCenterConfig{K: 2, Ell: 2, Eps: 0.5, CoresetSize: 4}, ds},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := KCenter(tt.pts, tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestKCenterBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := 4
	ds := clusteredDataset(rng, k, 100, 3, 100, 1)
	res, err := KCenter(ds, KCenterConfig{K: k, Ell: 4, CoresetSize: 4 * k})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != k {
		t.Fatalf("centers = %d, want %d", len(res.Centers), k)
	}
	// The blobs have stddev 1 and separation 100; a good clustering has a
	// radius of a few units.
	if res.Radius > 10 {
		t.Errorf("radius = %v, want small for well-separated blobs", res.Radius)
	}
	if res.CoresetUnionSize != 4*4*k {
		t.Errorf("coreset union size = %d, want %d", res.CoresetUnionSize, 4*4*k)
	}
	if len(res.PartitionSizes) != 4 || len(res.CoresetSizes) != 4 {
		t.Errorf("per-partition bookkeeping missing: %v %v", res.PartitionSizes, res.CoresetSizes)
	}
	if res.LocalMemoryPeak <= 0 {
		t.Error("local memory peak not recorded")
	}
}

func TestKCenterEpsRule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := 3
	ds := clusteredDataset(rng, k, 80, 2, 50, 0.5)
	res, err := KCenter(ds, KCenterConfig{K: k, Ell: 2, Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != k {
		t.Fatalf("centers = %d, want %d", len(res.Centers), k)
	}
}

func TestKCenterTwoPlusEpsApproximationProperty(t *testing.T) {
	// Theorem 1: the MapReduce algorithm is a (2+eps)-approximation. With the
	// eps-driven rule we verify radius <= (2+eps) * optimal on small random
	// instances (brute-force optimum).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(10)
		k := 1 + rng.Intn(3)
		eps := 0.5
		ds := randomDataset(rng, n, 2, 50)
		res, err := KCenter(ds, KCenterConfig{K: k, Ell: 2, Eps: eps})
		if err != nil {
			return false
		}
		opt, err := gmm.BruteForceOptimalRadius(metric.Euclidean, ds, k)
		if err != nil {
			return false
		}
		return res.Radius <= (2+eps)*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("(2+eps)-approximation violated: %v", err)
	}
}

func TestKCenterLargerCoresetsImproveQuality(t *testing.T) {
	// The headline experimental claim of Figure 2: increasing the coreset
	// multiplier mu does not worsen (and typically improves) the radius.
	rng := rand.New(rand.NewSource(4))
	k := 8
	ds := clusteredDataset(rng, k, 60, 5, 20, 2)
	radii := make([]float64, 0, 3)
	for _, mu := range []int{1, 4, 16} {
		res, err := KCenter(ds, KCenterConfig{K: k, Ell: 4, CoresetSize: mu * k})
		if err != nil {
			t.Fatal(err)
		}
		radii = append(radii, res.Radius)
	}
	if radii[2] > radii[0]*1.1 {
		t.Errorf("mu=16 radius (%v) much worse than mu=1 radius (%v)", radii[2], radii[0])
	}
}

func TestSequentialKCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k := 3
	ds := clusteredDataset(rng, k, 60, 2, 100, 1)
	res, err := SequentialKCenter(ds, k, 6*k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != k {
		t.Fatalf("centers = %d, want %d", len(res.Centers), k)
	}
	if res.Radius > 10 {
		t.Errorf("radius = %v, want small", res.Radius)
	}
}

func TestOutliersConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := randomDataset(rng, 50, 2, 10)
	cases := []struct {
		name string
		cfg  OutliersConfig
		pts  metric.Dataset
	}{
		{"empty", OutliersConfig{K: 2, Z: 2, Ell: 2, CoresetSize: 8}, nil},
		{"k zero", OutliersConfig{K: 0, Z: 2, Ell: 2, CoresetSize: 8}, ds},
		{"negative z", OutliersConfig{K: 2, Z: -1, Ell: 2, CoresetSize: 8}, ds},
		{"k+z too large", OutliersConfig{K: 25, Z: 25, Ell: 2, CoresetSize: 8}, ds},
		{"ell zero", OutliersConfig{K: 2, Z: 2, Ell: 0, CoresetSize: 8}, ds},
		{"no size no eps", OutliersConfig{K: 2, Z: 2, Ell: 2}, ds},
		{"negative eps", OutliersConfig{K: 2, Z: 2, Ell: 2, EpsHat: -1}, ds},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := KCenterOutliers(tt.pts, tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestKCenterOutliersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := 3
	base := clusteredDataset(rng, k, 60, 2, 100, 1)
	nOut := 5
	ds, _ := withOutliers(base, nOut)
	res, err := KCenterOutliers(ds, OutliersConfig{
		K: k, Z: nOut, Ell: 4, CoresetSize: 2 * (k + nOut), EpsHat: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) > k {
		t.Fatalf("centers = %d, want <= %d", len(res.Centers), k)
	}
	if res.UncoveredWeight > int64(nOut) {
		t.Errorf("uncovered weight = %d, want <= %d", res.UncoveredWeight, nOut)
	}
	// Excluding the outliers the radius should be small.
	if res.Radius > 20 {
		t.Errorf("outlier-aware radius = %v, want small", res.Radius)
	}
	if res.ReferenceCenters != k+nOut {
		t.Errorf("reference centers = %d, want %d", res.ReferenceCenters, k+nOut)
	}
	if res.CoresetTime < 0 || res.SolveTime < 0 {
		t.Error("negative phase durations")
	}
	if res.RadiusEvaluations <= 0 {
		t.Error("radius evaluations not recorded")
	}
}

func TestKCenterOutliersRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	k := 3
	base := clusteredDataset(rng, k, 60, 2, 100, 1)
	nOut := 6
	ds, _ := withOutliers(base, nOut)
	res, err := KCenterOutliers(ds, OutliersConfig{
		K: k, Z: nOut, Ell: 4, CoresetSize: 2 * (k + nOut), EpsHat: 0.25,
		Randomized: true, Rand: rand.New(rand.NewSource(99)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius > 20 {
		t.Errorf("outlier-aware radius = %v, want small", res.Radius)
	}
	// The randomized reference count uses z' = 6(z/ell + log2 n) >= k+z/ell.
	if res.ReferenceCenters <= k {
		t.Errorf("reference centers = %d, want > k", res.ReferenceCenters)
	}
}

func TestKCenterOutliersAdversarialPartitioning(t *testing.T) {
	// Figure 4 scenario: all outliers adversarially placed in one partition.
	// With a large enough coreset the deterministic algorithm still recovers
	// a good clustering.
	rng := rand.New(rand.NewSource(9))
	k := 3
	base := clusteredDataset(rng, k, 50, 2, 100, 1)
	nOut := 6
	ds, outIdx := withOutliers(base, nOut)
	res, err := KCenterOutliers(ds, OutliersConfig{
		K: k, Z: nOut, Ell: 4,
		CoresetSize: 4 * (k + nOut),
		EpsHat:      0.25,
		Partitioner: mapreduce.AdversarialPartitioner{Targeted: outIdx},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius > 20 {
		t.Errorf("adversarial partitioning radius = %v, want small with mu=4", res.Radius)
	}
}

func TestKCenterOutliersThreePlusEpsApproximationProperty(t *testing.T) {
	// Theorem 2: (3+eps)-approximation. Verified against brute force with the
	// eps-driven rule on small instances.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 14 + rng.Intn(8)
		k := 1 + rng.Intn(2)
		z := rng.Intn(3)
		eps := 0.6
		epsHat := eps / 6
		ds := randomDataset(rng, n, 2, 50)
		res, err := KCenterOutliers(ds, OutliersConfig{K: k, Z: z, Ell: 2, EpsHat: epsHat})
		if err != nil {
			return false
		}
		opt, err := gmm.BruteForceOptimalRadiusWithOutliers(metric.Euclidean, ds, k, z)
		if err != nil {
			return false
		}
		return res.Radius <= (3+eps)*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Errorf("(3+eps)-approximation violated: %v", err)
	}
}

func TestSequentialKCenterOutliersBeatsBaselineSpeedShape(t *testing.T) {
	// The sequential ell=1 algorithm must produce a feasible solution whose
	// radius is comparable to the coreset-free baseline on a clustered
	// dataset (Figure 8's qualitative claim). We only assert feasibility and
	// a sane radius here; the speed comparison lives in the benchmarks.
	rng := rand.New(rand.NewSource(10))
	k := 3
	base := clusteredDataset(rng, k, 50, 2, 100, 1)
	nOut := 4
	ds, _ := withOutliers(base, nOut)
	res, err := SequentialKCenterOutliers(ds, k, nOut, 4*(k+nOut), 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius > 20 {
		t.Errorf("sequential radius = %v, want small", res.Radius)
	}
}

func TestRandomizedOutlierBound(t *testing.T) {
	// z' = 6(z/ell + log2 n)
	got := randomizedOutlierBound(200, 16, 1<<20)
	want := 6 * (200.0/16.0 + 20.0)
	if float64(got) < want || float64(got) > want+1 {
		t.Errorf("randomizedOutlierBound = %d, want ceil(%v)", got, want)
	}
	if got := randomizedOutlierBound(10, 0, 1024); got <= 0 {
		t.Errorf("ell=0 bound = %d, want positive", got)
	}
}

func TestLemma7OutlierDistributionProperty(t *testing.T) {
	// Lemma 7: with random partitioning, with high probability every
	// partition contains at most z' = 6(z/ell + log2 n) of the z designated
	// outliers. We verify it empirically over repeated random partitionings.
	rng := rand.New(rand.NewSource(11))
	base := clusteredDataset(rng, 3, 200, 2, 100, 1)
	nOut := 40
	ds, outIdx := withOutliers(base, nOut)
	outSet := map[string]bool{}
	for _, i := range outIdx {
		outSet[ds[i].String()] = true
	}
	ell := 8
	bound := randomizedOutlierBound(nOut, ell, len(ds))
	for trial := 0; trial < 20; trial++ {
		parts, err := (mapreduce.RandomPartitioner{Rand: rng}).Partition(ds, ell)
		if err != nil {
			t.Fatal(err)
		}
		for pi, part := range parts {
			count := 0
			for _, p := range part {
				if outSet[p.String()] {
					count++
				}
			}
			if count > bound {
				t.Fatalf("trial %d partition %d holds %d outliers, bound %d", trial, pi, count, bound)
			}
		}
	}
}

func TestKCenterOutliersEpsOnlyRule(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	base := clusteredDataset(rng, 2, 40, 2, 60, 1)
	ds, _ := withOutliers(base, 3)
	res, err := KCenterOutliers(ds, OutliersConfig{K: 2, Z: 3, Ell: 2, EpsHat: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 {
		t.Fatal("no centers returned")
	}
	if res.UncoveredWeight > 3 {
		t.Errorf("uncovered weight = %d, want <= 3", res.UncoveredWeight)
	}
}
