package core

import (
	"errors"
	"fmt"

	"coresetclustering/internal/coreset"
	"coresetclustering/internal/gmm"
	"coresetclustering/internal/mapreduce"
	"coresetclustering/internal/metric"
)

// KCenterViaEngine runs the same 2-round k-center algorithm as KCenter but
// expressed literally on the key-value MapReduce engine, the way the paper's
// model describes it: round 1 maps every point to a partition key and reduces
// each partition to its coreset; round 2 maps every coreset point to a single
// key and one reducer runs GMM on the union.
//
// It exists to demonstrate (and test) that the algorithm is a genuine
// MapReduce computation — the goroutine-parallel KCenter driver is the
// faster path and the one used by the experiments.
func KCenterViaEngine(points metric.Dataset, cfg KCenterConfig) (*KCenterResult, error) {
	if err := cfg.normalize(len(points)); err != nil {
		return nil, err
	}

	// Round 1 input: (index, point) pairs; the mapper assigns partition keys.
	input := make([]mapreduce.Pair[int, metric.Point], len(points))
	for i, p := range points {
		input[i] = mapreduce.Pair[int, metric.Point]{Key: i, Value: p}
	}
	ell := cfg.Ell
	exec := mapreduce.ExecConfig{Parallelism: cfg.Parallelism, Workers: cfg.Workers}
	spec := coreset.Spec{
		Eps:        cfg.Eps,
		Size:       cfg.CoresetSize,
		RefCenters: cfg.K,
		MaxSize:    cfg.MaxCoresetSize,
		Workers:    exec.PerPartitionWorkers(ell),
		Space:      cfg.Space,
	}
	assignPartition := func(p mapreduce.Pair[int, metric.Point]) ([]mapreduce.Pair[int, metric.Point], error) {
		return []mapreduce.Pair[int, metric.Point]{{Key: p.Key % ell, Value: p.Value}}, nil
	}
	buildCoreset := func(part int, values []metric.Point) ([]mapreduce.Pair[int, metric.Point], error) {
		if len(values) == 0 {
			return nil, nil
		}
		c, err := coreset.Build(cfg.Distance, values, spec)
		if err != nil {
			return nil, err
		}
		out := make([]mapreduce.Pair[int, metric.Point], len(c.Points))
		for i, cp := range c.Points {
			out[i] = mapreduce.Pair[int, metric.Point]{Key: 0, Value: cp}
		}
		return out, nil
	}
	round1, stats1, err := mapreduce.Round(
		mapreduce.Config{Workers: cfg.Parallelism},
		input, assignPartition, buildCoreset,
	)
	if err != nil {
		return nil, fmt.Errorf("core: engine round 1: %w", err)
	}
	if len(round1) == 0 {
		return nil, errors.New("core: empty coreset union")
	}

	// Round 2: a single reducer (key 0) runs GMM on the union of coresets.
	identity := func(p mapreduce.Pair[int, metric.Point]) ([]mapreduce.Pair[int, metric.Point], error) {
		return []mapreduce.Pair[int, metric.Point]{p}, nil
	}
	finalGMM := func(_ int, values []metric.Point) ([]mapreduce.Pair[int, metric.Point], error) {
		res, err := gmm.Runner{Space: cfg.Space, Workers: cfg.Workers}.Run(values, cfg.K, 0)
		if err != nil {
			return nil, err
		}
		out := make([]mapreduce.Pair[int, metric.Point], len(res.Centers))
		for i, c := range res.Centers {
			out[i] = mapreduce.Pair[int, metric.Point]{Key: i, Value: c}
		}
		return out, nil
	}
	round2, stats2, err := mapreduce.Round(
		mapreduce.Config{Workers: cfg.Parallelism},
		round1, identity, finalGMM,
	)
	if err != nil {
		return nil, fmt.Errorf("core: engine round 2: %w", err)
	}

	centers := make(metric.Dataset, len(round2))
	for _, p := range round2 {
		centers[p.Key] = p.Value
	}
	return &KCenterResult{
		Centers:          centers,
		Radius:           metric.NewEngine(cfg.Workers).Radius(cfg.Space, points, centers),
		CoresetUnionSize: len(round1),
		LocalMemoryPeak:  maxInt(stats1.LocalMemory, stats2.LocalMemory),
	}, nil
}
