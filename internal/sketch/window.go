package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Window-sketch wire format (magic "KCWN"; all integers big-endian, floats as
// IEEE-754 bits):
//
//	offset  size  field
//	0       4     magic "KCWN"
//	4       2     version (currently 1)
//	6       1     kind (1 = k-center, 2 = k-center with outliers)
//	7       1     distance id (same registry as KCSK)
//	8       4     k
//	12      4     z
//	16      8     epsHat
//	24      4     tau (per-bucket and merged-query coreset budget)
//	28      8     maxCount (count-window bound, 0 = none)
//	36      8     maxAge (duration-window bound, 0 = none)
//	44      4     chi (per-level bucket capacity)
//	48      4     base (level-0 seal size)
//	52      8     seq (lifetime observed count)
//	60      8     lastTS (newest observed/advanced-to timestamp)
//	68      4     bucket count
//	72      ...   buckets, oldest first, each:
//	                4  level
//	                8  startSeq
//	                8  endSeq
//	                8  startTS
//	                8  endTS
//	                4  payload length
//	                .. payload: a complete KCSK sketch of the bucket's
//	                   doubling state, sharing the header's kind, distance,
//	                   k, z, epsHat and tau
//
// Validation is as strict as the KCSK codec's: DecodeWindow never panics,
// never returns a sketch EncodeWindow would refuse, and re-encoding a decoded
// window sketch reproduces the input byte for byte. On top of the per-bucket
// KCSK validation, the window layer checks the exponential-histogram
// structure itself: contiguous sequence ranges, non-decreasing timestamps,
// non-increasing levels towards the present, exact sealed-bucket sizes
// (base<<level points; only the newest bucket may be a partial level-0
// bucket), at most chi sealed buckets per level, and per-bucket processed
// counts that match the declared sequence ranges.

const (
	windowMagic        = "KCWN"
	windowVersion      = 1
	windowHeaderSize   = 72
	windowBucketHeader = 40
	// windowMaxLevel mirrors internal/window: a level-62 bucket would cover
	// 2^62 * base points.
	windowMaxLevel = 62
)

// WindowBucket is the decoded form of one bucket of a window sketch: the
// boundary metadata plus the bucket's doubling state as a nested Sketch.
type WindowBucket struct {
	// Level is the bucket's exponential-histogram size class.
	Level int
	// StartSeq and EndSeq delimit the covered stream slice [StartSeq, EndSeq).
	StartSeq, EndSeq int64
	// StartTS and EndTS are the timestamps of the oldest and newest point.
	StartTS, EndTS int64
	// Payload is the bucket's doubling-coreset state.
	Payload *Sketch
}

// WindowSketch is the decoded, in-memory form of a serialized sliding-window
// stream: the stream parameters, the window geometry, and the live buckets.
type WindowSketch struct {
	// Kind, DistID, K, Z, EpsHat and Tau have the same meaning as on Sketch.
	Kind   Kind
	DistID uint8
	K, Z   int
	EpsHat float64
	Tau    int
	// MaxCount and MaxAge are the window bounds (at least one positive).
	MaxCount, MaxAge int64
	// Chi and Base are the exponential-histogram parameters.
	Chi, Base int
	// Seq is the lifetime observed count (evicted points included).
	Seq int64
	// LastTS is the newest observed (or advanced-to) timestamp.
	LastTS int64
	// Buckets are the live buckets, oldest first.
	Buckets []WindowBucket
}

// IsWindowSketch reports whether the data begins with the window-sketch
// magic — the cheap discriminator between KCSK and KCWN blobs.
func IsWindowSketch(data []byte) bool {
	return len(data) >= len(windowMagic) && string(data[:len(windowMagic)]) == windowMagic
}

// EncodeWindow serializes a window sketch. Like Encode it refuses, with the
// same typed errors as DecodeWindow, to serialize a structurally invalid
// value.
func EncodeWindow(ws *WindowSketch) ([]byte, error) {
	if ws == nil {
		return nil, fmt.Errorf("%w: nil window sketch", ErrCorrupt)
	}
	if err := ws.validate(); err != nil {
		return nil, err
	}
	payloads := make([][]byte, len(ws.Buckets))
	size := windowHeaderSize
	for i := range ws.Buckets {
		p, err := Encode(ws.Buckets[i].Payload)
		if err != nil {
			return nil, fmt.Errorf("bucket %d: %w", i, err)
		}
		payloads[i] = p
		size += windowBucketHeader + len(p)
	}
	buf := make([]byte, size)
	copy(buf[0:4], windowMagic)
	binary.BigEndian.PutUint16(buf[4:6], windowVersion)
	buf[6] = uint8(ws.Kind)
	buf[7] = ws.DistID
	binary.BigEndian.PutUint32(buf[8:12], uint32(ws.K))
	binary.BigEndian.PutUint32(buf[12:16], uint32(ws.Z))
	binary.BigEndian.PutUint64(buf[16:24], math.Float64bits(ws.EpsHat))
	binary.BigEndian.PutUint32(buf[24:28], uint32(ws.Tau))
	binary.BigEndian.PutUint64(buf[28:36], uint64(ws.MaxCount))
	binary.BigEndian.PutUint64(buf[36:44], uint64(ws.MaxAge))
	binary.BigEndian.PutUint32(buf[44:48], uint32(ws.Chi))
	binary.BigEndian.PutUint32(buf[48:52], uint32(ws.Base))
	binary.BigEndian.PutUint64(buf[52:60], uint64(ws.Seq))
	binary.BigEndian.PutUint64(buf[60:68], uint64(ws.LastTS))
	binary.BigEndian.PutUint32(buf[68:72], uint32(len(ws.Buckets)))
	off := windowHeaderSize
	for i, b := range ws.Buckets {
		binary.BigEndian.PutUint32(buf[off:off+4], uint32(b.Level))
		binary.BigEndian.PutUint64(buf[off+4:off+12], uint64(b.StartSeq))
		binary.BigEndian.PutUint64(buf[off+12:off+20], uint64(b.EndSeq))
		binary.BigEndian.PutUint64(buf[off+20:off+28], uint64(b.StartTS))
		binary.BigEndian.PutUint64(buf[off+28:off+36], uint64(b.EndTS))
		binary.BigEndian.PutUint32(buf[off+36:off+40], uint32(len(payloads[i])))
		off += windowBucketHeader
		copy(buf[off:], payloads[i])
		off += len(payloads[i])
	}
	return buf, nil
}

// DecodeWindow parses and strictly validates a serialized window sketch.
// Malformed input of any shape yields a typed error; DecodeWindow never
// panics and allocates no more than a constant multiple of the input's size.
func DecodeWindow(data []byte) (*WindowSketch, error) {
	if len(data) < len(windowMagic) {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrTruncated, len(data), windowHeaderSize)
	}
	if !IsWindowSketch(data) {
		return nil, fmt.Errorf("%w (not a window sketch)", ErrBadMagic)
	}
	if len(data) < windowHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrTruncated, len(data), windowHeaderSize)
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != windowVersion {
		return nil, fmt.Errorf("%w: got version %d, support %d", ErrUnsupportedVersion, v, windowVersion)
	}
	ws := &WindowSketch{
		Kind:     Kind(data[6]),
		DistID:   data[7],
		EpsHat:   math.Float64frombits(binary.BigEndian.Uint64(data[16:24])),
		MaxCount: int64(binary.BigEndian.Uint64(data[28:36])),
		MaxAge:   int64(binary.BigEndian.Uint64(data[36:44])),
		Seq:      int64(binary.BigEndian.Uint64(data[52:60])),
		LastTS:   int64(binary.BigEndian.Uint64(data[60:68])),
	}
	k := binary.BigEndian.Uint32(data[8:12])
	z := binary.BigEndian.Uint32(data[12:16])
	tau := binary.BigEndian.Uint32(data[24:28])
	chi := binary.BigEndian.Uint32(data[44:48])
	base := binary.BigEndian.Uint32(data[48:52])
	if k > math.MaxInt32 || z > math.MaxInt32 || tau > math.MaxInt32 || chi > math.MaxInt32 || base > math.MaxInt32 {
		return nil, fmt.Errorf("%w: parameter out of range (k=%d z=%d tau=%d chi=%d base=%d)", ErrCorrupt, k, z, tau, chi, base)
	}
	ws.K, ws.Z, ws.Tau = int(k), int(z), int(tau)
	ws.Chi, ws.Base = int(chi), int(base)
	count := binary.BigEndian.Uint32(data[68:72])

	off := windowHeaderSize
	remaining := uint64(len(data) - off)
	if uint64(count) > remaining/windowBucketHeader {
		return nil, fmt.Errorf("%w: %d buckets need at least %d bytes, have %d", ErrTruncated, count, uint64(count)*windowBucketHeader, remaining)
	}
	ws.Buckets = make([]WindowBucket, count)
	for i := range ws.Buckets {
		if len(data)-off < windowBucketHeader {
			return nil, fmt.Errorf("%w: bucket %d header ends at %d bytes", ErrTruncated, i, len(data))
		}
		level := binary.BigEndian.Uint32(data[off : off+4])
		if level > windowMaxLevel {
			return nil, fmt.Errorf("%w: bucket %d level %d exceeds %d", ErrCorrupt, i, level, windowMaxLevel)
		}
		b := WindowBucket{
			Level:    int(level),
			StartSeq: int64(binary.BigEndian.Uint64(data[off+4 : off+12])),
			EndSeq:   int64(binary.BigEndian.Uint64(data[off+12 : off+20])),
			StartTS:  int64(binary.BigEndian.Uint64(data[off+20 : off+28])),
			EndTS:    int64(binary.BigEndian.Uint64(data[off+28 : off+36])),
		}
		plen := binary.BigEndian.Uint32(data[off+36 : off+40])
		off += windowBucketHeader
		if uint64(plen) > uint64(len(data)-off) {
			return nil, fmt.Errorf("%w: bucket %d payload of %d bytes exceeds remaining %d", ErrTruncated, i, plen, len(data)-off)
		}
		payload, err := Decode(data[off : off+int(plen)])
		if err != nil {
			return nil, fmt.Errorf("bucket %d payload: %w", i, err)
		}
		b.Payload = payload
		off += int(plen)
		ws.Buckets[i] = b
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d buckets", ErrCorrupt, len(data)-off, count)
	}
	if err := ws.validate(); err != nil {
		return nil, err
	}
	return ws, nil
}

// validate enforces every structural invariant of a window sketch; it is
// shared by EncodeWindow and DecodeWindow so the two can never drift apart.
func (ws *WindowSketch) validate() error {
	if !ws.Kind.valid() {
		return fmt.Errorf("%w: unknown kind %d", ErrCorrupt, uint8(ws.Kind))
	}
	if _, err := DistanceByID(ws.DistID); err != nil {
		return err
	}
	if ws.K < 1 {
		return fmt.Errorf("%w: k must be positive, got %d", ErrCorrupt, ws.K)
	}
	if ws.Z < 0 {
		return fmt.Errorf("%w: negative z %d", ErrCorrupt, ws.Z)
	}
	if ws.K > math.MaxInt32 || ws.Z > math.MaxInt32 || ws.Tau > math.MaxInt32 || ws.Chi > math.MaxInt32 || ws.Base > math.MaxInt32 {
		return fmt.Errorf("%w: parameter out of range (k=%d z=%d tau=%d chi=%d base=%d)", ErrCorrupt, ws.K, ws.Z, ws.Tau, ws.Chi, ws.Base)
	}
	if math.IsNaN(ws.EpsHat) || math.IsInf(ws.EpsHat, 0) || ws.EpsHat < 0 {
		return fmt.Errorf("%w: invalid epsHat %v", ErrCorrupt, ws.EpsHat)
	}
	if ws.Kind == KindKCenter && (ws.Z != 0 || ws.EpsHat != 0) {
		return fmt.Errorf("%w: k-center window sketch carries outlier parameters (z=%d epsHat=%v)", ErrCorrupt, ws.Z, ws.EpsHat)
	}
	minTau := ws.K
	if ws.Kind == KindOutliers {
		minTau = ws.K + ws.Z
	}
	if ws.Tau < minTau {
		return fmt.Errorf("%w: budget tau=%d below %d", ErrCorrupt, ws.Tau, minTau)
	}
	if ws.MaxCount < 0 || ws.MaxAge < 0 {
		return fmt.Errorf("%w: negative window bound (count=%d age=%d)", ErrCorrupt, ws.MaxCount, ws.MaxAge)
	}
	if ws.MaxCount == 0 && ws.MaxAge == 0 {
		return fmt.Errorf("%w: window sketch with no count or duration bound", ErrCorrupt)
	}
	if ws.Chi < 1 {
		return fmt.Errorf("%w: chi must be at least 1, got %d", ErrCorrupt, ws.Chi)
	}
	if ws.Base < 1 {
		return fmt.Errorf("%w: base must be at least 1, got %d", ErrCorrupt, ws.Base)
	}
	if ws.Seq < 0 {
		return fmt.Errorf("%w: negative observed count %d", ErrCorrupt, ws.Seq)
	}
	if ws.LastTS < 0 {
		return fmt.Errorf("%w: negative timestamp %d", ErrCorrupt, ws.LastTS)
	}

	var perLevel [windowMaxLevel + 1]int
	prevLevel := windowMaxLevel + 1
	var prevEndSeq, prevEndTS int64
	dim := 0
	for i, b := range ws.Buckets {
		if b.Payload == nil {
			return fmt.Errorf("%w: bucket %d has no payload", ErrCorrupt, i)
		}
		if err := b.Payload.validate(); err != nil {
			return fmt.Errorf("bucket %d payload: %w", i, err)
		}
		if b.Payload.Kind != ws.Kind || b.Payload.DistID != ws.DistID ||
			b.Payload.K != ws.K || b.Payload.Z != ws.Z || b.Payload.EpsHat != ws.EpsHat ||
			b.Payload.Tau != ws.Tau {
			return fmt.Errorf("%w: bucket %d payload parameters disagree with the window header", ErrCorrupt, i)
		}
		if b.Level < 0 || b.Level > windowMaxLevel {
			return fmt.Errorf("%w: bucket %d level %d out of range", ErrCorrupt, i, b.Level)
		}
		if b.StartSeq < 0 || b.EndSeq <= b.StartSeq {
			return fmt.Errorf("%w: bucket %d covers invalid range [%d,%d)", ErrCorrupt, i, b.StartSeq, b.EndSeq)
		}
		if i == 0 {
			prevEndSeq = b.StartSeq
		}
		if b.StartSeq != prevEndSeq {
			return fmt.Errorf("%w: bucket %d starts at seq %d, previous ended at %d", ErrCorrupt, i, b.StartSeq, prevEndSeq)
		}
		if b.StartTS < 0 || b.EndTS < b.StartTS || b.StartTS < prevEndTS {
			return fmt.Errorf("%w: bucket %d timestamps [%d,%d] out of order", ErrCorrupt, i, b.StartTS, b.EndTS)
		}
		count := b.EndSeq - b.StartSeq
		if b.Payload.Processed != count {
			return fmt.Errorf("%w: bucket %d payload summarises %d points, range covers %d", ErrCorrupt, i, b.Payload.Processed, count)
		}
		sealedSize := int64(ws.Base) << b.Level
		if sealedSize < int64(ws.Base) {
			return fmt.Errorf("%w: bucket %d size class overflows", ErrCorrupt, i)
		}
		last := i == len(ws.Buckets)-1
		if count == sealedSize {
			// Sealed bucket: obeys the per-level capacity and the
			// non-increasing level order.
			perLevel[b.Level]++
			if perLevel[b.Level] > ws.Chi {
				return fmt.Errorf("%w: more than chi=%d sealed buckets at level %d", ErrCorrupt, ws.Chi, b.Level)
			}
			if b.Level > prevLevel {
				return fmt.Errorf("%w: bucket %d at level %d follows level %d", ErrCorrupt, i, b.Level, prevLevel)
			}
			prevLevel = b.Level
		} else {
			// Only the newest bucket may be partially filled, and only at
			// level 0 below the seal size.
			if !last || b.Level != 0 || count >= sealedSize {
				return fmt.Errorf("%w: bucket %d holds %d points, level-%d buckets seal at %d", ErrCorrupt, i, count, b.Level, sealedSize)
			}
		}
		if d := b.Payload.Dim(); d != 0 {
			if dim == 0 {
				dim = d
			} else if d != dim {
				return fmt.Errorf("%w: bucket %d has dimension %d, want %d", ErrCorrupt, i, d, dim)
			}
		}
		prevEndSeq, prevEndTS = b.EndSeq, b.EndTS
	}
	if n := len(ws.Buckets); n > 0 {
		if ws.Buckets[n-1].EndSeq > ws.Seq {
			return fmt.Errorf("%w: buckets end at seq %d beyond observed %d", ErrCorrupt, ws.Buckets[n-1].EndSeq, ws.Seq)
		}
		if ws.Buckets[n-1].EndTS > ws.LastTS {
			return fmt.Errorf("%w: buckets end at timestamp %d beyond last %d", ErrCorrupt, ws.Buckets[n-1].EndTS, ws.LastTS)
		}
	}
	return nil
}
