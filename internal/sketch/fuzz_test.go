package sketch

import (
	"bytes"
	"testing"

	"coresetclustering/internal/metric"
	"coresetclustering/internal/streaming"
)

// fuzzSeedSketch builds a small valid sketch for the fuzz corpus.
func fuzzSeedSketch(points metric.Dataset, k, tau int) []byte {
	cs, err := streaming.NewCoresetStream(metric.Euclidean, k, tau)
	if err != nil {
		panic(err)
	}
	for _, p := range points {
		if err := cs.Process(p); err != nil {
			panic(err)
		}
	}
	enc, err := Encode(FromState(KindKCenter, 1, k, 0, 0, cs.Doubling().State()))
	if err != nil {
		panic(err)
	}
	return enc
}

// FuzzSketchDecode proves the codec never panics on arbitrary bytes, and that
// every accepted input round-trips byte-identically (decode is the exact
// inverse of encode on its image).
func FuzzSketchDecode(f *testing.F) {
	data := clusteredData(200, 3, 4, 41)
	valid := fuzzSeedSketch(data, 4, 24)
	empty := fuzzSeedSketch(nil, 4, 24)
	buffering := fuzzSeedSketch(data[:8], 4, 24)

	f.Add([]byte(nil))
	f.Add([]byte(magic))
	f.Add(valid)
	f.Add(empty)
	f.Add(buffering)
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-5])
	f.Add(append(append([]byte(nil), valid...), 1, 2, 3))
	corrupt := append([]byte(nil), valid...)
	corrupt[7] = 250 // unknown distance
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		reenc, err := Encode(s)
		if err != nil {
			t.Fatalf("Encode rejected a sketch Decode accepted: %v", err)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("round-trip not byte-identical: %d in, %d out", len(data), len(reenc))
		}
		if _, err := streaming.RestoreDoubling(nil, s.State()); err != nil {
			t.Fatalf("RestoreDoubling rejected a decoded sketch: %v", err)
		}
	})
}
