package sketch

import (
	"fmt"

	"coresetclustering/internal/streaming"
)

// Merge unions two or more sketches built on independent shards of a stream
// and re-runs the doubling reduction so the result is back under the shared
// coreset budget — the operational form of the paper's composable-coreset
// property. All sketches must agree on kind, distance, k, z, epsHat, budget
// and point dimensionality; anything else is ErrIncompatible.
//
// Determinism: the merge is fully sequential (it never touches the parallel
// distance engine), its result depends only on the argument order, and
// merging a single sketch returns an equivalent copy. The merged Processed
// count is the sum of the inputs', so weights keep accounting for every
// original point exactly once.
func Merge(sketches ...*Sketch) (*Sketch, error) {
	if len(sketches) == 0 {
		return nil, fmt.Errorf("%w: nothing to merge", ErrIncompatible)
	}
	base := sketches[0]
	dim := 0
	for i, s := range sketches {
		if s == nil {
			return nil, fmt.Errorf("%w: nil sketch at position %d", ErrIncompatible, i)
		}
		if err := s.validate(); err != nil {
			return nil, fmt.Errorf("sketch %d: %w", i, err)
		}
		if s.Kind != base.Kind {
			return nil, fmt.Errorf("%w: kind %s at position %d, want %s", ErrIncompatible, s.Kind, i, base.Kind)
		}
		if s.DistID != base.DistID {
			return nil, fmt.Errorf("%w: distance %s at position %d, want %s", ErrIncompatible, DistanceName(s.DistID), i, DistanceName(base.DistID))
		}
		if s.K != base.K || s.Z != base.Z || s.EpsHat != base.EpsHat {
			return nil, fmt.Errorf("%w: parameters (k=%d z=%d epsHat=%v) at position %d, want (k=%d z=%d epsHat=%v)",
				ErrIncompatible, s.K, s.Z, s.EpsHat, i, base.K, base.Z, base.EpsHat)
		}
		if s.Tau != base.Tau {
			return nil, fmt.Errorf("%w: budget tau=%d at position %d, want %d", ErrIncompatible, s.Tau, i, base.Tau)
		}
		if d := s.Dim(); d != 0 {
			if dim == 0 {
				dim = d
			} else if d != dim {
				return nil, fmt.Errorf("%w: dimension %d at position %d, want %d", ErrIncompatible, d, i, dim)
			}
		}
	}
	dist, err := DistanceByID(base.DistID)
	if err != nil {
		return nil, err
	}
	ds := make([]*streaming.Doubling, len(sketches))
	for i, s := range sketches {
		d, err := streaming.RestoreDoubling(dist, s.State())
		if err != nil {
			return nil, fmt.Errorf("sketch %d: %w: %v", i, ErrCorrupt, err)
		}
		ds[i] = d
	}
	merged, err := streaming.MergeDoublings(ds...)
	if err != nil {
		return nil, err
	}
	return FromState(base.Kind, base.DistID, base.K, base.Z, base.EpsHat, merged.State()), nil
}
