package sketch

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"coresetclustering/internal/gmm"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/streaming"
)

// clusteredData generates well-separated Gaussian blobs, the low-doubling-
// dimension regime the paper's guarantees are stated for.
func clusteredData(n, dim, blobs int, seed int64) metric.Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := make(metric.Dataset, blobs)
	for b := range centers {
		c := make(metric.Point, dim)
		for j := range c {
			c[j] = rng.Float64() * 100
		}
		centers[b] = c
	}
	ds := make(metric.Dataset, n)
	for i := range ds {
		c := centers[rng.Intn(blobs)]
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()
		}
		ds[i] = p
	}
	return ds
}

// streamSketch runs points through a CoresetStream and snapshots it.
func streamSketch(t *testing.T, points metric.Dataset, k, tau int) *Sketch {
	t.Helper()
	cs, err := streaming.NewCoresetStream(metric.Euclidean, k, tau)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if err := cs.Process(p); err != nil {
			t.Fatal(err)
		}
	}
	return FromState(KindKCenter, 1, k, 0, 0, cs.Doubling().State())
}

func TestRoundTripGolden(t *testing.T) {
	data := clusteredData(3000, 4, 8, 7)
	cases := map[string]*Sketch{
		"kcenter-initialized": streamSketch(t, data, 8, 64),
		"kcenter-buffering":   streamSketch(t, data[:10], 8, 64),
		"kcenter-empty":       streamSketch(t, nil, 8, 64),
	}
	// An outliers sketch, for kind coverage.
	co, err := streaming.NewCoresetOutliers(metric.Manhattan, 4, 10, 80, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range data {
		if err := co.Process(p); err != nil {
			t.Fatal(err)
		}
	}
	cases["outliers-initialized"] = FromState(KindOutliers, 2, 4, 10, 0.25, co.Doubling().State())

	for name, sk := range cases {
		t.Run(name, func(t *testing.T) {
			enc, err := Encode(sk)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sk, dec) {
				t.Errorf("decoded sketch differs from original:\n got %+v\nwant %+v", dec, sk)
			}
			// The golden property: encode(decode(b)) == b, byte for byte.
			enc2, err := Encode(dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Errorf("re-encoding is not byte-identical (%d vs %d bytes)", len(enc), len(enc2))
			}
		})
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid, err := Encode(streamSketch(t, clusteredData(500, 3, 4, 3), 4, 32))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}
	putF64 := func(b []byte, off int, v float64) []byte {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b[off+i] = byte(bits >> (56 - 8*i))
		}
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short-magic", []byte("KC"), ErrTruncated},
		{"bad-magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"short-header", valid[:20], ErrTruncated},
		{"truncated-payload", valid[:len(valid)-3], ErrTruncated},
		{"trailing-garbage", append(append([]byte(nil), valid...), 0xFF), ErrCorrupt},
		{"future-version", mutate(func(b []byte) []byte { b[5] = 99; return b }), ErrUnsupportedVersion},
		{"unknown-kind", mutate(func(b []byte) []byte { b[6] = 42; return b }), ErrCorrupt},
		{"unknown-distance", mutate(func(b []byte) []byte { b[7] = 200; return b }), ErrUnknownDistance},
		{"zero-k", mutate(func(b []byte) []byte { b[8], b[9], b[10], b[11] = 0, 0, 0, 0; return b }), ErrCorrupt},
		{"z-on-kcenter", mutate(func(b []byte) []byte { b[15] = 3; return b }), ErrCorrupt},
		{"nan-epshat", mutate(func(b []byte) []byte { return putF64(b, 16, math.NaN()) }), ErrCorrupt},
		{"tau-below-k", mutate(func(b []byte) []byte { b[24], b[25], b[26], b[27] = 0, 0, 0, 1; return b }), ErrCorrupt},
		{"inf-phi", mutate(func(b []byte) []byte { return putF64(b, 28, math.Inf(1)) }), ErrCorrupt},
		{"negative-phi", mutate(func(b []byte) []byte { return putF64(b, 28, -1) }), ErrCorrupt},
		{"negative-processed", mutate(func(b []byte) []byte { b[36] = 0xFF; return b }), ErrCorrupt},
		{"bad-init-flag", mutate(func(b []byte) []byte { b[44] = 2; return b }), ErrCorrupt},
		{"nan-coordinate", mutate(func(b []byte) []byte { return putF64(b, headerSize+8, math.NaN()) }), ErrCorrupt},
		{"zero-weight", mutate(func(b []byte) []byte {
			for i := 0; i < 8; i++ {
				b[headerSize+i] = 0
			}
			return b
		}), ErrCorrupt},
		{"weight-sum-mismatch", mutate(func(b []byte) []byte { b[43]++; return b }), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Decode(tc.data)
			if s != nil || err == nil {
				t.Fatalf("Decode accepted malformed input (err=%v)", err)
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("Decode error = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsDimWithoutPoints(t *testing.T) {
	enc, err := Encode(streamSketch(t, nil, 4, 32))
	if err != nil {
		t.Fatal(err)
	}
	enc[48] = 3 // claim dim=3 with count=0
	if _, err := Decode(enc); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Decode error = %v, want ErrCorrupt", err)
	}
}

func TestEncodeRejectsInvalidSketch(t *testing.T) {
	if _, err := Encode(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Encode(nil) error = %v, want ErrCorrupt", err)
	}
	bad := streamSketch(t, clusteredData(200, 2, 3, 1), 3, 16)
	bad.DistID = 99
	if _, err := Encode(bad); !errors.Is(err, ErrUnknownDistance) {
		t.Errorf("Encode with unknown distance = %v, want ErrUnknownDistance", err)
	}
}

// The wire format stores k, z and tau as uint32. Values beyond int32 range
// must be rejected up front, not silently truncated into bytes that either
// fail to decode or — worse — decode to a different k.
func TestEncodeRejectsOutOfRangeParams(t *testing.T) {
	if math.MaxInt == math.MaxInt32 {
		t.Skip("parameters cannot exceed int32 range on 32-bit platforms")
	}
	big := math.MaxInt32
	big++
	for _, tc := range []struct {
		name   string
		modify func(s *Sketch)
	}{
		{"k", func(s *Sketch) { s.K = big }},
		{"z", func(s *Sketch) { s.Kind = KindOutliers; s.Z = big; s.Tau = big }},
		{"tau", func(s *Sketch) { s.Tau = big }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := streamSketch(t, clusteredData(200, 2, 3, 1), 3, 16)
			tc.modify(s)
			if _, err := Encode(s); !errors.Is(err, ErrCorrupt) {
				t.Errorf("Encode error = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestDistanceRegistry(t *testing.T) {
	for _, name := range DistanceNames() {
		fn, id, err := DistanceByName(name)
		if err != nil {
			t.Fatal(err)
		}
		gotID, err := DistanceID(fn)
		if err != nil || gotID != id {
			t.Errorf("DistanceID(%s) = %d, %v; want %d", name, gotID, err, id)
		}
		if DistanceName(id) != name {
			t.Errorf("DistanceName(%d) = %s, want %s", id, DistanceName(id), name)
		}
		if _, err := DistanceByID(id); err != nil {
			t.Errorf("DistanceByID(%d): %v", id, err)
		}
	}
	if id, err := DistanceID(nil); err != nil || id != 1 {
		t.Errorf("DistanceID(nil) = %d, %v; want 1 (euclidean)", id, err)
	}
	custom := func(a, b metric.Point) float64 { return 0 }
	if _, err := DistanceID(custom); !errors.Is(err, ErrUnknownDistance) {
		t.Errorf("DistanceID(custom) = %v, want ErrUnknownDistance", err)
	}
	if _, err := DistanceByID(0); !errors.Is(err, ErrUnknownDistance) {
		t.Errorf("DistanceByID(0) = %v, want ErrUnknownDistance", err)
	}
	if _, _, err := DistanceByName("no-such"); !errors.Is(err, ErrUnknownDistance) {
		t.Errorf("DistanceByName = %v, want ErrUnknownDistance", err)
	}
}

func TestMergeIncompatible(t *testing.T) {
	data := clusteredData(800, 3, 4, 5)
	a := streamSketch(t, data[:400], 4, 32)
	cases := []struct {
		name   string
		modify func(s *Sketch)
	}{
		{"kind", func(s *Sketch) { s.Kind = KindOutliers }},
		{"distance", func(s *Sketch) { s.DistID = 2 }},
		{"k", func(s *Sketch) { s.K = 3 }},
		{"budget", func(s *Sketch) { s.Tau = 33 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := streamSketch(t, data[400:], 4, 32)
			tc.modify(b)
			if _, err := Merge(a, b); !errors.Is(err, ErrIncompatible) {
				t.Errorf("Merge error = %v, want ErrIncompatible", err)
			}
		})
	}
	t.Run("dimension", func(t *testing.T) {
		b := streamSketch(t, clusteredData(400, 5, 4, 6), 4, 32)
		if _, err := Merge(a, b); !errors.Is(err, ErrIncompatible) {
			t.Errorf("Merge error = %v, want ErrIncompatible", err)
		}
	})
	t.Run("empty-args", func(t *testing.T) {
		if _, err := Merge(); !errors.Is(err, ErrIncompatible) {
			t.Errorf("Merge() error = %v, want ErrIncompatible", err)
		}
	})
	t.Run("nil-sketch", func(t *testing.T) {
		if _, err := Merge(a, nil); !errors.Is(err, ErrIncompatible) {
			t.Errorf("Merge(a, nil) error = %v, want ErrIncompatible", err)
		}
	})
}

func TestMergeSingleIsIdentity(t *testing.T) {
	sk := streamSketch(t, clusteredData(1000, 3, 5, 9), 5, 40)
	merged, err := Merge(sk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sk, merged) {
		t.Errorf("Merge of a single sketch is not an identity:\n got %+v\nwant %+v", merged, sk)
	}
}

func TestMergeAccounting(t *testing.T) {
	data := clusteredData(4000, 4, 10, 11)
	shards := make([]*Sketch, 4)
	for i := range shards {
		shards[i] = streamSketch(t, data[i*1000:(i+1)*1000], 8, 48)
	}
	merged, err := Merge(shards...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Processed != int64(len(data)) {
		t.Errorf("merged.Processed = %d, want %d", merged.Processed, len(data))
	}
	if len(merged.Points) > merged.Tau {
		t.Errorf("merged coreset has %d points, budget %d", len(merged.Points), merged.Tau)
	}
	if got := merged.Points.TotalWeight(); got != int64(len(data)) {
		t.Errorf("merged weights sum to %d, want %d", got, len(data))
	}
	// The merged sketch must itself be encodable and re-mergeable.
	enc, err := Encode(merged)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc); err != nil {
		t.Fatal(err)
	}
}

func TestMergeBufferingShards(t *testing.T) {
	// Every shard is still below tau+1 points: the merge must replay the raw
	// points, matching the semantics of one stream that saw them in order.
	data := clusteredData(60, 3, 3, 13)
	a := streamSketch(t, data[:20], 4, 64)
	b := streamSketch(t, data[20:40], 4, 64)
	c := streamSketch(t, data[40:], 4, 64)
	merged, err := Merge(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	single := streamSketch(t, data, 4, 64)
	if !reflect.DeepEqual(single, merged) {
		t.Errorf("merging buffering shards does not match the single stream:\n got %+v\nwant %+v", merged, single)
	}
}

func TestMergeDeterministicByArgumentOrder(t *testing.T) {
	data := clusteredData(3000, 4, 8, 17)
	a := streamSketch(t, data[:1500], 6, 36)
	b := streamSketch(t, data[1500:], 6, 36)
	m1, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Encode(m1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Encode(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1, e2) {
		t.Error("repeated Merge with identical arguments is not byte-identical")
	}
}

// TestMergeQualityProperty is the composability property test: sketches
// built independently on shards, merged, and reduced to k centers must stay
// within the paper's (2+eps)*Gonzalez bound on the whole input.
func TestMergeQualityProperty(t *testing.T) {
	const (
		n, dim, blobs = 8000, 4, 10
		k             = 10
		shards        = 4
		tau           = 16 * k
	)
	data := clusteredData(n, dim, blobs, 23)

	parts := make([]*Sketch, shards)
	for i := range parts {
		var shard metric.Dataset
		for j := i; j < len(data); j += shards {
			shard = append(shard, data[j])
		}
		parts[i] = streamSketch(t, shard, k, tau)
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	d, err := streaming.RestoreDoubling(metric.Euclidean, merged.State())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := streaming.RestoreCoresetStream(metric.Euclidean, k, d)
	if err != nil {
		t.Fatal(err)
	}
	centers, err := cs.Result()
	if err != nil {
		t.Fatal(err)
	}
	mergedRadius := metric.Radius(metric.Euclidean, data, centers)

	base, err := gmm.Runner{Dist: metric.Euclidean}.Run(data, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Gonzalez is a 2-approximation, the merged streaming pipeline 2+eps; a
	// generous eps = 1 absorbs the sharding and budget slack.
	if bound := (2 + 1.0) * base.Radius; mergedRadius > bound {
		t.Errorf("merged radius %v exceeds (2+eps) bound %v (Gonzalez %v)", mergedRadius, bound, base.Radius)
	}
}

// TestSpaceRegistry pins the space half of the registry: every id resolves
// to a space whose Dist is the registered function, SpaceID round-trips the
// built-ins, and an adapter that merely names itself after a built-in (but
// wraps a different function) is rejected instead of serializing under the
// wrong metric.
func TestSpaceRegistry(t *testing.T) {
	for _, name := range DistanceNames() {
		sp, id, err := SpaceByName(name)
		if err != nil {
			t.Fatal(err)
		}
		back, err := SpaceByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if back.Name() != name {
			t.Errorf("SpaceByID(%d).Name() = %q, want %q", id, back.Name(), name)
		}
		gotID, err := SpaceID(sp)
		if err != nil || gotID != id {
			t.Errorf("SpaceID(%s) = (%d,%v), want (%d,nil)", name, gotID, err, id)
		}
	}
	if _, err := SpaceByID(200); !errors.Is(err, ErrUnknownDistance) {
		t.Errorf("unknown id error = %v, want ErrUnknownDistance", err)
	}
	impostor := metric.SpaceFromDistance("euclidean", func(a, b metric.Point) float64 {
		return metric.Manhattan(a, b)
	})
	if _, err := SpaceID(impostor); !errors.Is(err, ErrUnknownDistance) {
		t.Errorf("impostor space error = %v, want ErrUnknownDistance", err)
	}
}
