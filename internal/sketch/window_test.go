package sketch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"coresetclustering/internal/streaming"
)

// buildWindowSketch assembles a small, structurally valid window sketch by
// running real doubling processors over slices of a clustered stream. base
// and chi shape the bucket list; the last bucket is a partial level-0 one.
func buildWindowSketch(t testing.TB, kind Kind, k, z int, epsHat float64, tau int) *WindowSketch {
	data := clusteredData(70, 3, 4, 77)
	const base = 16
	ws := &WindowSketch{
		Kind:     kind,
		DistID:   1,
		K:        k,
		Z:        z,
		EpsHat:   epsHat,
		Tau:      tau,
		MaxCount: 64,
		Chi:      2,
		Base:     base,
		Seq:      70,
		LastTS:   90,
	}
	// Buckets: a sealed level-1 (32 points), a sealed level-0 (16), and an
	// open level-0 bucket (6 points); the oldest 16 points are "evicted".
	bounds := []struct {
		level            int
		startSeq, endSeq int64
		startTS, endTS   int64
	}{
		{1, 16, 48, 10, 40},
		{0, 48, 64, 40, 70},
		{0, 64, 70, 70, 90},
	}
	for _, b := range bounds {
		d, err := streaming.NewDoubling(nil, tau)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range data[b.startSeq:b.endSeq] {
			if err := d.Process(p); err != nil {
				t.Fatal(err)
			}
		}
		ws.Buckets = append(ws.Buckets, WindowBucket{
			Level:    b.level,
			StartSeq: b.startSeq,
			EndSeq:   b.endSeq,
			StartTS:  b.startTS,
			EndTS:    b.endTS,
			Payload:  FromState(kind, 1, k, z, epsHat, d.State()),
		})
	}
	return ws
}

func TestWindowRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		ws   *WindowSketch
	}{
		{"kcenter", buildWindowSketch(t, KindKCenter, 4, 0, 0, 24)},
		{"outliers", buildWindowSketch(t, KindOutliers, 3, 5, 0.25, 24)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			enc, err := EncodeWindow(tc.ws)
			if err != nil {
				t.Fatal(err)
			}
			if !IsWindowSketch(enc) {
				t.Error("encoded window sketch not recognised by IsWindowSketch")
			}
			dec, err := DecodeWindow(enc)
			if err != nil {
				t.Fatal(err)
			}
			re, err := EncodeWindow(dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, re) {
				t.Error("encode(decode(b)) != b")
			}
			if dec.Seq != tc.ws.Seq || dec.MaxCount != tc.ws.MaxCount || len(dec.Buckets) != len(tc.ws.Buckets) {
				t.Errorf("decoded header mismatch: %+v", dec)
			}
		})
	}
}

func TestWindowEmptyBuckets(t *testing.T) {
	// A fully evicted window (seq > 0, no buckets) is a legal state.
	ws := &WindowSketch{Kind: KindKCenter, DistID: 1, K: 3, Tau: 12, MaxAge: 50, Chi: 4, Base: 3, Seq: 400, LastTS: 900}
	enc, err := EncodeWindow(ws)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeWindow(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Buckets) != 0 || dec.Seq != 400 {
		t.Errorf("decoded: %+v", dec)
	}
}

// TestWindowDecodeRejects drives every class of malformed input through
// DecodeWindow and checks the typed error.
func TestWindowDecodeRejects(t *testing.T) {
	valid, err := EncodeWindow(buildWindowSketch(t, KindOutliers, 3, 5, 0.25, 24))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(mut func(b []byte) []byte) []byte {
		return mut(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"nil", nil, ErrTruncated},
		{"not-a-sketch", []byte("hello, definitely not a sketch"), ErrBadMagic},
		{"kcsk-magic", mutate(func(b []byte) []byte { copy(b[0:4], magic); return b }), ErrBadMagic},
		{"short-header", valid[:40], ErrTruncated},
		{"bad-version", mutate(func(b []byte) []byte { binary.BigEndian.PutUint16(b[4:6], 9); return b }), ErrUnsupportedVersion},
		{"bad-kind", mutate(func(b []byte) []byte { b[6] = 9; return b }), ErrCorrupt},
		{"bad-distance", mutate(func(b []byte) []byte { b[7] = 200; return b }), ErrUnknownDistance},
		{"zero-k", mutate(func(b []byte) []byte { binary.BigEndian.PutUint32(b[8:12], 0); return b }), ErrCorrupt},
		{"no-bound", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint64(b[28:36], 0) // maxCount = 0, maxAge already 0
			return b
		}), ErrCorrupt},
		{"zero-chi", mutate(func(b []byte) []byte { binary.BigEndian.PutUint32(b[44:48], 0); return b }), ErrCorrupt},
		{"zero-base", mutate(func(b []byte) []byte { binary.BigEndian.PutUint32(b[48:52], 0); return b }), ErrCorrupt},
		{"truncated-bucket", valid[:len(valid)-7], ErrTruncated},
		{"trailing-bytes", append(append([]byte(nil), valid...), 0xAB), ErrCorrupt},
		{"huge-bucket-count", mutate(func(b []byte) []byte { binary.BigEndian.PutUint32(b[68:72], 1<<30); return b }), ErrTruncated},
		{"bucket-level-overflow", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[windowHeaderSize:windowHeaderSize+4], 63)
			return b
		}), ErrCorrupt},
		{"seq-behind-buckets", mutate(func(b []byte) []byte { binary.BigEndian.PutUint64(b[52:60], 5); return b }), ErrCorrupt},
		{"ts-behind-buckets", mutate(func(b []byte) []byte { binary.BigEndian.PutUint64(b[60:68], 1); return b }), ErrCorrupt},
		{"corrupt-payload", mutate(func(b []byte) []byte {
			// Flip the nested KCSK magic of the first bucket payload.
			b[windowHeaderSize+windowBucketHeader] ^= 0xFF
			return b
		}), ErrBadMagic},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeWindow(tc.data)
			if err == nil {
				t.Fatal("accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestWindowValidateStructure covers the exponential-histogram structure
// checks that operate on the in-memory form.
func TestWindowValidateStructure(t *testing.T) {
	base := func() *WindowSketch { return buildWindowSketch(t, KindKCenter, 4, 0, 0, 24) }

	breakIt := []struct {
		name string
		mut  func(ws *WindowSketch)
	}{
		{"gap-in-seq", func(ws *WindowSketch) { ws.Buckets[1].StartSeq += 1 }},
		{"ts-out-of-order", func(ws *WindowSketch) { ws.Buckets[1].StartTS = ws.Buckets[0].EndTS - 5 }},
		{"level-increases", func(ws *WindowSketch) {
			// Swap levels so a sealed level-1 bucket follows a level-0 one.
			ws.Buckets[0].Level = 0
		}},
		{"partial-not-last", func(ws *WindowSketch) {
			// Shrink the middle bucket below its seal size.
			ws.Buckets[1].EndSeq -= 2
			ws.Buckets[2].StartSeq -= 2
		}},
		{"params-disagree", func(ws *WindowSketch) { ws.Buckets[0].Payload.K = 9 }},
		{"nil-payload", func(ws *WindowSketch) { ws.Buckets[0].Payload = nil }},
		{"too-many-per-level", func(ws *WindowSketch) {
			// Two sealed level-0 buckets under chi=1.
			ws.Chi = 1
			b := ws.Buckets[1] // sealed level-0, 16 points
			dup := b
			dup.StartSeq, dup.EndSeq = b.EndSeq, b.EndSeq+16
			dup.StartTS, dup.EndTS = b.EndTS, b.EndTS
			ws.Buckets = []WindowBucket{ws.Buckets[0], b, dup}
			ws.Seq = dup.EndSeq
		}},
	}
	for _, tc := range breakIt {
		t.Run(tc.name, func(t *testing.T) {
			ws := base()
			tc.mut(ws)
			if _, err := EncodeWindow(ws); err == nil {
				t.Error("EncodeWindow accepted a structurally invalid window sketch")
			}
		})
	}

	// Sanity: the unmutated sketch is valid.
	if _, err := EncodeWindow(base()); err != nil {
		t.Fatal(err)
	}
}

// FuzzWindowDecode proves the window codec never panics on arbitrary bytes
// and that every accepted input round-trips byte-identically.
func FuzzWindowDecode(f *testing.F) {
	valid, err := EncodeWindow(buildWindowSketch(f, KindKCenter, 4, 0, 0, 24))
	if err != nil {
		f.Fatal(err)
	}
	outl, err := EncodeWindow(buildWindowSketch(f, KindOutliers, 3, 5, 0.25, 24))
	if err != nil {
		f.Fatal(err)
	}
	empty, err := EncodeWindow(&WindowSketch{Kind: KindKCenter, DistID: 1, K: 3, Tau: 12, MaxCount: 9, Chi: 1, Base: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil))
	f.Add([]byte(windowMagic))
	f.Add(valid)
	f.Add(outl)
	f.Add(empty)
	f.Add(valid[:windowHeaderSize])
	f.Add(valid[:len(valid)-3])
	f.Add(append(append([]byte(nil), valid...), 7, 7))

	f.Fuzz(func(t *testing.T, data []byte) {
		ws, err := DecodeWindow(data)
		if err != nil {
			return
		}
		re, err := EncodeWindow(ws)
		if err != nil {
			t.Fatalf("EncodeWindow rejected a sketch DecodeWindow accepted: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round-trip not byte-identical: %d in, %d out", len(data), len(re))
		}
		for i, b := range ws.Buckets {
			if _, err := streaming.RestoreDoubling(nil, b.Payload.State()); err != nil {
				t.Fatalf("RestoreDoubling rejected decoded bucket %d: %v", i, err)
			}
		}
	})
}
