package sketch

import (
	"testing"

	"coresetclustering/internal/metric"
	"coresetclustering/internal/streaming"
)

// benchSketch builds a realistic initialized sketch: tau weighted centers of
// the given dimensionality from a clustered stream.
func benchSketch(b *testing.B, n, dim, k, tau int, seed int64) *Sketch {
	b.Helper()
	cs, err := streaming.NewCoresetStream(metric.Euclidean, k, tau)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range clusteredBenchData(n, dim, seed) {
		if err := cs.Process(p); err != nil {
			b.Fatal(err)
		}
	}
	return FromState(KindKCenter, 1, k, 0, 0, cs.Doubling().State())
}

func clusteredBenchData(n, dim int, seed int64) metric.Dataset {
	// Deterministic LCG so benchmarks need no rand import bookkeeping.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	ds := make(metric.Dataset, n)
	for i := range ds {
		p := make(metric.Point, dim)
		blob := float64(i%10) * 50
		for j := range p {
			p[j] = blob + next()
		}
		ds[i] = p
	}
	return ds
}

func BenchmarkSketchEncode(b *testing.B) {
	sk := benchSketch(b, 20000, 16, 50, 400, 1)
	enc, err := Encode(sk)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(sk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSketchDecode(b *testing.B) {
	enc, err := Encode(benchSketch(b, 20000, 16, 50, 400, 2))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSketchMerge(b *testing.B) {
	shards := make([]*Sketch, 4)
	for i := range shards {
		shards[i] = benchSketch(b, 10000, 16, 50, 400, int64(i+10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Merge(shards...); err != nil {
			b.Fatal(err)
		}
	}
}
