package sketch

import (
	"encoding/binary"
	"fmt"
	"math"

	"coresetclustering/internal/metric"
)

// Wire format (all integers big-endian, floats as IEEE-754 bits):
//
//	offset  size  field
//	0       4     magic "KCSK"
//	4       2     version (currently 1)
//	6       1     kind (1 = k-center, 2 = k-center with outliers)
//	7       1     distance id (see the registry in sketch.go)
//	8       4     k
//	12      4     z
//	16      8     epsHat
//	24      4     tau (coreset budget)
//	28      8     phi
//	36      8     processed (int64, non-negative)
//	44      1     initialized (0 or 1)
//	45      4     dim (coordinates per point; 0 iff count is 0)
//	49      4     count (number of weighted points)
//	53      ...   count entries of: weight (int64, positive), dim coordinates
//
// The payload length must match the header exactly: shorter data is
// ErrTruncated, longer data is ErrCorrupt. Every field is validated on
// decode, so Decode never panics and never returns a sketch that Encode
// would refuse — encode(decode(b)) == b for every accepted b.

const (
	magic      = "KCSK"
	version    = 1
	headerSize = 53
)

// Encode serializes the sketch. It refuses (with the same typed errors as
// Decode) to serialize a structurally invalid sketch, so corrupt state can
// never be laundered into valid-looking bytes.
func Encode(s *Sketch) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("%w: nil sketch", ErrCorrupt)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	dim := s.Dim()
	entry := 8 + 8*dim
	buf := make([]byte, headerSize+len(s.Points)*entry)
	copy(buf[0:4], magic)
	binary.BigEndian.PutUint16(buf[4:6], version)
	buf[6] = uint8(s.Kind)
	buf[7] = s.DistID
	binary.BigEndian.PutUint32(buf[8:12], uint32(s.K))
	binary.BigEndian.PutUint32(buf[12:16], uint32(s.Z))
	binary.BigEndian.PutUint64(buf[16:24], math.Float64bits(s.EpsHat))
	binary.BigEndian.PutUint32(buf[24:28], uint32(s.Tau))
	binary.BigEndian.PutUint64(buf[28:36], math.Float64bits(s.Phi))
	binary.BigEndian.PutUint64(buf[36:44], uint64(s.Processed))
	if s.Initialized {
		buf[44] = 1
	}
	binary.BigEndian.PutUint32(buf[45:49], uint32(dim))
	binary.BigEndian.PutUint32(buf[49:53], uint32(len(s.Points)))
	off := headerSize
	for _, wp := range s.Points {
		binary.BigEndian.PutUint64(buf[off:off+8], uint64(wp.W))
		off += 8
		for _, c := range wp.P {
			binary.BigEndian.PutUint64(buf[off:off+8], math.Float64bits(c))
			off += 8
		}
	}
	return buf, nil
}

// Decode parses and strictly validates a serialized sketch. Malformed input
// of any shape — truncated, wrong magic, unknown version/kind/distance,
// non-finite values, weight or budget inconsistencies, trailing bytes —
// yields a typed error; Decode never panics and allocates no more than the
// input's own size.
func Decode(data []byte) (*Sketch, error) {
	if len(data) < len(magic) {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrTruncated, len(data), headerSize)
	}
	if string(data[0:4]) != magic {
		return nil, ErrBadMagic
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrTruncated, len(data), headerSize)
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != version {
		return nil, fmt.Errorf("%w: got version %d, support %d", ErrUnsupportedVersion, v, version)
	}
	s := &Sketch{
		Kind:   Kind(data[6]),
		DistID: data[7],
		EpsHat: math.Float64frombits(binary.BigEndian.Uint64(data[16:24])),
		Phi:    math.Float64frombits(binary.BigEndian.Uint64(data[28:36])),
	}
	k := binary.BigEndian.Uint32(data[8:12])
	z := binary.BigEndian.Uint32(data[12:16])
	tau := binary.BigEndian.Uint32(data[24:28])
	if k > math.MaxInt32 || z > math.MaxInt32 || tau > math.MaxInt32 {
		return nil, fmt.Errorf("%w: parameter out of range (k=%d z=%d tau=%d)", ErrCorrupt, k, z, tau)
	}
	s.K, s.Z, s.Tau = int(k), int(z), int(tau)
	s.Processed = int64(binary.BigEndian.Uint64(data[36:44]))
	switch data[44] {
	case 0:
	case 1:
		s.Initialized = true
	default:
		return nil, fmt.Errorf("%w: initialized flag is %d", ErrCorrupt, data[44])
	}
	dim := binary.BigEndian.Uint32(data[45:49])
	count := binary.BigEndian.Uint32(data[49:53])
	if (count == 0) != (dim == 0) {
		// dim must be 0 exactly when there are no points, so that re-encoding
		// a decoded sketch reproduces the input byte for byte.
		return nil, fmt.Errorf("%w: dim=%d with count=%d", ErrCorrupt, dim, count)
	}

	// Fix the payload length before allocating anything: a hostile header
	// cannot make Decode allocate beyond the input's own size.
	remaining := uint64(len(data) - headerSize)
	entry := 8 + 8*uint64(dim)
	if uint64(count) > remaining/entry {
		return nil, fmt.Errorf("%w: %d points of dimension %d need %d bytes, have %d", ErrTruncated, count, dim, uint64(count)*entry, remaining)
	}
	if need := uint64(count) * entry; need != remaining {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d points", ErrCorrupt, remaining-need, count)
	}

	s.Points = make(metric.WeightedSet, count)
	off := headerSize
	for i := range s.Points {
		w := int64(binary.BigEndian.Uint64(data[off : off+8]))
		off += 8
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = math.Float64frombits(binary.BigEndian.Uint64(data[off : off+8]))
			off += 8
		}
		s.Points[i] = metric.WeightedPoint{P: p, W: w}
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate enforces every structural invariant of a sketch. It is shared by
// Encode, Decode and Merge so the three can never drift apart on what a
// valid sketch is.
func (s *Sketch) validate() error {
	if !s.Kind.valid() {
		return fmt.Errorf("%w: unknown kind %d", ErrCorrupt, uint8(s.Kind))
	}
	if _, err := DistanceByID(s.DistID); err != nil {
		return err
	}
	if s.K < 1 {
		return fmt.Errorf("%w: k must be positive, got %d", ErrCorrupt, s.K)
	}
	if s.Z < 0 {
		return fmt.Errorf("%w: negative z %d", ErrCorrupt, s.Z)
	}
	// The wire format stores k, z and tau as uint32; anything above int32
	// range would silently truncate on encode (and can never decode back).
	if s.K > math.MaxInt32 || s.Z > math.MaxInt32 || s.Tau > math.MaxInt32 {
		return fmt.Errorf("%w: parameter out of range (k=%d z=%d tau=%d)", ErrCorrupt, s.K, s.Z, s.Tau)
	}
	if math.IsNaN(s.EpsHat) || math.IsInf(s.EpsHat, 0) || s.EpsHat < 0 {
		return fmt.Errorf("%w: invalid epsHat %v", ErrCorrupt, s.EpsHat)
	}
	if s.Kind == KindKCenter && (s.Z != 0 || s.EpsHat != 0) {
		return fmt.Errorf("%w: k-center sketch carries outlier parameters (z=%d epsHat=%v)", ErrCorrupt, s.Z, s.EpsHat)
	}
	minTau := s.K
	if s.Kind == KindOutliers {
		minTau = s.K + s.Z
	}
	if s.Tau < minTau {
		return fmt.Errorf("%w: budget tau=%d below %d", ErrCorrupt, s.Tau, minTau)
	}
	if math.IsNaN(s.Phi) || math.IsInf(s.Phi, 0) || s.Phi < 0 {
		return fmt.Errorf("%w: invalid phi %v", ErrCorrupt, s.Phi)
	}
	if !s.Initialized && s.Phi != 0 {
		return fmt.Errorf("%w: uninitialised sketch with phi %v", ErrCorrupt, s.Phi)
	}
	if s.Processed < 0 {
		return fmt.Errorf("%w: negative processed count %d", ErrCorrupt, s.Processed)
	}
	if len(s.Points) > s.Tau {
		return fmt.Errorf("%w: %d points exceed budget tau=%d", ErrCorrupt, len(s.Points), s.Tau)
	}
	if s.Initialized && len(s.Points) == 0 {
		return fmt.Errorf("%w: initialised sketch with no points", ErrCorrupt)
	}
	dim := -1
	var total int64
	for i, wp := range s.Points {
		if wp.P.Dim() == 0 {
			return fmt.Errorf("%w: point %d has zero dimensions", ErrCorrupt, i)
		}
		if dim < 0 {
			dim = wp.P.Dim()
		} else if wp.P.Dim() != dim {
			return fmt.Errorf("%w: point %d has dimension %d, want %d", ErrCorrupt, i, wp.P.Dim(), dim)
		}
		for j, c := range wp.P {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("%w: point %d coordinate %d is %v", ErrCorrupt, i, j, c)
			}
		}
		if wp.W <= 0 {
			return fmt.Errorf("%w: point %d has non-positive weight %d", ErrCorrupt, i, wp.W)
		}
		if !s.Initialized && wp.W != 1 {
			return fmt.Errorf("%w: uninitialised sketch carries weight %d", ErrCorrupt, wp.W)
		}
		total += wp.W
		if total < 0 {
			return fmt.Errorf("%w: weight sum overflows", ErrCorrupt)
		}
	}
	if total != s.Processed {
		return fmt.Errorf("%w: weights sum to %d, processed %d", ErrCorrupt, total, s.Processed)
	}
	return nil
}
