// Package sketch makes the coreset state of the streaming algorithms a
// first-class, durable, mergeable value. A Sketch captures the complete
// doubling-algorithm state of a CoresetStream or CoresetOutliers — budget,
// lower bound phi, processed count, and the weighted coreset points — plus
// the query-time parameters (k, z, epsHat) and the identity of the distance
// function, so that a sketch is fully self-describing.
//
// Sketches serve the paper's composability property operationally: shards of
// a stream can be summarised independently, snapshotted into compact byte
// strings, shipped across machines, and merged; the merged sketch is still an
// arbitrarily good summary of the union of the shards (the merge re-runs the
// doubling reduction under the original budget). Encode/Decode implement a
// versioned, strictly validated binary codec; Merge implements the union.
package sketch

import (
	"errors"
	"fmt"
	"reflect"

	"coresetclustering/internal/metric"
	"coresetclustering/internal/streaming"
)

// Typed decode/merge errors. Decode never panics: every malformed input maps
// to one of these (possibly wrapped with positional detail).
var (
	// ErrBadMagic means the data does not start with the sketch magic bytes —
	// it is not a sketch at all.
	ErrBadMagic = errors.New("sketch: bad magic (not a sketch)")
	// ErrUnsupportedVersion means the sketch was written by an incompatible
	// (newer) codec version.
	ErrUnsupportedVersion = errors.New("sketch: unsupported codec version")
	// ErrTruncated means the data ends before the declared payload does.
	ErrTruncated = errors.New("sketch: truncated data")
	// ErrCorrupt means a structurally invalid field: unknown kind, NaN/Inf
	// coordinate or phi, non-positive weight, weight/processed mismatch,
	// budget violation, or trailing garbage.
	ErrCorrupt = errors.New("sketch: corrupt data")
	// ErrUnknownDistance means the distance identifier is not one of the
	// registered built-in distances (or, on encode, the stream uses a custom
	// distance function that cannot be serialized).
	ErrUnknownDistance = errors.New("sketch: unknown distance")
	// ErrIncompatible means two sketches cannot be merged or a sketch cannot
	// be restored as the requested stream kind: different kind, distance,
	// k/z/budget parameters, or point dimensionality.
	ErrIncompatible = errors.New("sketch: incompatible sketches")
)

// Kind discriminates the two stream flavours a sketch can capture.
type Kind uint8

const (
	// KindKCenter is a plain k-center stream (CoresetStream).
	KindKCenter Kind = 1
	// KindOutliers is a k-center-with-z-outliers stream (CoresetOutliers).
	KindOutliers Kind = 2
)

func (k Kind) valid() bool { return k == KindKCenter || k == KindOutliers }

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindKCenter:
		return "k-center"
	case KindOutliers:
		return "k-center-with-outliers"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Sketch is the decoded, in-memory form of a serialized coreset sketch.
type Sketch struct {
	// Kind says whether this is a plain or an outlier-aware stream.
	Kind Kind
	// DistID identifies the distance function (see the registry below).
	DistID uint8
	// K is the number of centers extracted at query time.
	K int
	// Z is the number of outliers tolerated (0 for KindKCenter).
	Z int
	// EpsHat is the slack of the outlier radius search (0 for KindKCenter).
	EpsHat float64
	// Tau is the coreset budget of the doubling algorithm.
	Tau int
	// Phi is the doubling algorithm's lower bound on r*_tau.
	Phi float64
	// Processed is the number of stream points summarised by the sketch.
	Processed int64
	// Initialized reports whether the doubling algorithm has left its
	// buffering phase; when false, Points are the raw buffered prefix with
	// unit weights.
	Initialized bool
	// Points is the weighted coreset (or unit-weight buffer).
	Points metric.WeightedSet
}

// Dim returns the dimensionality of the sketch's points (0 if it is empty).
func (s *Sketch) Dim() int {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[0].P.Dim()
}

// State converts the sketch's doubling fields into a streaming.DoublingState.
func (s *Sketch) State() streaming.DoublingState {
	return streaming.DoublingState{
		Tau:         s.Tau,
		Phi:         s.Phi,
		Processed:   s.Processed,
		Initialized: s.Initialized,
		Points:      s.Points,
	}
}

// FromState builds a sketch from a doubling state plus the stream's
// query-time parameters.
func FromState(kind Kind, distID uint8, k, z int, epsHat float64, st streaming.DoublingState) *Sketch {
	return &Sketch{
		Kind:        kind,
		DistID:      distID,
		K:           k,
		Z:           z,
		EpsHat:      epsHat,
		Tau:         st.Tau,
		Phi:         st.Phi,
		Processed:   st.Processed,
		Initialized: st.Initialized,
		Points:      st.Points,
	}
}

// Distance returns the sketch's distance function.
func (s *Sketch) Distance() (metric.Distance, error) { return DistanceByID(s.DistID) }

// Space resolves the sketch's metric space: decoding a sketch yields the
// full batched-kernel substrate, not just a scalar distance function, so
// restored streams run on the native hot paths.
func (s *Sketch) Space() (metric.Space, error) { return SpaceByID(s.DistID) }

// builtinDistance is one entry of the distance registry: a wire identifier,
// the space's name, the scalar distance function, and the metric space built
// on it. Only the built-in spaces are serializable: a sketch must be
// reconstructible on a machine that never saw the originating process, so
// closures cannot be carried.
type builtinDistance struct {
	id    uint8
	name  string
	fn    metric.Distance
	space metric.Space
}

// The registry. Identifiers are part of the wire format: never renumber,
// only append. Every entry's space satisfies space.Dist() == fn, so the two
// resolution paths (by function identity, by space name) always agree.
var builtins = []builtinDistance{
	{1, "euclidean", metric.Euclidean, metric.EuclideanSpace},
	{2, "manhattan", metric.Manhattan, metric.ManhattanSpace},
	{3, "chebyshev", metric.Chebyshev, metric.ChebyshevSpace},
	{4, "angular", metric.Angular, metric.AngularSpace},
	{5, "cosine", metric.Cosine, metric.CosineSpace},
}

// DistanceID maps a distance function to its wire identifier. A nil function
// is treated as Euclidean (the library default). Custom functions return
// ErrUnknownDistance: they cannot be serialized.
func DistanceID(d metric.Distance) (uint8, error) {
	if d == nil {
		return 1, nil
	}
	ptr := reflect.ValueOf(d).Pointer()
	for _, b := range builtins {
		if reflect.ValueOf(b.fn).Pointer() == ptr {
			return b.id, nil
		}
	}
	return 0, fmt.Errorf("%w: custom distance functions cannot be serialized; use a built-in distance", ErrUnknownDistance)
}

// DistanceByID maps a wire identifier back to the distance function.
func DistanceByID(id uint8) (metric.Distance, error) {
	for _, b := range builtins {
		if b.id == id {
			return b.fn, nil
		}
	}
	return nil, fmt.Errorf("%w: id %d", ErrUnknownDistance, id)
}

// DistanceName returns the registered name of a wire identifier ("unknown"
// for unregistered ids).
func DistanceName(id uint8) string {
	for _, b := range builtins {
		if b.id == id {
			return b.name
		}
	}
	return "unknown"
}

// DistanceByName maps a registered name (e.g. "euclidean") to its function
// and wire identifier; it is used by CLIs and the daemon to parse -distance
// flags.
func DistanceByName(name string) (metric.Distance, uint8, error) {
	for _, b := range builtins {
		if b.name == name {
			return b.fn, b.id, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: name %q", ErrUnknownDistance, name)
}

// DistanceNames lists the registered distance names in id order.
func DistanceNames() []string {
	out := make([]string, len(builtins))
	for i, b := range builtins {
		out[i] = b.name
	}
	return out
}

// SpaceID maps a metric space to its wire identifier. A nil space is treated
// as Euclidean (the library default). Identification goes through the
// space's scalar distance function — the same identity check DistanceID
// applies — so an adapter that merely NAMES itself after a built-in but
// wraps a different function still returns ErrUnknownDistance instead of
// serializing under the wrong metric.
func SpaceID(sp metric.Space) (uint8, error) {
	if sp == nil {
		return 1, nil
	}
	return DistanceID(sp.Dist())
}

// SpaceByID maps a wire identifier to the registered metric space.
func SpaceByID(id uint8) (metric.Space, error) {
	for _, b := range builtins {
		if b.id == id {
			return b.space, nil
		}
	}
	return nil, fmt.Errorf("%w: id %d", ErrUnknownDistance, id)
}

// SpaceByName maps a registered name (e.g. "euclidean") to its metric space
// and wire identifier; CLIs and the daemon use it to parse -space flags.
func SpaceByName(name string) (metric.Space, uint8, error) {
	for _, b := range builtins {
		if b.name == name {
			return b.space, b.id, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: name %q", ErrUnknownDistance, name)
}
