// Package window implements sliding-window k-center clustering (with and
// without outliers) on top of the streaming doubling coresets.
//
// The paper's streaming algorithms are insertion-only: once observed, a point
// influences the coreset forever. This package restricts the summary to the
// most recent part of the stream — the last W points (count window), the last
// D time units (duration window), or both — by decomposing the stream into a
// ring of timestamped buckets, each holding an independent doubling-coreset
// state (streaming.Doubling) over a contiguous slice of the stream.
//
// Bucket maintenance follows the exponential-histogram discipline of
// Datar, Gionis, Indyk and Motwani (2002): level-0 buckets are sealed every
// Base points, and whenever more than Chi buckets of one level exist, the two
// oldest are coalesced into a bucket of the next level. Bucket sizes
// therefore grow geometrically towards the past, the live bucket count is at
// most Chi per level — O(Chi * log(W / Base)) overall — and, because every
// bucket retains at most Tau points, working memory is O(Tau * log W).
//
// Coalescing unions the two buckets' weighted coresets and, only when the
// union exceeds the budget, reduces it with a weighted farthest-point (GMM)
// selection, folding each dropped point's weight into its nearest survivor —
// the paper's composable-coreset reduction. The coverage slack this costs is
// ADDITIVE: the merged bucket's phi is the inputs' maximum plus the measured
// GMM selection radius (divided by 8, so the "every summarised point within
// 8*phi of its proxy" reading of invariant (c) is preserved). The doubling
// algorithm's own merge rule — double phi, collapse centers closer than
// 4*phi — must NOT be used here: under repeated hierarchical merging its phi
// grows by 2x per level, i.e. 2^levels overall, until 4*phi swallows the
// real cluster separation and the whole window collapses into one center.
// (MergeDoublings keeps that behaviour for its original one-shot sharding
// use; this package only reuses its exact raw-replay path for buckets that
// are still buffering.) Sealed buckets never process further points, so they
// do not need the resumption invariants (b)/(e) — they are pure weighted
// coresets with an honest coverage radius.
//
// Eviction drops a bucket exactly when its newest element has left the
// window, so the live buckets always cover a superset of the requested window
// that exceeds it by at most the span of the oldest live bucket (the standard
// exponential-histogram granularity). Queries take the plain weighted UNION
// of the live bucket coresets — O(Tau * log W) points, the working set the
// memory bound already pays for — and run extraction (GMM, or the weighted
// outlier search) directly on it, exactly the paper's round-2-on-the-
// coreset-union pattern; no further lossy reduction is applied on the query
// path.
//
// Determinism contract: all bucket transitions are driven only by observed
// counts and explicitly supplied timestamps — the package never reads a
// clock — the coalescing and query-time merges are fully sequential with a
// fixed argument order, and the extraction step runs on the worker-count
// invariant distance engine. Results are therefore bit-identical across
// worker counts and across a snapshot -> restore round-trip.
package window

import (
	"errors"
	"fmt"

	"coresetclustering/internal/gmm"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/streaming"
)

// Typed errors reported by the window subsystem.
var (
	// ErrTimestampOrder means a point (or Advance call) carried a timestamp
	// smaller than an already observed one. Timestamps must be non-decreasing:
	// eviction is driven only by observed timestamps, never by a clock, so
	// out-of-order time would silently corrupt the window semantics.
	ErrTimestampOrder = errors.New("window: timestamps must be non-decreasing")
	// ErrNegativeTimestamp means a timestamp was negative; timestamps are
	// non-negative ticks in caller-defined units.
	ErrNegativeTimestamp = errors.New("window: timestamps must be non-negative")
	// ErrEmptyWindow is returned by query methods when every bucket has been
	// evicted (or nothing was ever observed): there are no live points to
	// summarise.
	ErrEmptyWindow = errors.New("window: no live points in the window")
)

// DefaultChi is the default per-level bucket capacity: the window may exceed
// its nominal bound by at most the span of the oldest live bucket, roughly a
// 1/Chi fraction of the window.
const DefaultChi = 4

// maxLevel bounds bucket levels; a level-62 bucket would summarise 2^62*Base
// points, far beyond any real stream, so hitting the bound is a logic error.
const maxLevel = 62

// Config parameterises a Window.
type Config struct {
	// Space is the metric space (nil defaults to Euclidean).
	Space metric.Space
	// Tau is the per-bucket (and merged-query) coreset budget, at least 1.
	Tau int
	// MaxCount keeps the last MaxCount points (0 = no count bound).
	MaxCount int64
	// MaxAge keeps points whose timestamp ts satisfies ts > now-MaxAge (the
	// half-open window (now-MaxAge, now], where now is the newest observed
	// or advanced-to timestamp), in the caller's timestamp units (0 = no
	// time bound). At least one of MaxCount and MaxAge must be positive.
	MaxAge int64
	// Chi is the per-level bucket capacity (default DefaultChi). Larger Chi
	// tracks the window boundary more tightly at the cost of more buckets.
	Chi int
	// Base is the number of points a level-0 bucket accumulates before it is
	// sealed (default max(1, Tau/4)). Larger bases amortise coalescing work
	// over more points.
	Base int
}

// bucket is one node of the ring: an independent doubling-coreset state over
// the contiguous stream slice [startSeq, endSeq), observed during
// [startTS, endTS].
type bucket struct {
	proc  *streaming.Doubling
	level int   // sealed size class: a sealed level-L bucket holds Base<<L points
	count int64 // points summarised (== proc.Processed())

	startSeq, endSeq int64 // [startSeq, endSeq) stream sequence numbers
	startTS, endTS   int64 // timestamps of the oldest and newest point
}

// Window maintains a sliding-window coreset over a stream of timestamped
// points. It is not safe for concurrent use; callers serialise access (the
// daemon wraps every stream in a mutex).
type Window struct {
	space    metric.Space
	tau      int
	chi      int
	base     int
	maxCount int64
	maxAge   int64

	sealed []*bucket // oldest first; levels non-increasing
	open   *bucket   // level-0 bucket still accumulating (nil when none)

	seq    int64 // total points observed over the window's lifetime
	lastTS int64 // newest observed (or advanced-to) timestamp
	dim    int   // fixed by the first point (0 = not yet known)

	evictedBuckets int64 // lifetime count of buckets dropped by evict
	evictedPoints  int64 // lifetime count of points inside those buckets

	union metric.WeightedSet // memoised query-time coreset union; nil when stale
}

// New validates the configuration and returns an empty Window.
func New(cfg Config) (*Window, error) {
	if cfg.Tau < 1 {
		return nil, fmt.Errorf("window: tau must be at least 1, got %d", cfg.Tau)
	}
	if cfg.MaxCount < 0 || cfg.MaxAge < 0 {
		return nil, fmt.Errorf("window: negative window bound (count=%d age=%d)", cfg.MaxCount, cfg.MaxAge)
	}
	if cfg.MaxCount == 0 && cfg.MaxAge == 0 {
		return nil, errors.New("window: either a count or a duration bound is required")
	}
	chi := cfg.Chi
	if chi == 0 {
		chi = DefaultChi
	}
	if chi < 1 {
		return nil, fmt.Errorf("window: chi must be at least 1, got %d", chi)
	}
	base := cfg.Base
	if base == 0 {
		base = cfg.Tau / 4
		if base < 1 {
			base = 1
		}
	}
	if base < 1 {
		return nil, fmt.Errorf("window: base must be at least 1, got %d", base)
	}
	sp := cfg.Space
	if sp == nil {
		sp = metric.EuclideanSpace
	}
	return &Window{
		space:    sp,
		tau:      cfg.Tau,
		chi:      chi,
		base:     base,
		maxCount: cfg.MaxCount,
		maxAge:   cfg.MaxAge,
	}, nil
}

// Observe consumes the next point of the stream at the given timestamp.
// Timestamps are non-negative ticks in caller-defined units and must be
// non-decreasing across calls; for purely count-based windows they may all be
// zero. The point is validated (finite coordinates, consistent
// dimensionality) before any state changes, so a rejected point never
// perturbs the window.
func (w *Window) Observe(p metric.Point, ts int64) error {
	if p == nil {
		return errors.New("window: nil point")
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("window: %w", err)
	}
	if p.Dim() == 0 {
		return errors.New("window: zero-dimensional point")
	}
	if w.dim != 0 && p.Dim() != w.dim {
		return fmt.Errorf("window: point has dimension %d, want %d: %w", p.Dim(), w.dim, metric.ErrDimensionMismatch)
	}
	if ts < 0 {
		return fmt.Errorf("%w: got %d", ErrNegativeTimestamp, ts)
	}
	if ts < w.lastTS {
		return fmt.Errorf("%w: got %d after %d", ErrTimestampOrder, ts, w.lastTS)
	}
	if w.open == nil {
		proc, err := streaming.NewDoublingIn(w.space, w.tau)
		if err != nil {
			return err
		}
		w.open = &bucket{proc: proc, startSeq: w.seq, startTS: ts}
	}
	if err := w.open.proc.Process(p); err != nil {
		return err
	}
	w.dim = p.Dim()
	w.seq++
	w.lastTS = ts
	w.open.count++
	w.open.endSeq = w.seq
	w.open.endTS = ts
	w.union = nil
	if w.open.count >= int64(w.base) {
		w.sealed = append(w.sealed, w.open)
		w.open = nil
		if err := w.coalesce(); err != nil {
			return err
		}
	}
	w.evict()
	return nil
}

// Advance moves the window's notion of "now" forward to ts without observing
// a point, evicting buckets that fall out of a duration window. It is how a
// caller expires stale data during a lull in the stream; like Observe, it
// never reads a clock. Advancing to a timestamp earlier than the newest
// observed one is ErrTimestampOrder.
func (w *Window) Advance(ts int64) error {
	if ts < 0 {
		return fmt.Errorf("%w: got %d", ErrNegativeTimestamp, ts)
	}
	if ts < w.lastTS {
		return fmt.Errorf("%w: got %d after %d", ErrTimestampOrder, ts, w.lastTS)
	}
	w.lastTS = ts
	before := w.LiveBuckets()
	w.evict()
	if w.LiveBuckets() != before {
		w.union = nil
	}
	return nil
}

// Clone returns a copy-on-write copy of the window: the copy and the original
// answer queries and keep observing points independently. Sealed buckets are
// IMMUTABLE once sealed — Observe only mutates the open bucket, coalesce
// builds new buckets instead of editing old ones, and evict merely drops
// references — so the clone shares the sealed buckets and deep-copies only
// the open one. The cost is O(chi * log W) pointer copies plus at most one
// small (level-0, < Base points) doubling clone, which is what makes
// per-mutation view publication affordable for the daemon.
func (w *Window) Clone() *Window {
	cp := *w
	cp.sealed = append([]*bucket(nil), w.sealed...)
	if w.open != nil {
		ob := *w.open
		ob.proc = w.open.proc.Clone()
		cp.open = &ob
	}
	// The memoised union is rebuilt on the clone's first query; sharing it
	// would let one side's append grow into the other's backing array.
	cp.union = nil
	return &cp
}

// coalesce re-establishes the exponential-histogram invariant: at most chi
// sealed buckets per level. Whenever a level overflows, the two oldest
// buckets of that level (adjacent, because levels are non-increasing towards
// the present) merge into one bucket of the next level.
func (w *Window) coalesce() error {
	for {
		i := w.overfullOldest()
		if i < 0 {
			return nil
		}
		a, b := w.sealed[i], w.sealed[i+1]
		if b.level != a.level {
			return fmt.Errorf("window: internal error: level-%d bucket adjacent to level-%d during coalesce", a.level, b.level)
		}
		if a.level >= maxLevel {
			return fmt.Errorf("window: bucket level %d exceeds maximum", a.level)
		}
		proc, err := w.mergeBucketStates(a.proc, b.proc)
		if err != nil {
			return err
		}
		w.sealed[i] = &bucket{
			proc:     proc,
			level:    a.level + 1,
			count:    a.count + b.count,
			startSeq: a.startSeq,
			endSeq:   b.endSeq,
			startTS:  a.startTS,
			endTS:    b.endTS,
		}
		w.sealed = append(w.sealed[:i+1], w.sealed[i+2:]...)
	}
}

// mergeBucketStates combines two sealed buckets' doubling states into one
// state under the budget, with ADDITIVE coverage slack (see the package
// comment for why the doubling merge rule must not be used here).
//
//   - Both still buffering: replay the raw points — exact, zero loss (this is
//     MergeDoublings' own buffering path).
//   - Union fits the budget: keep every weighted point (exact duplicates
//     folded); phi is the inputs' maximum, so coverage is unchanged.
//   - Union exceeds the budget: select tau survivors with the deterministic
//     farthest-point greedy and fold each dropped point's weight into its
//     nearest survivor (lowest index on ties). Every dropped point lies
//     within the measured selection radius r of a survivor, so the merged
//     phi is phiSrc + r/8: invariant (c) — every summarised point within
//     8*phi of its proxy — holds at 8*phiSrc + r <= 8*phi_new.
//
// The merge is fully sequential and depends only on the argument order.
func (w *Window) mergeBucketStates(a, b *streaming.Doubling) (*streaming.Doubling, error) {
	sa, sb := a.State(), b.State()
	if !sa.Initialized && !sb.Initialized {
		return streaming.MergeDoublings(a, b)
	}
	phiSrc := sa.Phi
	if sb.Phi > phiSrc {
		phiSrc = sb.Phi
	}
	union := foldDuplicates(append(a.Coreset(), b.Coreset()...))
	processed := sa.Processed + sb.Processed
	if len(union) > w.tau {
		pts := union.Points()
		res, err := gmm.Runner{Space: w.space, Workers: 1}.Run(pts, w.tau, 0)
		if err != nil {
			return nil, err
		}
		folded := make(metric.WeightedSet, len(res.Centers))
		for i, c := range res.Centers {
			folded[i] = metric.WeightedPoint{P: c}
		}
		for i, wp := range union {
			folded[res.Assignment[i]].W += wp.W
		}
		union = folded
		phiSrc += res.Radius / 8
	}
	return streaming.RestoreDoublingIn(w.space, streaming.DoublingState{
		Tau:         w.tau,
		Phi:         phiSrc,
		Processed:   processed,
		Initialized: true,
		Points:      union,
	})
}

// foldDuplicates folds coincident points into one weighted entry (first
// occurrence wins), preserving order and total weight. Sets are at most a
// few tau points, so the quadratic scan is never a hot path.
func foldDuplicates(set metric.WeightedSet) metric.WeightedSet {
	out := set[:0]
	for _, wp := range set {
		merged := false
		for i := range out {
			if out[i].P.Equal(wp.P) {
				out[i].W += wp.W
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, wp)
		}
	}
	return out
}

// overfullOldest returns the index of the oldest sealed bucket of the lowest
// level holding more than chi buckets, or -1 when the invariant holds.
func (w *Window) overfullOldest() int {
	var counts [maxLevel + 2]int
	var first [maxLevel + 2]int
	for i := range first {
		first[i] = -1
	}
	for i, b := range w.sealed {
		if first[b.level] < 0 {
			first[b.level] = i
		}
		counts[b.level]++
	}
	for lvl := range counts {
		if counts[lvl] > w.chi {
			return first[lvl]
		}
	}
	return -1
}

// expired reports whether every point of the bucket lies outside the window:
// its newest element is older than the count bound or the duration bound.
func (w *Window) expired(b *bucket) bool {
	if w.maxCount > 0 && b.endSeq <= w.seq-w.maxCount {
		return true
	}
	if w.maxAge > 0 && b.endTS <= w.lastTS-w.maxAge {
		return true
	}
	return false
}

// evict drops buckets whose newest element has left the window. Only whole
// buckets are dropped (coreset states cannot forget individual points), so
// the live set covers the requested window plus at most the oldest live
// bucket's span.
func (w *Window) evict() {
	cut := 0
	for cut < len(w.sealed) && w.expired(w.sealed[cut]) {
		w.evictedBuckets++
		w.evictedPoints += w.sealed[cut].count
		cut++
	}
	if cut > 0 {
		n := copy(w.sealed, w.sealed[cut:])
		for i := n; i < len(w.sealed); i++ {
			w.sealed[i] = nil // release for GC
		}
		w.sealed = w.sealed[:n]
	}
	// The open bucket contains the newest point whenever the last mutation
	// was an Observe, but a duration window advanced past it expires it too.
	if w.open != nil && w.expired(w.open) {
		w.evictedBuckets++
		w.evictedPoints += w.open.count
		w.open = nil
	}
}

// live returns the live buckets oldest-first (sealed, then the open one).
func (w *Window) live() []*bucket {
	out := make([]*bucket, 0, len(w.sealed)+1)
	out = append(out, w.sealed...)
	if w.open != nil {
		out = append(out, w.open)
	}
	return out
}

// Coreset returns the weighted union of the live buckets' coresets, oldest
// bucket first — a coreset of exactly the live-bucket points, O(tau * log W)
// entries, every live point within CoverageBound of some entry. No lossy
// reduction happens here: query-time extraction runs directly on this union,
// the paper's round-2 pattern. Coincident points across buckets are NOT
// folded — extraction handles split weights identically, and a quadratic
// dedup over the whole union would dominate query time at large windows.
// The result is memoised until the next mutation; callers must not modify it
// (Clone first).
func (w *Window) Coreset() (metric.WeightedSet, error) {
	if w.union != nil {
		return w.union, nil
	}
	live := w.live()
	if len(live) == 0 {
		return nil, ErrEmptyWindow
	}
	var union metric.WeightedSet
	for _, b := range live {
		union = append(union, b.proc.Coreset()...)
	}
	w.union = union
	return w.union, nil
}

// CoverageBound returns the radius within which every live point has a proxy
// in Coreset(): 8x the largest live bucket phi (0 for an empty window).
func (w *Window) CoverageBound() float64 {
	var phi float64
	for _, b := range w.live() {
		if p := b.proc.Phi(); p > phi {
			phi = p
		}
	}
	return 8 * phi
}

// Space returns the metric space the window runs on.
func (w *Window) Space() metric.Space { return w.space }

// Tau returns the coreset budget.
func (w *Window) Tau() int { return w.tau }

// Chi returns the per-level bucket capacity.
func (w *Window) Chi() int { return w.chi }

// Base returns the level-0 bucket size.
func (w *Window) Base() int { return w.base }

// MaxCount returns the count bound (0 = none).
func (w *Window) MaxCount() int64 { return w.maxCount }

// MaxAge returns the duration bound (0 = none).
func (w *Window) MaxAge() int64 { return w.maxAge }

// Observed returns the total number of points consumed over the window's
// lifetime (evicted ones included).
func (w *Window) Observed() int64 { return w.seq }

// Now returns the newest observed (or advanced-to) timestamp.
func (w *Window) Now() int64 { return w.lastTS }

// Dim returns the point dimensionality (0 until the first point).
func (w *Window) Dim() int { return w.dim }

// LiveBuckets returns the number of live buckets.
func (w *Window) LiveBuckets() int {
	n := len(w.sealed)
	if w.open != nil {
		n++
	}
	return n
}

// LivePoints returns the number of stream points summarised by the live
// buckets — the size of the set a query answers over.
func (w *Window) LivePoints() int64 {
	var n int64
	for _, b := range w.live() {
		n += b.count
	}
	return n
}

// EvictedBuckets returns the lifetime count of buckets dropped because every
// one of their points left the window.
func (w *Window) EvictedBuckets() int64 { return w.evictedBuckets }

// EvictedPoints returns the lifetime count of stream points inside evicted
// buckets. Points still summarised by a live bucket are not counted even when
// they individually lie outside the window bound (eviction is whole-bucket).
func (w *Window) EvictedPoints() int64 { return w.evictedPoints }

// LiveRange returns the contiguous sequence-number range [start, end) covered
// by the live buckets; start == end means the window is empty. Sequence
// numbers count from 0 in observation order, so a caller retaining the raw
// stream can reconstruct exactly the point set a query summarises.
func (w *Window) LiveRange() (start, end int64) {
	live := w.live()
	if len(live) == 0 {
		return w.seq, w.seq
	}
	return live[0].startSeq, live[len(live)-1].endSeq
}

// WorkingMemory returns the number of points currently retained: the sum of
// all live bucket coresets (each bounded by tau+1) plus the memoised query
// union, so the total is O(tau * log W).
func (w *Window) WorkingMemory() int {
	var n int
	for _, b := range w.live() {
		n += b.proc.WorkingMemory()
	}
	return n + len(w.union)
}

// BucketInfo describes one live bucket; it is exported for introspection
// (tests, the daemon's stats endpoint) and mirrors the snapshot metadata.
type BucketInfo struct {
	// Level is the bucket's size class: a sealed level-L bucket summarises
	// Base<<L points.
	Level int
	// Count is the number of points summarised.
	Count int64
	// StartSeq and EndSeq delimit the covered sequence range [StartSeq, EndSeq).
	StartSeq, EndSeq int64
	// StartTS and EndTS are the timestamps of the oldest and newest point.
	StartTS, EndTS int64
}

// Buckets returns the live buckets' metadata, oldest first.
func (w *Window) Buckets() []BucketInfo {
	live := w.live()
	out := make([]BucketInfo, len(live))
	for i, b := range live {
		out[i] = BucketInfo{
			Level:    b.level,
			Count:    b.count,
			StartSeq: b.startSeq,
			EndSeq:   b.endSeq,
			StartTS:  b.startTS,
			EndTS:    b.endTS,
		}
	}
	return out
}

// CheckInvariants verifies the structural invariants of the bucket ring: at
// most chi sealed buckets per level, non-increasing levels towards the
// present, contiguous sequence ranges, non-decreasing timestamps, exact
// sealed-bucket sizes, and per-bucket doubling invariants. Exported for tests
// and debugging; never called on the hot path.
func (w *Window) CheckInvariants() error {
	var perLevel [maxLevel + 2]int
	live := w.live()
	prevLevel := maxLevel + 1
	var prevEndSeq, prevEndTS int64
	for i, b := range live {
		open := w.open != nil && i == len(live)-1
		if open {
			if b.level != 0 {
				return fmt.Errorf("window: open bucket at level %d", b.level)
			}
			if b.count >= int64(w.base) {
				return fmt.Errorf("window: open bucket holds %d points, seal size is %d", b.count, w.base)
			}
		} else {
			perLevel[b.level]++
			if perLevel[b.level] > w.chi {
				return fmt.Errorf("window: %d sealed buckets at level %d exceed chi=%d", perLevel[b.level], b.level, w.chi)
			}
			if b.level > prevLevel {
				return fmt.Errorf("window: bucket %d at level %d follows level %d", i, b.level, prevLevel)
			}
			if want := int64(w.base) << b.level; b.count != want {
				return fmt.Errorf("window: sealed level-%d bucket holds %d points, want %d", b.level, b.count, want)
			}
			prevLevel = b.level
		}
		if b.count != b.proc.Processed() {
			return fmt.Errorf("window: bucket %d count %d != processed %d", i, b.count, b.proc.Processed())
		}
		if b.endSeq-b.startSeq != b.count {
			return fmt.Errorf("window: bucket %d covers [%d,%d) but holds %d points", i, b.startSeq, b.endSeq, b.count)
		}
		if i > 0 && b.startSeq != prevEndSeq {
			return fmt.Errorf("window: bucket %d starts at seq %d, previous ended at %d", i, b.startSeq, prevEndSeq)
		}
		if b.startTS > b.endTS || (i > 0 && b.startTS < prevEndTS) {
			return fmt.Errorf("window: bucket %d timestamps [%d,%d] out of order", i, b.startTS, b.endTS)
		}
		// Sealed buckets are pure weighted coresets: they keep budget and
		// weight accounting, but not the doubling algorithm's resumption
		// invariants (b)/(e), so CheckInvariants of the processor itself is
		// deliberately not consulted here.
		if got := b.proc.WorkingMemory(); got > w.tau+1 {
			return fmt.Errorf("window: bucket %d retains %d points, budget %d", i, got, w.tau)
		}
		var weight int64
		for _, wp := range b.proc.Coreset() {
			if wp.W <= 0 {
				return fmt.Errorf("window: bucket %d carries non-positive weight %d", i, wp.W)
			}
			weight += wp.W
		}
		if weight != b.count {
			return fmt.Errorf("window: bucket %d weights sum to %d, holds %d points", i, weight, b.count)
		}
		prevEndSeq, prevEndTS = b.endSeq, b.endTS
	}
	if len(live) > 0 && live[len(live)-1].endSeq != w.seq {
		return fmt.Errorf("window: newest bucket ends at seq %d, observed %d", live[len(live)-1].endSeq, w.seq)
	}
	return nil
}
