package window

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"coresetclustering/internal/metric"
	"coresetclustering/internal/sketch"
)

// clusteredData scatters n points around `blobs` well-separated anchors.
func clusteredData(rng *rand.Rand, n, dim, blobs int, spread float64) metric.Dataset {
	out := make(metric.Dataset, n)
	for i := range out {
		p := make(metric.Point, dim)
		anchor := float64(rng.Intn(blobs)) * 100
		for j := range p {
			p[j] = anchor + rng.NormFloat64()*spread
		}
		out[i] = p
	}
	return out
}

func mustWindow(t *testing.T, cfg Config) *Window {
	t.Helper()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func feedCount(t *testing.T, w *Window, pts metric.Dataset) {
	t.Helper()
	for _, p := range pts {
		if err := w.Observe(p, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Tau: 0, MaxCount: 10},           // tau < 1
		{Tau: 4},                         // no bound at all
		{Tau: 4, MaxCount: -1},           // negative count
		{Tau: 4, MaxAge: -1},             // negative age
		{Tau: 4, MaxCount: 10, Chi: -1},  // negative chi
		{Tau: 4, MaxCount: 10, Base: -2}, // negative base
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
	w := mustWindow(t, Config{Tau: 8, MaxCount: 100})
	if w.Chi() != DefaultChi {
		t.Errorf("default chi = %d, want %d", w.Chi(), DefaultChi)
	}
	if w.Base() != 2 { // tau/4
		t.Errorf("default base = %d, want 2", w.Base())
	}
}

func TestObserveValidation(t *testing.T) {
	w := mustWindow(t, Config{Tau: 8, MaxCount: 100})
	if err := w.Observe(nil, 0); err == nil {
		t.Error("nil point accepted")
	}
	if err := w.Observe(metric.Point{math.NaN()}, 0); err == nil {
		t.Error("NaN point accepted")
	}
	if err := w.Observe(metric.Point{}, 0); err == nil {
		t.Error("zero-dimensional point accepted")
	}
	if err := w.Observe(metric.Point{1, 2}, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.Observe(metric.Point{1, 2, 3}, 5); !errors.Is(err, metric.ErrDimensionMismatch) {
		t.Errorf("dimension mismatch error = %v", err)
	}
	if err := w.Observe(metric.Point{3, 4}, 4); !errors.Is(err, ErrTimestampOrder) {
		t.Errorf("decreasing timestamp error = %v", err)
	}
	if err := w.Observe(metric.Point{3, 4}, -1); !errors.Is(err, ErrNegativeTimestamp) {
		t.Errorf("negative timestamp error = %v", err)
	}
	// Rejected points must not have perturbed the state.
	if w.Observed() != 1 {
		t.Errorf("observed = %d after one valid point, want 1", w.Observed())
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCountWindowEviction(t *testing.T) {
	const (
		W   = 200
		tau = 16
		n   = 2000
	)
	rng := rand.New(rand.NewSource(1))
	w := mustWindow(t, Config{Tau: tau, MaxCount: W})
	data := clusteredData(rng, n, 3, 4, 1)
	for i, p := range data {
		if err := w.Observe(p, 0); err != nil {
			t.Fatal(err)
		}
		if i%97 == 0 {
			if err := w.CheckInvariants(); err != nil {
				t.Fatalf("after %d points: %v", i+1, err)
			}
		}
	}
	if w.Observed() != n {
		t.Errorf("observed = %d, want %d", w.Observed(), n)
	}
	start, end := w.LiveRange()
	if end != n {
		t.Errorf("live range ends at %d, want %d", end, n)
	}
	// The live set must cover the window...
	if covered := end - start; covered < W {
		t.Errorf("live range covers %d points, window is %d", covered, W)
	}
	// ...and overshoot it by at most the span of the oldest live bucket.
	buckets := w.Buckets()
	if got, bound := end-start, int64(W)+buckets[0].Count; got > bound {
		t.Errorf("live range covers %d points, want <= window + oldest bucket = %d", got, bound)
	}
	if w.LivePoints() != end-start {
		t.Errorf("LivePoints = %d, want %d", w.LivePoints(), end-start)
	}
}

func TestDurationWindowEvictionAndAdvance(t *testing.T) {
	w := mustWindow(t, Config{Tau: 8, MaxAge: 100, Base: 2})
	// Ten points per tick-century, then a jump.
	for ts := int64(0); ts < 300; ts += 10 {
		if err := w.Observe(metric.Point{float64(ts), 1}, ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Window is (190, 290]: points at ts <= 190 are evictable; whole-bucket
	// eviction means the live range covers at least the last 10 points.
	if start, end := w.LiveRange(); end-start < 10 {
		t.Errorf("live range [%d,%d) too small for the last 100 ticks", start, end)
	}
	// Advancing far beyond the newest point evicts everything, including the
	// open bucket.
	if err := w.Advance(10_000); err != nil {
		t.Fatal(err)
	}
	if w.LiveBuckets() != 0 || w.LivePoints() != 0 {
		t.Errorf("after advancing past everything: %d buckets, %d points live", w.LiveBuckets(), w.LivePoints())
	}
	if _, err := w.Coreset(); !errors.Is(err, ErrEmptyWindow) {
		t.Errorf("Coreset on empty window = %v, want ErrEmptyWindow", err)
	}
	if err := w.Advance(9_999); !errors.Is(err, ErrTimestampOrder) {
		t.Errorf("backwards Advance error = %v", err)
	}
	// The stream keeps working after total eviction.
	if err := w.Observe(metric.Point{1, 1}, 10_001); err != nil {
		t.Fatal(err)
	}
	if w.LivePoints() != 1 {
		t.Errorf("live points = %d after re-observing, want 1", w.LivePoints())
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestMemoryBound asserts the O(tau * log W) working-memory contract: the
// bucket count stays within chi per level over ~log2(W/base) levels, and
// every bucket retains at most tau+1 points.
func TestMemoryBound(t *testing.T) {
	const (
		W   = 4096
		tau = 24
		n   = 40_000
	)
	rng := rand.New(rand.NewSource(2))
	w := mustWindow(t, Config{Tau: tau, MaxCount: W})
	data := clusteredData(rng, n, 4, 6, 1)
	levels := int(math.Log2(float64(W)/float64(w.Base()))) + 2
	maxBuckets := w.Chi()*levels + 1 // +1 for the open bucket
	for i, p := range data {
		if err := w.Observe(p, 0); err != nil {
			t.Fatal(err)
		}
		if i%512 == 0 || i == len(data)-1 {
			if got := w.LiveBuckets(); got > maxBuckets {
				t.Fatalf("after %d points: %d live buckets, bound chi*(log2(W/base)+2)+1 = %d", i+1, got, maxBuckets)
			}
			// +1 inside the factor: a doubling state briefly holds tau+1
			// points; the extra term covers the memoised query merge.
			if got, bound := w.WorkingMemory(), (tau+1)*(maxBuckets+1); got > bound {
				t.Fatalf("after %d points: working memory %d exceeds bound %d", i+1, got, bound)
			}
		}
	}
}

// TestCoalesceStructure pins the exponential-histogram shape for the
// smallest granularity: base=1, chi=2.
func TestCoalesceStructure(t *testing.T) {
	w := mustWindow(t, Config{Tau: 4, MaxCount: 1 << 20, Chi: 2, Base: 1})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if err := w.Observe(metric.Point{rng.Float64(), rng.Float64()}, 0); err != nil {
			t.Fatal(err)
		}
		if err := w.CheckInvariants(); err != nil {
			t.Fatalf("after %d points: %v", i+1, err)
		}
	}
	// 100 points in buckets of sizes 2^l with at most 2 per level needs at
	// least log2(100) levels and at most 2*ceil(log2(100))+... buckets.
	if got := w.LiveBuckets(); got > 2*8 {
		t.Errorf("%d buckets for 100 points at chi=2, base=1", got)
	}
}

// TestCoresetCovers checks the window coverage invariant: every live point
// lies within CoverageBound of the query-time coreset union, and the union's
// weights account for every live point exactly once.
func TestCoresetCovers(t *testing.T) {
	const W = 300
	rng := rand.New(rand.NewSource(4))
	w := mustWindow(t, Config{Tau: 32, MaxCount: W})
	data := clusteredData(rng, 1200, 3, 5, 1)
	feedCount(t, w, data)
	cs, err := w.Coreset()
	if err != nil {
		t.Fatal(err)
	}
	start, end := w.LiveRange()
	pts := cs.Points()
	bound := w.CoverageBound()
	for i := start; i < end; i++ {
		if d, _ := metric.DistanceToSet(metric.Euclidean, data[i], pts); d > bound+1e-9 {
			t.Fatalf("live point %d at distance %v from the coreset union, bound %v", i, d, bound)
		}
	}
	if got := cs.TotalWeight(); got != end-start {
		t.Errorf("coreset union accounts for %d points, live range covers %d", got, end-start)
	}
}

// TestQueryCache checks that the query-time union is memoised between
// mutations and invalidated by them.
func TestQueryCache(t *testing.T) {
	w := mustWindow(t, Config{Tau: 8, MaxCount: 50})
	feedCount(t, w, clusteredData(rand.New(rand.NewSource(5)), 60, 2, 3, 1))
	m1, err := w.Coreset()
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := w.Coreset()
	if &m1[0] != &m2[0] {
		t.Error("repeated Coreset without mutation rebuilt the union")
	}
	if err := w.Observe(metric.Point{1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	m3, _ := w.Coreset()
	if &m3[0] == &m1[0] {
		t.Error("Observe did not invalidate the memoised union")
	}
	if m3.TotalWeight() != w.LivePoints() {
		t.Errorf("union weight %d != live points %d", m3.TotalWeight(), w.LivePoints())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	const W = 256
	rng := rand.New(rand.NewSource(6))
	data := clusteredData(rng, 1500, 3, 4, 1)
	orig, err := NewKCenterStream(nil, 5, 40, Config{MaxCount: W})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range data[:1000] {
		if err := orig.Observe(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ws, err := orig.Sketch()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := sketch.EncodeWindow(ws)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := sketch.DecodeWindow(blob)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreKCenterStream(decoded)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical across the round-trip: same centers now...
	c1, err := orig.Result()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := restored.Result()
	if err != nil {
		t.Fatal(err)
	}
	assertSameDataset(t, c1, c2, "restored centers")

	// ...and identical evolution: feeding both the same suffix keeps the
	// snapshots byte-identical.
	for i, p := range data[1000:] {
		ts := int64(1000 + i)
		if err := orig.Observe(p, ts); err != nil {
			t.Fatal(err)
		}
		if err := restored.Observe(p, ts); err != nil {
			t.Fatal(err)
		}
	}
	b1 := mustEncode(t, orig)
	b2 := mustEncode(t, restored)
	if !bytes.Equal(b1, b2) {
		t.Error("snapshots diverged after identical suffixes")
	}
	if err := restored.Window().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func mustEncode(t *testing.T, s *KCenterStream) []byte {
	t.Helper()
	ws, err := s.Sketch()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sketch.EncodeWindow(ws)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func assertSameDataset(t *testing.T, a, b metric.Dataset, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d points", what, len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("%s: point %d differs: %v vs %v", what, i, a[i], b[i])
		}
	}
}

// TestWorkerInvariance: windowed extraction is bit-identical for every worker
// count, for both stream flavours.
func TestWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := clusteredData(rng, 1200, 4, 5, 1)

	build := func(workers int) (metric.Dataset, metric.Dataset) {
		plain, err := NewKCenterStream(nil, 6, 48, Config{MaxCount: 300})
		if err != nil {
			t.Fatal(err)
		}
		plain.SetWorkers(workers)
		outl, err := NewOutliersStream(nil, 4, 6, 80, 0.25, Config{MaxCount: 300})
		if err != nil {
			t.Fatal(err)
		}
		outl.SetWorkers(workers)
		for i, p := range data {
			if err := plain.Observe(p, int64(i)); err != nil {
				t.Fatal(err)
			}
			if err := outl.Observe(p, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		pc, err := plain.Result()
		if err != nil {
			t.Fatal(err)
		}
		or, err := outl.Result()
		if err != nil {
			t.Fatal(err)
		}
		return pc, or.Centers
	}

	p1, o1 := build(1)
	for _, workers := range []int{2, 8} {
		p, o := build(workers)
		assertSameDataset(t, p1, p, "plain centers across workers")
		assertSameDataset(t, o1, o, "outlier centers across workers")
	}
}

func TestStreamConstructorValidation(t *testing.T) {
	if _, err := NewKCenterStream(nil, 0, 8, Config{MaxCount: 10}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewKCenterStream(nil, 4, 3, Config{MaxCount: 10}); err == nil {
		t.Error("tau<k accepted")
	}
	if _, err := NewKCenterStream(nil, 4, 8, Config{}); err == nil {
		t.Error("missing window bound accepted")
	}
	if _, err := NewOutliersStream(nil, 2, 3, 4, 0.25, Config{MaxCount: 10}); err == nil {
		t.Error("tau<k+z accepted")
	}
	if _, err := NewOutliersStream(nil, 2, -1, 8, 0.25, Config{MaxCount: 10}); err == nil {
		t.Error("z<0 accepted")
	}
	if _, err := NewOutliersStream(nil, 2, 1, 8, -1, Config{MaxCount: 10}); err == nil {
		t.Error("negative epsHat accepted")
	}
	if _, err := RestoreKCenterStream(nil); err == nil {
		t.Error("nil sketch restored")
	}
}

func TestEvictionCounters(t *testing.T) {
	const (
		W   = 100
		tau = 8
		n   = 1500
	)
	rng := rand.New(rand.NewSource(11))
	w := mustWindow(t, Config{Tau: tau, MaxCount: W})
	feedCount(t, w, clusteredData(rng, n, 3, 4, 1))

	// Every observed point is either live or inside an evicted bucket.
	if got := w.EvictedPoints() + w.LivePoints(); got != w.Observed() {
		t.Fatalf("evicted(%d) + live(%d) = %d, want observed %d",
			w.EvictedPoints(), w.LivePoints(), got, w.Observed())
	}
	if w.EvictedBuckets() == 0 || w.EvictedPoints() == 0 {
		t.Fatalf("window of %d over %d points must have evicted (buckets=%d points=%d)",
			W, n, w.EvictedBuckets(), w.EvictedPoints())
	}

	// Clone carries the lifetime counters, and diverges independently.
	cp := w.Clone()
	if cp.EvictedBuckets() != w.EvictedBuckets() || cp.EvictedPoints() != w.EvictedPoints() {
		t.Fatal("Clone must copy eviction counters")
	}
	before := w.EvictedPoints()
	feedCount(t, w, clusteredData(rng, 500, 3, 4, 1))
	if w.EvictedPoints() <= before {
		t.Fatal("continued ingest must keep evicting")
	}
	if cp.EvictedPoints() != before {
		t.Fatal("clone counters must not move with the original")
	}
}

func TestEvictionCountersDurationWindow(t *testing.T) {
	w := mustWindow(t, Config{Tau: 4, MaxAge: 10, Base: 1})
	for ts := int64(0); ts < 100; ts += 2 {
		if err := w.Observe(metric.Point{float64(ts)}, ts); err != nil {
			t.Fatal(err)
		}
	}
	// Advance far past the newest point: everything, open bucket included,
	// leaves the window.
	if err := w.Advance(1000); err != nil {
		t.Fatal(err)
	}
	if w.LivePoints() != 0 {
		t.Fatalf("live = %d after advancing past everything", w.LivePoints())
	}
	if got := w.EvictedPoints(); got != w.Observed() {
		t.Fatalf("evicted %d points, want all %d observed", got, w.Observed())
	}
}
