package window

import (
	"errors"
	"testing"

	"coresetclustering/internal/metric"
)

// These are the golden boundary-semantics tests of Advance/ObserveAt: the
// half-open duration window (now-MaxAge, now], the "last MaxCount points"
// count window, timestamps exactly equal to the current clock, and the
// rejection of windows with no bound at all. They pin the INTENDED behaviour
// so an off-by-one in eviction can never creep in silently.

// boundaryWindow isolates eviction: Base 1 and a huge Chi mean every point is
// its own sealed bucket and no coalescing happens, so bucket-granularity
// overshoot cannot mask a boundary error.
func boundaryWindow(t *testing.T, cfg Config) *Window {
	t.Helper()
	cfg.Tau = 4
	cfg.Base = 1
	cfg.Chi = 1 << 20
	return mustWindow(t, cfg)
}

func obs(t *testing.T, w *Window, ts int64) {
	t.Helper()
	if err := w.Observe(metric.Point{float64(ts), 1}, ts); err != nil {
		t.Fatal(err)
	}
}

// TestObserveAtEqualToNow: a timestamp exactly equal to the current clock is
// legal (non-decreasing, not strictly increasing) for both Observe and
// Advance, and an equal-timestamp Advance is a pure no-op.
func TestObserveAtEqualToNow(t *testing.T) {
	w := boundaryWindow(t, Config{MaxAge: 10})
	obs(t, w, 5)
	obs(t, w, 5) // same tick: allowed
	if got := w.Now(); got != 5 {
		t.Fatalf("Now() = %d, want 5", got)
	}
	if err := w.Advance(5); err != nil { // advancing to "now": allowed, no-op
		t.Fatalf("Advance(now): %v", err)
	}
	if w.LivePoints() != 2 || w.Now() != 5 {
		t.Fatalf("equal-timestamp Advance changed state: live=%d now=%d", w.LivePoints(), w.Now())
	}
	// One tick back is ErrTimestampOrder, for both entry points.
	if err := w.Advance(4); !errors.Is(err, ErrTimestampOrder) {
		t.Fatalf("Advance(4) after 5: %v", err)
	}
	if err := w.Observe(metric.Point{1, 1}, 4); !errors.Is(err, ErrTimestampOrder) {
		t.Fatalf("Observe at 4 after 5: %v", err)
	}
}

// TestDurationEvictionBoundary pins the half-open window (now-MaxAge, now]:
// a point whose timestamp equals now-MaxAge is exactly on the boundary and
// OUT; one tick younger is in.
func TestDurationEvictionBoundary(t *testing.T) {
	const maxAge = 10

	// Advance to (ts + maxAge - 1): the point at ts satisfies
	// ts > now-maxAge, still live.
	w := boundaryWindow(t, Config{MaxAge: maxAge})
	obs(t, w, 3)
	if err := w.Advance(3 + maxAge - 1); err != nil {
		t.Fatal(err)
	}
	if w.LivePoints() != 1 {
		t.Fatalf("point evicted one tick early: live=%d", w.LivePoints())
	}
	// One more tick: ts == now-maxAge, exactly on the boundary, evicted.
	if err := w.Advance(3 + maxAge); err != nil {
		t.Fatal(err)
	}
	if w.LivePoints() != 0 {
		t.Fatalf("point at exactly now-MaxAge not evicted: live=%d", w.LivePoints())
	}
	if _, err := w.Coreset(); !errors.Is(err, ErrEmptyWindow) {
		t.Fatalf("empty window Coreset: %v", err)
	}

	// The same boundary driven by ObserveAt instead of Advance: observing at
	// old.ts+maxAge evicts the old point and keeps the new one.
	w2 := boundaryWindow(t, Config{MaxAge: maxAge})
	obs(t, w2, 0)
	obs(t, w2, maxAge) // now=maxAge, old point ts=0 == now-maxAge -> out
	if w2.LivePoints() != 1 {
		t.Fatalf("ObserveAt at the eviction boundary: live=%d, want 1", w2.LivePoints())
	}
	cs, err := w2.Coreset()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || cs[0].P[0] != float64(maxAge) {
		t.Fatalf("surviving coreset = %v, want only the newest point", cs)
	}
}

// TestCountEvictionBoundary pins "the last MaxCount points": with W=4, the
// 5th observation evicts exactly the 1st.
func TestCountEvictionBoundary(t *testing.T) {
	const maxCount = 4
	w := boundaryWindow(t, Config{MaxCount: maxCount})
	for i := 0; i < maxCount; i++ {
		obs(t, w, int64(i))
	}
	if w.LivePoints() != maxCount {
		t.Fatalf("live=%d after exactly W points, want %d", w.LivePoints(), maxCount)
	}
	if start, end := w.LiveRange(); start != 0 || end != maxCount {
		t.Fatalf("LiveRange = [%d,%d), want [0,%d)", start, end, maxCount)
	}
	obs(t, w, maxCount)
	if w.LivePoints() != maxCount {
		t.Fatalf("live=%d after W+1 points, want %d", w.LivePoints(), maxCount)
	}
	if start, end := w.LiveRange(); start != 1 || end != maxCount+1 {
		t.Fatalf("LiveRange = [%d,%d), want [1,%d): exactly the last W points", start, end, maxCount+1)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroWindowRejected: a window with no bound at all (zero duration AND
// zero size) is a configuration error, not an empty or an unbounded window —
// at construction, in both the internal and the public API.
func TestZeroWindowRejected(t *testing.T) {
	if _, err := New(Config{Tau: 4}); err == nil {
		t.Fatal("Config without any window bound accepted")
	}
	if _, err := New(Config{Tau: 4, MaxCount: 0, MaxAge: 0}); err == nil {
		t.Fatal("zero-duration zero-size window accepted")
	}
	// A duration-only window with duration 1 is the smallest legal time
	// window: it holds exactly the points of the current tick.
	w := boundaryWindow(t, Config{MaxAge: 1})
	obs(t, w, 7)
	obs(t, w, 7)
	if w.LivePoints() != 2 {
		t.Fatalf("live=%d, want both points of the current tick", w.LivePoints())
	}
	if err := w.Advance(8); err != nil {
		t.Fatal(err)
	}
	if w.LivePoints() != 0 {
		t.Fatalf("MaxAge=1 window kept %d points one tick later", w.LivePoints())
	}
}

// TestAdvanceExpiresOpenBucket: eviction must reach the still-accumulating
// open bucket too, not only sealed ones — a duration window advanced far
// past the newest point goes empty even though the open bucket was never
// sealed.
func TestAdvanceExpiresOpenBucket(t *testing.T) {
	w := mustWindow(t, Config{Tau: 4, MaxAge: 10, Base: 100}) // big base: bucket stays open
	obs(t, w, 1)
	obs(t, w, 2)
	if w.LiveBuckets() != 1 || w.LivePoints() != 2 {
		t.Fatalf("setup: buckets=%d live=%d", w.LiveBuckets(), w.LivePoints())
	}
	if err := w.Advance(12); err != nil { // newest ts=2 == 12-10 -> out
		t.Fatal(err)
	}
	if w.LiveBuckets() != 0 || w.LivePoints() != 0 {
		t.Fatalf("open bucket survived expiry: buckets=%d live=%d", w.LiveBuckets(), w.LivePoints())
	}
	// The window keeps working afterwards.
	obs(t, w, 20)
	if w.LivePoints() != 1 {
		t.Fatalf("window dead after full eviction: live=%d", w.LivePoints())
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCombinedBoundsTightest: with both bounds set, a point stays live only
// while it satisfies BOTH — whichever boundary is hit first evicts.
func TestCombinedBoundsTightest(t *testing.T) {
	// Count bound hits first.
	w := boundaryWindow(t, Config{MaxCount: 2, MaxAge: 1000})
	obs(t, w, 0)
	obs(t, w, 1)
	obs(t, w, 2)
	if start, _ := w.LiveRange(); start != 1 || w.LivePoints() != 2 {
		t.Fatalf("count bound ignored under combined bounds: start=%d live=%d", start, w.LivePoints())
	}
	// Duration bound hits first.
	w2 := boundaryWindow(t, Config{MaxCount: 1000, MaxAge: 5})
	obs(t, w2, 0)
	obs(t, w2, 1)
	if err := w2.Advance(5); err != nil { // window (0, 5]: ts=1 in, ts=0 out
		t.Fatal(err)
	}
	if w2.LivePoints() != 1 {
		t.Fatalf("duration bound ignored under combined bounds: live=%d", w2.LivePoints())
	}
}
