package window

import (
	"errors"
	"fmt"

	"coresetclustering/internal/gmm"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/outliers"
	"coresetclustering/internal/sketch"
	"coresetclustering/internal/streaming"
)

// KCenterStream is the sliding-window counterpart of
// streaming.CoresetStream: maintain per-bucket doubling coresets over the
// window, answer k-center queries by merging the live buckets and running GMM
// on the merged coreset.
type KCenterStream struct {
	k       int
	workers int
	space   metric.Space
	win     *Window
}

// NewKCenterStream returns a windowed k-center stream with per-bucket coreset
// budget tau >= k. The window geometry comes from cfg; cfg.Space and cfg.Tau
// are overridden by sp and tau.
func NewKCenterStream(sp metric.Space, k, tau int, cfg Config) (*KCenterStream, error) {
	if k < 1 {
		return nil, fmt.Errorf("window: k must be positive, got %d", k)
	}
	if tau < k {
		return nil, fmt.Errorf("window: tau (%d) must be at least k (%d)", tau, k)
	}
	if sp == nil {
		sp = metric.EuclideanSpace
	}
	cfg.Space = sp
	cfg.Tau = tau
	w, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &KCenterStream{k: k, space: sp, win: w}, nil
}

// SetWorkers sets the parallelism degree of the query-time extraction; the
// extracted centers are bit-identical for any value. Not safe to call
// concurrently with Result.
func (s *KCenterStream) SetWorkers(workers int) { s.workers = workers }

// K returns the number of centers extracted at query time.
func (s *KCenterStream) K() int { return s.k }

// Space returns the metric space the stream runs on.
func (s *KCenterStream) Space() metric.Space { return s.space }

// Window exposes the underlying bucket ring (shared, not a copy).
func (s *KCenterStream) Window() *Window { return s.win }

// Clone returns a copy-on-write copy of the stream (see (*Window).Clone):
// the copy answers Result and keeps observing independently of the original.
func (s *KCenterStream) Clone() *KCenterStream {
	return &KCenterStream{k: s.k, workers: s.workers, space: s.space, win: s.win.Clone()}
}

// Observe consumes the next point at the given timestamp.
func (s *KCenterStream) Observe(p metric.Point, ts int64) error { return s.win.Observe(p, ts) }

// Advance moves the window's clock forward without observing a point.
func (s *KCenterStream) Advance(ts int64) error { return s.win.Advance(ts) }

// Result extracts the k centers summarising the live window by running GMM on
// the merged live-bucket coreset.
func (s *KCenterStream) Result() (metric.Dataset, error) {
	cs, err := s.win.Coreset()
	if err != nil {
		return nil, err
	}
	res, err := gmm.Runner{Space: s.space, Workers: s.workers}.Run(cs.Points(), s.k, 0)
	if err != nil {
		return nil, err
	}
	return res.Centers, nil
}

// Sketch captures the stream's complete state as a window sketch.
func (s *KCenterStream) Sketch() (*sketch.WindowSketch, error) {
	id, err := sketch.SpaceID(s.space)
	if err != nil {
		return nil, err
	}
	return s.win.toSketch(sketch.KindKCenter, id, s.k, 0, 0)
}

// RestoreKCenterStream reconstructs a windowed k-center stream from a window
// sketch (which must be of the plain k-center kind).
func RestoreKCenterStream(ws *sketch.WindowSketch) (*KCenterStream, error) {
	if ws == nil {
		return nil, errors.New("window: nil window sketch")
	}
	if ws.Kind != sketch.KindKCenter {
		return nil, fmt.Errorf("window: %w: sketch is %s, want k-center", sketch.ErrIncompatible, ws.Kind)
	}
	sp, w, err := fromSketch(ws)
	if err != nil {
		return nil, err
	}
	return &KCenterStream{k: ws.K, space: sp, win: w}, nil
}

// OutliersStream is the sliding-window counterpart of
// streaming.CoresetOutliers: per-bucket doubling coresets over the window,
// with the weighted outlier-aware radius search run on the merged live
// coreset at query time.
type OutliersStream struct {
	k, z    int
	epsHat  float64
	workers int
	space   metric.Space
	win     *Window
}

// NewOutliersStream returns a windowed k-center-with-outliers stream with
// per-bucket coreset budget tau >= k+z.
func NewOutliersStream(sp metric.Space, k, z, tau int, epsHat float64, cfg Config) (*OutliersStream, error) {
	if k < 1 {
		return nil, fmt.Errorf("window: k must be positive, got %d", k)
	}
	if z < 0 {
		return nil, fmt.Errorf("window: z must be non-negative, got %d", z)
	}
	if tau < k+z {
		return nil, fmt.Errorf("window: tau (%d) must be at least k+z (%d)", tau, k+z)
	}
	if epsHat < 0 {
		return nil, fmt.Errorf("window: epsHat must be non-negative, got %v", epsHat)
	}
	if sp == nil {
		sp = metric.EuclideanSpace
	}
	cfg.Space = sp
	cfg.Tau = tau
	w, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &OutliersStream{k: k, z: z, epsHat: epsHat, space: sp, win: w}, nil
}

// SetWorkers sets the parallelism degree of the query-time radius search; the
// result is bit-identical for any value. Not safe to call concurrently with
// Result.
func (s *OutliersStream) SetWorkers(workers int) { s.workers = workers }

// K returns the number of centers extracted at query time.
func (s *OutliersStream) K() int { return s.k }

// Z returns the number of outliers tolerated at query time.
func (s *OutliersStream) Z() int { return s.z }

// EpsHat returns the slack parameter of the query-time radius search.
func (s *OutliersStream) EpsHat() float64 { return s.epsHat }

// Space returns the metric space the stream runs on.
func (s *OutliersStream) Space() metric.Space { return s.space }

// Window exposes the underlying bucket ring (shared, not a copy).
func (s *OutliersStream) Window() *Window { return s.win }

// Clone returns a copy-on-write copy of the stream (see (*Window).Clone).
func (s *OutliersStream) Clone() *OutliersStream {
	return &OutliersStream{
		k: s.k, z: s.z, epsHat: s.epsHat, workers: s.workers,
		space: s.space, win: s.win.Clone(),
	}
}

// Observe consumes the next point at the given timestamp.
func (s *OutliersStream) Observe(p metric.Point, ts int64) error { return s.win.Observe(p, ts) }

// Advance moves the window's clock forward without observing a point.
func (s *OutliersStream) Advance(ts int64) error { return s.win.Advance(ts) }

// Result runs the weighted outlier-aware radius search on the merged
// live-bucket coreset.
func (s *OutliersStream) Result() (*streaming.OutliersResult, error) {
	cs, err := s.win.Coreset()
	if err != nil {
		return nil, err
	}
	solved, err := outliers.SolveIn(s.space, cs, s.k, int64(s.z), s.epsHat, outliers.SearchBinaryGeometric, s.workers)
	if err != nil {
		return nil, err
	}
	return &streaming.OutliersResult{
		Centers:         solved.Centers,
		SearchRadius:    solved.Radius,
		UncoveredWeight: solved.UncoveredWeight,
	}, nil
}

// Sketch captures the stream's complete state as a window sketch.
func (s *OutliersStream) Sketch() (*sketch.WindowSketch, error) {
	id, err := sketch.SpaceID(s.space)
	if err != nil {
		return nil, err
	}
	return s.win.toSketch(sketch.KindOutliers, id, s.k, s.z, s.epsHat)
}

// RestoreOutliersStream reconstructs a windowed outlier stream from a window
// sketch (which must be of the outlier kind).
func RestoreOutliersStream(ws *sketch.WindowSketch) (*OutliersStream, error) {
	if ws == nil {
		return nil, errors.New("window: nil window sketch")
	}
	if ws.Kind != sketch.KindOutliers {
		return nil, fmt.Errorf("window: %w: sketch is %s, want k-center-with-outliers", sketch.ErrIncompatible, ws.Kind)
	}
	sp, w, err := fromSketch(ws)
	if err != nil {
		return nil, err
	}
	return &OutliersStream{k: ws.K, z: ws.Z, epsHat: ws.EpsHat, space: sp, win: w}, nil
}

// toSketch converts the window's state into a sketch.WindowSketch: the window
// geometry, the live buckets' boundaries, and each bucket's doubling state as
// a nested KCSK payload sharing the stream parameters.
func (w *Window) toSketch(kind sketch.Kind, distID uint8, k, z int, epsHat float64) (*sketch.WindowSketch, error) {
	ws := &sketch.WindowSketch{
		Kind:     kind,
		DistID:   distID,
		K:        k,
		Z:        z,
		EpsHat:   epsHat,
		Tau:      w.tau,
		MaxCount: w.maxCount,
		MaxAge:   w.maxAge,
		Chi:      w.chi,
		Base:     w.base,
		Seq:      w.seq,
		LastTS:   w.lastTS,
	}
	for _, b := range w.live() {
		ws.Buckets = append(ws.Buckets, sketch.WindowBucket{
			Level:    b.level,
			StartSeq: b.startSeq,
			EndSeq:   b.endSeq,
			StartTS:  b.startTS,
			EndTS:    b.endTS,
			Payload:  sketch.FromState(kind, distID, k, z, epsHat, b.proc.State()),
		})
	}
	return ws, nil
}

// fromSketch rebuilds a Window from a (validated) window sketch: the metric
// space is resolved from the sketch's distance id, every bucket's doubling
// state is restored, and a trailing partial level-0 bucket becomes the open
// bucket again. The codec has already enforced the structural invariants;
// restoring revalidates the doubling states themselves.
func fromSketch(ws *sketch.WindowSketch) (metric.Space, *Window, error) {
	sp, err := sketch.SpaceByID(ws.DistID)
	if err != nil {
		return nil, nil, err
	}
	w, err := New(Config{
		Space:    sp,
		Tau:      ws.Tau,
		MaxCount: ws.MaxCount,
		MaxAge:   ws.MaxAge,
		Chi:      ws.Chi,
		Base:     ws.Base,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("window: %w: %v", sketch.ErrCorrupt, err)
	}
	w.seq = ws.Seq
	w.lastTS = ws.LastTS
	for i, wb := range ws.Buckets {
		proc, err := streaming.RestoreDoublingIn(sp, wb.Payload.State())
		if err != nil {
			return nil, nil, fmt.Errorf("window: bucket %d: %w: %v", i, sketch.ErrCorrupt, err)
		}
		b := &bucket{
			proc:     proc,
			level:    wb.Level,
			count:    wb.EndSeq - wb.StartSeq,
			startSeq: wb.StartSeq,
			endSeq:   wb.EndSeq,
			startTS:  wb.StartTS,
			endTS:    wb.EndTS,
		}
		if d := wb.Payload.Dim(); d != 0 {
			w.dim = d
		}
		// A trailing level-0 bucket below the seal size is still accumulating.
		if i == len(ws.Buckets)-1 && wb.Level == 0 && b.count < int64(w.base) {
			w.open = b
		} else {
			w.sealed = append(w.sealed, b)
		}
	}
	return sp, w, nil
}
