package window

import (
	"fmt"
	"math/rand"
	"testing"

	"coresetclustering/internal/metric"
	"coresetclustering/internal/sketch"
)

// benchData is shared by the ingest and query benchmarks.
func benchData(n int) metric.Dataset {
	rng := rand.New(rand.NewSource(99))
	return clusteredData(rng, n, 8, 10, 1)
}

// BenchmarkWindowIngest measures steady-state ingest throughput (points/op)
// into a count window, across window sizes. The window is pre-filled so
// coalescing and eviction run at their steady-state amortised cost.
func BenchmarkWindowIngest(b *testing.B) {
	for _, W := range []int64{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("W=%d", W), func(b *testing.B) {
			const tau = 64
			w, err := New(Config{Tau: tau, MaxCount: W})
			if err != nil {
				b.Fatal(err)
			}
			data := benchData(1 << 14)
			for i := int64(0); i < W; i++ {
				if err := w.Observe(data[i%int64(len(data))], 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Observe(data[i%len(data)], 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWindowQuery measures query latency (merge + GMM extraction)
// against a filled window, across window sizes. Each iteration observes one
// point first so the memoised merge never short-circuits the measurement.
func BenchmarkWindowQuery(b *testing.B) {
	for _, W := range []int64{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("W=%d", W), func(b *testing.B) {
			const (
				k   = 8
				tau = 64
			)
			s, err := NewKCenterStream(nil, k, tau, Config{MaxCount: W})
			if err != nil {
				b.Fatal(err)
			}
			data := benchData(1 << 14)
			for i := int64(0); i < W; i++ {
				if err := s.Observe(data[i%int64(len(data))], 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Observe(data[i%len(data)], 0); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Result(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWindowSnapshot measures full window snapshot round-trips,
// including the KCWN codec: state capture, EncodeWindow, DecodeWindow,
// restore.
func BenchmarkWindowSnapshot(b *testing.B) {
	const W = 10_000
	s, err := NewKCenterStream(nil, 8, 64, Config{MaxCount: W})
	if err != nil {
		b.Fatal(err)
	}
	data := benchData(1 << 14)
	for i := 0; i < W; i++ {
		if err := s.Observe(data[i%len(data)], 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws, err := s.Sketch()
		if err != nil {
			b.Fatal(err)
		}
		blob, err := sketch.EncodeWindow(ws)
		if err != nil {
			b.Fatal(err)
		}
		decoded, err := sketch.DecodeWindow(blob)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RestoreKCenterStream(decoded); err != nil {
			b.Fatal(err)
		}
	}
}
