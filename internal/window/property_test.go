package window

import (
	"math/rand"
	"testing"

	"coresetclustering/internal/gmm"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/outliers"
)

// TestWindowedQualityProperty is the windowed analogue of the sketch merge
// quality property: for randomized ingest/evict schedules, the k centers
// extracted from the merged live buckets must stay within (2+eps) of a
// from-scratch Gonzalez recompute over exactly the live window (the point
// set LiveRange delimits). eps = 1 absorbs the bucketing and budget slack,
// matching the existing merge-quality tests.
func TestWindowedQualityProperty(t *testing.T) {
	const (
		k   = 6
		dim = 3
		n   = 3000
	)
	for _, seed := range []int64{11, 12, 13} {
		rng := rand.New(rand.NewSource(seed))
		W := int64(200 + rng.Intn(600))
		tau := (8 + rng.Intn(9)) * k
		data := clusteredData(rng, n, dim, k, 1)

		s, err := NewKCenterStream(nil, k, tau, Config{MaxCount: W})
		if err != nil {
			t.Fatal(err)
		}
		ts := int64(0)
		for i, p := range data {
			// Randomized schedule: bursts share a timestamp, lulls advance it.
			if rng.Intn(4) == 0 {
				ts += int64(rng.Intn(3))
			}
			if err := s.Observe(p, ts); err != nil {
				t.Fatal(err)
			}
			if i > int(W) && (i%701 == 0 || i == len(data)-1) {
				assertWindowQuality(t, s.Window(), data, func() (metric.Dataset, error) { return s.Result() }, k, seed, i)
			}
		}
	}
}

func assertWindowQuality(t *testing.T, w *Window, data metric.Dataset, result func() (metric.Dataset, error), k int, seed int64, step int) {
	t.Helper()
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("seed %d step %d: %v", seed, step, err)
	}
	start, end := w.LiveRange()
	live := data[start:end]
	centers, err := result()
	if err != nil {
		t.Fatalf("seed %d step %d: %v", seed, step, err)
	}
	radius := metric.Radius(metric.Euclidean, live, centers)
	base, err := gmm.Runner{Space: metric.EuclideanSpace}.Run(live, k, 0)
	if err != nil {
		t.Fatalf("seed %d step %d: %v", seed, step, err)
	}
	if bound := (2 + 1.0) * base.Radius; radius > bound {
		t.Errorf("seed %d step %d: windowed radius %v over the live window exceeds (2+eps) bound %v (Gonzalez %v, live %d points)",
			seed, step, radius, bound, base.Radius, len(live))
	}
}

// TestWindowedOutliersQualityProperty is the outlier variant: the windowed
// outlier-aware radius over exactly the live window must stay within a small
// constant of a from-scratch outlier solve on those points, it must never
// leave more than z coreset weight uncovered, and the plain (2+eps)*Gonzalez
// bound must hold against a Gonzalez baseline that also spends z extra
// centers (the outlier analogue of the from-scratch recompute).
func TestWindowedOutliersQualityProperty(t *testing.T) {
	const (
		k   = 4
		z   = 10
		dim = 3
		n   = 2500
	)
	for _, seed := range []int64{21, 22} {
		rng := rand.New(rand.NewSource(seed))
		W := int64(300 + rng.Intn(400))
		tau := (8 + rng.Intn(5)) * (k + z)
		data := clusteredData(rng, n, dim, k, 1)
		// Sprinkle far-away junk: roughly z outliers per window span.
		for i := range data {
			if rng.Intn(int(W)/z) == 0 {
				p := make(metric.Point, dim)
				for j := range p {
					p[j] = 5_000 + rng.Float64()*1_000
				}
				data[i] = p
			}
		}

		s, err := NewOutliersStream(nil, k, z, tau, 0.25, Config{MaxCount: W})
		if err != nil {
			t.Fatal(err)
		}
		ts := int64(0)
		for i, p := range data {
			if rng.Intn(4) == 0 {
				ts += int64(rng.Intn(3))
			}
			if err := s.Observe(p, ts); err != nil {
				t.Fatal(err)
			}
			if i > int(W) && (i%701 == 0 || i == len(data)-1) {
				assertOutlierWindowQuality(t, s, data, k, z, seed, i)
			}
		}
	}
}

func assertOutlierWindowQuality(t *testing.T, s *OutliersStream, data metric.Dataset, k, z int, seed int64, step int) {
	t.Helper()
	w := s.Window()
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("seed %d step %d: %v", seed, step, err)
	}
	start, end := w.LiveRange()
	live := data[start:end]
	res, err := s.Result()
	if err != nil {
		t.Fatalf("seed %d step %d: %v", seed, step, err)
	}
	if len(res.Centers) > k {
		t.Fatalf("seed %d step %d: %d centers, want <= %d", seed, step, len(res.Centers), k)
	}
	if res.UncoveredWeight > int64(z) {
		t.Errorf("seed %d step %d: uncovered weight %d exceeds z=%d", seed, step, res.UncoveredWeight, z)
	}
	radius := metric.RadiusExcluding(metric.Euclidean, live, res.Centers, z)

	// From-scratch recompute over exactly the live window with the same
	// weighted solver.
	scratch, err := outliers.SolveIn(metric.EuclideanSpace, metric.Unweighted(live), k, int64(z), 0.25, outliers.SearchBinaryGeometric, 0)
	if err != nil {
		t.Fatalf("seed %d step %d: %v", seed, step, err)
	}
	scratchRadius := metric.RadiusExcluding(metric.Euclidean, live, scratch.Centers, z)
	if bound := 3 * scratchRadius; scratchRadius > 0 && radius > bound {
		t.Errorf("seed %d step %d: windowed outlier radius %v exceeds 3x from-scratch %v (live %d points)",
			seed, step, radius, scratchRadius, len(live))
	}

	// The (2+eps)*Gonzalez bound, against a baseline that also gets to place
	// k+z centers (covering the junk with dedicated centers).
	base, err := gmm.Runner{Space: metric.EuclideanSpace}.Run(live, k+z, 0)
	if err != nil {
		t.Fatalf("seed %d step %d: %v", seed, step, err)
	}
	if bound := (2 + 1.0) * base.Radius; base.Radius > 0 && radius > bound {
		t.Errorf("seed %d step %d: windowed outlier radius %v exceeds (2+eps)*Gonzalez(k+z) = %v",
			seed, step, radius, bound)
	}
}
