package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"

	kcenter "coresetclustering"
	"coresetclustering/internal/server/engine"
	"coresetclustering/internal/server/httpapi"
)

// centersResponse is the router's global-centers payload: the merged view's
// centers plus enough provenance (shards merged, view age) for a client to
// reason about staleness.
type centersResponse struct {
	Stream      string          `json:"stream"`
	Observed    int64           `json:"observed"`
	Shards      int             `json:"shards"`
	MergedAgeMs int64           `json:"mergedAgeMs"`
	Centers     kcenter.Dataset `json:"centers"`
}

// handleCenters serves cluster-wide centers from the cached merged view;
// ?refresh=1 forces a re-pull and re-merge before answering.
func (s *server) handleCenters(w http.ResponseWriter, r *http.Request) {
	force := r.URL.Query().Get("refresh") == "1"
	res, err := s.getMerged(r.Context(), r.PathValue("name"), force)
	if err != nil {
		httpapi.EngineError(w, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, centersResponse{
		Stream:      r.PathValue("name"),
		Observed:    res.observed,
		Shards:      res.shards,
		MergedAgeMs: res.age.Milliseconds(),
		Centers:     res.centers,
	})
}

// handleSnapshot serves the merged global sketch itself — a valid restore
// body for any shard daemon, so an operator can materialise the cluster-wide
// state as a single stream.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	force := r.URL.Query().Get("refresh") == "1"
	res, err := s.getMerged(r.Context(), r.PathValue("name"), force)
	if err != nil {
		httpapi.EngineError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(res.sketch)))
	w.WriteHeader(http.StatusOK)
	w.Write(res.sketch)
}

// shardStreamStat is one shard's slice of a stream's cluster-wide stats.
type shardStreamStat struct {
	Shard  string          `json:"shard"`
	Health string          `json:"health"`
	Error  string          `json:"error,omitempty"`
	Stats  json.RawMessage `json:"stats,omitempty"`
}

// statsResponse aggregates one stream's stats across the cluster: the
// summed observed count plus each shard's full stats payload verbatim.
type statsResponse struct {
	Stream   string            `json:"stream"`
	Observed int64             `json:"observed"`
	Shards   []shardStreamStat `json:"shards"`
}

// handleStats fans GET /stats out to every shard and aggregates. A shard
// that does not know the stream contributes nothing; only when every shard
// is ignorant is the stream unknown.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	path := "/streams/" + url.PathEscape(name) + "/stats"
	resps, errs := s.broadcast(r, http.MethodGet, path, "", nil)

	out := statsResponse{Stream: name, Shards: make([]shardStreamStat, len(s.shards))}
	present := 0
	for i, sh := range s.shards {
		st := shardStreamStat{Shard: sh.addr, Health: sh.getState()}
		switch {
		case errs[i] != nil:
			st.Error = errs[i].Error()
		case resps[i].status == http.StatusOK:
			var stats engine.StreamStats
			if err := json.Unmarshal(resps[i].body, &stats); err == nil {
				out.Observed += stats.Observed
			}
			st.Stats = json.RawMessage(resps[i].body)
			present++
		default:
			st.Error = fmt.Sprintf("status %d: %s", resps[i].status, shardErrText(resps[i].body))
		}
		out.Shards[i] = st
	}
	if present == 0 {
		if allUnknown(resps, errs) {
			httpapi.Error(w, http.StatusNotFound, engine.CodeUnknownStream,
				fmt.Errorf("unknown stream %q on every shard", name))
			return
		}
		httpapi.Error(w, http.StatusBadGateway, engine.CodeShardUnavailable,
			fmt.Errorf("no shard could answer stats for %q", name))
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, out)
}

// handleAdvance broadcasts a clock advance to every shard hosting the
// stream: with hash partitioning any shard may hold live buckets, so the
// window moves everywhere or the request fails.
func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req struct {
		To int64 `json:"to"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		httpapi.Error(w, http.StatusInternalServerError, engine.CodeInternal, err)
		return
	}
	name := r.PathValue("name")
	path := "/streams/" + url.PathEscape(name) + "/advance"
	resps, errs := s.broadcast(r, http.MethodPost, path, "application/json", body)

	var observed int64
	advanced := 0
	for i := range s.shards {
		switch {
		case errs[i] != nil:
			httpapi.EngineError(w, &engine.Error{Code: engine.CodeShardUnavailable,
				Err: fmt.Errorf("shard %s: %w", s.shards[i].addr, errs[i])})
			return
		case resps[i].status == http.StatusOK:
			var stats engine.StreamStats
			if json.Unmarshal(resps[i].body, &stats) == nil {
				observed += stats.Observed
			}
			advanced++
		case resps[i].status == http.StatusNotFound && shardErrCode(resps[i].body) == engine.CodeUnknownStream:
			// This shard has not seen the stream yet; nothing to advance.
		default:
			relayShardError(w, resps[i])
			return
		}
	}
	if advanced == 0 {
		httpapi.Error(w, http.StatusNotFound, engine.CodeUnknownStream,
			fmt.Errorf("unknown stream %q on every shard", name))
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, map[string]any{
		"stream": name, "to": req.To, "shards": advanced, "observed": observed,
	})
}

// handleList unions the shard stream listings into one sorted name list.
func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	resps, errs := s.broadcast(r, http.MethodGet, "/streams", "", nil)
	names := make(map[string]struct{})
	answered := 0
	for i := range s.shards {
		if errs[i] != nil || resps[i].status != http.StatusOK {
			continue
		}
		var list struct {
			Streams []struct {
				Name string `json:"name"`
			} `json:"streams"`
		}
		if json.Unmarshal(resps[i].body, &list) != nil {
			continue
		}
		answered++
		for _, st := range list.Streams {
			names[st.Name] = struct{}{}
			s.remember(st.Name)
		}
	}
	if answered == 0 {
		httpapi.Error(w, http.StatusBadGateway, engine.CodeShardUnavailable,
			fmt.Errorf("no shard answered the stream listing"))
		return
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	httpapi.WriteJSON(w, http.StatusOK, map[string]any{
		"streams": sorted, "shardsAnswered": answered,
	})
}

// broadcast sends the same request to every shard concurrently and collects
// each answer (or error) by shard index.
func (s *server) broadcast(r *http.Request, method, path, contentType string, body []byte) ([]shardResp, []error) {
	resps := make([]shardResp, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			_, span := obsStartSpan(r, "shard.send")
			span.SetAttr("shard", sh.addr)
			resps[i], errs[i] = s.sendShard(r.Context(), sh, method, path, contentType, body, span)
			if errs[i] != nil {
				span.SetAttr("error", errs[i].Error())
			} else {
				span.SetAttr("status", strconv.Itoa(resps[i].status))
			}
			span.End()
		}(i, sh)
	}
	wg.Wait()
	return resps, errs
}

// allUnknown reports whether every shard that answered said unknown_stream.
func allUnknown(resps []shardResp, errs []error) bool {
	for i := range resps {
		if errs[i] != nil {
			return false
		}
		if resps[i].status != http.StatusNotFound || shardErrCode(resps[i].body) != engine.CodeUnknownStream {
			return false
		}
	}
	return true
}
