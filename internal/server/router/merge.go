package router

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	kcenter "coresetclustering"
	"coresetclustering/internal/obs"
	"coresetclustering/internal/server/engine"
)

// mergedView is the router's cached global view of one stream: the merged
// sketch of every shard's snapshot, plus the centers extracted from it. One
// refresh is in flight per stream at a time (the mutex doubles as a
// singleflight), and a view is served from cache while younger than
// -merge-interval — the router's consistency window: a fresh ingest is
// visible cluster-wide only after the next refresh.
type mergedView struct {
	mu       sync.Mutex
	at       time.Time // zero until the first successful refresh
	sketch   []byte
	observed int64
	centers  kcenter.Dataset
	shards   int // shard snapshots merged in
}

// mergedResult is one consistent read of a mergedView.
type mergedResult struct {
	sketch   []byte
	observed int64
	centers  kcenter.Dataset
	shards   int
	age      time.Duration
}

// view returns (creating if needed) the cache entry for one stream.
func (s *server) view(name string) *mergedView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.views[name]
	if !ok {
		v = &mergedView{}
		s.views[name] = v
	}
	return v
}

// getMerged answers a global-view query: from cache while fresh, otherwise
// by pulling a snapshot from every shard and merging them. force (?refresh=1
// or the background refresher) always re-pulls.
func (s *server) getMerged(ctx context.Context, name string, force bool) (mergedResult, error) {
	s.remember(name)
	v := s.view(name)
	v.mu.Lock()
	defer v.mu.Unlock()
	if !force && !v.at.IsZero() && time.Since(v.at) < s.cfg.mergeInterval {
		if m := s.m; m != nil {
			m.MergeCacheHits.Add(1)
		}
		return mergedResult{v.sketch, v.observed, v.centers, v.shards, time.Since(v.at)}, nil
	}
	return s.refreshLocked(ctx, name, v)
}

// refreshLocked re-pulls and re-merges one stream's global view. The caller
// holds v.mu. Every reachable shard must answer (a shard that does not know
// the stream is fine; an unreachable one fails the refresh): serving a merge
// that silently dropped a shard would report a radius over a subset of the
// data as if it covered all of it.
func (s *server) refreshLocked(ctx context.Context, name string, v *mergedView) (mergedResult, error) {
	if m := s.m; m != nil {
		m.Merges.Add(1)
	}
	type pull struct {
		blob   []byte
		absent bool
		err    error
	}
	pulls := make([]pull, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			_, span := obs.StartSpan(ctx, "shard.pull")
			span.SetAttr("shard", sh.addr)
			resp, err := s.sendShard(ctx, sh, http.MethodPost,
				"/streams/"+url.PathEscape(name)+"/snapshot", "", nil, span)
			span.End()
			switch {
			case err != nil:
				pulls[i] = pull{err: fmt.Errorf("shard %s: %w", sh.addr, err)}
			case resp.status == http.StatusOK:
				pulls[i] = pull{blob: resp.body}
			case resp.status == http.StatusNotFound:
				pulls[i] = pull{absent: true}
			default:
				pulls[i] = pull{err: fmt.Errorf("shard %s: status %d: %s",
					sh.addr, resp.status, shardErrText(resp.body))}
			}
		}(i, sh)
	}
	wg.Wait()

	blobs := make([][]byte, 0, len(pulls))
	for _, p := range pulls {
		if p.err != nil {
			if m := s.m; m != nil {
				m.MergeFailures.Add(1)
			}
			return mergedResult{}, &engine.Error{Code: engine.CodeShardUnavailable, Err: p.err}
		}
		if !p.absent {
			blobs = append(blobs, p.blob)
		}
	}
	if len(blobs) == 0 {
		return mergedResult{}, &engine.Error{Code: engine.CodeUnknownStream,
			Err: fmt.Errorf("unknown stream %q on every shard", name)}
	}
	_, span := obs.StartSpan(ctx, "merge")
	span.SetAttr("sketches", strconv.Itoa(len(blobs)))
	res, err := s.eng.Merge(blobs)
	span.End()
	if err != nil {
		if m := s.m; m != nil {
			m.MergeFailures.Add(1)
		}
		return mergedResult{}, err
	}
	v.at = time.Now()
	v.sketch, v.observed, v.centers, v.shards = res.Sketch, res.Observed, res.Centers, len(blobs)
	return mergedResult{res.Sketch, res.Observed, res.Centers, len(blobs), 0}, nil
}

// refreshLoop keeps every known stream's global view fresh: each
// -merge-interval tick re-pulls and re-merges the streams the router has
// seen, so an interactive /centers usually answers from a view at most one
// interval old.
func (s *server) refreshLoop() {
	t := time.NewTicker(s.cfg.mergeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
		}
		for _, name := range s.knownStreams() {
			ctx, cancel := context.WithTimeout(context.Background(),
				s.cfg.shardTimeout*time.Duration(s.cfg.retries+1)+time.Second)
			var span *obs.Span
			if s.tracer != nil {
				ctx, span = s.tracer.StartBackground(ctx, "merge.refresh")
				span.SetAttr("stream", name)
			}
			_, err := s.getMerged(ctx, name, true)
			if span != nil {
				if err != nil {
					span.SetAttr("error", err.Error())
				}
				span.End()
			}
			cancel()
			if err != nil && s.logger.Enabled(obs.LevelDebug) {
				s.logger.Debug("background merge refresh failed", "stream", name, "err", err)
			}
		}
	}
}
