package router

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	kcenter "coresetclustering"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/obs"
	"coresetclustering/internal/server/engine"
	"coresetclustering/internal/server/httpapi"
)

// FNV-1a 64 parameters, spelled out so the partition function is a frozen
// contract: changing it would re-route every point of every stream.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// shardIndex picks the shard for one point: FNV-1a over the big-endian IEEE
// 754 bits of each coordinate, mod the shard count. Stable per point — the
// same coordinates always route to the same shard, independent of batch
// boundaries, ingest order or which router instance handled the request.
func shardIndex(p metric.Point, n int) int {
	h := fnvOffset
	var buf [8]byte
	for _, c := range p {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(c))
		for _, b := range buf {
			h ^= uint64(b)
			h *= fnvPrime
		}
	}
	return int(h % uint64(n))
}

// passthroughQuery keeps only the stream-creation parameters on the fanned-
// out URL, so a first ingest through the router creates shard streams with
// the client's parameters exactly as a direct ingest would.
func passthroughQuery(q url.Values) string {
	out := url.Values{}
	for _, key := range []string{"k", "z", "budget", "window", "windowDur"} {
		if v := q.Get(key); v != "" {
			out.Set(key, v)
		}
	}
	return out.Encode()
}

// decodeJSON strictly decodes a JSON request body with the same contract as
// the shard daemon: unknown fields rejected, trailing data rejected, a body
// over -max-body mapped to 413 body_too_large.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpapi.Error(w, http.StatusRequestEntityTooLarge, engine.CodeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		httpapi.Error(w, http.StatusBadRequest, engine.CodeInvalidJSON, fmt.Errorf("invalid JSON body: %w", err))
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		httpapi.Error(w, http.StatusBadRequest, engine.CodeInvalidJSON, errors.New("trailing data after JSON body"))
		return false
	}
	return true
}

// handleIngest decodes a client batch (JSON or binary, same negotiation as
// the shard daemon), partitions it per point, and fans the partitions out to
// the shards as binary frames — whatever encoding the client spoke, shards
// always receive the zero-copy flat frame.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var (
		points metric.Dataset
		ts     []int64
	)
	switch httpapi.NegotiateIngestMedia(r) {
	case "json":
		var req struct {
			Points     kcenter.Dataset `json:"points"`
			Timestamps []int64         `json:"timestamps,omitempty"`
		}
		_, decode := obs.StartSpan(r.Context(), "decode")
		decode.SetAttr("proto", "json")
		ok := decodeJSON(w, r, &req)
		decode.End()
		if !ok {
			return
		}
		_, validate := obs.StartSpan(r.Context(), "validate")
		err := engine.ValidateBatch(req.Points, req.Timestamps)
		validate.End()
		if err != nil {
			httpapi.EngineError(w, err)
			return
		}
		points, ts = req.Points, req.Timestamps
	case "binary":
		_, decode := obs.StartSpan(r.Context(), "decode")
		decode.SetAttr("proto", "binary")
		body, err := io.ReadAll(r.Body)
		if err != nil {
			decode.End()
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				httpapi.Error(w, http.StatusRequestEntityTooLarge, engine.CodeBodyTooLarge,
					fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
				return
			}
			httpapi.Error(w, http.StatusBadRequest, engine.CodeInvalidFrame, fmt.Errorf("reading request body: %w", err))
			return
		}
		f, tts, code, err := httpapi.DecodeBinaryIngest(body)
		decode.End()
		if err != nil {
			httpapi.Error(w, http.StatusBadRequest, code, err)
			return
		}
		points, ts = f.Dataset(), tts
	default:
		httpapi.Error(w, http.StatusUnsupportedMediaType, engine.CodeUnsupportedMedia,
			fmt.Errorf("unsupported Content-Type %q (use application/json or %s)",
				r.Header.Get("Content-Type"), httpapi.BinaryContentType))
		return
	}

	name := r.PathValue("name")
	s.remember(name)

	// Partition per point into per-shard flat frames.
	_, part := obs.StartSpan(r.Context(), "partition")
	n := len(s.shards)
	dim := len(points[0])
	parts := make([]*metric.Flat, n)
	partTS := make([][]int64, n)
	for i, p := range points {
		idx := shardIndex(p, n)
		if parts[idx] == nil {
			f, err := metric.NewFlat(dim, len(points)/n+1)
			if err != nil {
				part.End()
				httpapi.Error(w, http.StatusInternalServerError, engine.CodeInternal, err)
				return
			}
			parts[idx] = f
		}
		if err := parts[idx].Append(p); err != nil {
			part.End()
			httpapi.Error(w, http.StatusInternalServerError, engine.CodeInternal, err)
			return
		}
		if ts != nil {
			partTS[idx] = append(partTS[idx], ts[i])
		}
	}
	part.End()

	// Fan the partitions out concurrently; each send is its own child span.
	qs := passthroughQuery(r.URL.Query())
	path := "/streams/" + url.PathEscape(name) + "/points"
	if qs != "" {
		path += "?" + qs
	}
	type partAck struct {
		resp shardResp
		err  error
	}
	acks := make([]*partAck, n)
	var wg sync.WaitGroup
	for idx := range parts {
		if parts[idx] == nil {
			continue
		}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			sh := s.shards[idx]
			body := httpapi.EncodeBinaryIngest(nil, parts[idx], partTS[idx])
			_, span := obs.StartSpan(r.Context(), "shard.send")
			span.SetAttr("shard", sh.addr)
			span.SetAttr("points", strconv.Itoa(parts[idx].Len()))
			resp, err := s.sendShard(r.Context(), sh, http.MethodPost, path, httpapi.BinaryContentType, body, span)
			if err != nil {
				span.SetAttr("error", err.Error())
			} else {
				span.SetAttr("status", strconv.Itoa(resp.status))
			}
			span.End()
			acks[idx] = &partAck{resp: resp, err: err}
		}(idx)
	}
	wg.Wait()

	// A shard's 4xx means the request itself is wrong (bad params, window
	// mismatch); relay the first one verbatim. Exhausted retries mean the
	// cluster cannot take the batch right now: 502 shard_unavailable.
	var observed int64
	sent := 0
	for idx, ack := range acks {
		if ack == nil {
			continue
		}
		if ack.err != nil {
			httpapi.EngineError(w, &engine.Error{Code: engine.CodeShardUnavailable,
				Err: fmt.Errorf("shard %s: %w", s.shards[idx].addr, ack.err)})
			return
		}
		if ack.resp.status != http.StatusOK {
			relayShardError(w, ack.resp)
			return
		}
		var stats engine.StreamStats
		if err := json.Unmarshal(ack.resp.body, &stats); err != nil {
			httpapi.Error(w, http.StatusBadGateway, engine.CodeShardUnavailable,
				fmt.Errorf("shard %s: unparseable ack: %w", s.shards[idx].addr, err))
			return
		}
		observed += stats.Observed
		sent++
	}
	if m := s.m; m != nil {
		m.IngestBatches.Add(1)
		m.IngestPoints.Add(int64(len(points)))
	}
	httpapi.WriteJSON(w, http.StatusOK, ingestAck{
		Stream: name, Points: len(points), Shards: sent, Observed: observed,
	})
}

// ingestAck is the router's ingest acknowledgement: how the batch spread and
// the cluster-wide observed total summed from the shard acks.
type ingestAck struct {
	Stream   string `json:"stream"`
	Points   int    `json:"points"`
	Shards   int    `json:"shards"`
	Observed int64  `json:"observed"`
}

// relayShardError forwards a shard's non-200 response verbatim — same
// status, same body — so clients see exactly the error a direct ingest
// would have produced.
func relayShardError(w http.ResponseWriter, resp shardResp) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// shardResp is one shard's answer: status, body, and the trace ID its
// daemon assigned (so router spans can link to shard-side traces).
type shardResp struct {
	status  int
	body    []byte
	traceID string
}

// sendShard performs one logical shard request with bounded retries: network
// errors and 5xx responses are re-sent after an exponential backoff (50ms
// doubling, capped at 500ms) up to -shard-retries times; 2xx-4xx responses
// return immediately. When a span is supplied, the outbound request carries
// its W3C traceparent so the shard joins the router's trace, and the shard's
// X-Trace-ID lands on the span for cross-daemon correlation.
func (s *server) sendShard(ctx context.Context, sh *shard, method, path, contentType string, body []byte, span *obs.Span) (shardResp, error) {
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; ; attempt++ {
		if m := s.m; m != nil {
			m.ShardSends.With(sh.addr).Add(1)
		}
		resp, err := s.sendOnce(ctx, sh, method, path, contentType, body, span)
		if err == nil && resp.status < http.StatusInternalServerError {
			return resp, nil
		}
		if err == nil {
			err = fmt.Errorf("status %d: %s", resp.status, shardErrText(resp.body))
		}
		lastErr = err
		if attempt >= s.cfg.retries || ctx.Err() != nil {
			if m := s.m; m != nil {
				m.ShardFailures.With(sh.addr).Add(1)
			}
			return shardResp{}, lastErr
		}
		if m := s.m; m != nil {
			m.ShardRetries.With(sh.addr).Add(1)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return shardResp{}, ctx.Err()
		}
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// sendOnce is a single attempt of sendShard.
func (s *server) sendOnce(ctx context.Context, sh *shard, method, path, contentType string, body []byte, span *obs.Span) (shardResp, error) {
	reqCtx, cancel := context.WithTimeout(ctx, s.cfg.shardTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(reqCtx, method, sh.base+path, rd)
	if err != nil {
		return shardResp{}, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if span != nil {
		req.Header.Set("traceparent", span.Traceparent())
	}
	if reqID, ok := ctx.Value(requestIDKey{}).(string); ok && reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	start := time.Now()
	resp, err := s.client.Do(req)
	if m := s.m; m != nil {
		m.ShardSendDur.With(sh.addr).ObserveDuration(time.Since(start))
	}
	if err != nil {
		return shardResp{}, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.maxBody+1))
	if err != nil {
		return shardResp{}, err
	}
	if int64(len(respBody)) > s.cfg.maxBody {
		return shardResp{}, fmt.Errorf("response exceeds %d bytes", s.cfg.maxBody)
	}
	out := shardResp{status: resp.StatusCode, body: respBody, traceID: resp.Header.Get("X-Trace-ID")}
	if span != nil && out.traceID != "" {
		span.SetAttr("shardTraceId", out.traceID)
	}
	return out, nil
}

// shardErrText extracts the "error" message of a shard's JSON error body,
// falling back to a bounded raw excerpt.
func shardErrText(body []byte) string {
	var er struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return er.Error
	}
	if len(body) > 200 {
		body = body[:200]
	}
	return string(body)
}

// shardErrCode extracts the machine-readable code of a shard's JSON error
// body ("" when the body is not the daemon's error shape).
func shardErrCode(body []byte) string {
	var er struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(body, &er) == nil {
		return er.Code
	}
	return ""
}
