package router

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"coresetclustering/internal/obs"
	"coresetclustering/internal/server/httpapi"
)

// requestIDKey carries the request's X-Request-ID through the context so
// shard fan-outs re-send it: one client request is one ID across the whole
// cluster's logs.
type requestIDKey struct{}

// obsStartSpan opens a child span on a request's context (a no-op span when
// tracing is off — obs.StartSpan handles the nil case).
func obsStartSpan(r *http.Request, name string) (context.Context, *obs.Span) {
	return obs.StartSpan(r.Context(), name)
}

// statusWriter records the status code a handler sent.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// requestIDOK bounds what the router accepts as a caller-supplied
// X-Request-ID, mirroring the shard daemon's rule.
func requestIDOK(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '=' {
			return false
		}
	}
	return true
}

// withObs is the router's request instrumentation: X-Request-ID assignment
// and propagation (into the context, for shard fan-outs), a root span that
// honors an inbound traceparent and is echoed as X-Trace-ID, per-route
// counters and latency histograms, and slow-request warn logs — the same
// shape as the shard daemon's middleware, on kcenterd_router_* series.
func (s *server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if !requestIDOK(reqID) {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		ctx := context.WithValue(r.Context(), requestIDKey{}, reqID)
		var root *obs.Span
		if s.tracer != nil {
			ctx, root = s.tracer.StartRoot(ctx, r.Method, r.Header.Get("traceparent"))
			w.Header().Set("X-Trace-ID", root.TraceID())
		}
		r = r.WithContext(ctx)
		m := s.m
		m.HTTPInFlight.Add(1)
		defer m.HTTPInFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		slow := s.cfg.slowReq > 0 && elapsed >= s.cfg.slowReq
		if root != nil {
			if strings.Contains(route, " ") {
				root.SetName(route)
			} else {
				root.SetName(r.Method + " " + route)
			}
			root.SetAttr("status", strconv.Itoa(status))
			root.SetAttr("requestId", reqID)
			if status >= http.StatusInternalServerError {
				root.Force("error")
			}
			if slow {
				root.Force("slow")
			}
			root.End()
		}
		m.HTTPRequests.With(route, r.Method, fmt.Sprintf("%d", status)).Add(1)
		m.HTTPDuration.With(route).ObserveDuration(elapsed)
		if slow {
			m.HTTPSlow.Add(1)
			s.logger.Warn("slow request",
				"requestId", reqID, "traceId", root.TraceID(),
				"method", r.Method, "route", route,
				"status", status, "duration", elapsed,
				"stages", root.Breakdown())
		} else if s.logger.Enabled(obs.LevelDebug) {
			s.logger.Debug("request",
				"requestId", reqID, "method", r.Method, "route", route,
				"status", status, "duration", elapsed)
		}
	})
}

// probeLoop keeps each shard's health state current: one probe round
// immediately at startup, then one per -probe-interval.
func (s *server) probeLoop() {
	t := time.NewTicker(s.cfg.probeInterval)
	defer t.Stop()
	for {
		s.probeOnce()
		select {
		case <-s.closed:
			return
		case <-t.C:
		}
	}
}

// probeOnce probes every shard's /healthz concurrently. A 200 is "ok", any
// other answer is "degraded" (the shard is up but has set streams aside),
// and a transport failure is "unreachable".
func (s *server) probeOnce() {
	timeout := s.cfg.probeInterval
	if timeout <= 0 || timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	done := make(chan struct{})
	for _, sh := range s.shards {
		go func(sh *shard) {
			defer func() { done <- struct{}{} }()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.base+"/healthz", nil)
			if err != nil {
				sh.setState("unreachable: " + err.Error())
				return
			}
			resp, err := s.client.Do(req)
			if err != nil {
				sh.setState("unreachable: " + err.Error())
				return
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				sh.setState("ok")
			} else {
				sh.setState(fmt.Sprintf("degraded (status %d)", resp.StatusCode))
			}
		}(sh)
	}
	for range s.shards {
		<-done
	}
}

// handleHealthz reports the router's view of the cluster: ok only when every
// shard's latest probe succeeded; otherwise 503 with the per-shard states,
// so an orchestrator sees exactly which backend is the problem. Before the
// first probe completes (or with probing disabled) shards report "unprobed"
// and count as healthy — the router cannot claim an outage it has not seen.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	shards := make(map[string]string, len(s.shards))
	ok := true
	for _, sh := range s.shards {
		st := sh.getState()
		shards[sh.addr] = st
		if st != "ok" && st != "unprobed" {
			ok = false
		}
	}
	status, state := http.StatusOK, "ok"
	if !ok {
		status, state = http.StatusServiceUnavailable, "degraded"
	}
	writeJSON(w, status, map[string]any{"status": state, "shards": shards})
}

// handleMetrics serves the router's Prometheus exposition: the lifetime
// registry first, then scrape-time series (uptime, shard census and health,
// known streams) rendered through the same formatter.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.m
	if r.Method == http.MethodHead {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		return
	}
	scrape := obs.NewRegistry()
	scrape.Gauge("kcenterd_router_uptime_seconds",
		"Seconds since the router started.").Set(time.Since(m.Start).Seconds())
	scrape.Gauge("kcenterd_router_shards",
		"Shards the router fans out to.").Set(float64(len(s.shards)))
	scrape.Gauge("kcenterd_router_streams_known",
		"Stream names the router has seen (and keeps merged views for).").Set(float64(len(s.knownStreams())))
	healthy := scrape.GaugeVec("kcenterd_router_shard_healthy",
		"1 when the shard's latest health probe succeeded, 0 otherwise.", "shard")
	for _, sh := range s.shards {
		st := sh.getState()
		v := 0.0
		if st == "ok" || st == "unprobed" {
			v = 1
		}
		healthy.With(sh.addr).Set(v)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := m.Reg.WritePrometheus(w); err != nil {
		return // client went away
	}
	if err := scrape.WritePrometheus(w); err != nil && s.logger.Enabled(obs.LevelDebug) {
		s.logger.Debug("metrics scrape write failed", "error", err)
	}
}

// writeJSON mirrors the shard daemon's response envelope.
func writeJSON(w http.ResponseWriter, status int, v any) {
	httpapi.WriteJSON(w, status, v)
}
