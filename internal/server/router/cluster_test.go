package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	kcenter "coresetclustering"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/server/httpapi"
)

// TestMain doubles as the shard-daemon entry point of the cluster tests:
// with KCENTERD_CHILD=1 the test binary becomes a real shard daemon (the
// exported httpapi.Run, the exact code -role=shard dispatches to), so a
// SIGKILL hits an actual process with real OS buffers and fsyncs.
func TestMain(m *testing.M) {
	if os.Getenv("KCENTERD_CHILD") == "1" {
		if err := httpapi.Run(context.Background(), strings.Fields(os.Getenv("KCENTERD_ARGS")), os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "kcenterd-child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// shardProc is one shard daemon running as a child process.
type shardProc struct {
	addr string
	args string // KCENTERD_ARGS, reused to restart the same shard
	cmd  *exec.Cmd
	log  *bytes.Buffer
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startShard launches a shard daemon child on a fresh port. extraArgs is
// appended to the base flag set (e.g. "-persist-dir <dir> -fsync always").
func startShard(t *testing.T, extraArgs string) *shardProc {
	t.Helper()
	sp := &shardProc{addr: freeAddr(t)}
	sp.args = "-addr " + sp.addr + " -k 4 -budget 64"
	if extraArgs != "" {
		sp.args += " " + extraArgs
	}
	launchShard(t, sp)
	t.Cleanup(func() { stopShard(sp) })
	return sp
}

// launchShard (re)starts the child with the shard's recorded args — the
// restart path of the kill/rejoin test.
func launchShard(t *testing.T, sp *shardProc) {
	t.Helper()
	sp.log = &bytes.Buffer{}
	sp.cmd = exec.Command(os.Args[0])
	sp.cmd.Env = append(os.Environ(), "KCENTERD_CHILD=1", "KCENTERD_ARGS="+sp.args)
	sp.cmd.Stderr = sp.log
	if err := sp.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitShardHealthy(t, sp)
}

func stopShard(sp *shardProc) {
	if sp.cmd != nil && sp.cmd.Process != nil {
		sp.cmd.Process.Kill()
		sp.cmd.Wait()
		sp.cmd = nil
	}
}

func waitShardHealthy(t *testing.T, sp *shardProc) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + sp.addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("shard %s never became healthy\nlog:\n%s", sp.addr, sp.log.String())
}

// newTestRouter assembles an in-process router over the given shards with a
// tiny merge interval so tests observe fresh views without sleeping.
func newTestRouter(t *testing.T, shards []*shardProc) (*httptest.Server, *server) {
	t.Helper()
	addrs := make([]string, len(shards))
	for i, sp := range shards {
		addrs[i] = sp.addr
	}
	srv := newServer(config{
		shards:        addrs,
		mergeInterval: 50 * time.Millisecond,
		shardTimeout:  5 * time.Second,
		retries:       2,
	})
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() { ts.Close(); close(srv.closed) })
	return ts, srv
}

// clusteredPoints builds a deterministic dataset of tight Gaussian blobs, so
// any correct k-center run finds a small radius and the (2+eps) bound bites.
func clusteredPoints(n, dim int, seed int64) kcenter.Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]metric.Point, 4)
	for i := range centers {
		c := make(metric.Point, dim)
		for d := range c {
			c[d] = float64(i*100) + rng.Float64()*10
		}
		centers[i] = c
	}
	ds := make(kcenter.Dataset, n)
	for i := range ds {
		c := centers[i%len(centers)]
		p := make(metric.Point, dim)
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()
		}
		ds[i] = p
	}
	return ds
}

func postJSON(t *testing.T, url string, payload any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, body)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	return resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, body)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	return resp
}

func errorBody(t *testing.T, resp *http.Response) (code, msg string) {
	t.Helper()
	var er struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	body, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body is not the daemon shape: %v\nbody: %s", err, body)
	}
	return er.Code, er.Error
}

// euclid is the plain L2 distance used to score merged centers.
func euclid(a, b metric.Point) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// coverRadius is the k-center objective of centers over ds.
func coverRadius(ds kcenter.Dataset, centers kcenter.Dataset) float64 {
	var radius float64
	for _, p := range ds {
		best := math.Inf(1)
		for _, c := range centers {
			if d := euclid(p, c); d < best {
				best = d
			}
		}
		if best > radius {
			radius = best
		}
	}
	return radius
}

// TestShardIndexStableAndSpread pins the partition contract: identical
// coordinates always land on the same shard, and a varied dataset does not
// collapse onto one shard.
func TestShardIndexStableAndSpread(t *testing.T) {
	ds := clusteredPoints(600, 3, 7)
	counts := make([]int, 3)
	for _, p := range ds {
		idx := shardIndex(p, 3)
		if again := shardIndex(append(metric.Point{}, p...), 3); again != idx {
			t.Fatalf("same coordinates routed to shard %d then %d", idx, again)
		}
		counts[idx]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no points: %v", i, counts)
		}
	}
}

// TestClusterMergedRadius is the acceptance test of the router's composed
// view: points ingested through the router (mixed JSON and binary batches)
// spread over three real shard daemons, and the centers extracted from the
// merged global sketch must cover the full dataset within the composable-
// coreset bound (2+eps) of the sequential Gonzalez radius.
func TestClusterMergedRadius(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	shards := []*shardProc{startShard(t, ""), startShard(t, ""), startShard(t, "")}
	ts, _ := newTestRouter(t, shards)

	const k, dim, n = 4, 3, 600
	ds := clusteredPoints(n, dim, 42)

	// Alternate encodings batch by batch: protocol choice must not affect
	// routing or the merged result.
	const batchSize = 100
	for off := 0; off < n; off += batchSize {
		chunk := ds[off : off+batchSize]
		var ack ingestAck
		if off/batchSize%2 == 0 {
			resp := postJSON(t, ts.URL+"/streams/s/points?k=4&budget=64",
				map[string]any{"points": chunk}, &ack)
			if resp.StatusCode != http.StatusOK {
				code, msg := errorBody(t, resp)
				t.Fatalf("JSON ingest: status %d code %q: %s", resp.StatusCode, code, msg)
			}
		} else {
			f, err := metric.NewFlat(dim, len(chunk))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range chunk {
				if err := f.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			body := httpapi.EncodeBinaryIngest(nil, f, nil)
			resp, err := http.Post(ts.URL+"/streams/s/points?k=4&budget=64",
				httpapi.BinaryContentType, bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("binary ingest: status %d body %s", resp.StatusCode, b)
			}
			if err := json.Unmarshal(b, &ack); err != nil {
				t.Fatal(err)
			}
		}
		if ack.Points != batchSize {
			t.Fatalf("ack points %d, want %d", ack.Points, batchSize)
		}
	}

	// The merged view must account for every point exactly once.
	var centers centersResponse
	resp := getJSON(t, ts.URL+"/streams/s/centers?refresh=1", &centers)
	if resp.StatusCode != http.StatusOK {
		code, msg := errorBody(t, resp)
		t.Fatalf("centers: status %d code %q: %s", resp.StatusCode, code, msg)
	}
	if centers.Observed != n {
		t.Fatalf("merged observed %d, want %d", centers.Observed, n)
	}
	if centers.Shards != len(shards) {
		t.Fatalf("merged %d shard snapshots, want %d", centers.Shards, len(shards))
	}
	if len(centers.Centers) == 0 || len(centers.Centers) > k {
		t.Fatalf("merged view returned %d centers, want 1..%d", len(centers.Centers), k)
	}

	// Quality: within (2+eps) of the sequential baseline on the same input.
	seq, err := kcenter.Gonzalez(ds, k, kcenter.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	merged := coverRadius(ds, centers.Centers)
	bound := (2 + 1.0) * seq.Radius
	if merged > bound {
		t.Fatalf("merged radius %.4f exceeds (2+eps) bound %.4f (sequential %.4f)",
			merged, bound, seq.Radius)
	}

	// The router snapshot is itself a restorable sketch: restoring it on a
	// shard daemon materialises the cluster-wide state.
	snapResp, err := http.Post(ts.URL+"/streams/s/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(snapResp.Body)
	snapResp.Body.Close()
	if snapResp.StatusCode != http.StatusOK || len(blob) == 0 {
		t.Fatalf("router snapshot: status %d, %d bytes", snapResp.StatusCode, len(blob))
	}
	restoreResp, err := http.Post("http://"+shards[0].addr+"/streams/global/restore",
		"application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(restoreResp.Body)
	restoreResp.Body.Close()
	if restoreResp.StatusCode != http.StatusOK {
		t.Fatalf("restoring the merged snapshot on a shard: status %d body %s", restoreResp.StatusCode, rb)
	}
}

// TestClusterShardKillRejoin kills one durable shard with SIGKILL mid-run:
// the router's health must degrade while the shard is down, the restarted
// shard must recover its acknowledged state from its WAL, and the merged
// view must again account for every acknowledged point.
func TestClusterShardKillRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	shards := make([]*shardProc, 3)
	for i := range shards {
		shards[i] = startShard(t, "-persist-dir "+dirs[i]+" -fsync always")
	}
	ts, srv := newTestRouter(t, shards)

	const n, dim = 300, 3
	ds := clusteredPoints(n, dim, 99)
	var acked int64
	for off := 0; off < n; off += 50 {
		var ack ingestAck
		resp := postJSON(t, ts.URL+"/streams/s/points?k=4&budget=64",
			map[string]any{"points": ds[off : off+50]}, &ack)
		if resp.StatusCode != http.StatusOK {
			code, msg := errorBody(t, resp)
			t.Fatalf("ingest: status %d code %q: %s", resp.StatusCode, code, msg)
		}
		acked += 50
	}

	// SIGKILL one shard. No shutdown path runs: anything not in its WAL is
	// gone, and everything acknowledged must not be.
	victim := shards[1]
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.cmd.Wait()
	victim.cmd = nil

	// The router notices: /healthz degrades to 503 naming the dead shard.
	srv.probeOnce()
	resp := getJSON(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a dead shard: status %d, want 503", resp.StatusCode)
	}

	// A global view cannot be composed while a shard is missing.
	resp = getJSON(t, ts.URL+"/streams/s/centers?refresh=1", nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("centers with a dead shard: status %d, want 502", resp.StatusCode)
	}
	code, _ := errorBody(t, resp)
	if code != "shard_unavailable" {
		t.Fatalf("centers with a dead shard: code %q, want shard_unavailable", code)
	}

	// Restart the shard over the same directory: WAL catch-up.
	launchShard(t, victim)
	srv.probeOnce()
	resp = getJSON(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("healthz after rejoin: status %d body %s", resp.StatusCode, body)
	}

	// The rejoined shard contributes its recovered state to the merge.
	var centers centersResponse
	resp = getJSON(t, ts.URL+"/streams/s/centers?refresh=1", &centers)
	if resp.StatusCode != http.StatusOK {
		code, msg := errorBody(t, resp)
		t.Fatalf("centers after rejoin: status %d code %q: %s", resp.StatusCode, code, msg)
	}
	if centers.Observed != acked {
		t.Fatalf("merged observed %d after rejoin, want %d (acknowledged)", centers.Observed, acked)
	}
	if centers.Shards != 3 {
		t.Fatalf("merged %d snapshots after rejoin, want 3", centers.Shards)
	}
}

// TestRouterWindowMergeIncompatible pins the typed merge error end to end:
// window sketches refuse to merge with kcenter.ErrMergeIncompatible, and the
// router surfaces that as 502 shard_incompatible — a cluster state problem,
// distinct from 400 bad_sketch (malformed bytes).
func TestRouterWindowMergeIncompatible(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	shards := []*shardProc{startShard(t, ""), startShard(t, "")}
	ts, _ := newTestRouter(t, shards)

	ds := clusteredPoints(200, 2, 5)
	var ack ingestAck
	resp := postJSON(t, ts.URL+"/streams/w/points?window=50", map[string]any{"points": ds}, &ack)
	if resp.StatusCode != http.StatusOK {
		code, msg := errorBody(t, resp)
		t.Fatalf("window ingest: status %d code %q: %s", resp.StatusCode, code, msg)
	}
	if ack.Shards < 2 {
		t.Fatalf("window batch reached %d shards, want 2 (cannot exercise the merge)", ack.Shards)
	}

	resp = getJSON(t, ts.URL+"/streams/w/centers?refresh=1", nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("merging window sketches: status %d, want 502", resp.StatusCode)
	}
	if code, _ := errorBody(t, resp); code != "shard_incompatible" {
		t.Fatalf("merging window sketches: code %q, want shard_incompatible", code)
	}
}

// TestRouterValidationAndPassthrough covers the router's own front-door
// validation (bad batches are rejected before any fan-out) and the relay of
// shard-side outcomes (unknown streams are 404 cluster-wide).
func TestRouterValidationAndPassthrough(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	shards := []*shardProc{startShard(t, ""), startShard(t, "")}
	ts, _ := newTestRouter(t, shards)

	// NaN coordinates die at the router: no shard sees the batch.
	resp := postJSON(t, ts.URL+"/streams/v/points",
		map[string]any{"points": []any{[]any{1.0, "NaN"}}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN batch: status %d, want 400", resp.StatusCode)
	}

	// Unknown stream: 404 with the daemon's code, from every read endpoint.
	for _, path := range []string{"/streams/nope/centers", "/streams/nope/stats"} {
		resp := getJSON(t, ts.URL+path, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
		if code, _ := errorBody(t, resp); code != "unknown_stream" {
			t.Fatalf("%s: code %q, want unknown_stream", path, code)
		}
	}

	// A stats read after ingest aggregates across shards.
	ds := clusteredPoints(120, 2, 11)
	postJSON(t, ts.URL+"/streams/v/points", map[string]any{"points": ds}, nil)
	var stats statsResponse
	resp = getJSON(t, ts.URL+"/streams/v/stats", &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	if stats.Observed != int64(len(ds)) {
		t.Fatalf("aggregated observed %d, want %d", stats.Observed, len(ds))
	}

	// The listing unions shard listings.
	var list struct {
		Streams []string `json:"streams"`
	}
	resp = getJSON(t, ts.URL+"/streams", &list)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	found := false
	for _, name := range list.Streams {
		if name == "v" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stream v missing from cluster listing %v", list.Streams)
	}
}
