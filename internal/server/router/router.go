// Package router implements the kcenterd -role=router coordinator: a
// stateless front that hash-partitions ingest batches across a fixed set of
// shard daemons and serves a cluster-wide view by periodically pulling shard
// snapshots and merging them — the paper's round-2 composition over the
// network. The router holds no sketch state of its own beyond the merged-view
// cache; every durable byte lives on the shards, so a router restart loses
// nothing.
//
// Partitioning is stable per point: the FNV-1a hash of a point's coordinate
// bits picks its shard, so re-sending the same point routes identically
// regardless of batch boundaries or ingest order. Cross-shard batches are
// not atomic — each shard acknowledges its partition independently, and a
// partition that exhausts its retries fails the request even though sibling
// partitions may already be applied.
package router

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"coresetclustering/internal/obs"
	"coresetclustering/internal/server/engine"
	"coresetclustering/internal/server/httpapi"
)

// config carries the router's knobs; fields mirror the flag set.
type config struct {
	shards        []string      // shard addresses, order fixed for the process lifetime
	mergeInterval time.Duration // merged-view validity + background refresh period
	probeInterval time.Duration // shard health probe period (0 disables probing)
	shardTimeout  time.Duration // per-attempt bound on one shard request
	retries       int           // re-sends after a failed shard request (network error or 5xx)
	maxBody       int64         // inbound request-body cap in bytes
	slowReq       time.Duration // slow-request log threshold (0 = disabled)
	traceSample   int           // head-sample 1 in N requests (0 = default 16)
	traceBuffer   int           // retained completed traces (0 = default 256, <0 = off)
}

// shard is one backend daemon: its base URL plus the health state the probe
// loop maintains ("ok", "degraded", "unreachable: ...", or "unprobed").
type shard struct {
	addr string // as configured, the metrics/health label
	base string // http://host:port

	mu    sync.Mutex
	state string
}

func (sh *shard) setState(s string) { sh.mu.Lock(); sh.state = s; sh.mu.Unlock() }
func (sh *shard) getState() string  { sh.mu.Lock(); defer sh.mu.Unlock(); return sh.state }

// server is the router: the shard set, the merge engine (a stateless
// engine.Engine used only for MergeSketches and its typed errors), the
// merged-view cache and the observability plumbing.
type server struct {
	cfg    config
	shards []*shard
	eng    *engine.Engine // merge-only; hosts no streams
	client *http.Client
	logger *obs.Logger
	tracer *obs.Tracer
	m      *metrics

	mu     sync.Mutex
	views  map[string]*mergedView // per-stream cached global view
	known  map[string]struct{}    // stream names seen via ingest or query
	closed chan struct{}          // closes on shutdown; stops background loops
}

// metrics is the router's Prometheus registry: every series is prefixed
// kcenterd_router_ so a shared scrape config can tell roles apart.
type metrics struct {
	Reg   *obs.Registry
	Start time.Time

	HTTPRequests *obs.CounterVec // route, method, status
	HTTPDuration *obs.HistogramVec
	HTTPInFlight *obs.Gauge
	HTTPSlow     *obs.Counter

	IngestBatches *obs.Counter
	IngestPoints  *obs.Counter

	ShardSends    *obs.CounterVec // shard
	ShardRetries  *obs.CounterVec // shard
	ShardFailures *obs.CounterVec // shard
	ShardSendDur  *obs.HistogramVec

	Merges         *obs.Counter
	MergeFailures  *obs.Counter
	MergeCacheHits *obs.Counter
}

func newMetrics() *metrics {
	r := obs.NewRegistry()
	return &metrics{
		Reg:   r,
		Start: time.Now(),

		HTTPRequests: r.CounterVec("kcenterd_router_http_requests_total",
			"HTTP requests served by the router, by route pattern, method and status code.",
			"route", "method", "status"),
		HTTPDuration: r.HistogramVec("kcenterd_router_http_request_duration_seconds",
			"Router HTTP request latency by route pattern.",
			obs.DefDurationBuckets, "route"),
		HTTPInFlight: r.Gauge("kcenterd_router_http_in_flight_requests",
			"Requests currently being handled by the router."),
		HTTPSlow: r.Counter("kcenterd_router_http_slow_requests_total",
			"Router requests slower than the -slow-request threshold."),

		IngestBatches: r.Counter("kcenterd_router_ingest_batches_total",
			"Client ingest batches accepted and fanned out."),
		IngestPoints: r.Counter("kcenterd_router_ingest_points_total",
			"Points routed to shards across all streams."),

		ShardSends: r.CounterVec("kcenterd_router_shard_sends_total",
			"Requests sent to each shard (including retries).", "shard"),
		ShardRetries: r.CounterVec("kcenterd_router_shard_retries_total",
			"Shard requests re-sent after a network error or 5xx.", "shard"),
		ShardFailures: r.CounterVec("kcenterd_router_shard_send_failures_total",
			"Shard requests that failed after exhausting retries.", "shard"),
		ShardSendDur: r.HistogramVec("kcenterd_router_shard_send_duration_seconds",
			"Latency of one shard request (per attempt).",
			obs.DefDurationBuckets, "shard"),

		Merges: r.Counter("kcenterd_router_merges_total",
			"Merged-view refreshes (shard snapshot pulls + MergeSketches)."),
		MergeFailures: r.Counter("kcenterd_router_merge_failures_total",
			"Merged-view refreshes that failed."),
		MergeCacheHits: r.Counter("kcenterd_router_merge_cache_hits_total",
			"Global-view queries answered from the cached merge."),
	}
}

func newServer(cfg config) *server {
	if cfg.mergeInterval <= 0 {
		cfg.mergeInterval = 2 * time.Second
	}
	if cfg.shardTimeout <= 0 {
		cfg.shardTimeout = 10 * time.Second
	}
	if cfg.retries < 0 {
		cfg.retries = 0
	}
	if cfg.maxBody <= 0 {
		cfg.maxBody = 64 << 20
	}
	if cfg.traceSample == 0 {
		cfg.traceSample = 16
	}
	if cfg.traceBuffer == 0 {
		cfg.traceBuffer = 256
	}
	s := &server{
		cfg:    cfg,
		eng:    engine.New(engine.Config{}),
		client: &http.Client{},
		logger: obs.NewLogger(io.Discard, obs.LevelInfo),
		m:      newMetrics(),
		views:  make(map[string]*mergedView),
		known:  make(map[string]struct{}),
		closed: make(chan struct{}),
	}
	if cfg.traceBuffer > 0 {
		s.tracer = obs.NewTracer(cfg.traceSample, cfg.traceBuffer)
	}
	for _, addr := range cfg.shards {
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		s.shards = append(s.shards, &shard{
			addr: addr, base: strings.TrimRight(base, "/"), state: "unprobed",
		})
	}
	return s
}

// Run is the router role's entry point, handed the post--role argument list
// by cmd/kcenterd.
func Run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kcenterd -role=router", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		shardsFlag    = fs.String("shards", "", "comma-separated shard daemon addresses (required)")
		mergeInterval = fs.Duration("merge-interval", 2*time.Second, "merged global view validity and background refresh period")
		probeInterval = fs.Duration("probe-interval", time.Second, "shard health probe period (0 disables probing)")
		shardTimeout  = fs.Duration("shard-timeout", 10*time.Second, "per-attempt timeout for one shard request")
		retries       = fs.Int("shard-retries", 2, "re-sends after a failed shard request (network error or 5xx)")
		maxBody       = fs.Int64("max-body", 64<<20, "request body size cap in bytes")
		logLevel      = fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
		slowReq       = fs.Duration("slow-request", time.Second, "log requests slower than this at warn level (0 disables)")
		debugAddr     = fs.String("debug-addr", "", "separate listen address for pprof, expvar and /debug/traces (empty = disabled)")
		traceSample   = fs.Int("trace-sample", 16, "head-sample 1 in N requests for tracing (slow and errored requests are always captured)")
		traceBuffer   = fs.Int("trace-buffer", 256, "completed traces retained for /debug/traces (0 disables tracing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var shards []string
	for _, a := range strings.Split(*shardsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			shards = append(shards, a)
		}
	}
	if len(shards) == 0 {
		return fmt.Errorf("-shards is required for -role=router")
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	if *maxBody <= 0 {
		return fmt.Errorf("-max-body must be positive, got %d", *maxBody)
	}
	if *slowReq < 0 {
		return fmt.Errorf("-slow-request must be non-negative, got %v", *slowReq)
	}
	if *traceSample < 1 {
		return fmt.Errorf("-trace-sample must be at least 1, got %d", *traceSample)
	}
	if *traceBuffer < 0 {
		return fmt.Errorf("-trace-buffer must be non-negative, got %d", *traceBuffer)
	}
	buffer := *traceBuffer
	if buffer == 0 {
		buffer = -1 // flag 0 means "disabled"; config 0 means "default"
	}
	srv := newServer(config{
		shards:        shards,
		mergeInterval: *mergeInterval,
		probeInterval: *probeInterval,
		shardTimeout:  *shardTimeout,
		retries:       *retries,
		maxBody:       *maxBody,
		slowReq:       *slowReq,
		traceSample:   *traceSample,
		traceBuffer:   buffer,
	})
	srv.logger = obs.NewLogger(out, level)
	defer close(srv.closed)

	if srv.cfg.probeInterval > 0 {
		go srv.probeLoop()
	}
	go srv.refreshLoop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.routes(), ReadHeaderTimeout: 10 * time.Second}

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		debugSrv = &http.Server{Handler: httpapi.DebugRoutes(srv.tracer), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				srv.logger.Error("debug server", "err", err)
			}
		}()
		srv.logger.Info("debug server listening", "addr", dln.Addr())
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	srv.logger.Info("router listening", "addr", ln.Addr(),
		"shards", len(srv.shards), "mergeInterval", srv.cfg.mergeInterval)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	srv.logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutdownCtx); err != nil {
			srv.logger.Error("debug server shutdown", "err", err)
		}
	}
	return httpSrv.Shutdown(shutdownCtx)
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /streams", s.handleList)
	mux.HandleFunc("GET /streams/{name}/stats", s.handleStats)
	mux.HandleFunc("POST /streams/{name}/points", s.handleIngest)
	mux.HandleFunc("POST /streams/{name}/ingest", s.handleIngest)
	mux.HandleFunc("POST /streams/{name}/advance", s.handleAdvance)
	mux.HandleFunc("GET /streams/{name}/centers", s.handleCenters)
	mux.HandleFunc("POST /streams/{name}/snapshot", s.handleSnapshot)
	return http.MaxBytesHandler(s.withObs(mux), s.cfg.maxBody)
}

// remember records a stream name for the background merge refresher.
func (s *server) remember(name string) {
	s.mu.Lock()
	s.known[name] = struct{}{}
	s.mu.Unlock()
}

// knownStreams snapshots the names the refresher keeps fresh.
func (s *server) knownStreams() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.known))
	for n := range s.known {
		names = append(names, n)
	}
	return names
}
