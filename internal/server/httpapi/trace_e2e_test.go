package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coresetclustering/internal/obs"
	"coresetclustering/internal/persist"
)

// tracedDaemon is a durable in-process daemon with tracing wired exactly as
// run() wires it: the store's hooks come from srv.eng.PersistHooks() so the
// group-commit wait is attributed, and the debug mux carries the tracer.
type tracedDaemon struct {
	srv   *server
	http  *httptest.Server
	debug *httptest.Server
	log   *lockedBuf
}

func newTracedDaemon(t *testing.T, cfg config) *tracedDaemon {
	t.Helper()
	srv := newServer(cfg)
	buf := &lockedBuf{}
	srv.eng.Logger = obs.NewLogger(buf, obs.LevelInfo)
	store, err := persist.Open(t.TempDir(), persist.Options{
		Fsync:       persist.FsyncAlways,
		GroupCommit: true,
		Hooks:       srv.eng.PersistHooks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv.eng.Store = store
	d := &tracedDaemon{
		srv:   srv,
		http:  httptest.NewServer(srv.routes()),
		debug: httptest.NewServer(debugRoutes(srv.eng.Tracer)),
		log:   buf,
	}
	t.Cleanup(d.http.Close)
	t.Cleanup(d.debug.Close)
	return d
}

// fetchDetail pulls one trace's span tree from the debug surface.
func (d *tracedDaemon) fetchDetail(t *testing.T, id string) (obs.TraceDetail, int) {
	t.Helper()
	resp, err := http.Get(d.debug.URL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var detail obs.TraceDetail
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
			t.Fatalf("decoding trace detail: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return detail, resp.StatusCode
}

// TestTracedRequestEndToEnd is the acceptance path for the tracing layer: a
// slow ingest against a real durable daemon (group-commit fsync=always) must
// produce a warn log carrying a trace ID whose /debug/traces/{id} span tree
// holds the decode, journal (with the group-commit wait), apply and publish
// stages, with stage durations summing to within the root span.
func TestTracedRequestEndToEnd(t *testing.T) {
	// Sampling is effectively off (1 in 2^30): retention must come from the
	// forced slow capture and the caller's sampled traceparent flag alone.
	d := newTracedDaemon(t, config{k: 2, budget: 16, slowReq: time.Nanosecond, traceSample: 1 << 30})

	const caller = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	const callerID = "0af7651916cd43dd8448eb211c80319c"
	req, err := http.NewRequest("POST", d.http.URL+"/streams/e2e/points",
		strings.NewReader(`{"points":[[1,2],[3,4],[5,6]]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", caller)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-ID"); got != callerID {
		t.Fatalf("X-Trace-ID %q, want the caller's trace ID %q", got, callerID)
	}

	// The slow-request warn log answers "where did the time go" on its own:
	// trace ID plus the per-stage breakdown.
	logLine := d.log.String()
	if !strings.Contains(logLine, `msg="slow request"`) || !strings.Contains(logLine, "traceId="+callerID) {
		t.Fatalf("slow log %q missing the trace ID", logLine)
	}
	if !strings.Contains(logLine, "stages=") || !strings.Contains(logLine, "journal=") {
		t.Fatalf("slow log %q missing the stage breakdown", logLine)
	}

	detail, status := d.fetchDetail(t, callerID)
	if status != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s: status %d", callerID, status)
	}
	if detail.RemoteParent != "b7ad6b7169203331" {
		t.Errorf("remote parent %q, want the caller's span ID", detail.RemoteParent)
	}
	if detail.Name != "POST /streams/{name}/points" {
		t.Errorf("trace name %q, want the routed pattern", detail.Name)
	}
	if detail.Root == nil {
		t.Fatal("trace detail has no span tree")
	}
	rootDur, err := time.ParseDuration(detail.Root.Duration)
	if err != nil || rootDur <= 0 {
		t.Fatalf("root duration %q unparseable or non-positive", detail.Root.Duration)
	}
	stages := make(map[string]time.Duration, len(detail.Root.Children))
	var sum time.Duration
	for _, child := range detail.Root.Children {
		dur, err := time.ParseDuration(child.Duration)
		if err != nil {
			t.Fatalf("stage %s duration %q: %v", child.Name, child.Duration, err)
		}
		stages[child.Name] = dur
		sum += dur
	}
	for _, want := range []string{"decode", "validate", "journal", "wal.wait", "apply", "publish"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("span tree stages %v missing %q", stages, want)
		}
	}
	if sum > rootDur {
		t.Errorf("stage durations sum to %v, beyond the root span %v", sum, rootDur)
	}

	// The list endpoint finds the trace by route substring and duration.
	resp, err = http.Get(d.debug.URL + "/debug/traces?route=points&minDur=1ns")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, tr := range list.Traces {
		if tr.ID == callerID {
			found = true
			if tr.Forced == "" {
				t.Error("trace retained without a forced/sampled mark")
			}
		}
	}
	if !found {
		t.Fatalf("/debug/traces?route=points does not list trace %s: %+v", callerID, list.Traces)
	}
	if _, status := d.fetchDetail(t, strings.Repeat("0", 32)); status != http.StatusNotFound {
		t.Errorf("unknown trace ID: status %d, want 404", status)
	}
}

// TestTraceparentMalformedGetsFreshTrace: a malformed inbound header must not
// be echoed back — the daemon answers with a fresh local trace ID.
func TestTraceparentMalformedGetsFreshTrace(t *testing.T) {
	d := newTracedDaemon(t, config{k: 2, budget: 16, slowReq: time.Nanosecond, traceSample: 1 << 30})
	req, err := http.NewRequest("POST", d.http.URL+"/streams/m/points",
		strings.NewReader(`{"points":[[1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-ZZZ7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-ID")
	if len(id) != 32 || strings.Contains(id, "Z") {
		t.Fatalf("X-Trace-ID %q is not a fresh 32-hex trace ID", id)
	}
	if _, status := d.fetchDetail(t, id); status != http.StatusOK {
		t.Fatalf("fresh trace %s not retrievable: status %d", id, status)
	}
}

// TestUnsampledFastRequestNotRetained: with sampling effectively off and no
// slow threshold, an ordinary request still gets a trace ID on the wire but
// the trace is not kept — recording is per-request, retention is not.
func TestUnsampledFastRequestNotRetained(t *testing.T) {
	d := newTracedDaemon(t, config{k: 2, budget: 16, traceSample: 1 << 30})
	// Burn sampler slot 0, which is always sampled.
	resp := doJSON(t, "POST", d.http.URL+"/streams/warm/points", batch(blobs(2, 2, 1)), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d", resp.StatusCode)
	}
	resp = doJSON(t, "POST", d.http.URL+"/streams/warm/points", batch(blobs(2, 2, 2)), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-ID")
	if len(id) != 32 {
		t.Fatalf("X-Trace-ID %q missing on an unsampled request", id)
	}
	if _, status := d.fetchDetail(t, id); status != http.StatusNotFound {
		t.Errorf("unsampled fast trace %s was retained: status %d, want 404", id, status)
	}
}

// TestTracesEndpointWithTracingDisabled: -trace-buffer 0 turns the tracer
// off; the debug endpoints answer 404 instead of panicking, and requests
// carry no X-Trace-ID.
func TestTracesEndpointWithTracingDisabled(t *testing.T) {
	srv := newServer(config{k: 2, budget: 16, traceBuffer: -1})
	if srv.eng.Tracer != nil {
		t.Fatal("negative traceBuffer must disable the tracer")
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	debug := httptest.NewServer(debugRoutes(srv.eng.Tracer))
	t.Cleanup(debug.Close)
	resp := doJSON(t, "POST", ts.URL+"/streams/x/points", batch(blobs(2, 2, 1)), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-ID"); got != "" {
		t.Errorf("X-Trace-ID %q present with tracing disabled", got)
	}
	for _, path := range []string{"/debug/traces", "/debug/traces/" + strings.Repeat("0", 32)} {
		r, err := http.Get(debug.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with tracing disabled: status %d, want 404", path, r.StatusCode)
		}
	}
}
