package httpapi

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	kcenter "coresetclustering"
	"coresetclustering/internal/persist"
)

// durableServer is an in-process daemon wired to a persist.Store, with the
// same boot sequence as run(): open, recover, adopt.
type durableServer struct {
	srv   *server
	store *persist.Store
	http  *httptest.Server
}

func newDurableServer(t *testing.T, dir string, cfg config, opts persist.Options) *durableServer {
	t.Helper()
	store, err := persist.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(cfg)
	srv.eng.Store = store
	recovered, err := store.Recover()
	if err != nil {
		t.Fatal(err)
	}
	srv.eng.AdoptRecovered(recovered)
	ds := &durableServer{srv: srv, store: store, http: httptest.NewServer(srv.routes())}
	t.Cleanup(ds.close)
	return ds
}

func (d *durableServer) close() {
	if d.http != nil {
		d.http.Close()
		d.http = nil
	}
	if d.store != nil {
		d.store.Close()
		d.store = nil
	}
}

// snapshotBytes fetches the stream's serialized state over HTTP.
func snapshotBytes(t *testing.T, baseURL, name string) []byte {
	t.Helper()
	resp, err := http.Post(baseURL+"/streams/"+name+"/snapshot", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot %s: status %d: %s", name, resp.StatusCode, data)
	}
	return data
}

// TestDurableRestartByteIdentical is the in-process half of the recovery
// contract: stop a durable daemon (flushown journals, no crash), boot a new
// one on the same directory, and every stream's re-snapshot must be
// byte-identical to an uninterrupted run over the same requests — for the
// insertion-only and the windowed stream alike, replay tail included (no
// compaction configured, so recovery replays every batch).
func TestDurableRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := config{k: 4, budget: 40}
	opts := persist.Options{Fsync: persist.FsyncAlways, CompactEvery: -1}

	d1 := newDurableServer(t, dir, cfg, opts)
	ref := newTestServer(t, cfg) // uninterrupted in-memory reference

	apply := func(baseURL string) {
		for i := 0; i < 6; i++ {
			var stats streamStats
			resp := doJSON(t, "POST", baseURL+"/streams/ins/points", batch(blobs(30, 3, int64(i))), &stats)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ins batch %d: status %d", i, resp.StatusCode)
			}
			req := batch(blobs(20, 2, int64(100+i)))
			req.Timestamps = make([]int64, 20)
			for j := range req.Timestamps {
				req.Timestamps[j] = int64(i*20 + j)
			}
			resp = doJSON(t, "POST", baseURL+"/streams/win/points?window=50&windowDur=70", req, &stats)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("win batch %d: status %d", i, resp.StatusCode)
			}
		}
		resp := doJSON(t, "POST", baseURL+"/streams/win/advance", advanceRequest{To: 150}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("advance: status %d", resp.StatusCode)
		}
	}
	apply(d1.http.URL)
	apply(ref.URL)
	d1.close()

	d2 := newDurableServer(t, dir, cfg, opts)
	for _, name := range []string{"ins", "win"} {
		got := snapshotBytes(t, d2.http.URL, name)
		want := snapshotBytes(t, ref.URL, name)
		if !bytes.Equal(got, want) {
			t.Fatalf("stream %q: recovered snapshot (%d bytes) differs from uninterrupted run (%d bytes)", name, len(got), len(want))
		}
	}
	// Recovery is surfaced on the stats endpoint.
	var stats streamStats
	if resp := doJSON(t, "GET", d2.http.URL+"/streams/ins/stats", nil, &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if stats.Durability == nil || stats.Durability.Recovery == nil {
		t.Fatalf("stats carry no recovery info: %+v", stats.Durability)
	}
	rec := stats.Durability.Recovery
	if rec.RecordsReplayed != 6 || rec.PointsReplayed != 180 || rec.SnapshotLoaded {
		t.Fatalf("recovery stats = %+v, want 6 replayed batches of 180 points and no snapshot", rec)
	}
	// The recovered stream keeps serving and journaling.
	if resp := doJSON(t, "POST", d2.http.URL+"/streams/ins/points", batch(blobs(10, 3, 999)), &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery ingest status %d", resp.StatusCode)
	}
}

// TestCompactionThenRestart drives enough batches through a small
// -compact-every threshold that background compaction runs, then restarts:
// the recovered state must still re-snapshot byte-identically, now via
// snapshot + short tail instead of full replay.
func TestCompactionThenRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := config{k: 3, budget: 24}
	opts := persist.Options{Fsync: persist.FsyncAlways, CompactEvery: 3}

	d1 := newDurableServer(t, dir, cfg, opts)
	ref := newTestServer(t, cfg)
	for i := 0; i < 10; i++ {
		for _, url := range []string{d1.http.URL, ref.URL} {
			if resp := doJSON(t, "POST", url+"/streams/s/points", batch(blobs(25, 2, int64(i))), nil); resp.StatusCode != http.StatusOK {
				t.Fatalf("batch %d: status %d", i, resp.StatusCode)
			}
		}
	}
	// Background compaction is asynchronous; wait for at least one.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats streamStats
		doJSON(t, "GET", d1.http.URL+"/streams/s/stats", nil, &stats)
		if stats.Durability != nil && stats.Durability.Compactions > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no compaction after 10 batches with CompactEvery=3: %+v", stats.Durability)
		}
		time.Sleep(10 * time.Millisecond)
	}
	d1.close()

	d2 := newDurableServer(t, dir, cfg, opts)
	got := snapshotBytes(t, d2.http.URL, "s")
	want := snapshotBytes(t, ref.URL, "s")
	if !bytes.Equal(got, want) {
		t.Fatalf("post-compaction recovery differs: %d vs %d bytes", len(got), len(want))
	}
	var stats streamStats
	doJSON(t, "GET", d2.http.URL+"/streams/s/stats", nil, &stats)
	rec := stats.Durability.Recovery
	if rec == nil || !rec.SnapshotLoaded {
		t.Fatalf("recovery did not use the snapshot: %+v", rec)
	}
	if rec.RecordsReplayed >= 10 {
		t.Fatalf("replayed %d records despite compaction", rec.RecordsReplayed)
	}
}

// TestDeleteRemovesDurableState: DELETE tombstones the directory, so a
// restart must not resurrect the stream; and the name is immediately
// reusable with different parameters.
func TestDeleteRemovesDurableState(t *testing.T) {
	dir := t.TempDir()
	cfg := config{k: 3, budget: 24}
	opts := persist.Options{Fsync: persist.FsyncAlways, CompactEvery: -1}

	d1 := newDurableServer(t, dir, cfg, opts)
	if resp := doJSON(t, "POST", d1.http.URL+"/streams/doomed/points", batch(blobs(20, 2, 1)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "DELETE", d1.http.URL+"/streams/doomed", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	// Recreate under the same name with different k: must not trip over the
	// deleted directory.
	if resp := doJSON(t, "POST", d1.http.URL+"/streams/doomed/points?k=5", batch(blobs(20, 2, 2)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("recreate status %d", resp.StatusCode)
	}
	d1.close()

	d2 := newDurableServer(t, dir, cfg, opts)
	var stats streamStats
	if resp := doJSON(t, "GET", d2.http.URL+"/streams/doomed/stats", nil, &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("recreated stream lost: status %d", resp.StatusCode)
	}
	if stats.K != 5 || stats.Observed != 20 {
		t.Fatalf("recovered the wrong incarnation: %+v", stats)
	}
}

// TestRestoreIsDurable: a restored sketch must survive a restart (restore
// writes the snapshot and a fresh journal).
func TestRestoreIsDurable(t *testing.T) {
	// Build a donor sketch.
	donor, err := kcenter.NewStreamingKCenter(3, 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := donor.ObserveAll(blobs(100, 2, 7)); err != nil {
		t.Fatal(err)
	}
	sk, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := config{k: 3, budget: 24}
	opts := persist.Options{Fsync: persist.FsyncAlways, CompactEvery: -1}
	d1 := newDurableServer(t, dir, cfg, opts)
	resp, err := http.Post(d1.http.URL+"/streams/revived/restore", "application/octet-stream", bytes.NewReader(sk))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d", resp.StatusCode)
	}
	// Keep observing after the restore so the journal tail is non-trivial.
	if resp := doJSON(t, "POST", d1.http.URL+"/streams/revived/points", batch(blobs(30, 2, 8)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restore ingest status %d", resp.StatusCode)
	}
	want := snapshotBytes(t, d1.http.URL, "revived")
	d1.close()

	d2 := newDurableServer(t, dir, cfg, opts)
	got := snapshotBytes(t, d2.http.URL, "revived")
	if !bytes.Equal(got, want) {
		t.Fatalf("restored stream did not survive the restart byte-identically")
	}
}

// TestAdvanceEndpoint covers the new clock endpoint: eviction through
// advance, the not_windowed rejection, and timestamp-order validation.
func TestAdvanceEndpoint(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16})

	req := batch(blobs(10, 2, 1))
	req.Timestamps = make([]int64, 10)
	for j := range req.Timestamps {
		req.Timestamps[j] = int64(j)
	}
	if resp := doJSON(t, "POST", ts.URL+"/streams/w/points?windowDur=20", req, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var stats streamStats
	if resp := doJSON(t, "POST", ts.URL+"/streams/w/advance", advanceRequest{To: 1000}, &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("advance status %d", resp.StatusCode)
	}
	if stats.Window == nil || stats.Window.LivePoints != 0 {
		t.Fatalf("advance past the window did not evict: %+v", stats.Window)
	}
	// Clock cannot move backwards.
	var er errorResponse
	if resp := doJSON(t, "POST", ts.URL+"/streams/w/advance", advanceRequest{To: 5}, &er); resp.StatusCode != http.StatusBadRequest || er.Code != codeInvalidTimestamps {
		t.Fatalf("backwards advance: status %d code %q", resp.StatusCode, er.Code)
	}
	// Non-window streams have no clock.
	if resp := doJSON(t, "POST", ts.URL+"/streams/plain/points", batch(blobs(5, 2, 2)), nil); resp.StatusCode != http.StatusOK {
		t.Fatal("plain ingest failed")
	}
	if resp := doJSON(t, "POST", ts.URL+"/streams/plain/advance", advanceRequest{To: 5}, &er); resp.StatusCode != http.StatusBadRequest || er.Code != codeNotWindowed {
		t.Fatalf("advance on plain stream: status %d code %q", resp.StatusCode, er.Code)
	}
	// Unknown streams are not implicitly created by advance.
	if resp := doJSON(t, "POST", ts.URL+"/streams/nope/advance", advanceRequest{To: 5}, &er); resp.StatusCode != http.StatusNotFound || er.Code != codeUnknownStream {
		t.Fatalf("advance on unknown stream: status %d code %q", resp.StatusCode, er.Code)
	}
}

// TestRecoveryMetadataMismatchSetsAside: a snapshot that contradicts the
// journaled metadata must not be served; the stream is set aside and the
// name stays usable.
func TestRecoveryMetadataMismatchSetsAside(t *testing.T) {
	dir := t.TempDir()
	cfg := config{k: 3, budget: 24}
	opts := persist.Options{Fsync: persist.FsyncAlways, CompactEvery: -1}

	// Stream with k=3 journaled…
	store, err := persist.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := store.Create("tampered", persist.Meta{K: 3, Budget: 24, Space: "euclidean"})
	if err != nil {
		t.Fatal(err)
	}
	// …but a snapshot captured from a k=7 stream planted in its place.
	donor, err := kcenter.NewStreamingKCenter(7, 56)
	if err != nil {
		t.Fatal(err)
	}
	if err := donor.ObserveAll(blobs(50, 2, 3)); err != nil {
		t.Fatal(err)
	}
	sk, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Compact(sk); err != nil {
		t.Fatal(err)
	}
	store.Close()

	d := newDurableServer(t, dir, cfg, opts)
	var er errorResponse
	if resp := doJSON(t, "GET", d.http.URL+"/streams/tampered/stats", nil, &er); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("mismatched stream served: status %d", resp.StatusCode)
	}
	// Name stays usable.
	if resp := doJSON(t, "POST", d.http.URL+"/streams/tampered/points", batch(blobs(5, 2, 4)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("name unusable after set-aside: status %d", resp.StatusCode)
	}
}

// TestTornWALTailRecovered tears the journal mid-record (as an interrupted
// write under -fsync=never would) and verifies recovery truncates the tail
// and serves the surviving prefix.
func TestTornWALTailRecovered(t *testing.T) {
	dir := t.TempDir()
	cfg := config{k: 3, budget: 24}
	opts := persist.Options{Fsync: persist.FsyncAlways, CompactEvery: -1}

	d1 := newDurableServer(t, dir, cfg, opts)
	for i := 0; i < 4; i++ {
		if resp := doJSON(t, "POST", d1.http.URL+"/streams/s/points", batch(blobs(12, 2, int64(i))), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", i, resp.StatusCode)
		}
	}
	d1.close()

	// Tear the WAL: drop the last 7 bytes of the newest record.
	matches, err := filepath.Glob(filepath.Join(dir, "*", "wal"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("WAL glob: %v (%d matches)", err, len(matches))
	}
	img, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(matches[0], img[:len(img)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := newDurableServer(t, dir, cfg, opts)
	var stats streamStats
	if resp := doJSON(t, "GET", d2.http.URL+"/streams/s/stats", nil, &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("stream lost after torn tail: status %d", resp.StatusCode)
	}
	if stats.Observed != 36 {
		t.Fatalf("observed %d, want 36 (3 surviving batches)", stats.Observed)
	}
	rec := stats.Durability.Recovery
	if rec == nil || !rec.TornTail || rec.RecordsReplayed != 3 {
		t.Fatalf("recovery stats = %+v, want a reported torn tail and 3 replayed records", rec)
	}
}
