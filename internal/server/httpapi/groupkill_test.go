package httpapi

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	kcenter "coresetclustering"
	"coresetclustering/internal/persist"
)

// gcTagBatch builds the tagged batch writer w sends as its idx-th request:
// every point's first coordinate encodes (writer, idx), so the WAL read back
// after the kill identifies exactly which batches became durable.
func gcTagBatch(w, idx int) kcenter.Dataset {
	tag := float64(w*100000 + idx)
	out := make(kcenter.Dataset, 4)
	for j := range out {
		out[j] = kcenter.Point{tag, float64(idx) * 0.5, float64(j)}
	}
	return out
}

// TestKillRecoverGroupCommitConcurrent is the crash-safety half of the
// group-commit contract: a real daemon running -fsync=always with group
// commit on is SIGKILLed while concurrent writers (JSON and binary alike) are
// mid-flight, and afterwards
//
//   - every acknowledged batch is present in the recovered WAL (a shared
//     fsync must cover a frame before ANY of the group's acks go out),
//   - each writer's durable batches form a dense prefix of what it sent
//     (journal order equals send order per writer, no holes), and
//   - a daemon recovered from the WAL re-snapshots byte-identically to an
//     uninterrupted reference fed the same records in WAL order.
func TestKillRecoverGroupCommitConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	const writers = 6
	dir := t.TempDir()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	child := exec.Command(os.Args[0])
	child.Env = append(os.Environ(),
		"KCENTERD_CHILD=1",
		"KCENTERD_ARGS=-addr "+addr+" -k 4 -budget 48 -persist-dir "+dir+" -fsync always -compact-every -1",
	)
	var childLog bytes.Buffer
	child.Stderr = &childLog
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			child.Process.Kill()
			child.Wait()
		}
	}()
	waitHealthy(t, "http://"+addr, 10*time.Second, &childLog)

	// Concurrent writers: each sends its tagged batches sequentially (idx+1
	// only after idx is acked) and records the highest acked idx. Even
	// writers speak the binary protocol, odd ones JSON — both ride the same
	// group-commit window.
	ackedMax := make([]int, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ackedMax[w] = -1
			client := &http.Client{Timeout: 5 * time.Second}
			for idx := 0; ; idx++ {
				points := gcTagBatch(w, idx)
				var resp *http.Response
				var err error
				if w%2 == 0 {
					resp, err = client.Post("http://"+addr+"/streams/gc/ingest",
						binaryContentType, bytes.NewReader(binaryBody(t, points, nil)))
				} else {
					body, merr := jsonBody(points)
					if merr != nil {
						t.Error(merr)
						return
					}
					resp, err = client.Post("http://"+addr+"/streams/gc/points",
						"application/json", bytes.NewReader(body))
				}
				if err != nil {
					return // the kill landed
				}
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if !ok {
					return
				}
				ackedMax[w] = idx
			}
		}(w)
	}
	time.Sleep(300 * time.Millisecond) // let the writers pile into group commits
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child.Wait()
	killed = true
	wg.Wait()

	var totalAcked int
	for w := 0; w < writers; w++ {
		totalAcked += ackedMax[w] + 1
	}
	if totalAcked == 0 {
		t.Fatalf("no batch was acked before the kill\nchild log:\n%s", childLog.String())
	}

	// Read the durable truth straight from the WAL.
	store, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := store.Recover()
	if err != nil {
		t.Fatal(err)
	}
	var tail []persist.Record
	found := false
	for _, rec := range recs {
		if rec.Name != "gc" {
			continue
		}
		if rec.Err != nil {
			t.Fatalf("stream failed to recover: %v\nchild log:\n%s", rec.Err, childLog.String())
		}
		tail, found = rec.Tail, true
	}
	store.Close()
	if !found {
		t.Fatalf("stream gc not recovered (acked %d batches)\nchild log:\n%s", totalAcked, childLog.String())
	}

	// Decode the per-writer durable indices and check them against the acks.
	durableMax := make([]int, writers)
	for w := range durableMax {
		durableMax[w] = -1
	}
	for i, rec := range tail {
		if rec.Op != persist.OpBatch || len(rec.Points) == 0 {
			t.Fatalf("tail record %d: op %v with %d points", i, rec.Op, len(rec.Points))
		}
		tag := int(rec.Points[0][0])
		w, idx := tag/100000, tag%100000
		if w < 0 || w >= writers {
			t.Fatalf("tail record %d carries foreign tag %d", i, tag)
		}
		// Dense prefix per writer: the writer sent idx only after idx-1 was
		// acked, and WAL order is ack order, so a hole would mean a covering
		// fsync was skipped.
		if idx != durableMax[w]+1 {
			t.Fatalf("writer %d: durable idx %d follows %d (hole in the WAL)", w, idx, durableMax[w])
		}
		durableMax[w] = idx
	}
	for w := 0; w < writers; w++ {
		if durableMax[w] < ackedMax[w] {
			t.Fatalf("writer %d: acked through idx %d but only %d survived the kill — an acked batch was lost",
				w, ackedMax[w], durableMax[w])
		}
	}

	// Byte-identical recovery: replay the durable records into a fresh
	// in-memory reference, recover a daemon from the killed directory, and
	// compare re-snapshots. (The durable set may exceed the acked set — a
	// batch whose fsync completed but whose ack never reached the writer —
	// which is exactly why the reference replays the WAL, not the ack log.)
	ref := newTestServer(t, config{k: 4, budget: 48})
	for i, rec := range tail {
		if resp := doJSON(t, "POST", ref.URL+"/streams/gc/points", batch(rec.Points), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("reference replay of record %d: status %d", i, resp.StatusCode)
		}
	}
	d := newDurableServer(t, dir, config{k: 4, budget: 48},
		persist.Options{Fsync: persist.FsyncAlways, GroupCommit: true, CompactEvery: -1})
	got := snapshotBytes(t, d.http.URL, "gc")
	want := snapshotBytes(t, ref.URL, "gc")
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered snapshot differs from WAL-order replay (%d vs %d bytes, %d durable records, %d acked)\nchild log:\n%s",
			len(got), len(want), len(tail), totalAcked, childLog.String())
	}
	t.Logf("killed with %d acked / %d durable batches across %d writers", totalAcked, len(tail), writers)
}

func jsonBody(points kcenter.Dataset) ([]byte, error) {
	return json.Marshal(batch(points))
}
