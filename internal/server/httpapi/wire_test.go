package httpapi

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	kcenter "coresetclustering"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/persist"
)

// binaryBody encodes points (and optional timestamps) as a binary ingest
// request body.
func binaryBody(t *testing.T, points kcenter.Dataset, ts []int64) []byte {
	t.Helper()
	f, err := metric.FlatFromDataset(points)
	if err != nil {
		t.Fatal(err)
	}
	return appendBinaryIngest(nil, f, ts)
}

// postBytes posts a raw body with an explicit Content-Type and returns the
// status code plus the decoded error code ("" on success).
func postBytes(t *testing.T, url, contentType string, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, ""
	}
	var er errorResponse
	json.NewDecoder(resp.Body).Decode(&er)
	return resp.StatusCode, er.Code
}

// TestBinaryIngestEquivalence is the protocol-equivalence contract: the same
// points ingested through JSON and through the binary protocol must produce
// byte-identical stream snapshots — for insertion-only streams and for window
// streams with timestamps (carried in the KCTS trailer on the binary side).
func TestBinaryIngestEquivalence(t *testing.T) {
	t.Run("plain", func(t *testing.T) {
		jsonSrv := newTestServer(t, config{k: 3, budget: 30})
		binSrv := newTestServer(t, config{k: 3, budget: 30})
		for i := int64(0); i < 3; i++ {
			points := blobs(40, 4, i)
			if resp := doJSON(t, "POST", jsonSrv.URL+"/streams/s/points", batch(points), nil); resp.StatusCode != http.StatusOK {
				t.Fatalf("JSON ingest %d: status %d", i, resp.StatusCode)
			}
			if status, code := postBytes(t, binSrv.URL+"/streams/s/points", binaryContentType, binaryBody(t, points, nil)); status != http.StatusOK {
				t.Fatalf("binary ingest %d: status %d code %q", i, status, code)
			}
		}
		if got, want := snapshotBytes(t, binSrv.URL, "s"), snapshotBytes(t, jsonSrv.URL, "s"); !bytes.Equal(got, want) {
			t.Fatalf("binary-fed snapshot differs from JSON-fed snapshot (%d vs %d bytes)", len(got), len(want))
		}
	})
	t.Run("window-timestamped", func(t *testing.T) {
		jsonSrv := newTestServer(t, config{k: 3, budget: 30})
		binSrv := newTestServer(t, config{k: 3, budget: 30})
		ts := int64(0)
		for i := int64(0); i < 3; i++ {
			points := blobs(30, 2, 100+i)
			stamps := make([]int64, len(points))
			for j := range stamps {
				ts += int64(j % 3)
				stamps[j] = ts
			}
			req := batch(points)
			req.Timestamps = stamps
			if resp := doJSON(t, "POST", jsonSrv.URL+"/streams/w/points?window=50&windowDur=40", req, nil); resp.StatusCode != http.StatusOK {
				t.Fatalf("JSON ingest %d: status %d", i, resp.StatusCode)
			}
			if status, code := postBytes(t, binSrv.URL+"/streams/w/points?window=50&windowDur=40", binaryContentType, binaryBody(t, points, stamps)); status != http.StatusOK {
				t.Fatalf("binary ingest %d: status %d code %q", i, status, code)
			}
		}
		if got, want := snapshotBytes(t, binSrv.URL, "w"), snapshotBytes(t, jsonSrv.URL, "w"); !bytes.Equal(got, want) {
			t.Fatalf("binary-fed window snapshot differs from JSON-fed (%d vs %d bytes)", len(got), len(want))
		}
	})
}

// TestBinaryIngestTypedErrors drives malformed binary bodies at a live server
// and asserts each is rejected with its typed code — and that rejections never
// perturb stream state.
func TestBinaryIngestTypedErrors(t *testing.T) {
	srv := newTestServer(t, config{k: 2, budget: 16})
	// Seed a 2-dimensional stream so dimension mismatches are reachable.
	if status, code := postBytes(t, srv.URL+"/streams/t/points", binaryContentType,
		binaryBody(t, kcenter.Dataset{{1, 2}}, nil)); status != http.StatusOK {
		t.Fatalf("seed ingest: status %d code %q", status, code)
	}

	good := binaryBody(t, kcenter.Dataset{{3, 4}, {5, 6}}, nil)
	corrupt := func(pos int, val byte) []byte {
		b := bytes.Clone(good)
		b[pos] = val
		return b
	}
	goodTS := binaryBody(t, kcenter.Dataset{{3, 4}, {5, 6}}, []int64{5, 7})
	emptyFrame := func() []byte {
		var b []byte
		b = append(b, "KCFL"...)
		b = append(b, 0, 1, 0, 0)               // version 1, reserved 0
		b = binary.BigEndian.AppendUint32(b, 2) // dim
		b = binary.BigEndian.AppendUint64(b, 0) // count
		return b
	}()

	cases := []struct {
		name        string
		contentType string
		body        []byte
		status      int
		code        string
	}{
		{"bad-magic", binaryContentType, corrupt(0, 'X'), 400, codeInvalidFrame},
		{"bad-version", binaryContentType, corrupt(4, 9), 400, codeInvalidFrame},
		{"truncated-header", binaryContentType, good[:12], 400, codeInvalidFrame},
		{"truncated-payload", binaryContentType, good[:len(good)-4], 400, codeInvalidFrame},
		{"count-beyond-payload", binaryContentType, corrupt(19, 200), 400, codeInvalidFrame},
		{"empty-batch", binaryContentType, emptyFrame, 400, codeEmptyBatch},
		{"trailing-junk", binaryContentType, append(bytes.Clone(good), 0xAB, 0xCD), 400, codeInvalidFrame},
		{"short-trailer", binaryContentType, goodTS[:len(goodTS)-8], 400, codeInvalidFrame},
		{"wrong-dimension", binaryContentType, binaryBody(t, kcenter.Dataset{{1, 2, 3}}, nil), 400, codeDimensionMismatch},
		{"timestamps-on-plain-stream", binaryContentType, goodTS, 400, codeNotWindowed},
		{"unsupported-media", "application/xml", good, 415, codeUnsupportedMedia},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, code := postBytes(t, srv.URL+"/streams/t/points", tc.contentType, tc.body)
			if status != tc.status || code != tc.code {
				t.Errorf("status %d code %q, want %d %q", status, code, tc.status, tc.code)
			}
		})
	}
	t.Run("negative-timestamp", func(t *testing.T) {
		body := binaryBody(t, kcenter.Dataset{{1, 2}}, []int64{-3})
		status, code := postBytes(t, srv.URL+"/streams/neg/points?window=10", binaryContentType, body)
		if status != 400 || code != codeInvalidTimestamps {
			t.Errorf("status %d code %q, want 400 %q", status, code, codeInvalidTimestamps)
		}
	})
	t.Run("decreasing-timestamps", func(t *testing.T) {
		body := binaryBody(t, kcenter.Dataset{{1, 2}, {3, 4}}, []int64{9, 4})
		status, code := postBytes(t, srv.URL+"/streams/dec/points?window=10", binaryContentType, body)
		if status != 400 || code != codeInvalidTimestamps {
			t.Errorf("status %d code %q, want 400 %q", status, code, codeInvalidTimestamps)
		}
	})

	// None of the rejections moved the stream.
	var st streamStats
	doJSON(t, "GET", srv.URL+"/streams/t/stats", nil, &st)
	if st.Observed != 1 {
		t.Errorf("observed %d after rejected batches, want 1", st.Observed)
	}
}

// TestIngestContentNegotiation pins the fallback rules: absent and unparseable
// Content-Types decode as JSON (what the daemon accepted before the binary
// protocol existed), JSON media types decode as JSON, and only recognisably
// foreign types get the 415.
func TestIngestContentNegotiation(t *testing.T) {
	srv := newTestServer(t, config{k: 2, budget: 16})
	jsonBody, err := json.Marshal(batch(kcenter.Dataset{{1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		contentType string
		status      int
	}{
		{"", http.StatusOK},
		{"application/json", http.StatusOK},
		{"application/json; charset=utf-8", http.StatusOK},
		{"text/json", http.StatusOK},
		{"not a valid media type", http.StatusOK}, // unparseable: JSON fallback
		{"application/octet-stream", http.StatusUnsupportedMediaType},
		{"text/plain", http.StatusUnsupportedMediaType},
	} {
		req, err := http.NewRequest("POST", srv.URL+"/streams/n/points", bytes.NewReader(jsonBody))
		if err != nil {
			t.Fatal(err)
		}
		if tc.contentType != "" {
			req.Header.Set("Content-Type", tc.contentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("Content-Type %q: status %d, want %d", tc.contentType, resp.StatusCode, tc.status)
		}
	}
}

// TestIngestRouteAlias: /ingest is the documented binary-era route and
// /points the original; both serve the same negotiated handler.
func TestIngestRouteAlias(t *testing.T) {
	srv := newTestServer(t, config{k: 2, budget: 16})
	if status, code := postBytes(t, srv.URL+"/streams/a/ingest", binaryContentType,
		binaryBody(t, kcenter.Dataset{{1, 2}}, nil)); status != http.StatusOK {
		t.Fatalf("binary via /ingest: status %d code %q", status, code)
	}
	if resp := doJSON(t, "POST", srv.URL+"/streams/a/ingest", batch(kcenter.Dataset{{3, 4}}), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON via /ingest: status %d", resp.StatusCode)
	}
	var st streamStats
	doJSON(t, "GET", srv.URL+"/streams/a/stats", nil, &st)
	if st.Observed != 2 {
		t.Errorf("observed %d via /ingest alias, want 2", st.Observed)
	}
}

// TestJSONIngestPoolReuse hammers the pooled JSON decode path with differing
// batches — with and without timestamps interleaved — to prove carrier reuse
// never leaks one request's points or timestamps into another.
func TestJSONIngestPoolReuse(t *testing.T) {
	srv := newTestServer(t, config{k: 3, budget: 30})
	// Timestamped batch first: its Timestamps must NOT bleed into the
	// untimestamped batch that reuses the carrier next.
	req := batch(blobs(20, 2, 1))
	req.Timestamps = make([]int64, 20)
	for i := range req.Timestamps {
		req.Timestamps[i] = int64(i)
	}
	if resp := doJSON(t, "POST", srv.URL+"/streams/w/points?window=50", req, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("timestamped ingest: status %d", resp.StatusCode)
	}
	for i := int64(0); i < 20; i++ {
		n := 1 + int(i%7)*5
		if resp := doJSON(t, "POST", srv.URL+"/streams/p/points", batch(blobs(n, 3, i)), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
	}
	var st streamStats
	doJSON(t, "GET", srv.URL+"/streams/p/stats", nil, &st)
	var want int64
	for i := int64(0); i < 20; i++ {
		want += 1 + (i%7)*5
	}
	if st.Observed != want {
		t.Errorf("observed %d, want %d", st.Observed, want)
	}
}

// TestMetricsBinaryAndGroupCommitSeries pins the new observability series with
// exact values: sequential requests against a group-commit store produce one
// commit cycle of depth 1 per journaled mutation, and the binary counters
// track exactly the acknowledged binary bodies (rejected ones don't count).
func TestMetricsBinaryAndGroupCommitSeries(t *testing.T) {
	dir := t.TempDir()
	srv := newServer(config{k: 3, budget: 30})
	store, err := persist.Open(dir, persist.Options{
		Fsync:       persist.FsyncAlways,
		GroupCommit: true,
		Hooks:       srv.eng.Metrics.PersistHooks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv.eng.Store = store
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	points := blobs(10, 3, 1)
	body := binaryBody(t, points, nil)
	for i := 0; i < 2; i++ {
		if status, code := postBytes(t, ts.URL+"/streams/s/points", binaryContentType, body); status != http.StatusOK {
			t.Fatalf("binary ingest %d: status %d code %q", i, status, code)
		}
	}
	if resp := doJSON(t, "POST", ts.URL+"/streams/s/points", batch(blobs(5, 3, 2)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON ingest: status %d", resp.StatusCode)
	}
	// A rejected binary body must not move the binary counters.
	if status, _ := postBytes(t, ts.URL+"/streams/s/points", binaryContentType, body[:10]); status != http.StatusBadRequest {
		t.Fatalf("truncated frame: status %d, want 400", status)
	}

	scrape, _ := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		// 2 binary bodies of 20 header bytes + 10*3*8 payload each.
		fmt.Sprintf("kcenterd_ingest_binary_bytes_total %d", 2*len(body)),
		"kcenterd_ingest_binary_points_total 20",
		"kcenterd_ingest_points_total 25",
		"kcenterd_ingest_batches_total 3",
		// Sequential writers: each journaled batch is its own commit cycle,
		// and every cycle has depth exactly 1.
		"kcenterd_wal_group_commits_total 3",
		`kcenterd_wal_group_commit_depth_bucket{le="1"} 3`,
		"kcenterd_wal_group_commit_depth_sum 3",
		"kcenterd_wal_group_commit_depth_count 3",
		"# TYPE kcenterd_wal_group_commit_duration_seconds histogram",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// FuzzBinaryIngestDecode: the binary decoder must never panic, must return a
// typed code with every error, and must hand back internally consistent
// results on success.
func FuzzBinaryIngestDecode(f *testing.F) {
	good, err := metric.FlatFromDataset(kcenter.Dataset{{1, 2}, {3, 4}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(appendBinaryIngest(nil, good, nil))
	f.Add(appendBinaryIngest(nil, good, []int64{5, 9}))
	f.Add([]byte("KCFL"))
	f.Add([]byte{})
	f.Add(appendBinaryIngest(nil, good, nil)[:21])
	huge := appendBinaryIngest(nil, good, nil)
	huge[12] = 0xFF // count header far beyond the payload
	f.Add(huge)
	junk := append(appendBinaryIngest(nil, good, nil), "KCTSxx"...)
	f.Add(junk)

	f.Fuzz(func(t *testing.T, data []byte) {
		flat, ts, code, err := decodeBinaryIngest(data)
		if err != nil {
			switch code {
			case codeInvalidFrame, codeInvalidTimestamps, codeEmptyBatch:
			default:
				t.Fatalf("error %v carries unknown code %q", err, code)
			}
			return
		}
		if code != "" {
			t.Fatalf("success with non-empty code %q", code)
		}
		if flat == nil || flat.Len() == 0 {
			t.Fatal("success with nil or empty batch")
		}
		if ts != nil && len(ts) != flat.Len() {
			t.Fatalf("%d timestamps for %d points", len(ts), flat.Len())
		}
		for i, v := range ts {
			if v < 0 || (i > 0 && v < ts[i-1]) {
				t.Fatalf("accepted invalid timestamps %v", ts)
			}
		}
		// Accepted input must re-encode to exactly the bytes decoded.
		if got := appendBinaryIngest(nil, flat, ts); !bytes.Equal(got, data) {
			t.Fatalf("re-encode differs: %d bytes in, %d out", len(data), len(got))
		}
	})
}
