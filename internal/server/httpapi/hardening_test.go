package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"coresetclustering/internal/persist"
)

// httptestServer serves a pre-built server (custom config or store) and
// returns its base URL.
func httptestServer(t *testing.T, srv *server) string {
	t.Helper()
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts.URL
}

// postRaw posts a raw body and returns status plus decoded error (if any).
func postRaw(t *testing.T, url, contentType string, body []byte) (int, errorResponse) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er errorResponse
	json.NewDecoder(resp.Body).Decode(&er)
	return resp.StatusCode, er
}

// TestBodyTooLargeIs413 is the regression test for the oversized-body bug:
// a body over the cap must answer 413 with the typed body_too_large code on
// the raw-body restore handler AND on every JSON decoder — not a generic
// 500/400.
func TestBodyTooLargeIs413(t *testing.T) {
	srv := newServer(config{k: 3, budget: 24, maxBody: 1 << 10})
	ts := httptestServer(t, srv)

	huge := make([]byte, 2<<10)
	for i := range huge {
		huge[i] = 'x'
	}

	// Raw-body restore handler (the io.ReadAll path of the original bug).
	status, er := postRaw(t, ts+"/streams/s/restore", "application/octet-stream", huge)
	if status != http.StatusRequestEntityTooLarge || er.Code != codeBodyTooLarge {
		t.Fatalf("restore: status %d code %q, want 413 %q", status, er.Code, codeBodyTooLarge)
	}

	// JSON ingest decoder: an oversized but well-formed JSON body.
	var sb strings.Builder
	sb.WriteString(`{"points": [`)
	for i := 0; sb.Len() < 2<<10; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`[1.0,2.0]`)
	}
	sb.WriteString(`]}`)
	status, er = postRaw(t, ts+"/streams/s/points", "application/json", []byte(sb.String()))
	if status != http.StatusRequestEntityTooLarge || er.Code != codeBodyTooLarge {
		t.Fatalf("ingest: status %d code %q, want 413 %q", status, er.Code, codeBodyTooLarge)
	}

	// JSON merge decoder.
	status, er = postRaw(t, ts+"/merge", "application/json", append([]byte(`{"sketches": ["`), append(huge, []byte(`"]}`)...)...))
	if status != http.StatusRequestEntityTooLarge || er.Code != codeBodyTooLarge {
		t.Fatalf("merge: status %d code %q, want 413 %q", status, er.Code, codeBodyTooLarge)
	}

	// A body under the cap still works.
	status, _ = postRaw(t, ts+"/streams/ok/points", "application/json", []byte(`{"points": [[1,2],[3,4]]}`))
	if status != http.StatusOK {
		t.Fatalf("small body: status %d", status)
	}
}

// TestStrictJSONDecoding: unknown fields and trailing data are rejected with
// the typed invalid_json code (the documented API-strictness change).
func TestStrictJSONDecoding(t *testing.T) {
	ts := newTestServer(t, config{k: 3, budget: 24})

	for _, tc := range []struct {
		name, path, body string
	}{
		{"unknown field", "/streams/s/points", `{"points": [[1,2]], "pionts": [[3,4]]}`},
		{"trailing garbage", "/streams/s/points", `{"points": [[1,2]]} trailing`},
		{"second document", "/streams/s/points", `{"points": [[1,2]]}{"points": [[3,4]]}`},
		{"unknown field on merge", "/merge", `{"sketches": [], "extra": 1}`},
		{"unknown field on advance", "/streams/s/advance", `{"to": 5, "at": 6}`},
	} {
		status, er := postRaw(t, ts.URL+tc.path, "application/json", []byte(tc.body))
		if status != http.StatusBadRequest || er.Code != codeInvalidJSON {
			t.Fatalf("%s: status %d code %q, want 400 %q", tc.name, status, er.Code, codeInvalidJSON)
		}
	}
	// The rejected bodies must not have created the stream as a side effect.
	status, er := postRaw(t, ts.URL+"/streams/s/stats", "application/json", nil)
	if status != http.StatusMethodNotAllowed { // POST to a GET route
		t.Fatalf("stats probe: %d %q", status, er.Code)
	}
	resp, err := http.Get(ts.URL + "/streams/s/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stream exists after rejected bodies: status %d", resp.StatusCode)
	}
}

// TestDeleteIngestSnapshotRace hammers one stream name with concurrent
// ingest, snapshot, stats, delete and re-create, with durability enabled —
// the use-after-delete audit of the per-stream mutex table. Run under -race.
// Every response must be one of the expected statuses (never a 500), deleted
// streams must never acknowledge writes (the gone flag), and at the end the
// stream table must hold at most the one surviving entry (no mutex leak for
// deleted names).
func TestDeleteIngestSnapshotRace(t *testing.T) {
	srv := newServer(config{k: 2, budget: 16})
	store, err := persist.Open(t.TempDir(), persist.Options{Fsync: persist.FsyncNever, CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv.eng.Store = store
	ts := httptestServer(t, srv)

	const (
		workers = 4
		rounds  = 40
	)
	var wg sync.WaitGroup
	fail := make(chan string, workers*3*rounds)
	expect := func(kind string, status int, allowed ...int) {
		for _, a := range allowed {
			if status == a {
				return
			}
		}
		fail <- fmt.Sprintf("%s: unexpected status %d", kind, status)
	}
	for w := 0; w < workers; w++ {
		wg.Add(3)
		go func(seed int64) { // ingester
			defer wg.Done()
			body, _ := json.Marshal(batch(blobs(8, 2, seed)))
			for i := 0; i < rounds; i++ {
				status, _ := postRaw(t, ts+"/streams/contested/points", "application/json", body)
				// 409 when racing a delete; 200 otherwise.
				expect("ingest", status, http.StatusOK, http.StatusConflict)
			}
		}(int64(w))
		go func() { // snapshotter
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(ts+"/streams/contested/snapshot", "application/octet-stream", nil)
				if err != nil {
					fail <- err.Error()
					continue
				}
				resp.Body.Close()
				expect("snapshot", resp.StatusCode, http.StatusOK, http.StatusNotFound, http.StatusConflict)
			}
		}()
		go func() { // deleter
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				req, _ := http.NewRequest("DELETE", ts+"/streams/contested", nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					fail <- err.Error()
					continue
				}
				resp.Body.Close()
				expect("delete", resp.StatusCode, http.StatusOK, http.StatusNotFound)
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	n := srv.eng.StreamCount()
	if n > 1 {
		t.Fatalf("stream table holds %d entries for one contested name (mutex leak)", n)
	}
	// The survivor (if any) must still be consistent and writable.
	status, _ := postRaw(t, ts+"/streams/contested/points", "application/json", []byte(`{"points": [[9,9]]}`))
	if status != http.StatusOK {
		t.Fatalf("post-hammer ingest: status %d", status)
	}
}
