package httpapi

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sync"

	"coresetclustering/internal/metric"
)

// Binary ingest wire format. The request body of a binary ingest is one
// metric.Flat frame (magic "KCFL", see internal/metric) — exactly the bytes
// SaveFlatFile writes, so a dataset file can be POSTed verbatim — optionally
// followed by a timestamp trailer for window streams:
//
//	offset  size      field
//	0       4         trailer magic "KCTS"
//	4       8*count   count int64 timestamps, big-endian, one per point,
//	                  non-negative and non-decreasing
//
// The trailer's count is the frame's point count; nothing may follow it.
// Negotiation is by Content-Type: "application/x-kcenter-flat" selects the
// binary decoder, JSON (or no Content-Type) the JSON one, anything else is
// 415 unsupported_media_type.
const (
	binaryContentType = "application/x-kcenter-flat"
	tsTrailerMagic    = "KCTS"
)

// ingestMedia is the outcome of Content-Type negotiation on an ingest route.
type ingestMedia int

const (
	mediaJSON ingestMedia = iota
	mediaBinary
	mediaUnsupported
)

// negotiateIngest picks the decoder for an ingest request. An absent or
// unparseable Content-Type falls back to JSON (matching what the daemon
// accepted before the binary protocol existed).
func negotiateIngest(r *http.Request) ingestMedia {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return mediaJSON
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return mediaJSON
	}
	switch mt {
	case binaryContentType:
		return mediaBinary
	case "application/json", "text/json":
		return mediaJSON
	default:
		return mediaUnsupported
	}
}

// decodeBinaryIngest decodes a binary ingest body: one flat frame plus the
// optional timestamp trailer. On failure it returns the error code the
// response should carry (invalid_frame for structural defects,
// invalid_timestamps for a well-formed trailer with bad values, empty_batch
// for a frame of zero points).
func decodeBinaryIngest(body []byte) (f *metric.Flat, ts []int64, code string, err error) {
	f, rest, err := metric.DecodeFlatFrame(body)
	if err != nil {
		return nil, nil, codeInvalidFrame, err
	}
	if f.Len() == 0 {
		return nil, nil, codeEmptyBatch, errors.New("empty batch")
	}
	if len(rest) == 0 {
		return f, nil, "", nil
	}
	if len(rest) < len(tsTrailerMagic) || string(rest[:len(tsTrailerMagic)]) != tsTrailerMagic {
		return nil, nil, codeInvalidFrame,
			fmt.Errorf("%d trailing bytes after the point frame are not a timestamp trailer", len(rest))
	}
	rest = rest[len(tsTrailerMagic):]
	if len(rest) != 8*f.Len() {
		return nil, nil, codeInvalidFrame,
			fmt.Errorf("timestamp trailer holds %d bytes, want %d (8 per point)", len(rest), 8*f.Len())
	}
	ts = make([]int64, f.Len())
	for i := range ts {
		v := int64(binary.BigEndian.Uint64(rest[8*i:]))
		if v < 0 {
			return nil, nil, codeInvalidTimestamps, fmt.Errorf("timestamp %d is negative (%d)", i, v)
		}
		if i > 0 && v < ts[i-1] {
			return nil, nil, codeInvalidTimestamps,
				fmt.Errorf("timestamp %d (%d) precedes timestamp %d (%d)", i, v, i-1, ts[i-1])
		}
		ts[i] = v
	}
	return f, ts, "", nil
}

// appendBinaryIngest encodes a batch (and optional timestamps) as a binary
// ingest body — the encoder half of decodeBinaryIngest, shared by tests and
// the load generator via this package's conventions.
func appendBinaryIngest(dst []byte, f *metric.Flat, ts []int64) []byte {
	dst = f.AppendFrame(dst)
	if ts != nil {
		dst = append(dst, tsTrailerMagic...)
		var scratch [8]byte
		for _, v := range ts {
			binary.BigEndian.PutUint64(scratch[:], uint64(v))
			dst = append(dst, scratch[:]...)
		}
	}
	return dst
}

// ingestCarrier is the pooled per-request scratch state of the JSON ingest
// path: the raw body buffer and the decoded request, both reused across
// requests so steady-state JSON ingest does not re-allocate its decode
// buffers (the points handed to the stream are copied into fresh contiguous
// storage first — nothing pooled ever leaks into stream state).
type ingestCarrier struct {
	body bytes.Buffer
	req  ingestRequest
}

var ingestPool = sync.Pool{New: func() any { return new(ingestCarrier) }}

// readIngestJSON reads and strictly decodes a JSON ingest body into the
// carrier, reusing its buffers: the body buffer is pre-sized from
// Content-Length, the point slices (outer and inner) are reused by
// encoding/json's reset-length-then-append semantics. Timestamps are nilled
// before decoding — absence must mean nil, not last request's values. It
// writes the error response itself and reports success.
func (c *ingestCarrier) readIngestJSON(w http.ResponseWriter, r *http.Request) bool {
	c.body.Reset()
	if n := r.ContentLength; n > 0 {
		c.body.Grow(int(n))
	}
	if _, err := c.body.ReadFrom(r.Body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, codeInvalidJSON, fmt.Errorf("reading request body: %w", err))
		return false
	}
	if c.req.Points != nil {
		c.req.Points = c.req.Points[:0]
	}
	c.req.Timestamps = nil
	dec := json.NewDecoder(bytes.NewReader(c.body.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c.req); err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidJSON, fmt.Errorf("invalid JSON body: %w", err))
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, codeInvalidJSON, errors.New("trailing data after JSON body"))
		return false
	}
	return true
}

// compactBatch copies the validated pooled points into fresh contiguous flat
// storage and returns the dataset of views into it. This is what crosses
// into stream state (the clusterers retain the point slices they observe),
// so the pooled decode buffers can be reused by the next request — and the
// copy is itself a win: one allocation for all coordinates instead of one
// per point, laid out the way the batched distance kernels want.
func compactBatch(points metric.Dataset) (metric.Dataset, error) {
	f, err := metric.FlatFromDataset(points)
	if err != nil {
		return nil, err
	}
	return f.Dataset(), nil
}

// Exported wire helpers: the router role speaks the daemon's exact ingest
// encodings (it decodes client batches and re-encodes per-shard sub-batches
// as binary frames), so the codec lives once, here.

// BinaryContentType is the Content-Type of the KCFL binary ingest protocol.
const BinaryContentType = binaryContentType

// NegotiateIngestMedia reports the decoder an ingest request selects by
// Content-Type: "json", "binary", or "" for an unsupported media type.
func NegotiateIngestMedia(r *http.Request) string {
	switch negotiateIngest(r) {
	case mediaBinary:
		return "binary"
	case mediaJSON:
		return "json"
	default:
		return ""
	}
}

// DecodeBinaryIngest decodes a binary ingest body (flat frame + optional
// timestamp trailer); on failure the returned code is the stable error code
// the response should carry.
func DecodeBinaryIngest(body []byte) (f *metric.Flat, ts []int64, code string, err error) {
	return decodeBinaryIngest(body)
}

// EncodeBinaryIngest encodes a batch (and optional timestamps) as a binary
// ingest body — the encoder half of DecodeBinaryIngest.
func EncodeBinaryIngest(dst []byte, f *metric.Flat, ts []int64) []byte {
	return appendBinaryIngest(dst, f, ts)
}
