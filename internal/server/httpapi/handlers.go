package httpapi

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	kcenter "coresetclustering"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/obs"
	"coresetclustering/internal/server/engine"
)

type ingestRequest struct {
	Points kcenter.Dataset `json:"points"`
	// Timestamps optionally carries one non-negative, non-decreasing int64
	// per point (window streams only), in the same caller-defined units as
	// the stream's ?windowDur= bound.
	Timestamps []int64 `json:"timestamps,omitempty"`
}

// decodeJSON strictly decodes a JSON request body: unknown fields are
// rejected, trailing data after the document is rejected, and a body over
// the -max-body cap maps to 413 body_too_large. It writes the error response
// itself and reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, codeInvalidJSON, fmt.Errorf("invalid JSON body: %w", err))
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, codeInvalidJSON, errors.New("trailing data after JSON body"))
		return false
	}
	return true
}

// handleIngest serves both ingest routes (/points and its alias /ingest),
// negotiating the decoder by Content-Type: JSON stays the default, and
// "application/x-kcenter-flat" selects the binary flat-frame decoder — no
// JSON anywhere on that path. Both decoders feed the same engine ingest
// core, so validation, journaling, atomicity and the response shape are
// identical.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	switch negotiateIngest(r) {
	case mediaBinary:
		s.handleIngestBinary(w, r)
	case mediaJSON:
		s.handleIngestJSON(w, r)
	default:
		httpError(w, http.StatusUnsupportedMediaType, codeUnsupportedMedia,
			fmt.Errorf("unsupported Content-Type %q (use application/json or %s)",
				r.Header.Get("Content-Type"), binaryContentType))
	}
}

// handleIngestJSON is the JSON decode front end: pooled decode buffers (the
// carrier), strict decoding, full up-front validation, then one contiguous
// copy of the batch into stream-owned storage.
func (s *server) handleIngestJSON(w http.ResponseWriter, r *http.Request) {
	c := ingestPool.Get().(*ingestCarrier)
	defer ingestPool.Put(c)
	_, decode := obs.StartSpan(r.Context(), "decode")
	decode.SetAttr("proto", "json")
	ok := c.readIngestJSON(w, r)
	decode.End()
	if !ok {
		return
	}
	_, validate := obs.StartSpan(r.Context(), "validate")
	if err := engine.ValidateBatch(c.req.Points, c.req.Timestamps); err != nil {
		validate.End()
		engineError(w, err)
		return
	}
	// The pooled points are about to be reused by another request; what the
	// stream keeps must be a private contiguous copy.
	batch, err := compactBatch(c.req.Points)
	validate.End()
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	s.ingestBatch(w, r, batch, c.req.Timestamps, -1)
}

// handleIngestBinary is the binary decode front end: the body is one flat
// frame (plus optional timestamp trailer), decoded straight into contiguous
// storage with zero per-point allocations and no JSON anywhere.
func (s *server) handleIngestBinary(w http.ResponseWriter, r *http.Request) {
	_, decode := obs.StartSpan(r.Context(), "decode")
	decode.SetAttr("proto", "binary")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		decode.End()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, codeInvalidFrame, fmt.Errorf("reading request body: %w", err))
		return
	}
	f, ts, code, err := decodeBinaryIngest(body)
	decode.End()
	if err != nil {
		httpError(w, http.StatusBadRequest, code, err)
		return
	}
	s.ingestBatch(w, r, f.Dataset(), ts, len(body))
}

// ingestBatch hands a fully validated, stream-owned batch to the engine and
// writes its answer. All journaling, atomicity and group-commit mechanics
// live in engine.Ingest; this shim only resolves creation parameters and
// translates the outcome to the wire.
func (s *server) ingestBatch(w http.ResponseWriter, r *http.Request, batch metric.Dataset, timestamps []int64, binaryBytes int) {
	stats, err := s.eng.Ingest(r.Context(), r.PathValue("name"), batch, timestamps, binaryBytes, s.createParams(r))
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// advanceRequest moves a window stream's clock forward without observing a
// point, evicting buckets that age out of a duration window.
type advanceRequest struct {
	To int64 `json:"to"`
}

func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req advanceRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	stats, err := s.eng.Advance(r.Context(), r.PathValue("name"), req.To)
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// handleStats is the introspection endpoint: per-stream counters, working
// memory, space name and (for window streams) the live window state. Answered
// entirely from the published view and lock-free counters — it never takes
// the stream's ingest mutex.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats, err := s.eng.Stats(r.PathValue("name"))
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

type centersResponse struct {
	streamStats
	Centers kcenter.Dataset `json:"centers"`
}

// handleCenters extracts the current k centers from the newest published
// view, never taking the stream's ingest mutex: the answer is a consistent
// snapshot as of the view's version, and a repeated query at an unchanged
// version is a cache hit (the view memoises its extraction).
func (s *server) handleCenters(w http.ResponseWriter, r *http.Request) {
	stats, centers, err := s.eng.Centers(r.Context(), r.PathValue("name"))
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, centersResponse{streamStats: stats, Centers: centers})
}

// handleSnapshot serializes the newest published view — wait-free like the
// other reads, and memoised, so back-to-back snapshots at an unchanged
// version serialize once and answer byte-identically.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	snap, err := s.eng.Snapshot(r.Context(), name)
	if err != nil {
		engineError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(snap)))
	w.WriteHeader(http.StatusOK)
	if n, err := w.Write(snap); err != nil {
		// The response status is already on the wire; all that is left is to
		// make the truncation observable on the server side too.
		s.eng.Logger.Warn("snapshot: short write to client", "stream", name,
			"written", n, "size", len(snap), "err", err)
	}
}

func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, codeInvalidParam, err)
		return
	}
	stats, err := s.eng.Restore(r.PathValue("name"), data)
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.eng.Delete(name); err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"streams": s.eng.List()})
}

type mergeRequest struct {
	Sketches []string `json:"sketches"`
}

type mergeResponse struct {
	Sketch   string          `json:"sketch"`
	Observed int64           `json:"observed"`
	Centers  kcenter.Dataset `json:"centers"`
}

func (s *server) handleMerge(w http.ResponseWriter, r *http.Request) {
	var req mergeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	blobs := make([][]byte, len(req.Sketches))
	for i, b64 := range req.Sketches {
		blob, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			httpError(w, http.StatusBadRequest, codeBadSketch, fmt.Errorf("sketch %d: invalid base64: %w", i, err))
			return
		}
		blobs[i] = blob
	}
	res, err := s.eng.Merge(blobs)
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, mergeResponse{
		Sketch:   base64.StdEncoding.EncodeToString(res.Sketch),
		Observed: res.Observed,
		Centers:  res.Centers,
	})
}
