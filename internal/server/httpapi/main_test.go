package httpapi

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	kcenter "coresetclustering"
)

func newTestServer(t *testing.T, cfg config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(cfg).routes())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

func batch(points kcenter.Dataset) ingestRequest { return ingestRequest{Points: points} }

func blobs(n, dim int, seed int64) kcenter.Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := make(kcenter.Dataset, n)
	for i := range out {
		p := make(kcenter.Point, dim)
		blob := float64(rng.Intn(5)) * 100
		for j := range p {
			p[j] = blob + rng.NormFloat64()
		}
		out[i] = p
	}
	return out
}

func TestIngestAndCenters(t *testing.T) {
	// budget deliberately != 8*(k+z): new streams must inherit the daemon's
	// configured default, not the derived fallback.
	ts := newTestServer(t, config{k: 3, budget: 30})
	var stats streamStats
	resp := doJSON(t, "POST", ts.URL+"/streams/demo/points", batch(blobs(500, 2, 1)), &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if stats.Observed != 500 || stats.K != 3 || stats.Budget != 30 {
		t.Errorf("unexpected stats: %+v", stats)
	}
	if stats.WorkingMemory > 30 {
		t.Errorf("working memory %d exceeds budget", stats.WorkingMemory)
	}
	var centers centersResponse
	resp = doJSON(t, "GET", ts.URL+"/streams/demo/centers", nil, &centers)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("centers status %d", resp.StatusCode)
	}
	if len(centers.Centers) != 3 {
		t.Errorf("got %d centers, want 3", len(centers.Centers))
	}
}

func TestStreamParamsFromQuery(t *testing.T) {
	ts := newTestServer(t, config{k: 3, budget: 24})
	var stats streamStats
	doJSON(t, "POST", ts.URL+"/streams/custom/points?k=5&z=2&budget=70", batch(blobs(100, 2, 2)), &stats)
	if stats.K != 5 || stats.Z != 2 || stats.Budget != 70 {
		t.Errorf("query params ignored: %+v", stats)
	}
}

// TestConcurrentIngest hammers one stream from many goroutines (exercised
// under -race in CI): every point must be observed exactly once, and
// concurrent snapshot/centers calls must not corrupt the stream.
func TestConcurrentIngest(t *testing.T) {
	ts := newTestServer(t, config{k: 4, budget: 40})
	const (
		goroutines = 8
		batches    = 10
		perBatch   = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				body, _ := json.Marshal(batch(blobs(perBatch, 3, int64(g*1000+b))))
				resp, err := http.Post(ts.URL+"/streams/shared/points", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	// Interleave reads and snapshots with the ingest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp, err := http.Post(ts.URL+"/streams/shared/snapshot", "application/octet-stream", nil)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()

	var stats centersResponse
	doJSON(t, "GET", ts.URL+"/streams/shared/centers", nil, &stats)
	if want := int64(goroutines * batches * perBatch); stats.Observed != want {
		t.Errorf("observed %d points, want %d", stats.Observed, want)
	}
	if len(stats.Centers) != 4 {
		t.Errorf("got %d centers, want 4", len(stats.Centers))
	}
}

// TestShardedMergeFlow drives the daemon the way a coordinator would: two
// shard streams, snapshot both over HTTP, merge, and check the merged
// summary accounts for every point.
func TestShardedMergeFlow(t *testing.T) {
	ts := newTestServer(t, config{k: 4, budget: 64})
	doJSON(t, "POST", ts.URL+"/streams/shard0/points", batch(blobs(600, 2, 10)), nil)
	doJSON(t, "POST", ts.URL+"/streams/shard1/points", batch(blobs(400, 2, 11)), nil)

	snapshot := func(name string) []byte {
		resp, err := http.Post(ts.URL+"/streams/"+name+"/snapshot", "application/octet-stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot %s: status %d", name, resp.StatusCode)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	s0, s1 := snapshot("shard0"), snapshot("shard1")

	var merged mergeResponse
	resp := doJSON(t, "POST", ts.URL+"/merge", mergeRequest{Sketches: []string{
		base64.StdEncoding.EncodeToString(s0),
		base64.StdEncoding.EncodeToString(s1),
	}}, &merged)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge status %d", resp.StatusCode)
	}
	if merged.Observed != 1000 {
		t.Errorf("merged sketch observed %d, want 1000", merged.Observed)
	}
	if len(merged.Centers) != 4 {
		t.Errorf("merged centers %d, want 4", len(merged.Centers))
	}

	// The merged sketch must be restorable as a live stream.
	mergedBlob, err := base64.StdEncoding.DecodeString(merged.Sketch)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/streams/global/restore", bytes.NewReader(mergedBlob))
	if err != nil {
		t.Fatal(err)
	}
	restoreResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var restored streamStats
	if err := json.NewDecoder(restoreResp.Body).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	restoreResp.Body.Close()
	if restored.Observed != 1000 {
		t.Errorf("restored stream observed %d, want 1000", restored.Observed)
	}
	// And it keeps ingesting.
	var after streamStats
	doJSON(t, "POST", ts.URL+"/streams/global/points", batch(blobs(10, 2, 12)), &after)
	if after.Observed != 1010 {
		t.Errorf("restored stream observed %d after ingest, want 1010", after.Observed)
	}
}

func TestListAndDelete(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16})
	doJSON(t, "POST", ts.URL+"/streams/a/points", batch(blobs(10, 2, 20)), nil)
	doJSON(t, "POST", ts.URL+"/streams/b/points", batch(blobs(10, 2, 21)), nil)
	var list struct {
		Streams []streamStats `json:"streams"`
	}
	doJSON(t, "GET", ts.URL+"/streams", nil, &list)
	if len(list.Streams) != 2 || list.Streams[0].Name != "a" || list.Streams[1].Name != "b" {
		t.Errorf("unexpected listing: %+v", list.Streams)
	}
	if resp := doJSON(t, "DELETE", ts.URL+"/streams/a", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("delete status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "DELETE", ts.URL+"/streams/a", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("second delete status %d, want 404", resp.StatusCode)
	}
}

func TestErrorResponses(t *testing.T) {
	ts := newTestServer(t, config{k: 3, budget: 24})
	cases := []struct {
		name   string
		do     func() *http.Response
		status int
	}{
		{"centers-of-unknown-stream", func() *http.Response {
			return doJSON(t, "GET", ts.URL+"/streams/nope/centers", nil, nil)
		}, http.StatusNotFound},
		{"snapshot-of-unknown-stream", func() *http.Response {
			return doJSON(t, "POST", ts.URL+"/streams/nope/snapshot", nil, nil)
		}, http.StatusNotFound},
		{"invalid-json", func() *http.Response {
			resp, err := http.Post(ts.URL+"/streams/x/points", "application/json", bytes.NewReader([]byte("{")))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}, http.StatusBadRequest},
		{"empty-batch", func() *http.Response {
			return doJSON(t, "POST", ts.URL+"/streams/x/points", batch(nil), nil)
		}, http.StatusBadRequest},
		{"out-of-range-number", func() *http.Response {
			resp, err := http.Post(ts.URL+"/streams/x/points", "application/json",
				bytes.NewReader([]byte(`{"points": [[1, 1e999]]}`)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}, http.StatusBadRequest},
		{"restore-garbage", func() *http.Response {
			resp, err := http.Post(ts.URL+"/streams/x/restore", "application/octet-stream",
				bytes.NewReader([]byte("definitely not a sketch")))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}, http.StatusBadRequest},
		{"merge-nothing", func() *http.Response {
			return doJSON(t, "POST", ts.URL+"/merge", mergeRequest{}, nil)
		}, http.StatusBadRequest},
		{"merge-bad-base64", func() *http.Response {
			return doJSON(t, "POST", ts.URL+"/merge", mergeRequest{Sketches: []string{"!!!"}}, nil)
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if resp := tc.do(); resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.status)
			}
		})
	}
}

func TestDimensionMismatchRejected(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16})
	doJSON(t, "POST", ts.URL+"/streams/d/points", batch(kcenter.Dataset{{1, 2}, {3, 4}}), nil)
	resp := doJSON(t, "POST", ts.URL+"/streams/d/points", batch(kcenter.Dataset{{1, 2, 3}}), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched batch status %d, want 400", resp.StatusCode)
	}
	// In-batch mismatch too.
	resp = doJSON(t, "POST", ts.URL+"/streams/d/points", batch(kcenter.Dataset{{1, 2}, {3}}), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ragged batch status %d, want 400", resp.StatusCode)
	}
}

// TestRunGracefulShutdown boots the real daemon on an ephemeral port and
// checks that cancelling the context shuts it down cleanly.
func TestRunGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-k", "2"}, io.Discard)
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down within 5s")
	}
}

func TestRunRejectsUnknownDistance(t *testing.T) {
	err := run(context.Background(), []string{"-distance", "warp"}, io.Discard)
	if err == nil {
		t.Fatal("run accepted an unknown distance")
	}
	if got := fmt.Sprint(err); got == "" {
		t.Error("empty error")
	}
}

// --- sliding-window streams ---

func TestWindowStreamLifecycle(t *testing.T) {
	ts := newTestServer(t, config{k: 3, budget: 36, dist: "euclidean"})
	// Create a count-window stream and overfill it.
	var stats streamStats
	resp := doJSON(t, "POST", ts.URL+"/streams/win/points?window=200", batch(blobs(1000, 2, 30)), &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if stats.Window == nil {
		t.Fatal("ingest response carries no window stats")
	}
	if stats.Window.Size != 200 || stats.Observed != 1000 {
		t.Errorf("unexpected stats: %+v", stats)
	}
	if stats.Window.LivePoints >= 1000 || stats.Window.LivePoints < 200 {
		t.Errorf("live points %d, want within [200, 1000)", stats.Window.LivePoints)
	}
	if stats.Window.LiveBuckets < 1 {
		t.Errorf("live buckets %d", stats.Window.LiveBuckets)
	}
	if stats.Space != "euclidean" {
		t.Errorf("space %q, want euclidean", stats.Space)
	}

	// The introspection endpoint reports the same state.
	var got streamStats
	resp = doJSON(t, "GET", ts.URL+"/streams/win/stats", nil, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if got.Observed != stats.Observed || got.Window == nil || got.Window.LivePoints != stats.Window.LivePoints {
		t.Errorf("stats endpoint disagrees with ingest response: %+v vs %+v", got, stats)
	}

	// Centers answer over the live window.
	var centers centersResponse
	if resp := doJSON(t, "GET", ts.URL+"/streams/win/centers", nil, &centers); resp.StatusCode != http.StatusOK {
		t.Fatalf("centers status %d", resp.StatusCode)
	}
	if len(centers.Centers) != 3 {
		t.Errorf("got %d centers, want 3", len(centers.Centers))
	}
}

func TestWindowStreamStatsForPlainStream(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16, dist: "manhattan"})
	doJSON(t, "POST", ts.URL+"/streams/plain/points", batch(blobs(50, 2, 31)), nil)
	var got streamStats
	doJSON(t, "GET", ts.URL+"/streams/plain/stats", nil, &got)
	if got.Window != nil {
		t.Errorf("plain stream reports window stats: %+v", got.Window)
	}
	if got.Space != "manhattan" {
		t.Errorf("space %q, want manhattan", got.Space)
	}
	if resp := doJSON(t, "GET", ts.URL+"/streams/nope/stats", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("stats of unknown stream: status %d, want 404", resp.StatusCode)
	}
}

func TestWindowTimestampedIngestAndEviction(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 24, dist: "euclidean"})
	ingest := func(pts kcenter.Dataset, stamps []int64) (*http.Response, streamStats, errorResponse) {
		body, _ := json.Marshal(ingestRequest{Points: pts, Timestamps: stamps})
		resp, err := http.Post(ts.URL+"/streams/tw/points?windowDur=100", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var st streamStats
		var er errorResponse
		json.Unmarshal(raw, &st)
		json.Unmarshal(raw, &er)
		return resp, st, er
	}
	pts := blobs(100, 2, 32)
	stamps := make([]int64, 100)
	for i := range stamps {
		stamps[i] = int64(i)
	}
	if resp, st, _ := ingest(pts, stamps); resp.StatusCode != http.StatusOK || st.Window == nil || st.Window.Duration != 100 {
		t.Fatalf("timestamped ingest: status %d stats %+v", resp.StatusCode, st)
	}
	// A second batch far in the future evicts the first, except for the few
	// stale points sharing the still-open bucket with the new arrivals
	// (whole-bucket eviction keeps an open bucket live until it seals).
	future := []int64{5_000, 5_001}
	if resp, st, _ := ingest(pts[:2], future); resp.StatusCode != http.StatusOK ||
		st.Window.LivePoints < 2 || st.Window.LivePoints > 24 {
		t.Fatalf("eviction after time jump: status %d live %d, want a handful", resp.StatusCode, st.Window.LivePoints)
	}
	// Stale timestamps are rejected atomically with a typed code.
	resp, _, er := ingest(pts[:2], []int64{10, 11})
	if resp.StatusCode != http.StatusBadRequest || er.Code != codeInvalidTimestamps {
		t.Fatalf("stale batch: status %d code %q", resp.StatusCode, er.Code)
	}
	// Unsorted and miscounted timestamp arrays too.
	if resp, _, er := ingest(pts[:2], []int64{6_000, 5_999}); resp.StatusCode != http.StatusBadRequest || er.Code != codeInvalidTimestamps {
		t.Fatalf("unsorted stamps: status %d code %q", resp.StatusCode, er.Code)
	}
	if resp, _, er := ingest(pts[:2], []int64{6_000}); resp.StatusCode != http.StatusBadRequest || er.Code != codeInvalidTimestamps {
		t.Fatalf("miscounted stamps: status %d code %q", resp.StatusCode, er.Code)
	}
	// The rejected batches must not have moved the stream.
	var st streamStats
	doJSON(t, "GET", ts.URL+"/streams/tw/stats", nil, &st)
	if st.Observed != 102 {
		t.Errorf("observed %d after rejected batches, want 102", st.Observed)
	}
	// Timestamps on a non-window stream are a typed 400.
	body, _ := json.Marshal(ingestRequest{Points: pts[:1], Timestamps: []int64{1}})
	resp2, err := http.Post(ts.URL+"/streams/plainstream/points", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var er2 errorResponse
	json.NewDecoder(resp2.Body).Decode(&er2)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest || er2.Code != codeNotWindowed {
		t.Errorf("timestamps on plain stream: status %d code %q", resp2.StatusCode, er2.Code)
	}
}

func TestWindowSnapshotRestoreHTTP(t *testing.T) {
	ts := newTestServer(t, config{k: 3, budget: 36, dist: "euclidean"})
	doJSON(t, "POST", ts.URL+"/streams/w/points?window=150", batch(blobs(600, 2, 33)), nil)

	resp, err := http.Post(ts.URL+"/streams/w/snapshot", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d err %v", resp.StatusCode, err)
	}

	req, _ := http.NewRequest("POST", ts.URL+"/streams/w2/restore", bytes.NewReader(blob))
	restoreResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var restored streamStats
	json.NewDecoder(restoreResp.Body).Decode(&restored)
	restoreResp.Body.Close()
	if restoreResp.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d", restoreResp.StatusCode)
	}
	if restored.Window == nil || restored.Window.Size != 150 || restored.Observed != 600 {
		t.Errorf("restored window stats: %+v", restored)
	}

	// Both streams answer with identical centers.
	var c1, c2 centersResponse
	doJSON(t, "GET", ts.URL+"/streams/w/centers", nil, &c1)
	doJSON(t, "GET", ts.URL+"/streams/w2/centers", nil, &c2)
	if len(c1.Centers) != len(c2.Centers) {
		t.Fatalf("center counts differ: %d vs %d", len(c1.Centers), len(c2.Centers))
	}
	for i := range c1.Centers {
		if !c1.Centers[i].Equal(c2.Centers[i]) {
			t.Errorf("center %d differs after restore", i)
		}
	}
	// The restored stream keeps ingesting.
	var after streamStats
	doJSON(t, "POST", ts.URL+"/streams/w2/points", batch(blobs(10, 2, 34)), &after)
	if after.Observed != 610 {
		t.Errorf("restored stream observed %d, want 610", after.Observed)
	}
	// Window sketches cannot be merged: the refusal is the typed
	// incompatibility (kcenter.ErrMergeIncompatible), surfaced as 502
	// shard_incompatible so a cluster operator can tell "these shards
	// disagree" apart from "these bytes are garbage" (400 bad_sketch).
	var er errorResponse
	mresp := doJSON(t, "POST", ts.URL+"/merge", mergeRequest{Sketches: []string{
		base64.StdEncoding.EncodeToString(blob),
		base64.StdEncoding.EncodeToString(blob),
	}}, &er)
	if mresp.StatusCode != http.StatusBadGateway || er.Code != codeShardIncompatible {
		t.Errorf("merging window sketches: status %d code %q", mresp.StatusCode, er.Code)
	}
}

// TestWindowConcurrentIngest hammers one window stream from many goroutines
// (exercised under -race in CI): every point must be observed exactly once,
// eviction and coalescing must stay consistent under interleaved snapshots,
// stats and centers calls.
func TestWindowConcurrentIngest(t *testing.T) {
	ts := newTestServer(t, config{k: 4, budget: 40, dist: "euclidean"})
	const (
		goroutines = 8
		batches    = 10
		perBatch   = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				body, _ := json.Marshal(batch(blobs(perBatch, 3, int64(g*1000+b))))
				resp, err := http.Post(ts.URL+"/streams/wshared/points?window=500", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			for _, path := range []string{"/streams/wshared/stats", "/streams/wshared/centers"} {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			resp, err := http.Post(ts.URL+"/streams/wshared/snapshot", "application/octet-stream", nil)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()

	var stats streamStats
	doJSON(t, "GET", ts.URL+"/streams/wshared/stats", nil, &stats)
	if want := int64(goroutines * batches * perBatch); stats.Observed != want {
		t.Errorf("observed %d points, want %d", stats.Observed, want)
	}
	if stats.Window == nil || stats.Window.LivePoints < 500 {
		t.Errorf("window stats after concurrent ingest: %+v", stats.Window)
	}
}

// TestTypedIngestErrors pins the machine-readable error codes of the ingest
// validation path.
func TestTypedIngestErrors(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16, dist: "euclidean"})
	doJSON(t, "POST", ts.URL+"/streams/t/points", batch(kcenter.Dataset{{1, 2}}), nil)

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/streams/t/points", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		return resp.StatusCode, er.Code
	}
	cases := []struct {
		name, body string
		code       string
	}{
		{"malformed-json", `{`, codeInvalidJSON},
		{"nan-via-out-of-range", `{"points": [[1, 1e999]]}`, codeInvalidJSON},
		{"empty-batch", `{"points": []}`, codeEmptyBatch},
		{"ragged-batch", `{"points": [[1,2],[3]]}`, codeDimensionMismatch},
		{"zero-dim", `{"points": [[]]}`, codeInvalidPoint},
		{"wrong-dim-for-stream", `{"points": [[1,2,3]]}`, codeDimensionMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, code := post(tc.body)
			if status != http.StatusBadRequest || code != tc.code {
				t.Errorf("status %d code %q, want 400 %q", status, code, tc.code)
			}
		})
	}
	// The stream was never perturbed.
	var st streamStats
	doJSON(t, "GET", ts.URL+"/streams/t/stats", nil, &st)
	if st.Observed != 1 {
		t.Errorf("observed %d after rejected batches, want 1", st.Observed)
	}
}

// TestTimestampsWithoutWindowDoNotCreateStream guards against a rejected
// first ingest creating the stream as a side effect: forgetting ?window= on
// a timestamped batch must leave the name unclaimed, so the corrected retry
// can still create a window stream.
func TestTimestampsWithoutWindowDoNotCreateStream(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16, dist: "euclidean"})
	body, _ := json.Marshal(ingestRequest{Points: kcenter.Dataset{{1, 2}}, Timestamps: []int64{1}})
	resp, err := http.Post(ts.URL+"/streams/fresh/points", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || er.Code != codeNotWindowed {
		t.Fatalf("first timestamped ingest without window: status %d code %q", resp.StatusCode, er.Code)
	}
	// The name was not claimed by the rejection...
	if resp := doJSON(t, "GET", ts.URL+"/streams/fresh/stats", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("rejected ingest created the stream: stats status %d", resp.StatusCode)
	}
	// ...so the corrected retry creates a real window stream.
	var stats streamStats
	resp2, err := http.Post(ts.URL+"/streams/fresh/points?window=100", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp2.Body).Decode(&stats)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || stats.Window == nil || stats.Window.Size != 100 {
		t.Fatalf("corrected retry: status %d stats %+v", resp2.StatusCode, stats)
	}
}

// TestWindowParamsOnExistingPlainStreamRejected: passing ?window= at an
// already-created insertion-only stream must fail loudly instead of silently
// ingesting into a stream that never evicts.
func TestWindowParamsOnExistingPlainStreamRejected(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16, dist: "euclidean"})
	doJSON(t, "POST", ts.URL+"/streams/p/points", batch(kcenter.Dataset{{1, 2}}), nil)
	var er errorResponse
	resp := doJSON(t, "POST", ts.URL+"/streams/p/points?window=100", batch(kcenter.Dataset{{3, 4}}), &er)
	if resp.StatusCode != http.StatusBadRequest || er.Code != codeInvalidParam {
		t.Fatalf("window param on plain stream: status %d code %q", resp.StatusCode, er.Code)
	}
	var st streamStats
	doJSON(t, "GET", ts.URL+"/streams/p/stats", nil, &st)
	if st.Observed != 1 {
		t.Errorf("rejected batch was ingested: observed %d, want 1", st.Observed)
	}
	// Repeating the original window params at a window stream keeps working.
	doJSON(t, "POST", ts.URL+"/streams/w/points?window=100", batch(kcenter.Dataset{{1, 2}}), nil)
	if resp := doJSON(t, "POST", ts.URL+"/streams/w/points?window=100", batch(kcenter.Dataset{{3, 4}}), nil); resp.StatusCode != http.StatusOK {
		t.Errorf("re-passing window params at a window stream: status %d", resp.StatusCode)
	}
}
