package httpapi

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	kcenter "coresetclustering"
)

// TestErrorCodeStatusGolden pins the daemon's error contract: the exact set
// of machine-readable codes and the HTTP status each maps to. A refactor that
// adds, drops, or moves a code must consciously edit this table — the diff is
// the review trail for a wire-contract change.
func TestErrorCodeStatusGolden(t *testing.T) {
	golden := map[string]int{
		"invalid_json":           http.StatusBadRequest,
		"empty_batch":            http.StatusBadRequest,
		"invalid_point":          http.StatusBadRequest,
		"dimension_mismatch":     http.StatusBadRequest,
		"invalid_param":          http.StatusBadRequest,
		"invalid_timestamps":     http.StatusBadRequest,
		"not_windowed":           http.StatusBadRequest,
		"bad_sketch":             http.StatusBadRequest,
		"invalid_frame":          http.StatusBadRequest,
		"unknown_stream":         http.StatusNotFound,
		"stream_gone":            http.StatusConflict,
		"empty_stream":           http.StatusConflict,
		"body_too_large":         http.StatusRequestEntityTooLarge,
		"unsupported_media_type": http.StatusUnsupportedMediaType,
		"stream_failed":          http.StatusInternalServerError,
		"internal":               http.StatusInternalServerError,
		"shard_incompatible":     http.StatusBadGateway,
		"shard_unavailable":      http.StatusBadGateway,
	}
	for code, want := range golden {
		if got, ok := codeStatus[code]; !ok {
			t.Errorf("code %q missing from codeStatus", code)
		} else if got != want {
			t.Errorf("code %q maps to %d, want %d", code, got, want)
		}
	}
	for code, got := range codeStatus {
		if _, ok := golden[code]; !ok {
			t.Errorf("codeStatus has unpinned code %q (status %d): add it to the golden table", code, got)
		}
	}
	// Unknown codes must fail closed as a 500, never leak a 200.
	if got := statusForCode("no_such_code"); got != http.StatusInternalServerError {
		t.Errorf("statusForCode(unknown) = %d, want 500", got)
	}
}

// TestErrorCodesLiveRoundTrip drives every error code reachable from a clean
// daemon through real handlers and asserts each response carries the code's
// golden status — the end-to-end check that the transport layer actually
// routes typed engine errors through statusForCode.
//
// Not reachable here by construction, and covered elsewhere: stream_failed
// and stream_gone need an injected mid-batch apply fault (queryview_test),
// shard_unavailable is minted by the router role (router cluster tests), and
// internal is the fallback for errors that cannot otherwise occur.
func TestErrorCodesLiveRoundTrip(t *testing.T) {
	ts := newTestServer(t, config{k: 3, budget: 24, maxBody: 64 << 10})

	raw := func(method, path, contentType string, body []byte) (int, errorResponse) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		return resp.StatusCode, er
	}

	// Seed a window stream whose sketch is valid but unmergeable, for the
	// shard_incompatible case.
	doJSON(t, "POST", ts.URL+"/streams/gw/points?window=50", batch(blobs(100, 2, 7)), nil)
	resp, err := http.Post(ts.URL+"/streams/gw/snapshot", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	windowSketch, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	mergeBody, _ := json.Marshal(mergeRequest{Sketches: []string{
		base64.StdEncoding.EncodeToString(windowSketch),
		base64.StdEncoding.EncodeToString(windowSketch),
	}})

	// Seed a plain stream so the not_windowed and empty_stream triggers have
	// something to hit.
	doJSON(t, "POST", ts.URL+"/streams/gp/points", batch(blobs(10, 2, 8)), nil)

	cases := []struct {
		code        string
		method      string
		path        string
		contentType string
		body        []byte
	}{
		{"invalid_json", "POST", "/streams/g/points", "application/json", []byte(`{bad`)},
		{"empty_batch", "POST", "/streams/g/points", "application/json", []byte(`{"points": []}`)},
		{"invalid_point", "POST", "/streams/g/points", "application/json", []byte(`{"points": [[]]}`)},
		{"dimension_mismatch", "POST", "/streams/g/points", "application/json", []byte(`{"points": [[1,2],[3]]}`)},
		{"invalid_param", "POST", "/streams/gq/points?k=abc", "application/json", []byte(`{"points": [[1,2]]}`)},
		{"invalid_timestamps", "POST", "/streams/gt/points?windowDur=100", "application/json",
			[]byte(`{"points": [[1,2],[3,4]], "timestamps": [5]}`)},
		{"not_windowed", "POST", "/streams/gp/points", "application/json",
			[]byte(`{"points": [[1,2]], "timestamps": [1]}`)},
		{"bad_sketch", "POST", "/streams/g/restore", "application/octet-stream", []byte("not a sketch")},
		{"invalid_frame", "POST", "/streams/g/points", binaryContentType, []byte("XXXX garbage frame")},
		{"unknown_stream", "GET", "/streams/never-created/centers", "", nil},
		{"body_too_large", "POST", "/streams/g/restore", "application/octet-stream",
			bytes.Repeat([]byte("x"), 128<<10)},
		{"unsupported_media_type", "POST", "/streams/g/points", "text/csv", []byte("1,2\n")},
		{"shard_incompatible", "POST", "/merge", "application/json", mergeBody},
	}
	covered := make(map[string]bool)
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			status, er := raw(tc.method, tc.path, tc.contentType, tc.body)
			if er.Code != tc.code {
				t.Fatalf("%s %s: code %q, want %q", tc.method, tc.path, er.Code, tc.code)
			}
			if want := statusForCode(tc.code); status != want {
				t.Fatalf("%s %s: status %d, want %d for code %q", tc.method, tc.path, status, want, tc.code)
			}
			if er.Error == "" {
				t.Errorf("%s %s: empty error message for code %q", tc.method, tc.path, tc.code)
			}
		})
		covered[tc.code] = true
	}

	// empty_stream: evict a duration window past all its points, then query.
	doJSON(t, "POST", ts.URL+"/streams/ge/points?windowDur=10", &ingestRequest{
		Points: kcenter.Dataset{{1, 2}, {3, 4}}, Timestamps: []int64{1, 2},
	}, nil)
	doJSON(t, "POST", ts.URL+"/streams/ge/advance", advanceRequest{To: 1_000_000}, nil)
	t.Run("empty_stream", func(t *testing.T) {
		status, er := raw("GET", "/streams/ge/centers", "", nil)
		if er.Code != "empty_stream" || status != statusForCode("empty_stream") {
			t.Fatalf("evicted window centers: status %d code %q, want %d empty_stream",
				status, er.Code, statusForCode("empty_stream"))
		}
	})
	covered["empty_stream"] = true

	// Every code the golden table pins is either driven above or excused in
	// the doc comment — keep this list in sync so new codes get a trigger.
	excused := map[string]bool{
		"stream_failed": true, "stream_gone": true,
		"shard_unavailable": true, "internal": true,
	}
	for code := range codeStatus {
		if !covered[code] && !excused[code] {
			t.Errorf("code %q has no live trigger and no excuse — add one here", code)
		}
	}
}
