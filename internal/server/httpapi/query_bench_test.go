package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

// benchIngestBody pre-marshals one deterministic ingest batch.
func benchIngestBody(b *testing.B, n, dim int, seed int64) []byte {
	b.Helper()
	body, err := json.Marshal(batch(blobs(n, dim, seed)))
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func benchPost(b *testing.B, url string, body []byte) {
	b.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
}

func benchGet(b *testing.B, url string) {
	b.Helper()
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
}

// newBenchDaemon starts an in-memory daemon with one seeded stream.
func newBenchDaemon(b *testing.B) (ts *httptest.Server, streamURL string) {
	b.Helper()
	ts = httptest.NewServer(newServer(config{k: 8, budget: 64, workers: 1}).routes())
	b.Cleanup(ts.Close)
	streamURL = ts.URL + "/streams/bench"
	benchPost(b, streamURL+"/points", benchIngestBody(b, 500, 8, 1))
	return ts, streamURL
}

// reportPercentiles attaches p50/p99 of the recorded per-query latencies to
// the benchmark line, so the CI gate can compare medians instead of means
// (means are dominated by the occasional query that lands mid-batch).
func reportPercentiles(b *testing.B, lat []time.Duration) {
	b.Helper()
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
}

// BenchmarkQueryCentersIdle is the no-load baseline on the cache-miss path:
// each iteration bumps the stream's version off the clock, so every timed
// GET /centers runs a real extraction against a fresh view. The CI gate in
// BENCH_query.json holds the same query's p50 under sustained ingest to
// within 2x of this.
func BenchmarkQueryCentersIdle(b *testing.B) {
	_, url := newBenchDaemon(b)
	body := benchIngestBody(b, 100, 8, 2)
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		benchPost(b, url+"/points", body)
		b.StartTimer()
		t0 := time.Now()
		benchGet(b, url+"/centers")
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	reportPercentiles(b, lat)
}

// BenchmarkQueryCentersUnderIngest measures GET /centers while a writer
// streams 100-point batches at ~1 kHz (about 100k points/s) into the same
// stream. Queries answer from the published view without the ingest mutex,
// so the p50 must stay within 2x of the idle baseline; in the old
// fully-serialised daemon every read queued behind whole batch applies and,
// worst case, a compaction's fsyncs. The writer is paced rather than
// saturating so the gate measures lock avoidance, not raw CPU time-sharing
// on small runners.
func BenchmarkQueryCentersUnderIngest(b *testing.B) {
	_, url := newBenchDaemon(b)
	body := benchIngestBody(b, 100, 8, 3)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(url+"/points", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(time.Millisecond)
		}
	}()
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		benchGet(b, url+"/centers")
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	close(stop)
	<-done
	reportPercentiles(b, lat)
}

// BenchmarkQueryCentersCacheHit measures the steady-state read path at a
// frozen version: after the first query primes the view's memo, every later
// query is a cache hit (no extraction at all) — the floor the versioned
// cache buys for dashboards polling an idle stream.
func BenchmarkQueryCentersCacheHit(b *testing.B) {
	_, url := newBenchDaemon(b)
	benchGet(b, url+"/centers") // prime the view's memo
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		benchGet(b, url+"/centers")
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	reportPercentiles(b, lat)
}
