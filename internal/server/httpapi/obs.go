package httpapi

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"coresetclustering/internal/obs"
)

// statusWriter records the status code a handler sent (200 when the handler
// wrote a body without an explicit WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// requestIDOK bounds what the daemon accepts as a caller-supplied
// X-Request-ID: short, printable, no spaces — anything else is replaced so a
// hostile header cannot inject log fields or unbounded bytes into every line.
func requestIDOK(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '=' {
			return false
		}
	}
	return true
}

// withObs wraps the route mux with the daemon's request instrumentation:
// every request gets an X-Request-ID (the caller's, when well-formed, so IDs
// propagate through shard fan-outs; a fresh one otherwise) echoed on the
// response, a root span honoring an inbound traceparent header (the trace ID
// echoed as X-Trace-ID, so a load run or a router fan-out can pull the exact
// trace from /debug/traces/{id}), per-route counters and latency histograms
// keyed by the mux pattern that matched, and a warn-level log line — carrying
// the trace ID and the per-stage breakdown — when the request exceeds the
// -slow-request threshold. Runs inside MaxBytesHandler so the mux populates
// r.Pattern on the very request this wrapper holds.
func (s *server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if !requestIDOK(reqID) {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		m, t := s.eng.Metrics, s.eng.Tracer
		if m == nil && t == nil {
			next.ServeHTTP(w, r)
			return
		}
		var root *obs.Span
		if t != nil {
			var ctx = r.Context()
			ctx, root = t.StartRoot(ctx, r.Method, r.Header.Get("traceparent"))
			w.Header().Set("X-Trace-ID", root.TraceID())
			r = r.WithContext(ctx)
		}
		if m != nil {
			m.HTTPInFlight.Add(1)
			defer m.HTTPInFlight.Add(-1)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		route := r.Pattern // set in place by the mux while routing
		if route == "" {
			route = "unmatched"
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		slow := s.cfg.slowReq > 0 && elapsed >= s.cfg.slowReq
		if root != nil {
			// A matched mux pattern already carries the method ("POST /x");
			// only the "unmatched" fallback needs it prefixed.
			if strings.Contains(route, " ") {
				root.SetName(route)
			} else {
				root.SetName(r.Method + " " + route)
			}
			root.SetAttr("status", strconv.Itoa(status))
			root.SetAttr("requestId", reqID)
			if status >= http.StatusInternalServerError {
				root.Force("error")
			}
			if slow {
				root.Force("slow")
			}
			root.End()
		}
		if m != nil {
			m.HTTPRequests.With(route, r.Method, fmt.Sprintf("%d", status)).Add(1)
			m.HTTPDuration.With(route).ObserveDuration(elapsed)
		}
		if slow {
			if m != nil {
				m.HTTPSlow.Add(1)
			}
			s.eng.Logger.Warn("slow request",
				"requestId", reqID, "traceId", root.TraceID(),
				"method", r.Method, "route", route,
				"status", status, "duration", elapsed,
				"stages", root.Breakdown())
		} else if s.eng.Logger.Enabled(obs.LevelDebug) {
			s.eng.Logger.Debug("request",
				"requestId", reqID, "method", r.Method, "route", route,
				"status", status, "duration", elapsed)
		}
	})
}

// handleMetrics serves the Prometheus text exposition: the process-lifetime
// registry first, then scrape-time series (uptime, stream census, per-stream
// gauges) rendered into a throwaway registry so they share the golden-tested
// formatter. Per-stream series come exclusively from published query views
// and atomic counters — scraping never touches a stream's ingest mutex, so
// /metrics stays responsive while ingest, fsyncs or compactions are in
// flight. Per-stream cardinality is capped at -obs-max-streams series
// (alphabetically first names win, deterministically); the number omitted is
// itself exported.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Metrics
	if m == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	if r.Method == http.MethodHead {
		// Probes want the headers, not a full render of every series.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		return
	}
	names := s.eng.StreamNames()
	total := len(names)
	omitted := 0
	if max := s.cfg.obsMaxStreams; max >= 0 && total > max {
		omitted = total - max
		names = names[:max]
	}

	scrape := obs.NewRegistry()
	scrape.Gauge("kcenterd_uptime_seconds",
		"Seconds since the daemon started.").Set(time.Since(m.Start).Seconds())
	scrape.Gauge("kcenterd_streams",
		"Streams currently hosted.").Set(float64(total))
	scrape.Gauge("kcenterd_streams_failed_current",
		"Streams currently set aside as failed.").Set(float64(s.eng.FailedCount()))
	scrape.Gauge("kcenterd_streams_omitted",
		"Streams beyond the -obs-max-streams per-stream series cap.").Set(float64(omitted))

	observed := scrape.GaugeVec("kcenterd_stream_observed_points",
		"Lifetime points observed by the stream.", "stream")
	working := scrape.GaugeVec("kcenterd_stream_working_memory_points",
		"Points currently retained by the stream's sketch.", "stream")
	version := scrape.GaugeVec("kcenterd_stream_version",
		"Mutations applied to the stream in-process.", "stream")
	livePts := scrape.GaugeVec("kcenterd_stream_live_points",
		"Points summarised by the live window (window streams only).", "stream")
	for _, name := range names {
		st, ok := s.eng.Lookup(name)
		if !ok {
			continue
		}
		v := st.View()
		observed.With(name).Set(float64(v.Observed))
		working.With(name).Set(float64(v.WorkingMemory))
		version.With(name).Set(float64(v.Version))
		if v.Window != nil {
			livePts.With(name).Set(float64(v.Window.LivePoints))
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := m.Reg.WritePrometheus(w); err != nil {
		return // client went away; nothing sensible left to send
	}
	if err := scrape.WritePrometheus(w); err != nil && s.eng.Logger.Enabled(obs.LevelDebug) {
		s.eng.Logger.Debug("metrics scrape write failed", "error", err)
	}
}

// DebugRoutes builds the opt-in -debug-addr surface: pprof, expvar and the
// retained-trace endpoints on their own mux, so profiling and trace data are
// reachable only via the separate debug listener, never on the ingest port.
// Exported because the router role serves the identical debug surface.
func DebugRoutes(t *obs.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) { handleTraceList(w, r, t) })
	mux.HandleFunc("GET /debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) { handleTraceByID(w, r, t) })
	return mux
}

// debugRoutes keeps the pre-split name alive for the transport's own tests.
func debugRoutes(t *obs.Tracer) http.Handler { return DebugRoutes(t) }

// handleTraceList serves the retained traces newest first, optionally
// filtered by ?route= (substring of the trace name, i.e. "METHOD /pattern")
// and ?minDur= (a Go duration; traces at least this long).
func handleTraceList(w http.ResponseWriter, r *http.Request, t *obs.Tracer) {
	if t == nil {
		httpError(w, http.StatusNotFound, "tracing_disabled", fmt.Errorf("tracing is disabled (-trace-buffer 0)"))
		return
	}
	var minDur time.Duration
	if v := r.URL.Query().Get("minDur"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad_min_dur", fmt.Errorf("minDur: %w", err))
			return
		}
		minDur = d
	}
	route := r.URL.Query().Get("route")
	out := make([]obs.TraceSummary, 0, 32)
	for _, tr := range t.Recent() {
		if route != "" && !strings.Contains(tr.Name(), route) {
			continue
		}
		if tr.Duration() < minDur {
			continue
		}
		out = append(out, tr.Summary())
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

// handleTraceByID serves one retained trace's full span tree.
func handleTraceByID(w http.ResponseWriter, r *http.Request, t *obs.Tracer) {
	if t == nil {
		httpError(w, http.StatusNotFound, "tracing_disabled", fmt.Errorf("tracing is disabled (-trace-buffer 0)"))
		return
	}
	tr := t.Find(r.PathValue("id"))
	if tr == nil {
		httpError(w, http.StatusNotFound, "trace_not_found", fmt.Errorf("no retained trace %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, tr.Detail())
}
