package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	kcenter "coresetclustering"
	"coresetclustering/internal/persist"
	"coresetclustering/internal/server/engine"
)

// tryJSON is doJSON for helper goroutines: failures go through t.Error (never
// FailNow, which must not run off the test goroutine) and ok reports whether
// the request and decode both succeeded.
func tryJSON(t *testing.T, method, url string, body any, out any) (*http.Response, bool) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Error(err)
			return nil, false
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Error(err)
		return nil, false
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Error(err)
		return nil, false
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Errorf("%s %s: decoding response: %v", method, url, err)
			return resp, false
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, true
}

// hammerBatch returns the deterministic contents of batch number i (0-based):
// the version counter maps version V to exactly batches 0..V-1, so any reader
// observation can be replayed locally.
func hammerBatch(i, perBatch, dim int) kcenter.Dataset {
	return blobs(perBatch, dim, int64(1000+i))
}

// TestQueryViewHammer hammers one stream with a writer and many wait-free
// readers (run under -race in CI) and checks the snapshot-isolation contract:
// (a) no reader ever observes torn state — every answer sits exactly on an
// acknowledged batch boundary, with observed == version * perBatch;
// (b) a reader at version V sees the extraction of exactly the first V
// batches — verified by replaying those batches into a local clusterer and
// comparing snapshots bit-for-bit;
// (c) a repeated query at an unchanged version is a cache hit, byte-identical
// to the fresh extraction.
func TestQueryViewHammer(t *testing.T) {
	const (
		k        = 4
		budget   = 40
		batches  = 40
		perBatch = 25
		dim      = 3
		readers  = 6
	)
	ts := newTestServer(t, config{k: k, budget: budget})
	url := ts.URL + "/streams/hammer"

	var done atomic.Bool
	var wg sync.WaitGroup

	// One writer: version V <=> first V batches, no coordination needed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < batches; i++ {
			var stats streamStats
			resp, ok := tryJSON(t, "POST", url+"/points", batch(hammerBatch(i, perBatch, dim)), &stats)
			if !ok {
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("ingest %d: status %d", i, resp.StatusCode)
				return
			}
			if stats.Version != int64(i+1) || stats.Observed != int64((i+1)*perBatch) {
				t.Errorf("ingest %d: version=%d observed=%d", i, stats.Version, stats.Observed)
				return
			}
		}
	}()

	// Readers: snapshots of whatever version is current. Keep the first
	// snapshot seen per version for the replay check below.
	var mu sync.Mutex
	byVersion := make(map[int64][]byte)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !done.Load() {
				switch r % 3 {
				case 0:
					var cr centersResponse
					resp, ok := tryJSON(t, "GET", url+"/centers", nil, &cr)
					if !ok {
						return
					}
					if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusConflict {
						continue // beat the first batch, or the window is empty
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("centers: status %d", resp.StatusCode)
						return
					}
					if cr.Observed != cr.Version*perBatch {
						t.Errorf("torn centers read: version=%d observed=%d", cr.Version, cr.Observed)
						return
					}
					if len(cr.Centers) != k {
						t.Errorf("centers at version %d: got %d, want %d", cr.Version, len(cr.Centers), k)
						return
					}
				case 1:
					var stats streamStats
					resp, ok := tryJSON(t, "GET", url+"/stats", nil, &stats)
					if !ok {
						return
					}
					if resp.StatusCode == http.StatusNotFound {
						continue
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("stats: status %d", resp.StatusCode)
						return
					}
					if stats.Observed != stats.Version*perBatch {
						t.Errorf("torn stats read: version=%d observed=%d", stats.Version, stats.Observed)
						return
					}
				case 2:
					resp, err := http.Post(url+"/snapshot", "application/octet-stream", nil)
					if err != nil {
						t.Error(err)
						return
					}
					snap, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						t.Error(err)
						return
					}
					if resp.StatusCode == http.StatusNotFound {
						continue
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("snapshot: status %d: %s", resp.StatusCode, snap)
						return
					}
					info, err := kcenter.InspectSketch(snap)
					if err != nil {
						t.Errorf("snapshot does not decode: %v", err)
						return
					}
					if info.Observed%perBatch != 0 {
						t.Errorf("torn snapshot: observed=%d is not a batch boundary", info.Observed)
						return
					}
					mu.Lock()
					v := info.Observed / perBatch
					if _, ok := byVersion[v]; !ok {
						byVersion[v] = snap
					}
					mu.Unlock()
				}
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// (b) every sampled version must be bit-identical to a local replay of
	// exactly its first V batches.
	for v, snap := range byVersion {
		ref, err := kcenter.NewStreamingKCenter(k, budget)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < v; i++ {
			if err := ref.ObserveAll(hammerBatch(int(i), perBatch, dim)); err != nil {
				t.Fatal(err)
			}
		}
		want, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap, want) {
			t.Fatalf("snapshot at version %d is not the state of the first %d batches", v, v)
		}
	}

	// (c) with the writer stopped the version is frozen: the next two centers
	// queries answer byte-identically (the second from the cache), and both
	// match a fresh local extraction from the final state.
	read := func() ([]byte, streamStats) {
		resp, err := http.Get(url + "/centers")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("centers: status %d: %s", resp.StatusCode, body)
		}
		var cr centersResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		return body, cr.streamStats
	}
	first, s1 := read()
	second, s2 := read()
	if s2.Cache.Hits <= s1.Cache.Hits {
		t.Fatalf("second read at a frozen version was not a cache hit: %+v -> %+v", s1.Cache, s2.Cache)
	}
	// The cache counters ride along in the body, so strip them before the
	// byte comparison; the centers themselves must be identical.
	var c1, c2 centersResponse
	if err := json.Unmarshal(first, &c1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &c2); err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(c1.Centers)
	b2, _ := json.Marshal(c2.Centers)
	if !bytes.Equal(b1, b2) {
		t.Fatal("cache hit returned different centers than the fresh extraction")
	}
	ref, err := kcenter.NewStreamingKCenter(k, budget)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batches; i++ {
		if err := ref.ObserveAll(hammerBatch(i, perBatch, dim)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.Centers()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(b1, wantJSON) {
		t.Fatalf("daemon centers diverge from the local replay:\n got %s\nwant %s", b1, wantJSON)
	}
}

// TestCentersCacheCounters pins the cache lifecycle: repeated queries at one
// version hit, a mutation invalidates (by publishing a new view), and the
// hit/miss counters in stats tell the story.
func TestCentersCacheCounters(t *testing.T) {
	ts := newTestServer(t, config{k: 3, budget: 30})
	url := ts.URL + "/streams/cached"
	doJSON(t, "POST", url+"/points", batch(blobs(100, 2, 5)), nil)

	var cr centersResponse
	for i := 0; i < 3; i++ {
		if resp := doJSON(t, "GET", url+"/centers", nil, &cr); resp.StatusCode != http.StatusOK {
			t.Fatalf("centers %d: status %d", i, resp.StatusCode)
		}
	}
	if cr.Cache.Misses != 1 || cr.Cache.Hits != 2 {
		t.Fatalf("cache after 3 reads at one version: %+v, want 1 miss / 2 hits", cr.Cache)
	}
	// A write publishes a new view; its cache starts cold.
	doJSON(t, "POST", url+"/points", batch(blobs(50, 2, 6)), nil)
	if resp := doJSON(t, "GET", url+"/centers", nil, &cr); resp.StatusCode != http.StatusOK {
		t.Fatalf("centers after write: status %d", resp.StatusCode)
	}
	if cr.Cache.Misses != 2 || cr.Cache.Hits != 2 {
		t.Fatalf("cache after invalidating write: %+v, want 2 misses / 2 hits", cr.Cache)
	}
	if cr.Version != 2 {
		t.Fatalf("version = %d, want 2", cr.Version)
	}
}

// TestMidBatchApplyFailureSetsStreamAside forces the otherwise unreachable
// divergence: the WAL acknowledged a batch the in-memory state could not
// fully apply. The stream must fail loudly (500 stream_failed), disappear
// from the table, leave a *.failed directory for forensics, and free the
// name for a fresh stream.
func TestMidBatchApplyFailureSetsStreamAside(t *testing.T) {
	dir := t.TempDir()
	ds := newDurableServer(t, dir, config{k: 3, budget: 30}, persist.Options{Fsync: persist.FsyncAlways})
	url := ds.http.URL + "/streams/doomed"

	doJSON(t, "POST", url+"/points", batch(blobs(50, 2, 1)), nil)

	engine.ApplyPointHook = func(i int) error {
		if i == 3 {
			return fmt.Errorf("injected apply failure at point %d", i)
		}
		return nil
	}
	defer func() { engine.ApplyPointHook = func(int) error { return nil } }()

	var errResp errorResponse
	resp := doJSON(t, "POST", url+"/points", batch(blobs(10, 2, 2)), &errResp)
	if resp.StatusCode != http.StatusInternalServerError || errResp.Code != codeStreamFailed {
		t.Fatalf("diverged ingest: status %d code %q, want 500 %s", resp.StatusCode, errResp.Code, codeStreamFailed)
	}

	// Gone from the table...
	if resp := doJSON(t, "GET", url+"/stats", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stats after failure: status %d, want 404", resp.StatusCode)
	}
	// ...directory set aside, not destroyed...
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var failed int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".failed") {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("found %d .failed directories, want 1 (entries: %v)", failed, entries)
	}
	// ...and the name is free again.
	engine.ApplyPointHook = func(int) error { return nil }
	var stats streamStats
	if resp := doJSON(t, "POST", url+"/points", batch(blobs(20, 2, 3)), &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-create after set-aside: status %d", resp.StatusCode)
	}
	if stats.Observed != 20 || stats.Version != 1 {
		t.Fatalf("re-created stream stats: %+v", stats)
	}
	// base64url("doomed"): the fresh stream got a brand-new directory (the
	// set-aside renamed the old one away before freeing the name).
	if _, err := os.Stat(filepath.Join(dir, "ZG9vbWVk")); err != nil {
		t.Fatalf("re-created stream directory missing: %v", err)
	}
}

// TestIngestProceedsDuringCompaction pins the tentpole's satellite bugfix:
// compaction snapshots a published view and does its disk I/O with no stream
// lock held, so ingest and reads flow on while a compaction is stuck.
func TestIngestProceedsDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	ds := newDurableServer(t, dir, config{k: 3, budget: 30},
		persist.Options{Fsync: persist.FsyncAlways, CompactEvery: 3})
	url := ds.http.URL + "/streams/busy"

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	engine.CompactStartHook = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	defer func() { engine.CompactStartHook = func() {} }()

	// Cross the compaction threshold to trigger the (now blocked) background
	// compaction.
	for i := 0; i < 4; i++ {
		if resp := doJSON(t, "POST", url+"/points", batch(blobs(20, 2, int64(i))), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("compaction never started")
	}

	// With the compaction wedged mid-flight, writes and reads must complete
	// promptly — the old code held the stream mutex across the whole thing.
	doneIngest := make(chan streamStats, 1)
	go func() {
		var stats streamStats
		doJSON(t, "POST", url+"/points", batch(blobs(20, 2, 99)), &stats)
		doneIngest <- stats
	}()
	select {
	case stats := <-doneIngest:
		if stats.Observed != 100 {
			t.Fatalf("ingest during compaction: observed=%d, want 100", stats.Observed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ingest blocked behind an in-flight compaction")
	}
	var cr centersResponse
	if resp := doJSON(t, "GET", url+"/centers", nil, &cr); resp.StatusCode != http.StatusOK {
		t.Fatalf("centers during compaction: status %d", resp.StatusCode)
	}

	close(release)
	// The released compaction lands: its snapshot covers the capture point
	// and the concurrent batch survives in the journal for replay.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats streamStats
		doJSON(t, "GET", url+"/stats", nil, &stats)
		if stats.Durability != nil && stats.Durability.Compactions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("compaction never completed after release")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Restart on the same directory: snapshot + preserved tail must rebuild
	// the exact same state (byte-identical re-snapshot).
	want := snapshotBytes(t, ds.http.URL, "busy")
	ds.close()
	ds2 := newDurableServer(t, dir, config{k: 3, budget: 30},
		persist.Options{Fsync: persist.FsyncAlways, CompactEvery: 3})
	got := snapshotBytes(t, ds2.http.URL, "busy")
	if !bytes.Equal(got, want) {
		t.Fatal("restart after off-lock compaction diverges from the live state")
	}
}

// TestSnapshotContentLength: the snapshot response announces its exact size
// up front, so clients can detect truncated transfers.
func TestSnapshotContentLength(t *testing.T) {
	ts := newTestServer(t, config{k: 3, budget: 30})
	url := ts.URL + "/streams/sized"
	doJSON(t, "POST", url+"/points", batch(blobs(80, 2, 4)), nil)

	resp, err := http.Post(url+"/snapshot", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(body)) {
		t.Fatalf("Content-Length = %q, body is %d bytes", cl, len(body))
	}
}

// TestReadsDoNotTakeIngestMutex proves the wait-free claim structurally:
// with a stream's ingest mutex HELD, stats, centers and snapshot must all
// still answer (the acceptance criterion behind the query-latency benchmark).
func TestReadsDoNotTakeIngestMutex(t *testing.T) {
	srv := newServer(config{k: 3, budget: 30})
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	url := ts.URL + "/streams/locked"
	if resp := doJSON(t, "POST", url+"/points", batch(blobs(60, 2, 8)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}

	st, ok := srv.eng.Lookup("locked")
	if !ok {
		t.Fatal("stream not found")
	}
	st.Mu.Lock()
	defer st.Mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, path := range []string{"/stats", "/centers"} {
			resp, err := http.Get(url + path)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s with the ingest mutex held: status %d", path, resp.StatusCode)
			}
		}
		resp, err := http.Post(url+"/snapshot", "application/octet-stream", nil)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("snapshot with the ingest mutex held: status %d", resp.StatusCode)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("a read handler blocked on the ingest mutex")
	}
}
