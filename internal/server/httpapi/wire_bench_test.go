package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"coresetclustering/internal/metric"
)

// BenchmarkIngestHTTP measures the full handler path — route, decode,
// validate, apply, respond — for the same 64-point batch through each wire
// protocol, with no persistence so the decode paths dominate. The CI ingest
// gate derives points/s from ns/op (the batch size is identical) and asserts
// binary stays ≥2× JSON; allocs/op guards the pooled JSON decode buffers and
// the binary path's zero per-point allocation against regression.
func BenchmarkIngestHTTP(b *testing.B) {
	points := blobs(64, 8, 1)
	jsonBytes, err := json.Marshal(batch(points))
	if err != nil {
		b.Fatal(err)
	}
	f, err := metric.FlatFromDataset(points)
	if err != nil {
		b.Fatal(err)
	}
	binBytes := appendBinaryIngest(nil, f, nil)

	for _, bc := range []struct {
		name        string
		contentType string
		body        []byte
	}{
		{"proto=json", "application/json", jsonBytes},
		{"proto=binary", binaryContentType, binBytes},
	} {
		b.Run(bc.name, func(b *testing.B) {
			h := newServer(config{k: 4, budget: 32}).routes()
			// Create the stream outside the timed loop.
			warm := httptest.NewRecorder()
			h.ServeHTTP(warm, benchIngestReq(bc.contentType, bc.body))
			if warm.Code != http.StatusOK {
				b.Fatalf("warm-up ingest: status %d: %s", warm.Code, warm.Body.String())
			}
			b.SetBytes(int64(len(bc.body)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := httptest.NewRecorder()
				h.ServeHTTP(w, benchIngestReq(bc.contentType, bc.body))
				if w.Code != http.StatusOK {
					b.Fatalf("ingest: status %d: %s", w.Code, w.Body.String())
				}
			}
		})
	}
}

func benchIngestReq(contentType string, body []byte) *http.Request {
	req := httptest.NewRequest("POST", "/streams/bench/points", bytes.NewReader(body))
	req.Header.Set("Content-Type", contentType)
	return req
}
