// Package httpapi is the HTTP transport of the kcenterd daemon: it parses
// the shard role's flags, assembles an engine.Engine with its durability and
// observability wiring, and translates HTTP requests into engine operations —
// JSON/KCFL wire negotiation, strict decoding, typed engine errors mapped to
// the daemon's stable status codes, and the obs/trace middleware. The engine
// itself (internal/server/engine) never sees net/http; everything
// wire-shaped lives here.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"coresetclustering/internal/obs"
	"coresetclustering/internal/persist"
	"coresetclustering/internal/server/engine"
	"coresetclustering/internal/sketch"
)

// Local aliases for the engine's stable error codes, so handler code (and the
// golden tests over the error table) read the same as before the layer split.
const (
	codeInvalidJSON       = engine.CodeInvalidJSON
	codeEmptyBatch        = engine.CodeEmptyBatch
	codeInvalidPoint      = engine.CodeInvalidPoint
	codeDimensionMismatch = engine.CodeDimensionMismatch
	codeInvalidParam      = engine.CodeInvalidParam
	codeInvalidTimestamps = engine.CodeInvalidTimestamps
	codeNotWindowed       = engine.CodeNotWindowed
	codeUnknownStream     = engine.CodeUnknownStream
	codeStreamGone        = engine.CodeStreamGone
	codeStreamFailed      = engine.CodeStreamFailed
	codeBadSketch         = engine.CodeBadSketch
	codeEmptyStream       = engine.CodeEmptyStream
	codeBodyTooLarge      = engine.CodeBodyTooLarge
	codeInvalidFrame      = engine.CodeInvalidFrame
	codeUnsupportedMedia  = engine.CodeUnsupportedMedia
	codeShardIncompatible = engine.CodeShardIncompatible
	codeShardUnavailable  = engine.CodeShardUnavailable
	codeInternal          = engine.CodeInternal
)

// codeStatus is the daemon's error contract: every stable machine-readable
// code maps to exactly one HTTP status. The golden handler tests assert this
// table against live responses, so a refactor cannot silently move a code.
var codeStatus = map[string]int{
	codeInvalidJSON:       http.StatusBadRequest,
	codeEmptyBatch:        http.StatusBadRequest,
	codeInvalidPoint:      http.StatusBadRequest,
	codeDimensionMismatch: http.StatusBadRequest,
	codeInvalidParam:      http.StatusBadRequest,
	codeInvalidTimestamps: http.StatusBadRequest,
	codeNotWindowed:       http.StatusBadRequest,
	codeBadSketch:         http.StatusBadRequest,
	codeInvalidFrame:      http.StatusBadRequest,
	codeUnknownStream:     http.StatusNotFound,
	codeStreamGone:        http.StatusConflict,
	codeEmptyStream:       http.StatusConflict,
	codeBodyTooLarge:      http.StatusRequestEntityTooLarge,
	codeUnsupportedMedia:  http.StatusUnsupportedMediaType,
	codeStreamFailed:      http.StatusInternalServerError,
	codeInternal:          http.StatusInternalServerError,
	codeShardIncompatible: http.StatusBadGateway,
	codeShardUnavailable:  http.StatusBadGateway,
}

func statusForCode(code string) int {
	if s, ok := codeStatus[code]; ok {
		return s
	}
	return http.StatusInternalServerError
}

// Wire-shape aliases: the engine owns the stats payload types, the transport
// keeps the pre-split names so handler and test code read unchanged.
type (
	streamStats     = engine.StreamStats
	windowStats     = engine.WindowStats
	durabilityStats = engine.DurabilityStats
	cacheStats      = engine.CacheStats
)

// maxBodyBytes is the default bound on every request body (batches and
// sketches alike); -max-body overrides it.
const maxBodyBytes = 64 << 20

// config carries the daemon defaults applied to implicitly created streams,
// plus the observability knobs.
type config struct {
	k             int
	z             int
	budget        int
	workers       int
	dist          string
	maxBody       int64         // request-body cap in bytes (0 = maxBodyBytes)
	fsync         string        // fsync mode name, surfaced in durability stats
	slowReq       time.Duration // slow-request log threshold (0 = disabled)
	obsMaxStreams int           // per-stream /metrics series cap (0 = default, <0 = unlimited)
	traceSample   int           // head-sample 1 in N requests (0 = default 16)
	traceBuffer   int           // retained completed traces (0 = default 256, <0 = tracing off)
}

// server is the HTTP shard daemon: the engine plus the transport knobs.
type server struct {
	cfg config
	eng *engine.Engine
}

func newServer(cfg config) *server {
	if cfg.maxBody <= 0 {
		cfg.maxBody = maxBodyBytes
	}
	if cfg.obsMaxStreams == 0 {
		cfg.obsMaxStreams = 64
	}
	if cfg.traceSample <= 0 {
		cfg.traceSample = 16
	}
	if cfg.traceBuffer == 0 {
		cfg.traceBuffer = 256 // negative = tracing disabled (NewTracer returns nil)
	}
	eng := engine.New(engine.Config{
		K: cfg.k, Z: cfg.z, Budget: cfg.budget, Workers: cfg.workers,
		Dist: cfg.dist, Fsync: cfg.fsync,
	})
	eng.Metrics = engine.NewMetrics()
	eng.Tracer = obs.NewTracer(cfg.traceSample, cfg.traceBuffer)
	return &server{cfg: cfg, eng: eng}
}

// Run is the shard role's entry point: parse flags, assemble the engine and
// its durability/observability wiring, and serve until ctx is cancelled or
// SIGINT/SIGTERM arrives. The kcenterd binary dispatches here for
// -role=shard (the default).
func Run(ctx context.Context, args []string, out io.Writer) error {
	return run(ctx, args, out)
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kcenterd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		k             = fs.Int("k", 10, "default number of centers for new streams")
		z             = fs.Int("z", 0, "default number of outliers for new streams (0 = plain k-center)")
		budget        = fs.Int("budget", 0, "default working-memory budget in points (0 = 8*(k+z))")
		workers       = fs.Int("workers", 0, "distance-engine parallelism for extraction (0 = one per CPU)")
		dist          = fs.String("distance", "euclidean", fmt.Sprintf("metric space %v", sketch.DistanceNames()))
		maxBody       = fs.Int64("max-body", maxBodyBytes, "request body size cap in bytes")
		persistDir    = fs.String("persist-dir", "", "root directory for per-stream durability (WAL + snapshots); empty = in-memory only")
		fsyncMode     = fs.String("fsync", "always", "WAL flush policy: always, interval or never")
		fsyncInterval = fs.Duration("fsync-interval", 100*time.Millisecond, "flush period under -fsync=interval")
		compactEvery  = fs.Int("compact-every", 1024, "journaled records per stream that trigger snapshot compaction (negative disables)")
		groupCommit   = fs.Bool("group-commit", true, "coalesce concurrent WAL appends into shared fsyncs under -fsync=always")
		logLevel      = fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
		slowReq       = fs.Duration("slow-request", time.Second, "log requests slower than this at warn level (0 disables)")
		debugAddr     = fs.String("debug-addr", "", "separate listen address for pprof, expvar and /debug/traces (empty = disabled)")
		obsMaxStreams = fs.Int("obs-max-streams", 64, "per-stream series cap on /metrics (negative = unlimited)")
		traceSample   = fs.Int("trace-sample", 16, "head-sample 1 in N requests for tracing (slow and errored requests are always captured)")
		traceBuffer   = fs.Int("trace-buffer", 256, "completed traces retained for /debug/traces (0 disables tracing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, _, err := sketch.DistanceByName(*dist); err != nil {
		return err
	}
	mode, err := persist.ParseFsyncMode(*fsyncMode)
	if err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	if *maxBody <= 0 {
		return fmt.Errorf("-max-body must be positive, got %d", *maxBody)
	}
	if *slowReq < 0 {
		return fmt.Errorf("-slow-request must be non-negative, got %v", *slowReq)
	}
	if *traceSample < 1 {
		return fmt.Errorf("-trace-sample must be at least 1, got %d", *traceSample)
	}
	if *traceBuffer < 0 {
		return fmt.Errorf("-trace-buffer must be non-negative, got %d", *traceBuffer)
	}
	buffer := *traceBuffer
	if buffer == 0 {
		buffer = -1 // flag 0 means "disabled"; config 0 means "default"
	}
	logger := obs.NewLogger(out, level)
	srv := newServer(config{
		k: *k, z: *z, budget: *budget, workers: *workers, dist: *dist,
		maxBody: *maxBody, fsync: mode.String(),
		slowReq: *slowReq, obsMaxStreams: *obsMaxStreams,
		traceSample: *traceSample, traceBuffer: buffer,
	})
	srv.eng.Logger = logger

	if *persistDir != "" {
		store, err := persist.Open(*persistDir, persist.Options{
			Fsync:         mode,
			FsyncInterval: *fsyncInterval,
			CompactEvery:  *compactEvery,
			GroupCommit:   *groupCommit,
			Hooks:         srv.eng.PersistHooks(),
		})
		if err != nil {
			return err
		}
		defer func() {
			if err := store.Close(); err != nil {
				logger.Error("closing the store", "err", err)
			}
		}()
		srv.eng.Store = store
		recovered, err := store.Recover()
		if err != nil {
			return err
		}
		srv.eng.AdoptRecovered(recovered)
		logger.Info("durability on", "dir", store.Dir(), "fsync", mode, "compactEvery", *compactEvery)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.routes(), ReadHeaderTimeout: 10 * time.Second}

	// The debug surface (pprof, expvar, /debug/traces) binds its own listener
	// so profiling endpoints and trace data are never reachable through the
	// ingest port.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		debugSrv = &http.Server{Handler: DebugRoutes(srv.eng.Tracer), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "err", err)
			}
		}()
		logger.Info("debug server listening", "addr", dln.Addr())
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr(), "k", *k, "z", *z, "budget", *budget, "distance", *dist)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("debug server shutdown", "err", err)
		}
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return nil
}

// handleHealthz is the liveness probe. It degrades to 503 when any stream
// has been set aside as failed: the daemon is still serving, but state a
// client acknowledged has been lost, which an orchestrator should surface
// rather than round-robin past.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if failed := s.eng.FailedStreams(); len(failed) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":        "degraded",
			"failedStreams": failed,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /streams", s.handleList)
	mux.HandleFunc("GET /streams/{name}/stats", s.handleStats)
	mux.HandleFunc("POST /streams/{name}/points", s.handleIngest)
	mux.HandleFunc("POST /streams/{name}/ingest", s.handleIngest)
	mux.HandleFunc("POST /streams/{name}/advance", s.handleAdvance)
	mux.HandleFunc("GET /streams/{name}/centers", s.handleCenters)
	mux.HandleFunc("POST /streams/{name}/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /streams/{name}/restore", s.handleRestore)
	mux.HandleFunc("DELETE /streams/{name}", s.handleDelete)
	mux.HandleFunc("POST /merge", s.handleMerge)
	// withObs sits INSIDE MaxBytesHandler: MaxBytesHandler forwards a shallow
	// copy of the request, and the mux populates Pattern in place on the
	// request it receives — the middleware must hold that same copy to read
	// the route label afterwards.
	return http.MaxBytesHandler(s.withObs(mux), s.cfg.maxBody)
}

// createParams resolves the stream-creation query parameters against the
// daemon defaults, deferring parse failures exactly as the engine expects:
// Err (first of k, z, budget, window, windowDur) fires only on the creation
// path, WinErr (window parameters alone) also on an existing stream's
// flavour check.
func (s *server) createParams(r *http.Request) engine.CreateParams {
	k, kErr := queryInt(r, "k", s.cfg.k)
	z, zErr := queryInt(r, "z", s.cfg.z)
	budget, bErr := queryInt(r, "budget", 0)
	winSize, wsErr := queryInt64(r, "window", 0)
	winDur, wdErr := queryInt64(r, "windowDur", 0)
	p := engine.CreateParams{K: k, Z: z, Budget: budget, WinSize: winSize, WinDur: winDur}
	for _, err := range []error{wsErr, wdErr} {
		if err != nil {
			p.WinErr = err
			break
		}
	}
	for _, err := range []error{kErr, zErr, bErr, wsErr, wdErr} {
		if err != nil {
			p.Err = err
			break
		}
	}
	return p
}

func queryInt(r *http.Request, key string, fallback int) (int, error) {
	n, err := queryInt64(r, key, int64(fallback))
	if err != nil {
		return 0, err
	}
	if n < math.MinInt32 || n > math.MaxInt32 {
		return 0, fmt.Errorf("%s=%d out of range", key, n)
	}
	return int(n), nil
}

func queryInt64(r *http.Request, key string, fallback int64) (int64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return fallback, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid %s=%q", key, v)
	}
	return n, nil
}

// WriteJSON writes a JSON response body with the given status. Exported for
// the router role, which shares the daemon's wire conventions.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	writeJSON(w, status, v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errorResponse is the uniform error body: a human-readable message plus a
// stable machine-readable code clients can branch on.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Error writes the daemon's uniform error body. Exported for the router
// role, which shares the daemon's wire conventions.
func Error(w http.ResponseWriter, status int, code string, err error) {
	httpError(w, status, code, err)
}

func httpError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
}

// EngineError translates a typed engine error into the daemon's uniform
// error response. Exported for the router role, whose merge and fan-out
// paths surface the same typed engine errors.
func EngineError(w http.ResponseWriter, err error) {
	engineError(w, err)
}

// engineError translates a typed engine error into the daemon's uniform
// error response, mapping its stable code through the status table.
func engineError(w http.ResponseWriter, err error) {
	code := engine.CodeOf(err)
	httpError(w, statusForCode(code), code, err)
}
