package httpapi

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchIngestHandler builds a routed server with the instrumentation either
// live or stripped (srv.eng.Metrics = nil turns every metric site into one nil
// check; srv.eng.Tracer = nil does the same for every span site) and returns a
// closure that drives one full ingest request — middleware, decode, validate,
// apply, publish — through ServeHTTP in-process. A loopback socket would add
// TCP/scheduler noise an order of magnitude larger than the instrumentation
// cost these benchmarks exist to measure.
func benchIngestHandler(b *testing.B, metrics, traced bool) func() {
	srv := newServer(config{k: 8, budget: 64, workers: 1})
	if !metrics {
		srv.eng.Metrics = nil
	}
	if !traced {
		srv.eng.Tracer = nil
	}
	handler := srv.routes()
	body := benchIngestBody(b, 100, 8, 1)
	b.SetBytes(int64(len(body)))
	post := func() {
		req := httptest.NewRequest(http.MethodPost, "/streams/bench/points", bytes.NewReader(body))
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("ingest status %d: %s", w.Code, w.Body.String())
		}
	}
	post() // create the stream outside the timed loop
	return post
}

func BenchmarkObsIngestInstrumented(b *testing.B) {
	post := benchIngestHandler(b, true, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}

func BenchmarkObsIngestBare(b *testing.B) {
	post := benchIngestHandler(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}

// BenchmarkObsIngestOverhead is the benchmark the CI gate reads. The
// standalone Instrumented/Bare benchmarks above give absolute throughput for
// the perf trajectory, but comparing them is hostage to CPU frequency drift
// between two sequential runs — on a busy host the phase-to-phase variance
// (±10%) dwarfs the handful of wait-free atomics being measured. Here each
// iteration times one instrumented and one bare request back to back, so any
// drift hits both sides equally, and the paired totals are exported as
// inst-ns/op and bare-ns/op custom metrics for the gate to ratio.
func BenchmarkObsIngestOverhead(b *testing.B) {
	instrumented := benchIngestHandler(b, true, false)
	bare := benchIngestHandler(b, false, false)
	var instNS, bareNS time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		instrumented()
		t1 := time.Now()
		bare()
		t2 := time.Now()
		instNS += t1.Sub(t0)
		bareNS += t2.Sub(t1)
	}
	b.ReportMetric(float64(instNS.Nanoseconds())/float64(b.N), "inst-ns/op")
	b.ReportMetric(float64(bareNS.Nanoseconds())/float64(b.N), "bare-ns/op")
}

// BenchmarkObsIngestTraced is the tracing-overhead pair the CI gate also
// reads: metrics AND the span tracer live at the default 1-in-16 sampling
// rate versus a fully stripped server, paired per iteration like Overhead.
// Every request records its spans (keep is decided at root end), so this
// measures the real per-request recording cost, not just the sampled keeps.
func BenchmarkObsIngestTraced(b *testing.B) {
	traced := benchIngestHandler(b, true, true)
	plain := benchIngestHandler(b, false, false)
	var tracedNS, plainNS time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		traced()
		t1 := time.Now()
		plain()
		t2 := time.Now()
		tracedNS += t1.Sub(t0)
		plainNS += t2.Sub(t1)
	}
	b.ReportMetric(float64(tracedNS.Nanoseconds())/float64(b.N), "traced-ns/op")
	b.ReportMetric(float64(plainNS.Nanoseconds())/float64(b.N), "plain-ns/op")
}
