package httpapi

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"coresetclustering/internal/obs"
	"coresetclustering/internal/persist"
	"coresetclustering/internal/server/engine"
)

// lockedBuf is an io.Writer test sink safe to read while handlers still log.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func scrapeMetrics(t *testing.T, baseURL string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("generated request ID %q, want 16 hex chars", id)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16})
	for _, tc := range []struct {
		sent string
		keep bool
	}{
		{"client-abc-123", true},
		{"", false},                         // absent: a fresh one is minted
		{"has spaces in it", false},         // would break the log grammar
		{strings.Repeat("x", 100), false},   // unbounded caller bytes
		{"quote\"and=equals", false},        // log-injection shapes
		{"trace-7f3a/span-12:q.v_ok", true}, // ordinary printable punctuation
	} {
		req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if tc.sent != "" {
			req.Header.Set("X-Request-ID", tc.sent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got := resp.Header.Get("X-Request-ID")
		if got == "" {
			t.Fatalf("sent %q: no X-Request-ID echoed", tc.sent)
		}
		if tc.keep && got != tc.sent {
			t.Errorf("sent well-formed ID %q, echoed %q", tc.sent, got)
		}
		if !tc.keep && got == tc.sent {
			t.Errorf("malformed ID %q was echoed verbatim", tc.sent)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, config{k: 3, budget: 30})
	doJSON(t, "POST", ts.URL+"/streams/plain/points", batch(blobs(120, 2, 1)), nil)
	doJSON(t, "POST", ts.URL+"/streams/plain/points", batch(blobs(80, 2, 2)), nil)
	doJSON(t, "POST", ts.URL+"/streams/win/points?window=50", batch(blobs(300, 2, 3)), nil)
	doJSON(t, "GET", ts.URL+"/streams/plain/centers", nil, nil) // miss
	doJSON(t, "GET", ts.URL+"/streams/plain/centers", nil, nil) // hit

	body, resp := scrapeMetrics(t, ts.URL)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	for _, want := range []string{
		`kcenterd_ingest_points_total 500`,
		`kcenterd_ingest_batches_total 3`,
		`kcenterd_extraction_cache_hits_total 1`,
		`kcenterd_extraction_cache_misses_total 1`,
		"# TYPE kcenterd_http_requests_total counter",
		`kcenterd_http_requests_total{route="POST /streams/{name}/points",method="POST",status="200"} 3`,
		"# TYPE kcenterd_http_request_duration_seconds histogram",
		`kcenterd_http_request_duration_seconds_bucket{route="GET /streams/{name}/centers",le="+Inf"} 2`,
		"kcenterd_http_in_flight_requests 1", // the scrape itself
		"kcenterd_streams 2",
		`kcenterd_stream_observed_points{stream="plain"} 200`,
		`kcenterd_stream_observed_points{stream="win"} 300`,
		`kcenterd_stream_live_points{stream="win"}`,
		"kcenterd_uptime_seconds",
		"kcenterd_streams_omitted 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// The window stream (size 50, 300 points in) must have evicted.
	m := regexp.MustCompile(`kcenterd_stream_evicted_points_total (\d+)`).FindStringSubmatch(body)
	if m == nil {
		t.Fatal("scrape missing kcenterd_stream_evicted_points_total")
	}
	if m[1] == "0" {
		t.Error("evicted-points counter still zero after overflowing a count window")
	}
	// Insertion-only streams export no live-points series.
	if strings.Contains(body, `kcenterd_stream_live_points{stream="plain"}`) {
		t.Error("live-points series exported for a non-window stream")
	}
}

func TestMetricsPersistSeries(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(config{k: 2, budget: 16})
	store.Close()
	store, err = persist.Open(dir, persist.Options{
		Fsync: persist.FsyncAlways,
		Hooks: srv.eng.Metrics.PersistHooks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv.eng.Store = store
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	doJSON(t, "POST", ts.URL+"/streams/d/points", batch(blobs(40, 2, 4)), nil)
	doJSON(t, "POST", ts.URL+"/streams/d/points", batch(blobs(40, 2, 5)), nil)

	body, _ := scrapeMetrics(t, ts.URL)
	// The create record is part of the initial WAL image, not an append, so
	// only the two ingest batches fire AppendDone/FsyncDone.
	for _, want := range []string{
		`kcenterd_wal_appends_total{op="batch"} 2`,
		"kcenterd_wal_fsyncs_total 2",
		"# TYPE kcenterd_wal_append_duration_seconds histogram",
		"kcenterd_wal_append_bytes_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestMetricsWaitFreeUnderIngestMutex extends the daemon's wait-free claim to
// the scrape path: /metrics must answer with a stream's ingest mutex HELD.
func TestMetricsWaitFreeUnderIngestMutex(t *testing.T) {
	srv := newServer(config{k: 3, budget: 30})
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	if resp := doJSON(t, "POST", ts.URL+"/streams/locked/points", batch(blobs(60, 2, 8)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	st, ok := srv.eng.Lookup("locked")
	if !ok {
		t.Fatal("stream not found")
	}
	st.Mu.Lock()
	defer st.Mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Error(err)
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("scrape with the ingest mutex held: status %d", resp.StatusCode)
		}
		if !strings.Contains(string(body), `kcenterd_stream_observed_points{stream="locked"} 60`) {
			t.Error("scrape under a held ingest mutex missing the stream's series")
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("/metrics blocked on the ingest mutex")
	}
}

func TestMetricsStreamCardinalityCap(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16, obsMaxStreams: 2})
	for _, name := range []string{"a", "b", "c", "d"} {
		doJSON(t, "POST", ts.URL+"/streams/"+name+"/points", batch(blobs(10, 2, 9)), nil)
	}
	body, _ := scrapeMetrics(t, ts.URL)
	if !strings.Contains(body, "kcenterd_streams 4") {
		t.Error("stream census must count every stream, capped or not")
	}
	if !strings.Contains(body, "kcenterd_streams_omitted 2") {
		t.Error("scrape must export how many streams the cap omitted")
	}
	// Alphabetically first names win, deterministically.
	for _, name := range []string{"a", "b"} {
		if !strings.Contains(body, fmt.Sprintf(`kcenterd_stream_observed_points{stream=%q}`, name)) {
			t.Errorf("capped scrape missing stream %q", name)
		}
	}
	for _, name := range []string{"c", "d"} {
		if strings.Contains(body, fmt.Sprintf(`kcenterd_stream_observed_points{stream=%q}`, name)) {
			t.Errorf("capped scrape still exports stream %q", name)
		}
	}
}

// TestHealthzDegradedOnFailedStream: a stream set aside mid-flight flips the
// liveness probe to 503 with the failure listed, /streams reports the name
// with status "failed", and recreating the name restores a healthy answer.
func TestHealthzDegradedOnFailedStream(t *testing.T) {
	dir := t.TempDir()
	ds := newDurableServer(t, dir, config{k: 3, budget: 30}, persist.Options{Fsync: persist.FsyncAlways})
	url := ds.http.URL + "/streams/shaky"
	doJSON(t, "POST", url+"/points", batch(blobs(50, 2, 1)), nil)

	if resp := doJSON(t, "GET", ds.http.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before failure: status %d", resp.StatusCode)
	}

	engine.ApplyPointHook = func(i int) error {
		if i == 3 {
			return fmt.Errorf("injected apply failure at point %d", i)
		}
		return nil
	}
	defer func() { engine.ApplyPointHook = func(int) error { return nil } }()
	if resp := doJSON(t, "POST", url+"/points", batch(blobs(10, 2, 2)), nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("diverged ingest: status %d, want 500", resp.StatusCode)
	}

	var health struct {
		Status        string            `json:"status"`
		FailedStreams map[string]string `json:"failedStreams"`
	}
	resp := doJSON(t, "GET", ds.http.URL+"/healthz", nil, &health)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a failed stream: status %d, want 503", resp.StatusCode)
	}
	if health.Status != "degraded" || health.FailedStreams["shaky"] == "" {
		t.Fatalf("degraded payload: %+v", health)
	}

	var list struct {
		Streams []streamStats `json:"streams"`
	}
	doJSON(t, "GET", ds.http.URL+"/streams", nil, &list)
	var found bool
	for _, st := range list.Streams {
		if st.Name == "shaky" {
			found = true
			if st.Status != "failed" || st.Reason == "" {
				t.Fatalf("failed stream listed as %+v", st)
			}
		}
	}
	if !found {
		t.Fatal("failed stream missing from /streams")
	}

	body, _ := scrapeMetrics(t, ds.http.URL)
	if !strings.Contains(body, "kcenterd_streams_failed_total 1") {
		t.Error("failure counter not incremented")
	}
	if !strings.Contains(body, "kcenterd_streams_failed_current 1") {
		t.Error("current-failed gauge not exported")
	}

	// Recreating the name clears the degradation.
	engine.ApplyPointHook = func(int) error { return nil }
	if resp := doJSON(t, "POST", url+"/points", batch(blobs(20, 2, 3)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-create after set-aside: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "GET", ds.http.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after recreation: status %d, want 200", resp.StatusCode)
	}
	doJSON(t, "GET", ds.http.URL+"/streams", nil, &list)
	for _, st := range list.Streams {
		if st.Name == "shaky" && st.Status != "ok" {
			t.Fatalf("recreated stream still listed as %+v", st)
		}
	}
}

// TestDebugSurfaceIsSeparate: pprof and expvar answer on the debug mux only —
// the ingest-port routes must not expose them.
func TestDebugSurfaceIsSeparate(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16})
	for _, path := range []string{"/debug/pprof/", "/debug/vars", "/debug/traces"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on the ingest port: status %d, want 404", path, resp.StatusCode)
		}
	}
	debug := httptest.NewServer(debugRoutes(nil))
	t.Cleanup(debug.Close)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1", "/debug/vars"} {
		resp, err := http.Get(debug.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s on the debug port: status %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestSlowRequestLog(t *testing.T) {
	var buf lockedBuf
	srv := newServer(config{k: 2, budget: 16, slowReq: time.Nanosecond})
	srv.eng.Logger = obs.NewLogger(&buf, obs.LevelInfo)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	req, err := http.NewRequest("POST", ts.URL+"/streams/s/points",
		strings.NewReader(`{"points":[[1,2],[3,4]]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "slowtest-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	line := buf.String()
	for _, want := range []string{
		`msg="slow request"`, "requestId=slowtest-1",
		`route="POST /streams/{name}/points"`, "status=200", "duration=",
		"traceId=" + resp.Header.Get("X-Trace-ID"), "stages=",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-request log %q missing %q", line, want)
		}
	}

	body, _ := scrapeMetrics(t, ts.URL)
	if !strings.Contains(body, "kcenterd_http_slow_requests_total 1") {
		t.Error("slow-request counter not incremented")
	}
}

// TestBareServerStillServes: a server with metrics disabled (the benchmark
// baseline) must serve everything except /metrics, with no instrumentation.
func TestBareServerStillServes(t *testing.T) {
	srv := newServer(config{k: 2, budget: 16})
	srv.eng.Metrics = nil
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	if resp := doJSON(t, "POST", ts.URL+"/streams/x/points", batch(blobs(10, 2, 1)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("bare ingest: status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics on a bare server: status %d, want 404", resp.StatusCode)
	}
}
