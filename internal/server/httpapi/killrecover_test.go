package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"coresetclustering/internal/persist"
)

// TestMain doubles as the child-process entry point of the kill-and-recover
// test: with KCENTERD_CHILD=1 the test binary becomes a real kcenterd, so
// SIGKILL hits an actual daemon process (OS buffers, fsync and all), not a
// goroutine that a graceful shutdown path could sneak into.
func TestMain(m *testing.M) {
	if os.Getenv("KCENTERD_CHILD") == "1" {
		if err := run(context.Background(), strings.Fields(os.Getenv("KCENTERD_ARGS")), os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "kcenterd-child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// killRecoverOp is one request of the deterministic schedule the parent
// replays against both the victim daemon and the uninterrupted reference.
type killRecoverOp struct {
	path string // URL path + query
	body ingestRequest
	adv  *advanceRequest
}

// killRecoverSchedule interleaves insertion-only batches, timestamped window
// batches and clock advances.
func killRecoverSchedule(n int) []killRecoverOp {
	ops := make([]killRecoverOp, 0, n)
	ts := int64(0)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0, 1:
			ops = append(ops, killRecoverOp{
				path: "/streams/ins/points",
				body: batch(blobs(25, 3, int64(i))),
			})
		case 2:
			req := batch(blobs(15, 2, int64(1000+i)))
			req.Timestamps = make([]int64, len(req.Points))
			for j := range req.Timestamps {
				ts += int64(j % 3)
				req.Timestamps[j] = ts
			}
			ops = append(ops, killRecoverOp{
				path: "/streams/win/points?window=60&windowDur=40",
				body: req,
			})
		default:
			ts += 5
			ops = append(ops, killRecoverOp{path: "/streams/win/advance", adv: &advanceRequest{To: ts}})
		}
	}
	return ops
}

func postOp(baseURL string, op killRecoverOp) (int, error) {
	var payload any = op.body
	if op.adv != nil {
		payload = op.adv
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(baseURL+op.path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// TestKillRecoverByteIdentical is the acceptance test of the durability
// engine: a real daemon process is SIGKILLed at an arbitrary ingest-batch
// boundary, a new daemon recovers from the same -persist-dir, and every
// stream's re-snapshot must be byte-identical to an uninterrupted run over
// the acknowledged prefix — for the insertion-only AND the windowed stream.
func TestKillRecoverByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	const totalOps = 16
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			killAfter := 2 + rng.Intn(totalOps-2) // an arbitrary batch boundary
			dir := t.TempDir()

			// Start the victim daemon as a real process.
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addr := ln.Addr().String()
			ln.Close()
			child := exec.Command(os.Args[0])
			child.Env = append(os.Environ(),
				"KCENTERD_CHILD=1",
				"KCENTERD_ARGS=-addr "+addr+" -k 4 -budget 48 -persist-dir "+dir+" -fsync always -compact-every 5",
			)
			var childLog bytes.Buffer
			child.Stderr = &childLog
			if err := child.Start(); err != nil {
				t.Fatal(err)
			}
			killed := false
			defer func() {
				if !killed {
					child.Process.Kill()
					child.Wait()
				}
			}()
			waitHealthy(t, "http://"+addr, 10*time.Second, &childLog)

			// Drive the schedule; SIGKILL right after acknowledgement
			// killAfter — every acknowledged request must survive.
			ops := killRecoverSchedule(totalOps)
			for i := 0; i < killAfter; i++ {
				status, err := postOp("http://"+addr, ops[i])
				if err != nil {
					t.Fatalf("op %d: %v\nchild log:\n%s", i, err, childLog.String())
				}
				if status != http.StatusOK {
					t.Fatalf("op %d: status %d\nchild log:\n%s", i, status, childLog.String())
				}
			}
			if err := child.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
				t.Fatal(err)
			}
			child.Wait()
			killed = true

			// Uninterrupted reference over the acknowledged prefix.
			ref := newTestServer(t, config{k: 4, budget: 48})
			for i := 0; i < killAfter; i++ {
				if status, err := postOp(ref.URL, ops[i]); err != nil || status != http.StatusOK {
					t.Fatalf("reference op %d: status %d err %v", i, status, err)
				}
			}

			// Recover in-process from the same directory (same boot sequence
			// as run()) and compare re-snapshots byte for byte.
			d := newDurableServer(t, dir, config{k: 4, budget: 48},
				persist.Options{Fsync: persist.FsyncAlways, CompactEvery: 5})
			for _, name := range []string{"ins", "win"} {
				if !streamExists(t, ref.URL, name) {
					if streamExists(t, d.http.URL, name) {
						t.Fatalf("stream %q exists after recovery but not in the reference", name)
					}
					continue
				}
				got := snapshotBytes(t, d.http.URL, name)
				want := snapshotBytes(t, ref.URL, name)
				if !bytes.Equal(got, want) {
					t.Fatalf("seed %d, kill after %d/%d: stream %q re-snapshot differs (%d vs %d bytes)\nchild log:\n%s",
						seed, killAfter, totalOps, name, len(got), len(want), childLog.String())
				}
			}
		})
	}
}

func waitHealthy(t *testing.T, baseURL string, timeout time.Duration, childLog *bytes.Buffer) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon not healthy after %v\nchild log:\n%s", timeout, childLog.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func streamExists(t *testing.T, baseURL, name string) bool {
	t.Helper()
	resp, err := http.Get(baseURL + "/streams/" + name + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
