package engine

import (
	"context"
	"fmt"
	"strconv"

	kcenter "coresetclustering"
	"coresetclustering/internal/obs"
	"coresetclustering/internal/persist"
)

// AdoptRecovered installs the streams the durability layer recovered at
// boot: restore the snapshot (or rebuild an empty core from the journaled
// metadata), verify the snapshot against the metadata, replay the log tail,
// and surface the recovery stats. Streams that fail above the persistence
// layer are set aside (directory renamed *.failed) so the name stays usable.
// Boot recovery records a background trace with one child span per stream,
// always retained, so a slow boot is attributable after the fact.
func (e *Engine) AdoptRecovered(recovered []*persist.Recovered) {
	if len(recovered) == 0 {
		return
	}
	ctx, root := e.Tracer.StartBackground(context.Background(), "recovery")
	root.SetAttr("streams", strconv.Itoa(len(recovered)))
	defer root.End()
	for _, rec := range recovered {
		_, sp := obs.StartSpan(ctx, "recover.stream")
		sp.SetAttr("stream", rec.Name)
		if rec.Err != nil {
			sp.SetAttr("status", "failed")
			sp.End()
			e.Logger.Error("recovery failed, stream set aside", "stream", rec.Name, "err", rec.Err)
			e.MarkFailed(rec.Name, rec.Err.Error())
			continue
		}
		st, err := e.rebuildStream(rec)
		if err != nil {
			sp.SetAttr("status", "failed")
			sp.End()
			e.Logger.Error("recovery failed, stream set aside", "stream", rec.Name, "err", err)
			if saErr := rec.Log.SetAside(); saErr != nil {
				e.Logger.Error("setting stream aside failed", "stream", rec.Name, "err", saErr)
			}
			e.MarkFailed(rec.Name, err.Error())
			continue
		}
		e.mu.Lock()
		e.streams[rec.Name] = st
		e.mu.Unlock()
		sp.SetAttr("status", "ok")
		sp.End()
		e.Logger.Info("recovered stream", "stream", rec.Name,
			"snapshot", rec.Stats.SnapshotLoaded, "records", rec.Stats.RecordsReplayed,
			"points", rec.Stats.PointsReplayed, "tornTail", rec.Stats.TornTail)
	}
}

// rebuildStream revives one recovered stream: snapshot first, then the
// journal tail on top, exactly the order the records were acknowledged in.
func (e *Engine) rebuildStream(rec *persist.Recovered) (*Stream, error) {
	var (
		core streamCore
		meta persist.Meta
		dim  int
		err  error
	)
	if rec.Snapshot != nil {
		var info *kcenter.SketchInfo
		core, info, err = e.restoreCore(rec.Snapshot)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		meta = persist.Meta{
			K:              info.K,
			Z:              info.Z,
			Budget:         info.Budget,
			Space:          info.Distance,
			WindowSize:     info.WindowSize,
			WindowDuration: info.WindowDuration,
		}
		// The snapshot must describe the stream the journal was written for:
		// a swapped or stale file silently changing k, the metric space or
		// the window geometry would corrupt every later answer.
		if rec.HaveMeta && meta != rec.Meta {
			return nil, fmt.Errorf("snapshot metadata %+v does not match journaled metadata %+v", meta, rec.Meta)
		}
		if !rec.HaveMeta {
			if err := rec.Log.AdoptMeta(meta); err != nil {
				return nil, err
			}
		}
		dim = info.Dimensions
	} else {
		meta = rec.Meta
		core, err = e.newCore(meta.Space, meta.K, meta.Z, meta.Budget, meta.WindowSize, meta.WindowDuration)
		if err != nil {
			return nil, err
		}
	}
	for i, r := range rec.Tail {
		switch r.Op {
		case persist.OpBatch:
			if r.Timestamps != nil {
				wc, ok := core.(windowCore)
				if !ok {
					return nil, fmt.Errorf("record %d: timestamped batch journaled for a non-window stream", i)
				}
				for j, p := range r.Points {
					if err := wc.ObserveAt(p, r.Timestamps[j]); err != nil {
						return nil, fmt.Errorf("record %d: replay: %w", i, err)
					}
				}
			} else {
				for _, p := range r.Points {
					if err := core.Observe(p); err != nil {
						return nil, fmt.Errorf("record %d: replay: %w", i, err)
					}
				}
			}
			if dim == 0 {
				dim = r.Points.Dim()
			}
		case persist.OpAdvance:
			wc, ok := core.(windowCore)
			if !ok {
				return nil, fmt.Errorf("record %d: advance journaled for a non-window stream", i)
			}
			if err := wc.Advance(r.AdvanceTo); err != nil {
				return nil, fmt.Errorf("record %d: replay: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("record %d: unexpected op %v in replay tail", i, r.Op)
		}
	}
	stats := rec.Stats
	st := &Stream{
		core:     core,
		K:        meta.K,
		Z:        meta.Z,
		Budget:   meta.Budget,
		Space:    meta.Space,
		WinSize:  meta.WindowSize,
		WinDur:   meta.WindowDuration,
		dim:      dim,
		recovery: &stats,
	}
	st.log.Store(rec.Log)
	st.publishLocked(e.Metrics)
	return st, nil
}
