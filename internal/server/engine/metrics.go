package engine

import (
	"context"
	"strconv"
	"time"

	"coresetclustering/internal/obs"
	"coresetclustering/internal/persist"
)

// Metrics is the daemon's process-lifetime metric set, all under the
// kcenterd_ prefix. Recording is wait-free (see internal/obs), so every
// counter below is safe to bump from the ingest hot path, the persistence
// layer's critical sections and concurrent transport handlers alike. A nil
// *Metrics disables instrumentation entirely — every method is nil-safe —
// which is also how the benchmark measures the uninstrumented baseline.
type Metrics struct {
	Reg   *obs.Registry
	Start time.Time

	// HTTP surface (recorded by the transport middleware; defined here so one
	// registry serves the whole process).
	HTTPRequests *obs.CounterVec   // route, method, status
	HTTPDuration *obs.HistogramVec // route
	HTTPSlow     *obs.Counter
	HTTPInFlight *obs.Gauge

	// Stream lifecycle and query path.
	IngestPoints       *obs.Counter
	IngestBatches      *obs.Counter
	IngestBinaryBytes  *obs.Counter
	IngestBinaryPoints *obs.Counter
	EvictedBuckets     *obs.Counter
	EvictedPoints      *obs.Counter
	ViewPublishes      *obs.Counter
	CacheHits          *obs.Counter
	CacheMisses        *obs.Counter
	StreamsFailed      *obs.Counter

	// Persistence layer, fed by persist.Hooks.
	WALAppends       *obs.CounterVec // op
	WALAppendBytes   *obs.Counter
	WALAppendDur     *obs.Histogram
	WALFsyncs        *obs.Counter
	WALFsyncDur      *obs.Histogram
	WALGroupCommits  *obs.Counter
	WALGroupDepth    *obs.Histogram
	WALGroupDur      *obs.Histogram
	WALFlushErrors   *obs.Counter
	WALTornTails     *obs.Counter
	WALTruncatedB    *obs.Counter
	Compactions      *obs.Counter
	CompactionDur    *obs.Histogram
	CompactionFolded *obs.Counter
	Recoveries       *obs.Counter
	RecoveryDur      *obs.Histogram
	RecoveryPoints   *obs.Counter
}

func NewMetrics() *Metrics {
	r := obs.NewRegistry()
	return &Metrics{
		Reg:   r,
		Start: time.Now(),

		HTTPRequests: r.CounterVec("kcenterd_http_requests_total",
			"HTTP requests served, by route pattern, method and status code.",
			"route", "method", "status"),
		HTTPDuration: r.HistogramVec("kcenterd_http_request_duration_seconds",
			"HTTP request latency by route pattern.",
			obs.DefDurationBuckets, "route"),
		HTTPSlow: r.Counter("kcenterd_http_slow_requests_total",
			"Requests slower than the -slow-request threshold."),
		HTTPInFlight: r.Gauge("kcenterd_http_in_flight_requests",
			"Requests currently being handled."),

		IngestPoints: r.Counter("kcenterd_ingest_points_total",
			"Points acknowledged across all streams."),
		IngestBatches: r.Counter("kcenterd_ingest_batches_total",
			"Ingest batches acknowledged across all streams."),
		IngestBinaryBytes: r.Counter("kcenterd_ingest_binary_bytes_total",
			"Request-body bytes of acknowledged binary (flat-frame) ingest batches."),
		IngestBinaryPoints: r.Counter("kcenterd_ingest_binary_points_total",
			"Points acknowledged via the binary ingest protocol."),
		EvictedBuckets: r.Counter("kcenterd_stream_evicted_buckets_total",
			"Window buckets evicted across all streams."),
		EvictedPoints: r.Counter("kcenterd_stream_evicted_points_total",
			"Stream points inside evicted window buckets."),
		ViewPublishes: r.Counter("kcenterd_view_publishes_total",
			"Immutable query views published (one per acknowledged mutation)."),
		CacheHits: r.Counter("kcenterd_extraction_cache_hits_total",
			"Centers queries answered from a view's memoised extraction."),
		CacheMisses: r.Counter("kcenterd_extraction_cache_misses_total",
			"Centers queries that ran a fresh extraction."),
		StreamsFailed: r.Counter("kcenterd_streams_failed_total",
			"Streams set aside after diverging from their journal."),

		WALAppends: r.CounterVec("kcenterd_wal_appends_total",
			"WAL records appended, by op.", "op"),
		WALAppendBytes: r.Counter("kcenterd_wal_append_bytes_total",
			"Framed bytes appended to WALs."),
		WALAppendDur: r.Histogram("kcenterd_wal_append_duration_seconds",
			"WAL append latency (fsync included under -fsync=always).",
			obs.DefDurationBuckets),
		WALFsyncs: r.Counter("kcenterd_wal_fsyncs_total",
			"Successful WAL fsyncs."),
		WALFsyncDur: r.Histogram("kcenterd_wal_fsync_duration_seconds",
			"WAL fsync latency.", obs.DefDurationBuckets),
		WALGroupCommits: r.Counter("kcenterd_wal_group_commits_total",
			"Group-commit cycles (one shared fsync pass each)."),
		WALGroupDepth: r.Histogram("kcenterd_wal_group_commit_depth",
			"Appends coalesced per group-commit cycle.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		WALGroupDur: r.Histogram("kcenterd_wal_group_commit_duration_seconds",
			"Group-commit cycle latency (fsync plus ack fan-out).",
			obs.DefDurationBuckets),
		WALFlushErrors: r.Counter("kcenterd_wal_flush_errors_total",
			"Background flusher fsync failures (the log stays dirty and is retried)."),
		WALTornTails: r.Counter("kcenterd_wal_torn_tails_total",
			"WALs found ending in a defective record during recovery."),
		WALTruncatedB: r.Counter("kcenterd_wal_truncated_bytes_total",
			"Bytes discarded when truncating torn WAL tails."),
		Compactions: r.Counter("kcenterd_compactions_total",
			"Snapshot compactions completed."),
		CompactionDur: r.Histogram("kcenterd_compaction_duration_seconds",
			"Snapshot compaction latency.", obs.DefDurationBuckets),
		CompactionFolded: r.Counter("kcenterd_compaction_folded_records_total",
			"Journal records folded into snapshots by compaction."),
		Recoveries: r.Counter("kcenterd_recoveries_total",
			"Streams whose durable state was decoded at boot."),
		RecoveryDur: r.Histogram("kcenterd_recovery_duration_seconds",
			"Boot-time per-stream decode latency (snapshot + WAL scan).",
			obs.DefDurationBuckets),
		RecoveryPoints: r.Counter("kcenterd_recovery_points_replayed_total",
			"Points replayed from WAL tails at boot."),
	}
}

// PersistHooks adapts the metric set to the persistence layer's
// instrumentation seam. A nil receiver returns the zero Hooks, leaving the
// persistence hot paths on their uninstrumented branch.
func (m *Metrics) PersistHooks() persist.Hooks {
	if m == nil {
		return persist.Hooks{}
	}
	return persist.Hooks{
		AppendDone: func(op persist.Op, bytes int, d time.Duration) {
			m.WALAppends.With(op.String()).Add(1)
			m.WALAppendBytes.Add(int64(bytes))
			m.WALAppendDur.ObserveDuration(d)
		},
		FsyncDone: func(d time.Duration) {
			m.WALFsyncs.Add(1)
			m.WALFsyncDur.ObserveDuration(d)
		},
		GroupCommitDone: func(groupSize int, d time.Duration) {
			m.WALGroupCommits.Add(1)
			m.WALGroupDepth.Observe(float64(groupSize))
			m.WALGroupDur.ObserveDuration(d)
		},
		FlushError: func(error) { m.WALFlushErrors.Add(1) },
		CompactionDone: func(d time.Duration, folded int) {
			m.Compactions.Add(1)
			m.CompactionDur.ObserveDuration(d)
			m.CompactionFolded.Add(int64(folded))
		},
		TornTail: func(truncated int64) {
			m.WALTornTails.Add(1)
			m.WALTruncatedB.Add(truncated)
		},
		RecoveryDone: func(name string, d time.Duration, records int, points int64) {
			m.Recoveries.Add(1)
			m.RecoveryDur.ObserveDuration(d)
			m.RecoveryPoints.Add(points)
		},
	}
}

// PersistHooks is the full instrumentation seam handed to the persistence
// layer: the metric set's hooks plus, when tracing is enabled, the
// trace-attribution callbacks (group-commit wait as a span on the waiting
// request's trace, flusher cycles as sampled background traces).
func (e *Engine) PersistHooks() persist.Hooks {
	hooks := e.Metrics.PersistHooks()
	if t := e.Tracer; t != nil {
		hooks.AppendWait = func(ctx context.Context, op persist.Op, wait time.Duration) {
			obs.RecordSpan(ctx, "wal.wait", wait, "op", op.String())
		}
		hooks.FlushCycleDone = func(d time.Duration, flushed int) {
			t.RecordBackground("wal.flush", d, "logs", strconv.Itoa(flushed))
		}
	}
	return hooks
}
