package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	kcenter "coresetclustering"
	"coresetclustering/internal/persist"
)

// streamCore is the surface shared by the plain and the outlier-aware
// streaming clusterers, windowed or not.
type streamCore interface {
	Observe(p kcenter.Point) error
	Centers() (kcenter.Dataset, error)
	Snapshot() ([]byte, error)
	Observed() int64
	WorkingMemory() int
}

// windowCore is the additional surface of sliding-window streams: timestamped
// ingest, explicit clock advances and live-window introspection.
type windowCore interface {
	streamCore
	ObserveAt(p kcenter.Point, ts int64) error
	Advance(ts int64) error
	LastTimestamp() int64
	LiveBuckets() int
	LivePoints() int64
	EvictedBuckets() int64
	EvictedPoints() int64
}

// cloneCore returns an independent copy-on-write copy of a core: the clone
// answers Centers and Snapshot without touching the original, so it can be
// published as an immutable query view while ingest keeps mutating the
// original under the stream mutex.
func cloneCore(c streamCore) streamCore {
	switch v := c.(type) {
	case *kcenter.StreamingKCenter:
		return v.Clone()
	case *kcenter.StreamingOutliers:
		return v.Clone()
	case *kcenter.WindowedKCenter:
		return v.Clone()
	case *kcenter.WindowedOutliers:
		return v.Clone()
	default:
		panic(fmt.Sprintf("unclonable stream core %T", c))
	}
}

// ExtractKey identifies one cached extraction within a view. Today the only
// key in play is the stream's own (k, z) — the version axis of the cache is
// the view itself, which dies on the next publish.
type ExtractKey struct{ K, Z int }

type extractResult struct {
	centers kcenter.Dataset
	err     error
}

// QueryView is the immutable published read side of a stream: a point-in-time
// clone of the clusterer plus the scalar stats that describe it, swapped in
// atomically after every acknowledged mutation. Readers answer from the
// newest view without ever taking the stream's ingest mutex, so a query
// observes the state exactly as of an acknowledged batch boundary (snapshot
// isolation) and never stalls behind an in-flight append, fsync or
// compaction.
//
// Extraction and serialization are memoised per view under the view's own
// mutex (the clone's query paths share internal memos, so concurrent readers
// of ONE view serialise on that short critical section — readers of different
// views, and readers vs the writer, share nothing). A repeated query at an
// unchanged version is therefore a cache hit, byte-identical to the first
// answer; publishing a new view is the whole invalidation story.
type QueryView struct {
	core    streamCore
	Version int64  // mutations applied in-process when this view was published
	WalSeq  uint64 // newest journaled sequence folded into the view (0 without a log)

	Observed      int64
	WorkingMemory int
	Dim           int
	Window        *WindowStats // nil for insertion-only streams

	mu          sync.Mutex
	extractions map[ExtractKey]*extractResult
	snap        []byte
	snapErr     error
	snapDone    bool
}

// Centers returns the view's extraction for the given parameters, memoised;
// hit reports whether the cache already held it.
func (v *QueryView) Centers(key ExtractKey) (centers kcenter.Dataset, hit bool, err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if r, ok := v.extractions[key]; ok {
		return r.centers, true, r.err
	}
	c, err := v.core.Centers()
	if v.extractions == nil {
		v.extractions = make(map[ExtractKey]*extractResult, 1)
	}
	v.extractions[key] = &extractResult{centers: c, err: err}
	return c, false, err
}

// Snapshot returns the view's serialized sketch, memoised; hit reports
// whether the cache already held it.
func (v *QueryView) Snapshot() (snap []byte, hit bool, err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.snapDone {
		v.snap, v.snapErr = v.core.Snapshot()
		v.snapDone = true
		return v.snap, false, v.snapErr
	}
	return v.snap, true, v.snapErr
}

// Stream is one hosted stream, split into a mutable ingest side and an
// immutable published read side. Mu serialises mutations only (the
// clusterers are not safe for concurrent use): ingest and advance append
// under Mu, bump version, and publish a fresh QueryView. Readers load the
// view pointer and never touch Mu. gone flips when the stream is deleted or
// replaced by a restore; failed flips when an applied batch diverged from the
// journal — either way a caller that looked the stream up just before the
// swap fails loudly instead of acknowledging a write into an orphaned object.
type Stream struct {
	Mu      sync.Mutex
	core    streamCore // mutable ingest side; only touched under Mu
	version int64      // mutations applied in-process; under Mu
	dim     int        // fixed by the first batch (0 = not yet known); under Mu

	// Stream parameters, immutable after creation: safe to read lock-free.
	K, Z    int
	Budget  int
	Space   string
	WinSize int64 // count window (0 = none)
	WinDur  int64 // duration window (0 = none)

	view   atomic.Pointer[QueryView]
	gone   atomic.Bool
	failed atomic.Bool

	// log is the stream's durability handle (nil without a store); recovery
	// carries the boot-time recovery stats of a recovered stream, and
	// compacting guards the single in-flight background compaction.
	log        atomic.Pointer[persist.Log]
	recovery   *persist.RecoveryStats
	compacting atomic.Bool

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// Last published lifetime eviction counters, for per-publish deltas into
	// the daemon metrics; under Mu.
	lastEvictedBuckets int64
	lastEvictedPoints  int64
}

// View returns the newest published query view; it never blocks on Mu.
func (st *Stream) View() *QueryView { return st.view.Load() }

// Log returns the stream's durability handle (nil without a store).
func (st *Stream) Log() *persist.Log { return st.log.Load() }

// publishLocked snapshots the ingest side into a fresh immutable QueryView
// and swaps it in for readers, crediting the publish (and, for window
// streams, the evictions since the last publish) to the daemon metrics.
// Caller holds st.Mu (or has exclusive access during construction); m may be
// nil for an uninstrumented engine.
func (st *Stream) publishLocked(m *Metrics) {
	v := &QueryView{
		core:          cloneCore(st.core),
		Version:       st.version,
		Observed:      st.core.Observed(),
		WorkingMemory: st.core.WorkingMemory(),
		Dim:           st.dim,
	}
	if wc, ok := st.core.(windowCore); ok {
		v.Window = &WindowStats{
			Size:        st.WinSize,
			Duration:    st.WinDur,
			LiveBuckets: wc.LiveBuckets(),
			LivePoints:  wc.LivePoints(),
		}
		eb, ep := wc.EvictedBuckets(), wc.EvictedPoints()
		if m != nil {
			m.EvictedBuckets.Add(eb - st.lastEvictedBuckets)
			m.EvictedPoints.Add(ep - st.lastEvictedPoints)
		}
		st.lastEvictedBuckets, st.lastEvictedPoints = eb, ep
	}
	if lg := st.log.Load(); lg != nil {
		v.WalSeq = lg.LastSeq()
	}
	st.view.Store(v)
	if m != nil {
		m.ViewPublishes.Add(1)
	}
}

// gate rejects requests that raced a delete, restore or failure of the
// stream. Callers hold st.Mu (writers) or nothing at all (readers — the flags
// are atomic and only ever flip one way).
func (st *Stream) gate() error {
	if st.failed.Load() {
		return wrapErr(CodeStreamFailed, ErrFailed)
	}
	if st.gone.Load() {
		return wrapErr(CodeStreamGone, ErrGone)
	}
	return nil
}
