package engine

import (
	"context"
	"errors"

	kcenter "coresetclustering"
	"coresetclustering/internal/obs"
)

// Centers extracts the current k centers from the named stream's newest
// published view, never taking the stream's ingest mutex: the answer is a
// consistent snapshot as of the view's version, and a repeated query at an
// unchanged version is a cache hit (the view memoises its extraction). The
// stats returned describe the same view the centers came from.
func (e *Engine) Centers(ctx context.Context, name string) (StreamStats, kcenter.Dataset, error) {
	st, ok := e.Lookup(name)
	if !ok {
		return StreamStats{}, nil, errf(CodeUnknownStream, "unknown stream %q", name)
	}
	if err := st.gate(); err != nil {
		return StreamStats{}, nil, err
	}
	v := st.view.Load()
	_, extract := obs.StartSpan(ctx, "extract")
	centers, hit, err := v.Centers(ExtractKey{K: st.K, Z: st.Z})
	if hit {
		extract.SetAttr("cache", "hit")
	} else {
		extract.SetAttr("cache", "miss")
	}
	extract.End()
	if hit {
		st.cacheHits.Add(1)
	} else {
		st.cacheMisses.Add(1)
	}
	if m := e.Metrics; m != nil {
		if hit {
			m.CacheHits.Add(1)
		} else {
			m.CacheMisses.Add(1)
		}
	}
	if err != nil {
		// A window stream whose every bucket has been evicted has nothing to
		// answer with; other extraction failures are equally state conflicts.
		return StreamStats{}, nil, wrapErr(CodeEmptyStream, err)
	}
	return e.StatsFromView(name, st, v), centers, nil
}

// Snapshot serializes the named stream's newest published view — wait-free
// like the other reads, and memoised, so back-to-back snapshots at an
// unchanged version serialize once and answer byte-identically.
func (e *Engine) Snapshot(ctx context.Context, name string) ([]byte, error) {
	st, ok := e.Lookup(name)
	if !ok {
		return nil, errf(CodeUnknownStream, "unknown stream %q", name)
	}
	if err := st.gate(); err != nil {
		return nil, err
	}
	_, serialize := obs.StartSpan(ctx, "snapshot")
	snap, hit, err := st.view.Load().Snapshot()
	if hit {
		serialize.SetAttr("cache", "hit")
	} else {
		serialize.SetAttr("cache", "miss")
	}
	serialize.End()
	if err != nil {
		return nil, wrapErr(CodeInternal, err)
	}
	return snap, nil
}

// Restore recreates the named stream from a serialized sketch, replacing any
// existing stream of that name. With a store, the restored state becomes the
// stream's snapshot and its journal starts fresh; the canonical re-snapshot
// (not the client's bytes) is persisted so later compactions are
// byte-identical to it.
func (e *Engine) Restore(name string, data []byte) (StreamStats, error) {
	core, info, err := e.restoreCore(data)
	if err != nil {
		return StreamStats{}, wrapErr(CodeBadSketch, err)
	}
	st := &Stream{
		core: core, K: info.K, Z: info.Z, Budget: info.Budget, dim: info.Dimensions,
		Space: info.Distance, WinSize: info.WindowSize, WinDur: info.WindowDuration,
	}
	var snap []byte
	if e.Store != nil {
		if snap, err = core.Snapshot(); err != nil {
			return StreamStats{}, wrapErr(CodeInternal, err)
		}
	}
	e.mu.Lock()
	if old, ok := e.streams[name]; ok {
		// Mark the replaced stream dead under its own mutex so a caller that
		// already looked it up fails at its gate instead of acknowledging a
		// write into the orphan: taking old.Mu waits out any in-flight
		// append. (Lock order engine->stream is safe: no caller acquires the
		// engine lock while holding a stream lock.)
		old.Mu.Lock()
		old.gone.Store(true)
		if lg := old.log.Swap(nil); lg != nil {
			// The old journal dies with the old state; Replace below writes
			// the new directory contents.
			if err := lg.Remove(); err != nil {
				e.Logger.Error("restore: removing the old journal failed", "stream", name, "err", err)
			}
		}
		old.Mu.Unlock()
	}
	if e.Store != nil {
		lg, err := e.Store.Replace(name, streamMeta(st), snap)
		if err != nil {
			// Neither the old nor the new state is trustworthy now; drop the
			// name entirely rather than serving a stream that will not
			// survive a restart.
			delete(e.streams, name)
			e.mu.Unlock()
			return StreamStats{}, wrapErr(CodeInternal, err)
		}
		st.log.Store(lg)
	}
	st.publishLocked(e.Metrics)
	e.streams[name] = st
	e.mu.Unlock()
	e.ClearFailed(name)
	return e.StatsFromView(name, st, st.view.Load()), nil
}

// restoreCore revives a sketch of any kind — insertion-only or windowed,
// plain or outlier-aware — as a live stream core.
func (e *Engine) restoreCore(data []byte) (streamCore, *kcenter.SketchInfo, error) {
	info, err := kcenter.InspectSketch(data)
	if err != nil {
		return nil, nil, err
	}
	var core streamCore
	switch {
	case info.Window && info.Outliers:
		core, err = kcenter.RestoreWindowedOutliers(data, kcenter.WithWorkers(e.Cfg.Workers))
	case info.Window:
		core, err = kcenter.RestoreWindowedKCenter(data, kcenter.WithWorkers(e.Cfg.Workers))
	case info.Outliers:
		core, err = kcenter.RestoreStreamingOutliers(data, kcenter.WithWorkers(e.Cfg.Workers))
	default:
		core, err = kcenter.RestoreStreamingKCenter(data, kcenter.WithWorkers(e.Cfg.Workers))
	}
	if err != nil {
		return nil, nil, err
	}
	return core, info, nil
}

// MergeResult is the outcome of merging shard sketches: the merged sketch
// bytes, the total points it accounts for, and (when non-empty) the global
// centers extracted from it.
type MergeResult struct {
	Sketch   []byte
	Observed int64
	Centers  kcenter.Dataset
}

// Merge unions independently built shard sketches into one global sketch and
// extracts its centers — the paper's round-2 composition as an engine
// operation. Incompatible sketches (window sketches, mismatched parameters)
// surface kcenter.ErrMergeIncompatible wrapped as a shard_incompatible
// error; malformed bytes are bad_sketch.
func (e *Engine) Merge(blobs [][]byte) (MergeResult, error) {
	if len(blobs) == 0 {
		return MergeResult{}, errf(CodeEmptyBatch, "no sketches to merge")
	}
	merged, err := kcenter.MergeSketches(blobs...)
	if err != nil {
		if errors.Is(err, kcenter.ErrMergeIncompatible) {
			return MergeResult{}, wrapErr(CodeShardIncompatible, err)
		}
		return MergeResult{}, wrapErr(CodeBadSketch, err)
	}
	core, info, err := e.restoreCore(merged)
	if err != nil {
		return MergeResult{}, wrapErr(CodeInternal, err)
	}
	res := MergeResult{Sketch: merged, Observed: info.Observed}
	if info.Observed > 0 {
		centers, err := core.Centers()
		if err != nil {
			return MergeResult{}, wrapErr(CodeInternal, err)
		}
		res.Centers = centers
	}
	return res, nil
}

// Healthz reports the engine's health: ok (nil map) or the failed-stream
// table an orchestrator should surface rather than round-robin past.
func (e *Engine) Healthz() (ok bool, failed map[string]string) {
	failed = e.FailedStreams()
	return len(failed) == 0, failed
}
