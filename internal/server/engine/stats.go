package engine

import (
	"sort"

	"coresetclustering/internal/persist"
)

// WindowStats is the live-window slice of a stream's stats payload.
type WindowStats struct {
	Size        int64 `json:"size,omitempty"`
	Duration    int64 `json:"duration,omitempty"`
	LiveBuckets int   `json:"liveBuckets"`
	LivePoints  int64 `json:"livePoints"`
}

// DurabilityStats surfaces the stream's journal state and, for streams that
// survived a restart, what boot-time recovery did.
type DurabilityStats struct {
	persist.LogStats
	Fsync    string                 `json:"fsync"`
	Recovery *persist.RecoveryStats `json:"recovery,omitempty"`
}

// CacheStats counts the stream's extraction-cache behaviour: a hit answers a
// centers query from the published view's memo, a miss runs the extraction
// (and primes the memo for the next query at the same version).
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// StreamStats is the introspection payload of one stream — the exact wire
// shape every transport serves.
type StreamStats struct {
	Name string `json:"name"`
	// Status is "ok" for a live stream; listings also include set-aside
	// streams with status "failed" and the failure reason.
	Status        string           `json:"status"`
	Reason        string           `json:"reason,omitempty"`
	K             int              `json:"k"`
	Z             int              `json:"z"`
	Budget        int              `json:"budget"`
	Space         string           `json:"space"`
	Observed      int64            `json:"observed"`
	WorkingMemory int              `json:"workingMemory"`
	Version       int64            `json:"version"`
	Cache         CacheStats       `json:"cache"`
	Window        *WindowStats     `json:"window,omitempty"`
	Durability    *DurabilityStats `json:"durability,omitempty"`
}

// StatsFromView assembles the stats payload from a published view plus the
// stream's lock-free counters — no stream mutex anywhere on the path (the
// durability stats read the journal's lock-free snapshot too).
func (e *Engine) StatsFromView(name string, st *Stream, v *QueryView) StreamStats {
	stats := StreamStats{
		Name:          name,
		Status:        "ok",
		K:             st.K,
		Z:             st.Z,
		Budget:        st.Budget,
		Space:         st.Space,
		Observed:      v.Observed,
		WorkingMemory: v.WorkingMemory,
		Version:       v.Version,
		Cache:         CacheStats{Hits: st.cacheHits.Load(), Misses: st.cacheMisses.Load()},
		Window:        v.Window,
	}
	if lg := st.log.Load(); lg != nil {
		stats.Durability = &DurabilityStats{
			LogStats: lg.Stats(),
			Fsync:    e.Cfg.Fsync,
			Recovery: st.recovery,
		}
	}
	return stats
}

// Stats answers the introspection query for one stream.
func (e *Engine) Stats(name string) (StreamStats, error) {
	st, ok := e.Lookup(name)
	if !ok {
		return StreamStats{}, errf(CodeUnknownStream, "unknown stream %q", name)
	}
	if err := st.gate(); err != nil {
		return StreamStats{}, err
	}
	return e.StatsFromView(name, st, st.view.Load()), nil
}

// List returns the stats of every hosted stream — live ones from their
// published views, set-aside ones as status "failed" — sorted by name.
func (e *Engine) List() []StreamStats {
	names := e.StreamNames()
	failed := e.FailedStreams()
	for name := range failed {
		// A failed name that was since recreated is listed live, not failed.
		if _, ok := e.Lookup(name); ok {
			delete(failed, name)
		} else {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]StreamStats, 0, len(names))
	for _, name := range names {
		if reason, isFailed := failed[name]; isFailed {
			out = append(out, StreamStats{Name: name, Status: "failed", Reason: reason})
			continue
		}
		if st, ok := e.Lookup(name); ok {
			out = append(out, e.StatsFromView(name, st, st.view.Load()))
		}
	}
	return out
}
