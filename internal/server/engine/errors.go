// Package engine is the transport-agnostic core of the kcenterd daemon: the
// stream table, batch ingest and apply, published query views with their
// extraction caches, journal-then-apply durability against internal/persist,
// background compaction and boot recovery. It exposes every operation a
// transport needs — ingest, advance, stats, centers, snapshot, restore,
// delete, list, merge — as methods on Engine returning typed *Error values,
// and knows nothing about HTTP: internal/server/httpapi translates Engine
// errors to wire status codes, and internal/server/router composes many
// engines' daemons into one cluster. The package must never import net/http.
package engine

import (
	"errors"
	"fmt"
)

// Stable machine-readable error codes carried by every failed Engine
// operation (and surfaced verbatim in every transport's error responses).
const (
	CodeInvalidJSON       = "invalid_json"
	CodeEmptyBatch        = "empty_batch"
	CodeInvalidPoint      = "invalid_point"
	CodeDimensionMismatch = "dimension_mismatch"
	CodeInvalidParam      = "invalid_param"
	CodeInvalidTimestamps = "invalid_timestamps"
	CodeNotWindowed       = "not_windowed"
	CodeUnknownStream     = "unknown_stream"
	CodeStreamGone        = "stream_gone"
	CodeStreamFailed      = "stream_failed"
	CodeBadSketch         = "bad_sketch"
	CodeEmptyStream       = "empty_stream"
	CodeBodyTooLarge      = "body_too_large"
	CodeInvalidFrame      = "invalid_frame"
	CodeUnsupportedMedia  = "unsupported_media_type"
	CodeShardIncompatible = "shard_incompatible"
	CodeShardUnavailable  = "shard_unavailable"
	CodeInternal          = "internal"
)

// Error is the typed failure of an Engine operation: a stable machine-
// readable code plus the underlying cause. Error() renders the cause alone,
// so a transport that prints the message and the code separately produces
// exactly the pre-refactor response bodies.
type Error struct {
	Code string
	Err  error
}

func (e *Error) Error() string { return e.Err.Error() }

func (e *Error) Unwrap() error { return e.Err }

// errf builds a typed Error from a format string.
func errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Err: fmt.Errorf(format, args...)}
}

// wrapErr types an existing error without re-wording it.
func wrapErr(code string, err error) *Error {
	return &Error{Code: code, Err: err}
}

// CodeOf extracts the machine-readable code of an Engine error; unexpected
// (untyped) errors report CodeInternal.
func CodeOf(err error) string {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return CodeInternal
}

// ErrGone is returned to clients whose request lost a race with a delete or
// restore of the same stream; retrying observes the new state.
var ErrGone = errors.New("stream was deleted or replaced concurrently; retry")

// ErrFailed is returned for a stream whose in-memory state diverged from its
// journal (an apply failure after the WAL acknowledged the batch): the stream
// was set aside and the name is free again.
var ErrFailed = errors.New("stream diverged from its journal and was set aside; recreate it")

// ErrPersistFailed marks stream-creation failures of the durability layer,
// so transports report an internal error instead of blaming the client's
// params.
var ErrPersistFailed = errors.New("durability layer failure")
