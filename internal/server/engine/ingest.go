package engine

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"coresetclustering/internal/metric"
	"coresetclustering/internal/obs"
	"coresetclustering/internal/persist"
)

// ValidateBatch enforces every precondition of an ingest batch BEFORE any
// point is applied, so a rejected batch never partially mutates the stream:
// non-empty, finite coordinates, rectangular dimensions, and (when present)
// one sorted non-negative timestamp per point.
func ValidateBatch(points metric.Dataset, timestamps []int64) error {
	if len(points) == 0 {
		return errf(CodeEmptyBatch, "empty batch")
	}
	if err := points.Validate(); err != nil {
		code := CodeInvalidPoint
		if errors.Is(err, metric.ErrDimensionMismatch) {
			code = CodeDimensionMismatch
		}
		return wrapErr(code, err)
	}
	if points.Dim() == 0 {
		// Zero-dimension points would collide with the "dimension not yet
		// known" sentinel and poison later real batches.
		return errf(CodeInvalidPoint, "points must have at least one coordinate")
	}
	if timestamps != nil {
		if len(timestamps) != len(points) {
			return errf(CodeInvalidTimestamps, "%d timestamps for %d points", len(timestamps), len(points))
		}
		for i, ts := range timestamps {
			if ts < 0 {
				return errf(CodeInvalidTimestamps, "timestamp %d is negative (%d)", i, ts)
			}
			if i > 0 && ts < timestamps[i-1] {
				return errf(CodeInvalidTimestamps,
					"timestamp %d (%d) precedes timestamp %d (%d)", i, ts, i-1, timestamps[i-1])
			}
		}
	}
	return nil
}

// ApplyPointHook is a test seam called before each point of a batch is
// applied: a non-nil error simulates a mid-batch apply failure, which is
// otherwise unreachable because batches are fully validated up front. The
// default is free of overhead beyond one predictable branch.
var ApplyPointHook = func(i int) error { return nil }

// CompactStartHook is a test seam called at the start of a background
// compaction, before the view is serialized; tests block here to prove
// ingest proceeds while a compaction is in flight.
var CompactStartHook = func() {}

// Ingest applies one fully validated, stream-owned batch to the named
// stream (creating it on first touch with p), journaling it first when the
// engine is durable. binaryBytes is the request-body size of a binary-protocol
// batch (for the protocol counters), or negative for JSON.
//
// Under group commit the WAL write (BeginBatch) is issued under the stream
// mutex — so journal order equals apply order — but the covering fsync is
// awaited AFTER the mutex is released: while this batch's fsync is in flight,
// the next batches append their frames and join the same disk flush, which is
// where the -fsync=always throughput multiple comes from. The acknowledgement
// still implies durability per the fsync mode; a Wait failure is an internal
// error on a now-poisoned log, exactly like an inline fsync failure.
func (e *Engine) Ingest(ctx context.Context, name string, batch metric.Dataset, timestamps []int64, binaryBytes int, p CreateParams) (StreamStats, error) {
	if timestamps != nil {
		// Reject timestamps aimed at a non-window stream BEFORE getOrCreate
		// runs: otherwise a first ingest that forgot ?window= would create a
		// plain stream as a side effect of its own rejection, permanently
		// locking the name to the wrong flavour. (The locked re-check below
		// stays authoritative against creation races.)
		if st, ok := e.Lookup(name); ok {
			if _, isWin := st.core.(windowCore); !isWin {
				return StreamStats{}, errf(CodeNotWindowed,
					"timestamps are only accepted by window streams (create with ?window= or ?windowDur=)")
			}
		} else if p.WinErr == nil && p.WinSize == 0 && p.WinDur == 0 {
			// == 0, not <= 0: explicitly negative bounds fall through to
			// getOrCreate's own validation and report invalid_param instead
			// of a misleading "add ?window=" hint.
			return StreamStats{}, errf(CodeNotWindowed,
				"timestamped batches need a window stream: create it with ?window= or ?windowDur=")
		}
	}
	st, err := e.getOrCreate(name, p)
	if err != nil {
		return StreamStats{}, err
	}

	st.Mu.Lock()
	if err := st.gate(); err != nil {
		st.Mu.Unlock()
		return StreamStats{}, err
	}
	if st.dim != 0 && batch.Dim() != st.dim {
		st.Mu.Unlock()
		return StreamStats{}, errf(CodeDimensionMismatch,
			"batch dimension %d does not match stream dimension %d", batch.Dim(), st.dim)
	}
	if timestamps != nil {
		wc, ok := st.core.(windowCore)
		if !ok {
			st.Mu.Unlock()
			return StreamStats{}, errf(CodeNotWindowed,
				"timestamps are only accepted by window streams (create with ?window= or ?windowDur=)")
		}
		// The stream's clock only moves forward; checked up front so the
		// whole batch is rejected before any point lands — and before it is
		// journaled, so a record that would fail replay is never written.
		if last := wc.LastTimestamp(); timestamps[0] < last {
			st.Mu.Unlock()
			return StreamStats{}, errf(CodeInvalidTimestamps,
				"batch starts at timestamp %d, stream is already at %d", timestamps[0], last)
		}
	}
	// Journal, then apply: the batch has passed every validation that could
	// reject it, so the WAL record and the in-memory mutation stand or fall
	// together, and the acknowledgement below implies durability (per the
	// fsync mode). The frame is written and sequenced here under st.Mu —
	// journal order equals apply order — but under group commit the covering
	// fsync is awaited only after the mutex is released, so concurrent
	// batches on this and other streams share disk flushes.
	var pending *persist.Pending
	if lg := st.log.Load(); lg != nil {
		_, journal := obs.StartSpan(ctx, "journal")
		pn, err := lg.BeginBatch(batch, timestamps)
		journal.End()
		if err != nil {
			st.Mu.Unlock()
			return StreamStats{}, wrapErr(CodeInternal, err)
		}
		pending = pn
	}
	_, apply := obs.StartSpan(ctx, "apply")
	apply.SetAttr("points", strconv.Itoa(len(batch)))
	var applyErr error
	if timestamps != nil {
		wc := st.core.(windowCore)
		for i, pt := range batch {
			if applyErr = ApplyPointHook(i); applyErr != nil {
				break
			}
			if applyErr = wc.ObserveAt(pt, timestamps[i]); applyErr != nil {
				break
			}
		}
	} else {
		for i, pt := range batch {
			if applyErr = ApplyPointHook(i); applyErr != nil {
				break
			}
			if applyErr = st.core.Observe(pt); applyErr != nil {
				break
			}
		}
	}
	apply.End()
	if applyErr != nil {
		// The journal acknowledged records the in-memory state no longer
		// reflects (the batch was only partially applied): every later answer
		// and every replay would silently diverge. Fail the stream — set it
		// aside like an unrecoverable boot, free the name — instead of
		// serving corrupt state.
		st.failed.Store(true)
		st.gone.Store(true)
		st.Mu.Unlock()
		e.failStream(name, st, applyErr)
		return StreamStats{}, wrapErr(CodeStreamFailed,
			fmt.Errorf("batch failed to apply after it was journaled; %w: %v", ErrFailed, applyErr))
	}
	st.dim = batch.Dim()
	st.version++
	_, publish := obs.StartSpan(ctx, "publish")
	st.publishLocked(e.Metrics)
	publish.End()
	e.maybeCompactLocked(name, st)
	stats := e.StatsFromView(name, st, st.view.Load())
	st.Mu.Unlock()
	// Block for durability OUTSIDE the stream mutex: this is the group-commit
	// window — while this batch's fsync is in flight, the next requests take
	// st.Mu, journal their frames and join the next flush. A Wait failure
	// means the fsync failed after the frame was written; the log is poisoned
	// and the outcome is indeterminate (the frame may or may not survive
	// recovery), so the client gets an internal error, never an ack. The
	// applied-but-unacked view state is the same transient recovery would
	// produce. WaitCtx attributes the enqueue→ack time to this request's
	// trace as a wal.wait span.
	if pending != nil {
		if err := pending.WaitCtx(ctx); err != nil {
			return StreamStats{}, wrapErr(CodeInternal, err)
		}
	}
	if m := e.Metrics; m != nil {
		m.IngestBatches.Add(1)
		m.IngestPoints.Add(int64(len(batch)))
		if binaryBytes >= 0 {
			m.IngestBinaryBytes.Add(int64(binaryBytes))
			m.IngestBinaryPoints.Add(int64(len(batch)))
		}
	}
	return stats, nil
}

// Advance moves a window stream's clock forward without observing a point,
// evicting buckets that age out of a duration window.
func (e *Engine) Advance(ctx context.Context, name string, to int64) (StreamStats, error) {
	st, ok := e.Lookup(name)
	if !ok {
		return StreamStats{}, errf(CodeUnknownStream, "unknown stream %q", name)
	}
	st.Mu.Lock()
	if err := st.gate(); err != nil {
		st.Mu.Unlock()
		return StreamStats{}, err
	}
	wc, ok := st.core.(windowCore)
	if !ok {
		st.Mu.Unlock()
		return StreamStats{}, errf(CodeNotWindowed, "only window streams have a clock to advance")
	}
	// Validated before journaling, so a record that would fail replay is
	// never written.
	if to < 0 {
		st.Mu.Unlock()
		return StreamStats{}, errf(CodeInvalidTimestamps, "advance target %d is negative", to)
	}
	if last := wc.LastTimestamp(); to < last {
		st.Mu.Unlock()
		return StreamStats{}, errf(CodeInvalidTimestamps,
			"advance target %d precedes the stream clock %d", to, last)
	}
	var pending *persist.Pending
	if lg := st.log.Load(); lg != nil {
		_, journal := obs.StartSpan(ctx, "journal")
		p, err := lg.BeginAdvance(to)
		journal.End()
		if err != nil {
			st.Mu.Unlock()
			return StreamStats{}, wrapErr(CodeInternal, err)
		}
		pending = p
	}
	_, apply := obs.StartSpan(ctx, "apply")
	if err := wc.Advance(to); err != nil {
		apply.End()
		// Same divergence as a mid-batch apply failure: the journal holds a
		// record the in-memory state rejected.
		st.failed.Store(true)
		st.gone.Store(true)
		st.Mu.Unlock()
		e.failStream(name, st, err)
		return StreamStats{}, wrapErr(CodeStreamFailed,
			fmt.Errorf("advance failed to apply after it was journaled; %w: %v", ErrFailed, err))
	}
	apply.End()
	st.version++
	_, publish := obs.StartSpan(ctx, "publish")
	st.publishLocked(e.Metrics)
	publish.End()
	e.maybeCompactLocked(name, st)
	stats := e.StatsFromView(name, st, st.view.Load())
	st.Mu.Unlock()
	// Same ordering as Ingest: durability is awaited outside st.Mu so
	// concurrent writers share the covering fsync.
	if pending != nil {
		if err := pending.WaitCtx(ctx); err != nil {
			return StreamStats{}, wrapErr(CodeInternal, err)
		}
	}
	return stats, nil
}

// failStream sets a diverged stream aside (journal renamed *.failed, name
// removed from the table). Called WITHOUT st.Mu: the failed/gone flags are
// already set, so every concurrent caller fails at its gate, and the map
// removal needs the engine lock (lock order is engine -> stream).
func (e *Engine) failStream(name string, st *Stream, cause error) {
	e.Logger.Error("apply diverged from the journal, stream set aside", "stream", name, "err", cause)
	if lg := st.log.Swap(nil); lg != nil {
		if err := lg.SetAside(); err != nil {
			e.Logger.Error("setting stream aside failed", "stream", name, "err", err)
		}
	}
	e.mu.Lock()
	if cur, ok := e.streams[name]; ok && cur == st {
		delete(e.streams, name)
	}
	e.mu.Unlock()
	e.MarkFailed(name, cause.Error())
}

// maybeCompactLocked kicks off a background snapshot compaction when the
// stream's journal has grown past the threshold. Caller holds st.Mu and has
// just published the current view, so the view's WalSeq covers every
// journaled record; the compaction itself captures that view and runs with NO
// stream lock at all — serialization and the disk I/O (snapshot write, WAL
// rewrite, fsyncs) happen entirely off the ingest path, and records appended
// meanwhile are preserved by CompactAt. At most one compaction per stream is
// in flight. Each compaction records a background trace of its own
// (serialize + wal.compact stages), always retained.
func (e *Engine) maybeCompactLocked(name string, st *Stream) {
	lg := st.log.Load()
	if lg == nil || !lg.ShouldCompact() {
		return
	}
	if !st.compacting.CompareAndSwap(false, true) {
		return
	}
	v := st.view.Load()
	go func() {
		defer st.compacting.Store(false)
		CompactStartHook()
		if st.gone.Load() {
			return
		}
		ctx, root := e.Tracer.StartBackground(context.Background(), "compact")
		root.SetAttr("stream", name)
		defer root.End()
		_, serialize := obs.StartSpan(ctx, "serialize")
		snap, _, err := v.Snapshot()
		serialize.End()
		if err != nil {
			root.SetAttr("error", err.Error())
			e.Logger.Error("compaction: serializing the view failed", "err", err)
			return
		}
		_, compact := obs.StartSpan(ctx, "wal.compact")
		err = lg.CompactAt(v.WalSeq, snap)
		compact.End()
		if err != nil && !errors.Is(err, persist.ErrLogRemoved) {
			root.SetAttr("error", err.Error())
			e.Logger.Error("compaction failed", "err", err)
		}
	}()
}
