package engine

import (
	"fmt"
	"sort"
	"sync"

	kcenter "coresetclustering"
	"coresetclustering/internal/obs"
	"coresetclustering/internal/persist"
	"coresetclustering/internal/sketch"
)

// Config carries the engine defaults applied to implicitly created streams.
type Config struct {
	K       int
	Z       int
	Budget  int
	Workers int
	Dist    string
	Fsync   string // fsync mode name, surfaced in durability stats
}

// Engine hosts the stream table and implements every daemon operation as a
// transport-agnostic method. The observability handles are plain fields so
// an embedder (or a benchmark) can strip instrumentation by nilling them:
// every recording site is nil-safe.
type Engine struct {
	Cfg     Config
	Store   *persist.Store // nil = in-memory only
	Logger  *obs.Logger    // nil-safe; nil drops everything
	Metrics *Metrics       // nil disables instrumentation entirely
	Tracer  *obs.Tracer    // nil disables tracing; every recording site is nil-safe

	mu      sync.RWMutex
	streams map[string]*Stream

	// failed records streams set aside after diverging from their journal
	// (at boot or mid-flight), keyed by name, until the name is reused.
	// Drives the degraded health answer and the stream-list status entries.
	failedMu sync.Mutex
	failed   map[string]string
}

// New builds an engine with normalised defaults. The caller wires Store,
// Logger, Metrics and Tracer afterwards (or leaves them nil).
func New(cfg Config) *Engine {
	if cfg.Budget <= 0 {
		cfg.Budget = 8 * (cfg.K + cfg.Z)
	}
	if cfg.Dist == "" {
		cfg.Dist = "euclidean"
	}
	if cfg.Fsync == "" {
		cfg.Fsync = persist.FsyncAlways.String()
	}
	return &Engine{
		Cfg:     cfg,
		streams: make(map[string]*Stream),
	}
}

// Lookup returns the named stream, if hosted.
func (e *Engine) Lookup(name string) (*Stream, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st, ok := e.streams[name]
	return st, ok
}

// StreamCount reports how many live streams the engine hosts.
func (e *Engine) StreamCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.streams)
}

// StreamNames returns the live stream names, sorted.
func (e *Engine) StreamNames() []string {
	e.mu.RLock()
	names := make([]string, 0, len(e.streams))
	for name := range e.streams {
		names = append(names, name)
	}
	e.mu.RUnlock()
	sort.Strings(names)
	return names
}

// CreateParams is the parameter set of an implicit stream creation, already
// resolved against the engine defaults by the transport. Err defers a parse
// failure of the creation-only parameters (first of k, z, budget, window,
// windowDur in that order): it surfaces (as invalid_param) only if the
// request actually reaches the creation path — an existing stream ignores
// malformed ?k=/?z=/?budget= exactly as the pre-refactor daemon did. WinErr
// carries a parse failure of the window parameters alone, which an existing
// stream does reject (its flavour check must read them).
type CreateParams struct {
	K, Z    int
	Budget  int
	WinSize int64
	WinDur  int64
	Err     error
	WinErr  error
}

// newCore builds a streaming clusterer for the given parameters. The space
// name resolves to a full metric Space (batched kernels + surrogate), so
// ingest runs on the native hot path. Positive winSize/winDur select the
// sliding-window flavour.
func (e *Engine) newCore(spaceName string, k, z, budget int, winSize, winDur int64) (streamCore, error) {
	space, _, err := sketch.SpaceByName(spaceName)
	if err != nil {
		return nil, err
	}
	opts := []kcenter.Option{kcenter.WithSpace(space), kcenter.WithWorkers(e.Cfg.Workers)}
	if winSize > 0 || winDur > 0 {
		opts = append(opts, kcenter.WithWindowSize(int(winSize)), kcenter.WithWindowDuration(winDur))
		if z > 0 {
			return kcenter.NewWindowedOutliers(k, z, budget, opts...)
		}
		return kcenter.NewWindowedKCenter(k, budget, opts...)
	}
	if z > 0 {
		return kcenter.NewStreamingOutliers(k, z, budget, opts...)
	}
	return kcenter.NewStreamingKCenter(k, budget, opts...)
}

// flavourMismatch rejects window parameters aimed at an existing
// insertion-only stream: silently dropping them would acknowledge ingest into
// a stream that never evicts, permanently locking the name to the wrong
// flavour. (WinSize/WinDur are set once at creation and never mutated, so
// reading them without the stream mutex is safe.)
func flavourMismatch(st *Stream, p CreateParams) error {
	if p.WinErr != nil {
		return wrapErr(CodeInvalidParam, p.WinErr)
	}
	if (p.WinSize > 0 || p.WinDur > 0) && st.WinSize == 0 && st.WinDur == 0 {
		return errf(CodeInvalidParam,
			"stream already exists as insertion-only; ?window=/?windowDur= cannot convert it (delete and recreate)")
	}
	return nil
}

// getOrCreate returns the named stream, creating it with the request's (or
// the engine's) parameters on first touch.
func (e *Engine) getOrCreate(name string, p CreateParams) (*Stream, error) {
	e.mu.RLock()
	st, ok := e.streams[name]
	e.mu.RUnlock()
	if ok {
		if err := flavourMismatch(st, p); err != nil {
			return nil, err
		}
		return st, nil
	}
	if p.Err != nil {
		return nil, wrapErr(CodeInvalidParam, p.Err)
	}
	if p.WinSize < 0 || p.WinDur < 0 {
		return nil, errf(CodeInvalidParam,
			"window bounds must be non-negative (window=%d windowDur=%d)", p.WinSize, p.WinDur)
	}
	budget := p.Budget
	if budget <= 0 {
		if p.K == e.Cfg.K && p.Z == e.Cfg.Z {
			budget = e.Cfg.Budget
		} else {
			budget = 8 * (p.K + p.Z)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.streams[name]; ok {
		// Lost the creation race; use the winner's stream (unless the window
		// parameters conflict with its flavour).
		if err := flavourMismatch(st, p); err != nil {
			return nil, err
		}
		return st, nil
	}
	core, err := e.newCore(e.Cfg.Dist, p.K, p.Z, budget, p.WinSize, p.WinDur)
	if err != nil {
		return nil, wrapErr(CodeInvalidParam, err)
	}
	st = &Stream{core: core, K: p.K, Z: p.Z, Budget: budget, Space: e.Cfg.Dist, WinSize: p.WinSize, WinDur: p.WinDur}
	if e.Store != nil {
		// Journal the creation before the name becomes visible. Holding e.mu
		// across the disk write serialises creation against a concurrent
		// DELETE of the same name (which tombstones the directory under
		// e.mu), so a re-create can never collide with a half-removed
		// directory. The cost — a couple of fsyncs under the engine lock —
		// is paid once per stream NAME, never on the steady-state ingest
		// path, which only takes the read lock.
		lg, err := e.Store.Create(name, streamMeta(st))
		if err != nil {
			return nil, wrapErr(CodeInternal, fmt.Errorf("%w: %v", ErrPersistFailed, err))
		}
		st.log.Store(lg)
	}
	st.publishLocked(e.Metrics)
	e.streams[name] = st
	e.ClearFailed(name)
	return st, nil
}

// streamMeta derives the journaled metadata from a stream's parameters.
func streamMeta(st *Stream) persist.Meta {
	return persist.Meta{
		K:              st.K,
		Z:              st.Z,
		Budget:         st.Budget,
		Space:          st.Space,
		WindowSize:     st.WinSize,
		WindowDuration: st.WinDur,
	}
}

// Delete drops the named stream and tombstones its durable state.
func (e *Engine) Delete(name string) error {
	e.mu.Lock()
	st, ok := e.streams[name]
	delete(e.streams, name)
	var rmErr error
	if ok {
		// Tombstone the stream's directory while still holding the engine
		// lock: creation of the same name also runs under e.mu, so a racing
		// re-create can never collide with the half-removed directory.
		// Taking st.Mu (engine->stream order, same as restore) makes the
		// delete wait for an in-flight append instead of yanking the journal
		// out from under it; callers that already hold a stale pointer see
		// gone and answer the conflict. The map entry itself is removed
		// above, so the per-stream mutex is garbage-collected with the
		// stream — the stream table cannot accumulate mutexes for deleted
		// names.
		st.Mu.Lock()
		st.gone.Store(true)
		if lg := st.log.Swap(nil); lg != nil {
			rmErr = lg.Remove()
		}
		st.Mu.Unlock()
	}
	e.mu.Unlock()
	if !ok {
		return errf(CodeUnknownStream, "unknown stream %q", name)
	}
	if rmErr != nil {
		return errf(CodeInternal, "stream dropped but its durable state could not be fully removed: %v", rmErr)
	}
	return nil
}

// MarkFailed records a stream set aside as failed, for health and listing.
func (e *Engine) MarkFailed(name, reason string) {
	e.failedMu.Lock()
	if e.failed == nil {
		e.failed = make(map[string]string)
	}
	e.failed[name] = reason
	e.failedMu.Unlock()
	if m := e.Metrics; m != nil {
		m.StreamsFailed.Add(1)
	}
}

// ClearFailed forgets a failed name once it is recreated or restored.
func (e *Engine) ClearFailed(name string) {
	e.failedMu.Lock()
	delete(e.failed, name)
	e.failedMu.Unlock()
}

// FailedStreams returns a point-in-time copy of the failed-stream table.
func (e *Engine) FailedStreams() map[string]string {
	e.failedMu.Lock()
	defer e.failedMu.Unlock()
	if len(e.failed) == 0 {
		return nil
	}
	out := make(map[string]string, len(e.failed))
	for k, v := range e.failed {
		out[k] = v
	}
	return out
}

// FailedCount reports how many streams are currently set aside as failed.
func (e *Engine) FailedCount() int {
	e.failedMu.Lock()
	defer e.failedMu.Unlock()
	return len(e.failed)
}
