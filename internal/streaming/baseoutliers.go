package streaming

import (
	"errors"
	"fmt"
	"math"

	"coresetclustering/internal/metric"
)

// BaseOutliers re-implements the McCutchen–Khuller (2008) style streaming
// algorithm for the k-center problem WITH z outliers, the BASEOUTLIERS
// baseline of Figure 5. It runs m parallel guesses of the optimal radius;
// each guess maintains at most k confirmed centers plus a pool of "free"
// (not-yet-clustered) points of size at most (k+1)*(z+1). A new center is
// opened at a free point only once z+1 free points certify it (lie within 2r
// of it) — points that cannot gather such support are potential outliers.
// When a guess needs more than k centers or overflows its free pool it is
// restarted at twice the radius, re-inserting its previous state. Space is
// Theta(m*k*z); the approximation factor approaches 4+eps as m grows.
type BaseOutliers struct {
	k, z int
	m    int
	sp   metric.Space

	initBuf   metric.Dataset
	instances []*outlierInstance
	processed int64
}

// outlierInstance is one radius guess of BaseOutliers.
type outlierInstance struct {
	r        float64
	centers  metric.Dataset
	free     metric.Dataset
	restarts int
}

// NewBaseOutliers returns a BaseOutliers with k centers, z outliers and m
// parallel guesses.
func NewBaseOutliers(dist metric.Distance, k, z, m int) (*BaseOutliers, error) {
	if k < 1 {
		return nil, fmt.Errorf("streaming: k must be positive, got %d", k)
	}
	if z < 0 {
		return nil, fmt.Errorf("streaming: z must be non-negative, got %d", z)
	}
	if m < 1 {
		return nil, fmt.Errorf("streaming: m must be positive, got %d", m)
	}
	return &BaseOutliers{k: k, z: z, m: m, sp: metric.SpaceFor(dist)}, nil
}

// distToSet is the true distance from p to the closest point of set (+Inf
// for an empty set), computed with the space's batched row kernel.
func (b *BaseOutliers) distToSet(p metric.Point, set metric.Dataset) float64 {
	s, _ := b.sp.ArgNearest(p, set)
	return b.sp.FromSurrogate(s)
}

// freeCap is the maximum size of the free pool of one guess instance.
func (b *BaseOutliers) freeCap() int { return (b.k + 1) * (b.z + 1) }

// Process implements Processor.
func (b *BaseOutliers) Process(p metric.Point) error {
	if p == nil {
		return errors.New("streaming: nil point")
	}
	b.processed++
	if b.instances == nil {
		b.initBuf = append(b.initBuf, p)
		if len(b.initBuf) < b.k+b.z+2 {
			return nil
		}
		b.initialize()
		return nil
	}
	for _, inst := range b.instances {
		b.insert(inst, p)
	}
	return nil
}

// initialize derives a lower bound from the buffered prefix and spawns the m
// guesses on a geometric grid covering one octave above it.
func (b *BaseOutliers) initialize() {
	lower := metric.NewEngine(1).MinPairwiseDistance(b.sp, b.initBuf) / 2
	if lower <= 0 || math.IsInf(lower, 1) {
		lower = math.SmallestNonzeroFloat64
	}
	ratio := math.Pow(2, 1/float64(b.m))
	b.instances = make([]*outlierInstance, b.m)
	for j := 0; j < b.m; j++ {
		b.instances[j] = &outlierInstance{r: lower * math.Pow(ratio, float64(j))}
	}
	buf := b.initBuf
	b.initBuf = nil
	for _, p := range buf {
		for _, inst := range b.instances {
			b.insert(inst, p)
		}
	}
}

// insert adds a point to a guess instance, restarting the instance at a
// doubled radius when it overflows.
func (b *BaseOutliers) insert(inst *outlierInstance, p metric.Point) {
	if b.distToSet(p, inst.centers) <= 4*inst.r {
		return // covered by an existing center
	}
	inst.free = append(inst.free, p)
	b.promote(inst)
	// Overflow: the guess radius is too small. Double it and replay the
	// instance's retained state (which already includes the new point) until
	// the budgets are respected again.
	for len(inst.centers) > b.k || len(inst.free) > b.freeCap() {
		b.restart(inst)
	}
}

// promote opens new centers at free points that have gathered z+1 supporting
// free points within distance 2r, removing from the free pool everything
// within 4r of a newly opened center.
func (b *BaseOutliers) promote(inst *outlierInstance) {
	for {
		opened := false
		for _, cand := range inst.free {
			if len(inst.centers) >= b.k+1 {
				break
			}
			support := 0
			for _, q := range inst.free {
				if b.sp.Distance(cand, q) <= 2*inst.r {
					support++
				}
			}
			if support >= b.z+1 {
				inst.centers = append(inst.centers, cand)
				kept := inst.free[:0]
				for _, q := range inst.free {
					if b.sp.Distance(cand, q) > 4*inst.r {
						kept = append(kept, q)
					}
				}
				inst.free = kept
				opened = true
				break
			}
		}
		if !opened {
			return
		}
	}
}

// restart doubles the radius of the instance and replays its centers and free
// points into the fresh state, preserving the one-pass coverage chain.
func (b *BaseOutliers) restart(inst *outlierInstance) {
	oldCenters := inst.centers
	oldFree := inst.free
	inst.centers = nil
	inst.free = nil
	inst.r *= 2
	inst.restarts++
	for _, c := range oldCenters {
		// Previous centers certified at least z+1 points each, so they stay
		// centers unless another retained center already covers them.
		if b.distToSet(c, inst.centers) > 4*inst.r && len(inst.centers) < b.k+1 {
			inst.centers = append(inst.centers, c)
		}
	}
	for _, q := range oldFree {
		if b.distToSet(q, inst.centers) > 4*inst.r {
			inst.free = append(inst.free, q)
		}
	}
	b.promote(inst)
}

// WorkingMemory implements Processor.
func (b *BaseOutliers) WorkingMemory() int {
	if b.instances == nil {
		return len(b.initBuf)
	}
	total := 0
	for _, inst := range b.instances {
		total += len(inst.centers) + len(inst.free)
	}
	return total
}

// Processed implements Processor.
func (b *BaseOutliers) Processed() int64 { return b.processed }

// Result returns the centers of the guess with the smallest radius whose
// center count does not exceed k. If the stream ended before initialisation,
// the first k buffered points are returned.
func (b *BaseOutliers) Result() (metric.Dataset, error) {
	if b.processed == 0 {
		return nil, errors.New("streaming: no points processed")
	}
	if b.instances == nil {
		out := b.initBuf.Clone()
		if len(out) > b.k {
			out = out[:b.k]
		}
		return out, nil
	}
	var best *outlierInstance
	for _, inst := range b.instances {
		if len(inst.centers) > b.k {
			continue
		}
		if best == nil || inst.r < best.r {
			best = inst
		}
	}
	if best == nil {
		best = b.instances[0]
	}
	centers := best.centers.Clone()
	// If a guess ended with fewer than k centers and some free points are
	// left, the heaviest-supported free points fill the remaining slots (they
	// may be genuine small clusters rather than outliers).
	for _, q := range best.free {
		if len(centers) >= b.k {
			break
		}
		if b.distToSet(q, centers) > 2*best.r {
			centers = append(centers, q)
		}
	}
	return centers, nil
}

// Restarts reports the total number of instance restarts across all guesses.
func (b *BaseOutliers) Restarts() int {
	total := 0
	for _, inst := range b.instances {
		total += inst.restarts
	}
	return total
}
