package streaming

import (
	"math/rand"
	"testing"

	"coresetclustering/internal/metric"
)

func parallelStreamDataset(n, dim int, seed int64) metric.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := make(metric.Dataset, n)
	for i := range ds {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		ds[i] = p
	}
	return ds
}

// TestCoresetStreamDeterminismAcrossWorkers: the query-time extraction must
// return bit-identical centers whether it runs sequentially or on the
// parallel engine; the maintained coreset itself is worker-independent by
// construction (Process is sequential).
func TestCoresetStreamDeterminismAcrossWorkers(t *testing.T) {
	ds := parallelStreamDataset(5000, 3, 17)
	build := func(workers int) metric.Dataset {
		s, err := NewCoresetStream(metric.Euclidean, 10, 200)
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		for _, p := range ds {
			if err := s.Process(p); err != nil {
				t.Fatal(err)
			}
		}
		centers, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		return centers
	}
	want := build(1)
	got := build(8)
	if len(got) != len(want) {
		t.Fatalf("%d centers, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("center %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestCoresetOutliersDeterminismAcrossWorkers: same contract for the
// outlier-aware streamer, whose query runs the parallel radius search.
func TestCoresetOutliersDeterminismAcrossWorkers(t *testing.T) {
	ds := parallelStreamDataset(3000, 3, 29)
	build := func(workers int) *OutliersResult {
		s, err := NewCoresetOutliers(metric.Euclidean, 6, 12, 120, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		for _, p := range ds {
			if err := s.Process(p); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := build(1)
	got := build(8)
	if got.SearchRadius != want.SearchRadius {
		t.Fatalf("search radius = %v, want %v", got.SearchRadius, want.SearchRadius)
	}
	if got.UncoveredWeight != want.UncoveredWeight {
		t.Fatalf("uncovered weight = %d, want %d", got.UncoveredWeight, want.UncoveredWeight)
	}
	if len(got.Centers) != len(want.Centers) {
		t.Fatalf("%d centers, want %d", len(got.Centers), len(want.Centers))
	}
	for i := range want.Centers {
		if !got.Centers[i].Equal(want.Centers[i]) {
			t.Fatalf("center %d differs", i)
		}
	}
}
