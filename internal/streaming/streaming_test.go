package streaming

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coresetclustering/internal/gmm"
	"coresetclustering/internal/metric"
)

func randomDataset(rng *rand.Rand, n, dim int, scale float64) metric.Dataset {
	ds := make(metric.Dataset, n)
	for i := range ds {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = (rng.Float64()*2 - 1) * scale
		}
		ds[i] = p
	}
	return ds
}

func clusteredDataset(rng *rand.Rand, k, perCluster, dim int, separation, spread float64) metric.Dataset {
	var ds metric.Dataset
	for c := 0; c < k; c++ {
		center := make(metric.Point, dim)
		for j := range center {
			center[j] = float64(c) * separation
		}
		for i := 0; i < perCluster; i++ {
			p := make(metric.Point, dim)
			for j := range p {
				p[j] = center[j] + rng.NormFloat64()*spread
			}
			ds = append(ds, p)
		}
	}
	// Shuffle so the stream does not present one cluster at a time.
	rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
	return ds
}

func withOutliers(rng *rand.Rand, ds metric.Dataset, nOut int) metric.Dataset {
	dim := ds.Dim()
	out := ds.Clone()
	for o := 0; o < nOut; o++ {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = 1e5 + float64(o)*1e3 + rng.Float64()
		}
		out = append(out, p)
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func feed(t *testing.T, proc Processor, ds metric.Dataset) {
	t.Helper()
	if _, err := Drain(NewSliceSource(ds), proc); err != nil {
		t.Fatal(err)
	}
}

func TestSliceSource(t *testing.T) {
	ds := metric.Dataset{{1}, {2}, {3}}
	src := NewSliceSource(ds)
	count := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 3 {
		t.Errorf("yielded %d points, want 3", count)
	}
	src.Reset()
	if p, ok := src.Next(); !ok || !p.Equal(metric.Point{1}) {
		t.Errorf("after Reset got %v %v", p, ok)
	}
}

func TestChannelSource(t *testing.T) {
	ch := make(chan metric.Point, 3)
	ch <- metric.Point{1}
	ch <- metric.Point{2}
	close(ch)
	src := NewChannelSource(ch)
	n := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("yielded %d points, want 2", n)
	}
}

func TestDrainErrors(t *testing.T) {
	if _, err := Drain(NewSliceSource(nil), nil); err == nil {
		t.Error("nil processor accepted")
	}
	d, _ := NewDoubling(metric.Euclidean, 4)
	if _, err := Drain(nil, d); err == nil {
		t.Error("nil source accepted")
	}
	// A nil point inside the stream propagates the processor error.
	if _, err := Drain(NewSliceSource(metric.Dataset{nil}), d); err == nil {
		t.Error("nil point accepted")
	}
}

func TestNewDoublingValidation(t *testing.T) {
	if _, err := NewDoubling(metric.Euclidean, 0); err == nil {
		t.Error("tau=0 accepted")
	}
	if d, err := NewDoubling(nil, 3); err != nil || d == nil {
		t.Errorf("nil distance should default: %v", err)
	}
}

func TestDoublingInvariantsProperty(t *testing.T) {
	// Invariants (a), (b), (d) hold after every prefix of a random stream.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		tau := 3 + rng.Intn(10)
		ds := randomDataset(rng, n, 3, 100)
		d, err := NewDoubling(metric.Euclidean, tau)
		if err != nil {
			return false
		}
		for _, p := range ds {
			if err := d.Process(p); err != nil {
				return false
			}
			if err := d.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Errorf("doubling invariants violated: %v", err)
	}
}

func TestDoublingInvariantEPhiLowerBound(t *testing.T) {
	// Invariant (e): phi <= r*_tau(S). Verified by brute force on small
	// streams with tiny tau.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(6)
		tau := 2 + rng.Intn(2)
		ds := randomDataset(rng, n, 2, 20)
		d, err := NewDoubling(metric.Euclidean, tau)
		if err != nil {
			return false
		}
		for _, p := range ds {
			if err := d.Process(p); err != nil {
				return false
			}
		}
		opt, err := gmm.BruteForceOptimalRadius(metric.Euclidean, ds, tau)
		if err != nil {
			return false
		}
		return d.Phi() <= opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Errorf("invariant (e) violated: %v", err)
	}
}

func TestDoublingCoverageInvariantC(t *testing.T) {
	// Invariant (c): every processed point is within 8*phi of some center.
	rng := rand.New(rand.NewSource(3))
	ds := randomDataset(rng, 300, 3, 50)
	d, err := NewDoubling(metric.Euclidean, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds {
		if err := d.Process(p); err != nil {
			t.Fatal(err)
		}
	}
	centers := d.Coreset().Points()
	bound := 8 * d.Phi()
	for i, p := range ds {
		if dist, _ := metric.DistanceToSet(metric.Euclidean, p, centers); dist > bound+1e-9 {
			t.Fatalf("point %d at distance %v from coreset, bound %v", i, dist, bound)
		}
	}
}

func TestDoublingSmallStreams(t *testing.T) {
	// Fewer than tau+1 points: the coreset is the stream itself, unit weights.
	d, err := NewDoubling(metric.Euclidean, 10)
	if err != nil {
		t.Fatal(err)
	}
	ds := metric.Dataset{{1}, {2}, {3}}
	for _, p := range ds {
		if err := d.Process(p); err != nil {
			t.Fatal(err)
		}
	}
	cs := d.Coreset()
	if len(cs) != 3 || cs.TotalWeight() != 3 {
		t.Errorf("small-stream coreset = %v", cs)
	}
	if d.WorkingMemory() != 3 {
		t.Errorf("working memory = %d, want 3", d.WorkingMemory())
	}
	if d.Tau() != 10 {
		t.Errorf("Tau = %d, want 10", d.Tau())
	}
}

func TestDoublingDuplicateInitialPoints(t *testing.T) {
	// All initial points identical: the algorithm must not divide by zero and
	// must keep functioning as distinct points arrive later.
	d, err := NewDoubling(metric.Euclidean, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Process(metric.Point{5, 5}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := d.Process(metric.Point{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.Coreset().TotalWeight() != 20 {
		t.Errorf("total weight = %d, want 20", d.Coreset().TotalWeight())
	}
}

func TestNewCoresetStreamValidation(t *testing.T) {
	if _, err := NewCoresetStream(nil, 0, 5); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewCoresetStream(nil, 5, 3); err == nil {
		t.Error("tau<k accepted")
	}
}

func TestCoresetStreamQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := 5
	ds := clusteredDataset(rng, k, 200, 3, 100, 1)
	cs, err := NewCoresetStream(nil, k, 8*k)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, cs, ds)
	centers, err := cs.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != k {
		t.Fatalf("centers = %d, want %d", len(centers), k)
	}
	r := metric.Radius(metric.Euclidean, ds, centers)
	if r > 20 {
		t.Errorf("radius = %v, want small for well-separated blobs", r)
	}
	if cs.WorkingMemory() > 8*k {
		t.Errorf("working memory = %d exceeds tau = %d", cs.WorkingMemory(), 8*k)
	}
	if cs.Processed() != int64(len(ds)) {
		t.Errorf("processed = %d, want %d", cs.Processed(), len(ds))
	}
	if _, err := (&CoresetStream{k: 1, space: metric.EuclideanSpace, doubling: mustDoubling(t, 2)}).Result(); err == nil {
		t.Error("Result on empty stream should fail")
	}
}

func mustDoubling(t *testing.T, tau int) *Doubling {
	t.Helper()
	d, err := NewDoubling(metric.Euclidean, tau)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCoresetStreamTwoPlusEpsShape(t *testing.T) {
	// Against brute force on small instances, the streaming algorithm with a
	// generous tau stays within a small constant factor of optimal.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(10)
		k := 1 + rng.Intn(3)
		ds := randomDataset(rng, n, 2, 50)
		cs, err := NewCoresetStream(nil, k, 4*k)
		if err != nil {
			return false
		}
		for _, p := range ds {
			if err := cs.Process(p); err != nil {
				return false
			}
		}
		centers, err := cs.Result()
		if err != nil {
			return false
		}
		opt, err := gmm.BruteForceOptimalRadius(metric.Euclidean, ds, k)
		if err != nil {
			return false
		}
		if opt == 0 {
			return true
		}
		r := metric.Radius(metric.Euclidean, ds, centers)
		// The worst-case guarantee with a size-limited coreset is weaker than
		// 2+eps, but it must stay within the doubling algorithm's constant.
		return r <= 10*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Errorf("streaming k-center quality out of range: %v", err)
	}
}

func TestNewCoresetOutliersValidation(t *testing.T) {
	if _, err := NewCoresetOutliers(nil, 0, 1, 5, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewCoresetOutliers(nil, 1, -1, 5, 0); err == nil {
		t.Error("z<0 accepted")
	}
	if _, err := NewCoresetOutliers(nil, 3, 3, 4, 0); err == nil {
		t.Error("tau<k+z accepted")
	}
	if _, err := NewCoresetOutliers(nil, 1, 1, 5, -0.1); err == nil {
		t.Error("negative epsHat accepted")
	}
}

func TestCoresetOutliersQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k, z := 3, 8
	base := clusteredDataset(rng, k, 150, 2, 100, 1)
	ds := withOutliers(rng, base, z)
	co, err := NewCoresetOutliers(nil, k, z, 4*(k+z), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, co, ds)
	res, err := co.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) > k {
		t.Fatalf("centers = %d, want <= %d", len(res.Centers), k)
	}
	if res.UncoveredWeight > int64(z) {
		t.Errorf("uncovered weight = %d, want <= %d", res.UncoveredWeight, z)
	}
	r := metric.RadiusExcluding(metric.Euclidean, ds, res.Centers, z)
	if r > 20 {
		t.Errorf("outlier-aware radius = %v, want small", r)
	}
	if co.WorkingMemory() > 4*(k+z) {
		t.Errorf("working memory %d exceeds tau %d", co.WorkingMemory(), 4*(k+z))
	}
	if co.Processed() != int64(len(ds)) {
		t.Errorf("processed = %d, want %d", co.Processed(), len(ds))
	}
	if len(co.Coreset()) == 0 {
		t.Error("coreset accessor returned nothing")
	}
}

func TestCoresetOutliersEmptyResult(t *testing.T) {
	co, err := NewCoresetOutliers(nil, 1, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Result(); err == nil {
		t.Error("Result on empty stream should fail")
	}
}

func TestNewBaseStreamValidation(t *testing.T) {
	if _, err := NewBaseStream(nil, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewBaseStream(nil, 1, 0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestBaseStreamQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k := 4
	ds := clusteredDataset(rng, k, 200, 3, 100, 1)
	bs, err := NewBaseStream(nil, k, 4)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, bs, ds)
	centers, err := bs.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) == 0 || len(centers) > k {
		t.Fatalf("centers = %d, want in (0,%d]", len(centers), k)
	}
	r := metric.Radius(metric.Euclidean, ds, centers)
	if r > 30 {
		t.Errorf("radius = %v, want small for well-separated blobs", r)
	}
	if bs.WorkingMemory() > 4*k {
		t.Errorf("working memory %d exceeds m*k = %d", bs.WorkingMemory(), 4*k)
	}
	if bs.Processed() != int64(len(ds)) {
		t.Errorf("processed = %d, want %d", bs.Processed(), len(ds))
	}
	if bs.Restarts() < 0 {
		t.Error("negative restarts")
	}
}

func TestBaseStreamShortStream(t *testing.T) {
	bs, err := NewBaseStream(nil, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Result(); err == nil {
		t.Error("Result on empty stream should fail")
	}
	feed(t, bs, metric.Dataset{{1}, {2}})
	centers, err := bs.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 2 {
		t.Errorf("short-stream centers = %d, want 2", len(centers))
	}
	if err := bs.Process(nil); err == nil {
		t.Error("nil point accepted")
	}
}

func TestBaseStreamCoverageProperty(t *testing.T) {
	// Every point of the stream must end up within a bounded multiple of the
	// best guess radius of its centers (the streaming coverage guarantee).
	rng := rand.New(rand.NewSource(7))
	ds := randomDataset(rng, 400, 3, 50)
	k := 6
	bs, err := NewBaseStream(nil, k, 8)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, bs, ds)
	centers, err := bs.Result()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := gmm.Run(metric.Euclidean, ds, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := metric.Radius(metric.Euclidean, ds, centers)
	// GMM's radius is a 2-approximation of the optimum; the streaming
	// baseline should stay within a moderate constant of it.
	if r > 8*opt.Radius+1e-9 {
		t.Errorf("BaseStream radius %v too large versus GMM radius %v", r, opt.Radius)
	}
}

func TestNewBaseOutliersValidation(t *testing.T) {
	if _, err := NewBaseOutliers(nil, 0, 1, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewBaseOutliers(nil, 1, -1, 1); err == nil {
		t.Error("z<0 accepted")
	}
	if _, err := NewBaseOutliers(nil, 1, 1, 0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestBaseOutliersQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	k, z := 3, 6
	base := clusteredDataset(rng, k, 120, 2, 100, 1)
	ds := withOutliers(rng, base, z)
	bo, err := NewBaseOutliers(nil, k, z, 4)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, bo, ds)
	centers, err := bo.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) == 0 || len(centers) > k {
		t.Fatalf("centers = %d, want in (0,%d]", len(centers), k)
	}
	r := metric.RadiusExcluding(metric.Euclidean, ds, centers, z)
	if r > 40 {
		t.Errorf("outlier-aware radius = %v, want small", r)
	}
	if bo.WorkingMemory() > 4*((k+1)*(z+1)+k+1) {
		t.Errorf("working memory %d exceeds budget", bo.WorkingMemory())
	}
	if bo.Processed() != int64(len(ds)) {
		t.Errorf("processed = %d, want %d", bo.Processed(), len(ds))
	}
	if bo.Restarts() < 0 {
		t.Error("negative restarts")
	}
}

func TestBaseOutliersShortStream(t *testing.T) {
	bo, err := NewBaseOutliers(nil, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bo.Result(); err == nil {
		t.Error("Result on empty stream should fail")
	}
	feed(t, bo, metric.Dataset{{1}, {2}, {3}})
	centers, err := bo.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) == 0 {
		t.Error("no centers on short stream")
	}
	if err := bo.Process(nil); err == nil {
		t.Error("nil point accepted")
	}
}

func TestCoresetOutliersBeatsBaseOutliersSpaceShape(t *testing.T) {
	// Figure 5's qualitative claim: at comparable quality CoresetOutliers
	// uses far less memory than BaseOutliers. We check the memory ordering
	// directly for the standard parameterisation mu = m = 2.
	rng := rand.New(rand.NewSource(9))
	k, z := 3, 10
	base := clusteredDataset(rng, k, 100, 2, 100, 1)
	ds := withOutliers(rng, base, z)

	co, err := NewCoresetOutliers(nil, k, z, 2*(k+z), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := NewBaseOutliers(nil, k, z, 2)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, co, ds)
	feed(t, bo, ds)
	if co.WorkingMemory() >= bo.WorkingMemory() {
		t.Errorf("CoresetOutliers memory (%d) not below BaseOutliers memory (%d)",
			co.WorkingMemory(), bo.WorkingMemory())
	}
}

func TestTwoPassOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	k, z := 3, 5
	base := clusteredDataset(rng, k, 100, 2, 100, 1)
	ds := withOutliers(rng, base, z)
	tp := &TwoPassOutliers{K: k, Z: z, Eps: 3}
	res, err := tp.Run(func() Source { return NewSliceSource(ds) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 || len(res.Centers) > k {
		t.Fatalf("centers = %d, want in (0,%d]", len(res.Centers), k)
	}
	if res.UncoveredWeight > int64(z) {
		t.Errorf("uncovered weight = %d, want <= %d", res.UncoveredWeight, z)
	}
	r := metric.RadiusExcluding(metric.Euclidean, ds, res.Centers, z)
	if r > 40 {
		t.Errorf("outlier-aware radius = %v, want small", r)
	}
	if res.RadiusEstimate <= 0 {
		t.Error("radius estimate not recorded")
	}
	if res.CoresetSize <= 0 || res.WorkingMemoryPeak <= 0 {
		t.Error("memory accounting missing")
	}
}

func TestTwoPassOutliersValidation(t *testing.T) {
	tp := &TwoPassOutliers{K: 0, Z: 1, Eps: 1}
	if _, err := tp.Run(func() Source { return NewSliceSource(metric.Dataset{{1}}) }); err == nil {
		t.Error("k=0 accepted")
	}
	tp = &TwoPassOutliers{K: 1, Z: -1, Eps: 1}
	if _, err := tp.Run(func() Source { return NewSliceSource(metric.Dataset{{1}}) }); err == nil {
		t.Error("z<0 accepted")
	}
	tp = &TwoPassOutliers{K: 1, Z: 1, Eps: 0}
	if _, err := tp.Run(func() Source { return NewSliceSource(metric.Dataset{{1}}) }); err == nil {
		t.Error("eps=0 accepted")
	}
	tp = &TwoPassOutliers{K: 1, Z: 1, Eps: 1}
	if _, err := tp.Run(nil); err == nil {
		t.Error("nil source factory accepted")
	}
	if _, err := tp.Run(func() Source { return NewSliceSource(nil) }); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestTwoPassOutliersCoincidentPoints(t *testing.T) {
	ds := metric.Dataset{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	tp := &TwoPassOutliers{K: 1, Z: 1, Eps: 1}
	res, err := tp.Run(func() Source { return NewSliceSource(ds) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 1 {
		t.Errorf("centers = %d, want 1", len(res.Centers))
	}
	if res.RadiusEstimate != 0 {
		t.Errorf("radius estimate = %v, want 0 for coincident points", res.RadiusEstimate)
	}
}

func TestTwoPassOutliersMaxCoresetSizeCap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := randomDataset(rng, 300, 2, 100)
	tp := &TwoPassOutliers{K: 3, Z: 2, Eps: 0.5, MaxCoresetSize: 25}
	res, err := tp.Run(func() Source { return NewSliceSource(ds) })
	if err != nil {
		t.Fatal(err)
	}
	if res.CoresetSize > 25 {
		t.Errorf("coreset size = %d exceeds cap 25", res.CoresetSize)
	}
}

func TestMergeDoublingsRestoresInvariants(t *testing.T) {
	// Centers from different shards can lie arbitrarily close, so the union
	// may violate invariant (b) even when it fits the budget; the merge must
	// re-establish it. Shard A holds {0, 100}, shard B holds {1, 101}: the
	// four centers fit tau=4, but 0 and 1 are within 4*phi.
	mk := func(coords ...float64) *Doubling {
		st := DoublingState{Tau: 4, Phi: 10, Processed: int64(len(coords)), Initialized: true}
		for _, c := range coords {
			st.Points = append(st.Points, metric.WeightedPoint{P: metric.Point{c}, W: 1})
		}
		d, err := RestoreDoubling(metric.Euclidean, st)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if _, err := MergeDoublings(nil, mk(0, 100)); err == nil {
		t.Error("MergeDoublings(nil, ...) should error, not panic")
	}
	merged, err := MergeDoublings(mk(0, 100), mk(1, 101))
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.CheckInvariants(); err != nil {
		t.Errorf("merged state: %v", err)
	}
	// The merged state must remain a live processor: keep observing and the
	// invariants must keep holding.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		if err := merged.Process(metric.Point{rng.Float64() * 200}); err != nil {
			t.Fatal(err)
		}
		if err := merged.CheckInvariants(); err != nil {
			t.Fatalf("after point %d: %v", i, err)
		}
	}
}

func TestMergeDoublingsInvariantsProperty(t *testing.T) {
	// Invariants hold for merges of real shard states across random data,
	// shard counts and budgets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tau := 4 + rng.Intn(12)
		shards := 2 + rng.Intn(4)
		ds := clusteredDataset(rng, 5, 30, 3, 100, 2)
		procs := make([]*Doubling, shards)
		for i := range procs {
			d, err := NewDoubling(metric.Euclidean, tau)
			if err != nil {
				return false
			}
			for j := i; j < len(ds); j += shards {
				if err := d.Process(ds[j]); err != nil {
					return false
				}
			}
			procs[i] = d
		}
		merged, err := MergeDoublings(procs...)
		if err != nil {
			return false
		}
		return merged.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Errorf("merged doubling invariants violated: %v", err)
	}
}
