// Package streaming implements the Streaming-model side of the paper:
//
//   - the weighted doubling algorithm (a weighted extension of Charikar,
//     Chekuri, Feder, Motwani 2004) used as the 1-pass coreset construction;
//   - CoresetStream / CoresetOutliers: the paper's coreset-based streaming
//     algorithms for k-center without and with outliers;
//   - BaseStream / BaseOutliers: re-implementations of the McCutchen–Khuller
//     (2008) streaming baselines the paper compares against in Figures 3
//     and 5;
//   - a two-pass variant of the outlier algorithm that is oblivious to the
//     doubling dimension (Section 4 of the paper).
//
// All algorithms consume points one at a time through the Processor
// interface, so they can be fed from a slice, a channel, or any other source,
// and they never retain more than their stated working-memory budget.
package streaming

import (
	"errors"

	"coresetclustering/internal/metric"
)

// Processor is a streaming algorithm: it consumes points one at a time and
// can report its current working-memory footprint (in points).
type Processor interface {
	// Process consumes the next point of the stream.
	Process(p metric.Point) error
	// WorkingMemory returns the number of points currently retained.
	WorkingMemory() int
	// Processed returns the number of points consumed so far.
	Processed() int64
}

// Source yields the points of a stream one at a time.
type Source interface {
	// Next returns the next point and true, or (nil, false) once the stream
	// is exhausted.
	Next() (metric.Point, bool)
}

// SliceSource streams the points of an in-memory dataset in order.
type SliceSource struct {
	points metric.Dataset
	pos    int
}

// NewSliceSource returns a Source over the given dataset.
func NewSliceSource(points metric.Dataset) *SliceSource {
	return &SliceSource{points: points}
}

// Next implements Source.
func (s *SliceSource) Next() (metric.Point, bool) {
	if s.pos >= len(s.points) {
		return nil, false
	}
	p := s.points[s.pos]
	s.pos++
	return p, true
}

// Reset rewinds the source to the beginning of the dataset; used by the
// two-pass algorithm.
func (s *SliceSource) Reset() { s.pos = 0 }

// ChannelSource streams points received on a channel, modelling the
// "data generated on the fly" scenario (e.g. a feed of tweets).
type ChannelSource struct {
	ch <-chan metric.Point
}

// NewChannelSource returns a Source over the given channel; the stream ends
// when the channel is closed.
func NewChannelSource(ch <-chan metric.Point) *ChannelSource {
	return &ChannelSource{ch: ch}
}

// Next implements Source.
func (c *ChannelSource) Next() (metric.Point, bool) {
	p, ok := <-c.ch
	return p, ok
}

// ErrNilProcessor is returned by Drain when the processor is nil.
var ErrNilProcessor = errors.New("streaming: nil processor")

// Drain feeds every point of the source into the processor and returns the
// number of points processed.
func Drain(src Source, proc Processor) (int64, error) {
	if proc == nil {
		return 0, ErrNilProcessor
	}
	if src == nil {
		return 0, errors.New("streaming: nil source")
	}
	var n int64
	for {
		p, ok := src.Next()
		if !ok {
			return n, nil
		}
		if err := proc.Process(p); err != nil {
			return n, err
		}
		n++
	}
}
