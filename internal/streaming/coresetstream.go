package streaming

import (
	"errors"
	"fmt"

	"coresetclustering/internal/gmm"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/outliers"
)

// CoresetStream is the paper's coreset-based 1-pass streaming algorithm for
// the k-center problem WITHOUT outliers: maintain a weighted coreset of tau
// points with the doubling algorithm, then extract the final k centers with
// GMM at query time. With tau = k*(4/eps)^D it is a (2+eps)-approximation;
// the experiments size tau = mu*k directly.
type CoresetStream struct {
	k        int
	workers  int
	space    metric.Space
	doubling *Doubling
}

// NewCoresetStream returns a CoresetStream with coreset budget tau >= k.
// Built-in distances are upgraded to their native metric spaces; nil defaults
// to Euclidean.
func NewCoresetStream(dist metric.Distance, k, tau int) (*CoresetStream, error) {
	return NewCoresetStreamIn(metric.SpaceFor(dist), k, tau)
}

// NewCoresetStreamIn is NewCoresetStream on an explicit metric space.
func NewCoresetStreamIn(sp metric.Space, k, tau int) (*CoresetStream, error) {
	if k < 1 {
		return nil, fmt.Errorf("streaming: k must be positive, got %d", k)
	}
	if tau < k {
		return nil, fmt.Errorf("streaming: tau (%d) must be at least k (%d)", tau, k)
	}
	if sp == nil {
		sp = metric.EuclideanSpace
	}
	d, err := NewDoublingIn(sp, tau)
	if err != nil {
		return nil, err
	}
	return &CoresetStream{k: k, space: sp, doubling: d}, nil
}

// RestoreCoresetStream reconstructs a CoresetStream around a restored (or
// merged) doubling processor, e.g. one decoded from a serialized sketch. The
// stream adopts the processor's metric space; dist is retained only as a
// compatibility override (nil keeps the processor's space).
func RestoreCoresetStream(dist metric.Distance, k int, d *Doubling) (*CoresetStream, error) {
	if k < 1 {
		return nil, fmt.Errorf("streaming: k must be positive, got %d", k)
	}
	if d == nil {
		return nil, errors.New("streaming: nil doubling state")
	}
	if d.Tau() < k {
		return nil, fmt.Errorf("streaming: tau (%d) must be at least k (%d)", d.Tau(), k)
	}
	sp := d.Space()
	if dist != nil {
		sp = metric.SpaceFor(dist)
	}
	return &CoresetStream{k: k, space: sp, doubling: d}, nil
}

// SetWorkers sets the parallelism degree of the distance engine used by the
// query-time coreset extraction: <= 0 (the default) selects one worker per
// CPU, 1 forces the sequential path. The extracted centers are bit-identical
// for any value. Not safe to call concurrently with Result.
func (c *CoresetStream) SetWorkers(workers int) { c.workers = workers }

// K returns the number of centers extracted at query time.
func (c *CoresetStream) K() int { return c.k }

// Distance returns the distance function the stream was built with.
func (c *CoresetStream) Distance() metric.Distance { return c.space.Dist() }

// Space returns the metric space the stream runs on.
func (c *CoresetStream) Space() metric.Space { return c.space }

// Doubling exposes the underlying doubling processor (shared, not a copy);
// use its State method to capture a serializable snapshot.
func (c *CoresetStream) Doubling() *Doubling { return c.doubling }

// Clone returns a deep copy of the stream: the copy answers Result and keeps
// processing points independently of the original. Only the metric space is
// shared.
func (c *CoresetStream) Clone() *CoresetStream {
	return &CoresetStream{k: c.k, workers: c.workers, space: c.space, doubling: c.doubling.Clone()}
}

// Process implements Processor.
func (c *CoresetStream) Process(p metric.Point) error { return c.doubling.Process(p) }

// WorkingMemory implements Processor.
func (c *CoresetStream) WorkingMemory() int { return c.doubling.WorkingMemory() }

// Processed implements Processor.
func (c *CoresetStream) Processed() int64 { return c.doubling.Processed() }

// Result extracts the final k centers by running GMM on the maintained
// coreset. It can be called at any time; the stream can keep being processed
// afterwards.
func (c *CoresetStream) Result() (metric.Dataset, error) {
	cs := c.doubling.Coreset()
	if len(cs) == 0 {
		return nil, errors.New("streaming: no points processed")
	}
	res, err := gmm.Runner{Space: c.space, Workers: c.workers}.Run(cs.Points(), c.k, 0)
	if err != nil {
		return nil, err
	}
	return res.Centers, nil
}

// Coreset exposes the maintained weighted coreset (a copy).
func (c *CoresetStream) Coreset() metric.WeightedSet { return c.doubling.Coreset() }

// CoresetOutliers is the paper's 1-pass streaming algorithm for the k-center
// problem WITH z outliers (Theorem 3): maintain a weighted coreset of tau
// points with the doubling algorithm, then run the weighted OutliersCluster
// radius search on it at query time. With tau = (k+z)*(16/epsHat)^D it is a
// (3+eps)-approximation using O((k+z)(96/eps)^D) working memory; the
// experiments size tau = mu*(k+z) directly.
type CoresetOutliers struct {
	k, z     int
	workers  int
	epsHat   float64
	space    metric.Space
	strategy outliers.SearchStrategy
	doubling *Doubling
}

// NewCoresetOutliers returns a CoresetOutliers with coreset budget tau >= k+z+1.
// epsHat is the slack parameter of the OutliersCluster phase (0 for the exact
// search). Built-in distances are upgraded to their native metric spaces.
func NewCoresetOutliers(dist metric.Distance, k, z, tau int, epsHat float64) (*CoresetOutliers, error) {
	return NewCoresetOutliersIn(metric.SpaceFor(dist), k, z, tau, epsHat)
}

// NewCoresetOutliersIn is NewCoresetOutliers on an explicit metric space.
func NewCoresetOutliersIn(sp metric.Space, k, z, tau int, epsHat float64) (*CoresetOutliers, error) {
	if k < 1 {
		return nil, fmt.Errorf("streaming: k must be positive, got %d", k)
	}
	if z < 0 {
		return nil, fmt.Errorf("streaming: z must be non-negative, got %d", z)
	}
	if tau < k+z {
		return nil, fmt.Errorf("streaming: tau (%d) must be at least k+z (%d)", tau, k+z)
	}
	if epsHat < 0 {
		return nil, fmt.Errorf("streaming: epsHat must be non-negative, got %v", epsHat)
	}
	if sp == nil {
		sp = metric.EuclideanSpace
	}
	d, err := NewDoublingIn(sp, tau)
	if err != nil {
		return nil, err
	}
	return &CoresetOutliers{k: k, z: z, epsHat: epsHat, space: sp, doubling: d}, nil
}

// RestoreCoresetOutliers reconstructs a CoresetOutliers around a restored (or
// merged) doubling processor, e.g. one decoded from a serialized sketch. The
// stream adopts the processor's metric space; dist is retained only as a
// compatibility override (nil keeps the processor's space).
func RestoreCoresetOutliers(dist metric.Distance, k, z int, epsHat float64, d *Doubling) (*CoresetOutliers, error) {
	if k < 1 {
		return nil, fmt.Errorf("streaming: k must be positive, got %d", k)
	}
	if z < 0 {
		return nil, fmt.Errorf("streaming: z must be non-negative, got %d", z)
	}
	if epsHat < 0 {
		return nil, fmt.Errorf("streaming: epsHat must be non-negative, got %v", epsHat)
	}
	if d == nil {
		return nil, errors.New("streaming: nil doubling state")
	}
	if d.Tau() < k+z {
		return nil, fmt.Errorf("streaming: tau (%d) must be at least k+z (%d)", d.Tau(), k+z)
	}
	sp := d.Space()
	if dist != nil {
		sp = metric.SpaceFor(dist)
	}
	return &CoresetOutliers{k: k, z: z, epsHat: epsHat, space: sp, doubling: d}, nil
}

// K returns the number of centers extracted at query time.
func (c *CoresetOutliers) K() int { return c.k }

// Z returns the number of outliers tolerated at query time.
func (c *CoresetOutliers) Z() int { return c.z }

// EpsHat returns the slack parameter of the query-time radius search.
func (c *CoresetOutliers) EpsHat() float64 { return c.epsHat }

// Distance returns the distance function the stream was built with.
func (c *CoresetOutliers) Distance() metric.Distance { return c.space.Dist() }

// Space returns the metric space the stream runs on.
func (c *CoresetOutliers) Space() metric.Space { return c.space }

// Doubling exposes the underlying doubling processor (shared, not a copy);
// use its State method to capture a serializable snapshot.
func (c *CoresetOutliers) Doubling() *Doubling { return c.doubling }

// SetSearchStrategy overrides the radius-search strategy used by Result (the
// default is the paper's binary + geometric search).
func (c *CoresetOutliers) SetSearchStrategy(s outliers.SearchStrategy) { c.strategy = s }

// SetWorkers sets the parallelism degree of the distance engine used by the
// query-time radius search: <= 0 (the default) selects one worker per CPU,
// 1 forces the sequential path. The result is bit-identical for any value.
// Not safe to call concurrently with Result.
func (c *CoresetOutliers) SetWorkers(workers int) { c.workers = workers }

// Clone returns a deep copy of the stream, with the same semantics as
// (*CoresetStream).Clone. The search strategy (stateless by contract) is
// shared.
func (c *CoresetOutliers) Clone() *CoresetOutliers {
	return &CoresetOutliers{
		k: c.k, z: c.z, workers: c.workers, epsHat: c.epsHat,
		space: c.space, strategy: c.strategy, doubling: c.doubling.Clone(),
	}
}

// Process implements Processor.
func (c *CoresetOutliers) Process(p metric.Point) error { return c.doubling.Process(p) }

// WorkingMemory implements Processor.
func (c *CoresetOutliers) WorkingMemory() int { return c.doubling.WorkingMemory() }

// Processed implements Processor.
func (c *CoresetOutliers) Processed() int64 { return c.doubling.Processed() }

// Coreset exposes the maintained weighted coreset (a copy).
func (c *CoresetOutliers) Coreset() metric.WeightedSet { return c.doubling.Coreset() }

// OutliersResult is the query-time output of CoresetOutliers.
type OutliersResult struct {
	// Centers are the (at most k) centers.
	Centers metric.Dataset
	// SearchRadius is the radius the search settled on.
	SearchRadius float64
	// UncoveredWeight is the coreset weight left uncovered (at most z).
	UncoveredWeight int64
}

// Result runs the weighted OutliersCluster radius search on the maintained
// coreset and returns the final centers.
func (c *CoresetOutliers) Result() (*OutliersResult, error) {
	cs := c.doubling.Coreset()
	if len(cs) == 0 {
		return nil, errors.New("streaming: no points processed")
	}
	solved, err := outliers.SolveIn(c.space, cs, c.k, int64(c.z), c.epsHat, c.strategy, c.workers)
	if err != nil {
		return nil, err
	}
	return &OutliersResult{
		Centers:         solved.Centers,
		SearchRadius:    solved.Radius,
		UncoveredWeight: solved.UncoveredWeight,
	}, nil
}
