package streaming

import (
	"errors"
	"fmt"
	"math"

	"coresetclustering/internal/metric"
)

// Doubling is the weighted doubling algorithm of Section 4: a 1-pass
// construction of a weighted coreset of at most tau points. It extends the
// incremental clustering algorithm of Charikar, Chekuri, Feder and Motwani
// (2004) with per-center weights so that the coreset can later be fed to the
// weighted OutliersCluster routine.
//
// The algorithm maintains (invariants (a)-(e) of the paper):
//
//	(a) at most tau centers;
//	(b) any two centers are more than 4*phi apart;
//	(c) every processed point is within 8*phi of its (implicit) proxy center;
//	(d) the weight of a center equals the number of processed points whose
//	    proxy it is;
//	(e) phi <= r*_tau(S), the optimal tau-center radius of the points
//	    processed so far.
//
// The per-point update rule runs on the metric space's batched ArgNearest
// kernel over a maintained point view of the centers (no per-point
// allocations); the one conversion out of the surrogate domain per processed
// point is the only square root (Euclidean) the hot path pays.
type Doubling struct {
	space metric.Space
	tau   int

	centers metric.WeightedSet
	pts     metric.Dataset // pts[i] == centers[i].P, maintained alongside
	phi     float64

	initBuf   metric.Dataset // first tau+1 points, buffered until initialisation
	processed int64
}

// NewDoubling returns a Doubling processor with the given coreset budget tau
// (at least 1). A nil distance defaults to Euclidean; built-in distances are
// upgraded to their native metric spaces.
func NewDoubling(dist metric.Distance, tau int) (*Doubling, error) {
	return NewDoublingIn(metric.SpaceFor(dist), tau)
}

// NewDoublingIn is NewDoubling on an explicit metric space.
func NewDoublingIn(sp metric.Space, tau int) (*Doubling, error) {
	if tau < 1 {
		return nil, fmt.Errorf("streaming: tau must be at least 1, got %d", tau)
	}
	if sp == nil {
		sp = metric.EuclideanSpace
	}
	return &Doubling{space: sp, tau: tau}, nil
}

// Space returns the metric space the processor runs on.
func (d *Doubling) Space() metric.Space { return d.space }

// syncPts rebuilds the point view of the centers.
func (d *Doubling) syncPts() {
	d.pts = d.pts[:0]
	for _, c := range d.centers {
		d.pts = append(d.pts, c.P)
	}
}

// minPairwise is the minimum true pairwise distance of the current centers
// (+Inf with fewer than two). The center count is bounded by tau+1, so the
// sequential engine path is always the right one.
func (d *Doubling) minPairwise() float64 {
	return metric.NewEngine(1).MinPairwiseDistance(d.space, d.pts)
}

// Process implements Processor.
func (d *Doubling) Process(p metric.Point) error {
	if p == nil {
		return errors.New("streaming: nil point")
	}
	d.processed++

	// Initialisation: buffer the first tau+1 points, then set phi to half the
	// minimum pairwise distance and immediately re-establish invariants (a)
	// and (b) with the merge rule.
	if d.centers == nil {
		d.initBuf = append(d.initBuf, p)
		if len(d.initBuf) < d.tau+1 {
			return nil
		}
		d.initialize()
		return nil
	}

	// Update rule.
	s, closest := d.space.ArgNearest(p, d.pts)
	if d.space.FromSurrogate(s) <= 8*d.phi {
		d.centers[closest].W++
		return nil
	}
	d.centers = append(d.centers, metric.WeightedPoint{P: p, W: 1})
	d.pts = append(d.pts, p)
	// Merge rule, applied repeatedly until invariant (a) is re-established.
	for len(d.centers) > d.tau {
		d.merge()
	}
	return nil
}

// initialize turns the buffered first tau+1 points into the initial weighted
// center set and applies the merge rule until invariants (a) and (b) hold.
func (d *Doubling) initialize() {
	d.centers = make(metric.WeightedSet, 0, d.tau+1)
	for _, p := range d.initBuf {
		d.centers = append(d.centers, metric.WeightedPoint{P: p, W: 1})
	}
	d.initBuf = nil
	d.syncPts()
	// Collapse exact duplicates first so that coincident initial points do
	// not force phi to zero forever.
	d.mergeCloserThan(0)
	minDist := d.minPairwise()
	if math.IsInf(minDist, 1) {
		// All initial points coincide: a single center remains and phi stays
		// zero until genuinely distinct points arrive (invariant (e) holds
		// with equality: r*_tau of a single location is 0).
		d.phi = 0
		return
	}
	d.phi = minDist / 2
	// Enforce invariant (b), then (a).
	d.mergeCloserThan(4 * d.phi)
	for len(d.centers) > d.tau {
		d.merge()
	}
}

// merge applies one round of the merge rule: double phi, then merge every
// pair of centers violating invariant (b). It is called repeatedly by Process
// until invariant (a) is re-established. A zero phi (all points seen so far
// coincided) is bootstrapped from the minimum pairwise distance of the
// current centers, which is a valid lower bound on r*_tau because the centers
// now number tau+1.
func (d *Doubling) merge() {
	if d.phi == 0 {
		minDist := d.minPairwise()
		if math.IsInf(minDist, 1) {
			return
		}
		d.phi = minDist / 2
	} else {
		d.phi *= 2
	}
	d.mergeCloserThan(4 * d.phi)
}

// mergeCloserThan greedily merges centers at distance <= threshold, folding
// the weight of the discarded center into the survivor (which corresponds to
// re-targeting the proxy function). Comparisons run in the true distance
// domain; the survivor sets are tiny (at most tau+1), so this is never a hot
// path.
func (d *Doubling) mergeCloserThan(threshold float64) {
	kept := make(metric.WeightedSet, 0, len(d.centers))
	for _, c := range d.centers {
		merged := false
		for i := range kept {
			if d.space.Distance(kept[i].P, c.P) <= threshold {
				kept[i].W += c.W
				merged = true
				break
			}
		}
		if !merged {
			kept = append(kept, c)
		}
	}
	d.centers = kept
	d.syncPts()
}

// Clone returns a deep copy of the processor: the copy and the original can
// keep processing points independently and neither observes the other's
// mutations. Only the metric space (immutable by contract) is shared. The
// state is bounded by tau+1 points, so a clone is cheap — this is what the
// daemon's copy-on-write query views are built from.
func (d *Doubling) Clone() *Doubling {
	cp := &Doubling{space: d.space, tau: d.tau, phi: d.phi, processed: d.processed}
	// centers' nil-ness is semantic (nil = still buffering), so it must be
	// preserved: WeightedSet.Clone would turn nil into an empty non-nil set.
	if d.centers != nil {
		cp.centers = d.centers.Clone()
		cp.syncPts()
	}
	if d.initBuf != nil {
		cp.initBuf = d.initBuf.Clone()
	}
	return cp
}

// DoublingState is the complete, self-contained state of a Doubling
// processor: everything needed to serialize it, move it across machines, and
// resume (or merge) it elsewhere. Before initialisation (fewer than tau+1
// points processed) Points holds the buffered raw points with unit weights;
// after initialisation it holds the weighted centers.
type DoublingState struct {
	// Tau is the coreset budget.
	Tau int
	// Phi is the current lower bound on r*_tau of the processed prefix
	// (meaningful only when Initialized).
	Phi float64
	// Processed is the number of points consumed so far.
	Processed int64
	// Initialized reports whether the initial buffering phase has completed.
	Initialized bool
	// Points are the weighted centers (Initialized) or the unit-weight
	// buffered prefix (not Initialized).
	Points metric.WeightedSet
}

// State returns a deep copy of the processor's state, suitable for
// serialization. The processor can keep being used afterwards.
func (d *Doubling) State() DoublingState {
	st := DoublingState{Tau: d.tau, Phi: d.phi, Processed: d.processed}
	if d.centers == nil {
		st.Points = metric.Unweighted(d.initBuf).Clone()
		return st
	}
	st.Initialized = true
	st.Points = d.centers.Clone()
	return st
}

// RestoreDoubling reconstructs a Doubling processor from a previously
// captured state. The state is validated structurally (budget, weights,
// coordinate finiteness, invariant (d)); a nil distance defaults to
// Euclidean. The state's points are deep-copied, so the caller may keep
// mutating its copy.
func RestoreDoubling(dist metric.Distance, st DoublingState) (*Doubling, error) {
	return RestoreDoublingIn(metric.SpaceFor(dist), st)
}

// RestoreDoublingIn is RestoreDoubling on an explicit metric space.
func RestoreDoublingIn(sp metric.Space, st DoublingState) (*Doubling, error) {
	if st.Tau < 1 {
		return nil, fmt.Errorf("streaming: restore: tau must be at least 1, got %d", st.Tau)
	}
	if math.IsNaN(st.Phi) || math.IsInf(st.Phi, 0) || st.Phi < 0 {
		return nil, fmt.Errorf("streaming: restore: invalid phi %v", st.Phi)
	}
	if st.Processed < 0 {
		return nil, fmt.Errorf("streaming: restore: negative processed count %d", st.Processed)
	}
	var total int64
	dim := -1
	for i, wp := range st.Points {
		if err := wp.P.Validate(); err != nil {
			return nil, fmt.Errorf("streaming: restore: point %d: %w", i, err)
		}
		if dim < 0 {
			dim = wp.P.Dim()
		} else if wp.P.Dim() != dim {
			return nil, fmt.Errorf("streaming: restore: point %d: %w", i, metric.ErrDimensionMismatch)
		}
		if wp.W <= 0 {
			return nil, fmt.Errorf("streaming: restore: point %d has non-positive weight %d", i, wp.W)
		}
		total += wp.W
	}
	if sp == nil {
		sp = metric.EuclideanSpace
	}
	d := &Doubling{space: sp, tau: st.Tau}
	if !st.Initialized {
		if len(st.Points) > st.Tau {
			return nil, fmt.Errorf("streaming: restore: %d buffered points exceed tau=%d", len(st.Points), st.Tau)
		}
		if total != st.Processed || int64(len(st.Points)) != st.Processed {
			return nil, fmt.Errorf("streaming: restore: uninitialised state has %d unit points, processed %d", len(st.Points), st.Processed)
		}
		for _, wp := range st.Points {
			if wp.W != 1 {
				return nil, fmt.Errorf("streaming: restore: uninitialised state carries weight %d != 1", wp.W)
			}
			d.initBuf = append(d.initBuf, wp.P.Clone())
		}
		d.processed = st.Processed
		return d, nil
	}
	if len(st.Points) == 0 {
		return nil, errors.New("streaming: restore: initialised state with no centers")
	}
	if len(st.Points) > st.Tau {
		return nil, fmt.Errorf("streaming: restore: %d centers exceed tau=%d", len(st.Points), st.Tau)
	}
	if total != st.Processed {
		return nil, fmt.Errorf("streaming: restore: weights sum to %d, processed %d", total, st.Processed)
	}
	d.centers = st.Points.Clone()
	d.syncPts()
	d.phi = st.Phi
	d.processed = st.Processed
	return d, nil
}

// MergeDoublings unions the state of two or more Doubling processors built on
// independent shards of a stream and re-establishes the coreset budget with
// the merge rule — the streaming counterpart of the paper's composable
// coreset union. All processors must share the same budget tau and (by
// contract) the same metric space; the first processor's space is used.
//
// The merged phi starts at the maximum of the inputs' phis, which preserves
// invariant (c) (every original point is within 8*phi of a surviving proxy).
// Because centers from different shards can lie arbitrarily close together,
// one extra merge-rule round is applied when the union violates invariant (b)
// (some pair within 4*phi), so the result satisfies all structural invariants
// and can keep processing points like any single-stream state. The merge is
// fully sequential and depends only on the argument order, never on worker
// counts.
func MergeDoublings(ds ...*Doubling) (*Doubling, error) {
	if len(ds) == 0 {
		return nil, errors.New("streaming: nothing to merge")
	}
	for i, d := range ds {
		if d == nil {
			return nil, fmt.Errorf("streaming: merge: nil processor at position %d", i)
		}
	}
	tau := ds[0].tau
	sp := ds[0].space
	anyInitialized := false
	for i, d := range ds {
		if d.tau != tau {
			return nil, fmt.Errorf("streaming: merge: budget mismatch: tau=%d at position %d, want %d", d.tau, i, tau)
		}
		if d.centers != nil {
			anyInitialized = true
		}
	}
	if !anyInitialized {
		// Every shard is still buffering: replaying the raw points through a
		// fresh processor reproduces the exact single-stream semantics.
		out, err := NewDoublingIn(sp, tau)
		if err != nil {
			return nil, err
		}
		for _, d := range ds {
			for _, p := range d.initBuf {
				if err := out.Process(p.Clone()); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	var phi float64
	var processed int64
	var union metric.WeightedSet
	for _, d := range ds {
		processed += d.processed
		if d.centers != nil {
			if d.phi > phi {
				phi = d.phi
			}
			union = append(union, d.centers.Clone()...)
		} else {
			union = append(union, metric.Unweighted(d.initBuf).Clone()...)
		}
	}
	out := &Doubling{space: sp, tau: tau, centers: union, phi: phi, processed: processed}
	out.syncPts()
	// Collapse exact duplicates across shards (free: zero-distance merges
	// never hurt coverage).
	out.mergeCloserThan(0)
	// Centers from different shards can lie arbitrarily close together, so
	// the union can violate invariant (b) even when it fits the budget. One
	// merge-rule round restores it: phi doubles, the shards' 8*phi coverage
	// becomes 4*phi_new, and collapsing pairs within 4*phi_new displaces a
	// proxy by at most another 4*phi_new — so (c) still holds at 8*phi_new,
	// and the survivors are pairwise more than 4*phi_new apart by
	// construction.
	if min := out.minPairwise(); min <= 4*out.phi {
		out.merge()
	}
	// Then apply the merge rule until the budget holds.
	for len(out.centers) > tau {
		out.merge()
	}
	return out, nil
}

// WorkingMemory implements Processor.
func (d *Doubling) WorkingMemory() int {
	if d.centers == nil {
		return len(d.initBuf)
	}
	return len(d.centers)
}

// Processed implements Processor.
func (d *Doubling) Processed() int64 { return d.processed }

// Phi returns the current lower bound phi on r*_tau of the processed prefix.
func (d *Doubling) Phi() float64 { return d.phi }

// Coreset returns the current weighted coreset. If fewer than tau+1 points
// have been processed the buffered points are returned with unit weights.
// The returned set is a copy and can be modified freely.
func (d *Doubling) Coreset() metric.WeightedSet {
	if d.centers == nil {
		return metric.Unweighted(d.initBuf).Clone()
	}
	return d.centers.Clone()
}

// Tau returns the configured coreset budget.
func (d *Doubling) Tau() int { return d.tau }

// CheckInvariants verifies the structural invariants (a), (b) and (d)
// (non-negative weights summing to the processed count). It is exported for
// tests and debugging; it is never called on the hot path.
func (d *Doubling) CheckInvariants() error {
	if d.centers == nil {
		return nil // still initialising
	}
	if len(d.centers) > d.tau {
		return fmt.Errorf("streaming: invariant (a) violated: %d centers > tau=%d", len(d.centers), d.tau)
	}
	pts := d.pts
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d.space.Distance(pts[i], pts[j]) <= 4*d.phi {
				return fmt.Errorf("streaming: invariant (b) violated: centers %d and %d are within 4*phi", i, j)
			}
		}
	}
	var total int64
	for _, c := range d.centers {
		if c.W <= 0 {
			return fmt.Errorf("streaming: invariant (d) violated: non-positive weight %d", c.W)
		}
		total += c.W
	}
	if total != d.processed {
		return fmt.Errorf("streaming: invariant (d) violated: weights sum to %d, processed %d", total, d.processed)
	}
	return nil
}
