package streaming

import (
	"errors"
	"fmt"
	"math"

	"coresetclustering/internal/metric"
)

// Doubling is the weighted doubling algorithm of Section 4: a 1-pass
// construction of a weighted coreset of at most tau points. It extends the
// incremental clustering algorithm of Charikar, Chekuri, Feder and Motwani
// (2004) with per-center weights so that the coreset can later be fed to the
// weighted OutliersCluster routine.
//
// The algorithm maintains (invariants (a)-(e) of the paper):
//
//	(a) at most tau centers;
//	(b) any two centers are more than 4*phi apart;
//	(c) every processed point is within 8*phi of its (implicit) proxy center;
//	(d) the weight of a center equals the number of processed points whose
//	    proxy it is;
//	(e) phi <= r*_tau(S), the optimal tau-center radius of the points
//	    processed so far.
type Doubling struct {
	dist metric.Distance
	tau  int

	centers metric.WeightedSet
	phi     float64

	initBuf   metric.Dataset // first tau+1 points, buffered until initialisation
	processed int64
}

// NewDoubling returns a Doubling processor with the given coreset budget tau
// (at least 1). A nil distance defaults to Euclidean.
func NewDoubling(dist metric.Distance, tau int) (*Doubling, error) {
	if tau < 1 {
		return nil, fmt.Errorf("streaming: tau must be at least 1, got %d", tau)
	}
	if dist == nil {
		dist = metric.Euclidean
	}
	return &Doubling{dist: dist, tau: tau}, nil
}

// Process implements Processor.
func (d *Doubling) Process(p metric.Point) error {
	if p == nil {
		return errors.New("streaming: nil point")
	}
	d.processed++

	// Initialisation: buffer the first tau+1 points, then set phi to half the
	// minimum pairwise distance and immediately re-establish invariants (a)
	// and (b) with the merge rule.
	if d.centers == nil {
		d.initBuf = append(d.initBuf, p)
		if len(d.initBuf) < d.tau+1 {
			return nil
		}
		d.initialize()
		return nil
	}

	// Update rule.
	dmin, closest := metric.DistanceToSet(d.dist, p, d.centers.Points())
	if dmin <= 8*d.phi {
		d.centers[closest].W++
		return nil
	}
	d.centers = append(d.centers, metric.WeightedPoint{P: p, W: 1})
	// Merge rule, applied repeatedly until invariant (a) is re-established.
	for len(d.centers) > d.tau {
		d.merge()
	}
	return nil
}

// initialize turns the buffered first tau+1 points into the initial weighted
// center set and applies the merge rule until invariants (a) and (b) hold.
func (d *Doubling) initialize() {
	d.centers = make(metric.WeightedSet, 0, d.tau+1)
	for _, p := range d.initBuf {
		d.centers = append(d.centers, metric.WeightedPoint{P: p, W: 1})
	}
	d.initBuf = nil
	// Collapse exact duplicates first so that coincident initial points do
	// not force phi to zero forever.
	d.mergeCloserThan(0)
	minDist := metric.MinPairwiseDistance(d.dist, d.centers.Points())
	if math.IsInf(minDist, 1) {
		// All initial points coincide: a single center remains and phi stays
		// zero until genuinely distinct points arrive (invariant (e) holds
		// with equality: r*_tau of a single location is 0).
		d.phi = 0
		return
	}
	d.phi = minDist / 2
	// Enforce invariant (b), then (a).
	d.mergeCloserThan(4 * d.phi)
	for len(d.centers) > d.tau {
		d.merge()
	}
}

// merge applies one round of the merge rule: double phi, then merge every
// pair of centers violating invariant (b). It is called repeatedly by Process
// until invariant (a) is re-established. A zero phi (all points seen so far
// coincided) is bootstrapped from the minimum pairwise distance of the
// current centers, which is a valid lower bound on r*_tau because the centers
// now number tau+1.
func (d *Doubling) merge() {
	if d.phi == 0 {
		minDist := metric.MinPairwiseDistance(d.dist, d.centers.Points())
		if math.IsInf(minDist, 1) {
			return
		}
		d.phi = minDist / 2
	} else {
		d.phi *= 2
	}
	d.mergeCloserThan(4 * d.phi)
}

// mergeCloserThan greedily merges centers at distance <= threshold, folding
// the weight of the discarded center into the survivor (which corresponds to
// re-targeting the proxy function).
func (d *Doubling) mergeCloserThan(threshold float64) {
	kept := make(metric.WeightedSet, 0, len(d.centers))
	for _, c := range d.centers {
		merged := false
		for i := range kept {
			if d.dist(kept[i].P, c.P) <= threshold {
				kept[i].W += c.W
				merged = true
				break
			}
		}
		if !merged {
			kept = append(kept, c)
		}
	}
	d.centers = kept
}

// WorkingMemory implements Processor.
func (d *Doubling) WorkingMemory() int {
	if d.centers == nil {
		return len(d.initBuf)
	}
	return len(d.centers)
}

// Processed implements Processor.
func (d *Doubling) Processed() int64 { return d.processed }

// Phi returns the current lower bound phi on r*_tau of the processed prefix.
func (d *Doubling) Phi() float64 { return d.phi }

// Coreset returns the current weighted coreset. If fewer than tau+1 points
// have been processed the buffered points are returned with unit weights.
// The returned set is a copy and can be modified freely.
func (d *Doubling) Coreset() metric.WeightedSet {
	if d.centers == nil {
		return metric.Unweighted(d.initBuf).Clone()
	}
	return d.centers.Clone()
}

// Tau returns the configured coreset budget.
func (d *Doubling) Tau() int { return d.tau }

// CheckInvariants verifies the structural invariants (a), (b) and (d)
// (non-negative weights summing to the processed count). It is exported for
// tests and debugging; it is never called on the hot path.
func (d *Doubling) CheckInvariants() error {
	if d.centers == nil {
		return nil // still initialising
	}
	if len(d.centers) > d.tau {
		return fmt.Errorf("streaming: invariant (a) violated: %d centers > tau=%d", len(d.centers), d.tau)
	}
	pts := d.centers.Points()
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d.dist(pts[i], pts[j]) <= 4*d.phi {
				return fmt.Errorf("streaming: invariant (b) violated: centers %d and %d are within 4*phi", i, j)
			}
		}
	}
	var total int64
	for _, c := range d.centers {
		if c.W <= 0 {
			return fmt.Errorf("streaming: invariant (d) violated: non-positive weight %d", c.W)
		}
		total += c.W
	}
	if total != d.processed {
		return fmt.Errorf("streaming: invariant (d) violated: weights sum to %d, processed %d", total, d.processed)
	}
	return nil
}
