package streaming

import (
	"errors"
	"fmt"

	"coresetclustering/internal/metric"
	"coresetclustering/internal/outliers"
)

// TwoPassOutliers is the 2-pass streaming algorithm for the k-center problem
// with z outliers that is oblivious to the doubling dimension D (end of
// Section 4 of the paper). The first pass runs the doubling algorithm for the
// (k+z)-center problem to obtain a radius estimate rHat <= 8*r*_{k,z}; the
// second pass greedily collects a maximal weighted set of points with mutual
// distances greater than (eps/48)*rHat, which is then fed to the weighted
// OutliersCluster radius search.
type TwoPassOutliers struct {
	K   int
	Z   int
	Eps float64
	// Distance is the metric; nil defaults to Euclidean.
	Distance metric.Distance
	// SearchStrategy selects the final radius search (zero value = the
	// paper's binary + geometric search).
	SearchStrategy outliers.SearchStrategy
	// MaxCoresetSize optionally caps the second-pass coreset size as a
	// safety valve on adversarial streams (0 = unbounded, the theoretical
	// bound (k+z)(96/eps)^D applies).
	MaxCoresetSize int
}

// TwoPassResult is the output of TwoPassOutliers.Run.
type TwoPassResult struct {
	// Centers are the (at most K) final centers.
	Centers metric.Dataset
	// RadiusEstimate is the first-pass estimate rHat.
	RadiusEstimate float64
	// CoresetSize is the size of the second-pass weighted coreset.
	CoresetSize int
	// UncoveredWeight is the coreset weight left uncovered by the final
	// clustering (at most Z).
	UncoveredWeight int64
	// WorkingMemoryPeak is the largest number of points retained at any time
	// across the two passes.
	WorkingMemoryPeak int
}

// Run executes the two passes. makeSource must return a fresh Source over the
// same stream each time it is called (it is called exactly twice).
func (t *TwoPassOutliers) Run(makeSource func() Source) (*TwoPassResult, error) {
	if makeSource == nil {
		return nil, errors.New("streaming: nil source factory")
	}
	if t.K < 1 {
		return nil, fmt.Errorf("streaming: k must be positive, got %d", t.K)
	}
	if t.Z < 0 {
		return nil, fmt.Errorf("streaming: z must be non-negative, got %d", t.Z)
	}
	if t.Eps <= 0 {
		return nil, fmt.Errorf("streaming: eps must be positive, got %v", t.Eps)
	}
	sp := metric.SpaceFor(t.Distance)

	// Pass 1: doubling algorithm for the (k+z)-center problem.
	pass1, err := NewDoublingIn(sp, t.K+t.Z)
	if err != nil {
		return nil, err
	}
	if _, err := Drain(makeSource(), pass1); err != nil {
		return nil, fmt.Errorf("streaming: first pass failed: %w", err)
	}
	if pass1.Processed() == 0 {
		return nil, errors.New("streaming: empty stream")
	}
	rHat := 8 * pass1.Phi()
	if rHat == 0 {
		// All points seen so far coincide (or fewer than tau+1 points were
		// processed); any single point is an optimal center.
		cs := pass1.Coreset()
		return &TwoPassResult{
			Centers:           cs.Points()[:minInt(t.K, len(cs))],
			RadiusEstimate:    0,
			CoresetSize:       len(cs),
			UncoveredWeight:   0,
			WorkingMemoryPeak: pass1.WorkingMemory(),
		}, nil
	}

	// Pass 2: maximal separated weighted coreset at separation (eps/48)*rHat.
	// The point view of the coreset is maintained alongside it so the
	// per-point nearest scan is one batched kernel with no allocations.
	sep := (t.Eps / 48) * rHat
	var coreset metric.WeightedSet
	var pts metric.Dataset
	peak := pass1.WorkingMemory()
	src := makeSource()
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		surr, closest := sp.ArgNearest(p, pts)
		d := sp.FromSurrogate(surr)
		if d <= sep && closest >= 0 {
			coreset[closest].W++
			continue
		}
		if t.MaxCoresetSize > 0 && len(coreset) >= t.MaxCoresetSize {
			// Budget exhausted: attach to the closest existing point even
			// though it is farther than the separation threshold.
			if closest >= 0 {
				coreset[closest].W++
				continue
			}
		}
		coreset = append(coreset, metric.WeightedPoint{P: p, W: 1})
		pts = append(pts, p)
		if len(coreset) > peak {
			peak = len(coreset)
		}
	}
	if len(coreset) == 0 {
		return nil, errors.New("streaming: empty stream on second pass")
	}

	solved, err := outliers.SolveIn(sp, coreset, t.K, int64(t.Z), t.Eps/6, t.SearchStrategy, 1)
	if err != nil {
		return nil, fmt.Errorf("streaming: final clustering failed: %w", err)
	}
	return &TwoPassResult{
		Centers:           solved.Centers,
		RadiusEstimate:    rHat,
		CoresetSize:       len(coreset),
		UncoveredWeight:   solved.UncoveredWeight,
		WorkingMemoryPeak: peak,
	}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
