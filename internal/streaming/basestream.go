package streaming

import (
	"errors"
	"fmt"
	"math"

	"coresetclustering/internal/metric"
)

// BaseStream re-implements the McCutchen–Khuller (2008) style streaming
// algorithm for the k-center problem WITHOUT outliers, the BASESTREAM
// baseline of Figure 3. It runs m parallel guesses of the optimal radius on a
// geometric grid spanning one doubling octave; each guess maintains at most k
// centers and is restarted at twice its radius when a (k+1)-th center would be
// needed (re-inserting its previous centers so the one-pass guarantee chains
// across restarts). Space is Theta(m*k); the approximation factor approaches
// 2+eps as m grows (the grid gets finer).
type BaseStream struct {
	k  int
	m  int
	sp metric.Space

	initBuf   metric.Dataset
	instances []*guessInstance
	processed int64
}

// distToSet is the true distance from p to the closest point of set (+Inf
// for an empty set), computed with the space's batched row kernel.
func (b *BaseStream) distToSet(p metric.Point, set metric.Dataset) float64 {
	s, _ := b.sp.ArgNearest(p, set)
	return b.sp.FromSurrogate(s)
}

// guessInstance is one radius guess of BaseStream.
type guessInstance struct {
	r        float64
	centers  metric.Dataset
	restarts int
}

// NewBaseStream returns a BaseStream with k centers and m parallel guesses.
func NewBaseStream(dist metric.Distance, k, m int) (*BaseStream, error) {
	if k < 1 {
		return nil, fmt.Errorf("streaming: k must be positive, got %d", k)
	}
	if m < 1 {
		return nil, fmt.Errorf("streaming: m must be positive, got %d", m)
	}
	return &BaseStream{k: k, m: m, sp: metric.SpaceFor(dist)}, nil
}

// Process implements Processor.
func (b *BaseStream) Process(p metric.Point) error {
	if p == nil {
		return errors.New("streaming: nil point")
	}
	b.processed++
	if b.instances == nil {
		b.initBuf = append(b.initBuf, p)
		if len(b.initBuf) < b.k+2 {
			return nil
		}
		b.initialize()
		return nil
	}
	for _, inst := range b.instances {
		b.insert(inst, p)
	}
	return nil
}

// initialize derives a lower bound on the optimal radius from the buffered
// prefix and spawns the m guesses on a geometric grid covering one octave
// above it.
func (b *BaseStream) initialize() {
	lower := metric.NewEngine(1).MinPairwiseDistance(b.sp, b.initBuf) / 2
	if lower <= 0 || math.IsInf(lower, 1) {
		lower = math.SmallestNonzeroFloat64
	}
	ratio := math.Pow(2, 1/float64(b.m))
	b.instances = make([]*guessInstance, b.m)
	for j := 0; j < b.m; j++ {
		b.instances[j] = &guessInstance{r: lower * math.Pow(ratio, float64(j))}
	}
	buf := b.initBuf
	b.initBuf = nil
	for _, p := range buf {
		for _, inst := range b.instances {
			b.insert(inst, p)
		}
	}
}

// insert adds a point to a guess instance, restarting the instance at a
// doubled radius whenever it would need more than k centers.
func (b *BaseStream) insert(inst *guessInstance, p metric.Point) {
	for {
		d := b.distToSet(p, inst.centers)
		if d <= 2*inst.r {
			return
		}
		if len(inst.centers) < b.k {
			inst.centers = append(inst.centers, p)
			return
		}
		// The guess is too small: double it and re-insert the old centers,
		// then retry the new point.
		old := inst.centers
		inst.centers = nil
		inst.r *= 2
		inst.restarts++
		for _, c := range old {
			if b.distToSet(c, inst.centers) > 2*inst.r {
				inst.centers = append(inst.centers, c)
			}
		}
	}
}

// WorkingMemory implements Processor.
func (b *BaseStream) WorkingMemory() int {
	if b.instances == nil {
		return len(b.initBuf)
	}
	total := 0
	for _, inst := range b.instances {
		total += len(inst.centers)
	}
	return total
}

// Processed implements Processor.
func (b *BaseStream) Processed() int64 { return b.processed }

// Result returns the centers of the guess with the smallest radius. If the
// stream ended before initialisation (fewer than k+2 points), the buffered
// points themselves are returned (they are a perfect clustering).
func (b *BaseStream) Result() (metric.Dataset, error) {
	if b.processed == 0 {
		return nil, errors.New("streaming: no points processed")
	}
	if b.instances == nil {
		out := b.initBuf.Clone()
		if len(out) > b.k {
			out = out[:b.k]
		}
		return out, nil
	}
	var best *guessInstance
	for _, inst := range b.instances {
		if best == nil || inst.r < best.r {
			best = inst
		}
	}
	return best.centers.Clone(), nil
}

// Restarts reports the total number of instance restarts, a diagnostic of how
// far the initial lower bound was from the final radius.
func (b *BaseStream) Restarts() int {
	total := 0
	for _, inst := range b.instances {
		total += inst.restarts
	}
	return total
}
