package metric

import (
	"math"
	"runtime"
	"sync"

	"coresetclustering/internal/selection"
)

// This file implements the parallel distance engine: blocked kernels for the
// distance-dominated hot paths (nearest-center assignment, radius, farthest
// scans) that chunk the point set across a bounded set of workers. Since the
// metric-space layer v2 the per-chunk inner loops are the batched kernels of
// a Space (see space.go) rather than per-pair Distance closures, and all
// comparisons inside a kernel happen in the space's surrogate domain; the
// conversion back to true distances (FromSurrogate) is applied once per
// reported value.
//
// Determinism contract: every kernel returns results that are bit-identical
// to its sequential counterpart, regardless of the worker count.
// Parallelism is only ever applied ACROSS independent items (points, or
// contiguous chunks of a scan); the loop over centers for one point stays
// sequential, so each per-item value is computed by exactly the same sequence
// of floating-point operations as in the sequential path. Reductions over
// chunks (min/max with argument) are performed in ascending chunk order with
// strict comparisons, so ties resolve to the lowest index exactly as a
// sequential left-to-right scan does. Additionally, for the built-in spaces
// whose surrogate is an exact monotone prefix of the true distance
// (Euclidean, Manhattan, Chebyshev), the reported radii are bit-identical
// between the native Space path and the SpaceFromDistance adapter path.

// SequentialCutoff is the number of distance evaluations below which the
// kernels fall back to the plain sequential loops, so small inputs pay no
// goroutine overhead. One distance evaluation costs tens of nanoseconds at
// the dimensionalities of the paper's experiments, while a fork-join of a few
// goroutines costs a few microseconds; 8192 evaluations keep the scheduling
// overhead well under 10% in the worst case.
const SequentialCutoff = 8192

// minChunk is the smallest per-worker chunk the engine will create; finer
// slicing only adds scheduling overhead.
const minChunk = 256

// Engine executes the blocked distance kernels on up to Workers() concurrent
// goroutines. The zero value uses one worker per available CPU. An Engine is
// stateless (it holds only the configured degree) and is safe for concurrent
// use by multiple goroutines; each kernel call forks at most Workers()-1
// goroutines and joins them before returning, so the pool is bounded per
// call and concurrent callers cannot interfere with each other.
type Engine struct {
	workers int
}

// NewEngine returns an engine with the given parallelism degree. Values <= 0
// select one worker per available CPU (runtime.GOMAXPROCS); 1 forces the
// sequential path everywhere.
func NewEngine(workers int) Engine { return Engine{workers: workers} }

// Workers returns the effective parallelism degree of the engine.
func (e Engine) Workers() int {
	if e.workers > 0 {
		return e.workers
	}
	return runtime.GOMAXPROCS(0)
}

// chunkRanges splits [0, n) into at most workers contiguous half-open ranges
// of near-equal length, none shorter than the given minimum chunk length
// (except possibly the only one). The split is a pure function of its
// arguments, so a given engine always chunks a given input the same way.
func chunkRanges(n, workers, minLen int) [][2]int {
	if n <= 0 {
		return nil
	}
	if minLen < 1 {
		minLen = 1
	}
	if workers > n/minLen {
		workers = n / minLen
	}
	if workers < 1 {
		workers = 1
	}
	out := make([][2]int, 0, workers)
	base := n / workers
	rem := n % workers
	start := 0
	for i := 0; i < workers; i++ {
		size := base
		if i < rem {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}

// ForEachChunk runs fn over [0, n) split into at most Workers() contiguous
// chunks, on the calling goroutine plus at most Workers()-1 forked ones. fn
// receives the chunk ordinal and its half-open index range; chunk 0 always
// runs on the calling goroutine. fn must not touch state shared across chunks
// without its own synchronisation. It is exported for consumers (such as the
// GMM farthest-point scan) that fuse an update and a reduction into one pass.
// Items are assumed cheap (minChunk of them per chunk at least); when each
// item performs substantial work of its own, use ForEachChunkCost.
func (e Engine) ForEachChunk(n int, fn func(chunk, lo, hi int)) {
	e.run(chunkRanges(n, e.Workers(), minChunk), fn)
}

// ForEachChunkCost is ForEachChunk for loops whose items are themselves
// expensive: itemCost is the approximate number of distance-evaluation-sized
// operations per item, and the minimum chunk length shrinks proportionally
// (an O(n)-cost item justifies a chunk of a single item). The chunking
// remains a pure function of (n, itemCost, workers).
func (e Engine) ForEachChunkCost(n, itemCost int, fn func(chunk, lo, hi int)) {
	if itemCost < 1 {
		itemCost = 1
	}
	e.run(chunkRanges(n, e.Workers(), minChunk/itemCost), fn)
}

func (e Engine) run(chunks [][2]int, fn func(chunk, lo, hi int)) {
	if len(chunks) == 0 {
		return
	}
	if len(chunks) == 1 {
		fn(0, chunks[0][0], chunks[0][1])
		return
	}
	var wg sync.WaitGroup
	for ci := 1; ci < len(chunks); ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			fn(ci, chunks[ci][0], chunks[ci][1])
		}(ci)
	}
	fn(0, chunks[0][0], chunks[0][1])
	wg.Wait()
}

// NumChunks reports how many chunks ForEachChunk will use for an input of n
// items: the size consumers should allocate for per-chunk partial results.
func (e Engine) NumChunks(n int) int { return len(chunkRanges(n, e.Workers(), minChunk)) }

// NumChunksCost is NumChunks for ForEachChunkCost.
func (e Engine) NumChunksCost(n, itemCost int) int {
	if itemCost < 1 {
		itemCost = 1
	}
	return len(chunkRanges(n, e.Workers(), minChunk/itemCost))
}

// Sequential reports whether a pass performing evals distance-evaluation-
// sized operations should take the sequential path: either the engine is
// pinned to one worker or the work is below SequentialCutoff. Consumers
// implementing their own fused kernels (gmm, outliers) use it as the gate so
// the cutoff policy lives in one place.
func (e Engine) Sequential(evals int) bool {
	return e.Workers() == 1 || evals < SequentialCutoff
}

// DistanceToSet returns min_{x in set} d(p, x) in the TRUE distance domain
// together with the index of the closest point, chunking the candidate set
// across the workers and reducing the per-chunk surrogate minima in chunk
// order (lowest index wins ties). An empty set yields (+Inf, -1).
func (e Engine) DistanceToSet(sp Space, p Point, set Dataset) (float64, int) {
	if len(set) == 0 {
		return math.Inf(1), -1
	}
	if e.Sequential(len(set)) {
		s, idx := sp.ArgNearest(p, set)
		return sp.FromSurrogate(s), idx
	}
	nc := e.NumChunks(len(set))
	bests := make([]float64, nc)
	idxs := make([]int, nc)
	e.ForEachChunk(len(set), func(chunk, lo, hi int) {
		s, idx := sp.ArgNearest(p, set[lo:hi])
		bests[chunk] = s
		if idx >= 0 {
			idx += lo
		}
		idxs[chunk] = idx
	})
	best := math.Inf(1)
	idx := -1
	for c := 0; c < nc; c++ {
		if idxs[c] >= 0 && bests[c] < best {
			best = bests[c]
			idx = idxs[c]
		}
	}
	return sp.FromSurrogate(best), idx
}

// surrogateNearest computes, for every point, the surrogate distance to and
// the index of its closest center, chunking the points across the workers.
// Each point's scan over the centers is the space's batched ArgNearest row
// kernel, so every entry is bit-identical to the sequential computation.
// Empty centers yield (+Inf, -1) entries.
func (e Engine) surrogateNearest(sp Space, points Dataset, centers Dataset) ([]float64, []int) {
	dists := make([]float64, len(points))
	idxs := make([]int, len(points))
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dists[i], idxs[i] = sp.ArgNearest(points[i], centers)
		}
	}
	cost := max(1, len(centers))
	if e.Sequential(len(points) * cost) {
		fill(0, len(points))
		return dists, idxs
	}
	e.ForEachChunkCost(len(points), cost, func(_, lo, hi int) { fill(lo, hi) })
	return dists, idxs
}

// NearestBatch computes, for every point, the TRUE distance to and the index
// of its closest center: the fused batch form of DistanceToSet that Assign,
// Radius and the outlier selection are built on. The per-point scans run in
// the surrogate domain; the conversion to true distances is one
// FromSurrogate per point (not per evaluation).
func (e Engine) NearestBatch(sp Space, points Dataset, centers Dataset) ([]float64, []int) {
	dists, idxs := e.surrogateNearest(sp, points, centers)
	for i, s := range dists {
		dists[i] = sp.FromSurrogate(s)
	}
	return dists, idxs
}

// Assign maps every point to the index of its closest center, chunking the
// points across the workers. The scan stays entirely in the surrogate
// domain — no conversion is ever needed for an argmin — and only the index
// vector is materialised.
func (e Engine) Assign(sp Space, points Dataset, centers Dataset) []int {
	idxs := make([]int, len(points))
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			_, idxs[i] = sp.ArgNearest(points[i], centers)
		}
	}
	cost := max(1, len(centers))
	if e.Sequential(len(points) * cost) {
		fill(0, len(points))
		return idxs
	}
	e.ForEachChunkCost(len(points), cost, func(_, lo, hi int) { fill(lo, hi) })
	return idxs
}

// Radius computes max_{s in points} d(s, centers): per-chunk surrogate
// maxima reduced in chunk order, with a single FromSurrogate on the final
// maximum. Max is an exact (associative and commutative) operation on
// floats and FromSurrogate is monotone, so the value is bit-identical to the
// sequential true-domain scan.
func (e Engine) Radius(sp Space, points Dataset, centers Dataset) float64 {
	if len(points) == 0 {
		return 0
	}
	cost := max(1, len(centers))
	scan := func(lo, hi int) float64 {
		var r float64
		first := true
		for i := lo; i < hi; i++ {
			s, _ := sp.ArgNearest(points[i], centers)
			if first || s > r {
				r = s
				first = false
			}
		}
		return r
	}
	if e.Sequential(len(points) * cost) {
		return sp.FromSurrogate(scan(0, len(points)))
	}
	nc := e.NumChunksCost(len(points), cost)
	maxes := make([]float64, nc)
	e.ForEachChunkCost(len(points), cost, func(chunk, lo, hi int) {
		maxes[chunk] = scan(lo, hi)
	})
	r := maxes[0]
	for _, m := range maxes[1:] {
		if m > r {
			r = m
		}
	}
	return sp.FromSurrogate(r)
}

// RadiusExcluding computes the radius after discarding the z points farthest
// from the centers. The nearest-distance pass is chunked across the workers
// in the surrogate domain; the rank selection runs sequentially on the
// surrogate vector (order statistics commute with the monotone
// FromSurrogate), so the result matches the sequential true-domain path bit
// for bit.
func (e Engine) RadiusExcluding(sp Space, points Dataset, centers Dataset, z int) float64 {
	if len(points) == 0 || z >= len(points) {
		return 0
	}
	if z <= 0 {
		return e.Radius(sp, points, centers)
	}
	dists, _ := e.surrogateNearest(sp, points, centers)
	// The radius with z outliers is the (n-z)-th smallest distance, i.e. we
	// drop the z largest. Select rather than sort: len(points) can be large.
	s, err := selection.SelectInPlace(dists, len(dists)-z-1)
	if err != nil {
		// Unreachable: dists is non-empty and the rank is in range.
		return 0
	}
	return sp.FromSurrogate(s)
}

// ArgMax returns the index of the largest value and the value itself,
// scanning ascending with a strict comparison (lowest index wins ties),
// chunked across the workers. An empty slice yields (-1, -Inf). It serves the
// farthest-point scans of the greedy algorithms.
func (e Engine) ArgMax(v []float64) (int, float64) {
	if len(v) == 0 {
		return -1, math.Inf(-1)
	}
	if e.Sequential(len(v)) {
		return argMaxSeq(v, 0, len(v))
	}
	nc := e.NumChunks(len(v))
	idxs := make([]int, nc)
	vals := make([]float64, nc)
	e.ForEachChunk(len(v), func(chunk, lo, hi int) {
		idxs[chunk], vals[chunk] = argMaxSeq(v, lo, hi)
	})
	best, bestVal := -1, math.Inf(-1)
	for c := 0; c < nc; c++ {
		if vals[c] > bestVal {
			bestVal = vals[c]
			best = idxs[c]
		}
	}
	return best, bestVal
}

// argMaxSeq is the sequential argmax over v[lo:hi] with global indices.
func argMaxSeq(v []float64, lo, hi int) (int, float64) {
	best, bestVal := -1, math.Inf(-1)
	for i := lo; i < hi; i++ {
		if v[i] > bestVal {
			bestVal = v[i]
			best = i
		}
	}
	return best, bestVal
}

// MinPairwiseDistance returns the minimum TRUE distance between two distinct
// points of the dataset (+Inf for fewer than two points), chunking the outer
// row loop across the workers with the batched row kernel. It is the engine
// form of the package-level MinPairwiseDistance.
func (e Engine) MinPairwiseDistance(sp Space, points Dataset) float64 {
	n := len(points)
	if n < 2 {
		return math.Inf(1)
	}
	rowMin := func(lo, hi int) float64 {
		m := math.Inf(1)
		for i := lo; i < hi; i++ {
			if s, idx := sp.ArgNearest(points[i], points[i+1:]); idx >= 0 && s < m {
				m = s
			}
		}
		return m
	}
	if e.Sequential(n * (n - 1) / 2) {
		return sp.FromSurrogate(rowMin(0, n-1))
	}
	nc := e.NumChunksCost(n-1, n/2)
	mins := make([]float64, nc)
	e.ForEachChunkCost(n-1, n/2, func(chunk, lo, hi int) {
		mins[chunk] = rowMin(lo, hi)
	})
	m := math.Inf(1)
	for _, v := range mins {
		if v < m {
			m = v
		}
	}
	return sp.FromSurrogate(m)
}

// Package-level compatibility wrappers. They keep the Distance-typed
// signatures of the v1 engine: the distance function is upgraded to its
// native Space when it is one of the built-ins (SpaceFor), or wrapped in the
// identity-surrogate adapter otherwise, so instrumented distances still see
// every evaluation.

// ParallelDistanceToSet computes min_{x in set} dist(p, x) and the index of
// the closest point on up to workers goroutines (<= 0 selects one per CPU).
func ParallelDistanceToSet(dist Distance, p Point, set Dataset, workers int) (float64, int) {
	return NewEngine(workers).DistanceToSet(SpaceFor(dist), p, set)
}

// ParallelAssign maps every point to the index of its closest center on up to
// workers goroutines (<= 0 selects one per CPU).
func ParallelAssign(dist Distance, points Dataset, centers Dataset, workers int) []int {
	return NewEngine(workers).Assign(SpaceFor(dist), points, centers)
}

// ParallelRadius computes max_{s in points} d(s, centers) on up to workers
// goroutines (<= 0 selects one per CPU).
func ParallelRadius(dist Distance, points Dataset, centers Dataset, workers int) float64 {
	return NewEngine(workers).Radius(SpaceFor(dist), points, centers)
}

// ParallelRadiusExcluding computes the outlier-aware radius on up to workers
// goroutines (<= 0 selects one per CPU).
func ParallelRadiusExcluding(dist Distance, points Dataset, centers Dataset, z, workers int) float64 {
	return NewEngine(workers).RadiusExcluding(SpaceFor(dist), points, centers, z)
}

// NearestBatch computes every point's closest-center distance and index on up
// to workers goroutines (<= 0 selects one per CPU).
func NearestBatch(dist Distance, points Dataset, centers Dataset, workers int) ([]float64, []int) {
	return NewEngine(workers).NearestBatch(SpaceFor(dist), points, centers)
}
