package metric

import (
	"math"
	"math/rand"
	"testing"
)

// Benchmarks for the acceptance criterion of the metric-space layer v2: the
// native Euclidean Space path must beat the Distance-adapter path on Assign
// (n=50k, d=16, 1 worker) by at least 1.5x. CI runs these and uploads the
// results as the BENCH_space.json artifact.

// Benchmark shape: n and d are the acceptance criterion's (50k points,
// 16 dimensions, 1 worker); k = 64 centers is a representative center count
// for the paper's workloads (its experiments run k up to the hundreds) and
// large enough that the per-row kernel dominates the per-point overheads.
const (
	benchAssignN   = 50000
	benchAssignDim = 16
	benchAssignK   = 64
)

// legacyEuclidean is a faithful copy of the scalar L2 kernel every release
// before the metric-space layer v2 used on the hot paths: one closure call
// per pair (through the adapter), one bounds-checked coordinate loop (no
// length hint, so the checks on b[i] survive), and one math.Sqrt per
// evaluation. BenchmarkAssignDistance runs it so the Space-vs-Distance
// comparison measures exactly what this workload cost before the refactor.
func legacyEuclidean(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// benchDataset builds the point set in per-point allocations, the layout the
// pre-v2 loaders produced.
func benchDataset(n, dim int) (Dataset, Dataset) {
	rng := rand.New(rand.NewSource(777))
	ds := make(Dataset, n)
	for i := range ds {
		ds[i] = randPoint(rng, dim)
	}
	return ds, ds[:benchAssignK]
}

// benchFlatDataset is the same point set in contiguous flat storage, the
// layout the native path is co-designed with.
func benchFlatDataset(b *testing.B, n, dim int) (Dataset, Dataset) {
	ds, _ := benchDataset(n, dim)
	f, err := FlatFromDataset(ds)
	if err != nil {
		b.Fatal(err)
	}
	flat := f.Dataset()
	return flat, flat[:benchAssignK]
}

func benchAssign(b *testing.B, sp Space, points, centers Dataset, workers int) {
	e := NewEngine(workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Assign(sp, points, centers)
	}
}

// BenchmarkAssignSpace is the native v2 path: flat contiguous storage and
// batched squared-Euclidean kernels — no sqrt, no per-pair function call, no
// pointer-chasing between points.
func BenchmarkAssignSpace(b *testing.B) {
	points, centers := benchFlatDataset(b, benchAssignN, benchAssignDim)
	benchAssign(b, EuclideanSpace, points, centers, 1)
}

// BenchmarkAssignDistance is the pre-v2 path: per-point allocations and the
// identity-surrogate adapter around the legacy scalar kernel.
func BenchmarkAssignDistance(b *testing.B) {
	points, centers := benchDataset(benchAssignN, benchAssignDim)
	benchAssign(b, SpaceFromDistance("euclidean-legacy", legacyEuclidean), points, centers, 1)
}

// BenchmarkAssignSpaceParallel and BenchmarkAssignDistanceParallel are the
// auto-parallel counterparts, for the speedup trajectory in CI.
func BenchmarkAssignSpaceParallel(b *testing.B) {
	points, centers := benchFlatDataset(b, benchAssignN, benchAssignDim)
	benchAssign(b, EuclideanSpace, points, centers, 0)
}

func BenchmarkAssignDistanceParallel(b *testing.B) {
	points, centers := benchDataset(benchAssignN, benchAssignDim)
	benchAssign(b, SpaceFromDistance("euclidean-legacy", legacyEuclidean), points, centers, 0)
}

func benchRadius(b *testing.B, sp Space) {
	points, centers := benchDataset(benchAssignN, benchAssignDim)
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Radius(sp, points, centers)
	}
}

func BenchmarkRadiusSpace(b *testing.B) { benchRadius(b, EuclideanSpace) }

func BenchmarkRadiusDistance(b *testing.B) {
	benchRadius(b, SpaceFromDistance("euclidean-adapter", Euclidean))
}

// BenchmarkUpdateNearestSpace measures the GMM cache-update kernel in
// isolation (one center against the full point set).
func BenchmarkUpdateNearestSpace(b *testing.B) {
	points, _ := benchDataset(benchAssignN, benchAssignDim)
	minDist := make([]float64, len(points))
	minIdx := make([]int, len(points))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EuclideanSpace.UpdateNearest(minDist, minIdx, points[i%len(points)], 0, points)
	}
}
