// Package metric provides the metric-space substrate used by every clustering
// algorithm in this repository: points, distance functions, distance-call
// accounting, and doubling-dimension estimation.
//
// All algorithms in the paper are stated for general metric spaces; the
// experiments use Euclidean distance over low- to medium-dimensional vectors.
// This package keeps the two concerns separate: a Point is a plain coordinate
// vector, and a Distance is any function satisfying the metric axioms.
package metric

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Point is a vector in d-dimensional real space. Points are treated as
// immutable by every algorithm in this module; callers that mutate a Point
// after handing it to an algorithm get undefined behaviour.
type Point []float64

// ErrDimensionMismatch is returned when two points of different dimensions are
// combined in an operation that requires equal dimensions.
var ErrDimensionMismatch = errors.New("metric: dimension mismatch")

// ErrInvalidCoordinate is returned when a point contains NaN or Inf.
var ErrInvalidCoordinate = errors.New("metric: invalid coordinate (NaN or Inf)")

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns a deep copy of the point.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Validate returns an error if the point contains NaN or infinite coordinates.
func (p Point) Validate() error {
	for i, c := range p {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: coordinate %d = %v", ErrInvalidCoordinate, i, c)
		}
	}
	return nil
}

// String renders the point as a comma-separated coordinate list.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(c, 'g', -1, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Add returns p + q as a new point.
func (p Point) Add(q Point) (Point, error) {
	if len(p) != len(q) {
		return nil, ErrDimensionMismatch
	}
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r, nil
}

// Sub returns p - q as a new point.
func (p Point) Sub(q Point) (Point, error) {
	if len(p) != len(q) {
		return nil, ErrDimensionMismatch
	}
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r, nil
}

// Scale returns a*p as a new point.
func (p Point) Scale(a float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = a * p[i]
	}
	return r
}

// Norm returns the Euclidean norm of the point.
func (p Point) Norm() float64 {
	var s float64
	for _, c := range p {
		s += c * c
	}
	return math.Sqrt(s)
}

// Dataset is a slice of points sharing a common dimensionality.
type Dataset []Point

// Dim returns the dimensionality of the dataset, or 0 if it is empty.
func (ds Dataset) Dim() int {
	if len(ds) == 0 {
		return 0
	}
	return ds[0].Dim()
}

// Clone returns a deep copy of the dataset.
func (ds Dataset) Clone() Dataset {
	out := make(Dataset, len(ds))
	for i, p := range ds {
		out[i] = p.Clone()
	}
	return out
}

// Validate checks that the dataset is non-empty, that every point has the same
// dimensionality, and that no coordinate is NaN or infinite.
func (ds Dataset) Validate() error {
	if len(ds) == 0 {
		return errors.New("metric: empty dataset")
	}
	d := ds[0].Dim()
	for i, p := range ds {
		if p.Dim() != d {
			return fmt.Errorf("%w: point %d has dimension %d, want %d", ErrDimensionMismatch, i, p.Dim(), d)
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
	}
	return nil
}

// Centroid returns the coordinate-wise mean of the dataset.
func (ds Dataset) Centroid() (Point, error) {
	if len(ds) == 0 {
		return nil, errors.New("metric: centroid of empty dataset")
	}
	d := ds.Dim()
	c := make(Point, d)
	for _, p := range ds {
		if p.Dim() != d {
			return nil, ErrDimensionMismatch
		}
		for i := range p {
			c[i] += p[i]
		}
	}
	inv := 1.0 / float64(len(ds))
	for i := range c {
		c[i] *= inv
	}
	return c, nil
}

// BoundingBox returns, per dimension, the minimum and maximum coordinate over
// the dataset. It is used by the dataset generators and by the SMOTE-like
// inflation procedure of the scalability experiments.
func (ds Dataset) BoundingBox() (lo, hi Point, err error) {
	if len(ds) == 0 {
		return nil, nil, errors.New("metric: bounding box of empty dataset")
	}
	d := ds.Dim()
	lo = ds[0].Clone()
	hi = ds[0].Clone()
	for _, p := range ds[1:] {
		if p.Dim() != d {
			return nil, nil, ErrDimensionMismatch
		}
		for i, c := range p {
			if c < lo[i] {
				lo[i] = c
			}
			if c > hi[i] {
				hi[i] = c
			}
		}
	}
	return lo, hi, nil
}
