package metric

import (
	"math"
	"math/rand"
	"testing"
)

// spaceCase pairs each built-in space with its scalar distance function for
// the surrogate-agreement property tests.
var spaceCases = []struct {
	sp   Space
	dist Distance
}{
	{EuclideanSpace, Euclidean},
	{ManhattanSpace, Manhattan},
	{ChebyshevSpace, Chebyshev},
	{AngularSpace, Angular},
	{CosineSpace, Cosine},
}

func randPoint(rng *rand.Rand, dim int) Point {
	p := make(Point, dim)
	for i := range p {
		p[i] = rng.NormFloat64() * 10
	}
	return p
}

// TestSurrogateAgreesWithTrueDistance is the surrogate property test: for
// every built-in space and random valid inputs (including zero vectors, which
// exercise the angular/cosine special cases), the surrogate converts back to
// the scalar distance bit for bit, and neither domain ever produces NaN.
func TestSurrogateAgreesWithTrueDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range spaceCases {
		t.Run(tc.sp.Name(), func(t *testing.T) {
			for trial := 0; trial < 500; trial++ {
				dim := 1 + rng.Intn(24)
				a, b := randPoint(rng, dim), randPoint(rng, dim)
				switch trial % 10 {
				case 7: // one zero vector
					for i := range a {
						a[i] = 0
					}
				case 8: // both zero
					for i := range a {
						a[i], b[i] = 0, 0
					}
				case 9: // coincident points
					copy(b, a)
				}
				want := tc.dist(a, b)
				s := tc.sp.Surrogate(a, b)
				if math.IsNaN(s) {
					t.Fatalf("surrogate(%v, %v) is NaN", a, b)
				}
				got := tc.sp.FromSurrogate(s)
				if math.IsNaN(got) || math.IsNaN(want) {
					t.Fatalf("NaN distance for valid points %v, %v", a, b)
				}
				if got != want {
					t.Fatalf("FromSurrogate(Surrogate) = %v, want %v (a=%v b=%v)", got, want, a, b)
				}
				if d := tc.sp.Distance(a, b); d != want {
					t.Fatalf("Distance = %v, want %v", d, want)
				}
			}
		})
	}
}

// TestSurrogateArgminAndThresholdDecisions checks that decisions taken in the
// surrogate domain match decisions taken with the scalar true distance:
// the argmin index over a random candidate set is identical, and threshold
// tests at realized distance values agree after the single FromSurrogate
// conversion the hot paths apply.
func TestSurrogateArgminAndThresholdDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range spaceCases {
		t.Run(tc.sp.Name(), func(t *testing.T) {
			for trial := 0; trial < 200; trial++ {
				dim := 1 + rng.Intn(12)
				n := 2 + rng.Intn(40)
				set := make(Dataset, n)
				for i := range set {
					set[i] = randPoint(rng, dim)
				}
				q := randPoint(rng, dim)

				// Scalar reference scan in the true domain.
				wantBest, wantIdx := math.Inf(1), -1
				for i, p := range set {
					if d := tc.dist(q, p); d < wantBest {
						wantBest = d
						wantIdx = i
					}
				}
				s, idx := tc.sp.ArgNearest(q, set)
				if idx != wantIdx {
					t.Fatalf("trial %d: ArgNearest idx = %d, want %d", trial, idx, wantIdx)
				}
				if got := tc.sp.FromSurrogate(s); got != wantBest {
					t.Fatalf("trial %d: ArgNearest dist = %v, want %v", trial, got, wantBest)
				}

				// Threshold decisions at a realized distance (the kind of
				// threshold the covering loops use).
				thr := tc.dist(q, set[rng.Intn(n)])
				for i, p := range set {
					trueDec := tc.dist(q, p) <= thr
					surrDec := tc.sp.FromSurrogate(tc.sp.Surrogate(q, p)) <= thr
					if trueDec != surrDec {
						t.Fatalf("trial %d point %d: threshold decision mismatch", trial, i)
					}
				}
			}
		})
	}
}

// TestSpaceKernelsMatchScalarLoops pins DistancesTo and UpdateNearest against
// the scalar surrogate, per space.
func TestSpaceKernelsMatchScalarLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, tc := range spaceCases {
		t.Run(tc.sp.Name(), func(t *testing.T) {
			dim := 6
			block := make(Dataset, 64)
			for i := range block {
				block[i] = randPoint(rng, dim)
			}
			q := randPoint(rng, dim)

			dst := make([]float64, len(block))
			tc.sp.DistancesTo(dst, q, block)
			for i, p := range block {
				if want := tc.sp.Surrogate(q, p); dst[i] != want {
					t.Fatalf("DistancesTo[%d] = %v, want %v", i, dst[i], want)
				}
			}

			minDist := make([]float64, len(block))
			minIdx := make([]int, len(block))
			for i := range minDist {
				minDist[i] = math.Inf(1)
				minIdx[i] = -1
			}
			m := tc.sp.UpdateNearest(minDist, minIdx, q, 0, block)
			wantMax := math.Inf(-1)
			for i, p := range block {
				want := tc.sp.Surrogate(q, p)
				if minDist[i] != want || minIdx[i] != 0 {
					t.Fatalf("UpdateNearest[%d] = (%v,%d), want (%v,0)", i, minDist[i], minIdx[i], want)
				}
				if want > wantMax {
					wantMax = want
				}
			}
			if m != wantMax {
				t.Fatalf("UpdateNearest max = %v, want %v", m, wantMax)
			}

			// A second center must only improve entries and never regress.
			q2 := randPoint(rng, dim)
			before := append([]float64(nil), minDist...)
			tc.sp.UpdateNearest(minDist, minIdx, q2, 1, block)
			for i := range minDist {
				if minDist[i] > before[i] {
					t.Fatalf("UpdateNearest regressed entry %d", i)
				}
				if minDist[i] < before[i] && minIdx[i] != 1 {
					t.Fatalf("improved entry %d not attributed to the new center", i)
				}
			}
		})
	}
}

// TestCrossPathEquivalence is the adapter-vs-native equivalence test of the
// determinism contract: for the spaces whose surrogate is an exact monotone
// prefix of the true distance (Euclidean, Manhattan, Chebyshev), every engine
// kernel returns bit-identical results on the native path and on the
// SpaceFromDistance adapter path, for every worker count.
func TestCrossPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	n := 9000
	// dim 5 takes the pure-Go kernels; dim 16 takes the AVX fast path where
	// the hardware has it.
	for _, dim := range []int{5, 16} {
		ds := make(Dataset, n)
		for i := range ds {
			ds[i] = randPoint(rng, dim)
		}
		centers := ds[:7]
		for _, tc := range []struct {
			sp   Space
			dist Distance
		}{
			{EuclideanSpace, Euclidean},
			{ManhattanSpace, Manhattan},
			{ChebyshevSpace, Chebyshev},
		} {
			t.Run(tc.sp.Name(), func(t *testing.T) {
				adapter := SpaceFromDistance(tc.sp.Name()+"-adapter", tc.dist)
				for _, w := range []int{1, 4} {
					e := NewEngine(w)
					nd, ni := e.DistanceToSet(tc.sp, ds[n/2], ds)
					ad, ai := e.DistanceToSet(adapter, ds[n/2], ds)
					if nd != ad || ni != ai {
						t.Fatalf("w=%d DistanceToSet native (%v,%d) != adapter (%v,%d)", w, nd, ni, ad, ai)
					}
					na := e.Assign(tc.sp, ds, centers)
					aa := e.Assign(adapter, ds, centers)
					for i := range na {
						if na[i] != aa[i] {
							t.Fatalf("w=%d Assign[%d] native %d != adapter %d", w, i, na[i], aa[i])
						}
					}
					if nr, ar := e.Radius(tc.sp, ds, centers), e.Radius(adapter, ds, centers); nr != ar {
						t.Fatalf("w=%d Radius native %v != adapter %v", w, nr, ar)
					}
					nre := e.RadiusExcluding(tc.sp, ds, centers, n/10)
					are := e.RadiusExcluding(adapter, ds, centers, n/10)
					if nre != are {
						t.Fatalf("w=%d RadiusExcluding native %v != adapter %v", w, nre, are)
					}
					nb, nbi := e.NearestBatch(tc.sp, ds, centers)
					ab, abi := e.NearestBatch(adapter, ds, centers)
					for i := range nb {
						if nb[i] != ab[i] || nbi[i] != abi[i] {
							t.Fatalf("w=%d NearestBatch[%d] native (%v,%d) != adapter (%v,%d)",
								w, i, nb[i], nbi[i], ab[i], abi[i])
						}
					}
				}
			})
		}
	}
}

// TestSpaceForUpgrades pins the Distance -> Space resolution rules.
func TestSpaceForUpgrades(t *testing.T) {
	if sp := SpaceFor(nil); sp != EuclideanSpace {
		t.Errorf("SpaceFor(nil) = %v, want EuclideanSpace", sp.Name())
	}
	for _, tc := range spaceCases {
		if sp := SpaceFor(tc.dist); sp != tc.sp {
			t.Errorf("SpaceFor(%s) did not upgrade to the native space", tc.sp.Name())
		}
	}
	custom := func(a, b Point) float64 { return Euclidean(a, b) }
	sp := SpaceFor(custom)
	if sp.Name() != "custom" {
		t.Errorf("SpaceFor(custom closure) = %q, want the adapter", sp.Name())
	}
	if got, want := sp.Distance(Point{0, 0}, Point{3, 4}), 5.0; got != want {
		t.Errorf("adapter distance = %v, want %v", got, want)
	}
	if s := sp.Surrogate(Point{0, 0}, Point{3, 4}); s != 5.0 {
		t.Errorf("adapter surrogate = %v, want the identity 5", s)
	}
}

// TestSpaceByName pins the name registry.
func TestSpaceByName(t *testing.T) {
	for _, tc := range spaceCases {
		if sp := SpaceByName(tc.sp.Name()); sp != tc.sp {
			t.Errorf("SpaceByName(%q) = %v", tc.sp.Name(), sp)
		}
	}
	if sp := SpaceByName("no-such-space"); sp != nil {
		t.Errorf("SpaceByName(unknown) = %v, want nil", sp)
	}
	if got := len(SpaceNames()); got != len(spaceCases) {
		t.Errorf("SpaceNames lists %d spaces, want %d", got, len(spaceCases))
	}
}

// TestCountingSpace checks the evaluation accounting of every kernel.
func TestCountingSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	block := make(Dataset, 17)
	for i := range block {
		block[i] = randPoint(rng, 3)
	}
	q := randPoint(rng, 3)
	c := NewCountingSpace(EuclideanSpace)
	c.Surrogate(q, block[0])
	c.Distance(q, block[0])
	c.DistancesTo(make([]float64, len(block)), q, block)
	c.ArgNearest(q, block)
	minDist := make([]float64, len(block))
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	c.UpdateNearest(minDist, make([]int, len(block)), q, 0, block)
	if got, want := c.Evaluations(), int64(2+3*len(block)); got != want {
		t.Fatalf("Evaluations = %d, want %d", got, want)
	}
	c.Reset()
	if c.Evaluations() != 0 {
		t.Fatal("Reset did not zero the counter")
	}
}

// TestAVXKernelsMatchPureGo pins the assembly fast paths against the pure-Go
// kernels bit for bit, across the dimensionalities the gate accepts. On
// builds without AVX the test is skipped (the pure-Go path is the only one).
func TestAVXKernelsMatchPureGo(t *testing.T) {
	if !haveAVXKernels {
		t.Skip("no AVX kernels on this machine")
	}
	rng := rand.New(rand.NewSource(31))
	for _, dim := range []int{4, 8, 16, 32} {
		set := make(Dataset, 301)
		for i := range set {
			set[i] = randPoint(rng, dim)
		}
		q := randPoint(rng, dim)

		s, idx := argNearestEucAVX(q, set)
		wantS, wantIdx := math.Inf(1), -1
		for i, p := range set {
			if v := SquaredEuclidean(q, p); v < wantS {
				wantS = v
				wantIdx = i
			}
		}
		if s != wantS || idx != wantIdx {
			t.Fatalf("dim=%d: argNearestEucAVX = (%v,%d), want (%v,%d)", dim, s, idx, wantS, wantIdx)
		}

		dst := make([]float64, len(set))
		distancesToEucAVX(q, set, dst)
		for i, p := range set {
			if want := SquaredEuclidean(q, p); dst[i] != want {
				t.Fatalf("dim=%d: distancesToEucAVX[%d] = %v, want %v", dim, i, dst[i], want)
			}
		}
	}
}

// TestEmptySetSentinelSurvivesFromSurrogate pins the (+Inf, -1) empty-set
// convention: every space's FromSurrogate must map the +Inf sentinel to +Inf
// (the angular clamp once collapsed it to distance 1, making empty center
// sets look one unit away).
func TestEmptySetSentinelSurvivesFromSurrogate(t *testing.T) {
	p := Point{1, 0, 0}
	for _, tc := range spaceCases {
		s, idx := tc.sp.ArgNearest(p, nil)
		if !math.IsInf(s, 1) || idx != -1 {
			t.Errorf("%s: ArgNearest on empty set = (%v,%d), want (+Inf,-1)", tc.sp.Name(), s, idx)
		}
		if d := tc.sp.FromSurrogate(math.Inf(1)); !math.IsInf(d, 1) {
			t.Errorf("%s: FromSurrogate(+Inf) = %v, want +Inf", tc.sp.Name(), d)
		}
	}
	adapter := SpaceFromDistance("custom", Euclidean)
	if d := adapter.FromSurrogate(math.Inf(1)); !math.IsInf(d, 1) {
		t.Errorf("adapter: FromSurrogate(+Inf) = %v, want +Inf", d)
	}
}
