package metric

import (
	"math"
	"reflect"
	"sync/atomic"
)

// This file defines Space, the metric-space abstraction every hot path of the
// repository is built on. A Space bundles
//
//   - a named, true-distance function (the metric of the paper's analysis);
//   - a comparison-domain SURROGATE: a monotone transform of the true
//     distance that is cheaper to evaluate (squared Euclidean drops the
//     math.Sqrt; the angular and cosine spaces drop the math.Acos and reuse
//     the query point's norm across a whole block). Argmin, max and
//     order-statistic reductions are performed in the surrogate domain and
//     converted back with FromSurrogate exactly once per REPORTED value, so
//     the expensive op is paid once per radius, not once per evaluation;
//   - batched kernels (DistancesTo, ArgNearest, UpdateNearest) operating on
//     contiguous blocks of points. The parallel engine's chunk loops call
//     these instead of a per-pair Distance closure, which removes one
//     function call and one closure dereference per evaluation and lets the
//     compiler keep the coordinate loop tight.
//
// Determinism: every surrogate here is computed by exactly the floating-point
// operations that prefix the true distance (e.g. the squared-Euclidean sum is
// the pre-Sqrt value of Euclidean), and FromSurrogate applies the exact
// remaining operation. Because Sqrt/Acos are correctly rounded and monotone
// non-decreasing, max- and order-statistic reductions commute with the
// conversion bit for bit: FromSurrogate(max(s_i)) == max(FromSurrogate(s_i)).
// Argmin/argmax INDICES agree with the true-domain scan except in the
// measure-zero case where two distinct surrogates round to the same true
// distance; the golden and cross-path equivalence tests pin the behaviour on
// real data.

// Space is a first-class metric space: a named distance function together
// with batched block kernels and a comparison-domain surrogate. All built-in
// spaces are stateless and safe for concurrent use; custom implementations
// must be too, since the parallel engine invokes the kernels from multiple
// goroutines.
type Space interface {
	// Name identifies the space ("euclidean", "manhattan", ...). Named
	// built-in spaces are serializable through the sketch codec's registry;
	// adapter spaces report the name they were wrapped with.
	Name() string

	// Dist returns the scalar true-distance function of the space. For the
	// built-in spaces this is the canonical package-level function
	// (Euclidean, Manhattan, ...), so identity-based registries keep
	// working.
	Dist() Distance

	// Distance returns the true distance between two points.
	Distance(a, b Point) float64

	// Surrogate returns the comparison-domain surrogate of the distance: a
	// value m(d) for some strictly increasing m, cheaper to compute than d
	// itself. Surrogates of one space are mutually comparable; they must
	// never be compared across spaces or mixed with true distances.
	Surrogate(a, b Point) float64

	// ToSurrogate maps a true distance into the surrogate domain.
	ToSurrogate(d float64) float64

	// FromSurrogate maps a surrogate value back to the true distance.
	FromSurrogate(s float64) float64

	// DistancesTo writes dst[i] = Surrogate(p, block[i]) for every point of
	// the block. len(dst) must equal len(block).
	DistancesTo(dst []float64, p Point, block Dataset)

	// ArgNearest returns the minimum surrogate distance from p to the set
	// and the index attaining it, scanning ascending with a strict
	// comparison (lowest index wins ties). An empty set yields (+Inf, -1).
	ArgNearest(p Point, set Dataset) (float64, int)

	// UpdateNearest min-merges the surrogate distances to a new center c
	// into the per-point nearest caches: for every i, if
	// Surrogate(c, block[i]) < minDist[i] then minDist[i] and minIdx[i] are
	// updated (minIdx[i] = newIdx). It returns the maximum of minDist over
	// the block after the update (-Inf for an empty block). Callers
	// initialise minDist with +Inf to express "no center yet".
	UpdateNearest(minDist []float64, minIdx []int, c Point, newIdx int, block Dataset) float64
}

// Built-in spaces. Each pairs one of the package-level Distance functions
// with its natural surrogate:
//
//	EuclideanSpace  squared L2 (no Sqrt per evaluation)
//	ManhattanSpace  identity (L1 has no expensive tail op)
//	ChebyshevSpace  identity
//	AngularSpace    negated cosine (no Acos per evaluation; the query
//	                point's norm is computed once per block)
//	CosineSpace     negated cosine (same row-norm reuse)
var (
	EuclideanSpace Space = euclideanSpace{}
	ManhattanSpace Space = manhattanSpace{}
	ChebyshevSpace Space = chebyshevSpace{}
	AngularSpace   Space = angularSpace{}
	CosineSpace    Space = cosineSpace{}
)

// namedSpaces lists the built-in spaces by name; SpaceByName and SpaceNames
// iterate it in this order.
var namedSpaces = []Space{
	EuclideanSpace,
	ManhattanSpace,
	ChebyshevSpace,
	AngularSpace,
	CosineSpace,
}

// SpaceByName returns the built-in space with the given name, or nil if no
// space is registered under it.
func SpaceByName(name string) Space {
	for _, sp := range namedSpaces {
		if sp.Name() == name {
			return sp
		}
	}
	return nil
}

// SpaceNames lists the names of the built-in spaces.
func SpaceNames() []string {
	out := make([]string, len(namedSpaces))
	for i, sp := range namedSpaces {
		out[i] = sp.Name()
	}
	return out
}

// SpaceFor returns the Space for a scalar distance function: the native
// space when dist is one of the built-in functions (nil selects Euclidean,
// the library default), or a SpaceFromDistance adapter otherwise. This is
// how every Distance-typed entry point of the repository upgrades to the
// batched kernels without changing its signature.
func SpaceFor(dist Distance) Space {
	if dist == nil {
		return EuclideanSpace
	}
	ptr := reflect.ValueOf(dist).Pointer()
	for _, sp := range namedSpaces {
		if reflect.ValueOf(sp.Dist()).Pointer() == ptr {
			return sp
		}
	}
	return SpaceFromDistance("custom", dist)
}

// SpaceFromDistance wraps a scalar Distance into a Space with the identity
// surrogate: every kernel evaluation calls dist exactly once and no
// comparison-domain shortcut is taken. It is the compatibility path for
// custom metrics (and for instrumented distances such as Counter, whose call
// counts must reflect every evaluation). The wrapped function must satisfy
// the metric axioms and be safe for concurrent calls.
func SpaceFromDistance(name string, dist Distance) Space {
	if dist == nil {
		dist = Euclidean
	}
	if name == "" {
		name = "custom"
	}
	return &distanceSpace{name: name, dist: dist}
}

// distanceSpace adapts a scalar Distance; surrogate == true distance.
type distanceSpace struct {
	name string
	dist Distance
}

func (s *distanceSpace) Name() string                    { return s.name }
func (s *distanceSpace) Dist() Distance                  { return s.dist }
func (s *distanceSpace) Distance(a, b Point) float64     { return s.dist(a, b) }
func (s *distanceSpace) Surrogate(a, b Point) float64    { return s.dist(a, b) }
func (s *distanceSpace) ToSurrogate(d float64) float64   { return d }
func (s *distanceSpace) FromSurrogate(d float64) float64 { return d }

func (s *distanceSpace) DistancesTo(dst []float64, p Point, block Dataset) {
	for i, q := range block {
		dst[i] = s.dist(p, q)
	}
}

func (s *distanceSpace) ArgNearest(p Point, set Dataset) (float64, int) {
	best := math.Inf(1)
	idx := -1
	for i, q := range set {
		if d := s.dist(p, q); d < best {
			best = d
			idx = i
		}
	}
	return best, idx
}

func (s *distanceSpace) UpdateNearest(minDist []float64, minIdx []int, c Point, newIdx int, block Dataset) float64 {
	m := math.Inf(-1)
	for i, q := range block {
		if d := s.dist(c, q); d < minDist[i] {
			minDist[i] = d
			minIdx[i] = newIdx
		}
		if minDist[i] > m {
			m = minDist[i]
		}
	}
	return m
}

// --- Euclidean ---

type euclideanSpace struct{}

func (euclideanSpace) Name() string                { return "euclidean" }
func (euclideanSpace) Dist() Distance              { return Euclidean }
func (euclideanSpace) Distance(a, b Point) float64 { return Euclidean(a, b) }

// Surrogate is the squared L2 distance: exactly the pre-Sqrt sum of
// Euclidean, so FromSurrogate(Surrogate(a, b)) == Euclidean(a, b) bit for
// bit.
func (euclideanSpace) Surrogate(a, b Point) float64    { return SquaredEuclidean(a, b) }
func (euclideanSpace) ToSurrogate(d float64) float64   { return d * d }
func (euclideanSpace) FromSurrogate(s float64) float64 { return math.Sqrt(s) }

func (euclideanSpace) DistancesTo(dst []float64, p Point, block Dataset) {
	if haveAVXKernels && len(p) >= 4 && len(p)%4 == 0 && len(block) > 0 {
		distancesToEucAVX(p, block, dst)
		return
	}
	for i, q := range block {
		dst[i] = SquaredEuclidean(p, q)
	}
}

// sqDistPair computes the squared distances from p to q1 and q2 in one
// register-blocked pass: the two pairs' accumulator chains are independent,
// so their floating-point latencies overlap, and every p[j] load serves both
// pairs. Each pair is accumulated in exactly the canonical lane order of
// SquaredEuclidean, so both results are bit-identical to the scalar calls.
func sqDistPair(p, q1, q2 Point) (float64, float64) {
	q1 = q1[:len(p)]
	q2 = q2[:len(p)]
	var a0, a1, a2, a3 float64
	var b0, b1, b2, b3 float64
	j := 0
	for ; j+3 < len(p); j += 4 {
		p0, p1, p2, p3 := p[j], p[j+1], p[j+2], p[j+3]
		d0 := p0 - q1[j]
		d1 := p1 - q1[j+1]
		d2 := p2 - q1[j+2]
		d3 := p3 - q1[j+3]
		a0 += d0 * d0
		a1 += d1 * d1
		a2 += d2 * d2
		a3 += d3 * d3
		e0 := p0 - q2[j]
		e1 := p1 - q2[j+1]
		e2 := p2 - q2[j+2]
		e3 := p3 - q2[j+3]
		b0 += e0 * e0
		b1 += e1 * e1
		b2 += e2 * e2
		b3 += e3 * e3
	}
	for ; j < len(p); j++ {
		d := p[j] - q1[j]
		a0 += d * d
		e := p[j] - q2[j]
		b0 += e * e
	}
	return (a0 + a1) + (a2 + a3), (b0 + b1) + (b2 + b3)
}

func (euclideanSpace) ArgNearest(p Point, set Dataset) (float64, int) {
	if haveAVXKernels && len(p) >= 4 && len(p)%4 == 0 && len(set) > 0 {
		return argNearestEucAVX(p, set)
	}
	best := math.Inf(1)
	idx := -1
	i := 0
	for ; i+1 < len(set); i += 2 {
		// Inlined sqDistPair: this is the hottest loop of the library and
		// the call overhead is measurable at benchmark scale.
		q1 := set[i][:len(p)]
		q2 := set[i+1][:len(p)]
		var a0, a1, a2, a3 float64
		var b0, b1, b2, b3 float64
		j := 0
		for ; j+3 < len(p); j += 4 {
			p0, p1, p2, p3 := p[j], p[j+1], p[j+2], p[j+3]
			d0 := p0 - q1[j]
			d1 := p1 - q1[j+1]
			d2 := p2 - q1[j+2]
			d3 := p3 - q1[j+3]
			a0 += d0 * d0
			a1 += d1 * d1
			a2 += d2 * d2
			a3 += d3 * d3
			e0 := p0 - q2[j]
			e1 := p1 - q2[j+1]
			e2 := p2 - q2[j+2]
			e3 := p3 - q2[j+3]
			b0 += e0 * e0
			b1 += e1 * e1
			b2 += e2 * e2
			b3 += e3 * e3
		}
		for ; j < len(p); j++ {
			d := p[j] - q1[j]
			a0 += d * d
			e := p[j] - q2[j]
			b0 += e * e
		}
		s1 := (a0 + a1) + (a2 + a3)
		s2 := (b0 + b1) + (b2 + b3)
		if s1 < best {
			best = s1
			idx = i
		}
		if s2 < best {
			best = s2
			idx = i + 1
		}
	}
	if i < len(set) {
		if s := SquaredEuclidean(p, set[i]); s < best {
			best = s
			idx = i
		}
	}
	return best, idx
}

func (euclideanSpace) UpdateNearest(minDist []float64, minIdx []int, c Point, newIdx int, block Dataset) float64 {
	if haveAVXKernels && len(c) >= 4 && len(c)%4 == 0 && len(block) > 0 {
		// Batch through the vector kernel in stack-sized runs: same values
		// as the scalar path (the kernel is bit-identical), zero heap
		// allocations.
		var buf [256]float64
		m := math.Inf(-1)
		for start := 0; start < len(block); start += len(buf) {
			end := start + len(buf)
			if end > len(block) {
				end = len(block)
			}
			distancesToEucAVX(c, block[start:end], buf[:end-start])
			for i := start; i < end; i++ {
				if s := buf[i-start]; s < minDist[i] {
					minDist[i] = s
					minIdx[i] = newIdx
				}
				if minDist[i] > m {
					m = minDist[i]
				}
			}
		}
		return m
	}
	m := math.Inf(-1)
	i := 0
	for ; i+1 < len(block); i += 2 {
		s1, s2 := sqDistPair(c, block[i], block[i+1])
		if s1 < minDist[i] {
			minDist[i] = s1
			minIdx[i] = newIdx
		}
		if minDist[i] > m {
			m = minDist[i]
		}
		if s2 < minDist[i+1] {
			minDist[i+1] = s2
			minIdx[i+1] = newIdx
		}
		if minDist[i+1] > m {
			m = minDist[i+1]
		}
	}
	if i < len(block) {
		if s := SquaredEuclidean(c, block[i]); s < minDist[i] {
			minDist[i] = s
			minIdx[i] = newIdx
		}
		if minDist[i] > m {
			m = minDist[i]
		}
	}
	return m
}

// --- Manhattan ---

type manhattanSpace struct{}

func (manhattanSpace) Name() string                    { return "manhattan" }
func (manhattanSpace) Dist() Distance                  { return Manhattan }
func (manhattanSpace) Distance(a, b Point) float64     { return Manhattan(a, b) }
func (manhattanSpace) Surrogate(a, b Point) float64    { return Manhattan(a, b) }
func (manhattanSpace) ToSurrogate(d float64) float64   { return d }
func (manhattanSpace) FromSurrogate(s float64) float64 { return s }

func (manhattanSpace) DistancesTo(dst []float64, p Point, block Dataset) {
	for i, q := range block {
		q = q[:len(p)]
		var s float64
		for j := range p {
			s += math.Abs(p[j] - q[j])
		}
		dst[i] = s
	}
}

func (manhattanSpace) ArgNearest(p Point, set Dataset) (float64, int) {
	best := math.Inf(1)
	idx := -1
	for i, q := range set {
		q = q[:len(p)]
		var s float64
		for j := range p {
			s += math.Abs(p[j] - q[j])
		}
		if s < best {
			best = s
			idx = i
		}
	}
	return best, idx
}

func (manhattanSpace) UpdateNearest(minDist []float64, minIdx []int, c Point, newIdx int, block Dataset) float64 {
	m := math.Inf(-1)
	for i, q := range block {
		q = q[:len(c)]
		var s float64
		for j := range c {
			s += math.Abs(c[j] - q[j])
		}
		if s < minDist[i] {
			minDist[i] = s
			minIdx[i] = newIdx
		}
		if minDist[i] > m {
			m = minDist[i]
		}
	}
	return m
}

// --- Chebyshev ---

type chebyshevSpace struct{}

func (chebyshevSpace) Name() string                    { return "chebyshev" }
func (chebyshevSpace) Dist() Distance                  { return Chebyshev }
func (chebyshevSpace) Distance(a, b Point) float64     { return Chebyshev(a, b) }
func (chebyshevSpace) Surrogate(a, b Point) float64    { return Chebyshev(a, b) }
func (chebyshevSpace) ToSurrogate(d float64) float64   { return d }
func (chebyshevSpace) FromSurrogate(s float64) float64 { return s }

func (chebyshevSpace) DistancesTo(dst []float64, p Point, block Dataset) {
	for i, q := range block {
		q = q[:len(p)]
		var s float64
		for j := range p {
			if d := math.Abs(p[j] - q[j]); d > s {
				s = d
			}
		}
		dst[i] = s
	}
}

func (chebyshevSpace) ArgNearest(p Point, set Dataset) (float64, int) {
	best := math.Inf(1)
	idx := -1
	for i, q := range set {
		q = q[:len(p)]
		var s float64
		for j := range p {
			if d := math.Abs(p[j] - q[j]); d > s {
				s = d
			}
		}
		if s < best {
			best = s
			idx = i
		}
	}
	return best, idx
}

func (chebyshevSpace) UpdateNearest(minDist []float64, minIdx []int, c Point, newIdx int, block Dataset) float64 {
	m := math.Inf(-1)
	for i, q := range block {
		q = q[:len(c)]
		var s float64
		for j := range c {
			if d := math.Abs(c[j] - q[j]); d > s {
				s = d
			}
		}
		if s < minDist[i] {
			minDist[i] = s
			minIdx[i] = newIdx
		}
		if minDist[i] > m {
			m = minDist[i]
		}
	}
	return m
}

// --- Angular and Cosine ---
//
// Both are monotone decreasing functions of the cosine similarity c, so the
// shared surrogate is -c (increasing with the distance). The clamping and
// zero-norm conventions replicate the scalar Angular/Cosine functions
// exactly, so FromSurrogate(Surrogate(a, b)) is bit-identical to the scalar
// call. The batched kernels compute the query point's norm once per block —
// the "precomputed norm" half of each pair's work.

// negCosine returns -cos(a, b) given the precomputed squared norm na of a,
// replicating the clamping and zero-norm conventions of Angular/Cosine:
// coincident zero vectors map to -1 (distance 0) and a single zero vector to
// 0 (the midpoint distance).
func negCosine(a, b Point, na float64) float64 {
	b = b[:len(a)]
	var dot, nb float64
	for j := range a {
		dot += a[j] * b[j]
		nb += b[j] * b[j]
	}
	if na == 0 || nb == 0 {
		if na == 0 && nb == 0 {
			return -1
		}
		return 0
	}
	c := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return -c
}

// squaredNorm is sum a_i^2, the precomputable half of the cosine kernels.
func squaredNorm(a Point) float64 {
	var s float64
	for _, c := range a {
		s += c * c
	}
	return s
}

type angularSpace struct{}

func (angularSpace) Name() string                { return "angular" }
func (angularSpace) Dist() Distance              { return Angular }
func (angularSpace) Distance(a, b Point) float64 { return Angular(a, b) }
func (angularSpace) Surrogate(a, b Point) float64 {
	return negCosine(a, b, squaredNorm(a))
}
func (angularSpace) ToSurrogate(d float64) float64 { return -math.Cos(d * math.Pi) }
func (angularSpace) FromSurrogate(s float64) float64 {
	if math.IsInf(s, 1) {
		// The empty-set sentinel (+Inf surrogate) must stay +Inf in the true
		// domain; clamping it into Acos would report distance 1 to nothing.
		return s
	}
	if s < -1 {
		s = -1
	}
	if s > 1 {
		s = 1
	}
	return math.Acos(-s) / math.Pi
}

func (angularSpace) DistancesTo(dst []float64, p Point, block Dataset) {
	na := squaredNorm(p)
	for i, q := range block {
		dst[i] = negCosine(p, q, na)
	}
}

func (angularSpace) ArgNearest(p Point, set Dataset) (float64, int) {
	na := squaredNorm(p)
	best := math.Inf(1)
	idx := -1
	for i, q := range set {
		if s := negCosine(p, q, na); s < best {
			best = s
			idx = i
		}
	}
	return best, idx
}

func (angularSpace) UpdateNearest(minDist []float64, minIdx []int, c Point, newIdx int, block Dataset) float64 {
	nc := squaredNorm(c)
	m := math.Inf(-1)
	for i, q := range block {
		if s := negCosine(c, q, nc); s < minDist[i] {
			minDist[i] = s
			minIdx[i] = newIdx
		}
		if minDist[i] > m {
			m = minDist[i]
		}
	}
	return m
}

type cosineSpace struct{}

func (cosineSpace) Name() string                { return "cosine" }
func (cosineSpace) Dist() Distance              { return Cosine }
func (cosineSpace) Distance(a, b Point) float64 { return Cosine(a, b) }
func (cosineSpace) Surrogate(a, b Point) float64 {
	return negCosine(a, b, squaredNorm(a))
}
func (cosineSpace) ToSurrogate(d float64) float64   { return d - 1 }
func (cosineSpace) FromSurrogate(s float64) float64 { return 1 + s }

func (cosineSpace) DistancesTo(dst []float64, p Point, block Dataset) {
	na := squaredNorm(p)
	for i, q := range block {
		dst[i] = negCosine(p, q, na)
	}
}

func (cosineSpace) ArgNearest(p Point, set Dataset) (float64, int) {
	na := squaredNorm(p)
	best := math.Inf(1)
	idx := -1
	for i, q := range set {
		if s := negCosine(p, q, na); s < best {
			best = s
			idx = i
		}
	}
	return best, idx
}

func (cosineSpace) UpdateNearest(minDist []float64, minIdx []int, c Point, newIdx int, block Dataset) float64 {
	nc := squaredNorm(c)
	m := math.Inf(-1)
	for i, q := range block {
		if s := negCosine(c, q, nc); s < minDist[i] {
			minDist[i] = s
			minIdx[i] = newIdx
		}
		if minDist[i] > m {
			m = minDist[i]
		}
	}
	return m
}

// CountingSpace wraps a Space and counts surrogate evaluations across all
// kernels (one count per point-pair examined), the Space-era analogue of
// Counter. It is safe for concurrent use and is what the distance-call
// budget tests use on the native path, where no scalar Distance function is
// ever invoked.
type CountingSpace struct {
	inner Space
	evals atomic.Int64
}

// NewCountingSpace returns a counting wrapper around sp (nil selects
// EuclideanSpace).
func NewCountingSpace(sp Space) *CountingSpace {
	if sp == nil {
		sp = EuclideanSpace
	}
	return &CountingSpace{inner: sp}
}

// Evaluations returns the number of point-pair evaluations so far.
func (c *CountingSpace) Evaluations() int64 { return c.evals.Load() }

// Reset sets the evaluation counter back to zero.
func (c *CountingSpace) Reset() { c.evals.Store(0) }

func (c *CountingSpace) Name() string   { return c.inner.Name() }
func (c *CountingSpace) Dist() Distance { return c.inner.Dist() }

func (c *CountingSpace) Distance(a, b Point) float64 {
	c.evals.Add(1)
	return c.inner.Distance(a, b)
}

func (c *CountingSpace) Surrogate(a, b Point) float64 {
	c.evals.Add(1)
	return c.inner.Surrogate(a, b)
}

func (c *CountingSpace) ToSurrogate(d float64) float64   { return c.inner.ToSurrogate(d) }
func (c *CountingSpace) FromSurrogate(s float64) float64 { return c.inner.FromSurrogate(s) }

func (c *CountingSpace) DistancesTo(dst []float64, p Point, block Dataset) {
	c.evals.Add(int64(len(block)))
	c.inner.DistancesTo(dst, p, block)
}

func (c *CountingSpace) ArgNearest(p Point, set Dataset) (float64, int) {
	c.evals.Add(int64(len(set)))
	return c.inner.ArgNearest(p, set)
}

func (c *CountingSpace) UpdateNearest(minDist []float64, minIdx []int, cp Point, newIdx int, block Dataset) float64 {
	c.evals.Add(int64(len(block)))
	return c.inner.UpdateNearest(minDist, minIdx, cp, newIdx, block)
}
