package metric

import (
	"math"
	"sync/atomic"

	"coresetclustering/internal/selection"
)

// Distance computes the distance between two points of equal dimensionality.
// Implementations must satisfy the metric axioms (non-negativity, identity of
// indiscernibles, symmetry, and the triangle inequality); the approximation
// guarantees of every algorithm in this repository depend on them.
//
// Implementations must also be safe for concurrent use: the parallel
// distance engine (see parallel.go) invokes the function from multiple
// goroutines by default. Pure functions of their arguments — like every
// built-in here — are safe; closures carrying mutable scratch state are not
// (guard them with a mutex, or force the sequential path with one worker).
type Distance func(a, b Point) float64

// Euclidean is the L2 distance, the metric used by all experiments in the
// paper. The summation order (four independent accumulator lanes combined as
// (s0+s1)+(s2+s3), remainder into lane 0) is part of the determinism
// contract: the batched kernels of EuclideanSpace accumulate in exactly this
// order, so the surrogate path and this scalar path agree bit for bit.
func Euclidean(a, b Point) float64 {
	return math.Sqrt(SquaredEuclidean(a, b))
}

// SquaredEuclidean returns the squared L2 distance — the comparison-domain
// surrogate of EuclideanSpace. It is NOT a metric (it violates the triangle
// inequality) and must not be passed to the clustering algorithms directly;
// argmin/threshold reductions over it are exactly equivalent to reductions
// over Euclidean because the square root is monotone. The four-lane
// accumulation breaks the floating-point add dependency chain (the hot-path
// kernels are compute-bound on it) and is replicated verbatim by the batched
// kernels.
func SquaredEuclidean(a, b Point) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+3 < len(a); j += 4 {
		d0 := a[j] - b[j]
		d1 := a[j+1] - b[j+1]
		d2 := a[j+2] - b[j+2]
		d3 := a[j+3] - b[j+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; j < len(a); j++ {
		d := a[j] - b[j]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Manhattan is the L1 distance.
func Manhattan(a, b Point) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Chebyshev is the L-infinity distance.
func Chebyshev(a, b Point) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Cosine is the cosine distance 1 - cos(a, b), clamped to [0, 2]. For vectors
// normalised to the unit sphere (as word2vec-style embeddings typically are)
// it is topologically equivalent to the angular metric; strictly speaking it
// does not satisfy the triangle inequality for arbitrary vectors, so prefer
// Angular for correctness-critical uses.
func Cosine(a, b Point) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		if na == 0 && nb == 0 {
			return 0
		}
		return 1
	}
	c := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return 1 - c
}

// Angular is the angular distance acos(cos(a,b))/pi, normalised to [0,1]. It
// is a proper metric on the unit sphere.
func Angular(a, b Point) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		if na == 0 && nb == 0 {
			return 0
		}
		return 0.5
	}
	c := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return math.Acos(c) / math.Pi
}

// Minkowski returns the Lp distance for the given order p >= 1.
func Minkowski(p float64) Distance {
	return func(a, b Point) float64 {
		var s float64
		for i := range a {
			s += math.Pow(math.Abs(a[i]-b[i]), p)
		}
		return math.Pow(s, 1/p)
	}
}

// Counter wraps a Distance and counts how many times it is invoked. Distance
// evaluations dominate the running time of every algorithm here, so the
// experiment harness and the ablation benchmarks report them alongside
// wall-clock time. Counter is safe for concurrent use.
type Counter struct {
	dist  Distance
	calls atomic.Int64
}

// NewCounter returns a counting wrapper around dist.
func NewCounter(dist Distance) *Counter {
	return &Counter{dist: dist}
}

// Distance returns the wrapped distance function; each call increments the
// counter.
func (c *Counter) Distance(a, b Point) float64 {
	c.calls.Add(1)
	return c.dist(a, b)
}

// Calls returns the number of distance evaluations so far.
func (c *Counter) Calls() int64 { return c.calls.Load() }

// Reset sets the call counter back to zero.
func (c *Counter) Reset() { c.calls.Store(0) }

// DistanceToSet returns min_{x in set} dist(p, x) together with the index of
// the closest point. An empty set yields (+Inf, -1).
func DistanceToSet(dist Distance, p Point, set Dataset) (float64, int) {
	best := math.Inf(1)
	idx := -1
	for i, q := range set {
		if d := dist(p, q); d < best {
			best = d
			idx = i
		}
	}
	return best, idx
}

// Radius returns max_{s in points} d(s, centers), i.e. r_T(S) in the paper's
// notation. An empty center set yields +Inf (for non-empty points) and an
// empty point set yields 0.
func Radius(dist Distance, points Dataset, centers Dataset) float64 {
	if len(points) == 0 {
		return 0
	}
	var r float64
	for _, p := range points {
		d, _ := DistanceToSet(dist, p, centers)
		if d > r {
			r = d
		}
	}
	return r
}

// RadiusExcluding returns r_{T,Z_T}(S): the maximum distance from points to
// centers after discarding the z points farthest from the centers (the
// outlier-aware radius of the k-center problem with z outliers). It returns 0
// when z >= len(points).
func RadiusExcluding(dist Distance, points Dataset, centers Dataset, z int) float64 {
	if len(points) == 0 || z >= len(points) {
		return 0
	}
	if z <= 0 {
		return Radius(dist, points, centers)
	}
	dists := make([]float64, len(points))
	for i, p := range points {
		dists[i], _ = DistanceToSet(dist, p, centers)
	}
	// The radius with z outliers is the (n-z)-th smallest distance, i.e. we
	// drop the z largest. Select rather than sort: len(points) can be large.
	r, err := selection.SelectInPlace(dists, len(dists)-z-1)
	if err != nil {
		return 0 // unreachable: dists is non-empty and the rank is in range
	}
	return r
}

// Assign maps every point to the index of its closest center, producing the
// clustering induced by the center set.
func Assign(dist Distance, points Dataset, centers Dataset) []int {
	out := make([]int, len(points))
	for i, p := range points {
		_, idx := DistanceToSet(dist, p, centers)
		out[i] = idx
	}
	return out
}

// PairwiseDistances returns all n*(n-1)/2 distinct pairwise distances of the
// dataset in an unspecified order. It is used by the exhaustive radius search
// of the CharikarEtAl baseline and by small-instance brute-force tests.
func PairwiseDistances(dist Distance, points Dataset) []float64 {
	n := len(points)
	if n < 2 {
		return nil
	}
	out := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, dist(points[i], points[j]))
		}
	}
	return out
}

// PairwiseDistancesIn is PairwiseDistances on a Space: each row i is one
// batched DistancesTo over points[i+1:], converted to the true domain in
// place. Row i's distances occupy out[i*n - i*(i+1)/2 ...], the same order as
// PairwiseDistances.
func PairwiseDistancesIn(sp Space, points Dataset) []float64 {
	n := len(points)
	if n < 2 {
		return nil
	}
	out := make([]float64, n*(n-1)/2)
	off := 0
	for i := 0; i < n-1; i++ {
		row := out[off : off+n-1-i]
		sp.DistancesTo(row, points[i], points[i+1:])
		for j, s := range row {
			row[j] = sp.FromSurrogate(s)
		}
		off += n - 1 - i
	}
	return out
}

// Diameter returns the maximum pairwise distance of the dataset (0 for fewer
// than two points).
func Diameter(dist Distance, points Dataset) float64 {
	var m float64
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			if d := dist(points[i], points[j]); d > m {
				m = d
			}
		}
	}
	return m
}

// MinPairwiseDistance returns the minimum distance between two distinct points
// of the dataset, or +Inf if there are fewer than two points. It is used by
// the streaming doubling algorithm to initialise its lower bound phi.
func MinPairwiseDistance(dist Distance, points Dataset) float64 {
	m := math.Inf(1)
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			if d := dist(points[i], points[j]); d < m {
				m = d
			}
		}
	}
	return m
}
