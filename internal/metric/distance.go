package metric

import (
	"math"
	"sync/atomic"
)

// Distance computes the distance between two points of equal dimensionality.
// Implementations must satisfy the metric axioms (non-negativity, identity of
// indiscernibles, symmetry, and the triangle inequality); the approximation
// guarantees of every algorithm in this repository depend on them.
//
// Implementations must also be safe for concurrent use: the parallel
// distance engine (see parallel.go) invokes the function from multiple
// goroutines by default. Pure functions of their arguments — like every
// built-in here — are safe; closures carrying mutable scratch state are not
// (guard them with a mutex, or force the sequential path with one worker).
type Distance func(a, b Point) float64

// Euclidean is the L2 distance, the metric used by all experiments in the
// paper.
func Euclidean(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SquaredEuclidean returns the squared L2 distance. It is NOT a metric (it
// violates the triangle inequality) and must not be passed to the clustering
// algorithms; it is exposed only for nearest-neighbour style comparisons where
// monotonicity suffices.
func SquaredEuclidean(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Manhattan is the L1 distance.
func Manhattan(a, b Point) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Chebyshev is the L-infinity distance.
func Chebyshev(a, b Point) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Cosine is the cosine distance 1 - cos(a, b), clamped to [0, 2]. For vectors
// normalised to the unit sphere (as word2vec-style embeddings typically are)
// it is topologically equivalent to the angular metric; strictly speaking it
// does not satisfy the triangle inequality for arbitrary vectors, so prefer
// Angular for correctness-critical uses.
func Cosine(a, b Point) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		if na == 0 && nb == 0 {
			return 0
		}
		return 1
	}
	c := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return 1 - c
}

// Angular is the angular distance acos(cos(a,b))/pi, normalised to [0,1]. It
// is a proper metric on the unit sphere.
func Angular(a, b Point) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		if na == 0 && nb == 0 {
			return 0
		}
		return 0.5
	}
	c := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return math.Acos(c) / math.Pi
}

// Minkowski returns the Lp distance for the given order p >= 1.
func Minkowski(p float64) Distance {
	return func(a, b Point) float64 {
		var s float64
		for i := range a {
			s += math.Pow(math.Abs(a[i]-b[i]), p)
		}
		return math.Pow(s, 1/p)
	}
}

// Counter wraps a Distance and counts how many times it is invoked. Distance
// evaluations dominate the running time of every algorithm here, so the
// experiment harness and the ablation benchmarks report them alongside
// wall-clock time. Counter is safe for concurrent use.
type Counter struct {
	dist  Distance
	calls atomic.Int64
}

// NewCounter returns a counting wrapper around dist.
func NewCounter(dist Distance) *Counter {
	return &Counter{dist: dist}
}

// Distance returns the wrapped distance function; each call increments the
// counter.
func (c *Counter) Distance(a, b Point) float64 {
	c.calls.Add(1)
	return c.dist(a, b)
}

// Calls returns the number of distance evaluations so far.
func (c *Counter) Calls() int64 { return c.calls.Load() }

// Reset sets the call counter back to zero.
func (c *Counter) Reset() { c.calls.Store(0) }

// DistanceToSet returns min_{x in set} dist(p, x) together with the index of
// the closest point. An empty set yields (+Inf, -1).
func DistanceToSet(dist Distance, p Point, set Dataset) (float64, int) {
	best := math.Inf(1)
	idx := -1
	for i, q := range set {
		if d := dist(p, q); d < best {
			best = d
			idx = i
		}
	}
	return best, idx
}

// Radius returns max_{s in points} d(s, centers), i.e. r_T(S) in the paper's
// notation. An empty center set yields +Inf (for non-empty points) and an
// empty point set yields 0.
func Radius(dist Distance, points Dataset, centers Dataset) float64 {
	if len(points) == 0 {
		return 0
	}
	var r float64
	for _, p := range points {
		d, _ := DistanceToSet(dist, p, centers)
		if d > r {
			r = d
		}
	}
	return r
}

// RadiusExcluding returns r_{T,Z_T}(S): the maximum distance from points to
// centers after discarding the z points farthest from the centers (the
// outlier-aware radius of the k-center problem with z outliers). It returns 0
// when z >= len(points).
func RadiusExcluding(dist Distance, points Dataset, centers Dataset, z int) float64 {
	if len(points) == 0 || z >= len(points) {
		return 0
	}
	if z <= 0 {
		return Radius(dist, points, centers)
	}
	dists := make([]float64, len(points))
	for i, p := range points {
		dists[i], _ = DistanceToSet(dist, p, centers)
	}
	// The radius with z outliers is the (n-z)-th smallest distance, i.e. we
	// drop the z largest. Select rather than sort: len(points) can be large.
	return kthSmallest(dists, len(dists)-z-1)
}

// Assign maps every point to the index of its closest center, producing the
// clustering induced by the center set.
func Assign(dist Distance, points Dataset, centers Dataset) []int {
	out := make([]int, len(points))
	for i, p := range points {
		_, idx := DistanceToSet(dist, p, centers)
		out[i] = idx
	}
	return out
}

// kthSmallest returns the element with rank k (0-based) of values using an
// in-place iterative quickselect with median-of-three pivoting. The slice is
// reordered.
func kthSmallest(values []float64, k int) float64 {
	lo, hi := 0, len(values)-1
	if k < 0 {
		k = 0
	}
	if k > hi {
		k = hi
	}
	for lo < hi {
		p := partition(values, lo, hi)
		switch {
		case k == p:
			return values[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return values[k]
}

// partition performs Hoare-style partitioning around a median-of-three pivot
// and returns the final pivot index.
func partition(v []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: order v[lo], v[mid], v[hi].
	if v[mid] < v[lo] {
		v[mid], v[lo] = v[lo], v[mid]
	}
	if v[hi] < v[lo] {
		v[hi], v[lo] = v[lo], v[hi]
	}
	if v[hi] < v[mid] {
		v[hi], v[mid] = v[mid], v[hi]
	}
	pivot := v[mid]
	// Move pivot out of the way.
	v[mid], v[hi-1] = v[hi-1], v[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if v[j] < pivot {
			v[i], v[j] = v[j], v[i]
			i++
		}
	}
	v[i], v[hi-1] = v[hi-1], v[i]
	return i
}

// PairwiseDistances returns all n*(n-1)/2 distinct pairwise distances of the
// dataset in an unspecified order. It is used by the exhaustive radius search
// of the CharikarEtAl baseline and by small-instance brute-force tests.
func PairwiseDistances(dist Distance, points Dataset) []float64 {
	n := len(points)
	if n < 2 {
		return nil
	}
	out := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, dist(points[i], points[j]))
		}
	}
	return out
}

// Diameter returns the maximum pairwise distance of the dataset (0 for fewer
// than two points).
func Diameter(dist Distance, points Dataset) float64 {
	var m float64
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			if d := dist(points[i], points[j]); d > m {
				m = d
			}
		}
	}
	return m
}

// MinPairwiseDistance returns the minimum distance between two distinct points
// of the dataset, or +Inf if there are fewer than two points. It is used by
// the streaming doubling algorithm to initialise its lower bound phi.
func MinPairwiseDistance(dist Distance, points Dataset) float64 {
	m := math.Inf(1)
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			if d := dist(points[i], points[j]); d < m {
				m = d
			}
		}
	}
	return m
}
