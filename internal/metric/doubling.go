package metric

import (
	"math"
	"math/rand"
)

// EstimateDoublingDimension returns an empirical estimate of the doubling
// dimension D of the dataset: the smallest D such that every ball of radius r
// can be covered by at most 2^D balls of radius r/2.
//
// Computing the exact doubling dimension is intractable, so we use the
// standard sampling heuristic: for a sample of anchor points and a geometric
// grid of radii, greedily cover the ball B(anchor, r) with balls of radius
// r/2 centered at points of the dataset, and report log2 of the largest cover
// size observed. The estimate is an upper-bound-flavoured heuristic intended
// for diagnostics and for sizing streaming coresets (the tau parameter of the
// 1-pass algorithm); the MapReduce algorithms never need it (they are
// oblivious to D, as the paper stresses).
//
// anchors bounds the number of sampled ball centers and radii the number of
// radius scales per anchor. rng may be nil, in which case a fixed-seed source
// is used so the estimate is deterministic. This wrapper runs on the
// auto-parallel engine; the result is identical for any worker count (and to
// the historical fully sequential scan).
func EstimateDoublingDimension(dist Distance, points Dataset, anchors, radii int, rng *rand.Rand) float64 {
	return NewEngine(0).EstimateDoublingDimension(SpaceFor(dist), points, anchors, radii, rng)
}

// EstimateDoublingDimension is the engine form of the package-level function:
// all pairwise scans (the farthest-point pass per anchor and the cover passes
// of the greedy) run through the engine's chunked batch kernels instead of
// sequential per-pair loops. The anchor's distance vector is computed once
// per anchor and reused across every radius scale, where the historical
// implementation recomputed it per scale. Greedy decisions (first uncovered
// point, cover membership) are taken sequentially on the chunk-assembled
// vectors, so the estimate is bit-identical to the sequential scan for every
// worker count.
func (e Engine) EstimateDoublingDimension(sp Space, points Dataset, anchors, radii int, rng *rand.Rand) float64 {
	if len(points) < 2 {
		return 0
	}
	if anchors <= 0 {
		anchors = 8
	}
	if radii <= 0 {
		radii = 4
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if anchors > len(points) {
		anchors = len(points)
	}
	maxCover := 1
	dvec := make([]float64, len(points)) // true distances from the current anchor
	perm := rng.Perm(len(points))[:anchors]
	for _, ai := range perm {
		anchor := points[ai]
		// One chunked pass computes every distance from the anchor; the
		// vector is reused by all radius scales below.
		e.trueDistances(sp, dvec, anchor, points)
		var rmax float64
		for _, d := range dvec {
			if d > rmax {
				rmax = d
			}
		}
		if rmax == 0 {
			continue
		}
		r := rmax
		for s := 0; s < radii; s++ {
			// Points inside B(anchor, r), in index order.
			var ball Dataset
			for i, d := range dvec {
				if d <= r {
					ball = append(ball, points[i])
				}
			}
			if len(ball) > 1 {
				c := e.greedyCoverCount(sp, ball, r/2)
				if c > maxCover {
					maxCover = c
				}
			}
			r /= 2
		}
	}
	return math.Log2(float64(maxCover))
}

// trueDistances fills dst[i] with the TRUE distance from p to points[i],
// chunking the batched surrogate kernel across the workers and converting
// each chunk in place.
func (e Engine) trueDistances(sp Space, dst []float64, p Point, points Dataset) {
	fill := func(lo, hi int) {
		sp.DistancesTo(dst[lo:hi], p, points[lo:hi])
		for i := lo; i < hi; i++ {
			dst[i] = sp.FromSurrogate(dst[i])
		}
	}
	if e.Sequential(len(points)) {
		fill(0, len(points))
		return
	}
	e.ForEachChunk(len(points), func(_, lo, hi int) { fill(lo, hi) })
}

// greedyCoverCount covers the given points with balls of radius r centered at
// points of the set, greedily, and returns the number of balls used. This is
// the classic farthest-point cover: repeatedly pick the first uncovered point
// as a new center until everything is covered. Each cover pass is one
// chunked batch kernel; the uncovered-point selection stays sequential, so
// the count matches the sequential greedy exactly.
func (e Engine) greedyCoverCount(sp Space, points Dataset, r float64) int {
	covered := make([]bool, len(points))
	row := make([]float64, len(points))
	count := 0
	start := 0
	for {
		// Find the first uncovered point.
		idx := -1
		for i := start; i < len(covered); i++ {
			if !covered[i] {
				idx = i
				break
			}
		}
		if idx < 0 {
			return count
		}
		count++
		start = idx + 1
		e.trueDistances(sp, row, points[idx], points)
		for i, d := range row {
			if !covered[i] && d <= r {
				covered[i] = true
			}
		}
	}
}

// CoresetSizeForDimension returns the coreset size prescribed by the paper's
// analysis for the streaming algorithm: tau = (k + z) * (16/eps)^D, clamped to
// at least k+z+1 and at most maxSize (0 means no clamp). It is exposed so that
// callers who know (or have estimated) D can size the streaming coreset the
// way Theorem 3 does; in practice the experiments size coresets directly via
// the multiplier mu, exactly as the paper's experimental section does.
func CoresetSizeForDimension(k, z int, eps, d float64, maxSize int) int {
	if eps <= 0 {
		eps = 1
	}
	base := float64(k + z)
	size := base * math.Pow(16/eps, d)
	n := int(math.Ceil(size))
	if n < k+z+1 {
		n = k + z + 1
	}
	if maxSize > 0 && n > maxSize {
		n = maxSize
	}
	return n
}
