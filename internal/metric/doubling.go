package metric

import (
	"math"
	"math/rand"
)

// EstimateDoublingDimension returns an empirical estimate of the doubling
// dimension D of the dataset: the smallest D such that every ball of radius r
// can be covered by at most 2^D balls of radius r/2.
//
// Computing the exact doubling dimension is intractable, so we use the
// standard sampling heuristic: for a sample of anchor points and a geometric
// grid of radii, greedily cover the ball B(anchor, r) with balls of radius
// r/2 centered at points of the dataset, and report log2 of the largest cover
// size observed. The estimate is an upper-bound-flavoured heuristic intended
// for diagnostics and for sizing streaming coresets (the tau parameter of the
// 1-pass algorithm); the MapReduce algorithms never need it (they are
// oblivious to D, as the paper stresses).
//
// anchors bounds the number of sampled ball centers and radii the number of
// radius scales per anchor. rng may be nil, in which case a fixed-seed source
// is used so the estimate is deterministic.
func EstimateDoublingDimension(dist Distance, points Dataset, anchors, radii int, rng *rand.Rand) float64 {
	if len(points) < 2 {
		return 0
	}
	if anchors <= 0 {
		anchors = 8
	}
	if radii <= 0 {
		radii = 4
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if anchors > len(points) {
		anchors = len(points)
	}
	maxCover := 1
	perm := rng.Perm(len(points))[:anchors]
	for _, ai := range perm {
		anchor := points[ai]
		// Largest radius: distance to the farthest point from the anchor.
		var rmax float64
		for _, p := range points {
			if d := dist(anchor, p); d > rmax {
				rmax = d
			}
		}
		if rmax == 0 {
			continue
		}
		r := rmax
		for s := 0; s < radii; s++ {
			// Points inside B(anchor, r).
			var ball Dataset
			for _, p := range points {
				if dist(anchor, p) <= r {
					ball = append(ball, p)
				}
			}
			if len(ball) > 1 {
				c := greedyCoverCount(dist, ball, r/2)
				if c > maxCover {
					maxCover = c
				}
			}
			r /= 2
		}
	}
	return math.Log2(float64(maxCover))
}

// greedyCoverCount covers the given points with balls of radius r centered at
// points of the set, greedily, and returns the number of balls used. This is
// the classic farthest-point cover: repeatedly pick an uncovered point as a
// new center until everything is covered.
func greedyCoverCount(dist Distance, points Dataset, r float64) int {
	covered := make([]bool, len(points))
	count := 0
	for {
		// Find the first uncovered point.
		idx := -1
		for i, c := range covered {
			if !c {
				idx = i
				break
			}
		}
		if idx < 0 {
			return count
		}
		count++
		center := points[idx]
		for i, p := range points {
			if !covered[i] && dist(center, p) <= r {
				covered[i] = true
			}
		}
	}
}

// CoresetSizeForDimension returns the coreset size prescribed by the paper's
// analysis for the streaming algorithm: tau = (k + z) * (16/eps)^D, clamped to
// at least k+z+1 and at most maxSize (0 means no clamp). It is exposed so that
// callers who know (or have estimated) D can size the streaming coreset the
// way Theorem 3 does; in practice the experiments size coresets directly via
// the multiplier mu, exactly as the paper's experimental section does.
func CoresetSizeForDimension(k, z int, eps, d float64, maxSize int) int {
	if eps <= 0 {
		eps = 1
	}
	base := float64(k + z)
	size := base * math.Pow(16/eps, d)
	n := int(math.Ceil(size))
	if n < k+z+1 {
		n = k + z + 1
	}
	if maxSize > 0 && n > maxSize {
		n = maxSize
	}
	return n
}
