package metric

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func randDataset(n, dim int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := make(Dataset, n)
	for i := range ds {
		p := make(Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		ds[i] = p
	}
	return ds
}

// TestChunkRangesCoverDisjoint checks that the chunking is a disjoint cover
// of [0, n) in ascending order for a grid of sizes and worker counts.
func TestChunkRangesCoverDisjoint(t *testing.T) {
	for _, n := range []int{0, 1, 2, 255, 256, 257, 1000, 4096, 100000} {
		for _, w := range []int{1, 2, 3, 7, 8, 64} {
			chunks := chunkRanges(n, w, minChunk)
			if n == 0 {
				if chunks != nil {
					t.Fatalf("chunkRanges(%d,%d) = %v, want nil", n, w, chunks)
				}
				continue
			}
			if len(chunks) > w {
				t.Fatalf("chunkRanges(%d,%d): %d chunks exceeds %d workers", n, w, len(chunks), w)
			}
			next := 0
			for ci, ch := range chunks {
				if ch[0] != next {
					t.Fatalf("chunkRanges(%d,%d): chunk %d starts at %d, want %d", n, w, ci, ch[0], next)
				}
				if ch[1] <= ch[0] {
					t.Fatalf("chunkRanges(%d,%d): empty chunk %d: %v", n, w, ci, ch)
				}
				next = ch[1]
			}
			if next != n {
				t.Fatalf("chunkRanges(%d,%d): covers [0,%d), want [0,%d)", n, w, next, n)
			}
			if w > 1 && n >= 2*minChunk {
				for ci, ch := range chunks {
					if ch[1]-ch[0] < minChunk {
						t.Fatalf("chunkRanges(%d,%d): chunk %d shorter than minChunk: %v", n, w, ci, ch)
					}
				}
			}
		}
	}
}

// TestParallelKernelsMatchSequential is the core bit-identity check: for a
// grid of sizes straddling the sequential cutoff and several worker counts,
// every parallel kernel must return exactly what its sequential counterpart
// returns, including argmin/argmax indices on inputs with duplicated points
// (ties must resolve to the lowest index).
func TestParallelKernelsMatchSequential(t *testing.T) {
	for _, n := range []int{1, 7, 100, 600, 3000, 9000} {
		ds := randDataset(n, 5, int64(n))
		// Duplicate a few points to force distance ties.
		for i := 3; i+10 < len(ds); i += 10 {
			ds[i+7] = ds[i].Clone()
		}
		centers := ds[:minInt(9, n)]
		query := ds[n/2]
		wantDist, wantIdx := DistanceToSet(Euclidean, query, ds)
		wantAssign := Assign(Euclidean, ds, centers)
		wantRadius := Radius(Euclidean, ds, centers)
		wantExcl := RadiusExcluding(Euclidean, ds.Clone(), centers, n/10)
		minD := make([]float64, n)
		for i, p := range ds {
			minD[i], _ = DistanceToSet(Euclidean, p, centers)
		}
		wantArg, wantVal := argMaxSeq(minD, 0, n)

		for _, w := range []int{0, 1, 2, 3, 8} {
			e := NewEngine(w)
			if d, i := e.DistanceToSet(EuclideanSpace, query, ds); d != wantDist || i != wantIdx {
				t.Fatalf("n=%d w=%d DistanceToSet = (%v,%d), want (%v,%d)", n, w, d, i, wantDist, wantIdx)
			}
			got := e.Assign(EuclideanSpace, ds, centers)
			for i := range got {
				if got[i] != wantAssign[i] {
					t.Fatalf("n=%d w=%d Assign[%d] = %d, want %d", n, w, i, got[i], wantAssign[i])
				}
			}
			if r := e.Radius(EuclideanSpace, ds, centers); r != wantRadius {
				t.Fatalf("n=%d w=%d Radius = %v, want %v", n, w, r, wantRadius)
			}
			if r := e.RadiusExcluding(EuclideanSpace, ds.Clone(), centers, n/10); r != wantExcl {
				t.Fatalf("n=%d w=%d RadiusExcluding = %v, want %v", n, w, r, wantExcl)
			}
			gd, gi := e.NearestBatch(EuclideanSpace, ds, centers)
			for i := range gd {
				if gd[i] != minD[i] {
					t.Fatalf("n=%d w=%d NearestBatch dist[%d] = %v, want %v", n, w, i, gd[i], minD[i])
				}
				if gi[i] != wantAssign[i] {
					t.Fatalf("n=%d w=%d NearestBatch idx[%d] = %d, want %d", n, w, i, gi[i], wantAssign[i])
				}
			}
			if ai, av := e.ArgMax(minD); ai != wantArg || av != wantVal {
				t.Fatalf("n=%d w=%d ArgMax = (%d,%v), want (%d,%v)", n, w, ai, av, wantArg, wantVal)
			}
		}
	}
}

// TestParallelKernelsEdgeCases checks the documented degenerate behaviours.
func TestParallelKernelsEdgeCases(t *testing.T) {
	e := NewEngine(4)
	ds := randDataset(50, 3, 1)
	if d, i := e.DistanceToSet(EuclideanSpace, ds[0], nil); !math.IsInf(d, 1) || i != -1 {
		t.Fatalf("DistanceToSet on empty set = (%v,%d), want (+Inf,-1)", d, i)
	}
	if r := e.Radius(EuclideanSpace, nil, ds[:3]); r != 0 {
		t.Fatalf("Radius of empty points = %v, want 0", r)
	}
	if r := e.RadiusExcluding(EuclideanSpace, ds, ds[:3], len(ds)); r != 0 {
		t.Fatalf("RadiusExcluding with z >= n = %v, want 0", r)
	}
	if i, v := e.ArgMax(nil); i != -1 || !math.IsInf(v, -1) {
		t.Fatalf("ArgMax of empty slice = (%d,%v), want (-1,-Inf)", i, v)
	}
	if got := e.Assign(EuclideanSpace, nil, ds[:3]); len(got) != 0 {
		t.Fatalf("Assign of empty points = %v, want empty", got)
	}
}

// TestForEachChunkCostScalesChunking: expensive items justify chunks far
// shorter than minChunk, down to a single item, while the plain chunking
// would collapse the same n to one chunk.
func TestForEachChunkCostScalesChunking(t *testing.T) {
	e := NewEngine(8)
	n := 300 // below minChunk*2, so plain chunking is sequential
	if nc := e.NumChunks(n); nc != 1 {
		t.Fatalf("NumChunks(%d) = %d, want 1", n, nc)
	}
	if nc := e.NumChunksCost(n, n); nc != 8 {
		t.Fatalf("NumChunksCost(%d, %d) = %d, want 8", n, n, nc)
	}
	visited := make([]int32, n)
	e.ForEachChunkCost(n, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			visited[i]++
		}
	})
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

// TestEngineWorkers checks the worker-count normalisation.
func TestEngineWorkers(t *testing.T) {
	if w := NewEngine(5).Workers(); w != 5 {
		t.Fatalf("Workers() = %d, want 5", w)
	}
	if w := NewEngine(0).Workers(); w < 1 {
		t.Fatalf("Workers() = %d for auto, want >= 1", w)
	}
	var zero Engine
	if w := zero.Workers(); w < 1 {
		t.Fatalf("zero-value Workers() = %d, want >= 1", w)
	}
}

// TestForEachChunkRunsAllChunks checks that every index is visited exactly
// once, whatever goroutine interleaving occurs.
func TestForEachChunkRunsAllChunks(t *testing.T) {
	e := NewEngine(7)
	n := 10000
	visited := make([]int32, n)
	var mu sync.Mutex
	seenChunks := map[int]bool{}
	e.ForEachChunk(n, func(chunk, lo, hi int) {
		mu.Lock()
		seenChunks[chunk] = true
		mu.Unlock()
		for i := lo; i < hi; i++ {
			visited[i]++ // indices are disjoint across chunks, no race
		}
	})
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	if len(seenChunks) != e.NumChunks(n) {
		t.Fatalf("ran %d chunks, NumChunks reports %d", len(seenChunks), e.NumChunks(n))
	}
}

// TestEngineConcurrentCallers is the pool stress test: many goroutines
// hammer the same Engine value with every kernel concurrently and each
// verifies bit-identity with the sequential path. Run under -race this
// proves the engine adds no shared mutable state across callers.
func TestEngineConcurrentCallers(t *testing.T) {
	ds := randDataset(4000, 4, 99)
	centers := ds[:7]
	wantAssign := Assign(Euclidean, ds, centers)
	wantRadius := Radius(Euclidean, ds, centers)
	e := NewEngine(4)

	const callers = 16
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				if r := e.Radius(EuclideanSpace, ds, centers); r != wantRadius {
					errc <- errMismatch("Radius", c, iter)
					return
				}
				got := e.Assign(EuclideanSpace, ds, centers)
				for i := range got {
					if got[i] != wantAssign[i] {
						errc <- errMismatch("Assign", c, iter)
						return
					}
				}
				d, i := e.DistanceToSet(EuclideanSpace, ds[c], ds)
				if i != c || d != 0 {
					errc <- errMismatch("DistanceToSet", c, iter)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

type stressErr struct {
	kernel      string
	caller, rep int
}

func (e stressErr) Error() string { return e.kernel + " mismatch under concurrency" }

func errMismatch(kernel string, caller, rep int) error {
	return stressErr{kernel: kernel, caller: caller, rep: rep}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
