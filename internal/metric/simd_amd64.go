//go:build amd64

package metric

// AVX fast paths for the Euclidean row kernels. The vector accumulation is
// bit-identical to the pure-Go kernels by construction: one 256-bit
// accumulator register holds exactly the four lanes (s0, s1, s2, s3) of the
// canonical SquaredEuclidean order, VSUBPD/VMULPD/VADDPD are the same IEEE
// operations applied lane-wise, and the final combine is (s0+s1)+(s2+s3).
// The kernels require the dimensionality to be a multiple of four (no
// remainder handling in assembly); other shapes take the pure-Go path.
//
// Memory contract (same as the Go kernels' q[:len(p)] reslice, but enforced
// by the caller instead of a bounds check): every point of the set must have
// at least len(p) coordinates. The engine only invokes kernels on validated
// Datasets, whose dimensionality is uniform.

// haveAVXKernels gates the assembly kernels at runtime: AVX must be present
// and the OS must have enabled YMM state (OSXSAVE + XCR0).
var haveAVXKernels = x86HasAVX()

// x86HasAVX reports AVX availability via CPUID and XGETBV.
func x86HasAVX() bool

// argNearestEucAVX returns the minimum squared Euclidean distance from p to
// the set and the index attaining it (strict comparison, lowest index wins
// ties). len(p) must be a positive multiple of 4 and the set non-empty.
//
//go:noescape
func argNearestEucAVX(p Point, set []Point) (float64, int)

// distancesToEucAVX writes dst[i] = SquaredEuclidean(p, set[i]). len(p) must
// be a positive multiple of 4 and len(dst) >= len(set).
//
//go:noescape
func distancesToEucAVX(p Point, set []Point, dst []float64)
