//go:build !amd64

package metric

// Non-amd64 builds always take the pure-Go kernels, which are bit-identical
// to the assembly fast paths by construction.

const haveAVXKernels = false

func argNearestEucAVX(p Point, set []Point) (float64, int) {
	panic("metric: AVX kernel called on a non-amd64 build")
}

func distancesToEucAVX(p Point, set []Point, dst []float64) {
	panic("metric: AVX kernel called on a non-amd64 build")
}
