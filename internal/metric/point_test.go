package metric

import (
	"math"
	"strings"
	"testing"
)

func TestPointDim(t *testing.T) {
	tests := []struct {
		name string
		p    Point
		want int
	}{
		{"empty", Point{}, 0},
		{"one", Point{1}, 1},
		{"three", Point{1, 2, 3}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dim(); got != tt.want {
				t.Errorf("Dim() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestPointClone(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatalf("clone not equal: %v vs %v", p, q)
	}
	q[0] = 99
	if p[0] == 99 {
		t.Fatal("clone shares storage with original")
	}
}

func TestPointEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want bool
	}{
		{"equal", Point{1, 2}, Point{1, 2}, true},
		{"different value", Point{1, 2}, Point{1, 3}, false},
		{"different dim", Point{1, 2}, Point{1, 2, 3}, false},
		{"both empty", Point{}, Point{}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPointValidate(t *testing.T) {
	if err := (Point{1, 2, 3}).Validate(); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
	if err := (Point{1, math.NaN()}).Validate(); err == nil {
		t.Error("NaN accepted")
	}
	if err := (Point{math.Inf(1)}).Validate(); err == nil {
		t.Error("+Inf accepted")
	}
	if err := (Point{math.Inf(-1)}).Validate(); err == nil {
		t.Error("-Inf accepted")
	}
}

func TestPointString(t *testing.T) {
	s := Point{1, 2.5}.String()
	if !strings.Contains(s, "1") || !strings.Contains(s, "2.5") {
		t.Errorf("String() = %q, want coordinates included", s)
	}
}

func TestPointArithmetic(t *testing.T) {
	a := Point{1, 2}
	b := Point{3, 5}
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equal(Point{4, 7}) {
		t.Errorf("Add = %v, want (4,7)", sum)
	}
	diff, err := b.Sub(a)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(Point{2, 3}) {
		t.Errorf("Sub = %v, want (2,3)", diff)
	}
	if _, err := a.Add(Point{1}); err == nil {
		t.Error("Add with mismatched dims should fail")
	}
	if _, err := a.Sub(Point{1}); err == nil {
		t.Error("Sub with mismatched dims should fail")
	}
	if got := a.Scale(2); !got.Equal(Point{2, 4}) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
	if got := (Point{3, 4}).Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestDatasetValidate(t *testing.T) {
	tests := []struct {
		name    string
		ds      Dataset
		wantErr bool
	}{
		{"ok", Dataset{{1, 2}, {3, 4}}, false},
		{"empty", Dataset{}, true},
		{"mixed dims", Dataset{{1, 2}, {3}}, true},
		{"nan", Dataset{{1, math.NaN()}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.ds.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDatasetCentroid(t *testing.T) {
	ds := Dataset{{0, 0}, {2, 4}}
	c, err := ds.Centroid()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(Point{1, 2}) {
		t.Errorf("Centroid = %v, want (1,2)", c)
	}
	if _, err := (Dataset{}).Centroid(); err == nil {
		t.Error("centroid of empty dataset should fail")
	}
	if _, err := (Dataset{{1}, {1, 2}}).Centroid(); err == nil {
		t.Error("centroid of mixed-dimension dataset should fail")
	}
}

func TestDatasetClone(t *testing.T) {
	ds := Dataset{{1, 2}, {3, 4}}
	cp := ds.Clone()
	cp[0][0] = 42
	if ds[0][0] == 42 {
		t.Fatal("Clone shares point storage")
	}
}

func TestDatasetBoundingBox(t *testing.T) {
	ds := Dataset{{1, 5}, {-2, 7}, {3, 6}}
	lo, hi, err := ds.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	if !lo.Equal(Point{-2, 5}) {
		t.Errorf("lo = %v, want (-2,5)", lo)
	}
	if !hi.Equal(Point{3, 7}) {
		t.Errorf("hi = %v, want (3,7)", hi)
	}
	if _, _, err := (Dataset{}).BoundingBox(); err == nil {
		t.Error("bounding box of empty dataset should fail")
	}
	if _, _, err := (Dataset{{1}, {1, 2}}).BoundingBox(); err == nil {
		t.Error("bounding box of mixed-dimension dataset should fail")
	}
}

func TestDatasetDim(t *testing.T) {
	if got := (Dataset{}).Dim(); got != 0 {
		t.Errorf("empty dataset Dim = %d, want 0", got)
	}
	if got := (Dataset{{1, 2, 3}}).Dim(); got != 3 {
		t.Errorf("Dim = %d, want 3", got)
	}
}
