package metric

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"coresetclustering/internal/selection"
)

func TestEuclidean(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"1d", Point{-1}, Point{2}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Euclidean(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Euclidean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestManhattanChebyshevSquared(t *testing.T) {
	a, b := Point{0, 0}, Point{3, -4}
	if got := Manhattan(a, b); got != 7 {
		t.Errorf("Manhattan = %v, want 7", got)
	}
	if got := Chebyshev(a, b); got != 4 {
		t.Errorf("Chebyshev = %v, want 4", got)
	}
	if got := SquaredEuclidean(a, b); got != 25 {
		t.Errorf("SquaredEuclidean = %v, want 25", got)
	}
}

func TestCosineAndAngular(t *testing.T) {
	a, b := Point{1, 0}, Point{0, 1}
	if got := Cosine(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine orthogonal = %v, want 1", got)
	}
	if got := Cosine(a, a); math.Abs(got) > 1e-12 {
		t.Errorf("Cosine identical = %v, want 0", got)
	}
	if got := Angular(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Angular orthogonal = %v, want 0.5", got)
	}
	// Zero vectors must not produce NaN.
	z := Point{0, 0}
	if got := Cosine(z, z); got != 0 {
		t.Errorf("Cosine(0,0) = %v, want 0", got)
	}
	if got := Cosine(z, a); got != 1 {
		t.Errorf("Cosine(0,a) = %v, want 1", got)
	}
	if got := Angular(z, z); got != 0 {
		t.Errorf("Angular(0,0) = %v, want 0", got)
	}
	if got := Angular(z, a); got != 0.5 {
		t.Errorf("Angular(0,a) = %v, want 0.5", got)
	}
}

func TestMinkowski(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if got := Minkowski(2)(a, b); math.Abs(got-5) > 1e-9 {
		t.Errorf("Minkowski(2) = %v, want 5", got)
	}
	if got := Minkowski(1)(a, b); math.Abs(got-7) > 1e-9 {
		t.Errorf("Minkowski(1) = %v, want 7", got)
	}
}

// randomPoint returns a random point of dimension d with coordinates in
// [-scale, scale].
func randomPoint(rng *rand.Rand, d int, scale float64) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = (rng.Float64()*2 - 1) * scale
	}
	return p
}

// metricAxioms checks the metric axioms for the given distance on random
// triples of points of the given dimension.
func metricAxioms(t *testing.T, name string, dist Distance, d int) {
	t.Helper()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomPoint(r, d, 100)
		b := randomPoint(r, d, 100)
		c := randomPoint(r, d, 100)
		dab, dba := dist(a, b), dist(b, a)
		if dab < 0 {
			t.Logf("%s: negative distance %v", name, dab)
			return false
		}
		if math.Abs(dab-dba) > 1e-9*(1+dab) {
			t.Logf("%s: asymmetric %v vs %v", name, dab, dba)
			return false
		}
		if dist(a, a) > 1e-9 {
			t.Logf("%s: d(a,a) != 0", name)
			return false
		}
		// Triangle inequality with a tolerance for floating-point error.
		if dab > dist(a, c)+dist(c, b)+1e-9*(1+dab) {
			t.Logf("%s: triangle violated", name)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("%s does not satisfy metric axioms: %v", name, err)
	}
}

func TestMetricAxiomsProperty(t *testing.T) {
	metricAxioms(t, "Euclidean", Euclidean, 5)
	metricAxioms(t, "Manhattan", Manhattan, 5)
	metricAxioms(t, "Chebyshev", Chebyshev, 5)
	metricAxioms(t, "Minkowski(3)", Minkowski(3), 5)
}

func TestCounter(t *testing.T) {
	c := NewCounter(Euclidean)
	a, b := Point{0, 0}, Point{3, 4}
	if got := c.Distance(a, b); got != 5 {
		t.Errorf("counted distance = %v, want 5", got)
	}
	c.Distance(a, b)
	if got := c.Calls(); got != 2 {
		t.Errorf("Calls = %d, want 2", got)
	}
	c.Reset()
	if got := c.Calls(); got != 0 {
		t.Errorf("Calls after Reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter(Euclidean)
	a, b := Point{0, 0}, Point{1, 1}
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Distance(a, b)
			}
		}()
	}
	wg.Wait()
	if got := c.Calls(); got != workers*per {
		t.Errorf("Calls = %d, want %d", got, workers*per)
	}
}

func TestDistanceToSet(t *testing.T) {
	set := Dataset{{0, 0}, {10, 0}, {5, 5}}
	d, idx := DistanceToSet(Euclidean, Point{9, 1}, set)
	if idx != 1 {
		t.Errorf("closest index = %d, want 1", idx)
	}
	if math.Abs(d-math.Sqrt(2)) > 1e-12 {
		t.Errorf("distance = %v, want sqrt(2)", d)
	}
	d, idx = DistanceToSet(Euclidean, Point{0, 0}, Dataset{})
	if !math.IsInf(d, 1) || idx != -1 {
		t.Errorf("empty set: got (%v,%d), want (+Inf,-1)", d, idx)
	}
}

func TestRadius(t *testing.T) {
	points := Dataset{{0, 0}, {1, 0}, {4, 0}}
	centers := Dataset{{0, 0}}
	if got := Radius(Euclidean, points, centers); got != 4 {
		t.Errorf("Radius = %v, want 4", got)
	}
	if got := Radius(Euclidean, Dataset{}, centers); got != 0 {
		t.Errorf("Radius of empty set = %v, want 0", got)
	}
}

func TestRadiusExcluding(t *testing.T) {
	points := Dataset{{0, 0}, {1, 0}, {2, 0}, {100, 0}}
	centers := Dataset{{0, 0}}
	tests := []struct {
		name string
		z    int
		want float64
	}{
		{"no outliers", 0, 100},
		{"one outlier", 1, 2},
		{"two outliers", 2, 1},
		{"all outliers", 4, 0},
		{"more than n", 10, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := RadiusExcluding(Euclidean, points, centers, tt.z); got != tt.want {
				t.Errorf("RadiusExcluding(z=%d) = %v, want %v", tt.z, got, tt.want)
			}
		})
	}
}

func TestRadiusExcludingMatchesSortedDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(50)
		points := make(Dataset, n)
		for i := range points {
			points[i] = randomPoint(rng, 3, 10)
		}
		centers := Dataset{randomPoint(rng, 3, 10), randomPoint(rng, 3, 10)}
		z := rng.Intn(n)
		got := RadiusExcluding(Euclidean, points, centers, z)
		// Reference implementation: sort all distances, drop z largest.
		dists := make([]float64, n)
		for i, p := range points {
			dists[i], _ = DistanceToSet(Euclidean, p, centers)
		}
		sort.Float64s(dists)
		want := dists[n-z-1]
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: RadiusExcluding = %v, want %v", trial, got, want)
		}
	}
}

func TestAssign(t *testing.T) {
	points := Dataset{{0, 0}, {9, 9}, {1, 1}}
	centers := Dataset{{0, 0}, {10, 10}}
	got := Assign(Euclidean, points, centers)
	want := []int{0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Assign[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPairwiseDistancesAndDiameter(t *testing.T) {
	points := Dataset{{0, 0}, {3, 4}, {0, 1}}
	d := PairwiseDistances(Euclidean, points)
	if len(d) != 3 {
		t.Fatalf("len(PairwiseDistances) = %d, want 3", len(d))
	}
	if got := Diameter(Euclidean, points); got != 5 {
		t.Errorf("Diameter = %v, want 5", got)
	}
	if got := PairwiseDistances(Euclidean, Dataset{{1}}); got != nil {
		t.Errorf("PairwiseDistances singleton = %v, want nil", got)
	}
	if got := Diameter(Euclidean, Dataset{{1}}); got != 0 {
		t.Errorf("Diameter singleton = %v, want 0", got)
	}
}

func TestMinPairwiseDistance(t *testing.T) {
	points := Dataset{{0, 0}, {3, 4}, {0, 1}}
	if got := MinPairwiseDistance(Euclidean, points); got != 1 {
		t.Errorf("MinPairwiseDistance = %v, want 1", got)
	}
	if got := MinPairwiseDistance(Euclidean, Dataset{{0, 0}}); !math.IsInf(got, 1) {
		t.Errorf("MinPairwiseDistance singleton = %v, want +Inf", got)
	}
}

func TestRankSelection(t *testing.T) {
	// The engine's outlier-aware radius delegates rank selection to
	// internal/selection; this pins the exactness of that path on random
	// inputs.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		k := rng.Intn(n)
		cp := append([]float64(nil), vals...)
		got, err := selection.SelectInPlace(cp, k)
		if err != nil {
			t.Fatal(err)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		if got != sorted[k] {
			t.Fatalf("trial %d: SelectInPlace(%d) = %v, want %v", trial, k, got, sorted[k])
		}
	}
}

func TestEstimateDoublingDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Collinear points should have a small doubling dimension estimate even in R^5.
	line := make(Dataset, 200)
	for i := range line {
		x := float64(i)
		line[i] = Point{x, 2 * x, -x, 0.5 * x, 0}
	}
	dLine := EstimateDoublingDimension(Euclidean, line, 6, 4, rng)
	// A 5-dimensional cube sample should have a larger estimate than the line.
	cube := make(Dataset, 200)
	for i := range cube {
		cube[i] = randomPoint(rng, 5, 1)
	}
	dCube := EstimateDoublingDimension(Euclidean, cube, 6, 4, rng)
	if dLine <= 0 {
		t.Errorf("line doubling dimension estimate = %v, want > 0", dLine)
	}
	if dCube <= dLine {
		t.Errorf("cube estimate (%v) should exceed line estimate (%v)", dCube, dLine)
	}
	if got := EstimateDoublingDimension(Euclidean, Dataset{{1, 2}}, 4, 4, rng); got != 0 {
		t.Errorf("singleton estimate = %v, want 0", got)
	}
	// Defaulted parameters and nil RNG should not panic and be deterministic.
	a := EstimateDoublingDimension(Euclidean, cube[:50], 0, 0, nil)
	b := EstimateDoublingDimension(Euclidean, cube[:50], 0, 0, nil)
	if a != b {
		t.Errorf("nil-RNG estimate not deterministic: %v vs %v", a, b)
	}
}

func TestCoresetSizeForDimension(t *testing.T) {
	if got := CoresetSizeForDimension(10, 5, 1, 0, 0); got != 16 {
		t.Errorf("D=0 size = %d, want 16 (k+z+1)", got)
	}
	got := CoresetSizeForDimension(10, 5, 1, 1, 0)
	if got != 240 {
		t.Errorf("D=1 eps=1 size = %d, want 240", got)
	}
	if got := CoresetSizeForDimension(10, 5, 1, 3, 100); got != 100 {
		t.Errorf("clamped size = %d, want 100", got)
	}
	if got := CoresetSizeForDimension(10, 5, 0, 1, 0); got <= 0 {
		t.Errorf("eps=0 should default, got %d", got)
	}
}
