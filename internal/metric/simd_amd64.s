//go:build amd64

#include "textflag.h"

// func x86HasAVX() bool
//
// CPUID.(EAX=1):ECX must report OSXSAVE (bit 27) and AVX (bit 28), and
// XGETBV(0) must report that the OS saves both XMM (bit 1) and YMM (bit 2)
// state.
TEXT ·x86HasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, BX
	ANDL $0x18000000, BX      // OSXSAVE | AVX
	CMPL BX, $0x18000000
	JNE  novx
	XORL CX, CX
	XGETBV
	ANDL $6, AX               // XMM | YMM state enabled
	CMPL AX, $6
	JNE  novx
	MOVB $1, ret+0(FP)
	RET
novx:
	MOVB $0, ret+0(FP)
	RET

// func argNearestEucAVX(p Point, set []Point) (float64, int)
//
// For each q in set, accumulates the squared distance in one YMM register
// whose four lanes are exactly the (s0, s1, s2, s3) of the canonical
// SquaredEuclidean order, combines as (s0+s1)+(s2+s3), and keeps the strict
// minimum with the lowest index. Requires len(p) % 4 == 0, len(p) > 0,
// len(set) > 0; every set element must have at least len(p) coordinates.
//
// Register use:
//	DI  p base          CX  len(p)
//	SI  current set header (advances by 24 per element)
//	DX  len(set)        R8  current index i
//	R9  q base          R10 coordinate index j
//	R11 best index      X5  best value
//	Y0  accumulator     Y1/Y2 scratch
TEXT ·argNearestEucAVX(SB), NOSPLIT, $0-64
	MOVQ p_base+0(FP), DI
	MOVQ p_len+8(FP), CX
	MOVQ set_base+24(FP), SI
	MOVQ set_len+32(FP), DX

	// best = +Inf, bestIdx = -1
	MOVQ  $0x7FF0000000000000, AX
	VMOVQ AX, X5
	MOVQ  $-1, R11
	XORQ  R8, R8

rowloop:
	CMPQ R8, DX
	JGE  rowdone
	MOVQ (SI), R9             // q base pointer from the slice header

	VXORPD Y0, Y0, Y0
	XORQ   R10, R10

dimloop:
	VMOVUPD (DI)(R10*8), Y1
	VMOVUPD (R9)(R10*8), Y2
	VSUBPD  Y2, Y1, Y1
	VMULPD  Y1, Y1, Y1
	VADDPD  Y1, Y0, Y0
	ADDQ    $4, R10
	CMPQ    R10, CX
	JLT     dimloop

	// s = (s0 + s1) + (s2 + s3)
	VEXTRACTF128 $1, Y0, X1   // X1 = (s2, s3)
	VPERMILPD    $1, X0, X2   // X2 = (s1, s0)
	VADDSD       X2, X0, X0   // X0 = s0 + s1
	VPERMILPD    $1, X1, X3   // X3 = (s3, s2)
	VADDSD       X3, X1, X1   // X1 = s2 + s3
	VADDSD       X1, X0, X0   // X0 = (s0+s1) + (s2+s3)

	// if s < best { best = s; bestIdx = i }  (NaN-safe: unordered skips)
	VUCOMISD X0, X5           // flags: best ? s
	JLS      next             // not (best > s, ordered) -> keep current
	VMOVAPD  X0, X5
	MOVQ     R8, R11

next:
	ADDQ $24, SI
	INCQ R8
	JMP  rowloop

rowdone:
	VMOVSD X5, ret+48(FP)
	MOVQ   R11, ret1+56(FP)
	VZEROUPPER
	RET

// func distancesToEucAVX(p Point, set []Point, dst []float64)
//
// dst[i] = SquaredEuclidean(p, set[i]) with the same canonical lane
// semantics as argNearestEucAVX. Requires len(p) % 4 == 0, len(p) > 0, and
// len(dst) >= len(set).
TEXT ·distancesToEucAVX(SB), NOSPLIT, $0-72
	MOVQ p_base+0(FP), DI
	MOVQ p_len+8(FP), CX
	MOVQ set_base+24(FP), SI
	MOVQ set_len+32(FP), DX
	MOVQ dst_base+48(FP), BX

	XORQ R8, R8

drowloop:
	CMPQ R8, DX
	JGE  drowdone
	MOVQ (SI), R9

	VXORPD Y0, Y0, Y0
	XORQ   R10, R10

ddimloop:
	VMOVUPD (DI)(R10*8), Y1
	VMOVUPD (R9)(R10*8), Y2
	VSUBPD  Y2, Y1, Y1
	VMULPD  Y1, Y1, Y1
	VADDPD  Y1, Y0, Y0
	ADDQ    $4, R10
	CMPQ    R10, CX
	JLT     ddimloop

	VEXTRACTF128 $1, Y0, X1
	VPERMILPD    $1, X0, X2
	VADDSD       X2, X0, X0
	VPERMILPD    $1, X1, X3
	VADDSD       X3, X1, X1
	VADDSD       X1, X0, X0

	VMOVSD X0, (BX)(R8*8)

	ADDQ $24, SI
	INCQ R8
	JMP  drowloop

drowdone:
	VZEROUPPER
	RET
