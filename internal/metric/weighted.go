package metric

// WeightedPoint is a point together with a positive integer weight. Weighted
// coresets attach to each selected point the number of original points whose
// proxy it is; the weighted OutliersCluster algorithm then treats each coreset
// point as standing in for that many input points.
type WeightedPoint struct {
	P Point
	W int64
}

// WeightedSet is a collection of weighted points.
type WeightedSet []WeightedPoint

// Points returns the underlying (unweighted) points of the set.
func (ws WeightedSet) Points() Dataset {
	out := make(Dataset, len(ws))
	for i, wp := range ws {
		out[i] = wp.P
	}
	return out
}

// TotalWeight returns the sum of weights of the set.
func (ws WeightedSet) TotalWeight() int64 {
	var t int64
	for _, wp := range ws {
		t += wp.W
	}
	return t
}

// Clone returns a deep copy of the weighted set.
func (ws WeightedSet) Clone() WeightedSet {
	out := make(WeightedSet, len(ws))
	for i, wp := range ws {
		out[i] = WeightedPoint{P: wp.P.Clone(), W: wp.W}
	}
	return out
}

// Unweighted wraps a plain dataset into a weighted set with unit weights,
// which is how the unweighted CharikarEtAl baseline is expressed in terms of
// the weighted OutliersCluster routine.
func Unweighted(points Dataset) WeightedSet {
	out := make(WeightedSet, len(points))
	for i, p := range points {
		out[i] = WeightedPoint{P: p, W: 1}
	}
	return out
}
