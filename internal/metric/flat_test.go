package metric

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func testFlat(t *testing.T, n, dim int, seed int64) *Flat {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f, err := NewFlat(dim, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := f.Append(randPoint(rng, dim)); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestFlatBasics(t *testing.T) {
	f := testFlat(t, 10, 3, 1)
	if f.Len() != 10 || f.Dim() != 3 {
		t.Fatalf("Len/Dim = %d/%d, want 10/3", f.Len(), f.Dim())
	}
	if err := f.Append(Point{1, 2}); !errors.Is(err, ErrFlatDim) {
		t.Fatalf("dim-mismatch append error = %v, want ErrFlatDim", err)
	}
	ds := f.Dataset()
	if len(ds) != 10 {
		t.Fatalf("Dataset len = %d", len(ds))
	}
	// Views share storage with the buffer: mutating a point shows through.
	ds[4][2] = 123.5
	if f.At(4)[2] != 123.5 {
		t.Fatal("Dataset points are not views into the flat buffer")
	}
	if &f.Coords()[4*3+2] != &ds[4][2] {
		t.Fatal("coordinate backing storage is not shared")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFlatFromDatasetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := make(Dataset, 31)
	for i := range ds {
		ds[i] = randPoint(rng, 7)
	}
	f, err := FlatFromDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Dataset()
	for i := range ds {
		if !ds[i].Equal(got[i]) {
			t.Fatalf("point %d differs after flat round trip", i)
		}
	}
	if _, err := FlatFromDataset(nil); err == nil {
		t.Error("FlatFromDataset(nil) should fail")
	}
}

func TestFlatCodecRoundTrip(t *testing.T) {
	f := testFlat(t, 100, 16, 3)
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	first := append([]byte(nil), buf.Bytes()...)
	got, err := ReadFlat(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != f.Len() || got.Dim() != f.Dim() {
		t.Fatalf("decoded shape %dx%d, want %dx%d", got.Len(), got.Dim(), f.Len(), f.Dim())
	}
	for i := range f.Coords() {
		if got.Coords()[i] != f.Coords()[i] {
			t.Fatalf("coordinate %d differs after codec round trip", i)
		}
	}
	// Encode(decode(b)) must be byte-identical.
	var buf2 bytes.Buffer
	if _, err := got.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("re-encoded flat file is not byte-identical")
	}
}

func TestFlatCodecRejectsMalformedInput(t *testing.T) {
	f := testFlat(t, 5, 2, 4)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrFlatCorrupt},
		{"bad magic", append([]byte("NOPE"), good[4:]...), ErrFlatBadMagic},
		{"bad version", mutate(good, 5, 9), ErrFlatUnsupportedVersion},
		{"reserved set", mutate(good, 7, 1), ErrFlatCorrupt},
		{"zero dim", func() []byte {
			b := append([]byte(nil), good...)
			b[8], b[9], b[10], b[11] = 0, 0, 0, 0
			return b
		}(), ErrFlatCorrupt},
		{"truncated payload", good[:len(good)-3], ErrFlatCorrupt},
		{"trailing garbage", append(append([]byte(nil), good...), 0), ErrFlatCorrupt},
		{"nan coordinate", func() []byte {
			b := append([]byte(nil), good...)
			nan := math.Float64bits(math.NaN())
			for i := 0; i < 8; i++ {
				b[20+i] = byte(nan >> (56 - 8*i))
			}
			return b
		}(), ErrFlatCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadFlat(bytes.NewReader(tc.data)); !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
		})
	}
}

func mutate(b []byte, pos int, val byte) []byte {
	out := append([]byte(nil), b...)
	out[pos] = val
	return out
}

func TestFlatFileRoundTrip(t *testing.T) {
	f := testFlat(t, 40, 4, 6)
	path := t.TempDir() + "/points.kcfl"
	if err := SaveFlatFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFlatFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Coords() {
		if got.Coords()[i] != f.Coords()[i] {
			t.Fatalf("coordinate %d differs after file round trip", i)
		}
	}
}

// TestReadFlatHugeCountHeader: crafted headers declaring absurd point counts
// must fail with a typed error quickly, never preallocate gigabytes — both
// beyond the hard size cap and inside it (where the bounded preallocation
// plus the immediate payload EOF is what protects the process).
func TestReadFlatHugeCountHeader(t *testing.T) {
	mk := func(count uint64) []byte {
		var hdr [20]byte
		copy(hdr[0:4], FlatMagic)
		hdr[5] = 1  // version
		hdr[11] = 8 // dim = 8
		for i := 0; i < 8; i++ {
			hdr[12+i] = byte(count >> (56 - 8*i))
		}
		return hdr[:]
	}
	// 2^46 points: beyond the size cap.
	if _, err := ReadFlat(bytes.NewReader(mk(1 << 46))); !errors.Is(err, ErrFlatCorrupt) {
		t.Fatalf("over-cap header error = %v, want ErrFlatCorrupt", err)
	}
	// 2^24 points of dim 8 (1 GiB of coordinates): inside the cap, but the
	// empty payload must fail after only the bounded preallocation.
	if _, err := ReadFlat(bytes.NewReader(mk(1 << 24))); !errors.Is(err, ErrFlatCorrupt) {
		t.Fatalf("in-cap truncated header error = %v, want ErrFlatCorrupt", err)
	}
}

// TestFlatFrameRoundTrip: AppendFrame must be byte-identical to WriteTo, and
// DecodeFlatFrame must round-trip it and hand back the untouched remainder.
func TestFlatFrameRoundTrip(t *testing.T) {
	f := testFlat(t, 100, 16, 3)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	frame := f.AppendFrame(nil)
	if !bytes.Equal(frame, buf.Bytes()) {
		t.Fatal("AppendFrame differs from WriteTo")
	}
	if len(frame) != f.FrameLen() {
		t.Fatalf("FrameLen = %d, frame is %d bytes", f.FrameLen(), len(frame))
	}
	trailer := []byte("trailer bytes")
	got, rest, err := DecodeFlatFrame(append(frame, trailer...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, trailer) {
		t.Fatalf("rest = %q, want %q", rest, trailer)
	}
	if got.Len() != f.Len() || got.Dim() != f.Dim() {
		t.Fatalf("decoded shape %dx%d, want %dx%d", got.Len(), got.Dim(), f.Len(), f.Dim())
	}
	for i := range f.Coords() {
		if got.Coords()[i] != f.Coords()[i] {
			t.Fatalf("coordinate %d differs after frame round trip", i)
		}
	}
}

// TestDecodeFlatFrameRejectsMalformedInput mirrors the ReadFlat rejection
// table (minus trailing-data, which DecodeFlatFrame hands to the caller).
func TestDecodeFlatFrameRejectsMalformedInput(t *testing.T) {
	good := testFlat(t, 5, 2, 4).AppendFrame(nil)
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrFlatCorrupt},
		{"short header", good[:19], ErrFlatCorrupt},
		{"bad magic", append([]byte("NOPE"), good[4:]...), ErrFlatBadMagic},
		{"bad version", mutate(good, 5, 9), ErrFlatUnsupportedVersion},
		{"reserved set", mutate(good, 7, 1), ErrFlatCorrupt},
		{"zero dim", func() []byte {
			b := append([]byte(nil), good...)
			b[8], b[9], b[10], b[11] = 0, 0, 0, 0
			return b
		}(), ErrFlatCorrupt},
		{"truncated payload", good[:len(good)-3], ErrFlatCorrupt},
		{"count beyond payload", mutate(good, 19, 200), ErrFlatCorrupt},
		{"nan coordinate", func() []byte {
			b := append([]byte(nil), good...)
			nan := math.Float64bits(math.NaN())
			for i := 0; i < 8; i++ {
				b[20+i] = byte(nan >> (56 - 8*i))
			}
			return b
		}(), ErrFlatCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := DecodeFlatFrame(tc.data); !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecodeFlatFrameHugeCountHeader: a crafted count must be rejected before
// any allocation — over the hard cap and merely over the payload length.
func TestDecodeFlatFrameHugeCountHeader(t *testing.T) {
	mk := func(count uint64) []byte {
		var hdr [20]byte
		copy(hdr[0:4], FlatMagic)
		hdr[5] = 1  // version
		hdr[11] = 8 // dim = 8
		for i := 0; i < 8; i++ {
			hdr[12+i] = byte(count >> (56 - 8*i))
		}
		return hdr[:]
	}
	for _, count := range []uint64{1 << 62, 1 << 46, 1 << 24, 1} {
		if _, _, err := DecodeFlatFrame(mk(count)); !errors.Is(err, ErrFlatCorrupt) {
			t.Fatalf("count %d: error = %v, want ErrFlatCorrupt", count, err)
		}
	}
}

// TestDecodeFlatFrameAllocs pins the zero-per-point allocation property the
// binary ingest path is built on: one coordinate-buffer allocation plus the
// Flat header, regardless of point count.
func TestDecodeFlatFrameAllocs(t *testing.T) {
	frame := testFlat(t, 4096, 8, 9).AppendFrame(nil)
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := DecodeFlatFrame(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("DecodeFlatFrame of 4096 points did %v allocations, want <= 2", allocs)
	}
}
