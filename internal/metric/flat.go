package metric

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Flat is a dataset in contiguous flat storage: one []float64 backing buffer
// holding the coordinates of all points back to back, plus the
// dimensionality. Points materialised from a Flat are slice headers into the
// shared buffer — zero per-point coordinate allocations, and blocked
// iteration walks memory strictly forward, which is what the batched Space
// kernels are designed around.
//
// A Flat is not safe for concurrent mutation; once built it can be shared
// freely (every algorithm in the module treats points as immutable).
type Flat struct {
	dim int
	buf []float64
}

// ErrFlatDim is returned when a point of the wrong dimensionality is appended
// to a Flat or when a Flat is created with a non-positive dimension.
var ErrFlatDim = errors.New("metric: flat dataset dimension mismatch")

// NewFlat creates an empty flat dataset of the given dimensionality,
// preallocating room for capacity points.
func NewFlat(dim, capacity int) (*Flat, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("%w: dim %d", ErrFlatDim, dim)
	}
	if capacity < 0 {
		capacity = 0
	}
	return &Flat{dim: dim, buf: make([]float64, 0, dim*capacity)}, nil
}

// FlatFromDataset copies a conventional dataset into flat storage. The
// dataset must be non-empty and dimensionally consistent.
func FlatFromDataset(ds Dataset) (*Flat, error) {
	if len(ds) == 0 {
		return nil, errors.New("metric: flat dataset from empty dataset")
	}
	f, err := NewFlat(ds.Dim(), len(ds))
	if err != nil {
		return nil, err
	}
	for i, p := range ds {
		if err := f.Append(p); err != nil {
			return nil, fmt.Errorf("metric: point %d: %w", i, err)
		}
	}
	return f, nil
}

// Append copies one point into the flat buffer.
func (f *Flat) Append(p Point) error {
	if len(p) != f.dim {
		return fmt.Errorf("%w: point has dim %d, flat has %d", ErrFlatDim, len(p), f.dim)
	}
	f.buf = append(f.buf, p...)
	return nil
}

// Reset empties the dataset in place, keeping dimension and storage so the
// buffer can be refilled without reallocating.
func (f *Flat) Reset() { f.buf = f.buf[:0] }

// Len returns the number of points stored.
func (f *Flat) Len() int { return len(f.buf) / f.dim }

// Dim returns the dimensionality.
func (f *Flat) Dim() int { return f.dim }

// At returns the i-th point as a zero-copy view into the backing buffer.
// Mutating the returned point mutates the flat dataset.
func (f *Flat) At(i int) Point { return f.buf[i*f.dim : (i+1)*f.dim : (i+1)*f.dim] }

// Coords exposes the backing buffer (length Len()*Dim()); points are stored
// back to back in index order.
func (f *Flat) Coords() []float64 { return f.buf }

// Dataset materialises the flat storage as a conventional Dataset whose
// points are slice headers into the shared backing buffer: one allocation for
// the header slice, zero per-coordinate copies. The result is what the
// Dataset-typed algorithm entry points consume; because the coordinates stay
// contiguous, blocked kernels over it walk memory strictly forward.
func (f *Flat) Dataset() Dataset {
	n := f.Len()
	out := make(Dataset, n)
	for i := 0; i < n; i++ {
		out[i] = f.At(i)
	}
	return out
}

// Validate checks every coordinate for NaN/Inf.
func (f *Flat) Validate() error {
	for i, c := range f.buf {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: point %d coordinate %d = %v",
				ErrInvalidCoordinate, i/f.dim, i%f.dim, c)
		}
	}
	return nil
}

// Binary flat-buffer format (all integers and float bit patterns
// big-endian, matching the sketch codec's conventions):
//
//	offset  size  field
//	0       4     magic "KCFL"
//	4       2     version (currently 1)
//	6       2     reserved (must be 0)
//	8       4     dim (>= 1)
//	12      8     count (number of points, >= 0)
//	20      ...   count*dim IEEE-754 float64 bit patterns
//
// The payload length must match the header exactly. Decoding validates every
// coordinate for NaN/Inf, so a loaded Flat always satisfies Validate.

// FlatMagic is the 4-byte magic prefix of the binary flat-buffer format;
// loaders sniff it to distinguish flat files from text formats.
const FlatMagic = "KCFL"

const (
	flatVersion    = 1
	flatHeaderSize = 20
)

// Typed flat-codec errors.
var (
	// ErrFlatBadMagic means the data does not start with FlatMagic.
	ErrFlatBadMagic = errors.New("metric: bad magic (not a flat dataset)")
	// ErrFlatUnsupportedVersion means the file was written by a newer codec.
	ErrFlatUnsupportedVersion = errors.New("metric: unsupported flat codec version")
	// ErrFlatCorrupt means a structurally invalid header or payload:
	// non-positive dim, truncated or oversized payload, or NaN/Inf
	// coordinates.
	ErrFlatCorrupt = errors.New("metric: corrupt flat data")
)

// WriteTo serialises the flat dataset in the binary flat-buffer format.
func (f *Flat) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var hdr [flatHeaderSize]byte
	copy(hdr[0:4], FlatMagic)
	binary.BigEndian.PutUint16(hdr[4:6], flatVersion)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(f.dim))
	binary.BigEndian.PutUint64(hdr[12:20], uint64(f.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var scratch [8]byte
	for _, c := range f.buf {
		binary.BigEndian.PutUint64(scratch[:], math.Float64bits(c))
		if _, err := bw.Write(scratch[:]); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(flatHeaderSize + 8*len(f.buf)), nil
}

// ReadFlat decodes a flat dataset from the binary flat-buffer format. Every
// malformed input maps to one of the typed errors above; ReadFlat never
// panics.
func ReadFlat(r io.Reader) (*Flat, error) {
	br := bufio.NewReader(r)
	var hdr [flatHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: %d-byte header", ErrFlatCorrupt, flatHeaderSize)
		}
		return nil, err
	}
	if string(hdr[0:4]) != FlatMagic {
		return nil, ErrFlatBadMagic
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != flatVersion {
		return nil, fmt.Errorf("%w: version %d", ErrFlatUnsupportedVersion, v)
	}
	if rsv := binary.BigEndian.Uint16(hdr[6:8]); rsv != 0 {
		return nil, fmt.Errorf("%w: non-zero reserved field %d", ErrFlatCorrupt, rsv)
	}
	dim := binary.BigEndian.Uint32(hdr[8:12])
	count := binary.BigEndian.Uint64(hdr[12:20])
	if dim == 0 || dim > 1<<20 {
		return nil, fmt.Errorf("%w: dim %d", ErrFlatCorrupt, dim)
	}
	const maxCoords = 1 << 33 // 64 GiB of float64s; far beyond any real input
	total := count * uint64(dim)
	if count > maxCoords || total > maxCoords {
		return nil, fmt.Errorf("%w: %d points of dim %d exceed the size cap", ErrFlatCorrupt, count, dim)
	}
	// Preallocate only a bounded amount up front: the header is untrusted,
	// and a crafted count must not translate into a giant allocation before
	// a single payload byte has been read. append grows the buffer as real
	// data arrives.
	pre := total
	if const1M := uint64(1 << 20); pre > const1M {
		pre = const1M
	}
	f := &Flat{dim: int(dim), buf: make([]float64, 0, pre)}
	var scratch [8]byte
	for i := uint64(0); i < total; i++ {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, fmt.Errorf("%w: payload ends at coordinate %d of %d", ErrFlatCorrupt, i, total)
			}
			return nil, err
		}
		c := math.Float64frombits(binary.BigEndian.Uint64(scratch[:]))
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("%w: coordinate %d is %v", ErrFlatCorrupt, i, c)
		}
		f.buf = append(f.buf, c)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after %d coordinates", ErrFlatCorrupt, total)
	}
	return f, nil
}

// AppendFrame appends the flat dataset's binary flat-buffer encoding (the
// exact bytes WriteTo produces) to dst and returns the extended slice. It is
// the in-memory encoder behind the daemon's binary ingest wire format.
func (f *Flat) AppendFrame(dst []byte) []byte {
	var hdr [flatHeaderSize]byte
	copy(hdr[0:4], FlatMagic)
	binary.BigEndian.PutUint16(hdr[4:6], flatVersion)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(f.dim))
	binary.BigEndian.PutUint64(hdr[12:20], uint64(f.Len()))
	dst = append(dst, hdr[:]...)
	var scratch [8]byte
	for _, c := range f.buf {
		binary.BigEndian.PutUint64(scratch[:], math.Float64bits(c))
		dst = append(dst, scratch[:]...)
	}
	return dst
}

// FrameLen returns the encoded size of the dataset's binary frame.
func (f *Flat) FrameLen() int { return flatHeaderSize + 8*len(f.buf) }

// DecodeFlatFrame decodes one binary flat-buffer frame from the front of
// data and returns the remaining bytes. Unlike ReadFlat it works on an
// in-memory buffer, so the payload length is validated against the header
// BEFORE the coordinate buffer is allocated: the decode performs exactly one
// allocation (the coordinate slice, sized from the now-trusted count) no
// matter how many points the frame holds — zero per-point allocations.
// Every malformed input maps to a typed flat-codec error; it never panics.
// Trailing bytes are returned, not rejected — the caller decides whether a
// trailer (e.g. the wire protocol's timestamp block) is allowed.
func DecodeFlatFrame(data []byte) (*Flat, []byte, error) {
	if len(data) < flatHeaderSize {
		return nil, nil, fmt.Errorf("%w: %d bytes, need the %d-byte header", ErrFlatCorrupt, len(data), flatHeaderSize)
	}
	if string(data[0:4]) != FlatMagic {
		return nil, nil, ErrFlatBadMagic
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != flatVersion {
		return nil, nil, fmt.Errorf("%w: version %d", ErrFlatUnsupportedVersion, v)
	}
	if rsv := binary.BigEndian.Uint16(data[6:8]); rsv != 0 {
		return nil, nil, fmt.Errorf("%w: non-zero reserved field %d", ErrFlatCorrupt, rsv)
	}
	dim := binary.BigEndian.Uint32(data[8:12])
	count := binary.BigEndian.Uint64(data[12:20])
	if dim == 0 || dim > 1<<20 {
		return nil, nil, fmt.Errorf("%w: dim %d", ErrFlatCorrupt, dim)
	}
	// Cap count before multiplying so total cannot overflow (count ≤ 2^33,
	// dim ≤ 2^20 keeps the product well under 2^64).
	const maxCoords = 1 << 33
	total := count * uint64(dim)
	if count > maxCoords || total > maxCoords {
		return nil, nil, fmt.Errorf("%w: %d points of dim %d exceed the size cap", ErrFlatCorrupt, count, dim)
	}
	if total > uint64(len(data))/8 {
		// The payload cannot possibly fit in data; rejected before any
		// allocation, so a crafted count never costs memory.
		return nil, nil, fmt.Errorf("%w: %d points of dim %d exceed the %d payload bytes",
			ErrFlatCorrupt, count, dim, len(data)-flatHeaderSize)
	}
	payload := data[flatHeaderSize:]
	if uint64(len(payload)) < total*8 {
		return nil, nil, fmt.Errorf("%w: payload ends at byte %d of %d", ErrFlatCorrupt, len(payload), total*8)
	}
	buf := make([]float64, total)
	for i := range buf {
		c := math.Float64frombits(binary.BigEndian.Uint64(payload[8*i:]))
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, nil, fmt.Errorf("%w: coordinate %d is %v", ErrFlatCorrupt, i, c)
		}
		buf[i] = c
	}
	return &Flat{dim: int(dim), buf: buf}, payload[total*8:], nil
}

// SaveFlatFile writes the flat dataset to a file, creating or truncating it.
func SaveFlatFile(path string, f *Flat) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metric: %w", err)
	}
	if _, err := f.WriteTo(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// LoadFlatFile reads a flat dataset from a file. The whole file is read and
// decoded in memory (DecodeFlatFrame: one coordinate-buffer allocation, no
// per-point work), with the same strictness as ReadFlat — trailing bytes
// after the frame are rejected.
func LoadFlatFile(path string) (*Flat, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("metric: %w", err)
	}
	f, rest, err := DecodeFlatFrame(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the frame", ErrFlatCorrupt, len(rest))
	}
	return f, nil
}
