package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample accepted")
	}
	s, err := Summarize([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 5 || s.StdDev != 0 || s.CI95 != 0 || s.N != 1 || s.Min != 5 || s.Max != 5 {
		t.Errorf("singleton summary = %+v", s)
	}
	s, err = Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	// Sample standard deviation of this classic example is ~2.138.
	if math.Abs(s.StdDev-2.13809) > 1e-4 {
		t.Errorf("stddev = %v, want ~2.138", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.CI95 <= 0 {
		t.Error("CI95 not computed")
	}
	if !strings.Contains(s.String(), "±") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Errorf("Throughput = %v, want 1000", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Errorf("Throughput with zero duration = %v, want 0", got)
	}
	if got := Throughput(500, 500*time.Millisecond); got != 1000 {
		t.Errorf("Throughput = %v, want 1000", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3); got != 2 {
		t.Errorf("Ratio = %v, want 2", got)
	}
	if got := Ratio(0, 0); got != 1 {
		t.Errorf("Ratio(0,0) = %v, want 1", got)
	}
	if got := Ratio(3, 0); !math.IsInf(got, 1) {
		t.Errorf("Ratio(3,0) = %v, want +Inf", got)
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("Figure X", "dataset", "mu", "ratio", "time")
	tab.AddRow("higgs", 2, 1.0523, 1500*time.Millisecond)
	tab.AddRow("power", 4, Summary{Mean: 1.01, CI95: 0.02}, "n/a")
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tab.NumRows())
	}
	out := tab.String()
	for _, want := range []string{"Figure X", "dataset", "higgs", "1.052", "1.5s", "±"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	if err := tab.Render(nil); err == nil {
		t.Error("nil writer accepted")
	}
	// Rows shorter than the header are padded.
	tab.AddRow("wiki")
	if tab.NumRows() != 3 {
		t.Error("short row not added")
	}
	if !strings.Contains(tab.String(), "wiki") {
		t.Error("short row not rendered")
	}
}
