// Package stats provides the small statistical and reporting toolkit used by
// the experiment harness: summary statistics with 95% confidence intervals
// (the paper reports all figures as averages over at least 10 runs with 95%
// CIs), throughput computation, and plain-text table rendering.
package stats

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Summary holds the summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	// CI95 is the half-width of the 95% confidence interval of the mean
	// under a normal approximation (1.96 * stderr).
	CI95 float64
	Min  float64
	Max  float64
}

// Summarize computes summary statistics over the sample. It returns an error
// for an empty sample.
func Summarize(values []float64) (Summary, error) {
	if len(values) == 0 {
		return Summary{}, errors.New("stats: empty sample")
	}
	s := Summary{N: len(values), Min: values[0], Max: values[0]}
	var sum float64
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(values))
	if len(values) > 1 {
		var ss float64
		for _, v := range values {
			d := v - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(values)-1))
		s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(len(values)))
	}
	return s, nil
}

// String renders the summary as "mean ± ci95".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.CI95)
}

// Throughput returns the processing rate in points per second. A non-positive
// duration yields 0.
func Throughput(points int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(points) / elapsed.Seconds()
}

// Ratio returns a/b, or +Inf when b is zero and a is positive, or 1 when both
// are zero. It is the empirical approximation-ratio helper: radius divided by
// the best radius ever found for the configuration.
func Ratio(a, b float64) float64 {
	switch {
	case b != 0:
		return a / b
	case a == 0:
		return 1
	default:
		return math.Inf(1)
	}
}

// Table is a simple fixed-column text table used by the experiment drivers to
// print figure reproductions in the same row/series layout as the paper.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v and padded/truncated to
// the number of columns.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = formatCell(cells[i])
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

func formatCell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.4g", x)
	case float32:
		return fmt.Sprintf("%.4g", x)
	case time.Duration:
		return x.Round(time.Millisecond).String()
	case Summary:
		return x.String()
	default:
		return fmt.Sprint(v)
	}
}

// Render writes the table to w as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if w == nil {
		return errors.New("stats: nil writer")
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string (for tests and logs).
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
