// Package coreset implements the composable coreset constructions at the
// heart of the paper. A coreset of a point set is a small subset selected with
// the (incremental) GMM algorithm together with a proxy function mapping every
// original point to a nearby coreset point; the weight of a coreset point is
// the number of original points it is proxy for.
//
// Composability is what makes the MapReduce algorithms work: coresets built
// independently on the parts of any partition of the input can be united, and
// the union still embodies a near-optimal solution of the whole input
// (Lemmas 2-6 of the paper).
package coreset

import (
	"errors"
	"fmt"
	"math"

	"coresetclustering/internal/gmm"
	"coresetclustering/internal/metric"
)

// ErrInvalidSpec is returned when a Spec is inconsistent.
var ErrInvalidSpec = errors.New("coreset: invalid spec")

// Spec describes how a coreset is to be built from one partition of the input.
//
// Exactly one of Eps and Size must be positive:
//
//   - Eps > 0 selects the paper's precision-driven stopping rule: run GMM
//     incrementally and stop at the first iteration tau >= RefCenters such
//     that the residual radius is at most (Eps/2) times the radius attained
//     after RefCenters centers.
//   - Size > 0 selects the fixed-size rule used by the paper's experiments:
//     run GMM for exactly Size iterations (tau = mu*k or mu*(k+z)).
type Spec struct {
	// Eps is the precision parameter of the eps-driven stopping rule.
	Eps float64
	// Size is the exact coreset size of the fixed-size rule.
	Size int
	// RefCenters is the reference number of centers of the stopping rule: k
	// for the problem without outliers, k+z (or k+z' in the randomized
	// variant) for the problem with outliers. It must be positive when Eps is
	// used and is optional (but recorded) when Size is used.
	RefCenters int
	// MaxSize caps the coreset size when the eps-driven rule is used
	// (0 = no cap). It guards against pathological inputs where the radius
	// plateaus.
	MaxSize int
	// SeedIndex is the index of the first GMM center within the partition.
	SeedIndex int
	// Workers is the parallelism degree of the distance engine used by the
	// underlying GMM run: <= 0 selects one worker per CPU, 1 forces the
	// sequential path. The coreset is bit-identical for any value.
	Workers int
	// Space, when non-nil, overrides the Distance passed to Build as the
	// metric space of the underlying GMM run (batched kernels +
	// comparison-domain surrogate). When nil, the Distance is upgraded to
	// its native space automatically.
	Space metric.Space
}

func (s Spec) validate() error {
	if s.Eps < 0 {
		return fmt.Errorf("%w: negative eps %v", ErrInvalidSpec, s.Eps)
	}
	if s.Size < 0 {
		return fmt.Errorf("%w: negative size %d", ErrInvalidSpec, s.Size)
	}
	if (s.Eps > 0) == (s.Size > 0) {
		return fmt.Errorf("%w: exactly one of Eps and Size must be positive (eps=%v size=%d)", ErrInvalidSpec, s.Eps, s.Size)
	}
	if s.Eps > 0 && s.RefCenters <= 0 {
		return fmt.Errorf("%w: eps-driven rule requires RefCenters > 0", ErrInvalidSpec)
	}
	if s.SeedIndex < 0 {
		return fmt.Errorf("%w: negative seed index %d", ErrInvalidSpec, s.SeedIndex)
	}
	return nil
}

// Coreset is the result of building a coreset on one partition of the input.
type Coreset struct {
	// Points are the selected coreset points (a subset of the partition).
	Points metric.Dataset
	// Weights[i] is the number of partition points whose proxy is Points[i].
	// The sum of weights equals the partition size.
	Weights []int64
	// Assignment maps every partition point to the index of its proxy within
	// Points.
	Assignment []int
	// ProxyRadius is the maximum distance between a partition point and its
	// proxy, i.e. r_{T_i}(S_i) in the paper's notation. Lemmas 2 and 4 bound
	// it by eps * r*(S).
	ProxyRadius float64
	// RadiusAtRef is the radius attained after RefCenters GMM iterations; the
	// stopping rule compares ProxyRadius against (Eps/2) * RadiusAtRef.
	RadiusAtRef float64
	// SourceSize is the number of points of the partition the coreset was
	// built from.
	SourceSize int
}

// Weighted returns the coreset as a weighted point set, the form consumed by
// the weighted OutliersCluster algorithm.
func (c *Coreset) Weighted() metric.WeightedSet {
	out := make(metric.WeightedSet, len(c.Points))
	for i, p := range c.Points {
		out[i] = metric.WeightedPoint{P: p, W: c.Weights[i]}
	}
	return out
}

// Size returns the number of coreset points.
func (c *Coreset) Size() int { return len(c.Points) }

// Build constructs a coreset of the given partition according to the spec.
func Build(dist metric.Distance, partition metric.Dataset, spec Spec) (*Coreset, error) {
	if len(partition) == 0 {
		return nil, errors.New("coreset: empty partition")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	seed := spec.SeedIndex
	if seed >= len(partition) {
		seed = 0
	}

	runner := gmm.Runner{Dist: dist, Space: spec.Space, Workers: spec.Workers}
	var res *gmm.Result
	var err error
	if spec.Eps > 0 {
		res, err = runner.RunIncremental(partition, spec.RefCenters, spec.Eps/2, spec.MaxSize, seed)
	} else {
		res, err = runner.RunToSize(partition, spec.Size, spec.RefCenters, seed)
	}
	if err != nil {
		return nil, fmt.Errorf("coreset: gmm failed: %w", err)
	}

	weights := make([]int64, len(res.Centers))
	for _, proxy := range res.Assignment {
		weights[proxy]++
	}
	return &Coreset{
		Points:      res.Centers,
		Weights:     weights,
		Assignment:  res.Assignment,
		ProxyRadius: res.Radius,
		RadiusAtRef: res.RadiusAtK,
		SourceSize:  len(partition),
	}, nil
}

// Union merges coresets built on the parts of a partition into a single
// weighted set (the set T of the paper's second round). The aggregate weight
// of the union equals the total number of input points.
func Union(coresets ...*Coreset) metric.WeightedSet {
	var total int
	for _, c := range coresets {
		if c != nil {
			total += len(c.Points)
		}
	}
	out := make(metric.WeightedSet, 0, total)
	for _, c := range coresets {
		if c == nil {
			continue
		}
		out = append(out, c.Weighted()...)
	}
	return out
}

// UnionPoints merges coresets into a plain (unweighted) dataset; this is the
// form used by the second round of the MapReduce algorithm for k-center
// without outliers, where weights play no role.
func UnionPoints(coresets ...*Coreset) metric.Dataset {
	var total int
	for _, c := range coresets {
		if c != nil {
			total += len(c.Points)
		}
	}
	out := make(metric.Dataset, 0, total)
	for _, c := range coresets {
		if c == nil {
			continue
		}
		out = append(out, c.Points...)
	}
	return out
}

// MaxProxyRadius returns the largest proxy radius across the coresets; by
// Lemma 2 (resp. Lemma 4) it is at most eps * r*_k(S) (resp. eps *
// r*_{k,z}(S)).
func MaxProxyRadius(coresets ...*Coreset) float64 {
	var m float64
	for _, c := range coresets {
		if c != nil && c.ProxyRadius > m {
			m = c.ProxyRadius
		}
	}
	return m
}

// TheoreticalSizeBound returns the upper bound of Lemma 3 / Lemma 6 on the
// size of a single partition's coreset: refCenters * (4/eps)^D, where
// refCenters is k for the problem without outliers and k+z with outliers.
// It is exposed for documentation, tests, and sizing heuristics; the
// algorithms themselves never need it.
func TheoreticalSizeBound(refCenters int, eps, doublingDim float64) float64 {
	if eps <= 0 {
		eps = 1
	}
	return float64(refCenters) * math.Pow(4/eps, doublingDim)
}
