package coreset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"coresetclustering/internal/gmm"
	"coresetclustering/internal/metric"
)

func randomDataset(rng *rand.Rand, n, dim int, scale float64) metric.Dataset {
	ds := make(metric.Dataset, n)
	for i := range ds {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = (rng.Float64()*2 - 1) * scale
		}
		ds[i] = p
	}
	return ds
}

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    Spec
		wantErr bool
	}{
		{"eps rule", Spec{Eps: 0.5, RefCenters: 3}, false},
		{"size rule", Spec{Size: 10}, false},
		{"both zero", Spec{}, true},
		{"both set", Spec{Eps: 0.5, Size: 10, RefCenters: 3}, true},
		{"negative eps", Spec{Eps: -1, RefCenters: 3}, true},
		{"negative size", Spec{Size: -1}, true},
		{"eps without ref", Spec{Eps: 0.5}, true},
		{"negative seed", Spec{Size: 5, SeedIndex: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(metric.Euclidean, nil, Spec{Size: 5}); err == nil {
		t.Error("empty partition accepted")
	}
	if _, err := Build(metric.Euclidean, metric.Dataset{{1}}, Spec{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestBuildFixedSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := randomDataset(rng, 200, 3, 10)
	c, err := Build(metric.Euclidean, ds, Spec{Size: 25, RefCenters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 25 {
		t.Fatalf("coreset size = %d, want 25", c.Size())
	}
	if c.SourceSize != 200 {
		t.Errorf("SourceSize = %d, want 200", c.SourceSize)
	}
	// Weights sum to the partition size.
	var total int64
	for _, w := range c.Weights {
		total += w
		if w < 0 {
			t.Errorf("negative weight %d", w)
		}
	}
	if total != 200 {
		t.Errorf("total weight = %d, want 200", total)
	}
	// Proxy radius matches the assignment.
	var maxd float64
	for i, p := range ds {
		d := metric.Euclidean(p, c.Points[c.Assignment[i]])
		if d > maxd {
			maxd = d
		}
	}
	if math.Abs(maxd-c.ProxyRadius) > 1e-9 {
		t.Errorf("ProxyRadius = %v, recomputed %v", c.ProxyRadius, maxd)
	}
	// RadiusAtRef (after 5 centers) must be at least the final proxy radius.
	if c.RadiusAtRef < c.ProxyRadius-1e-12 {
		t.Errorf("RadiusAtRef %v < ProxyRadius %v", c.RadiusAtRef, c.ProxyRadius)
	}
}

func TestBuildEpsRule(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := randomDataset(rng, 300, 2, 10)
	eps := 0.5
	k := 4
	c, err := Build(metric.Euclidean, ds, Spec{Eps: eps, RefCenters: k})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() < k {
		t.Fatalf("coreset smaller than k: %d", c.Size())
	}
	// Stopping rule: proxy radius <= (eps/2) * radius after k centers.
	if c.ProxyRadius > (eps/2)*c.RadiusAtRef+1e-12 {
		t.Errorf("stopping rule violated: %v > %v", c.ProxyRadius, (eps/2)*c.RadiusAtRef)
	}
}

func TestBuildEpsRuleMaxSizeCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := randomDataset(rng, 500, 3, 10)
	c, err := Build(metric.Euclidean, ds, Spec{Eps: 0.01, RefCenters: 3, MaxSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() > 40 {
		t.Errorf("MaxSize not respected: %d", c.Size())
	}
}

func TestBuildSeedOutOfRangeFallsBack(t *testing.T) {
	ds := metric.Dataset{{0}, {1}, {2}}
	c, err := Build(metric.Euclidean, ds, Spec{Size: 2, SeedIndex: 50})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 {
		t.Errorf("size = %d, want 2", c.Size())
	}
}

func TestLemma2ProxyDistanceProperty(t *testing.T) {
	// Lemma 2: with the eps stopping rule and RefCenters = k, every point is
	// within eps * r*_k(S) of its proxy, even when the coreset is built on a
	// subset of S (composability). Verified against brute force on small
	// instances.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(10)
		k := 1 + rng.Intn(3)
		eps := 0.25 + rng.Float64()*0.75
		ds := randomDataset(rng, n, 2, 50)
		// Split into two halves; build a coreset on each half.
		half := n / 2
		parts := []metric.Dataset{ds[:half], ds[half:]}
		opt, err := gmm.BruteForceOptimalRadius(metric.Euclidean, ds, k)
		if err != nil {
			return false
		}
		for _, part := range parts {
			if len(part) == 0 {
				continue
			}
			c, err := Build(metric.Euclidean, part, Spec{Eps: eps, RefCenters: k})
			if err != nil {
				return false
			}
			for i, p := range part {
				d := metric.Euclidean(p, c.Points[c.Assignment[i]])
				if d > eps*opt+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("Lemma 2 violated: %v", err)
	}
}

func TestUnionAndUnionPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDataset(rng, 50, 2, 10)
	b := randomDataset(rng, 70, 2, 10)
	ca, err := Build(metric.Euclidean, a, Spec{Size: 5})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Build(metric.Euclidean, b, Spec{Size: 7})
	if err != nil {
		t.Fatal(err)
	}
	u := Union(ca, cb)
	if len(u) != 12 {
		t.Fatalf("union size = %d, want 12", len(u))
	}
	if got := u.TotalWeight(); got != 120 {
		t.Errorf("union total weight = %d, want 120", got)
	}
	up := UnionPoints(ca, cb)
	if len(up) != 12 {
		t.Errorf("union points size = %d, want 12", len(up))
	}
	// nil coresets are skipped.
	if got := len(Union(nil, ca, nil)); got != 5 {
		t.Errorf("union with nils = %d, want 5", got)
	}
	if got := len(UnionPoints(nil, cb)); got != 7 {
		t.Errorf("union points with nils = %d, want 7", got)
	}
}

func TestMaxProxyRadius(t *testing.T) {
	a := &Coreset{ProxyRadius: 2}
	b := &Coreset{ProxyRadius: 5}
	if got := MaxProxyRadius(a, b, nil); got != 5 {
		t.Errorf("MaxProxyRadius = %v, want 5", got)
	}
	if got := MaxProxyRadius(); got != 0 {
		t.Errorf("MaxProxyRadius() = %v, want 0", got)
	}
}

func TestWeightedConversion(t *testing.T) {
	c := &Coreset{
		Points:  metric.Dataset{{1}, {2}},
		Weights: []int64{3, 4},
	}
	w := c.Weighted()
	if len(w) != 2 || w[0].W != 3 || w[1].W != 4 {
		t.Errorf("Weighted() = %v", w)
	}
	if w.TotalWeight() != 7 {
		t.Errorf("total weight = %d, want 7", w.TotalWeight())
	}
}

func TestTheoreticalSizeBound(t *testing.T) {
	if got := TheoreticalSizeBound(10, 1, 0); got != 10 {
		t.Errorf("D=0 bound = %v, want 10", got)
	}
	if got := TheoreticalSizeBound(10, 1, 2); got != 160 {
		t.Errorf("D=2 bound = %v, want 160", got)
	}
	if got := TheoreticalSizeBound(10, 0, 1); got != 40 {
		t.Errorf("eps=0 default bound = %v, want 40", got)
	}
	// Smaller eps means a larger bound.
	if TheoreticalSizeBound(5, 0.1, 2) <= TheoreticalSizeBound(5, 1, 2) {
		t.Error("bound should grow as eps shrinks")
	}
}

func TestBuildSizeLargerThanPartition(t *testing.T) {
	ds := metric.Dataset{{0}, {1}, {2}}
	c, err := Build(metric.Euclidean, ds, Spec{Size: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 {
		t.Errorf("size = %d, want 3 (capped at |partition|)", c.Size())
	}
	if c.ProxyRadius != 0 {
		t.Errorf("proxy radius = %v, want 0 when coreset = partition", c.ProxyRadius)
	}
}
