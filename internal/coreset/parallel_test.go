package coreset

import (
	"math/rand"
	"testing"

	"coresetclustering/internal/metric"
)

func parallelTestDataset(n, dim int, seed int64) metric.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := make(metric.Dataset, n)
	for i := range ds {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		ds[i] = p
	}
	return ds
}

// TestBuildDeterminismAcrossWorkers is the coreset determinism golden: both
// stopping rules must yield bit-identical coresets (points, weights, proxy
// assignment, radii) at Workers 1 and 8, on sizes straddling the engine's
// sequential cutoff.
func TestBuildDeterminismAcrossWorkers(t *testing.T) {
	for _, n := range []int{500, 9000} {
		ds := parallelTestDataset(n, 3, int64(n))
		for _, spec := range []Spec{
			{Size: 60, RefCenters: 15},
			{Eps: 0.5, RefCenters: 15, MaxSize: 400},
		} {
			seqSpec, parSpec := spec, spec
			seqSpec.Workers = 1
			parSpec.Workers = 8
			want, err := Build(metric.Euclidean, ds, seqSpec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Build(metric.Euclidean, ds, parSpec)
			if err != nil {
				t.Fatal(err)
			}
			if got.ProxyRadius != want.ProxyRadius || got.RadiusAtRef != want.RadiusAtRef {
				t.Fatalf("n=%d spec=%+v: radii (%v,%v), want (%v,%v)",
					n, spec, got.ProxyRadius, got.RadiusAtRef, want.ProxyRadius, want.RadiusAtRef)
			}
			if len(got.Points) != len(want.Points) {
				t.Fatalf("n=%d spec=%+v: %d coreset points, want %d", n, spec, len(got.Points), len(want.Points))
			}
			for i := range want.Points {
				if !got.Points[i].Equal(want.Points[i]) {
					t.Fatalf("n=%d spec=%+v: coreset point %d differs", n, spec, i)
				}
				if got.Weights[i] != want.Weights[i] {
					t.Fatalf("n=%d spec=%+v: weight[%d] = %d, want %d", n, spec, i, got.Weights[i], want.Weights[i])
				}
			}
			for i := range want.Assignment {
				if got.Assignment[i] != want.Assignment[i] {
					t.Fatalf("n=%d spec=%+v: assignment[%d] = %d, want %d", n, spec, i, got.Assignment[i], want.Assignment[i])
				}
			}
		}
	}
}
