package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "help"); again != c {
		t.Fatal("re-registering the same counter must return the same instance")
	}

	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestVecChildrenAreMemoised(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "help", "route", "status")
	a := v.With("/x", "200")
	b := v.With("/x", "200")
	if a != b {
		t.Fatal("same label values must resolve to the same child")
	}
	v.With("/x", "500").Inc()
	if a.Value() != 0 {
		t.Fatal("distinct label values must not share a child")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := 0.5 + 1 + 1.5 + 3 + 100; math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	// Upper bounds are inclusive: 1 lands in the le=1 bucket.
	if got, want := s.Counts, []uint64{2, 1, 1, 1}; len(got) != len(want) {
		t.Fatalf("bucket layout %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
			}
		}
	}

	// Quantile interpolation: with counts [2,1,1,1] over bounds [1,2,4], the
	// median rank 2.5 lands halfway through the second bucket (1..2] -> 1.5.
	if p50 := s.P50(); math.Abs(p50-1.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 1.5", p50)
	}
	// Rank 4.95 lands in the +Inf bucket, clamped to the top finite bound.
	if p99 := s.P99(); p99 != 4 {
		t.Fatalf("p99 = %v, want 4 (clamped)", p99)
	}

	empty := r.Histogram("lat2", "help", []float64{1}).Snapshot()
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
}

func TestHistogramQuantileUniform(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 1000.0)
	}
	s := h.Snapshot()
	if p50 := s.P50(); math.Abs(p50-0.5) > 0.05 {
		t.Fatalf("uniform p50 = %v, want ~0.5", p50)
	}
	if p99 := s.P99(); math.Abs(p99-0.99) > 0.05 {
		t.Fatalf("uniform p99 = %v, want ~0.99", p99)
	}
}

// TestHistogramConcurrent drives one histogram (and counters) from many
// goroutines; under -race this is the recording-is-safe proof, and the final
// counts must be exact.
func TestHistogramConcurrent(t *testing.T) {
	const workers = 8
	const perWorker = 5000
	r := NewRegistry()
	h := r.Histogram("lat", "help", DefDurationBuckets)
	c := r.Counter("ops_total", "help")
	vec := r.CounterVec("by_route", "help", "route")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			route := string(rune('a' + w%2))
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%100) / 1000.0)
				c.Inc()
				vec.With(route).Inc()
			}
		}(w)
	}
	// A concurrent scraper must never block recording (or trip -race).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	total := uint64(0)
	for _, n := range s.Counts {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
	wantSum := float64(workers) * func() float64 {
		sum := 0.0
		for i := 0; i < perWorker; i++ {
			sum += float64(i%100) / 1000.0
		}
		return sum
	}()
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	if a, b := vec.With("a").Value(), vec.With("b").Value(); a+b != workers*perWorker {
		t.Fatalf("labelled counters %d+%d, want %d", a, b, workers*perWorker)
	}
}

// TestPrometheusGolden pins the exact exposition format: sorted families,
// sorted children, cumulative buckets, +Inf, _sum/_count, escaping.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "sorts last").Add(3)
	g := r.Gauge("a_gauge", "first by name")
	g.Set(2.5)
	v := r.CounterVec("reqs_total", "with labels", "route", "status")
	v.With("/streams/{name}/points", "200").Add(2)
	v.With("/merge", "400").Inc()
	esc := r.GaugeVec("esc", `help with \ backslash`, "v")
	esc.With("a\"b\\c\nd").Set(1)
	// Powers of two keep the sum exactly representable, so the rendered
	// _sum is deterministic.
	h := r.Histogram("lat_seconds", "latency", []float64{0.25, 1})
	h.Observe(0.125)
	h.Observe(0.125)
	h.Observe(0.5)
	h.Observe(4)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_gauge first by name
# TYPE a_gauge gauge
a_gauge 2.5
# HELP esc help with \\ backslash
# TYPE esc gauge
esc{v="a\"b\\c\nd"} 1
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.25"} 2
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 4.75
lat_seconds_count 4
# HELP reqs_total with labels
# TYPE reqs_total counter
reqs_total{route="/merge",status="400"} 1
reqs_total{route="/streams/{name}/points",status="200"} 2
# HELP zz_last_total sorts last
# TYPE zz_last_total counter
zz_last_total 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestObserveDuration(t *testing.T) {
	h := newHistogram([]float64{0.5, 2})
	h.ObserveDuration(1 * time.Second)
	s := h.Snapshot()
	if s.Counts[1] != 1 {
		t.Fatalf("1s must land in the (0.5, 2] bucket: %v", s.Counts)
	}
}

func TestEmptyVecNotRendered(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("never_used_total", "no children", "l")
	r.Counter("used_total", "zero but unlabelled")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "never_used_total") {
		t.Fatal("childless vec must not render")
	}
	if !strings.Contains(out, "used_total 0") {
		t.Fatal("unlabelled metrics must render at 0 so required series exist from boot")
	}
}
