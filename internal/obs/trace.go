package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the span tracer half of the observability core: zero
// dependencies, like the metrics half, and built for the same hot paths.
// A Tracer records one Trace per request (or background operation), each a
// flat list of Spans the debug surface reconstructs into a tree. Recording
// is cheap enough to run on every request — one small allocation per span
// under a per-trace mutex no other request contends on — because whether a
// trace is KEPT is decided only when its root span ends: head-sampled
// traces (a deterministic 1-in-N atomic counter, never wall-clock or
// math/rand, so the decision is reproducible under test and uniform under
// load) and forced traces (slow requests, 5xx responses, background
// operations) land in a bounded ring buffer; everything else is garbage the
// moment the handler returns.
//
// Trace identity is W3C trace-context compatible: 16-byte trace IDs, 8-byte
// span IDs, and an inbound `traceparent` header (version 00) is honored —
// the request joins the caller's trace, inherits its sampled flag, and the
// caller's span ID is kept as the remote parent — so a router fan-out
// stitches into one logical trace across daemons. A malformed or
// foreign-version header falls back to a fresh local trace.
//
// Timings are monotonic: a trace anchors one time.Time at its start and
// every span offset/duration is derived from Since against that anchor, so
// a wall-clock step never produces a negative stage.

// TraceID is a W3C-compatible 16-byte trace identifier.
type TraceID [16]byte

// String returns the canonical 32-hex-digit form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// SpanID is a W3C-compatible 8-byte span identifier.
type SpanID [8]byte

// String returns the canonical 16-hex-digit form.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// maxSpansPerTrace bounds one trace's span list so a pathological handler
// (or a runaway loop instrumented by accident) cannot grow memory without
// bound; spans beyond the cap are counted, not recorded.
const maxSpansPerTrace = 256

// Tracer records traces and retains the kept ones in a fixed ring. A nil
// *Tracer is valid and records nothing — every method on Tracer, Trace and
// Span is nil-safe, so instrumentation sites need no guards.
type Tracer struct {
	sampleEvery int64
	seq         atomic.Int64
	now         func() time.Time // test seam; nil = real time

	mu    sync.Mutex
	ring  []*Trace
	next  int // ring write index
	count int // traces in the ring (== len(ring) once it wrapped)
}

// NewTracer returns a tracer head-sampling one in sampleEvery requests
// (values < 1 mean every request) and retaining up to buffer completed
// traces. A buffer < 1 disables tracing entirely: the returned Tracer is
// nil, which every recording site tolerates.
func NewTracer(sampleEvery, buffer int) *Tracer {
	if buffer < 1 {
		return nil
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Tracer{sampleEvery: int64(sampleEvery), ring: make([]*Trace, buffer)}
}

// clock returns the tracer's current time (the test seam, or real time).
func (t *Tracer) clock() time.Time {
	if t.now != nil {
		return t.now()
	}
	return time.Now()
}

// since measures monotonically from start per the tracer's clock.
func (t *Tracer) since(start time.Time) time.Duration {
	if t.now != nil {
		return t.now().Sub(start)
	}
	return time.Since(start)
}

// sampleNext consumes one slot of the deterministic head sampler: exactly
// one in every sampleEvery calls returns true, starting with the first.
func (t *Tracer) sampleNext() bool {
	return (t.seq.Add(1)-1)%t.sampleEvery == 0
}

// Trace is one request's (or background operation's) recording: identity,
// the sampling/forcing decision, and the flat span list. All mutation runs
// under the trace's own mutex, so concurrent child spans of one request are
// safe and distinct requests share nothing.
type Trace struct {
	tracer *Tracer
	id     TraceID
	remote SpanID // inbound traceparent's span ID; zero for local roots
	start  time.Time

	mu      sync.Mutex
	name    string
	sampled bool
	forced  string // first force reason; non-empty keeps the trace
	spans   []*Span
	nextID  uint64
	dropped int
	dur     time.Duration
	done    bool
}

// Span is one timed stage within a trace. Offsets and durations are
// relative to the trace's monotonic anchor.
type Span struct {
	trace  *Trace
	id     SpanID
	parent SpanID // zero for the root
	name   string
	start  time.Duration
	dur    time.Duration
	ended  bool
	attrs  []string // flat key, value pairs
}

// newSpanLocked appends a span to the trace; the caller holds tr.mu. Past
// the per-trace cap it records nothing and counts the drop.
func (tr *Trace) newSpanLocked(parent SpanID, name string) *Span {
	if len(tr.spans) >= maxSpansPerTrace {
		tr.dropped++
		return nil
	}
	tr.nextID++
	var id SpanID
	binary.BigEndian.PutUint64(id[:], tr.nextID)
	sp := &Span{trace: tr, id: id, parent: parent, name: name, start: tr.tracer.since(tr.start)}
	tr.spans = append(tr.spans, sp)
	return sp
}

// newTraceID returns a fresh random trace ID (never zero). If the system
// randomness source fails, a process-unique counter keeps IDs distinct.
func newTraceID() TraceID {
	var id TraceID
	if _, err := rand.Read(id[:]); err != nil || id.IsZero() {
		id[0] = 1
		binary.BigEndian.PutUint64(id[8:], reqIDCounter.Add(1))
	}
	return id
}

// ParseTraceparent parses a W3C traceparent header
// (00-<32 hex trace id>-<16 hex span id>-<2 hex flags>). ok is false — and
// the caller starts a fresh trace — for anything malformed, for a foreign
// version, or for the invalid all-zero IDs; sampled is the header's
// sampled flag.
func ParseTraceparent(s string) (id TraceID, parent SpanID, sampled, ok bool) {
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	if s[0] != '0' || s[1] != '0' { // only version 00 is understood
		return TraceID{}, SpanID{}, false, false
	}
	if !isLowerHex(s[3:35]) || !isLowerHex(s[36:52]) || !isLowerHex(s[53:55]) {
		return TraceID{}, SpanID{}, false, false
	}
	hex.Decode(id[:], []byte(s[3:35]))
	hex.Decode(parent[:], []byte(s[36:52]))
	var flags [1]byte
	hex.Decode(flags[:], []byte(s[53:55]))
	if id.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	return id, parent, flags[0]&0x01 != 0, true
}

// isLowerHex reports whether s is entirely lowercase hex digits (the W3C
// header grammar; uppercase is malformed by spec).
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// StartRoot begins a request trace and its root span. A valid inbound
// traceparent is honored: the trace joins the caller's ID, inherits the
// caller's sampled flag (without consuming a local sampling slot, so
// fan-outs do not skew the local rate), and keeps the caller's span ID as
// the remote parent. Otherwise the trace is fresh and the deterministic
// 1-in-N head sampler decides. The returned context carries the root span
// for StartSpan/RecordSpan downstream.
func (t *Tracer) StartRoot(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	tr := &Trace{tracer: t, name: name, start: t.clock()}
	if id, parent, sampled, ok := ParseTraceparent(traceparent); ok {
		tr.id, tr.remote, tr.sampled = id, parent, sampled
	} else {
		tr.id = newTraceID()
		tr.sampled = t.sampleNext()
	}
	root := tr.newSpanLocked(SpanID{}, name) // exclusive access: the trace is not shared yet
	return context.WithValue(ctx, spanCtxKey{}, root), root
}

// StartBackground begins a trace for a daemon-internal operation
// (compaction, boot recovery). Background traces are always kept — they
// are rare and each one is an answer to "what was the daemon doing".
func (t *Tracer) StartBackground(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	tr := &Trace{tracer: t, name: name, start: t.clock(), forced: "background"}
	tr.id = newTraceID()
	root := tr.newSpanLocked(SpanID{}, name)
	return context.WithValue(ctx, spanCtxKey{}, root), root
}

// RecordBackground records a completed single-span background trace ending
// now, for high-frequency periodic work (the WAL flusher) where a span
// hierarchy adds nothing. Unlike StartBackground it is head-sampled at the
// tracer's 1-in-N rate — a 100ms ticker would otherwise evict every
// request trace from the ring within seconds.
func (t *Tracer) RecordBackground(name string, d time.Duration, attrs ...string) {
	if t == nil || !t.sampleNext() {
		return
	}
	if d < 0 {
		d = 0
	}
	tr := &Trace{tracer: t, name: name, start: t.clock().Add(-d), sampled: true}
	tr.id = newTraceID()
	root := tr.newSpanLocked(SpanID{}, name)
	root.attrs = append(root.attrs, attrs...)
	root.dur, root.ended = d, true
	tr.dur, tr.done = d, true
	t.keep(tr)
}

// spanCtxKey carries the current *Span through a context.
type spanCtxKey struct{}

// SpanFromContext returns the span the context carries, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpan begins a child span of the context's current span and returns a
// context carrying the child. Without a traced parent in ctx (tracing
// disabled, or an un-instrumented entry point) it returns ctx unchanged and
// a nil span, on which every method is a no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	tr := parent.trace
	tr.mu.Lock()
	sp := tr.newSpanLocked(parent.id, name)
	tr.mu.Unlock()
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// RecordSpan records an already-completed child span of the context's
// current span: it ends now and started d ago. This is the shape
// instrumentation seams want when the measured interval is only known after
// the fact (a group-commit waiter's enqueue-to-ack time).
func RecordSpan(ctx context.Context, name string, d time.Duration, attrs ...string) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	tr := parent.trace
	tr.mu.Lock()
	sp := tr.newSpanLocked(parent.id, name)
	if sp != nil {
		if sp.start -= d; sp.start < 0 {
			sp.start = 0
		}
		sp.dur, sp.ended = d, true
		sp.attrs = append(sp.attrs, attrs...)
	}
	tr.mu.Unlock()
}

// SetName renames the span (the middleware names the root after routing,
// when the mux pattern is known). Renaming the root renames the trace.
func (sp *Span) SetName(name string) {
	if sp == nil {
		return
	}
	tr := sp.trace
	tr.mu.Lock()
	sp.name = name
	if sp.parent.IsZero() {
		tr.name = name
	}
	tr.mu.Unlock()
}

// SetAttr attaches a key/value annotation to the span.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.trace.mu.Lock()
	sp.attrs = append(sp.attrs, key, value)
	sp.trace.mu.Unlock()
}

// Force marks the span's trace kept regardless of the sampling decision,
// recording the first reason ("slow", "error", ...).
func (sp *Span) Force(reason string) {
	if sp == nil {
		return
	}
	tr := sp.trace
	tr.mu.Lock()
	if tr.forced == "" {
		tr.forced = reason
	}
	tr.mu.Unlock()
}

// End completes the span. Ending the root span completes the trace and, if
// it was sampled or forced, retains it in the tracer's ring; an unkept
// trace is garbage from here on. End is idempotent.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	tr := sp.trace
	tr.mu.Lock()
	if !sp.ended {
		sp.ended = true
		sp.dur = tr.tracer.since(tr.start) - sp.start
		if sp.dur < 0 {
			sp.dur = 0
		}
	}
	finished := false
	if sp.parent.IsZero() && !tr.done {
		tr.done = true
		tr.dur = sp.dur
		finished = tr.sampled || tr.forced != ""
	}
	tr.mu.Unlock()
	if finished {
		tr.tracer.keep(tr)
	}
}

// TraceID returns the hex trace ID of the span's trace ("" on nil).
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.trace.id.String()
}

// Traceparent renders the span as an outbound W3C traceparent header
// (00-<trace id>-<span id>-<flags>), the emitter half of ParseTraceparent:
// a downstream daemon that honors the header joins this trace, with this
// span as the remote parent. The sampled flag propagates the trace's own
// keep decision (sampled or forced) so a fan-out is retained end to end or
// not at all. Returns "" on a nil span.
func (sp *Span) Traceparent() string {
	if sp == nil {
		return ""
	}
	tr := sp.trace
	tr.mu.Lock()
	kept := tr.sampled || tr.forced != ""
	tr.mu.Unlock()
	flags := "00"
	if kept {
		flags = "01"
	}
	return "00-" + tr.id.String() + "-" + sp.id.String() + "-" + flags
}

// Breakdown renders the durations of the span's ended direct children as
// "name=dur name=dur ..." in recording order — the per-stage attribution
// the slow-request log line carries.
func (sp *Span) Breakdown() string {
	if sp == nil {
		return ""
	}
	tr := sp.trace
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var b strings.Builder
	for _, child := range tr.spans {
		if child.parent != sp.id || !child.ended {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(child.name)
		b.WriteByte('=')
		b.WriteString(child.dur.String())
	}
	return b.String()
}

// keep pushes a completed trace into the ring, evicting the oldest.
func (t *Tracer) keep(tr *Trace) {
	t.mu.Lock()
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	t.mu.Unlock()
}

// Recent returns the retained traces, newest first.
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, t.count)
	for i := 1; i <= t.count; i++ {
		out = append(out, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Find returns the retained trace with the given 32-hex-digit ID, or nil.
// When an ID was kept more than once (an inbound traceparent reused across
// requests), the newest trace wins.
func (t *Tracer) Find(idHex string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 1; i <= t.count; i++ {
		tr := t.ring[(t.next-i+len(t.ring))%len(t.ring)]
		if tr.id.String() == idHex {
			return tr
		}
	}
	return nil
}

// ID returns the trace's 32-hex-digit identifier.
func (tr *Trace) ID() string { return tr.id.String() }

// Name returns the trace's display name (the root span's final name).
func (tr *Trace) Name() string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.name
}

// Duration returns the root span's duration (0 until the root ends).
func (tr *Trace) Duration() time.Duration {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.dur
}

// TraceSummary is the list-view JSON shape of one retained trace.
type TraceSummary struct {
	ID       string    `json:"id"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	Duration string    `json:"duration"`
	Sampled  bool      `json:"sampled"`
	Forced   string    `json:"forced,omitempty"`
	Spans    int       `json:"spans"`
	Dropped  int       `json:"droppedSpans,omitempty"`
}

// Summary returns the trace's list-view shape.
func (tr *Trace) Summary() TraceSummary {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return TraceSummary{
		ID:       tr.id.String(),
		Name:     tr.name,
		Start:    tr.start,
		Duration: tr.dur.String(),
		Sampled:  tr.sampled,
		Forced:   tr.forced,
		Spans:    len(tr.spans),
		Dropped:  tr.dropped,
	}
}

// SpanNode is one node of the reconstructed span tree, JSON-shaped for the
// debug surface. Start is the offset from the trace start.
type SpanNode struct {
	ID       string            `json:"id"`
	Name     string            `json:"name"`
	Start    string            `json:"start"`
	Duration string            `json:"duration"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// TraceDetail is the full JSON shape of one trace: summary plus span tree.
type TraceDetail struct {
	TraceSummary
	RemoteParent string    `json:"remoteParent,omitempty"`
	Root         *SpanNode `json:"root"`
}

// Detail returns the trace with its span tree reconstructed: children
// attach under their parent in recording order, and a span whose parent was
// dropped (past the per-trace cap) attaches under the root rather than
// disappearing.
func (tr *Trace) Detail() TraceDetail {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	d := TraceDetail{
		TraceSummary: TraceSummary{
			ID:       tr.id.String(),
			Name:     tr.name,
			Start:    tr.start,
			Duration: tr.dur.String(),
			Sampled:  tr.sampled,
			Forced:   tr.forced,
			Spans:    len(tr.spans),
			Dropped:  tr.dropped,
		},
	}
	if !tr.remote.IsZero() {
		d.RemoteParent = tr.remote.String()
	}
	if len(tr.spans) == 0 {
		return d
	}
	nodes := make(map[SpanID]*SpanNode, len(tr.spans))
	for _, sp := range tr.spans {
		n := &SpanNode{
			ID:       sp.id.String(),
			Name:     sp.name,
			Start:    sp.start.String(),
			Duration: sp.dur.String(),
		}
		if len(sp.attrs) > 0 {
			n.Attrs = make(map[string]string, len(sp.attrs)/2)
			for i := 0; i+1 < len(sp.attrs); i += 2 {
				n.Attrs[sp.attrs[i]] = sp.attrs[i+1]
			}
		}
		nodes[sp.id] = n
	}
	root := nodes[tr.spans[0].id]
	d.Root = root
	for _, sp := range tr.spans[1:] {
		parent, ok := nodes[sp.parent]
		if !ok || parent == nodes[sp.id] {
			parent = root // orphan: its parent was dropped past the span cap
		}
		parent.Children = append(parent.Children, nodes[sp.id])
	}
	return d
}
