// Package obs is the daemon's zero-dependency observability core: a metrics
// registry (atomic counters, gauges and fixed-bucket histograms, rendered in
// the Prometheus text exposition format) plus a levelled structured logger
// (key=value lines with per-request IDs).
//
// The package exists so every layer of kcenterd — HTTP handlers, the
// persistence engine, the stream publish path — reports into one contract
// that later performance and distribution work can be measured against,
// without pulling a client library into a dependency-free module.
//
// Recording is wait-free: counters and gauges are single atomics, a histogram
// observation is two atomic adds plus a CAS loop on the sum, and none of them
// ever takes a lock held across I/O. Registration and label-child lookup use
// short internal mutexes, so handlers that resolve a labelled child per
// request pay a map lookup, never a stall behind a scrape; a scrape reads the
// atomics without stopping writers. That is what keeps GET /metrics answerable
// while a stream's ingest mutex is held.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The zero value is ready to
// use, but counters are normally created through a Registry so they render
// on scrapes.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative (counters only go up; a negative
// delta is ignored rather than corrupting the series).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative deltas decrease the gauge).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefDurationBuckets is the default latency histogram layout: exponential
// upper bounds from 100µs to 10s (in seconds, the Prometheus convention for
// duration histograms). Operations faster than 100µs land in the first
// bucket, slower than 10s in the implicit +Inf bucket.
var DefDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets. Observing is wait-free
// (two atomic increments and a CAS-add on the sum); the bucket layout is
// immutable after creation.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; the +Inf bucket is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefDurationBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bounds must be finite")
		}
		if i > 0 && bs[i-1] == b {
			panic("obs: duplicate histogram bound")
		}
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Branchless-ish bucket search: bounds are few (tens), so a binary search
	// is plenty; sort.SearchFloat64s returns the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state. Buckets
// are non-cumulative counts aligned with Bounds; the last entry of Counts is
// the implicit +Inf bucket.
type HistogramSnapshot struct {
	Count  uint64
	Sum    float64
	Bounds []float64
	Counts []uint64
}

// Snapshot copies the histogram's counters. Concurrent observers may land
// between the individual loads, so the copy is approximately — not
// transactionally — consistent, which is the usual monitoring contract.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts by
// linear interpolation inside the bucket holding the target rank, the same
// estimate Prometheus' histogram_quantile computes. Values beyond the last
// finite bound are clamped to it; an empty histogram reports NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the highest finite bound.
			return s.Bounds[len(s.Bounds)-1]
		}
		hi := s.Bounds[i]
		if cum+float64(c) >= rank {
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// P50 estimates the median.
func (s HistogramSnapshot) P50() float64 { return s.Quantile(0.5) }

// P99 estimates the 99th percentile.
func (s HistogramSnapshot) P99() float64 { return s.Quantile(0.99) }

// metricKind discriminates families in the registry.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric with a fixed label schema and (for histograms) a
// fixed bucket layout; children are the per-label-value instances.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64

	mu       sync.Mutex
	children map[string]any // joined label values -> *Counter/*Gauge/*Histogram
	keys     map[string][]string
}

// child returns (creating if needed) the instance for the given label values.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c any
	switch f.kind {
	case kindCounter:
		c = &Counter{}
	case kindGauge:
		c = &Gauge{}
	case kindHistogram:
		c = newHistogram(f.bounds)
	}
	f.children[key] = c
	f.keys[key] = append([]string(nil), values...)
	return c
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values (created on first
// use).
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Registry holds named metric families and renders them in the Prometheus
// text exposition format. Metric creation is idempotent: asking again for the
// same name returns the existing family (and panics if the kind or label
// schema differs — that is a programming error, not a runtime condition).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as a different kind or schema", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		bounds:   bounds,
		children: make(map[string]any),
		keys:     make(map[string][]string),
	}
	r.families[name] = f
	return f
}

// Counter returns the unlabelled counter with the given name, creating it on
// first use. An unlabelled metric always renders (at 0 before the first
// increment), so required series exist from boot.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).child(nil).(*Counter)
}

// CounterVec returns the labelled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labels, nil)}
}

// Gauge returns the unlabelled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).child(nil).(*Gauge)
}

// GaugeVec returns the labelled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labels, nil)}
}

// Histogram returns the unlabelled histogram with the given name. bounds are
// the bucket upper bounds (nil = DefDurationBuckets); they are fixed on first
// registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, kindHistogram, nil, bounds).child(nil).(*Histogram)
}

// HistogramVec returns the labelled histogram family with the given name.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labels, bounds)}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for the given schema/values, with extra
// appended last (used for the histogram "le" label). Empty schema and extra
// render as "".
func labelString(labels, values []string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if len(labels) > 0 || i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4): families sorted by name, children sorted by label values,
// histogram buckets cumulative with the trailing +Inf bucket, _sum and
// _count. Rendering reads the atomics without stopping writers, so a scrape
// never blocks recording.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]any, len(keys))
		values := make([][]string, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
			values[i] = f.keys[k]
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue // a Vec with no children yet has nothing to expose
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for i, c := range children {
			ls := labelString(f.labels, values[i])
			switch m := c.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatFloat(m.Value()))
			case *Histogram:
				s := m.Snapshot()
				cum := uint64(0)
				for j, bound := range s.Bounds {
					cum += s.Counts[j]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values[i], "le", formatFloat(bound)), cum)
				}
				cum += s.Counts[len(s.Bounds)]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values[i], "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, ls, formatFloat(s.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ls, s.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
