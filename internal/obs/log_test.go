package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedLogger returns a logger with a deterministic clock writing into buf.
func fixedLogger(buf *strings.Builder, level Level) *Logger {
	l := NewLogger(buf, level)
	l.s.now = func() time.Time { return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC) }
	return l
}

func TestLogFormat(t *testing.T) {
	var buf strings.Builder
	l := fixedLogger(&buf, LevelInfo)
	l.Info("listening", "addr", ":8080", "k", 20)
	want := "ts=2026-08-07T12:00:00.000000Z level=info msg=listening addr=:8080 k=20\n"
	if got := buf.String(); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestLogQuoting(t *testing.T) {
	var buf strings.Builder
	l := fixedLogger(&buf, LevelDebug)
	l.Warn("slow request", "path", "/streams/a b", "err", errors.New(`boom="x"`), "empty", "")
	got := buf.String()
	for _, want := range []string{
		`msg="slow request"`,
		`path="/streams/a b"`,
		`err="boom=\"x\""`,
		`empty=""`,
		"level=warn",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("line %q missing %q", got, want)
		}
	}
}

func TestLogLevels(t *testing.T) {
	var buf strings.Builder
	l := fixedLogger(&buf, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	got := buf.String()
	if strings.Contains(got, "msg=d") || strings.Contains(got, "msg=i") {
		t.Fatalf("below-level messages leaked: %q", got)
	}
	if !strings.Contains(got, "msg=w") || !strings.Contains(got, "msg=e") {
		t.Fatalf("at-level messages dropped: %q", got)
	}
	if l.Enabled(LevelInfo) {
		t.Fatal("info must be disabled at level warn")
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Fatal("SetLevel(debug) must enable debug")
	}
}

func TestLogWith(t *testing.T) {
	var buf strings.Builder
	l := fixedLogger(&buf, LevelInfo)
	child := l.With("requestId", "abc123")
	child.Info("handled", "status", 200)
	got := buf.String()
	if !strings.Contains(got, "requestId=abc123") || !strings.Contains(got, "status=200") {
		t.Fatalf("bound fields missing: %q", got)
	}
	buf.Reset()
	l.Info("plain")
	if strings.Contains(buf.String(), "requestId") {
		t.Fatalf("parent logger must not inherit child fields: %q", buf.String())
	}
}

func TestLogBadKV(t *testing.T) {
	var buf strings.Builder
	l := fixedLogger(&buf, LevelInfo)
	l.Info("odd", "dangling")
	if !strings.Contains(buf.String(), "!BADKEY=dangling") {
		t.Fatalf("odd kv must be flagged: %q", buf.String())
	}
	buf.Reset()
	l.Info("weird", "bad key\n", 1)
	if !strings.Contains(buf.String(), "bad_key_=1") {
		t.Fatalf("keys must be sanitised to bare words: %q", buf.String())
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	l.SetLevel(LevelDebug)
	if l.With("a", 1) != nil {
		t.Fatal("With on nil must return nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger is never enabled")
	}
}

func TestLogConcurrent(t *testing.T) {
	var buf strings.Builder
	l := fixedLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Info("m", "worker", i, "j", j)
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("%d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=m") {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "INFO": LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel must reject unknown levels")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatal("request IDs must be unique")
	}
	if len(a) != 16 {
		t.Fatalf("request ID %q, want 16 hex chars", a)
	}
}
