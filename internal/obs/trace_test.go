package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	const (
		goodID   = "0af7651916cd43dd8448eb211c80319c"
		goodSpan = "b7ad6b7169203331"
	)
	good := "00-" + goodID + "-" + goodSpan + "-01"
	for _, tc := range []struct {
		name    string
		header  string
		ok      bool
		sampled bool
	}{
		{"valid sampled", good, true, true},
		{"valid unsampled", "00-" + goodID + "-" + goodSpan + "-00", true, false},
		{"other flag bits ignored", "00-" + goodID + "-" + goodSpan + "-fe", true, false},
		{"empty", "", false, false},
		{"too short", good[:54], false, false},
		{"too long", good + "0", false, false},
		{"foreign version", "01-" + goodID + "-" + goodSpan + "-01", false, false},
		{"version ff", "ff-" + goodID + "-" + goodSpan + "-01", false, false},
		{"uppercase hex", "00-" + strings.ToUpper(goodID) + "-" + goodSpan + "-01", false, false},
		{"non-hex trace id", "00-" + strings.Replace(goodID, "a", "g", 1) + "-" + goodSpan + "-01", false, false},
		{"all-zero trace id", "00-" + strings.Repeat("0", 32) + "-" + goodSpan + "-01", false, false},
		{"all-zero span id", "00-" + goodID + "-" + strings.Repeat("0", 16) + "-01", false, false},
		{"wrong separators", strings.Replace(good, "-", "_", 1), false, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			id, parent, sampled, ok := ParseTraceparent(tc.header)
			if ok != tc.ok {
				t.Fatalf("ParseTraceparent(%q) ok = %v, want %v", tc.header, ok, tc.ok)
			}
			if !ok {
				if !id.IsZero() || !parent.IsZero() || sampled {
					t.Fatalf("rejected header leaked values: id=%v parent=%v sampled=%v", id, parent, sampled)
				}
				return
			}
			if id.String() != goodID {
				t.Errorf("trace ID %s, want %s", id, goodID)
			}
			if parent.String() != goodSpan {
				t.Errorf("parent span ID %s, want %s", parent, goodSpan)
			}
			if sampled != tc.sampled {
				t.Errorf("sampled = %v, want %v", sampled, tc.sampled)
			}
		})
	}
}

// TestMalformedTraceparentFallsBack: a malformed or foreign header must not
// poison the trace — the root starts a fresh local trace with a fresh ID.
func TestMalformedTraceparentFallsBack(t *testing.T) {
	tr := NewTracer(1, 8)
	for _, header := range []string{
		"garbage",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // foreign version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace ID
	} {
		_, root := tr.StartRoot(context.Background(), "GET", header)
		id := root.TraceID()
		if len(id) != 32 || strings.Contains(header, id) {
			t.Errorf("header %q: trace ID %q is not a fresh local ID", header, id)
		}
		root.End()
	}
	if got := len(tr.Recent()); got != 3 {
		t.Fatalf("retained %d traces, want 3 (sample rate 1)", got)
	}
}

// TestInboundTraceparentJoins: a valid inbound header is honored — same
// trace ID, the caller's span recorded as the remote parent, and its
// sampled flag inherited without consuming a local sampling slot.
func TestInboundTraceparentJoins(t *testing.T) {
	tr := NewTracer(1000, 8) // local sampler would reject nearly everything
	header := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	_, root := tr.StartRoot(context.Background(), "POST", header)
	if got := root.TraceID(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace ID %s does not join the inbound trace", got)
	}
	root.End()
	found := tr.Find("0af7651916cd43dd8448eb211c80319c")
	if found == nil {
		t.Fatal("inbound sampled flag did not force retention")
	}
	if d := found.Detail(); d.RemoteParent != "b7ad6b7169203331" {
		t.Fatalf("remote parent %q, want the inbound span ID", d.RemoteParent)
	}

	// The unsampled flag is inherited too: the trace completes unkept.
	_, root2 := tr.StartRoot(context.Background(), "POST",
		"00-1af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	root2.End()
	if tr.Find("1af7651916cd43dd8448eb211c80319c") != nil {
		t.Fatal("inbound unsampled trace was retained")
	}
}

// TestSamplingDeterminism: the head sampler is an atomic counter, so across
// any interleaving of goroutines EXACTLY one in N roots is sampled.
func TestSamplingDeterminism(t *testing.T) {
	const (
		every      = 4
		goroutines = 8
		perG       = 100
	)
	tr := NewTracer(every, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, root := tr.StartRoot(context.Background(), "GET", "")
				root.End()
			}
		}()
	}
	wg.Wait()
	want := goroutines * perG / every
	if got := len(tr.Recent()); got != want {
		t.Fatalf("sampled %d of %d traces, want exactly %d (1 in %d)", got, goroutines*perG, want, every)
	}
}

// TestRingEviction: the ring keeps the newest `buffer` traces, returned
// newest first; older ones are evicted in completion order.
func TestRingEviction(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 1; i <= 6; i++ {
		_, root := tr.StartRoot(context.Background(), fmt.Sprintf("t%d", i), "")
		root.End()
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(recent))
	}
	for i, want := range []string{"t6", "t5", "t4", "t3"} {
		if got := recent[i].Name(); got != want {
			t.Errorf("recent[%d] = %q, want %q (newest first)", i, got, want)
		}
	}
	if tr.Find(recent[0].ID()) != recent[0] {
		t.Error("Find does not return the retained trace by ID")
	}
	if tr.Find(strings.Repeat("0", 32)) != nil {
		t.Error("Find invented a trace for an unknown ID")
	}
}

// TestSpanTreeGolden drives a scripted clock through a root with nested
// children and checks the reconstructed tree: structure, names, offsets and
// durations all exact.
func TestSpanTreeGolden(t *testing.T) {
	tr := NewTracer(1, 4)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	clock := base
	tr.now = func() time.Time { return clock }

	ctx, root := tr.StartRoot(context.Background(), "POST", "") // t=0
	clock = base.Add(1 * time.Millisecond)
	dctx, decode := StartSpan(ctx, "decode") // t=1ms
	decode.SetAttr("proto", "json")
	clock = base.Add(3 * time.Millisecond)
	_, inner := StartSpan(dctx, "parse") // child of decode, t=3ms
	clock = base.Add(4 * time.Millisecond)
	inner.End() // 1ms
	clock = base.Add(5 * time.Millisecond)
	decode.End()                                                   // 4ms
	RecordSpan(ctx, "wal.wait", 2*time.Millisecond, "op", "batch") // ends t=5ms, starts t=3ms
	clock = base.Add(9 * time.Millisecond)
	root.SetName("POST /streams/{name}/points")
	root.End() // 9ms

	tc := tr.Find(root.TraceID())
	if tc == nil {
		t.Fatal("trace not retained")
	}
	d := tc.Detail()
	if d.Name != "POST /streams/{name}/points" {
		t.Errorf("trace name %q did not follow the root rename", d.Name)
	}
	if d.Duration != "9ms" || d.Spans != 4 {
		t.Errorf("summary duration=%s spans=%d, want 9ms and 4", d.Duration, d.Spans)
	}
	root1 := d.Root
	if root1 == nil || len(root1.Children) != 2 {
		t.Fatalf("root has %d children, want 2 (decode, wal.wait)", len(root1.Children))
	}
	dec := root1.Children[0]
	if dec.Name != "decode" || dec.Start != "1ms" || dec.Duration != "4ms" || dec.Attrs["proto"] != "json" {
		t.Errorf("decode node = %+v", dec)
	}
	if len(dec.Children) != 1 || dec.Children[0].Name != "parse" ||
		dec.Children[0].Start != "3ms" || dec.Children[0].Duration != "1ms" {
		t.Errorf("parse node = %+v", dec.Children)
	}
	wait := root1.Children[1]
	if wait.Name != "wal.wait" || wait.Start != "3ms" || wait.Duration != "2ms" || wait.Attrs["op"] != "batch" {
		t.Errorf("wal.wait node = %+v", wait)
	}
	if bd := root.Breakdown(); bd != "decode=4ms wal.wait=2ms" {
		t.Errorf("Breakdown() = %q, want \"decode=4ms wal.wait=2ms\"", bd)
	}
}

// TestConcurrentSpanRecording hammers one trace from many goroutines under
// -race: SetAttr, child spans, nested ends. The span count must respect the
// per-trace cap, with the overflow counted as dropped.
func TestConcurrentSpanRecording(t *testing.T) {
	tr := NewTracer(1, 2)
	ctx, root := tr.StartRoot(context.Background(), "GET", "")
	const goroutines = 16
	const perG = 40 // 16*40 + root = 641 > maxSpansPerTrace
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				cctx, sp := StartSpan(ctx, fmt.Sprintf("g%d.%d", g, i))
				sp.SetAttr("i", "x")
				RecordSpan(cctx, "leaf", time.Microsecond)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	root.Force("test")
	root.End()
	sum := tr.Recent()[0].Summary()
	if sum.Spans != maxSpansPerTrace {
		t.Errorf("trace holds %d spans, want the %d cap", sum.Spans, maxSpansPerTrace)
	}
	wantDropped := 1 + goroutines*perG*2 - maxSpansPerTrace
	if sum.Dropped != wantDropped {
		t.Errorf("dropped %d spans, want %d", sum.Dropped, wantDropped)
	}
	// The tree still reconstructs: orphans of dropped parents hang off root.
	d := tr.Recent()[0].Detail()
	total := 0
	var count func(*SpanNode)
	count = func(n *SpanNode) {
		total++
		for _, c := range n.Children {
			count(c)
		}
	}
	count(d.Root)
	if total != maxSpansPerTrace {
		t.Errorf("tree holds %d nodes, want %d", total, maxSpansPerTrace)
	}
}

// TestNilSafety: a nil tracer (tracing disabled) and the nil spans it hands
// out must absorb every call.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.StartRoot(context.Background(), "GET", "")
	if root != nil {
		t.Fatal("nil tracer returned a span")
	}
	_, bg := tr.StartBackground(context.Background(), "compact")
	tr.RecordBackground("flush", time.Millisecond)
	ctx2, child := StartSpan(ctx, "decode")
	RecordSpan(ctx2, "leaf", time.Millisecond)
	for _, sp := range []*Span{root, bg, child} {
		sp.SetName("x")
		sp.SetAttr("k", "v")
		sp.Force("slow")
		sp.End()
		if sp.TraceID() != "" || sp.Breakdown() != "" {
			t.Fatal("nil span leaked identity")
		}
	}
	if tr.Recent() != nil || tr.Find("x") != nil {
		t.Fatal("nil tracer retained traces")
	}
	if NewTracer(16, 0) != nil {
		t.Fatal("buffer 0 must disable tracing")
	}
}

// TestForcedCaptureOverridesSampling: an unsampled trace marked slow (or
// errored) is retained anyway; End is idempotent and keeps it once.
func TestForcedCaptureOverridesSampling(t *testing.T) {
	tr := NewTracer(1000, 8)
	// Counter slot 0 is the 1-in-1000 sample; burn it so the rest are unsampled.
	_, first := tr.StartRoot(context.Background(), "GET", "")
	first.End()
	_, skipped := tr.StartRoot(context.Background(), "GET", "")
	skipped.End()
	_, forced := tr.StartRoot(context.Background(), "GET", "")
	forced.Force("slow")
	forced.Force("error") // first reason wins
	forced.End()
	forced.End()
	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("retained %d traces, want the head sample and the forced one", len(recent))
	}
	if sum := recent[0].Summary(); sum.Forced != "slow" || sum.Sampled {
		t.Fatalf("forced trace summary = %+v", sum)
	}
	if tr.Find(skipped.TraceID()) != nil {
		t.Fatal("unsampled unforced trace was retained")
	}
}

// TestBackgroundTraces: StartBackground is always kept, RecordBackground is
// sampled at the tracer's rate so periodic work cannot flood the ring.
func TestBackgroundTraces(t *testing.T) {
	tr := NewTracer(10, 64)
	_, root := tr.StartBackground(context.Background(), "compact")
	root.SetAttr("stream", "s")
	root.End()
	if len(tr.Recent()) != 1 || tr.Recent()[0].Summary().Forced != "background" {
		t.Fatal("background trace not force-retained")
	}
	for i := 0; i < 40; i++ {
		tr.RecordBackground("wal.flush", time.Millisecond, "logs", "1")
	}
	kept := 0
	for _, tc := range tr.Recent() {
		if tc.Name() == "wal.flush" {
			kept++
		}
	}
	if kept != 4 {
		t.Fatalf("kept %d of 40 flush traces, want exactly 4 (1 in 10)", kept)
	}
}
