package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Messages below the logger's level are dropped
// before any formatting work happens.
type Level int32

// Severities, in increasing order.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// ParseLevel parses the -log-level flag values "debug", "info", "warn",
// "error".
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// String returns the flag spelling of the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("Level(%d)", int32(l))
}

// loggerShared is the state common to a logger and all its With-derived
// children: one writer behind one mutex (lines from concurrent goroutines
// never interleave) and one level switch.
type loggerShared struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	now   func() time.Time // test seam; nil = time.Now
}

// Logger emits levelled key=value lines:
//
//	ts=2026-08-07T12:00:00.000000Z level=info msg="listening" addr=:8080
//
// A nil *Logger is valid and drops everything, so library code can log
// unconditionally. With returns a child logger whose bound fields (for
// example a request ID) are appended to every line.
type Logger struct {
	s    *loggerShared
	base string // pre-rendered bound fields, " k=v k=v" or ""
}

// NewLogger returns a logger writing to w at the given level.
func NewLogger(w io.Writer, level Level) *Logger {
	s := &loggerShared{w: w}
	s.level.Store(int32(level))
	return &Logger{s: s}
}

// SetLevel changes the level of this logger and every logger sharing its
// writer (parents and With-children alike).
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.s.level.Store(int32(level))
}

// Enabled reports whether messages at the given level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.s.level.Load()
}

// With returns a child logger with the given fields bound to every line,
// rendered once here rather than on every call.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	var b strings.Builder
	appendKV(&b, kv)
	return &Logger{s: l.s, base: l.base + b.String()}
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	now := time.Now
	if l.s.now != nil {
		now = l.s.now
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(now().UTC().Format("2006-01-02T15:04:05.000000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	b.WriteString(l.base)
	appendKV(&b, kv)
	b.WriteByte('\n')
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	io.WriteString(l.s.w, b.String())
}

// appendKV renders " key=value" pairs. An odd trailing element is reported
// under the "!BADKEY" key (the slog convention) instead of being dropped
// silently; non-string keys are stringified.
func appendKV(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		var key string
		var val any
		if i+1 < len(kv) {
			if s, ok := kv[i].(string); ok {
				key = s
			} else {
				key = fmt.Sprint(kv[i])
			}
			val = kv[i+1]
		} else {
			key = "!BADKEY"
			val = kv[i]
		}
		b.WriteByte(' ')
		if key == "!BADKEY" {
			b.WriteString(key) // the sentinel is deliberate, not a caller typo
		} else {
			b.WriteString(sanitizeKey(key))
		}
		b.WriteByte('=')
		b.WriteString(quoteValue(stringify(val)))
	}
}

func stringify(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case error:
		return t.Error()
	case time.Duration:
		return t.String()
	case fmt.Stringer:
		return t.String()
	}
	return fmt.Sprint(v)
}

// sanitizeKey keeps keys bare words so the line stays machine-parseable:
// anything outside [A-Za-z0-9_.-] becomes '_', an empty key becomes "_".
func sanitizeKey(k string) string {
	if k == "" {
		return "_"
	}
	clean := true
	for i := 0; i < len(k); i++ {
		if !isKeyByte(k[i]) {
			clean = false
			break
		}
	}
	if clean {
		return k
	}
	b := []byte(k)
	for i := range b {
		if !isKeyByte(b[i]) {
			b[i] = '_'
		}
	}
	return string(b)
}

func isKeyByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '.' || c == '-'
}

// quoteValue quotes a value when it would break the key=value grammar
// (spaces, quotes, '=', control bytes, or empty).
func quoteValue(v string) string {
	if v == "" {
		return `""`
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return strconv.Quote(v)
		}
	}
	return v
}

// reqIDCounter disambiguates fallback request IDs if the system randomness
// source ever fails.
var reqIDCounter atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request ID for the daemon's
// X-Request-ID middleware.
func NewRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// Extremely unlikely; fall back to a process-unique counter so IDs
		// stay distinct even without randomness.
		n := reqIDCounter.Add(1)
		return fmt.Sprintf("fallback-%d-%d", time.Now().UnixNano(), n)
	}
	return hex.EncodeToString(buf[:])
}
