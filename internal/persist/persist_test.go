package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"coresetclustering/internal/metric"
)

func testMeta() Meta {
	return Meta{K: 3, Z: 1, Budget: 32, Space: "euclidean", WindowSize: 0, WindowDuration: 0}
}

func testBatch(n, dim int, seed int64) metric.Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := make(metric.Dataset, n)
	for i := range out {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		out[i] = p
	}
	return out
}

func openStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	b1 := testBatch(10, 3, 1)
	b2 := testBatch(5, 3, 2)
	ts := []int64{7, 7, 8, 9, 12}
	if err := l.AppendBatch(b1, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(b2, ts); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAdvance(42); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(s.Dir(), Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d streams, want 1", len(recs))
	}
	r := recs[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Name != "demo" || !r.HaveMeta || r.Meta != testMeta() {
		t.Fatalf("recovered name=%q haveMeta=%v meta=%+v", r.Name, r.HaveMeta, r.Meta)
	}
	if r.Snapshot != nil {
		t.Fatalf("unexpected snapshot of %d bytes", len(r.Snapshot))
	}
	if len(r.Tail) != 3 {
		t.Fatalf("tail has %d records, want 3", len(r.Tail))
	}
	if got := r.Tail[0]; got.Op != OpBatch || len(got.Points) != 10 || got.Timestamps != nil {
		t.Fatalf("tail[0] = %+v", got)
	}
	if got := r.Tail[1]; got.Op != OpBatch || len(got.Points) != 5 || len(got.Timestamps) != 5 || got.Timestamps[4] != 12 {
		t.Fatalf("tail[1] = %+v", got)
	}
	if !reflect.DeepEqual(r.Tail[0].Points, b1) {
		t.Fatalf("tail[0] points = %v, want %v", r.Tail[0].Points, b1)
	}
	if got := r.Tail[2]; got.Op != OpAdvance || got.AdvanceTo != 42 {
		t.Fatalf("tail[2] = %+v", got)
	}
	if st := r.Stats; !(st.WALRecords == 4 && st.RecordsReplayed == 3 && st.PointsReplayed == 15 && !st.TornTail) {
		t.Fatalf("stats = %+v", st)
	}
	// The recovered handle must keep appending where the old one stopped.
	if err := r.Log.AppendAdvance(50); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionResetsLogAndSkipsReplay(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.AppendBatch(testBatch(4, 2, int64(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	sketch := []byte("pretend-sketch-state")
	if err := l.Compact(sketch); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.WALRecords != 1 || st.Compactions != 1 {
		t.Fatalf("post-compaction stats = %+v", st)
	}
	// One more batch after the compaction: only it should replay.
	post := testBatch(7, 2, 99)
	if err := l.AppendBatch(post, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !bytes.Equal(r.Snapshot, sketch) {
		t.Fatalf("snapshot = %q, want %q", r.Snapshot, sketch)
	}
	if !r.HaveMeta || r.Meta != testMeta() {
		t.Fatalf("metadata lost across compaction: haveMeta=%v meta=%+v", r.HaveMeta, r.Meta)
	}
	if len(r.Tail) != 1 || len(r.Tail[0].Points) != 7 {
		t.Fatalf("tail = %+v, want the single post-compaction batch", r.Tail)
	}
}

// TestCrashBetweenSnapshotAndLogReset covers the compaction crash window: the
// snapshot has been renamed into place but the WAL still holds the records it
// folded in. Replay must skip them by sequence number, not apply them twice.
func TestCrashBetweenSnapshotAndLogReset(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.AppendBatch(testBatch(4, 2, int64(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash: write the snapshot with the current lastSeq but do
	// NOT reset the WAL (this is exactly the state after the snapshot rename
	// and before the log reset lands).
	l.mu.Lock()
	if err := l.writeSnapshotLocked(l.seq, []byte("state-after-3-batches")); err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	l.mu.Unlock()
	s.Close()

	s2, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if string(r.Snapshot) != "state-after-3-batches" {
		t.Fatalf("snapshot = %q", r.Snapshot)
	}
	if len(r.Tail) != 0 {
		t.Fatalf("%d records replayed on top of a snapshot that already includes them", len(r.Tail))
	}
	if r.Stats.WALRecords != 4 || r.Stats.RecordsReplayed != 0 {
		t.Fatalf("stats = %+v", r.Stats)
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(testBatch(6, 2, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(testBatch(6, 2, 2), nil); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(s.Dir(), encodeName("demo"), walFile)
	s.Close()

	// Tear the last record: chop off its final 5 bytes.
	img, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, img[:len(img)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(r.Tail) != 1 {
		t.Fatalf("tail has %d records, want 1 (the torn one dropped)", len(r.Tail))
	}
	if !r.Stats.TornTail || r.Stats.TruncatedBytes == 0 {
		t.Fatalf("stats = %+v, want a reported torn tail", r.Stats)
	}
	// The file itself must have been truncated so appends work again …
	if err := r.Log.AppendAdvance(1); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	// … and a third recovery sees a clean log: 1 old batch + the advance.
	s3, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	recs, err = s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if r := recs[0]; r.Err != nil || r.Stats.TornTail || len(r.Tail) != 2 {
		t.Fatalf("after truncation: err=%v stats=%+v tail=%d", r.Err, r.Stats, len(r.Tail))
	}
}

func TestCorruptMidFileTruncatesRest(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.AppendBatch(testBatch(4, 2, int64(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	walPath := filepath.Join(s.Dir(), encodeName("demo"), walFile)
	s.Close()

	img, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-50] ^= 0xFF // flip a byte inside the last record (90-byte frame)
	if err := os.WriteFile(walPath, img, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(r.Tail) != 2 || !r.Stats.TornTail {
		t.Fatalf("tail=%d stats=%+v, want 2 surviving records and a torn tail", len(r.Tail), r.Stats)
	}
}

func TestRemoveTombstonesAndFreesName(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(testBatch(3, 2, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAdvance(1); !errors.Is(err, ErrLogRemoved) {
		t.Fatalf("append after remove: %v, want ErrLogRemoved", err)
	}
	// The name is immediately reusable.
	l2, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatalf("recreate after remove: %v", err)
	}
	if err := l2.AppendBatch(testBatch(2, 2, 2), nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Err != nil || len(recs[0].Tail) != 1 || len(recs[0].Tail[0].Points) != 2 {
		t.Fatalf("recovered %+v, want only the recreated stream", recs)
	}
}

func TestOpenSweepsTombstonesAndTmp(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "Zm9v"+tombSuffix), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap"+tmpSuffix), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("leftovers survived open: %v", entries)
	}
}

// TestOpenSweepsStreamDirTmp: a crash between atomicWrite's temp file and
// its rename leaves wal.tmp/snap.tmp INSIDE a stream directory; the next
// Open must remove them without touching the live files.
func TestOpenSweepsStreamDirTmp(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(testBatch(3, 2, 1), nil); err != nil {
		t.Fatal(err)
	}
	streamDir := filepath.Join(s.Dir(), encodeName("demo"))
	s.Close()
	for _, name := range []string{snapFile + tmpSuffix, walFile + tmpSuffix} {
		if err := os.WriteFile(filepath.Join(streamDir, name), []byte("in-flight junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	inner, err := os.ReadDir(streamDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range inner {
		if filepath.Ext(f.Name()) == tmpSuffix {
			t.Fatalf("stale temp file %s survived open", f.Name())
		}
	}
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Err != nil || len(recs[0].Tail) != 1 {
		t.Fatalf("stream damaged by the sweep: %+v", recs)
	}
}

func TestCorruptSnapshotSetsStreamAside(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact([]byte("good-state")); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(s.Dir(), encodeName("demo"), snapFile)
	s.Close()
	img, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0xFF
	if err := os.WriteFile(snapPath, img, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Err == nil || !errors.Is(recs[0].Err, ErrSnapshotCorrupt) {
		t.Fatalf("recovered %+v, want a snapshot-corrupt error", recs)
	}
	// The name is freed (directory set aside as .failed) …
	if _, err := s2.Create("demo", testMeta()); err != nil {
		t.Fatalf("create after failed recovery: %v", err)
	}
	// … and the evidence is kept.
	if _, err := os.Stat(filepath.Join(s.Dir(), encodeName("demo")+failedSuffix)); err != nil {
		t.Fatalf("failed directory not preserved: %v", err)
	}
}

func TestReplaceInstallsSnapshot(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(testBatch(3, 2, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove(); err != nil {
		t.Fatal(err)
	}
	meta2 := Meta{K: 5, Budget: 64, Space: "manhattan"}
	l2, err := s.Replace("demo", meta2, []byte("restored-sketch"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.AppendBatch(testBatch(2, 2, 2), nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if string(r.Snapshot) != "restored-sketch" || r.Meta != meta2 || len(r.Tail) != 1 {
		t.Fatalf("recovered %+v", r)
	}
}

func TestFsyncModesAppend(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(mode.String(), func(t *testing.T) {
			s := openStore(t, Options{Fsync: mode, FsyncInterval: time.Millisecond})
			l, err := s.Create("demo", testMeta())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := l.AppendBatch(testBatch(3, 2, int64(i)), nil); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()
			s2, err := Open(s.Dir(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			recs, err := s2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if r := recs[0]; r.Err != nil || len(r.Tail) != 10 {
				t.Fatalf("mode %v: err=%v tail=%d", mode, r.Err, len(r.Tail))
			}
		})
	}
}

func TestParseFsyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncMode
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsyncMode(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("ParseFsyncMode(%q) accepted", tc.in)
		}
	}
}

func TestNameEncodingRoundTripsHostileNames(t *testing.T) {
	for _, name := range []string{"demo", "../escape", "a/b", "..", "wal", "x.tomb", "héllo\x00"} {
		enc := encodeName(name)
		if filepath.Base(enc) != enc || enc == "." || enc == ".." {
			t.Fatalf("encodeName(%q) = %q is not a safe single path element", name, enc)
		}
		dec, err := decodeName(enc)
		if err != nil || dec != name {
			t.Fatalf("decodeName(encodeName(%q)) = %q, %v", name, dec, err)
		}
	}
}

func TestDecodeWALHardErrors(t *testing.T) {
	if _, err := DecodeWAL([]byte("NOPE....junk")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	bad := fileHeader(walMagic)
	binary.BigEndian.PutUint16(bad[4:6], 99)
	if _, err := DecodeWAL(bad); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("bad version: %v", err)
	}
	// Empty input is a valid empty log, not an error.
	res, err := DecodeWAL(nil)
	if err != nil || len(res.Records) != 0 || res.Torn != nil {
		t.Fatalf("empty input: %+v, %v", res, err)
	}
}
