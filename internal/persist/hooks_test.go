package persist

import (
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"coresetclustering/internal/metric"
)

// hookCounts collects Hooks firings behind atomics so the background flusher
// and compactions can fire them concurrently with the test body.
type hookCounts struct {
	appends, appendBytes   atomic.Int64
	fsyncs                 atomic.Int64
	flushErrors            atomic.Int64
	compactions, folded    atomic.Int64
	tornTails, tornBytes   atomic.Int64
	recoveries, recPoints  atomic.Int64
	recRecords             atomic.Int64
	flushCycles, flushed   atomic.Int64
	negativeDurationSeen   atomic.Bool
	zeroAppendSizeObserved atomic.Bool
}

func (h *hookCounts) hooks() Hooks {
	return Hooks{
		AppendDone: func(op Op, bytes int, d time.Duration) {
			h.appends.Add(1)
			h.appendBytes.Add(int64(bytes))
			if d < 0 {
				h.negativeDurationSeen.Store(true)
			}
			if bytes == 0 {
				h.zeroAppendSizeObserved.Store(true)
			}
		},
		FsyncDone: func(d time.Duration) {
			h.fsyncs.Add(1)
			if d < 0 {
				h.negativeDurationSeen.Store(true)
			}
		},
		FlushError: func(error) { h.flushErrors.Add(1) },
		CompactionDone: func(d time.Duration, folded int) {
			h.compactions.Add(1)
			h.folded.Add(int64(folded))
		},
		TornTail: func(b int64) {
			h.tornTails.Add(1)
			h.tornBytes.Add(b)
		},
		RecoveryDone: func(name string, d time.Duration, records int, points int64) {
			h.recoveries.Add(1)
			h.recRecords.Add(int64(records))
			h.recPoints.Add(points)
		},
		FlushCycleDone: func(d time.Duration, flushed int) {
			h.flushCycles.Add(1)
			h.flushed.Add(int64(flushed))
			if d < 0 {
				h.negativeDurationSeen.Store(true)
			}
		},
	}
}

func hookBatch(n int) metric.Dataset {
	pts := make(metric.Dataset, n)
	for i := range pts {
		pts[i] = metric.Point{float64(i), float64(i) + 0.5}
	}
	return pts
}

func TestHooksAppendFsyncCompact(t *testing.T) {
	dir := t.TempDir()
	var hc hookCounts
	s, err := Open(dir, Options{Fsync: FsyncAlways, Hooks: hc.hooks()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := s.Create("h", Meta{K: 2, Budget: 16, Space: "euclidean"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.AppendBatch(hookBatch(4), nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := hc.appends.Load(); got != 3 {
		t.Fatalf("AppendDone fired %d times, want 3", got)
	}
	if hc.fsyncs.Load() != 3 {
		t.Fatalf("FsyncDone fired %d times, want 3 (FsyncAlways)", hc.fsyncs.Load())
	}
	if hc.appendBytes.Load() <= 0 || hc.zeroAppendSizeObserved.Load() {
		t.Fatal("AppendDone must report the framed record size")
	}
	if hc.negativeDurationSeen.Load() {
		t.Fatal("hook durations must be non-negative")
	}

	if err := l.Compact([]byte("sketch-bytes")); err != nil {
		t.Fatal(err)
	}
	if hc.compactions.Load() != 1 {
		t.Fatalf("CompactionDone fired %d times, want 1", hc.compactions.Load())
	}
	if got := hc.folded.Load(); got != 3 {
		t.Fatalf("folded = %d, want 3 (the create record is metadata, not data)", got)
	}

	// CompactAt with a tail: two more appends, capture at the first.
	if err := l.AppendBatch(hookBatch(2), nil); err != nil {
		t.Fatal(err)
	}
	capture := l.LastSeq()
	if err := l.AppendBatch(hookBatch(2), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.CompactAt(capture, []byte("sketch-2")); err != nil {
		t.Fatal(err)
	}
	if hc.compactions.Load() != 2 {
		t.Fatalf("CompactionDone fired %d times, want 2", hc.compactions.Load())
	}
	if got := hc.folded.Load(); got != 4 {
		t.Fatalf("cumulative folded = %d, want 4 (1 folded by CompactAt, 1 carried over)", got)
	}
}

func TestHooksTornTailAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Create("r", Meta{K: 2, Budget: 16, Space: "euclidean"})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(hookBatch(5), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append garbage that cannot decode as a frame.
	walPath := filepath.Join(dir, encodeName("r"), walFile)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var hc hookCounts
	s2, err := Open(dir, Options{Fsync: FsyncNever, Hooks: hc.hooks()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recovered, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].Err != nil {
		t.Fatalf("recovery: %+v", recovered)
	}
	if hc.tornTails.Load() != 1 || hc.tornBytes.Load() != 3 {
		t.Fatalf("TornTail fired %d times with %d bytes, want 1/3", hc.tornTails.Load(), hc.tornBytes.Load())
	}
	if hc.recoveries.Load() != 1 {
		t.Fatalf("RecoveryDone fired %d times, want 1", hc.recoveries.Load())
	}
	if hc.recRecords.Load() != 2 { // create + batch
		t.Fatalf("RecoveryDone records = %d, want 2", hc.recRecords.Load())
	}
	if hc.recPoints.Load() != 5 {
		t.Fatalf("RecoveryDone points = %d, want 5", hc.recPoints.Load())
	}
}

func TestHooksIntervalFlush(t *testing.T) {
	dir := t.TempDir()
	var hc hookCounts
	s, err := Open(dir, Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond, Hooks: hc.hooks()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := s.Create("f", Meta{K: 2, Budget: 16, Space: "euclidean"})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(hookBatch(2), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for hc.fsyncs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if hc.fsyncs.Load() == 0 {
		t.Fatal("background flusher never reported an fsync")
	}
	if hc.flushErrors.Load() != 0 {
		t.Fatalf("unexpected flush errors: %d", hc.flushErrors.Load())
	}
	if hc.flushCycles.Load() == 0 || hc.flushed.Load() == 0 {
		t.Fatalf("FlushCycleDone fired %d times covering %d logs, want at least one non-empty cycle",
			hc.flushCycles.Load(), hc.flushed.Load())
	}
}

// TestHooksAppendWait: WaitCtx on a group-commit store fires AppendWait on
// the waiter's goroutine with the caller's context and a positive
// enqueue→ack latency; plain Wait and non-group stores never fire it.
func TestHooksAppendWait(t *testing.T) {
	type ctxKey struct{}
	var (
		fires   atomic.Int64
		badOp   atomic.Bool
		badWait atomic.Bool
		ctxSeen atomic.Bool
	)
	hooks := Hooks{
		AppendWait: func(ctx context.Context, op Op, wait time.Duration) {
			fires.Add(1)
			if op != OpBatch {
				badOp.Store(true)
			}
			if wait <= 0 {
				badWait.Store(true)
			}
			if v, _ := ctx.Value(ctxKey{}).(string); v == "req-1" {
				ctxSeen.Store(true)
			}
		},
	}

	s, err := Open(t.TempDir(), Options{Fsync: FsyncAlways, GroupCommit: true, Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := s.Create("gw", Meta{K: 2, Budget: 16, Space: "euclidean"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.WithValue(context.Background(), ctxKey{}, "req-1")
	p, err := l.BeginBatch(hookBatch(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WaitCtx(ctx); err != nil {
		t.Fatal(err)
	}
	if fires.Load() != 1 {
		t.Fatalf("AppendWait fired %d times, want 1", fires.Load())
	}
	if badOp.Load() || badWait.Load() {
		t.Fatal("AppendWait got wrong op or non-positive wait")
	}
	if !ctxSeen.Load() {
		t.Fatal("AppendWait did not receive the waiter's context")
	}
	// Context-free Wait must not fire the hook.
	p2, err := l.BeginBatch(hookBatch(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Wait(); err != nil {
		t.Fatal(err)
	}
	if fires.Load() != 1 {
		t.Fatalf("plain Wait fired AppendWait (now %d fires)", fires.Load())
	}

	// A non-group store resolves synchronously: WaitCtx is free and silent.
	s2, err := Open(t.TempDir(), Options{Fsync: FsyncAlways, Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	l2, err := s2.Create("ng", Meta{K: 2, Budget: 16, Space: "euclidean"})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := l2.BeginBatch(hookBatch(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p3.WaitCtx(ctx); err != nil {
		t.Fatal(err)
	}
	if fires.Load() != 1 {
		t.Fatalf("non-group WaitCtx fired AppendWait (now %d fires)", fires.Load())
	}
}
